module outcore

go 1.22
