// Interproc: file layouts unified across procedure boundaries — the
// paper's first item of future work, implemented in internal/interproc.
//
// A file layout is a whole-program property: when main passes its
// array A to subroutine sweep, both main's transposed read A(j,i) and
// sweep's straight write V(i,j) must be served by ONE layout for the
// shared file. The example builds the two procedures, lists the call
// binding, optimizes globally, and shows (1) the unified layout, (2)
// that every reference in both procedures keeps locality, and (3) what
// each procedure loses when optimized in isolation instead.
package main

import (
	"fmt"
	"log"

	"outcore/internal/core"
	"outcore/internal/interproc"
	"outcore/internal/ir"
)

func main() {
	const n = 64
	// main: U(i,j) = A(j,i) + 1
	u := ir.NewArray("U", n, n)
	a := ir.NewArray("A", n, n)
	mainProg := &ir.Program{
		Name:   "main",
		Arrays: []*ir.Array{u, a},
		Nests: []*ir.Nest{{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 1, 0)}, "add1", ir.AddConst(1)),
		}}},
	}
	// sweep(V): V(i,j) = W(j,i) + 2, called with V := A.
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	sweepProg := &ir.Program{
		Name:   "sweep",
		Arrays: []*ir.Array{v, w},
		Nests: []*ir.Nest{{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "add2", ir.AddConst(2)),
		}}},
	}
	unit := &interproc.Unit{
		Procs: []*interproc.Procedure{
			{Name: "main", Prog: mainProg},
			{Name: "sweep", Prog: sweepProg, Params: []*ir.Array{v}},
		},
		Calls: []interproc.Call{{
			Caller: "main", Callee: "sweep",
			Bindings: map[*ir.Array]*ir.Array{v: a},
		}},
	}

	res, err := interproc.Optimize(unit, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("interprocedural plan:")
	fmt.Printf("  main : U %s, A %s\n", res.PerProc["main"].Layouts[u], res.PerProc["main"].Layouts[a])
	fmt.Printf("  sweep: V %s (unified with A), W %s\n", res.PerProc["sweep"].Layouts[v], res.PerProc["sweep"].Layouts[w])
	for name, prog := range map[string]*ir.Program{"main": mainProg, "sweep": sweepProg} {
		for _, rep := range res.PerProc[name].Report(prog, nil) {
			fmt.Printf("  %-5s %-10s %s locality\n", name, rep.Ref, rep.Locality)
		}
	}

	// Contrast: optimizing each procedure in isolation picks layouts for
	// A and V independently — and they disagree, so ONE of the two
	// procedures must run against a mismatched file layout.
	var o1, o2 core.Optimizer
	soloMain := o1.OptimizeCombined(mainProg)
	soloSweep := o2.OptimizeCombined(sweepProg)
	fmt.Println("\nwithout interprocedural analysis:")
	fmt.Printf("  main wants A %s; sweep wants V %s\n", soloMain.Layouts[a], soloSweep.Layouts[v])
	if soloMain.Layouts[a].Equal(soloSweep.Layouts[v]) {
		fmt.Println("  (they happen to agree here)")
	} else {
		fmt.Println("  -> the shared file cannot satisfy both: one procedure loses")
		// Measure the loss: force sweep to run under main's choice.
		forced := core.NewPlan()
		forced.Layouts[v] = soloMain.Layouts[a]
		forced.Layouts[w] = soloSweep.Layouts[w]
		for nst, np := range soloSweep.Nests {
			forced.Nests[nst] = np
		}
		bad := 0
		for _, rep := range forced.Report(sweepProg, nil) {
			if rep.Locality == core.NoLocality {
				bad++
			}
		}
		fmt.Printf("  sweep under main's layout: %d reference(s) without locality\n", bad)
	}
}
