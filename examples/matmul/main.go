// Matmul: out-of-core matrix multiplication with layout selection and
// the Section-3.3 tiling strategy.
//
// C(i,j) += A(i,k) * B(k,j) pulls in three directions at once: C wants
// temporal locality (k innermost), A wants row-major k-contiguity, B
// wants column-major k-contiguity. The combined optimizer keeps k
// innermost (C temporal) and picks A row-major / B column-major so all
// three references are served. The example then contrasts traditional
// tiling with the out-of-core strategy on the same plan — the Figure-3
// effect at application scale — and verifies the computation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/ooc"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

func main() {
	const n = 96
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	c := ir.NewArray("C", n, n)
	prog := &ir.Program{
		Name:   "matmul",
		Arrays: []*ir.Array{a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(c, 3, 0, 1),
					[]ir.Ref{ir.RefIdx(c, 3, 0, 1), ir.RefIdx(a, 3, 0, 2), ir.RefIdx(b, 3, 2, 1)},
					"muladd", ir.MulAdd()),
			}},
		},
	}

	var opt core.Optimizer
	plan := opt.OptimizeCombined(prog)
	fmt.Println("plan:")
	fmt.Print(plan)
	for _, rep := range plan.Report(prog, nil) {
		fmt.Printf("  %-10s %s locality\n", rep.Ref, rep.Locality)
	}

	// Seed A and B; C starts zero.
	init := ir.NewStore(prog.Arrays...)
	rng := rand.New(rand.NewSource(2))
	for _, arr := range []*ir.Array{a, b} {
		d := init.Data(arr)
		for i := range d {
			d[i] = rng.Float64()
		}
	}

	budget := suite.MemBudget(prog, 64)
	fmt.Printf("\nmemory budget: %d elements (1/64 of %d)\n", budget, suite.TotalElems(prog))
	for _, strat := range []tiling.Strategy{tiling.Traditional, tiling.OutOfCore} {
		nest := prog.Nests[0]
		sched, err := codegen.Build(nest, plan.Nests[nest], codegen.Options{
			Strategy: strat, MemBudget: budget, NoFallback: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := codegen.SetupDisk(prog, plan, 8192, init)
		if err != nil {
			log.Fatal(err)
		}
		mem := ooc.NewMemory(budget)
		if _, err := sched.Execute(d, mem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %s\n", strat.String()+" tiling:", sched.Spec)
		fmt.Printf("%-22s %d I/O calls, %d bytes, peak memory %d elems\n",
			"", d.Stats.Calls(), d.Stats.Bytes(), mem.Peak())

		// Verify against the in-core reference.
		ref := init.Clone()
		prog.Execute(ref)
		got := codegen.DiskToStore(prog, d)
		if diff := ir.MaxAbsDiff(ref, got, c); diff > 1e-9 {
			log.Fatalf("result differs by %g", diff)
		}
		fmt.Printf("%-22s result verified against in-core reference\n\n", "")
	}
}
