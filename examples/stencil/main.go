// Stencil: dependence-constrained optimization on an ADI-style sweep.
//
// The nest A(i,j) = A(i,j-1)·w + B(j,i) carries a (0,1) flow dependence
// along j, and its two references want orthogonal layouts. The example
// shows the optimizer negotiating both constraints: every candidate
// loop transformation is checked against the dependences (an illegal
// interchange is rejected when the recurrence forbids it), the
// remaining freedom goes to file layouts, and the resulting schedule is
// verified out-of-core. A second, reversed-dependence variant shows a
// transform being refused outright.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/deps"
	"outcore/internal/ir"
	"outcore/internal/matrix"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

func main() {
	const n = 96
	a := ir.NewArray("A", n, n+1)
	b := ir.NewArray("B", n+1, n)
	nest := &ir.Nest{
		ID: 0,
		Loops: []ir.Loop{
			{Index: "i", Lo: 0, Hi: n - 1},
			{Index: "j", Lo: 1, Hi: n - 1},
		},
		Body: []*ir.Stmt{
			ir.Assign(
				ir.RefIdx(a, 2, 0, 1),
				[]ir.Ref{
					ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{0, -1}),
					ir.RefIdx(b, 2, 1, 0),
				},
				"sweep",
				func(in []float64, _ []int64) float64 { return in[0]*0.5 + in[1] },
			),
		},
	}
	prog := &ir.Program{Name: "stencil", Arrays: []*ir.Array{a, b}, Nests: []*ir.Nest{nest}}

	fmt.Println("nest:")
	fmt.Print(nest)
	fmt.Println("\ndependences:")
	ds := deps.Analyze(nest)
	for _, d := range ds {
		fmt.Printf("  %s\n", d)
	}

	var opt core.Optimizer
	plan := opt.OptimizeCombined(prog)
	fmt.Println("\nplan (transform legality enforced):")
	fmt.Print(plan)
	np := plan.Nests[nest]
	if !deps.LegalTransform(np.T, ds) {
		log.Fatal("optimizer emitted an illegal transform")
	}
	for _, rep := range plan.Report(prog, nil) {
		fmt.Printf("  %-12s %s locality\n", rep.Ref, rep.Locality)
	}

	// Show the legality machinery directly: interchange is legal for the
	// (0,1) recurrence (it becomes (1,0)), but reversing j is not.
	fmt.Println("\nlegality spot checks:")
	interchange := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	jReversal := matrix.FromRows([][]int64{{1, 0}, {0, -1}})
	fmt.Printf("  interchange legal: %v\n", deps.LegalTransform(interchange, ds))
	fmt.Printf("  j reversal legal:  %v\n", deps.LegalTransform(jReversal, ds))

	// Execute and verify.
	init := ir.NewStore(prog.Arrays...)
	rng := rand.New(rand.NewSource(3))
	for _, arr := range prog.Arrays {
		d := init.Data(arr)
		for i := range d {
			d[i] = rng.Float64()
		}
	}
	budget := suite.MemBudget(prog, 32)
	diff, err := codegen.Verify(prog, plan, codegen.Options{
		Strategy: tiling.OutOfCore, MemBudget: budget,
	}, 512, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout-of-core result matches reference: max diff = %g\n", diff)
}
