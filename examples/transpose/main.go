// Transpose: the out-of-core transpose workload (the paper's "trans"
// kernel from Nwchem) measured under all six program versions on the
// simulated Paragon/PFS platform.
//
// Transposition is the cleanest illustration of why file layouts beat
// loop transformations for out-of-core data: B(i,j) = A(j,i) has
// spatial reuse in orthogonal directions, so no loop order can serve
// both arrays — but storing A column-major and B row-major serves both
// with zero loop changes. The example prints, per version, the
// simulated execution time, I/O call count and bytes moved.
package main

import (
	"fmt"
	"log"

	"outcore/internal/exp"
	"outcore/internal/sim"
	"outcore/internal/suite"
)

func main() {
	const n2 = 256
	kernel, ok := suite.ByName("trans")
	if !ok {
		log.Fatal("trans kernel missing")
	}
	fmt.Printf("out-of-core transpose, %dx%d doubles, 16 processors, 64 I/O nodes\n", n2, n2)
	fmt.Printf("memory budget: 1/128 of the data\n\n")
	fmt.Printf("%-8s %12s %12s %14s %10s\n", "version", "seconds", "I/O calls", "bytes moved", "vs col")

	var colSeconds float64
	for _, v := range suite.Versions {
		m, err := sim.Run(sim.Setup{
			Kernel:  kernel,
			Cfg:     suite.Config{N2: n2, N3: 16, N4: 6},
			Version: v,
			Procs:   16,
			PFS:     exp.ScaledPFS(n2, 64),
		})
		if err != nil {
			log.Fatal(err)
		}
		if v == suite.Col {
			colSeconds = m.Seconds
		}
		fmt.Printf("%-8s %12.2f %12d %14d %9.1f%%\n",
			v, m.Seconds, m.Calls, m.Elems*8, 100*m.Seconds/colSeconds)
	}

	fmt.Println("\nwhat the optimizer decided (c-opt):")
	prog := kernel.Build(suite.Config{N2: n2, N3: 16, N4: 6})
	plan, err := suite.PlanFor(prog, suite.COpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	for _, rep := range plan.Report(prog, nil) {
		fmt.Printf("  %-10s %s locality\n", rep.Ref, rep.Locality)
	}
}
