// Quickstart: optimize and run the paper's Section-3.1 program.
//
// The program is the motivating fragment
//
//	do i, j: U(i,j) = V(j,i) + 1.0
//	do i, j: V(i,j) = W(j,i) + 2.0
//
// The example builds it in the IR, runs the combined loop + file-layout
// optimizer, prints the decisions (U/W row-major, V column-major, loop
// interchange on the second nest), executes the program out-of-core
// under a 1/32 memory budget, verifies the result against an in-core
// reference execution, and reports the I/O calls saved versus the
// column-major baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/ooc"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

func main() {
	const n = 128
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	prog := &ir.Program{
		Name:   "quickstart",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "add1", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "add2", ir.AddConst(2)),
			}},
		},
	}
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("input program:")
	fmt.Print(prog)

	// Run the paper's combined algorithm.
	var opt core.Optimizer
	plan := opt.OptimizeCombined(prog)
	fmt.Println("\noptimization plan (c-opt):")
	fmt.Print(plan)
	for _, rep := range plan.Report(prog, nil) {
		fmt.Printf("  nest %d  %-10s -> %s locality\n", rep.Nest.ID, rep.Ref, rep.Locality)
	}

	// Seed input data.
	init := ir.NewStore(prog.Arrays...)
	rng := rand.New(rand.NewSource(1))
	for _, a := range prog.Arrays {
		d := init.Data(a)
		for i := range d {
			d[i] = rng.Float64()
		}
	}

	// Execute out-of-core and verify against the in-core reference.
	budget := suite.MemBudget(prog, 32)
	opts := codegen.Options{Strategy: tiling.OutOfCore, MemBudget: budget}
	diff, err := codegen.Verify(prog, plan, opts, 256, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout-of-core result matches in-core reference: max diff = %g\n", diff)

	// Compare I/O calls against the unoptimized column-major baseline.
	for _, version := range []suite.Version{suite.Col, suite.COpt} {
		p, _ := suite.PlanFor(prog, version)
		d, err := codegen.SetupDisk(prog, p, 256, init)
		if err != nil {
			log.Fatal(err)
		}
		mem := ooc.NewMemory(budget)
		if _, err := codegen.RunProgram(prog, p, d, mem, codegen.Options{
			Strategy: tiling.OutOfCore, MemBudget: budget, DryRun: true,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s: %6d I/O calls, %8d bytes\n", version, d.Stats.Calls(), d.Stats.Bytes())
	}
}
