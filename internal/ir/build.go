package ir

import "outcore/internal/matrix"

// RefIdx builds the common "permutation" reference A(i_p, i_q, ...)
// where array dimension d is subscripted by loop index idx[d] of a nest
// of the given depth. Offsets are zero.
func RefIdx(a *Array, depth int, idx ...int) Ref {
	if len(idx) != a.Rank() {
		panic("ir: RefIdx index count does not match array rank")
	}
	l := matrix.NewInt(a.Rank(), depth)
	for d, j := range idx {
		if j < 0 || j >= depth {
			panic("ir: RefIdx loop index out of range")
		}
		l.Set(d, j, 1)
	}
	return NewRef(a, l, make([]int64, a.Rank()))
}

// RefAffine builds a general affine reference from explicit access-
// matrix rows and offsets.
func RefAffine(a *Array, rows [][]int64, off []int64) Ref {
	return NewRef(a, matrix.FromRows(rows), off)
}

// Rect builds a depth-k rectangular loop header with 0-based bounds
// [0, n-1] per level, using canonical index names.
func Rect(trip ...int64) []Loop {
	loops := make([]Loop, len(trip))
	for i, n := range trip {
		loops[i] = Loop{Index: IndexName(i), Lo: 0, Hi: n - 1}
	}
	return loops
}

// Assign builds a statement Out = F(In...).
func Assign(out Ref, in []Ref, name string, f StmtFunc) *Stmt {
	return &Stmt{Out: out, In: in, F: f, Name: name}
}

// AddConst returns a StmtFunc computing in[0] + c, the shape of the
// paper's running example statements (U(i,j) = V(j,i) + 1.0).
func AddConst(c float64) StmtFunc {
	return func(in []float64, _ []int64) float64 { return in[0] + c }
}

// Sum returns a StmtFunc summing all inputs.
func Sum() StmtFunc {
	return func(in []float64, _ []int64) float64 {
		var s float64
		for _, v := range in {
			s += v
		}
		return s
	}
}

// MulAdd returns a StmtFunc computing in[0] + in[1]*in[2], the matmul
// update shape.
func MulAdd() StmtFunc {
	return func(in []float64, _ []int64) float64 { return in[0] + in[1]*in[2] }
}
