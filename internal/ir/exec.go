package ir

import "fmt"

// Store holds dense in-memory values for a set of arrays, used as the
// in-core reference executor against which all out-of-core schedules
// are verified. Logical coordinates map to storage by row-major
// linearization; this is an implementation detail of the reference
// executor, independent of any file layout choice.
type Store struct {
	data map[*Array][]float64
}

// NewStore allocates zeroed storage for the given arrays.
func NewStore(arrays ...*Array) *Store {
	s := &Store{data: make(map[*Array][]float64, len(arrays))}
	for _, a := range arrays {
		s.data[a] = make([]float64, a.Len())
	}
	return s
}

// Get returns the value at coordinates c.
func (s *Store) Get(a *Array, c []int64) float64 {
	return s.data[a][s.offset(a, c)]
}

// Set writes v at coordinates c.
func (s *Store) Set(a *Array, c []int64, v float64) {
	s.data[a][s.offset(a, c)] = v
}

// Data exposes the raw backing slice of a (row-major); used to seed
// inputs and to compare results.
func (s *Store) Data(a *Array) []float64 { return s.data[a] }

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := &Store{data: make(map[*Array][]float64, len(s.data))}
	for a, d := range s.data {
		nd := make([]float64, len(d))
		copy(nd, d)
		c.data[a] = nd
	}
	return c
}

func (s *Store) offset(a *Array, c []int64) int64 {
	if len(c) != a.Rank() {
		panic(fmt.Sprintf("ir: store access to %s with %d coords, rank %d", a.Name, len(c), a.Rank()))
	}
	var off int64
	for d, x := range c {
		if x < 0 || x >= a.Dims[d] {
			panic(fmt.Sprintf("ir: store access to %s out of bounds: coord %v, dims %v", a.Name, c, a.Dims))
		}
		off = off*a.Dims[d] + x
	}
	return off
}

// Execute runs the nest sequentially over the store: the in-core
// reference semantics.
func (n *Nest) Execute(s *Store) {
	iv := make([]int64, n.Depth())
	n.execLevel(s, iv, 0)
}

func (n *Nest) execLevel(s *Store, iv []int64, level int) {
	if level == n.Depth() {
		for _, st := range n.Body {
			s.ApplyStmt(st, iv)
		}
		return
	}
	l := n.Loops[level]
	for v := l.Lo; v <= l.Hi; v++ {
		iv[level] = v
		n.execLevel(s, iv, level+1)
	}
}

// ApplyStmt evaluates one statement at iteration vector iv against the
// store. Exported so tiled executors (internal/codegen) can share the
// exact same statement semantics as the reference interpreter.
func (s *Store) ApplyStmt(st *Stmt, iv []int64) {
	if !st.Guarded(iv) {
		return
	}
	in := make([]float64, len(st.In))
	for i, r := range st.In {
		in[i] = s.Get(r.Array, r.Element(iv))
	}
	s.Set(st.Out.Array, st.Out.Element(iv), st.F(in, iv))
}

// Execute runs every nest of the program in order.
func (p *Program) Execute(s *Store) {
	for _, n := range p.Nests {
		n.Execute(s)
	}
}

// MaxAbsDiff returns the largest elementwise |a-b| between the same
// array in two stores, for result comparison in tests.
func MaxAbsDiff(a, b *Store, arr *Array) float64 {
	da, db := a.Data(arr), b.Data(arr)
	var m float64
	for i := range da {
		d := da[i] - db[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
