// Package ir defines the affine loop-nest intermediate representation
// the optimizer works on: arrays with rectilinear extents, references
// expressed as an access matrix plus offset vector (L·I + o), loops
// with rectangular bounds, statements with executable semantics, and
// programs as sequences of (possibly imperfect) nests.
//
// The representation matches the paper's program model: subscript
// expressions and loop bounds are affine in the enclosing loop indices.
// Statements carry a Go closure so every program in the repository can
// be *executed*, not just analyzed - the test suite runs each kernel
// both in-core and out-of-core and compares results elementwise.
package ir

import (
	"fmt"

	"outcore/internal/matrix"
)

// Array describes a (possibly out-of-core) rectilinear array.
type Array struct {
	Name string
	Dims []int64 // extent of each dimension; indices are 0-based
}

// NewArray returns an array descriptor, panicking on non-positive extents.
func NewArray(name string, dims ...int64) *Array {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("ir: array %s has non-positive extent %d", name, d))
		}
	}
	ds := make([]int64, len(dims))
	copy(ds, dims)
	return &Array{Name: name, Dims: ds}
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// Len returns the total number of elements.
func (a *Array) Len() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Ref is an affine array reference L·I + o inside a nest of depth k:
// L is Rank x k, Off has length Rank.
type Ref struct {
	Array *Array
	L     *matrix.Int
	Off   []int64
}

// NewRef builds a reference and validates shapes against the array rank.
func NewRef(a *Array, l *matrix.Int, off []int64) Ref {
	if l.Rows() != a.Rank() {
		panic(fmt.Sprintf("ir: ref to %s: access matrix has %d rows, array rank %d", a.Name, l.Rows(), a.Rank()))
	}
	if len(off) != a.Rank() {
		panic(fmt.Sprintf("ir: ref to %s: offset length %d, array rank %d", a.Name, len(off), a.Rank()))
	}
	o := make([]int64, len(off))
	copy(o, off)
	return Ref{Array: a, L: l, Off: o}
}

// Depth returns the loop-nest depth the reference was built for.
func (r Ref) Depth() int { return r.L.Cols() }

// Element returns the array coordinates touched at iteration vector iv.
func (r Ref) Element(iv []int64) []int64 {
	e := r.L.MulVec(iv)
	for i := range e {
		e[i] += r.Off[i]
	}
	return e
}

// InBounds reports whether coordinates c lie inside the array extents.
func (r Ref) InBounds(c []int64) bool {
	for i, x := range c {
		if x < 0 || x >= r.Array.Dims[i] {
			return false
		}
	}
	return true
}

// String renders the reference as Name(L·I+o) row expressions.
func (r Ref) String() string {
	s := r.Array.Name + "("
	for row := 0; row < r.L.Rows(); row++ {
		if row > 0 {
			s += ","
		}
		s += affineRowString(r.L.Row(row), r.Off[row])
	}
	return s + ")"
}

func affineRowString(coef []int64, off int64) string {
	s := ""
	for j, c := range coef {
		if c == 0 {
			continue
		}
		name := indexName(j)
		switch {
		case c == 1 && s == "":
			s = name
		case c == 1:
			s += "+" + name
		case c == -1:
			s += "-" + name
		case c > 0 && s != "":
			s += fmt.Sprintf("+%d%s", c, name)
		default:
			s += fmt.Sprintf("%d%s", c, name)
		}
	}
	switch {
	case s == "":
		s = fmt.Sprintf("%d", off)
	case off > 0:
		s += fmt.Sprintf("+%d", off)
	case off < 0:
		s += fmt.Sprintf("%d", off)
	}
	return s
}

// indexName names loop levels i, j, k, l, m, n, i6, i7, ...
func indexName(level int) string {
	names := []string{"i", "j", "k", "l", "m", "n"}
	if level < len(names) {
		return names[level]
	}
	return fmt.Sprintf("i%d", level)
}

// IndexName exposes the canonical loop-index naming used by printers.
func IndexName(level int) string { return indexName(level) }

// Loop is one rectangular loop level with inclusive bounds.
type Loop struct {
	Index  string
	Lo, Hi int64
}

// Trip returns the iteration count (0 when empty).
func (l Loop) Trip() int64 {
	if l.Hi < l.Lo {
		return 0
	}
	return l.Hi - l.Lo + 1
}

// StmtFunc computes the value stored by a statement: in holds the
// values of the statement's read references (in order), iv the current
// iteration vector.
type StmtFunc func(in []float64, iv []int64) float64

// GuardEq restricts a statement to iterations where a loop index
// equals a fixed value. Guards arise from code sinking: a statement
// that originally sat between loops is sunk into the deeper nest and
// guarded so it still executes exactly once per original instance.
type GuardEq struct {
	Level int
	Value int64
}

// Stmt is a single-assignment statement: Out = F(In..., iv), executed
// only at iterations satisfying every Guard condition.
type Stmt struct {
	Out   Ref
	In    []Ref
	F     StmtFunc
	Name  string // optional label for diagnostics
	Guard []GuardEq
}

// Guarded reports whether the statement runs at iteration vector iv.
func (s *Stmt) Guarded(iv []int64) bool {
	for _, g := range s.Guard {
		if iv[g.Level] != g.Value {
			return false
		}
	}
	return true
}

// Refs returns all references of the statement, the written one first.
func (s *Stmt) Refs() []Ref {
	out := make([]Ref, 0, 1+len(s.In))
	out = append(out, s.Out)
	out = append(out, s.In...)
	return out
}

// Nest is a perfectly nested loop: Loops[0] is outermost; every
// statement executes in the innermost body.
type Nest struct {
	ID    int
	Loops []Loop
	Body  []*Stmt
}

// Depth returns the nest depth.
func (n *Nest) Depth() int { return len(n.Loops) }

// Iterations returns the total iteration count of the nest.
func (n *Nest) Iterations() int64 {
	total := int64(1)
	for _, l := range n.Loops {
		total *= l.Trip()
	}
	return total
}

// Arrays returns the distinct arrays referenced by the nest, in first-
// appearance order.
func (n *Nest) Arrays() []*Array {
	seen := map[*Array]bool{}
	var out []*Array
	for _, s := range n.Body {
		for _, r := range s.Refs() {
			if !seen[r.Array] {
				seen[r.Array] = true
				out = append(out, r.Array)
			}
		}
	}
	return out
}

// Validate checks internal consistency: every reference depth matches
// the nest depth and loop bounds are sane.
func (n *Nest) Validate() error {
	for _, l := range n.Loops {
		if l.Hi < l.Lo-1 {
			return fmt.Errorf("ir: nest %d: loop %s has reversed bounds [%d,%d]", n.ID, l.Index, l.Lo, l.Hi)
		}
	}
	for si, s := range n.Body {
		for _, r := range s.Refs() {
			if r.Depth() != n.Depth() {
				return fmt.Errorf("ir: nest %d stmt %d: ref %s has depth %d, nest depth %d",
					n.ID, si, r.Array.Name, r.Depth(), n.Depth())
			}
		}
		if s.F == nil {
			return fmt.Errorf("ir: nest %d stmt %d: nil statement function", n.ID, si)
		}
	}
	return nil
}

// Program is a sequence of perfect nests over a set of arrays.
type Program struct {
	Name   string
	Arrays []*Array
	Nests  []*Nest
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	known := map[*Array]bool{}
	for _, a := range p.Arrays {
		known[a] = true
	}
	for _, n := range p.Nests {
		if err := n.Validate(); err != nil {
			return err
		}
		for _, a := range n.Arrays() {
			if !known[a] {
				return fmt.Errorf("ir: program %s: nest %d references undeclared array %s", p.Name, n.ID, a.Name)
			}
		}
	}
	return nil
}
