package ir

import (
	"fmt"
	"strings"
)

// String renders the nest as indented pseudo-Fortran, the notation the
// paper uses in its examples.
func (n *Nest) String() string {
	var b strings.Builder
	for lvl, l := range n.Loops {
		indent(&b, lvl)
		fmt.Fprintf(&b, "do %s = %d, %d\n", l.Index, l.Lo, l.Hi)
	}
	for _, s := range n.Body {
		indent(&b, n.Depth())
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	for lvl := n.Depth() - 1; lvl >= 0; lvl-- {
		indent(&b, lvl)
		b.WriteString("end do\n")
	}
	return b.String()
}

// String renders the statement as "Out = f(In, ...)", prefixed by any
// sinking guards.
func (s *Stmt) String() string {
	var b strings.Builder
	for _, g := range s.Guard {
		fmt.Fprintf(&b, "if (%s == %d) ", IndexName(g.Level), g.Value)
	}
	b.WriteString(s.Out.String())
	b.WriteString(" = ")
	if s.Name != "" {
		b.WriteString(s.Name)
	} else {
		b.WriteString("f")
	}
	b.WriteByte('(')
	for i, r := range s.In {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = fmt.Sprintf("%d", d)
		}
		fmt.Fprintf(&b, "  real %s(%s)\n", a.Name, strings.Join(dims, ","))
	}
	for _, n := range p.Nests {
		fmt.Fprintf(&b, "! nest %d\n", n.ID)
		b.WriteString(n.String())
	}
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}
