package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"outcore/internal/matrix"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray("U", 4, 6)
	if a.Rank() != 2 || a.Len() != 24 {
		t.Errorf("rank=%d len=%d", a.Rank(), a.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive extent did not panic")
		}
	}()
	NewArray("bad", 0)
}

func TestRefElement(t *testing.T) {
	u := NewArray("U", 8, 8)
	// V(j, i): transpose access in a depth-2 nest.
	r := RefIdx(u, 2, 1, 0)
	got := r.Element([]int64{3, 5})
	if got[0] != 5 || got[1] != 3 {
		t.Errorf("Element = %v, want [5 3]", got)
	}
	if !r.InBounds([]int64{7, 7}) || r.InBounds([]int64{8, 0}) || r.InBounds([]int64{-1, 0}) {
		t.Error("InBounds wrong")
	}
}

func TestRefAffineOffsets(t *testing.T) {
	u := NewArray("U", 10, 10)
	r := RefAffine(u, [][]int64{{1, 1}, {0, 2}}, []int64{1, -1})
	got := r.Element([]int64{2, 3})
	if got[0] != 6 || got[1] != 5 {
		t.Errorf("Element = %v, want [6 5]", got)
	}
}

func TestRefStringRendering(t *testing.T) {
	u := NewArray("U", 8, 8)
	r := RefIdx(u, 2, 0, 1)
	if got := r.String(); got != "U(i,j)" {
		t.Errorf("String = %q", got)
	}
	r2 := RefAffine(u, [][]int64{{1, 1}, {1, -1}}, []int64{0, 3})
	if got := r2.String(); got != "U(i+j,i-j+3)" {
		t.Errorf("String = %q", got)
	}
	r3 := RefAffine(u, [][]int64{{2, 0}, {0, -1}}, []int64{-1, 0})
	if got := r3.String(); got != "U(2i-1,-j)" {
		t.Errorf("String = %q", got)
	}
	r4 := RefAffine(u, [][]int64{{0, 0}, {0, 0}}, []int64{5, 0})
	if got := r4.String(); got != "U(5,0)" {
		t.Errorf("String = %q", got)
	}
}

func TestLoopTrip(t *testing.T) {
	if (Loop{Lo: 0, Hi: 9}).Trip() != 10 {
		t.Error("trip wrong")
	}
	if (Loop{Lo: 5, Hi: 4}).Trip() != 0 {
		t.Error("empty loop trip wrong")
	}
}

func TestNestValidateAndIterations(t *testing.T) {
	u := NewArray("U", 4, 4)
	n := &Nest{
		Loops: Rect(4, 4),
		Body: []*Stmt{
			Assign(RefIdx(u, 2, 0, 1), nil, "const", func(_ []float64, iv []int64) float64 {
				return float64(iv[0]*10 + iv[1])
			}),
		},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Iterations() != 16 {
		t.Errorf("iterations = %d", n.Iterations())
	}
	// Depth-mismatched ref must fail validation.
	bad := &Nest{Loops: Rect(4), Body: n.Body}
	if bad.Validate() == nil {
		t.Error("depth mismatch not caught")
	}
	// Nil statement function must fail validation.
	bad2 := &Nest{Loops: Rect(4, 4), Body: []*Stmt{{Out: RefIdx(u, 2, 0, 1)}}}
	if bad2.Validate() == nil {
		t.Error("nil F not caught")
	}
}

func TestNestArraysOrder(t *testing.T) {
	u, v, w := NewArray("U", 4, 4), NewArray("V", 4, 4), NewArray("W", 4, 4)
	n := &Nest{
		Loops: Rect(4, 4),
		Body: []*Stmt{
			Assign(RefIdx(u, 2, 0, 1), []Ref{RefIdx(v, 2, 1, 0)}, "", AddConst(1)),
			Assign(RefIdx(v, 2, 0, 1), []Ref{RefIdx(w, 2, 1, 0)}, "", AddConst(2)),
		},
	}
	arrs := n.Arrays()
	if len(arrs) != 3 || arrs[0] != u || arrs[1] != v || arrs[2] != w {
		t.Errorf("Arrays order = %v", arrs)
	}
}

func TestExecuteSimpleAssign(t *testing.T) {
	u := NewArray("U", 3, 3)
	n := &Nest{
		Loops: Rect(3, 3),
		Body: []*Stmt{
			Assign(RefIdx(u, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 {
				return float64(iv[0]*3 + iv[1])
			}),
		},
	}
	s := NewStore(u)
	n.Execute(s)
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 3; j++ {
			if got := s.Get(u, []int64{i, j}); got != float64(i*3+j) {
				t.Errorf("U(%d,%d) = %v", i, j, got)
			}
		}
	}
}

func TestExecuteTransposeChain(t *testing.T) {
	// The paper's Section 3.1 fragment: U = Vᵀ + 1; V = Wᵀ + 2.
	const N = 5
	u, v, w := NewArray("U", N, N), NewArray("V", N, N), NewArray("W", N, N)
	p := &Program{
		Name:   "frag",
		Arrays: []*Array{u, v, w},
		Nests: []*Nest{
			{ID: 0, Loops: Rect(N, N), Body: []*Stmt{
				Assign(RefIdx(u, 2, 0, 1), []Ref{RefIdx(v, 2, 1, 0)}, "", AddConst(1)),
			}},
			{ID: 1, Loops: Rect(N, N), Body: []*Stmt{
				Assign(RefIdx(v, 2, 0, 1), []Ref{RefIdx(w, 2, 1, 0)}, "", AddConst(2)),
			}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewStore(u, v, w)
	rng := rand.New(rand.NewSource(7))
	for i := range s.Data(w) {
		s.Data(w)[i] = rng.Float64()
	}
	for i := range s.Data(v) {
		s.Data(v)[i] = rng.Float64()
	}
	vBefore := make([]float64, len(s.Data(v)))
	copy(vBefore, s.Data(v))
	p.Execute(s)
	for i := int64(0); i < N; i++ {
		for j := int64(0); j < N; j++ {
			wantU := vBefore[j*N+i] + 1 // U(i,j) = old V(j,i) + 1 (nest order!)
			// Nest 0 runs before nest 1, so U sees the ORIGINAL V.
			if got := s.Get(u, []int64{i, j}); got != wantU {
				t.Errorf("U(%d,%d) = %v, want %v", i, j, got, wantU)
			}
			wantV := s.Get(w, []int64{j, i}) + 2
			if got := s.Get(v, []int64{i, j}); got != wantV {
				t.Errorf("V(%d,%d) = %v, want %v", i, j, got, wantV)
			}
		}
	}
}

func TestStoreCloneIndependent(t *testing.T) {
	u := NewArray("U", 2, 2)
	s := NewStore(u)
	s.Set(u, []int64{0, 0}, 1)
	c := s.Clone()
	c.Set(u, []int64{0, 0}, 9)
	if s.Get(u, []int64{0, 0}) != 1 {
		t.Error("clone aliases original")
	}
}

func TestStoreOutOfBoundsPanics(t *testing.T) {
	u := NewArray("U", 2, 2)
	s := NewStore(u)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access did not panic")
		}
	}()
	s.Get(u, []int64{2, 0})
}

func TestMaxAbsDiff(t *testing.T) {
	u := NewArray("U", 2, 2)
	a, b := NewStore(u), NewStore(u)
	a.Set(u, []int64{1, 1}, 3)
	b.Set(u, []int64{1, 1}, 1)
	if MaxAbsDiff(a, b, u) != 2 {
		t.Error("MaxAbsDiff wrong")
	}
}

func TestNestString(t *testing.T) {
	u, v := NewArray("U", 8, 8), NewArray("V", 8, 8)
	n := &Nest{
		Loops: Rect(8, 8),
		Body: []*Stmt{
			Assign(RefIdx(u, 2, 0, 1), []Ref{RefIdx(v, 2, 1, 0)}, "add1", AddConst(1)),
		},
	}
	out := n.String()
	for _, want := range []string{"do i = 0, 7", "do j = 0, 7", "U(i,j) = add1(V(j,i))", "end do"} {
		if !strings.Contains(out, want) {
			t.Errorf("nest string missing %q:\n%s", want, out)
		}
	}
}

func TestProgramStringAndValidate(t *testing.T) {
	u := NewArray("U", 4, 4)
	ghost := NewArray("G", 4, 4)
	p := &Program{Name: "p", Arrays: []*Array{u}, Nests: []*Nest{
		{Loops: Rect(4, 4), Body: []*Stmt{Assign(RefIdx(u, 2, 0, 1), nil, "", AddConst(0))}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "real U(4,4)") {
		t.Errorf("program string:\n%s", p.String())
	}
	// Undeclared array must be caught.
	p.Nests = append(p.Nests, &Nest{Loops: Rect(4, 4), Body: []*Stmt{
		Assign(RefIdx(ghost, 2, 0, 1), nil, "", AddConst(0)),
	}})
	if p.Validate() == nil {
		t.Error("undeclared array not caught")
	}
}

func TestPropertyRefElementLinear(t *testing.T) {
	// Element must be affine: Element(a+b) - Element(b) == L·a.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arr := NewArray("A", 100, 100)
		l := matrix.NewInt(2, 3)
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				l.Set(i, j, int64(rng.Intn(5)-2))
			}
		}
		r := NewRef(arr, l, []int64{int64(rng.Intn(5)), int64(rng.Intn(5))})
		a := []int64{int64(rng.Intn(4)), int64(rng.Intn(4)), int64(rng.Intn(4))}
		b := []int64{int64(rng.Intn(4)), int64(rng.Intn(4)), int64(rng.Intn(4))}
		ab := []int64{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
		ea, eb := r.Element(ab), r.Element(b)
		la := l.MulVec(a)
		for d := range ea {
			if ea[d]-eb[d] != la[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
