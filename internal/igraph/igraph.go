// Package igraph builds the paper's interference graph (Step 2 of the
// optimization strategy): a bipartite graph with loop-nest nodes on one
// side and array nodes on the other, and an edge wherever a nest
// references an array. Connected components partition the program into
// fragments that share no arrays, so the global layout algorithm can
// process each component independently.
package igraph

import (
	"sort"

	"outcore/internal/ir"
)

// Graph is the bipartite interference graph of a program.
type Graph struct {
	Nests  []*ir.Nest
	Arrays []*ir.Array
	// Edges[nest] lists the arrays the nest references.
	Edges map[*ir.Nest][]*ir.Array
}

// Build constructs the interference graph of a program.
func Build(p *ir.Program) *Graph {
	g := &Graph{Edges: make(map[*ir.Nest][]*ir.Array)}
	seenArr := map[*ir.Array]bool{}
	for _, n := range p.Nests {
		g.Nests = append(g.Nests, n)
		arrs := n.Arrays()
		g.Edges[n] = arrs
		for _, a := range arrs {
			if !seenArr[a] {
				seenArr[a] = true
				g.Arrays = append(g.Arrays, a)
			}
		}
	}
	return g
}

// Component is a maximal set of nests and arrays connected by
// reference edges.
type Component struct {
	Nests  []*ir.Nest
	Arrays []*ir.Array
}

// Components returns the connected components of the graph. Nests
// within a component keep program order; components are ordered by
// their first nest.
func (g *Graph) Components() []Component {
	// Union-find over nests, joined through shared arrays.
	parent := map[*ir.Nest]*ir.Nest{}
	var find func(n *ir.Nest) *ir.Nest
	find = func(n *ir.Nest) *ir.Nest {
		if parent[n] == n {
			return n
		}
		parent[n] = find(parent[n])
		return parent[n]
	}
	for _, n := range g.Nests {
		parent[n] = n
	}
	owner := map[*ir.Array]*ir.Nest{}
	for _, n := range g.Nests {
		for _, a := range g.Edges[n] {
			if o, ok := owner[a]; ok {
				parent[find(n)] = find(o)
			} else {
				owner[a] = n
			}
		}
	}
	// Group nests by root, preserving program order.
	order := map[*ir.Nest]int{}
	for i, n := range g.Nests {
		order[n] = i
	}
	groups := map[*ir.Nest][]*ir.Nest{}
	for _, n := range g.Nests {
		r := find(n)
		groups[r] = append(groups[r], n)
	}
	var comps []Component
	for _, nests := range groups {
		sort.Slice(nests, func(i, j int) bool { return order[nests[i]] < order[nests[j]] })
		c := Component{Nests: nests}
		seen := map[*ir.Array]bool{}
		for _, n := range nests {
			for _, a := range g.Edges[n] {
				if !seen[a] {
					seen[a] = true
					c.Arrays = append(c.Arrays, a)
				}
			}
		}
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return order[comps[i].Nests[0]] < order[comps[j].Nests[0]] })
	return comps
}
