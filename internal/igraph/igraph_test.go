package igraph

import (
	"testing"

	"outcore/internal/ir"
)

func nestOver(id int, depth int64, arrays ...*ir.Array) *ir.Nest {
	var body []*ir.Stmt
	for _, a := range arrays {
		body = append(body, ir.Assign(ir.RefIdx(a, 2, 0, 1), nil, "", ir.AddConst(0)))
	}
	return &ir.Nest{ID: id, Loops: ir.Rect(depth, depth), Body: body}
}

func TestBuildEdges(t *testing.T) {
	u, v := ir.NewArray("U", 4, 4), ir.NewArray("V", 4, 4)
	n0 := nestOver(0, 4, u, v)
	p := &ir.Program{Nests: []*ir.Nest{n0}, Arrays: []*ir.Array{u, v}}
	g := Build(p)
	if len(g.Nests) != 1 || len(g.Arrays) != 2 {
		t.Fatalf("graph sizes: %d nests, %d arrays", len(g.Nests), len(g.Arrays))
	}
	if len(g.Edges[n0]) != 2 {
		t.Errorf("edges = %v", g.Edges[n0])
	}
}

// TestFigure1Components reproduces the paper's Figure 1: nests over
// {U,V,W} form one component, nests over {X,Y} another.
func TestFigure1Components(t *testing.T) {
	u, v, w := ir.NewArray("U", 4, 4), ir.NewArray("V", 4, 4), ir.NewArray("W", 4, 4)
	x, y := ir.NewArray("X", 4, 4), ir.NewArray("Y", 4, 4)
	n0 := nestOver(0, 4, u, v, w)
	n1 := nestOver(1, 4, x)
	n2 := nestOver(2, 4, y, x)
	p := &ir.Program{Nests: []*ir.Nest{n0, n1, n2}}
	comps := Build(p).Components()
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2", len(comps))
	}
	if len(comps[0].Nests) != 1 || comps[0].Nests[0] != n0 {
		t.Errorf("component 0 nests wrong")
	}
	if len(comps[1].Nests) != 2 || comps[1].Nests[0] != n1 || comps[1].Nests[1] != n2 {
		t.Errorf("component 1 nests wrong or out of order")
	}
	if len(comps[0].Arrays) != 3 || len(comps[1].Arrays) != 2 {
		t.Errorf("component array counts: %d, %d", len(comps[0].Arrays), len(comps[1].Arrays))
	}
}

func TestComponentsTransitiveSharing(t *testing.T) {
	// n0 uses {A,B}, n1 uses {B,C}, n2 uses {C,D}: all one component.
	a, b, c, d := ir.NewArray("A", 4, 4), ir.NewArray("B", 4, 4), ir.NewArray("C", 4, 4), ir.NewArray("D", 4, 4)
	p := &ir.Program{Nests: []*ir.Nest{
		nestOver(0, 4, a, b), nestOver(1, 4, b, c), nestOver(2, 4, c, d),
	}}
	comps := Build(p).Components()
	if len(comps) != 1 {
		t.Fatalf("%d components, want 1", len(comps))
	}
	if len(comps[0].Arrays) != 4 || len(comps[0].Nests) != 3 {
		t.Error("component contents wrong")
	}
}

func TestComponentsAllDisjoint(t *testing.T) {
	arrs := []*ir.Array{ir.NewArray("A", 4, 4), ir.NewArray("B", 4, 4), ir.NewArray("C", 4, 4)}
	var nests []*ir.Nest
	for i, a := range arrs {
		nests = append(nests, nestOver(i, 4, a))
	}
	comps := Build(&ir.Program{Nests: nests}).Components()
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	for i, c := range comps {
		if c.Nests[0].ID != i {
			t.Error("components out of program order")
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	if comps := Build(&ir.Program{}).Components(); len(comps) != 0 {
		t.Errorf("empty program has %d components", len(comps))
	}
}
