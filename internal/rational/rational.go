// Package rational implements exact rational arithmetic on int64
// numerators and denominators.
//
// The compiler analyses in this repository (kernel computation,
// Fourier-Motzkin elimination, matrix inversion) require exact
// arithmetic: floating point would silently turn "is this entry zero?"
// into a tolerance question and corrupt layout decisions. Values stay
// tiny in practice (loop transformation matrices have small integer
// entries), so int64 fractions with overflow checks are both faster and
// simpler than math/big.
package rational

import (
	"fmt"
	"math"
)

// Rat is an exact rational number p/q with q > 0 and gcd(|p|, q) == 1.
// The zero value is 0/1, i.e. a valid representation of zero.
type Rat struct {
	p int64 // numerator, carries the sign
	q int64 // denominator, always > 0 for normalized values
}

// Common constants.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// New returns the normalized rational p/q. It panics if q == 0.
func New(p, q int64) Rat {
	if q == 0 {
		panic("rational: zero denominator")
	}
	if q < 0 {
		p, q = -p, -q
	}
	g := gcd64(abs64(p), q)
	if g > 1 {
		p /= g
		q /= g
	}
	if q == 0 { // q was MinInt64; cannot normalize
		panic("rational: denominator overflow")
	}
	return Rat{p, q}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the numerator (sign-carrying).
func (r Rat) Num() int64 { return r.num() }

// Den returns the positive denominator.
func (r Rat) Den() int64 { return r.den() }

// num and den treat the zero value {0,0} as 0/1.
func (r Rat) num() int64 { return r.p }
func (r Rat) den() int64 {
	if r.q == 0 {
		return 1
	}
	return r.q
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num() == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.den() == 1 }

// Int returns the value as an int64, panicking if r is not an integer.
func (r Rat) Int() int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("rational: %s is not an integer", r))
	}
	return r.num()
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num() > 0:
		return 1
	case r.num() < 0:
		return -1
	default:
		return 0
	}
}

// Neg returns -r.
func (r Rat) Neg() Rat { return Rat{mulChecked(-1, r.num()), r.den()} }

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	// p1/q1 + p2/q2 = (p1*q2 + p2*q1) / (q1*q2), reduced via the gcd of
	// denominators first to keep intermediates small.
	q1, q2 := r.den(), s.den()
	g := gcd64(q1, q2)
	q1g, q2g := q1/g, q2/g
	num := addChecked(mulChecked(r.num(), q2g), mulChecked(s.num(), q1g))
	den := mulChecked(q1, q2g)
	return New(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	// Cross-reduce before multiplying to avoid overflow.
	g1 := gcd64(abs64(r.num()), s.den())
	g2 := gcd64(abs64(s.num()), r.den())
	num := mulChecked(r.num()/g1, s.num()/g2)
	den := mulChecked(r.den()/g2, s.den()/g1)
	return New(num, den)
}

// Div returns r / s, panicking if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("rational: division by zero")
	}
	return r.Mul(Rat{s.den(), abs64(s.num())}.withSign(s.Sign()))
}

// withSign returns r with its sign forced to sign (which must be ±1).
func (r Rat) withSign(sign int) Rat {
	n := abs64(r.num())
	if sign < 0 {
		n = -n
	}
	return Rat{n, r.den()}
}

// Inv returns 1/r, panicking if r == 0.
func (r Rat) Inv() Rat { return One.Div(r) }

// Cmp compares r and s, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int { return r.Sub(s).Sign() }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.num() == s.num() && r.den() == s.den() }

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r
}

// Float returns the nearest float64 (for reporting only; never used in
// analysis decisions).
func (r Rat) Float() float64 { return float64(r.num()) / float64(r.den()) }

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	p, q := r.num(), r.den()
	d := p / q
	if p%q != 0 && p < 0 {
		d--
	}
	return d
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	p, q := r.num(), r.den()
	d := p / q
	if p%q != 0 && p > 0 {
		d++
	}
	return d
}

// String renders r as "p" or "p/q".
func (r Rat) String() string {
	if r.IsInt() {
		return fmt.Sprintf("%d", r.num())
	}
	return fmt.Sprintf("%d/%d", r.num(), r.den())
}

// GCD returns the non-negative greatest common divisor of a and b,
// with GCD(0, 0) == 0.
func GCD(a, b int64) int64 { return gcd64(abs64(a), abs64(b)) }

// GCDAll returns the gcd of all values (0 for an empty or all-zero list).
func GCDAll(vals ...int64) int64 {
	g := int64(0)
	for _, v := range vals {
		g = gcd64(g, abs64(v))
	}
	return g
}

// LCM returns the least common multiple of a and b (0 if either is 0).
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	a, b = abs64(a), abs64(b)
	return mulChecked(a/gcd64(a, b), b)
}

// ExtGCD returns (g, x, y) with a*x + b*y == g == gcd(a, b) >= 0.
func ExtGCD(a, b int64) (g, x, y int64) {
	// Iterative extended Euclid keeps coefficients small.
	oldR, r := a, b
	oldX, xx := int64(1), int64(0)
	oldY, yy := int64(0), int64(1)
	for r != 0 {
		quot := oldR / r
		oldR, r = r, oldR-quot*r
		oldX, xx = xx, oldX-quot*xx
		oldY, yy = yy, oldY-quot*yy
	}
	if oldR < 0 {
		oldR, oldX, oldY = -oldR, -oldX, -oldY
	}
	return oldR, oldX, oldY
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(a int64) int64 {
	if a < 0 {
		if a == math.MinInt64 {
			panic("rational: abs overflow")
		}
		return -a
	}
	return a
}

func addChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic("rational: addition overflow")
	}
	return s
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic("rational: multiplication overflow")
	}
	return p
}
