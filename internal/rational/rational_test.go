package rational

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		p, q         int64
		wantP, wantQ int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{7, 1, 7, 1},
		{-9, 3, -3, 1},
	}
	for _, c := range cases {
		r := New(c.p, c.q)
		if r.Num() != c.wantP || r.Den() != c.wantQ {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.p, c.q, r.Num(), r.Den(), c.wantP, c.wantQ)
		}
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value not zero")
	}
	if got := r.Add(One); !got.Equal(One) {
		t.Errorf("0+1 = %s", got)
	}
	if r.Den() != 1 {
		t.Errorf("zero value Den = %d", r.Den())
	}
	if r.String() != "0" {
		t.Errorf("zero value String = %q", r.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %s", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %s", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %s", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %s", got)
	}
	if got := New(-3, 4).Neg(); !got.Equal(New(3, 4)) {
		t.Errorf("-(-3/4) = %s", got)
	}
	if got := New(-3, 4).Abs(); !got.Equal(New(3, 4)) {
		t.Errorf("|-3/4| = %s", got)
	}
	if got := New(2, 3).Inv(); !got.Equal(New(3, 2)) {
		t.Errorf("inv(2/3) = %s", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestCmpAndSign(t *testing.T) {
	if New(1, 2).Cmp(New(2, 3)) != -1 {
		t.Error("1/2 < 2/3 failed")
	}
	if New(2, 3).Cmp(New(1, 2)) != 1 {
		t.Error("2/3 > 1/2 failed")
	}
	if New(3, 6).Cmp(New(1, 2)) != 0 {
		t.Error("3/6 == 1/2 failed")
	}
	if New(-1, 2).Sign() != -1 || Zero.Sign() != 0 || One.Sign() != 1 {
		t.Error("Sign failed")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(4, 2), 2, 2},
		{New(-4, 2), -2, -2},
		{Zero, 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%s) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestIntAccessors(t *testing.T) {
	if !FromInt(5).IsInt() || FromInt(5).Int() != 5 {
		t.Error("FromInt/Int roundtrip failed")
	}
	if New(1, 2).IsInt() {
		t.Error("1/2 reported as integer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on non-integer did not panic")
		}
	}()
	New(1, 2).Int()
}

func TestString(t *testing.T) {
	if got := New(3, 4).String(); got != "3/4" {
		t.Errorf("String = %q", got)
	}
	if got := New(-6, 4).String(); got != "-3/2" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(-7).String(); got != "-7" {
		t.Errorf("String = %q", got)
	}
}

func TestGCDHelpers(t *testing.T) {
	if GCD(12, 18) != 6 || GCD(-12, 18) != 6 || GCD(0, 0) != 0 || GCD(0, 7) != 7 {
		t.Error("GCD failed")
	}
	if GCDAll(4, 6, 10) != 2 || GCDAll() != 0 || GCDAll(0, 0) != 0 {
		t.Error("GCDAll failed")
	}
	if LCM(4, 6) != 12 || LCM(0, 5) != 0 || LCM(-4, 6) != 12 {
		t.Error("LCM failed")
	}
}

func TestExtGCD(t *testing.T) {
	cases := [][2]int64{{240, 46}, {-240, 46}, {240, -46}, {0, 5}, {5, 0}, {0, 0}, {1, 1}, {-7, -3}}
	for _, c := range cases {
		g, x, y := ExtGCD(c[0], c[1])
		if g != GCD(c[0], c[1]) {
			t.Errorf("ExtGCD(%d,%d) g=%d want %d", c[0], c[1], g, GCD(c[0], c[1]))
		}
		if c[0]*x+c[1]*y != g {
			t.Errorf("ExtGCD(%d,%d): %d*%d + %d*%d != %d", c[0], c[1], c[0], x, c[1], y, g)
		}
	}
}

// randRat produces small random rationals for property tests.
func randRat(r *rand.Rand) Rat {
	p := r.Int63n(201) - 100
	q := r.Int63n(100) + 1
	return New(p, q)
}

func TestPropertyFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Commutativity and associativity of Add/Mul, distributivity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randRat(rng), randRat(rng), randRat(rng)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			return false
		}
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			return false
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyInverses(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRat(rng)
		if !a.Sub(a).IsZero() {
			return false
		}
		if !a.Add(a.Neg()).IsZero() {
			return false
		}
		if !a.IsZero() && !a.Div(a).Equal(One) {
			return false
		}
		if !a.IsZero() && !a.Mul(a.Inv()).Equal(One) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyFloorCeilBracket(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRat(rng)
		fl, ce := FromInt(a.Floor()), FromInt(a.Ceil())
		if fl.Cmp(a) > 0 || ce.Cmp(a) < 0 {
			return false
		}
		if a.IsInt() {
			return fl.Equal(ce)
		}
		return ce.Sub(fl).Equal(One)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormalization(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRat(rng)
		// Always normalized: positive denominator, coprime.
		if a.Den() <= 0 {
			return false
		}
		return GCD(a.Num(), a.Den()) <= 1 || a.Num() == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOverflowPanics(t *testing.T) {
	big := FromInt(1 << 62)
	mustPanicRat(t, func() { big.Mul(big) })
	mustPanicRat(t, func() { big.Add(big) })
	neg := FromInt(-(1 << 62))
	mustPanicRat(t, func() { neg.Add(neg) })
}

func mustPanicRat(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	f()
}

func TestWithSignAndAbs(t *testing.T) {
	if got := New(-3, 4).withSign(1); !got.Equal(New(3, 4)) {
		t.Errorf("withSign(+) = %s", got)
	}
	if got := New(3, 4).withSign(-1); !got.Equal(New(-3, 4)) {
		t.Errorf("withSign(-) = %s", got)
	}
}
