// Package restructure implements Step 1 of the paper's strategy:
// turning arbitrary (imperfectly nested) loop structures into a
// sequence of perfectly nested loops using loop fusion, loop
// distribution, and code sinking.
//
// Input programs are trees: a node is either a loop (with children) or
// a statement. Normalize converts a tree into []*ir.Nest:
//
//   - a loop whose children are all loops with identical headers is
//     fused when legal;
//   - a loop with multiple children is distributed over them when
//     legal;
//   - a statement that remains between loops is sunk into the adjacent
//     loop with an equality guard so it executes exactly once.
//
// Legality checks are conservative: they may refuse a transformation
// that a smarter analysis could prove safe, but never apply an unsafe
// one.
package restructure

import (
	"fmt"

	"outcore/internal/deps"
	"outcore/internal/ir"
	"outcore/internal/matrix"
)

// Node is a tree node: exactly one of Loop or Stmt is set.
type Node struct {
	Loop     *LoopNode
	Stmt     *StmtNode
	Children []*Node // loop bodies only
}

// LoopNode is a loop header at its nesting position.
type LoopNode struct {
	Index  string
	Lo, Hi int64
}

// StmtNode carries a statement whose references are expressed against
// the loop variables of its own path; Depth records how many loops
// enclose it in the source tree.
type StmtNode struct {
	Stmt  *ir.Stmt
	Depth int
}

// NewLoop builds a loop node.
func NewLoop(index string, lo, hi int64, children ...*Node) *Node {
	return &Node{Loop: &LoopNode{Index: index, Lo: lo, Hi: hi}, Children: children}
}

// NewStmt builds a statement leaf at the given depth.
func NewStmt(s *ir.Stmt, depth int) *Node {
	return &Node{Stmt: &StmtNode{Stmt: s, Depth: depth}}
}

// Normalize converts a sequence of top-level tree nodes into perfect
// nests. Statements at top level are rejected (there is no loop to
// sink into at depth 0 that would preserve meaning cheaply; wrap them
// in a trip-1 loop in the builder instead).
func Normalize(roots []*Node) ([]*ir.Nest, error) {
	var nests []*ir.Nest
	id := 0
	for _, root := range roots {
		if root.Loop == nil {
			return nil, fmt.Errorf("restructure: top-level statement; wrap it in a trip-1 loop")
		}
		ns, err := normalizeLoop(root, nil)
		if err != nil {
			return nil, err
		}
		for _, n := range ns {
			n.ID = id
			id++
			nests = append(nests, n)
		}
	}
	// Final fusion pass over adjacent compatible nests.
	nests = fuseAdjacent(nests)
	for i, n := range nests {
		n.ID = i
	}
	return nests, nil
}

// normalizeLoop flattens one loop node (with the headers of its
// ancestors in outer) into one or more perfect nests.
func normalizeLoop(node *Node, outer []ir.Loop) ([]*ir.Nest, error) {
	headers := append(append([]ir.Loop{}, outer...), ir.Loop{Index: node.Loop.Index, Lo: node.Loop.Lo, Hi: node.Loop.Hi})
	// Partition children into groups; each group becomes one or more
	// nests after distribution of this loop over the groups.
	type group struct {
		stmts []*ir.Stmt // statements at this level
		loop  *Node      // or a nested loop
	}
	var groups []group
	for _, ch := range node.Children {
		if ch.Stmt != nil {
			// Statements merge into the preceding group when it is also a
			// statement group; otherwise start a new one.
			if len(groups) > 0 && groups[len(groups)-1].loop == nil {
				groups[len(groups)-1].stmts = append(groups[len(groups)-1].stmts, ch.Stmt.Stmt)
			} else {
				groups = append(groups, group{stmts: []*ir.Stmt{ch.Stmt.Stmt}})
			}
		} else {
			groups = append(groups, group{loop: ch})
		}
	}
	// Recursively normalize each group.
	groupNests := make([][]*ir.Nest, len(groups))
	for gi, g := range groups {
		if g.loop != nil {
			ns, err := normalizeLoop(g.loop, headers)
			if err != nil {
				return nil, err
			}
			groupNests[gi] = ns
			continue
		}
		groupNests[gi] = []*ir.Nest{{Loops: headers, Body: padStmts(g.stmts, len(headers))}}
	}
	// Distribution of this loop over the groups must not reorder any
	// backward conflict between a later and an earlier group.
	if len(groups) > 1 {
		for i := range groupNests {
			for j := i + 1; j < len(groupNests); j++ {
				if !distributionLegal(groupNests[i], groupNests[j], len(headers)) {
					return nil, fmt.Errorf("restructure: distribution of loop %s blocked by backward dependence", node.Loop.Index)
				}
			}
		}
	}
	var out []*ir.Nest
	for _, ns := range groupNests {
		out = append(out, ns...)
	}
	return out, nil
}

// padStmts lifts statements written for depth d to depth k by
// appending zero columns to every access matrix. The statements keep
// their single execution per original instance: no guard is needed
// when the statement already sits at full depth; sunk statements get
// guards pinning the extra inner loops to their lower bound.
func padStmts(stmts []*ir.Stmt, depth int) []*ir.Stmt {
	out := make([]*ir.Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = PadStmt(s, depth, nil)
	}
	return out
}

// PadStmt returns a copy of s rewritten for a nest of the given depth.
// Access matrices gain zero columns; sinkLevels lists the loop levels
// the statement was sunk through, which become equality guards at
// those loops' lower bounds (passed as level->bound pairs).
func PadStmt(s *ir.Stmt, depth int, sink []ir.GuardEq) *ir.Stmt {
	if s.Out.Depth() > depth {
		panic("restructure: statement deeper than target nest")
	}
	pad := func(r ir.Ref) ir.Ref {
		if r.Depth() == depth {
			return r
		}
		l := matrix.NewInt(r.Array.Rank(), depth)
		for i := 0; i < r.L.Rows(); i++ {
			for j := 0; j < r.L.Cols(); j++ {
				l.Set(i, j, r.L.At(i, j))
			}
		}
		return ir.NewRef(r.Array, l, r.Off)
	}
	ns := &ir.Stmt{Out: pad(s.Out), F: s.F, Name: s.Name}
	for _, r := range s.In {
		ns.In = append(ns.In, pad(r))
	}
	ns.Guard = append(append([]ir.GuardEq{}, s.Guard...), sink...)
	return ns
}

// distributionLegal allows fission between an earlier and a later group
// when no conflicting reference pair (same array, at least one write)
// can run backwards across the split: a later-group access at common
// iteration c1 conflicting with an earlier-group access at c2 ≻ c1.
// The directional test is deps.CrossNestBackward.
func distributionLegal(earlier, later []*ir.Nest, common int) bool {
	type occ struct {
		ref   ir.Ref
		write bool
	}
	collect := func(ns []*ir.Nest) []occ {
		var out []occ
		for _, n := range ns {
			for _, s := range n.Body {
				out = append(out, occ{s.Out, true})
				for _, r := range s.In {
					out = append(out, occ{r, false})
				}
			}
		}
		return out
	}
	es, ls := collect(earlier), collect(later)
	for _, e := range es {
		for _, l := range ls {
			if e.ref.Array != l.ref.Array || (!e.write && !l.write) {
				continue
			}
			if deps.CrossNestBackward(l.ref, e.ref, common) {
				return false
			}
		}
	}
	return true
}

// fuseAdjacent fuses neighboring nests with identical loop headers
// when the conservative legality test allows it: fusion is applied
// only when, for every array written in either nest and referenced in
// the other, all references to it across both nests are uniformly
// generated (equal access matrices) with equal offsets — i.e. the
// fused body touches the same element in the same iteration, so the
// interleaving change cannot reorder a dependence.
func fuseAdjacent(nests []*ir.Nest) []*ir.Nest {
	if len(nests) == 0 {
		return nests
	}
	out := []*ir.Nest{nests[0]}
	for _, n := range nests[1:] {
		prev := out[len(out)-1]
		if sameHeaders(prev, n) && sharesArray(prev, n) && fusionLegal(prev, n) {
			prev.Body = append(prev.Body, n.Body...)
			continue
		}
		out = append(out, n)
	}
	return out
}

// sharesArray reports whether two nests reference a common array.
// Fusion is only attempted for such pairs: fusing unrelated nests has
// no locality benefit and would coarsen the interference graph.
func sharesArray(a, b *ir.Nest) bool {
	in := map[*ir.Array]bool{}
	for _, arr := range a.Arrays() {
		in[arr] = true
	}
	for _, arr := range b.Arrays() {
		if in[arr] {
			return true
		}
	}
	return false
}

func sameHeaders(a, b *ir.Nest) bool {
	if a.Depth() != b.Depth() {
		return false
	}
	for i := range a.Loops {
		if a.Loops[i].Lo != b.Loops[i].Lo || a.Loops[i].Hi != b.Loops[i].Hi {
			return false
		}
	}
	return true
}

func fusionLegal(a, b *ir.Nest) bool {
	refsOf := func(n *ir.Nest) map[*ir.Array][]ir.Ref {
		m := map[*ir.Array][]ir.Ref{}
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				m[r.Array] = append(m[r.Array], r)
			}
		}
		return m
	}
	writesOf := func(n *ir.Nest) map[*ir.Array]bool {
		m := map[*ir.Array]bool{}
		for _, s := range n.Body {
			m[s.Out.Array] = true
		}
		return m
	}
	ra, rb := refsOf(a), refsOf(b)
	wa, wb := writesOf(a), writesOf(b)
	for arr := range ra {
		if _, shared := rb[arr]; !shared {
			continue
		}
		if !wa[arr] && !wb[arr] {
			continue // read-only sharing never blocks fusion
		}
		all := append(append([]ir.Ref{}, ra[arr]...), rb[arr]...)
		first := all[0]
		for _, r := range all[1:] {
			if !r.L.Equal(first.L) {
				return false
			}
			for d := range r.Off {
				if r.Off[d] != first.Off[d] {
					return false
				}
			}
		}
	}
	return true
}
