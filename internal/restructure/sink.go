package restructure

import (
	"fmt"

	"outcore/internal/ir"
)

// SinkInto performs code sinking: it merges a shallow statement nest
// (depth d) into an adjacent deeper nest (depth k > d) whose outer d
// loop headers match. The sunk statements receive equality guards
// pinning the extra inner loops to their lower (before=true) or upper
// (before=false) bounds, so each original instance executes exactly
// once, ordered before or after the deep nest's body at that outer
// iteration.
//
// Sinking is the paper's third normalization tool alongside fusion and
// distribution; it trades a guard for a perfect nest.
func SinkInto(shallow, deep *ir.Nest, before bool) (*ir.Nest, error) {
	d, k := shallow.Depth(), deep.Depth()
	if d >= k {
		return nil, fmt.Errorf("restructure: sink source depth %d not shallower than target %d", d, k)
	}
	for lvl := 0; lvl < d; lvl++ {
		if shallow.Loops[lvl].Lo != deep.Loops[lvl].Lo || shallow.Loops[lvl].Hi != deep.Loops[lvl].Hi {
			return nil, fmt.Errorf("restructure: sink outer headers differ at level %d", lvl)
		}
	}
	var guards []ir.GuardEq
	for lvl := d; lvl < k; lvl++ {
		v := deep.Loops[lvl].Lo
		if !before {
			v = deep.Loops[lvl].Hi
		}
		guards = append(guards, ir.GuardEq{Level: lvl, Value: v})
	}
	var body []*ir.Stmt
	if before {
		for _, s := range shallow.Body {
			body = append(body, PadStmt(s, k, guards))
		}
		body = append(body, deep.Body...)
	} else {
		body = append(body, deep.Body...)
		for _, s := range shallow.Body {
			body = append(body, PadStmt(s, k, guards))
		}
	}
	merged := &ir.Nest{ID: deep.ID, Loops: deep.Loops, Body: body}
	return merged, merged.Validate()
}
