package restructure

import (
	"math/rand"
	"testing"

	"outcore/internal/igraph"
	"outcore/internal/ir"
)

// buildImperfect constructs the left side of the paper's Figure 1:
//
//	do i            do i
//	  do j            do j
//	    U,V             X
//	  do j            do j
//	    V,W             Y,X
//
// The first tree fuses (distinct elements per iteration), the second
// distributes.
func figure1Trees(n int64) (roots []*Node, arrays map[string]*ir.Array) {
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	x := ir.NewArray("X", n, n)
	y := ir.NewArray("Y", n, n)
	arrays = map[string]*ir.Array{"U": u, "V": v, "W": w, "X": x, "Y": y}

	// Tree 1: do i { do j { U(i,j)=V(i,j)+1 } ; do j { W(i,j)=V(i,j)+2 } }
	// Fusible: all refs to the shared array V are identical (i,j) reads,
	// and U, W writes don't cross.
	s1 := ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 0, 1)}, "", ir.AddConst(1))
	s2 := ir.Assign(ir.RefIdx(w, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 0, 1)}, "", ir.AddConst(2))
	tree1 := NewLoop("i", 0, n-1,
		NewLoop("j", 0, n-1, NewStmt(s1, 2)),
		NewLoop("j", 0, n-1, NewStmt(s2, 2)),
	)

	// Tree 2: do i { do j { X(i,j)=j } ; do j { Y(i,j)=X(i,0)+1 } }
	// NOT fusible (X written earlier, read with a different access
	// matrix later) but distributable: the X(i,0) read only conflicts
	// with the write at the same outer iteration, never backwards.
	s3 := ir.Assign(ir.RefIdx(x, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[1]) })
	s4 := ir.Assign(ir.RefIdx(y, 2, 0, 1), []ir.Ref{ir.RefAffine(x, [][]int64{{1, 0}, {0, 0}}, []int64{0, 0})}, "", ir.AddConst(1))
	tree2 := NewLoop("i", 0, n-1,
		NewLoop("j", 0, n-1, NewStmt(s3, 2)),
		NewLoop("j", 0, n-1, NewStmt(s4, 2)),
	)
	return []*Node{tree1, tree2}, arrays
}

func TestNormalizeFigure1Shape(t *testing.T) {
	roots, _ := figure1Trees(8)
	nests, err := Normalize(roots)
	if err != nil {
		t.Fatal(err)
	}
	// Tree 1 fuses into one nest; tree 2 distributes into two.
	if len(nests) != 3 {
		for _, n := range nests {
			t.Logf("nest:\n%s", n)
		}
		t.Fatalf("got %d nests, want 3", len(nests))
	}
	if len(nests[0].Body) != 2 {
		t.Errorf("fused nest has %d stmts", len(nests[0].Body))
	}
	for _, n := range nests {
		if err := n.Validate(); err != nil {
			t.Error(err)
		}
		if n.Depth() != 2 {
			t.Errorf("nest depth %d", n.Depth())
		}
	}
}

func TestNormalizePreservesSemantics(t *testing.T) {
	const n = 6
	roots, arrays := figure1Trees(n)
	nests, err := Normalize(roots)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: execute the tree directly (loops in source order).
	u, v, w, x, y := arrays["U"], arrays["V"], arrays["W"], arrays["X"], arrays["Y"]
	ref := ir.NewStore(u, v, w, x, y)
	rng := rand.New(rand.NewSource(3))
	for i := range ref.Data(v) {
		ref.Data(v)[i] = rng.Float64()
	}
	got := ref.Clone()

	// Direct tree execution: tree1 then tree2 in their source order.
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			ref.Set(u, []int64{i, j}, ref.Get(v, []int64{i, j})+1)
		}
		for j := int64(0); j < n; j++ {
			ref.Set(w, []int64{i, j}, ref.Get(v, []int64{i, j})+2)
		}
	}
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			ref.Set(x, []int64{i, j}, float64(j))
		}
		for j := int64(0); j < n; j++ {
			ref.Set(y, []int64{i, j}, ref.Get(x, []int64{i, 0})+1)
		}
	}

	for _, nest := range nests {
		nest.Execute(got)
	}
	for _, a := range []*ir.Array{u, v, w, x, y} {
		if d := ir.MaxAbsDiff(ref, got, a); d != 0 {
			t.Errorf("array %s differs after normalization: %g", a.Name, d)
		}
	}
}

func TestNormalizeThenComponents(t *testing.T) {
	// Figure 1's right side: two connected components, {U,V,W} and {X,Y}.
	roots, _ := figure1Trees(8)
	nests, err := Normalize(roots)
	if err != nil {
		t.Fatal(err)
	}
	p := &ir.Program{Name: "fig1", Nests: nests}
	for _, n := range nests {
		p.Arrays = append(p.Arrays, n.Arrays()...)
	}
	comps := igraph.Build(p).Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	names := func(c igraph.Component) map[string]bool {
		m := map[string]bool{}
		for _, a := range c.Arrays {
			m[a.Name] = true
		}
		return m
	}
	c0, c1 := names(comps[0]), names(comps[1])
	if !c0["U"] || !c0["V"] || !c0["W"] || len(c0) != 3 {
		t.Errorf("component 0 arrays = %v", c0)
	}
	if !c1["X"] || !c1["Y"] || len(c1) != 2 {
		t.Errorf("component 1 arrays = %v", c1)
	}
	if len(comps[0].Nests) != 1 || len(comps[1].Nests) != 2 {
		t.Errorf("component nest counts = %d, %d", len(comps[0].Nests), len(comps[1].Nests))
	}
}

func TestDistributionIllegalBackwardDep(t *testing.T) {
	// do i=1.. { do j { A(i,j) = B(i-1,j) } ; do j { B(i,j) = ... } }:
	// the earlier group reads a B row written by the later group at the
	// PREVIOUS outer iteration. Distribution would make every A read the
	// original B, so it must be refused.
	n := int64(4)
	a := ir.NewArray("A", n+1, n)
	b := ir.NewArray("B", n+1, n)
	s1 := ir.Assign(ir.RefIdx(a, 2, 0, 1), []ir.Ref{ir.RefAffine(b, [][]int64{{1, 0}, {0, 1}}, []int64{-1, 0})}, "", ir.AddConst(0))
	s2 := ir.Assign(ir.RefIdx(b, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[0]) })
	tree := NewLoop("i", 1, n-1,
		NewLoop("j", 0, n-1, NewStmt(s1, 2)),
		NewLoop("j", 0, n-1, NewStmt(s2, 2)),
	)
	if _, err := Normalize([]*Node{tree}); err == nil {
		t.Fatal("illegal distribution not caught")
	}
}

func TestDistributionLegalSameIterationConflict(t *testing.T) {
	// do i { do j { A(i,j) = B(i,j) } ; do j { B(i,j) = ... } }:
	// the only conflict is at the SAME iteration and distribution keeps
	// the read before the write, so it must be allowed — and preserve
	// semantics.
	n := int64(4)
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	s1 := ir.Assign(ir.RefIdx(a, 2, 0, 1), []ir.Ref{ir.RefIdx(b, 2, 0, 1)}, "", ir.AddConst(0))
	s2 := ir.Assign(ir.RefIdx(b, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[0] + 10) })
	tree := NewLoop("i", 0, n-1,
		NewLoop("j", 0, n-1, NewStmt(s1, 2)),
		NewLoop("j", 0, n-1, NewStmt(s2, 2)),
	)
	nests, err := Normalize([]*Node{tree})
	if err != nil {
		t.Fatal(err)
	}
	ref := ir.NewStore(a, b)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			ref.Set(a, []int64{i, j}, ref.Get(b, []int64{i, j}))
		}
		for j := int64(0); j < n; j++ {
			ref.Set(b, []int64{i, j}, float64(i+10))
		}
	}
	got := ir.NewStore(a, b)
	for _, nst := range nests {
		nst.Execute(got)
	}
	for _, arr := range []*ir.Array{a, b} {
		if d := ir.MaxAbsDiff(ref, got, arr); d != 0 {
			t.Errorf("array %s differs: %g", arr.Name, d)
		}
	}
}

func TestTopLevelStatementRejected(t *testing.T) {
	a := ir.NewArray("A", 4)
	s := ir.Assign(ir.RefAffine(a, [][]int64{{}}, []int64{0}), nil, "", ir.AddConst(0))
	if _, err := Normalize([]*Node{NewStmt(s, 0)}); err == nil {
		t.Fatal("top-level statement accepted")
	}
}

func TestSinkInto(t *testing.T) {
	const n = 5
	a := ir.NewArray("A", n)
	b := ir.NewArray("B", n, n)
	// Shallow: A(i) = 7 at depth 1. Deep: B(i,j) = A(i) at depth 2.
	shallow := &ir.Nest{Loops: ir.Rect(n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(a, 1, 0), nil, "", func(_ []float64, _ []int64) float64 { return 7 }),
	}}
	deep := &ir.Nest{Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(b, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 0)}, "", ir.AddConst(0)),
	}}
	merged, err := SinkInto(shallow, deep, true)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Depth() != 2 || len(merged.Body) != 2 {
		t.Fatalf("merged shape: depth %d, %d stmts", merged.Depth(), len(merged.Body))
	}
	// Execute both forms; results must agree.
	ref := ir.NewStore(a, b)
	shallow.Execute(ref)
	deep.Execute(ref)
	got := ir.NewStore(a, b)
	merged.Execute(got)
	if d := ir.MaxAbsDiff(ref, got, b); d != 0 {
		t.Errorf("sunk nest differs: %g", d)
	}
	if d := ir.MaxAbsDiff(ref, got, a); d != 0 {
		t.Errorf("sunk nest differs on A: %g", d)
	}
	// Mismatched headers must be rejected.
	bad := &ir.Nest{Loops: []ir.Loop{{Index: "i", Lo: 1, Hi: n}}, Body: shallow.Body}
	if _, err := SinkInto(bad, deep, true); err == nil {
		t.Error("header mismatch accepted")
	}
	if _, err := SinkInto(deep, shallow, true); err == nil {
		t.Error("inverted depths accepted")
	}
}

func TestSinkIntoAfter(t *testing.T) {
	const n = 4
	a := ir.NewArray("A", n)
	b := ir.NewArray("B", n, n)
	// Shallow AFTER deep: A(i) = sum of row i of B, computed after the
	// row is filled.
	deep := &ir.Nest{Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(b, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 {
			return float64(iv[0]*10 + iv[1])
		}),
	}}
	shallow := &ir.Nest{Loops: ir.Rect(n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(a, 1, 0), []ir.Ref{ir.RefAffine(b, [][]int64{{1}, {0}}, []int64{0, n - 1})}, "", ir.AddConst(0)),
	}}
	merged, err := SinkInto(shallow, deep, false)
	if err != nil {
		t.Fatal(err)
	}
	ref := ir.NewStore(a, b)
	deep.Execute(ref)
	shallow.Execute(ref)
	got := ir.NewStore(a, b)
	merged.Execute(got)
	if d := ir.MaxAbsDiff(ref, got, a); d != 0 {
		t.Errorf("after-sink differs: %g", d)
	}
}

func TestGuardedStatementExecutesOncePerOuter(t *testing.T) {
	const n = 4
	a := ir.NewArray("A", n)
	count := 0
	s := &ir.Stmt{
		Out:   ir.RefIdx(a, 2, 0),
		F:     func(_ []float64, _ []int64) float64 { count++; return 1 },
		Guard: []ir.GuardEq{{Level: 1, Value: 0}},
	}
	nest := &ir.Nest{Loops: ir.Rect(n, n), Body: []*ir.Stmt{s}}
	nest.Execute(ir.NewStore(a))
	if count != n {
		t.Errorf("guarded statement ran %d times, want %d", count, n)
	}
}
