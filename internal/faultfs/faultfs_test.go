package faultfs

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/ooc"
)

// memStore is a minimal in-memory ooc.Backend for driving the wrapper
// directly (the real memBackend is unexported).
type memStore struct{ data []float64 }

func newMemStore(n int64) *memStore { return &memStore{data: make([]float64, n)} }

func (m *memStore) ReadAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("memStore: read [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(buf, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("memStore: write [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(m.data[off:], buf)
	return nil
}

func (m *memStore) Size() int64  { return int64(len(m.data)) }
func (m *memStore) Sync() error  { return nil }
func (m *memStore) Close() error { return nil }

// driveOps runs a fixed operation sequence against a fresh injector
// and returns the schedule plus a textual outcome log.
func driveOps(seed int64, p Profile) (string, string) {
	in := New(seed, p)
	b := in.Wrap("a", newMemStore(64))
	var out strings.Builder
	buf := make([]float64, 8)
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0, 1:
			for j := range buf {
				buf[j] = float64(i)
			}
			fmt.Fprintf(&out, "w%d:%v\n", i, b.WriteAt(buf, int64(i%8)*8) != nil)
		case 2:
			fmt.Fprintf(&out, "r%d:%v\n", i, b.ReadAt(buf, int64(i%8)*8) != nil)
		case 3:
			fmt.Fprintf(&out, "s%d:%v\n", i, b.Sync() != nil)
		}
	}
	return in.Schedule(), out.String()
}

func TestScheduleDeterministic(t *testing.T) {
	p := Profile{ReadErr: 0.2, WriteErr: 0.1, WriteNoSpace: 0.05, TornWrite: 0.15, SyncErr: 0.2, LatencyTicks: 9}
	s1, o1 := driveOps(42, p)
	s2, o2 := driveOps(42, p)
	if s1 != s2 {
		t.Fatalf("same seed produced different schedules:\n%s\n---\n%s", s1, s2)
	}
	if o1 != o2 {
		t.Fatalf("same seed produced different outcomes:\n%s\n---\n%s", o1, o2)
	}
	s3, _ := driveOps(43, p)
	if s1 == s3 {
		t.Fatal("different seeds produced identical non-trivial schedules")
	}
	if !strings.Contains(s1, "-> eio") && !strings.Contains(s1, "-> torn") && !strings.Contains(s1, "-> enospc") {
		t.Fatalf("schedule with aggressive profile injected nothing:\n%s", s1)
	}
}

func TestCrashRevertsUnsyncedWrites(t *testing.T) {
	in := New(1, Profile{})
	b := in.Wrap("a", newMemStore(16))

	synced := []float64{1, 2, 3, 4}
	if err := b.WriteAt(synced, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	volatileWrite := []float64{9, 9, 9, 9}
	if err := b.WriteAt(volatileWrite, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAt(volatileWrite, 8); err != nil {
		t.Fatal(err)
	}

	in.Crash()

	got := make([]float64, 4)
	if err := in.ReadDurable("a", got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != synced[i] {
			t.Fatalf("durable[%d] = %v, want synced value %v", i, got[i], synced[i])
		}
	}
	if err := in.ReadDurable("a", got, 8); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0 {
			t.Fatalf("never-synced region survived the crash: got %v at %d", got[i], 8+i)
		}
	}
}

func TestTornWriteAppliesStrictPrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := New(seed, Profile{TornWrite: 1})
		b := in.Wrap("a", newMemStore(16))
		buf := []float64{7, 7, 7, 7, 7, 7, 7, 7}
		err := b.WriteAt(buf, 0)
		if err == nil {
			t.Fatalf("seed %d: torn write did not fail", seed)
		}
		if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrIO) {
			t.Fatalf("seed %d: torn write error %v is not an injected ErrIO", seed, err)
		}
		got := make([]float64, 8)
		if err := in.ReadDurable("a", got, 0); err != nil {
			t.Fatal(err)
		}
		// A strict prefix: some k < 8 sevens, then zeros.
		k := 0
		for k < 8 && got[k] == 7 {
			k++
		}
		if k == 8 {
			t.Fatalf("seed %d: torn write applied the full buffer", seed)
		}
		for i := k; i < 8; i++ {
			if got[i] != 0 {
				t.Fatalf("seed %d: torn write is not a prefix: %v", seed, got)
			}
		}
	}
}

func TestSyncErrorKeepsWritesVolatile(t *testing.T) {
	in := New(5, Profile{SyncErr: 1})
	b := in.Wrap("a", newMemStore(8))
	if err := b.WriteAt([]float64{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err == nil {
		t.Fatal("injected sync error did not surface")
	}
	in.Crash()
	got := make([]float64, 2)
	if err := in.ReadDurable("a", got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("write survived a crash despite its sync failing: %v", got)
	}
}

func TestSyncDropLies(t *testing.T) {
	in := New(5, Profile{SyncDrop: 1})
	b := in.Wrap("a", newMemStore(8))
	if err := b.WriteAt([]float64{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("a dropped sync must lie (report success), got %v", err)
	}
	in.Crash()
	got := make([]float64, 2)
	if err := in.ReadDurable("a", got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("SyncDrop persisted data it promised to drop: %v", got)
	}
}

func TestHealDisarmsInjection(t *testing.T) {
	in := New(7, Profile{WriteErr: 1})
	b := in.Wrap("a", newMemStore(8))
	if err := b.WriteAt([]float64{1}, 0); err == nil {
		t.Fatal("armed injector with WriteErr=1 let a write through")
	}
	in.Heal()
	if err := b.WriteAt([]float64{1}, 0); err != nil {
		t.Fatalf("healed injector still failing: %v", err)
	}
	in.Arm()
	if err := b.WriteAt([]float64{1}, 0); err == nil {
		t.Fatal("re-armed injector let a write through")
	}
}

// TestDiskWrapCrashReopen exercises the intended integration: a
// memory-backed ooc.Disk wrapped by the injector, crashed, and
// reopened on a fresh Disk that sees exactly the durable state.
func TestDiskWrapCrashReopen(t *testing.T) {
	in := New(11, Profile{})
	mkDisk := func() (*ooc.Disk, *ooc.Array) {
		d := ooc.NewDisk(0).WrapBackend(in.Wrap)
		ar, err := d.CreateArray(ir.NewArray("A", 4, 4), layout.RowMajor(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		return d, ar
	}
	_, ar := mkDisk()

	tile := ar.NewTileZero(layout.NewBox([]int64{0, 0}, []int64{4, 4}))
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 4; j++ {
			tile.Set([]int64{i, j}, 10)
		}
	}
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}
	if err := in.backs["A"].Sync(); err != nil {
		t.Fatal(err)
	}
	// A second write, never synced.
	tile.Set([]int64{0, 0}, 99)
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}

	in.Crash()
	_, ar2 := mkDisk() // reopen: Wrap returns the surviving store
	if got := ar2.At([]int64{0, 0}); got != 10 {
		t.Fatalf("reopened array lost the synced write: got %v, want 10", got)
	}
}

func TestObserveCounts(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	in := New(3, Profile{WriteErr: 1}).Observe(sink)
	b := in.Wrap("a", newMemStore(4))
	b.WriteAt([]float64{1}, 0) //nolint:errcheck // injected failure is the point
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
	if got := sink.Metrics.Counter("faultfs_injected_total", "").Value(); got != 1 {
		t.Fatalf("faultfs_injected_total = %d, want 1", got)
	}
	if got := sink.Metrics.Counter("faultfs_ops_total", "").Value(); got != 1 {
		t.Fatalf("faultfs_ops_total = %d, want 1", got)
	}
}

func TestVirtualLatencyDeterministic(t *testing.T) {
	run := func() int64 {
		in := New(9, Profile{LatencyTicks: 100})
		b := in.Wrap("a", newMemStore(8))
		buf := make([]float64, 4)
		for i := 0; i < 10; i++ {
			if err := b.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return in.VirtualTicks()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("virtual latency not deterministic: %d vs %d", t1, t2)
	}
	if t1 == 0 {
		t.Fatal("LatencyTicks=100 over 10 ops accumulated zero ticks")
	}
}
