// Package faultfs is a deterministic fault-injecting ooc.Backend
// wrapper: the storage adversary the crash-consistency harness
// (internal/dst) and the chaos tooling (cmd/occhaos, occload -faults)
// run the out-of-core stack against.
//
// Every fault decision — injected read/write errors, out-of-space,
// torn writes, sync failures, lying syncs, simulated latency — is
// drawn from a single seeded PRNG in backend-call order and appended
// to a textual schedule, so a run that issues the same operation
// sequence against the same seed produces a byte-identical schedule
// and byte-identical outcomes. A failing chaos episode therefore
// replays exactly from its seed.
//
// # Crash simulation
//
// The injector tracks, per wrapped backend, an undo log of every
// write since the last acknowledged Sync. Crash "cuts power": all
// unsynced writes are reverted, leaving exactly the state a real
// process death between write and fsync leaves (modulo injected torn
// writes, whose surviving prefixes a later successful Sync makes
// durable). After Crash, reuse the injector's Wrap hook on a fresh
// Disk to "reboot" against the surviving durable state.
//
// Crash-and-reopen only preserves data for memory-backed disks (or
// file-backed disks opened with KeepExisting): a default file-backed
// CreateArray truncates the backing file before the wrap hook runs.
//
// # Determinism contract
//
// The schedule is deterministic exactly when the backend-call order
// is: drive the stack single-threaded (engine Workers = 0) for
// replayable runs. Concurrent use is safe (one mutex serializes
// decisions) but interleaving then picks the schedule.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"outcore/internal/obs"
	"outcore/internal/ooc"
)

// ErrInjected is the root of every injected failure; match with
// errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrIO is an injected I/O error (the simulated EIO).
var ErrIO = fmt.Errorf("%w: I/O error", ErrInjected)

// ErrNoSpace is an injected out-of-space error (the simulated ENOSPC).
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Profile sets per-operation fault probabilities (each in [0, 1]).
// The zero Profile injects nothing and only records the schedule.
type Profile struct {
	// ReadErr fails ReadAt with ErrIO, touching no data.
	ReadErr float64
	// WriteErr fails WriteAt with ErrIO before any element is stored.
	WriteErr float64
	// WriteNoSpace fails WriteAt with ErrNoSpace before any element is
	// stored.
	WriteNoSpace float64
	// TornWrite applies a strict prefix of the buffer (possibly zero
	// elements) and fails with ErrIO: the partial write a power cut or
	// full disk mid-call leaves behind.
	TornWrite float64
	// SyncErr fails Sync with ErrIO; the writes since the last
	// acknowledged sync stay volatile (a crash still drops them).
	SyncErr float64
	// SyncDrop makes Sync lie: it reports success without making the
	// pending writes durable. This simulates a buggy device, not a
	// POSIX-conformant failure — correct software CANNOT survive it,
	// and the dst checker uses it to prove it detects lost
	// acknowledged writes. Keep it zero in correctness episodes.
	SyncDrop float64
	// LatencyTicks adds up to this many virtual ticks of simulated
	// latency per operation (0 disables). Ticks only advance the
	// injector's virtual clock and appear in the schedule; wall-clock
	// sleeping is opt-in via Injector.SetRealDelay.
	LatencyTicks int64
}

// injMetrics are the registry series an observed injector feeds.
type injMetrics struct {
	ops    *obs.Counter
	faults *obs.Counter
}

// Injector owns the PRNG, the schedule, and the durable/volatile
// bookkeeping for every backend it wraps. Create one per episode.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	prof    Profile
	armed   bool
	seq     int64
	ticks   int64
	faults  int64
	sched   strings.Builder
	backs   map[string]*Backend
	met     *injMetrics
	perTick time.Duration
}

// New returns an injector drawing every fault decision from seed.
func New(seed int64, p Profile) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		prof:  p,
		armed: true,
		backs: map[string]*Backend{},
	}
}

// Observe registers injection counters into the sink's metrics
// registry (faultfs_ops_total, faultfs_injected_total). A nil sink or
// registry is a no-op. Returns the injector for chaining.
func (in *Injector) Observe(sink *obs.Sink) *Injector {
	reg := sink.MetricsOf()
	if reg == nil {
		return in
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.met = &injMetrics{
		ops:    reg.Counter("faultfs_ops_total", "backend operations seen by the fault injector"),
		faults: reg.Counter("faultfs_injected_total", "faults injected into backend operations"),
	}
	return in
}

// SetRealDelay makes simulated latency real: each virtual tick sleeps
// d of wall clock (load testing; keep zero for deterministic runs).
func (in *Injector) SetRealDelay(d time.Duration) { in.mu.Lock(); in.perTick = d; in.mu.Unlock() }

// Heal disarms fault injection: subsequent operations pass through
// (still recorded). Episodes heal before a final flush so every write
// can reach durability and the strict end-state check applies.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = false
	in.logf("heal")
}

// Arm re-enables fault injection after Heal.
func (in *Injector) Arm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = true
	in.logf("arm")
}

// Wrap is the Disk.WrapBackend hook. The first wrap of a name adopts
// inner as that array's durable store; a later wrap of the same name
// (reopening after Crash) discards the replacement backend and
// returns the surviving store, so the reopened disk sees exactly the
// data that was durable at the crash.
func (in *Injector) Wrap(name string, inner ooc.Backend) ooc.Backend {
	in.mu.Lock()
	defer in.mu.Unlock()
	if b, ok := in.backs[name]; ok {
		in.logf("reopen %s", name)
		return b
	}
	b := &Backend{in: in, name: name, inner: inner}
	in.backs[name] = b
	in.logf("open %s size=%d", name, inner.Size())
	return b
}

// Crash cuts power: every write not acknowledged by a successful Sync
// is reverted, in all wrapped backends, leaving only durable state.
// The engine/disk above must be abandoned (not closed — closing
// flushes); reopen by handing Wrap to a fresh disk.
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.backs))
	for name := range in.backs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := in.backs[name]
		n := len(b.undo)
		for i := n - 1; i >= 0; i-- {
			u := b.undo[i]
			if err := b.inner.WriteAt(u.old, u.off); err != nil {
				// The inner store refused a revert we previously read
				// from it; the simulation cannot continue meaningfully.
				panic(fmt.Sprintf("faultfs: crash revert of %s [%d,%d): %v",
					name, u.off, u.off+int64(len(u.old)), err))
			}
		}
		b.undo = nil
		in.logf("crash %s reverted=%d", name, n)
	}
}

// ReadDurable reads the current durable contents of the named
// backend, bypassing fault injection and volatile bookkeeping — the
// checker's view after a crash. Note that between crashes the inner
// store also holds unsynced (volatile) writes; call Crash first for a
// strictly durable view.
func (in *Injector) ReadDurable(name string, buf []float64, off int64) error {
	in.mu.Lock()
	b := in.backs[name]
	in.mu.Unlock()
	if b == nil {
		return fmt.Errorf("faultfs: no wrapped backend %q", name)
	}
	return b.inner.ReadAt(buf, off)
}

// Schedule returns the fault schedule recorded so far: one line per
// decision, byte-identical across runs with the same seed and
// operation sequence.
func (in *Injector) Schedule() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sched.String()
}

// Injected returns how many faults have been injected.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// VirtualTicks returns the accumulated simulated latency.
func (in *Injector) VirtualTicks() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ticks
}

// logf appends one schedule line (callers hold mu).
func (in *Injector) logf(format string, args ...any) {
	fmt.Fprintf(&in.sched, "%05d ", in.seq)
	fmt.Fprintf(&in.sched, format, args...)
	in.sched.WriteByte('\n')
	in.seq++
}

// draw consumes one uniform variate (callers hold mu).
func (in *Injector) draw() float64 { return in.rng.Float64() }

// latency draws the operation's simulated latency ticks (callers hold
// mu); the wall-clock sleep, if configured, is returned for the
// caller to perform outside the lock.
func (in *Injector) latency() (int64, time.Duration) {
	if in.prof.LatencyTicks <= 0 {
		return 0, 0
	}
	t := in.rng.Int63n(in.prof.LatencyTicks + 1)
	in.ticks += t
	return t, time.Duration(t) * in.perTick
}

// fault counts one injected fault (callers hold mu).
func (in *Injector) fault() {
	in.faults++
	if in.met != nil {
		in.met.faults.Inc()
	}
}

func (in *Injector) op() {
	if in.met != nil {
		in.met.ops.Inc()
	}
}

// undoRec remembers the elements a write overwrote, for crash revert.
type undoRec struct {
	off int64
	old []float64
}

// Backend wraps one array's store with fault injection. Obtain it via
// Injector.Wrap (normally through Disk.WrapBackend).
type Backend struct {
	in    *Injector
	name  string
	inner ooc.Backend
	undo  []undoRec // writes since the last acknowledged sync
}

// ReadAt reads through to the store, or fails with an injected ErrIO.
func (b *Backend) ReadAt(buf []float64, off int64) error {
	b.in.mu.Lock()
	b.in.op()
	ticks, sleep := b.in.latency()
	if b.in.armed && b.in.draw() < b.in.prof.ReadErr {
		b.in.fault()
		b.in.logf("r %s off=%d len=%d t=%d -> eio", b.name, off, len(buf), ticks)
		b.in.mu.Unlock()
		return fmt.Errorf("faultfs: read %s [%d,%d): %w", b.name, off, off+int64(len(buf)), ErrIO)
	}
	b.in.logf("r %s off=%d len=%d t=%d -> ok", b.name, off, len(buf), ticks)
	err := b.inner.ReadAt(buf, off)
	b.in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// WriteAt stores buf, or injects: ErrIO / ErrNoSpace before any
// element lands, or a torn write that stores a strict prefix and then
// fails. Whatever lands is recorded in the undo log and stays
// volatile until the next acknowledged Sync.
func (b *Backend) WriteAt(buf []float64, off int64) error {
	b.in.mu.Lock()
	b.in.op()
	ticks, sleep := b.in.latency()
	n := len(buf) // elements that will actually be applied
	var verdict string
	var err error
	if b.in.armed {
		p := b.in.prof
		switch u := b.in.draw(); {
		case u < p.WriteErr:
			n, verdict = 0, "eio"
			err = fmt.Errorf("faultfs: write %s [%d,%d): %w", b.name, off, off+int64(len(buf)), ErrIO)
		case u < p.WriteErr+p.WriteNoSpace:
			n, verdict = 0, "enospc"
			err = fmt.Errorf("faultfs: write %s [%d,%d): %w", b.name, off, off+int64(len(buf)), ErrNoSpace)
		case u < p.WriteErr+p.WriteNoSpace+p.TornWrite:
			n = b.in.rng.Intn(len(buf) + 1)
			if n == len(buf) && n > 0 {
				n-- // torn means a strict prefix
			}
			verdict = fmt.Sprintf("torn:%d", n)
			err = fmt.Errorf("faultfs: write %s [%d,%d): torn after %d of %d elements: %w",
				b.name, off, off+int64(len(buf)), n, len(buf), ErrIO)
		}
	}
	if err != nil {
		b.in.fault()
	} else {
		verdict = "ok"
	}
	if n > 0 {
		old := make([]float64, n)
		if rerr := b.inner.ReadAt(old, off); rerr != nil {
			b.in.logf("w %s off=%d len=%d t=%d -> undo-read-failed", b.name, off, len(buf), ticks)
			b.in.mu.Unlock()
			return fmt.Errorf("faultfs: snapshotting undo for %s [%d,%d): %v", b.name, off, off+int64(n), rerr)
		}
		if werr := b.inner.WriteAt(buf[:n], off); werr != nil {
			b.in.logf("w %s off=%d len=%d t=%d -> inner-failed", b.name, off, len(buf), ticks)
			b.in.mu.Unlock()
			return werr
		}
		b.undo = append(b.undo, undoRec{off: off, old: old})
	}
	b.in.logf("w %s off=%d len=%d t=%d -> %s", b.name, off, len(buf), ticks, verdict)
	b.in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// Sync acknowledges the pending writes (clearing the undo log), or
// injects: ErrIO with the writes left volatile, or — with SyncDrop —
// a lying success that leaves them volatile anyway.
func (b *Backend) Sync() error {
	b.in.mu.Lock()
	b.in.op()
	ticks, sleep := b.in.latency()
	if b.in.armed {
		p := b.in.prof
		switch u := b.in.draw(); {
		case u < p.SyncErr:
			b.in.fault()
			b.in.logf("s %s pend=%d t=%d -> eio", b.name, len(b.undo), ticks)
			b.in.mu.Unlock()
			return fmt.Errorf("faultfs: sync %s: %w", b.name, ErrIO)
		case u < p.SyncErr+p.SyncDrop:
			b.in.fault()
			b.in.logf("s %s pend=%d t=%d -> drop", b.name, len(b.undo), ticks)
			b.in.mu.Unlock()
			if sleep > 0 {
				time.Sleep(sleep)
			}
			return nil
		}
	}
	err := b.inner.Sync()
	if err == nil {
		b.undo = nil
	}
	b.in.logf("s %s pend=0 t=%d -> ok", b.name, ticks)
	b.in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// Size reports the store's capacity.
func (b *Backend) Size() int64 { return b.inner.Size() }

// Close closes the store (a clean close syncs inside the inner
// backend where that means anything). The undo log is cleared: a
// clean shutdown is by definition not a crash.
func (b *Backend) Close() error {
	b.in.mu.Lock()
	b.undo = nil
	b.in.logf("close %s", b.name)
	b.in.mu.Unlock()
	return b.inner.Close()
}
