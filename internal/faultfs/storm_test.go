package faultfs

import (
	"strings"
	"testing"
)

// TestStormProfilePinned pins the canonical storm's rates: occd,
// occload and occhaos all arm this exact profile, and a chaos seed
// only reproduces across binaries while these numbers are identical.
func TestStormProfilePinned(t *testing.T) {
	got := StormProfile()
	want := Profile{
		ReadErr:      0.05,
		WriteErr:     0.05,
		WriteNoSpace: 0.02,
		TornWrite:    0.06,
		SyncErr:      0.10,
	}
	if got != want {
		t.Fatalf("StormProfile() = %+v, want %+v", got, want)
	}
	if got.SyncDrop != 0 {
		t.Fatal("the canonical storm must not lie on sync (SyncDrop > 0 makes correct software fail)")
	}
	if got.LatencyTicks != 0 {
		t.Fatal("the canonical storm carries no latency; commands opt in via StormLatencyTicks")
	}
}

// TestStormSeedScheduleMapping pins the seed -> schedule mapping: one
// fixed operation sequence against NewStorm(seed) must reproduce the
// same fault schedule in every run and binary (this is what makes an
// occhaos reproducer line portable), and distinct seeds must diverge.
func TestStormSeedScheduleMapping(t *testing.T) {
	drive := func(seed int64) string {
		in := NewStorm(seed)
		b := in.Wrap("a", newMemStore(64))
		buf := make([]float64, 8)
		for i := 0; i < 60; i++ {
			switch i % 4 {
			case 0, 1:
				for j := range buf {
					buf[j] = float64(i)
				}
				b.WriteAt(buf, int64(i%8)*8)
			case 2:
				b.ReadAt(buf, int64(i%8)*8)
			case 3:
				b.Sync()
			}
		}
		return in.Schedule()
	}

	s1, s2 := drive(1337), drive(1337)
	if s1 != s2 {
		t.Fatalf("same storm seed produced different schedules:\n%s\n---\n%s", s1, s2)
	}
	if s1 == drive(7331) {
		t.Fatal("different storm seeds produced identical schedules")
	}
	// The exact injected decisions for seed 1337, pinned. math/rand's
	// seeded stream is stable across Go releases, so any change here
	// means the storm profile, the decision order, or the injector's
	// draw discipline changed — all of which silently break every
	// recorded occhaos reproducer.
	pinned := []string{
		"00026 w a off=8 len=8 t=0 -> eio",
		"00034 w a off=8 len=8 t=0 -> enospc",
		"00042 w a off=8 len=8 t=0 -> torn:7",
		"00049 w a off=0 len=8 t=0 -> torn:3",
		"00058 w a off=8 len=8 t=0 -> torn:7",
	}
	for _, line := range pinned {
		if !strings.Contains(s1, line+"\n") {
			t.Errorf("storm seed 1337 schedule lost pinned decision %q\nschedule:\n%s", line, s1)
		}
	}
}
