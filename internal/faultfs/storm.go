package faultfs

// StormLatencyTicks is the simulated per-operation latency budget the
// chaos harness layers on top of StormProfile (cmd/occhaos); the
// serving commands leave latency off so injected faults, not injected
// sleeps, dominate their behaviour.
const StormLatencyTicks = 8

// StormProfile is the canonical fault storm the tooling arms by
// default — occd -faults, occload -faults and occhaos's flag defaults
// all share it, so "the storm" means the same device misbehaviour
// everywhere: every fault class at rates that keep most requests
// succeeding while exercising every error path.
func StormProfile() Profile {
	return Profile{
		ReadErr:      0.05,
		WriteErr:     0.05,
		WriteNoSpace: 0.02,
		TornWrite:    0.06,
		SyncErr:      0.10,
	}
}

// NewStorm returns an injector armed with the canonical storm,
// drawing every decision from seed — the one-liner behind the
// commands' -faults flags.
func NewStorm(seed int64) *Injector {
	return New(seed, StormProfile())
}
