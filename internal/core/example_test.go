package core_test

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/matrix"
)

// ExampleOptimizer_OptimizeCombined reproduces the paper's Section-3.1
// worked example: the combined algorithm picks U/W row-major, V
// column-major, and interchanges the second nest.
func ExampleOptimizer_OptimizeCombined() {
	const n = 64
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	prog := &ir.Program{
		Name:   "motivating",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "add1", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "add2", ir.AddConst(2)),
			}},
		},
	}
	var o core.Optimizer
	plan := o.OptimizeCombined(prog)
	fmt.Print(plan)
	// Output:
	// layouts:
	//   U: row-major
	//   V: col-major
	//   W: row-major
	// nest 0: identity
	// nest 1: T =
	// [0 1]
	// [1 0]
}

// ExampleReduceStorage shows the Section-3.4 shear shrinking the
// rectilinear bounding box of a skewed access.
func ExampleReduceStorage() {
	m := mustMatrix([][]int64{{3, 2}, {2, 0}})
	d, before, after := core.ReduceStorage(m, []int64{100, 100})
	fmt.Println("before:", before, "after:", after, "shear row 0:", d.Row(0))
	// Output:
	// before: 98704 after: 59302 shear row 0: [1 -2]
}

func mustMatrix(rows [][]int64) *matrix.Int { return matrix.FromRows(rows) }
