package core

import (
	"fmt"
	"sort"

	"outcore/internal/deps"
	"outcore/internal/ilp"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
)

// OptimizeOptimal computes a globally optimal layout + transformation
// assignment by integer linear programming — the approach the paper's
// conclusion announces as work in progress ("determining optimal file
// layouts using techniques from integer linear programming").
//
// Formulation: a one-hot variable per (array, candidate layout) and
// per (nest, candidate innermost direction q_last); a penalty variable
// per (reference, layout, q_last) combination that leaves the
// reference without locality, weighted by the nest's cost. Candidate
// q_last vectors are the legal, completable kernel solutions of
// Relation (2) over all candidate layouts, plus the unit vectors.
//
// The search is exact; its cost grows exponentially with the number of
// arrays and nests, so it is an oracle for modest programs (the
// benchmark kernels solve in milliseconds) against which the paper's
// greedy propagation (OptimizeCombined) can be measured.
func (o *Optimizer) OptimizeOptimal(prog *ir.Program) (*Plan, error) {
	prob := ilp.NewProblem()

	// Candidate layouts per array.
	type layoutVar struct {
		l *layout.Layout
		v int
	}
	layoutVars := map[*ir.Array][]layoutVar{}
	var arrays []*ir.Array
	seen := map[*ir.Array]bool{}
	for _, n := range prog.Nests {
		for _, a := range n.Arrays() {
			if !seen[a] {
				seen[a] = true
				arrays = append(arrays, a)
			}
		}
	}
	for _, a := range arrays {
		for _, l := range candidateLayouts(a) {
			v := prob.AddVar(fmt.Sprintf("layout:%s:%s", a.Name, l.Name()), 0)
			layoutVars[a] = append(layoutVars[a], layoutVar{l: l, v: v})
		}
		vs := make([]int, len(layoutVars[a]))
		for i, lv := range layoutVars[a] {
			vs[i] = lv.v
		}
		prob.AddOneHot(vs...)
	}

	// Candidate innermost directions per nest.
	type qVar struct {
		q  []int64
		qm *matrix.Int
		t  *matrix.Int
		v  int
	}
	qVars := map[*ir.Nest][]qVar{}
	dc := depCache{}
	for _, n := range prog.Nests {
		for _, q := range legalQCandidates(n, dc) {
			qm, ok := matrix.CompleteAny(q)
			if !ok {
				continue
			}
			tRat, ok := qm.Inverse()
			if !ok {
				continue
			}
			t, ok := tRat.ToInt()
			if !ok {
				continue
			}
			v := prob.AddVar(fmt.Sprintf("q:%d:%v", n.ID, q), 0)
			qVars[n] = append(qVars[n], qVar{q: qm.Col(n.Depth() - 1), qm: qm, t: t, v: v})
		}
		if len(qVars[n]) == 0 {
			return nil, fmt.Errorf("core: nest %d has no legal candidate transformations", n.ID)
		}
		vs := make([]int, len(qVars[n]))
		for i, qv := range qVars[n] {
			vs[i] = qv.v
		}
		prob.AddOneHot(vs...)
	}

	// Product-term penalties for combinations without locality: choosing
	// layout lv together with direction qv costs the nest's weight for
	// every reference the pair leaves unoptimized.
	maxCost := int64(1)
	for _, n := range prog.Nests {
		if c := o.cost(n); c > maxCost {
			maxCost = c
		}
	}
	for _, n := range prog.Nests {
		w := float64(o.cost(n)) / float64(maxCost)
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				for _, lv := range layoutVars[r.Array] {
					for _, qv := range qVars[n] {
						if RefLocality(r, lv.l, qv.q) != NoLocality {
							continue
						}
						if err := prob.AddPairCost(lv.v, qv.v, w); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}

	sol, ok := prob.Solve()
	if !ok {
		return nil, fmt.Errorf("core: optimal assignment infeasible")
	}
	plan := NewPlan()
	for _, a := range arrays {
		for _, lv := range layoutVars[a] {
			if sol.X[lv.v] {
				plan.Layouts[a] = lv.l
			}
		}
	}
	for _, n := range prog.Nests {
		for _, qv := range qVars[n] {
			if sol.X[qv.v] {
				plan.Nests[n] = &NestPlan{Nest: n, T: qv.t, Q: qv.qm, QLast: qv.q}
			}
		}
	}
	o.finish(plan, prog)
	return plan, nil
}

// candidateLayouts enumerates the layout families considered per array.
func candidateLayouts(a *ir.Array) []*layout.Layout {
	switch a.Rank() {
	case 1:
		return []*layout.Layout{layout.RowMajor(a.Dims...)}
	case 2:
		return []*layout.Layout{
			layout.RowMajor(a.Dims...),
			layout.ColMajor(a.Dims...),
			layout.Diagonal(a.Dims[0], a.Dims[1]),
			layout.AntiDiagonal(a.Dims[0], a.Dims[1]),
		}
	default:
		var out []*layout.Layout
		for d := 0; d < a.Rank(); d++ {
			out = append(out, layout.FastDim(a.Dims, d))
		}
		return out
	}
}

// legalQCandidates enumerates candidate innermost directions for a
// nest: the unit vectors plus the primitive kernel directions of every
// (reference, candidate layout) Relation-(2) constraint, filtered by
// dependence legality after completion.
func legalQCandidates(n *ir.Nest, dc depCache) [][]int64 {
	k := n.Depth()
	ds := dc.get(n)
	cand := map[string][]int64{}
	add := func(q []int64) {
		if matrix.IsZeroVec(q) {
			return
		}
		q = matrix.PrimitiveInt(q)
		cand[fmt.Sprint(q)] = q
	}
	for pos := 0; pos < k; pos++ {
		add(unitVec(k, pos))
	}
	for _, s := range n.Body {
		for _, r := range s.Refs() {
			for _, l := range candidateLayouts(r.Array) {
				rows := constraintRows(r, l)
				if len(rows) == 0 {
					continue
				}
				for _, b := range matrix.KernelBasis(matrix.FromRows(rows)) {
					add(b)
				}
			}
		}
	}
	keys := make([]string, 0, len(cand))
	for key := range cand {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out [][]int64
	for _, key := range keys {
		q := cand[key]
		qm, ok := matrix.CompleteAny(q)
		if !ok {
			continue
		}
		tRat, ok := qm.Inverse()
		if !ok {
			continue
		}
		t, ok := tRat.ToInt()
		if !ok {
			continue
		}
		if !deps.LegalTransform(t, ds) {
			continue
		}
		out = append(out, q)
	}
	return out
}
