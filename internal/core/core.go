// Package core implements the paper's primary contribution: the global
// locality optimization algorithm for out-of-core programs that picks
// file layouts (data transformations) and non-singular loop
// transformations together.
//
// The driving relation is Claim 1: a reference L·I + o in a nest with
// loop transformation T (Q = T⁻¹) has spatial locality in the innermost
// loop when the array's file-layout hyperplane g satisfies
//
//	g · L · q_last = 0,   q_last = last column of Q.
//
// Fixing q_last makes g a kernel computation (Relation 1); fixing g
// makes q_last one (Relation 2). The global algorithm (Section 3)
// orders the nests of each interference-graph component by cost,
// optimizes the costliest with data transformations only, and then
// alternates Relations 1 and 2 over the remaining nests, propagating
// the file layouts fixed so far.
package core

import (
	"fmt"
	"sort"

	"outcore/internal/deps"
	"outcore/internal/igraph"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
)

// Locality classifies a reference's behaviour in the innermost loop.
type Locality int

const (
	// NoLocality: consecutive innermost iterations jump in the file.
	NoLocality Locality = iota
	// Spatial: consecutive innermost iterations touch consecutive file
	// elements.
	Spatial
	// Temporal: the innermost loop does not move the reference at all.
	Temporal
)

func (l Locality) String() string {
	switch l {
	case Spatial:
		return "spatial"
	case Temporal:
		return "temporal"
	default:
		return "none"
	}
}

// NestPlan is the optimization decision for one nest.
type NestPlan struct {
	Nest  *ir.Nest
	T     *matrix.Int // loop transformation (new = T·old), unimodular
	Q     *matrix.Int // T⁻¹
	QLast []int64     // last column of Q: the innermost-iteration direction
}

// Identity reports whether the nest is left untransformed.
func (np *NestPlan) Identity() bool { return np.T.Equal(matrix.Identity(np.T.Rows())) }

// Plan is the result of a whole-program optimization: one file layout
// per array and one loop transformation per nest. Notes records the
// derivation (which relation produced each decision) for diagnostics.
type Plan struct {
	Layouts map[*ir.Array]*layout.Layout
	Nests   map[*ir.Nest]*NestPlan
	Notes   []string
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{
		Layouts: map[*ir.Array]*layout.Layout{},
		Nests:   map[*ir.Nest]*NestPlan{},
	}
}

// note records one derivation step.
func (p *Plan) note(format string, args ...interface{}) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// LayoutOf returns the planned layout for an array, falling back to the
// given default constructor when the plan leaves it unconstrained.
func (p *Plan) LayoutOf(a *ir.Array, def func(dims []int64) *layout.Layout) *layout.Layout {
	if l, ok := p.Layouts[a]; ok {
		return l
	}
	return def(a.Dims)
}

// identityPlanFor fills the plan with identity transforms for any nest
// not yet planned.
func (p *Plan) ensureNest(n *ir.Nest) *NestPlan {
	if np, ok := p.Nests[n]; ok {
		return np
	}
	k := n.Depth()
	np := &NestPlan{Nest: n, T: matrix.Identity(k), Q: matrix.Identity(k), QLast: unitVec(k, k-1)}
	p.Nests[n] = np
	return np
}

// Cost estimates how expensive a nest is: iteration count times the
// number of out-of-core references. Profile measurements can override
// it via Optimizer.Profile.
func Cost(n *ir.Nest) int64 {
	refs := 0
	for _, s := range n.Body {
		refs += 1 + len(s.In)
	}
	return n.Iterations() * int64(refs)
}

// Optimizer carries optimization policy.
type Optimizer struct {
	// Profile maps nest ID to a measured cost; nests missing from the
	// map use the static Cost estimate. The paper orders nests with
	// profile information (Step 3.a).
	Profile map[int]int64
	// DefaultLayout constructs the layout for arrays the algorithm
	// leaves unconstrained (and the baseline for col/row versions).
	// Defaults to column-major, the paper's default file layout.
	DefaultLayout func(dims []int64) *layout.Layout
}

func (o *Optimizer) defaultLayout() func(dims []int64) *layout.Layout {
	if o != nil && o.DefaultLayout != nil {
		return o.DefaultLayout
	}
	return func(dims []int64) *layout.Layout { return layout.ColMajor(dims...) }
}

func (o *Optimizer) cost(n *ir.Nest) int64 {
	if o != nil && o.Profile != nil {
		if c, ok := o.Profile[n.ID]; ok {
			return c
		}
	}
	return Cost(n)
}

// orderByCost returns nests sorted by decreasing cost, ties broken by
// program order.
func (o *Optimizer) orderByCost(nests []*ir.Nest) []*ir.Nest {
	out := append([]*ir.Nest(nil), nests...)
	sort.SliceStable(out, func(i, j int) bool { return o.cost(out[i]) > o.cost(out[j]) })
	return out
}

// movement returns v = L·q_last: how the referenced element moves per
// innermost-iteration step.
func movement(r ir.Ref, qLast []int64) []int64 { return r.L.MulVec(qLast) }

// RefLocality classifies a reference under a layout and an innermost
// direction q_last.
func RefLocality(r ir.Ref, l *layout.Layout, qLast []int64) Locality {
	v := movement(r, qLast)
	if matrix.IsZeroVec(v) {
		return Temporal
	}
	if l == nil {
		return NoLocality
	}
	if r.Array.Rank() == 2 {
		g := l.Hyperplane()
		if g == nil {
			return NoLocality // blocked layouts: no single hyperplane
		}
		if g[0]*v[0]+g[1]*v[1] == 0 {
			return Spatial
		}
		return NoLocality
	}
	// Higher ranks: spatial exactly when the movement is parallel to the
	// layout's fastest dimension.
	fast, ok := l.FastDimension()
	if !ok {
		return NoLocality
	}
	for d, x := range v {
		if d != fast && x != 0 {
			return NoLocality
		}
	}
	return Spatial
}

// LocalityReport summarizes per-reference locality of a plan, used by
// diagnostics and the experiment harness.
type LocalityReport struct {
	Nest     *ir.Nest
	Ref      ir.Ref
	Locality Locality
}

// Report computes the locality of every reference of the program under
// the plan.
func (p *Plan) Report(prog *ir.Program, def func(dims []int64) *layout.Layout) []LocalityReport {
	var out []LocalityReport
	for _, n := range prog.Nests {
		np := p.Nests[n]
		qLast := unitVec(n.Depth(), n.Depth()-1)
		if np != nil {
			qLast = np.QLast
		}
		for _, s := range n.Body {
			for _, r := range s.Refs() {
				out = append(out, LocalityReport{Nest: n, Ref: r, Locality: RefLocality(r, p.LayoutOf(r.Array, def), qLast)})
			}
		}
	}
	return out
}

// String renders the plan for diagnostics.
func (p *Plan) String() string {
	s := "layouts:\n"
	type ent struct {
		name string
		l    *layout.Layout
	}
	var ents []ent
	for a, l := range p.Layouts {
		ents = append(ents, ent{a.Name, l})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].name < ents[j].name })
	for _, e := range ents {
		s += fmt.Sprintf("  %s: %s\n", e.name, e.l)
	}
	var ids []int
	byID := map[int]*NestPlan{}
	for n, np := range p.Nests {
		ids = append(ids, n.ID)
		byID[n.ID] = np
	}
	sort.Ints(ids)
	for _, id := range ids {
		np := byID[id]
		if np.Identity() {
			s += fmt.Sprintf("nest %d: identity\n", id)
		} else {
			s += fmt.Sprintf("nest %d: T =\n%s", id, np.T)
		}
	}
	return s
}

func unitVec(k, pos int) []int64 {
	v := make([]int64, k)
	v[pos] = 1
	return v
}

// nestDeps caches dependence analysis per nest during a run.
type depCache map[*ir.Nest][]deps.Dependence

func (c depCache) get(n *ir.Nest) []deps.Dependence {
	if d, ok := c[n]; ok {
		return d
	}
	d := deps.Analyze(n)
	c[n] = d
	return d
}

// components splits a program like Step 2 of the algorithm.
func components(prog *ir.Program) []igraph.Component {
	return igraph.Build(prog).Components()
}
