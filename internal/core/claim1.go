package core

import (
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
)

// layoutFromMovement applies Relation (1): given the per-innermost-
// iteration movement v = L·q_last of a reference, derive a file layout
// giving that reference spatial locality. ok is false when no layout
// in our families achieves it (possible only for rank > 2 arrays with
// movement in several dimensions) or when v is zero (temporal locality:
// no constraint needed).
func layoutFromMovement(a *ir.Array, v []int64) (*layout.Layout, bool) {
	if matrix.IsZeroVec(v) {
		return nil, false
	}
	if a.Rank() == 2 {
		// g ∈ Ker{v}: the hyperplane containing the movement direction.
		basis := matrix.KernelBasis(matrix.FromRows([][]int64{{v[0], v[1]}}))
		if len(basis) == 0 {
			return nil, false
		}
		return layout.General(a.Dims[0], a.Dims[1], basis[0]), true
	}
	// Rank 1: trivially "row-major" (the only permutation).
	if a.Rank() == 1 {
		return layout.RowMajor(a.Dims...), true
	}
	// Higher ranks use dimension-reordering layouts: contiguity needs the
	// movement confined to a single dimension.
	fast := -1
	for d, x := range v {
		if x != 0 {
			if fast >= 0 {
				return nil, false
			}
			fast = d
		}
	}
	return layout.FastDim(a.Dims, fast), true
}

// constraintRows applies Relation (2): rows R such that R·q_last = 0
// forces the reference to have spatial or temporal locality under the
// array's already-fixed layout. An empty result means the layout
// imposes no linear constraint we can use (e.g. blocked layouts).
func constraintRows(r ir.Ref, l *layout.Layout) [][]int64 {
	if l == nil {
		return nil
	}
	if r.Array.Rank() == 2 {
		g := l.Hyperplane()
		if g == nil {
			return nil
		}
		// Single row: g·L.
		return [][]int64{r.L.VecMul(g)}
	}
	fast, ok := l.FastDimension()
	if !ok {
		return nil
	}
	// Every non-fast dimension of the movement must vanish: rows of L
	// except the fast one.
	var rows [][]int64
	for d := 0; d < r.L.Rows(); d++ {
		if d != fast {
			rows = append(rows, r.L.Row(d))
		}
	}
	return rows
}

// qLastCandidates enumerates innermost-direction candidates satisfying
// the stacked constraint rows, most-preferred first. With no
// constraints the natural candidates are the unit vectors, innermost
// original loop first (so an unconstrained nest tends to keep its
// shape).
func qLastCandidates(rows [][]int64, k int) [][]int64 {
	if len(rows) == 0 {
		var out [][]int64
		for pos := k - 1; pos >= 0; pos-- {
			out = append(out, unitVec(k, pos))
		}
		return out
	}
	basis := matrix.KernelBasis(matrix.FromRows(rows))
	// Prefer sparse, small vectors: they complete to near-permutation
	// matrices and keep generated code simple.
	sortCandidates(basis)
	var out [][]int64
	for _, b := range basis {
		out = append(out, b, negVec(b))
	}
	return out
}

func sortCandidates(vs [][]int64) {
	score := func(v []int64) (int, int64) {
		nz, maxAbs := 0, int64(0)
		for _, x := range v {
			if x != 0 {
				nz++
			}
			if a := absI64(x); a > maxAbs {
				maxAbs = a
			}
		}
		return nz, maxAbs
	}
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0; j-- {
			nzA, maxA := score(vs[j-1])
			nzB, maxB := score(vs[j])
			if nzB < nzA || (nzB == nzA && maxB < maxA) {
				vs[j-1], vs[j] = vs[j], vs[j-1]
			} else {
				break
			}
		}
	}
}

func negVec(v []int64) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
