package core

import "outcore/internal/matrix"

// Section 3.4: a general (non-permutation) data transformation can
// inflate the rectilinear bounding box an array must be declared with.
// ReduceStorage searches for a unimodular shear D that shrinks the
// bounding box of the accessed region D·(M·I + o) without disturbing
// the zero entries of the access matrix (which carry the locality the
// earlier phases established).
//
// m is the (rank x depth) access matrix AFTER loop/data optimization;
// extents are the trip counts of the (transformed) loops. The returned
// before/after are bounding-box element counts; d is nil when no shear
// helps (after == before then).
func ReduceStorage(m *matrix.Int, extents []int64) (d *matrix.Int, before, after int64) {
	if m.Rows() != 2 {
		// The paper develops the reduction for 2-D arrays; higher ranks
		// use permutation layouts only, which never inflate storage.
		return nil, BoundingBox(m, extents), BoundingBox(m, extents)
	}
	before = BoundingBox(m, extents)
	best := before
	var bestD *matrix.Int
	const maxShear = 8
	for s := int64(-maxShear); s <= maxShear; s++ {
		if s == 0 {
			continue
		}
		for _, cand := range []*matrix.Int{
			matrix.FromRows([][]int64{{1, s}, {0, 1}}), // row0 += s*row1
			matrix.FromRows([][]int64{{1, 0}, {s, 1}}), // row1 += s*row0
		} {
			nm := cand.Mul(m)
			if !preservesZeros(m, nm) {
				continue
			}
			if sz := BoundingBox(nm, extents); sz < best {
				best, bestD = sz, cand
			}
		}
	}
	if bestD == nil {
		return nil, before, before
	}
	return bestD, before, best
}

// BoundingBox returns the number of elements of the smallest rectilinear
// region containing {m·I : 0 <= I_j < extents_j}.
func BoundingBox(m *matrix.Int, extents []int64) int64 {
	size := int64(1)
	for r := 0; r < m.Rows(); r++ {
		var lo, hi int64
		for j := 0; j < m.Cols(); j++ {
			c := m.At(r, j)
			span := extents[j] - 1
			if span < 0 {
				span = 0
			}
			if c > 0 {
				hi += c * span
			} else {
				lo += c * span
			}
		}
		size *= hi - lo + 1
	}
	return size
}

// preservesZeros reports whether every zero entry of old is still zero
// in new — the paper's condition for not destroying the locality the
// optimizer established.
func preservesZeros(old, nm *matrix.Int) bool {
	for i := 0; i < old.Rows(); i++ {
		for j := 0; j < old.Cols(); j++ {
			if old.At(i, j) == 0 && nm.At(i, j) != 0 {
				return false
			}
		}
	}
	return true
}
