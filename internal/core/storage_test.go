package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/matrix"
)

// TestPaperStorageExample reproduces Section 3.4: access matrix
// [[a,b],[c,0]] with a >= c > 0 shrinks under the shear [[1,-1],[0,1]]
// ... wait, the paper's shear subtracts row 1 from row 0 only when the
// access matrix columns align; here the equivalent shrink is
// row0 -= row1 expressed on the access matrix as [[1,-1],[0,1]]·M.
func TestPaperStorageExample(t *testing.T) {
	// a=3, b=2, c=2, bounds N'=M'=100.
	m := matrix.FromRows([][]int64{{3, 2}, {2, 0}})
	extents := []int64{100, 100}
	d, before, after := ReduceStorage(m, extents)
	if d == nil {
		t.Fatal("no reduction found for the paper's example shape")
	}
	if after >= before {
		t.Fatalf("no shrink: before %d after %d", before, after)
	}
	// The chosen transform must be unimodular and preserve the zero.
	if !d.IsUnimodular() {
		t.Error("shear not unimodular")
	}
	nm := d.Mul(m)
	if nm.At(1, 1) != 0 {
		t.Errorf("zero entry destroyed:\n%s", nm)
	}
	// Paper's arithmetic: before = (a+b)(N'+M'-1)-ish x c(N'-1)-ish;
	// after replaces (a+b) with (a-c+b). Verify the ratio direction.
	// (3+2)=5 rows-extent shrinks to (3-2+2)=3.
	wantBefore := int64((3+2)*99+1) * int64(2*99+1)
	if before != wantBefore {
		t.Errorf("before = %d, want %d", before, wantBefore)
	}
	wantAfter := int64((1+2)*99+1) * int64(2*99+1)
	if after != wantAfter {
		t.Errorf("after = %d, want %d", after, wantAfter)
	}
}

func TestStorageNoReductionForPermutation(t *testing.T) {
	// Identity access: already minimal; no shear helps.
	m := matrix.FromRows([][]int64{{1, 0}, {0, 1}})
	d, before, after := ReduceStorage(m, []int64{10, 10})
	if d != nil || before != after {
		t.Errorf("identity access reduced: %v %d %d", d, before, after)
	}
	if before != 100 {
		t.Errorf("bounding box = %d", before)
	}
}

func TestStorageRank3Passthrough(t *testing.T) {
	m := matrix.FromRows([][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	d, before, after := ReduceStorage(m, []int64{4, 5, 6})
	if d != nil || before != after || before != 4*5*6 {
		t.Errorf("rank-3 passthrough wrong: %v %d %d", d, before, after)
	}
}

func TestBoundingBoxNegativeCoefficients(t *testing.T) {
	// Row i-j over 0..9 x 0..9 spans -9..9: 19 values.
	m := matrix.FromRows([][]int64{{1, -1}, {0, 1}})
	if got := BoundingBox(m, []int64{10, 10}); got != 19*10 {
		t.Errorf("bounding box = %d", got)
	}
}

func TestPropertyReductionNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := matrix.NewInt(2, 2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m.Set(i, j, int64(rng.Intn(7)-3))
			}
		}
		extents := []int64{int64(2 + rng.Intn(50)), int64(2 + rng.Intn(50))}
		d, before, after := ReduceStorage(m, extents)
		if after > before {
			return false
		}
		if d != nil {
			if !d.IsUnimodular() || !preservesZeros(m, d.Mul(m)) {
				return false
			}
			// Reported "after" must match the actual transformed box.
			if BoundingBox(d.Mul(m), extents) != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
