package core

import (
	"testing"

	"outcore/internal/deps"
	"outcore/internal/ir"
)

func countOptimized(t *testing.T, plan *Plan, progReports []LocalityReport) int {
	t.Helper()
	good := 0
	for _, rep := range progReports {
		if rep.Locality != NoLocality {
			good++
		}
	}
	return good
}

func TestOptimalMatchesCombinedOnWorkedExample(t *testing.T) {
	p, _, _, _ := motivatingFragment(16)
	var o Optimizer
	opt, err := o.OptimizeOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	// All four references must have locality: the combined heuristic
	// already achieves the optimum here, so the ILP must too.
	if got := countOptimized(t, opt, opt.Report(p, nil)); got != 4 {
		t.Errorf("optimal plan optimized %d/4 refs", got)
	}
	// Emitted transforms must be legal and unimodular.
	for _, n := range p.Nests {
		np := opt.Nests[n]
		if np == nil || !np.T.IsUnimodular() {
			t.Fatalf("nest %d: bad transform", n.ID)
		}
		if !deps.LegalTransform(np.T, deps.Analyze(n)) {
			t.Fatalf("nest %d: illegal transform", n.ID)
		}
	}
}

func TestOptimalNeverWorseThanCombined(t *testing.T) {
	// Across several structured programs, the ILP optimum must serve at
	// least as many (cost-weighted, here uniform) references as the
	// greedy propagation.
	for _, n := range []int64{8, 12} {
		p, _, _, _ := motivatingFragment(n)
		var o Optimizer
		combined := o.OptimizeCombined(p)
		optimal, err := o.OptimizeOptimal(p)
		if err != nil {
			t.Fatal(err)
		}
		cg := countOptimized(t, combined, combined.Report(p, nil))
		og := countOptimized(t, optimal, optimal.Report(p, nil))
		if og < cg {
			t.Errorf("n=%d: optimal %d < combined %d", n, og, cg)
		}
	}
}

func TestOptimalBeatsGreedyWhenOrderMisleads(t *testing.T) {
	// Force a bad greedy order via profile: the combined algorithm
	// processes the "wrong" nest first data-only and can lose a
	// reference; the ILP is order-free and must still reach the global
	// optimum achieved with the good order.
	p, _, _, _ := motivatingFragment(16)
	bad := Optimizer{Profile: map[int]int64{0: 1, 1: 1000}}
	_ = bad.OptimizeCombined(p)

	opt, err := bad.OptimizeOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOptimized(t, opt, opt.Report(p, nil)); got != 4 {
		t.Errorf("optimal with misleading profile optimized %d/4 refs", got)
	}
}

func TestCandidateLayoutsByRank(t *testing.T) {
	if got := len(candidateLayouts(ir.NewArray("a1", 8))); got != 1 {
		t.Errorf("rank-1 candidates = %d", got)
	}
	if got := len(candidateLayouts(ir.NewArray("a2", 8, 8))); got != 4 {
		t.Errorf("rank-2 candidates = %d", got)
	}
	if got := len(candidateLayouts(ir.NewArray("a3", 8, 8, 8))); got != 3 {
		t.Errorf("rank-3 candidates = %d", got)
	}
}
