package core

import (
	"outcore/internal/deps"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
)

// OptimizeCombined runs the paper's full algorithm (c-opt): per
// interference-graph component, order nests by cost, optimize the
// costliest with data transformations only, then alternate loop and
// data transformations over the remaining nests while propagating the
// layouts fixed so far.
func (o *Optimizer) OptimizeCombined(prog *ir.Program) *Plan {
	plan := NewPlan()
	dc := depCache{}
	for _, comp := range components(prog) {
		ordered := o.orderByCost(comp.Nests)
		for i, n := range ordered {
			dataOnly := i == 0
			o.optimizeNest(plan, n, dc, dataOnly, true)
		}
	}
	o.finish(plan, prog)
	return plan
}

// OptimizeDataOnly is the d-opt comparison version: file layouts are
// chosen greedily in nest-cost order, but no loop transformation is
// applied anywhere.
func (o *Optimizer) OptimizeDataOnly(prog *ir.Program) *Plan {
	plan := NewPlan()
	dc := depCache{}
	for _, comp := range components(prog) {
		for _, n := range o.orderByCost(comp.Nests) {
			o.optimizeNest(plan, n, dc, true, true)
		}
	}
	o.finish(plan, prog)
	return plan
}

// OptimizeLoopOnly is the l-opt comparison version: every array keeps
// the default file layout and each nest gets the best legal loop
// transformation for those fixed layouts.
func (o *Optimizer) OptimizeLoopOnly(prog *ir.Program) *Plan {
	plan := NewPlan()
	def := o.defaultLayout()
	for _, a := range prog.Arrays {
		plan.Layouts[a] = def(a.Dims)
	}
	dc := depCache{}
	for _, n := range prog.Nests {
		o.optimizeNest(plan, n, dc, false, false)
	}
	o.finish(plan, prog)
	return plan
}

// FixedLayouts builds the col/row baseline plans: every array gets the
// given layout, every nest the identity transformation.
func FixedLayouts(prog *ir.Program, mk func(dims []int64) *layout.Layout) *Plan {
	plan := NewPlan()
	for _, a := range prog.Arrays {
		plan.Layouts[a] = mk(a.Dims)
	}
	for _, n := range prog.Nests {
		plan.ensureNest(n)
	}
	return plan
}

// finish fills identity plans for unplanned nests and default layouts
// for unconstrained arrays.
func (o *Optimizer) finish(plan *Plan, prog *ir.Program) {
	for _, n := range prog.Nests {
		plan.ensureNest(n)
	}
	def := o.defaultLayout()
	for _, a := range prog.Arrays {
		if _, ok := plan.Layouts[a]; !ok {
			plan.Layouts[a] = def(a.Dims)
		}
	}
}

// optimizeNest performs Steps 3.b/3.c for one nest.
//
//   - dataOnly: keep Q = I and only assign layouts (used for the
//     costliest nest of a component and for d-opt).
//   - assignLayouts: whether arrays without a layout may receive one
//     (false for l-opt, which never moves data).
func (o *Optimizer) optimizeNest(plan *Plan, n *ir.Nest, dc depCache, dataOnly, assignLayouts bool) {
	k := n.Depth()
	np := plan.ensureNest(n)
	if k == 0 {
		return
	}
	var qLast []int64
	if dataOnly {
		qLast = unitVec(k, k-1)
		plan.note("nest %d: data transformations only (Q = I, q_last = e_%d)", n.ID, k-1)
	} else {
		qLast = o.chooseTransform(plan, n, dc, np)
		if np.Identity() {
			plan.note("nest %d: identity transformation kept (best legal q_last = %v)", n.ID, qLast)
		} else {
			plan.note("nest %d: q_last = %v from Ker{g·L} of the fixed layouts, completed to a unimodular Q (Bik-Wijshoff)", n.ID, qLast)
		}
	}
	if !assignLayouts {
		return
	}
	// Relation (1): assign layouts to arrays still unconstrained, using
	// the movements of their references under the chosen q_last.
	perArray := map[*ir.Array][]ir.Ref{}
	var order []*ir.Array
	for _, s := range n.Body {
		for _, r := range s.Refs() {
			if _, fixed := plan.Layouts[r.Array]; fixed {
				continue
			}
			if _, seen := perArray[r.Array]; !seen {
				order = append(order, r.Array)
			}
			perArray[r.Array] = append(perArray[r.Array], r)
		}
	}
	for _, a := range order {
		if l := bestLayoutFor(a, perArray[a], qLast); l != nil {
			plan.Layouts[a] = l
			plan.note("nest %d: array %s <- %s from Relation (1): g ∈ Ker{L·q_last}", n.ID, a.Name, l.Name())
		}
	}
}

// chooseTransform picks a legal loop transformation whose innermost
// direction satisfies as many already-fixed layouts as possible
// (Relation 2 + Bik–Wijshoff completion + dependence legality), records
// it in np, and returns the chosen q_last.
func (o *Optimizer) chooseTransform(plan *Plan, n *ir.Nest, dc depCache, np *NestPlan) []int64 {
	k := n.Depth()
	ds := dc.get(n)
	identityQ := unitVec(k, k-1)

	// Gather constraint rows from references to arrays with fixed
	// layouts; remember which refs they came from for scoring.
	var rows [][]int64
	for _, s := range n.Body {
		for _, r := range s.Refs() {
			if l, ok := plan.Layouts[r.Array]; ok {
				rows = append(rows, constraintRows(r, l)...)
			}
		}
	}

	best := struct {
		q     []int64
		t, qm *matrix.Int
		score int
	}{q: identityQ, t: matrix.Identity(k), qm: matrix.Identity(k), score: o.scoreQ(plan, n, identityQ)}

	tryCandidate := func(q []int64) {
		qm, ok := matrix.CompleteAny(q)
		if !ok {
			return
		}
		tRat, ok := qm.Inverse()
		if !ok {
			return
		}
		t, ok := tRat.ToInt()
		if !ok {
			return // non-unimodular completion (cannot happen with Complete)
		}
		if !deps.LegalTransform(t, ds) {
			return
		}
		qlNorm := qm.Col(k - 1)
		score := o.scoreQ(plan, n, qlNorm)
		if score > best.score {
			best.q, best.t, best.qm, best.score = qlNorm, t, qm, score
		}
	}
	// Fully-constrained candidates first; then per-subset relaxations
	// happen implicitly because kernel candidates of the full stack are
	// tried alongside the unconstrained unit vectors.
	for _, q := range qLastCandidates(rows, k) {
		tryCandidate(q)
	}
	if len(rows) > 0 {
		// Relaxation: if the full constraint stack was infeasible or
		// unhelpful, also try satisfying each fixed-layout ref family on
		// its own.
		for _, row := range rows {
			for _, q := range qLastCandidates([][]int64{row}, k) {
				tryCandidate(q)
			}
		}
	}
	// Plain unit vectors (loop permutations) as a last resort.
	for _, q := range qLastCandidates(nil, k) {
		tryCandidate(q)
	}

	np.T, np.Q, np.QLast = best.t, best.qm, best.q
	return best.q
}

// scoreQ counts how many references of the nest end up with locality
// under innermost direction q: fixed-layout arrays score against their
// layout, free arrays score if SOME layout in our families would give
// them locality (it will be assigned right after). Temporal locality
// counts double: it eliminates the I/O entirely for that reference
// direction.
func (o *Optimizer) scoreQ(plan *Plan, n *ir.Nest, q []int64) int {
	score := 0
	for _, s := range n.Body {
		for _, r := range s.Refs() {
			v := movement(r, q)
			if matrix.IsZeroVec(v) {
				score += 2
				continue
			}
			if l, fixed := plan.Layouts[r.Array]; fixed {
				if RefLocality(r, l, q) == Spatial {
					score++
				}
				continue
			}
			if _, ok := layoutFromMovement(r.Array, v); ok {
				score++
			}
		}
	}
	return score
}

// bestLayoutFor chooses a layout for a free array given all its
// references in the nest: each reference's movement proposes a
// candidate, and the candidate satisfying the most references wins.
func bestLayoutFor(a *ir.Array, refs []ir.Ref, qLast []int64) *layout.Layout {
	var best *layout.Layout
	bestScore := -1
	for _, r := range refs {
		cand, ok := layoutFromMovement(a, movement(r, qLast))
		if !ok {
			continue
		}
		score := 0
		for _, other := range refs {
			switch RefLocality(other, cand, qLast) {
			case Spatial:
				score++
			case Temporal:
				score += 2
			}
		}
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}
