package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/deps"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
)

// motivatingFragment builds the Section 3.1 program:
//
//	nest 0: U(i,j) = V(j,i) + 1.0
//	nest 1: V(i,j) = W(j,i) + 2.0
func motivatingFragment(n int64) (*ir.Program, *ir.Array, *ir.Array, *ir.Array) {
	u, v, w := ir.NewArray("U", n, n), ir.NewArray("V", n, n), ir.NewArray("W", n, n)
	p := &ir.Program{
		Name:   "motivating",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "", ir.AddConst(2)),
			}},
		},
	}
	return p, u, v, w
}

// TestWorkedExample reproduces the paper's Section 3.2.3 walk-through:
// U row-major, V column-major, W row-major, and loop interchange on the
// second nest.
func TestWorkedExample(t *testing.T) {
	p, u, v, w := motivatingFragment(16)
	var o Optimizer
	plan := o.OptimizeCombined(p)

	if got := plan.Layouts[u].Name(); got != "row-major" {
		t.Errorf("U layout = %s, want row-major", got)
	}
	if got := plan.Layouts[v].Name(); got != "col-major" {
		t.Errorf("V layout = %s, want col-major", got)
	}
	if got := plan.Layouts[w].Name(); got != "row-major" {
		t.Errorf("W layout = %s, want row-major", got)
	}
	np0 := plan.Nests[p.Nests[0]]
	if !np0.Identity() {
		t.Errorf("nest 0 should keep identity (data transformations only), got\n%s", np0.T)
	}
	np1 := plan.Nests[p.Nests[1]]
	interchange := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	if !np1.T.Equal(interchange) {
		t.Errorf("nest 1 T =\n%swant interchange", np1.T)
	}
	// Every reference must have spatial locality (the paper's headline
	// claim for this fragment).
	for _, rep := range plan.Report(p, nil) {
		if rep.Locality != Spatial {
			t.Errorf("ref %s in nest %d: locality %s", rep.Ref, rep.Nest.ID, rep.Locality)
		}
	}
}

// TestMotivationLocalityCounts checks the paper's claim: l-opt leaves 2
// of 4 references unoptimized, d-opt leaves 1, c-opt none.
func TestMotivationLocalityCounts(t *testing.T) {
	count := func(plan *Plan, p *ir.Program) int {
		good := 0
		for _, rep := range plan.Report(p, nil) {
			if rep.Locality != NoLocality {
				good++
			}
		}
		return good
	}
	var o Optimizer

	p, _, _, _ := motivatingFragment(16)
	if got := count(o.OptimizeLoopOnly(p), p); got != 2 {
		t.Errorf("l-opt optimized %d/4 refs, want 2", got)
	}
	p2, _, _, _ := motivatingFragment(16)
	if got := count(o.OptimizeDataOnly(p2), p2); got != 3 {
		t.Errorf("d-opt optimized %d/4 refs, want 3", got)
	}
	p3, _, _, _ := motivatingFragment(16)
	if got := count(o.OptimizeCombined(p3), p3); got != 4 {
		t.Errorf("c-opt optimized %d/4 refs, want 4", got)
	}
}

func TestFixedLayouts(t *testing.T) {
	p, u, _, _ := motivatingFragment(8)
	plan := FixedLayouts(p, func(dims []int64) *layout.Layout { return layout.RowMajor(dims...) })
	if plan.Layouts[u].Name() != "row-major" {
		t.Error("fixed layout wrong")
	}
	for _, n := range p.Nests {
		if !plan.Nests[n].Identity() {
			t.Error("fixed plan transformed a nest")
		}
	}
}

func TestProfileOverridesCostOrder(t *testing.T) {
	// Make nest 1 the costliest via profile: then nest 1 is optimized
	// data-only (identity) and nest 0 gets the loop transformation.
	p, _, _, _ := motivatingFragment(16)
	o := Optimizer{Profile: map[int]int64{0: 10, 1: 1000}}
	plan := o.OptimizeCombined(p)
	if !plan.Nests[p.Nests[1]].Identity() {
		t.Error("profiled costliest nest was transformed")
	}
	if plan.Nests[p.Nests[0]].Identity() {
		t.Error("cheaper nest kept identity; expected interchange")
	}
	// All references still optimized.
	for _, rep := range plan.Report(p, nil) {
		if rep.Locality != Spatial {
			t.Errorf("ref %s: locality %s", rep.Ref, rep.Locality)
		}
	}
}

func TestDependenceBlocksTransform(t *testing.T) {
	// A nest with dependence (1,-1) forbids plain interchange. Layouts
	// force a conflicting wish: A is fixed row-major but accessed
	// column-wise, so l-opt WANTS interchange; legality must refuse it
	// and keep a legal transform.
	n := int64(16)
	a := ir.NewArray("A", n+2, n+2)
	out := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 0})
	in := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{0, 1})
	nest := &ir.Nest{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{ir.Assign(out, []ir.Ref{in}, "", ir.AddConst(0))}}
	p := &ir.Program{Name: "dep", Arrays: []*ir.Array{a}, Nests: []*ir.Nest{nest}}
	o := Optimizer{DefaultLayout: func(dims []int64) *layout.Layout { return layout.ColMajor(dims...) }}
	plan := o.OptimizeLoopOnly(p)
	np := plan.Nests[nest]
	ds := deps.Analyze(nest)
	if !deps.LegalTransform(np.T, ds) {
		t.Fatalf("emitted illegal transform\n%s", np.T)
	}
}

func TestRank3FastDimLayout(t *testing.T) {
	// B(k,i,j) accessed in a depth-3 nest with innermost j: movement is
	// along dimension 2, so the layout must make dim 2 fastest.
	n := int64(8)
	b := ir.NewArray("B", n, n, n)
	nest := &ir.Nest{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(b, 3, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[0]) }),
	}}
	// B(k,i,j): dim0 <- loop2(k)? RefIdx(b, 3, 2, 0, 1) means dim0=loop2,
	// dim1=loop0, dim2=loop1. Movement under e_2 = (1,0,0): dim0 moves.
	p := &ir.Program{Name: "r3", Arrays: []*ir.Array{b}, Nests: []*ir.Nest{nest}}
	var o Optimizer
	plan := o.OptimizeCombined(p)
	l := plan.Layouts[b]
	fast, ok := l.FastDimension()
	if !ok || fast != 0 {
		t.Errorf("layout = %s (fast dim %d), want fast dim 0", l, fast)
	}
	for _, rep := range plan.Report(p, nil) {
		if rep.Locality != Spatial {
			t.Errorf("ref %s: locality %s", rep.Ref, rep.Locality)
		}
	}
}

func TestTemporalLocalityPreferred(t *testing.T) {
	// A(i) in a depth-2 nest: innermost direction e_1 gives temporal
	// locality (movement zero); the plan must classify it so.
	n := int64(8)
	a := ir.NewArray("A", n)
	nest := &ir.Nest{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefAffine(a, [][]int64{{1, 0}}, []int64{0}), nil, "", func(_ []float64, iv []int64) float64 { return 1 }),
	}}
	p := &ir.Program{Name: "t", Arrays: []*ir.Array{a}, Nests: []*ir.Nest{nest}}
	var o Optimizer
	plan := o.OptimizeCombined(p)
	reps := plan.Report(p, nil)
	if len(reps) != 1 || reps[0].Locality != Temporal {
		t.Errorf("report = %v", reps)
	}
}

func TestLayoutFromMovement(t *testing.T) {
	a2 := ir.NewArray("A", 8, 8)
	if l, ok := layoutFromMovement(a2, []int64{0, 1}); !ok || l.Name() != "row-major" {
		t.Errorf("movement (0,1) -> %v", l)
	}
	if l, ok := layoutFromMovement(a2, []int64{1, 0}); !ok || l.Name() != "col-major" {
		t.Errorf("movement (1,0) -> %v", l)
	}
	if l, ok := layoutFromMovement(a2, []int64{1, 1}); !ok || l.Name() != "diagonal" {
		t.Errorf("movement (1,1) -> %v (want diagonal: i-j constant along it)", l)
	}
	if _, ok := layoutFromMovement(a2, []int64{0, 0}); ok {
		t.Error("zero movement should give no layout")
	}
	a3 := ir.NewArray("B", 4, 4, 4)
	if l, ok := layoutFromMovement(a3, []int64{0, 1, 0}); !ok {
		t.Error("rank-3 single-dim movement failed")
	} else if fast, _ := l.FastDimension(); fast != 1 {
		t.Errorf("fast dim = %d", fast)
	}
	if _, ok := layoutFromMovement(a3, []int64{1, 1, 0}); ok {
		t.Error("rank-3 multi-dim movement should be unsatisfiable")
	}
	a1 := ir.NewArray("C", 16)
	if _, ok := layoutFromMovement(a1, []int64{1}); !ok {
		t.Error("rank-1 movement failed")
	}
}

func TestConstraintRows(t *testing.T) {
	a := ir.NewArray("A", 8, 8)
	r := ir.RefIdx(a, 2, 1, 0) // A(j,i)
	rows := constraintRows(r, layout.ColMajor(8, 8))
	// g = (0,1); g·L with L = [[0,1],[1,0]] = (1,0).
	if len(rows) != 1 || rows[0][0] != 1 || rows[0][1] != 0 {
		t.Errorf("rows = %v", rows)
	}
	if rows := constraintRows(r, layout.Blocked(8, 8, 2, 2)); rows != nil {
		t.Errorf("blocked layout produced constraints: %v", rows)
	}
	b := ir.NewArray("B", 4, 4, 4)
	rb := ir.RefIdx(b, 3, 0, 1, 2)
	rows = constraintRows(rb, layout.FastDim([]int64{4, 4, 4}, 2))
	if len(rows) != 2 {
		t.Errorf("rank-3 constraint rows = %v", rows)
	}
}

// TestPropertyPlanInvariants checks, over random 2-nest transpose-style
// programs, the core invariants: every emitted T is unimodular and
// dependence-legal, Q = T⁻¹, q_last is Q's last column, and the Claim-1
// equation g·L·q_last = 0 holds for every reference the plan claims has
// spatial locality.
func TestPropertyPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(8)
		u := ir.NewArray("U", n, n)
		v := ir.NewArray("V", n, n)
		mkRef := func(a *ir.Array) ir.Ref {
			perms := [][]int{{0, 1}, {1, 0}}
			p := perms[rng.Intn(2)]
			return ir.RefIdx(a, 2, p[0], p[1])
		}
		p := &ir.Program{
			Name:   "rand",
			Arrays: []*ir.Array{u, v},
			Nests: []*ir.Nest{
				{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
					ir.Assign(mkRef(u), []ir.Ref{mkRef(v)}, "", ir.AddConst(1)),
				}},
				{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
					ir.Assign(mkRef(v), []ir.Ref{mkRef(u)}, "", ir.AddConst(2)),
				}},
			},
		}
		var o Optimizer
		plan := o.OptimizeCombined(p)
		for _, nest := range p.Nests {
			np := plan.Nests[nest]
			if np == nil || !np.T.IsUnimodular() {
				return false
			}
			inv, ok := np.T.Inverse()
			if !ok {
				return false
			}
			qi, ok := inv.ToInt()
			if !ok || !qi.Equal(np.Q) {
				return false
			}
			last := np.Q.Col(nest.Depth() - 1)
			for i := range last {
				if last[i] != np.QLast[i] {
					return false
				}
			}
			if !deps.LegalTransform(np.T, deps.Analyze(nest)) {
				return false
			}
		}
		for _, rep := range plan.Report(p, nil) {
			if rep.Locality != Spatial {
				continue
			}
			l := plan.Layouts[rep.Ref.Array]
			g := l.Hyperplane()
			if g == nil {
				return false
			}
			qLast := plan.Nests[rep.Nest].QLast
			vmov := rep.Ref.L.MulVec(qLast)
			if g[0]*vmov[0]+g[1]*vmov[1] != 0 {
				return false // Claim-1 equation violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPlanStringAndHelpers(t *testing.T) {
	p, u, _, _ := motivatingFragment(8)
	var o Optimizer
	plan := o.OptimizeCombined(p)
	s := plan.String()
	if s == "" {
		t.Error("empty plan string")
	}
	if plan.LayoutOf(u, nil) == nil {
		t.Error("LayoutOf returned nil for planned array")
	}
	ghost := ir.NewArray("G", 4, 4)
	if l := plan.LayoutOf(ghost, func(dims []int64) *layout.Layout { return layout.RowMajor(dims...) }); l.Name() != "row-major" {
		t.Error("LayoutOf default not applied")
	}
	if Cost(p.Nests[0]) != 8*8*2 {
		t.Errorf("Cost = %d", Cost(p.Nests[0]))
	}
}
