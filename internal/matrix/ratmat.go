package matrix

import (
	"fmt"
	"strings"

	"outcore/internal/rational"
)

// Rat is a dense matrix of exact rationals, used where elimination
// needs division (inverses, kernel bases).
type Rat struct {
	rows, cols int
	a          []rational.Rat
}

// NewRat returns a zero rows x cols rational matrix.
func NewRat(rows, cols int) *Rat {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Rat{rows: rows, cols: cols, a: make([]rational.Rat, rows*cols)}
}

// RatIdentity returns the n x n rational identity.
func RatIdentity(n int) *Rat {
	m := NewRat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rational.One)
	}
	return m
}

// Rows returns the number of rows.
func (m *Rat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Rat) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Rat) At(i, j int) rational.Rat { return m.a[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Rat) Set(i, j int, v rational.Rat) { m.a[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Rat) Clone() *Rat {
	c := NewRat(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Equal reports shape and elementwise equality.
func (m *Rat) Equal(n *Rat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if !m.a[i].Equal(n.a[i]) {
			return false
		}
	}
	return true
}

// Mul returns m * n.
func (m *Rat) Mul(n *Rat) *Rat {
	if m.cols != n.rows {
		panic("matrix: rat mul shape mismatch")
	}
	p := NewRat(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.At(i, k)
			if mik.IsZero() {
				continue
			}
			for j := 0; j < n.cols; j++ {
				p.Set(i, j, p.At(i, j).Add(mik.Mul(n.At(k, j))))
			}
		}
	}
	return p
}

// MulVec returns m * v.
func (m *Rat) MulVec(v []rational.Rat) []rational.Rat {
	if m.cols != len(v) {
		panic("matrix: rat mulvec shape mismatch")
	}
	out := make([]rational.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		s := rational.Zero
		for j := 0; j < m.cols; j++ {
			s = s.Add(m.At(i, j).Mul(v[j]))
		}
		out[i] = s
	}
	return out
}

// Col returns a copy of column j.
func (m *Rat) Col(j int) []rational.Rat {
	c := make([]rational.Rat, m.rows)
	for i := range c {
		c[i] = m.At(i, j)
	}
	return c
}

// Inverse returns m⁻¹ via Gauss-Jordan with partial pivoting on exact
// rationals; ok is false when m is singular or non-square.
func (m *Rat) Inverse() (*Rat, bool) {
	if m.rows != m.cols {
		return nil, false
	}
	n := m.rows
	w := m.Clone()
	inv := RatIdentity(n)
	for col := 0; col < n; col++ {
		// Pivot: any nonzero entry works with exact arithmetic.
		p := -1
		for i := col; i < n; i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			return nil, false
		}
		w.swapRows(col, p)
		inv.swapRows(col, p)
		pivInv := w.At(col, col).Inv()
		w.scaleRow(col, pivInv)
		inv.scaleRow(col, pivInv)
		for i := 0; i < n; i++ {
			if i == col || w.At(i, col).IsZero() {
				continue
			}
			f := w.At(i, col).Neg()
			w.addRow(i, col, f)
			inv.addRow(i, col, f)
		}
	}
	return inv, true
}

// IsIntegral reports whether every entry is an integer.
func (m *Rat) IsIntegral() bool {
	for _, v := range m.a {
		if !v.IsInt() {
			return false
		}
	}
	return true
}

// ToInt converts to an integer matrix; ok is false if any entry is
// fractional.
func (m *Rat) ToInt() (*Int, bool) {
	if !m.IsIntegral() {
		return nil, false
	}
	out := NewInt(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(i, j, m.At(i, j).Int())
		}
	}
	return out, true
}

func (m *Rat) swapRows(i, j int) {
	if i == j {
		return
	}
	for k := 0; k < m.cols; k++ {
		m.a[i*m.cols+k], m.a[j*m.cols+k] = m.a[j*m.cols+k], m.a[i*m.cols+k]
	}
}

func (m *Rat) scaleRow(i int, f rational.Rat) {
	for k := 0; k < m.cols; k++ {
		m.a[i*m.cols+k] = m.a[i*m.cols+k].Mul(f)
	}
}

// addRow adds f * row(src) to row(dst).
func (m *Rat) addRow(dst, src int, f rational.Rat) {
	for k := 0; k < m.cols; k++ {
		m.a[dst*m.cols+k] = m.a[dst*m.cols+k].Add(f.Mul(m.a[src*m.cols+k]))
	}
}

// String renders the matrix with one row per line.
func (m *Rat) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprint(&b, m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
