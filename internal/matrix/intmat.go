// Package matrix provides exact integer and rational dense matrices
// sized for compiler analysis: access matrices, loop transformation
// matrices, and their kernels, inverses and completions.
//
// Everything is exact. Determinants use fraction-free (Bareiss)
// elimination; inverses and kernels use rational Gauss-Jordan; the
// Bik-Wijshoff style completion extends a primitive integer vector to a
// unimodular matrix. Matrices here are tiny (loop depth x loop depth),
// so clarity wins over blocking or SIMD concerns.
package matrix

import (
	"fmt"
	"strings"

	"outcore/internal/rational"
)

// Int is a dense integer matrix with row-major storage.
type Int struct {
	rows, cols int
	a          []int64
}

// NewInt returns a zero rows x cols integer matrix.
func NewInt(rows, cols int) *Int {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Int{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]int64) *Int {
	if len(rows) == 0 {
		return NewInt(0, 0)
	}
	m := NewInt(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.a[i*m.cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Int {
	m := NewInt(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Int) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Int) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Int) At(i, j int) int64 { return m.a[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Int) Set(i, j int, v int64) { m.a[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Int) Clone() *Int {
	c := NewInt(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether m and n have identical shape and entries.
func (m *Int) Equal(n *Int) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.a {
		if n.a[i] != v {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *Int) Row(i int) []int64 {
	r := make([]int64, m.cols)
	copy(r, m.a[i*m.cols:(i+1)*m.cols])
	return r
}

// Col returns a copy of column j.
func (m *Int) Col(j int) []int64 {
	c := make([]int64, m.rows)
	for i := range c {
		c[i] = m.At(i, j)
	}
	return c
}

// Transpose returns mᵀ.
func (m *Int) Transpose() *Int {
	t := NewInt(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * n, panicking on a shape mismatch.
func (m *Int) Mul(n *Int) *Int {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	p := NewInt(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				p.Set(i, j, p.At(i, j)+mik*n.At(k, j))
			}
		}
	}
	return p
}

// MulVec returns m * v for a column vector v.
func (m *Int) MulVec(v []int64) []int64 {
	if m.cols != len(v) {
		panic("matrix: mulvec shape mismatch")
	}
	out := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s int64
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns vᵀ * m for a row vector v, as a row vector.
func (m *Int) VecMul(v []int64) []int64 {
	if m.rows != len(v) {
		panic("matrix: vecmul shape mismatch")
	}
	out := make([]int64, m.cols)
	for j := 0; j < m.cols; j++ {
		var s int64
		for i := 0; i < m.rows; i++ {
			s += v[i] * m.At(i, j)
		}
		out[j] = s
	}
	return out
}

// IsSquare reports whether m is square.
func (m *Int) IsSquare() bool { return m.rows == m.cols }

// Det returns the determinant via fraction-free Bareiss elimination.
func (m *Int) Det() int64 {
	if !m.IsSquare() {
		panic("matrix: determinant of non-square matrix")
	}
	n := m.rows
	if n == 0 {
		return 1
	}
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			// Find a pivot row below and swap.
			p := -1
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					p = i
					break
				}
			}
			if p < 0 {
				return 0
			}
			w.swapRows(k, p)
			sign = -sign
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := w.At(i, j)*w.At(k, k) - w.At(i, k)*w.At(k, j)
				w.Set(i, j, num/prev) // exact by Bareiss invariant
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return sign * w.At(n-1, n-1)
}

// IsUnimodular reports whether m is square with determinant ±1.
func (m *Int) IsUnimodular() bool {
	if !m.IsSquare() {
		return false
	}
	d := m.Det()
	return d == 1 || d == -1
}

// IsNonSingular reports whether m is square with nonzero determinant.
func (m *Int) IsNonSingular() bool { return m.IsSquare() && m.Det() != 0 }

func (m *Int) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.a[i*m.cols : (i+1)*m.cols]
	rj := m.a[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ToRat converts m to a rational matrix.
func (m *Int) ToRat() *Rat {
	r := NewRat(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			r.Set(i, j, rational.FromInt(m.At(i, j)))
		}
	}
	return r
}

// String renders the matrix with aligned columns.
func (m *Int) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Inverse returns m⁻¹ as a rational matrix; ok is false when m is
// singular or non-square.
func (m *Int) Inverse() (inv *Rat, ok bool) {
	if !m.IsSquare() {
		return nil, false
	}
	return m.ToRat().Inverse()
}
