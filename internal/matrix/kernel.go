package matrix

import "outcore/internal/rational"

// KernelBasis returns an integer basis of the null space of m
// (vectors v with m*v == 0). Each basis vector is primitive: its
// entries are scaled to integers and divided by their gcd, matching the
// paper's rule of picking kernel vectors with minimal element gcd.
// The basis is empty when the kernel is trivial.
func KernelBasis(m *Int) [][]int64 {
	rm := m.ToRat()
	n := m.Cols()
	// Reduced row echelon form, tracking pivot columns.
	w := rm.Clone()
	pivotCol := make([]int, 0, w.rows)
	row := 0
	for col := 0; col < n && row < w.rows; col++ {
		p := -1
		for i := row; i < w.rows; i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		w.swapRows(row, p)
		w.scaleRow(row, w.At(row, col).Inv())
		for i := 0; i < w.rows; i++ {
			if i == row || w.At(i, col).IsZero() {
				continue
			}
			w.addRow(i, row, w.At(i, col).Neg())
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	isPivot := make([]bool, n)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis [][]int64
	for free := 0; free < n; free++ {
		if isPivot[free] {
			continue
		}
		// Back-substitute with the free variable set to 1.
		vec := make([]rational.Rat, n)
		vec[free] = rational.One
		for r, pc := range pivotCol {
			vec[pc] = w.At(r, free).Neg()
		}
		basis = append(basis, Primitive(vec))
	}
	return basis
}

// Primitive scales a rational vector to the shortest integer vector in
// the same direction: multiply by the lcm of denominators, then divide
// by the gcd of entries. The sign convention makes the first nonzero
// entry positive.
func Primitive(v []rational.Rat) []int64 {
	l := int64(1)
	for _, x := range v {
		if !x.IsZero() {
			l = rational.LCM(l, x.Den())
		}
	}
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = x.Num() * (l / x.Den())
	}
	g := rational.GCDAll(out...)
	if g > 1 {
		for i := range out {
			out[i] /= g
		}
	}
	for _, x := range out {
		if x != 0 {
			if x < 0 {
				for i := range out {
					out[i] = -out[i]
				}
			}
			break
		}
	}
	return out
}

// PrimitiveInt gcd-reduces an integer vector in place conventions of
// Primitive and returns it as a new slice.
func PrimitiveInt(v []int64) []int64 {
	r := make([]rational.Rat, len(v))
	for i, x := range v {
		r[i] = rational.FromInt(x)
	}
	return Primitive(r)
}

// IsZeroVec reports whether all entries of v are zero.
func IsZeroVec(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Dot returns the inner product of two equal-length integer vectors.
func Dot(a, b []int64) int64 {
	if len(a) != len(b) {
		panic("matrix: dot length mismatch")
	}
	var s int64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
