package matrix

import "outcore/internal/rational"

// HNF computes the column-style Hermite normal form of a: it returns
// (h, u) with h = a * u, u unimodular, h lower-triangular-ish with
// non-negative pivots and, in each pivot row, entries to the right of
// the pivot zero and entries to the left reduced modulo the pivot.
//
// The layout normalizer uses HNF to canonicalize data-transformation
// matrices (Section 3.4): two transformations whose column spans agree
// produce the same HNF, which makes "did this shear actually shrink the
// bounding box?" a well-posed comparison.
func HNF(a *Int) (h, u *Int) {
	h = a.Clone()
	u = Identity(a.Cols())
	rows, cols := h.Rows(), h.Cols()
	pivCol := 0
	for r := 0; r < rows && pivCol < cols; r++ {
		// Zero out columns pivCol+1.. in row r using extended gcd column ops.
		nonzero := false
		for c := pivCol; c < cols; c++ {
			if h.At(r, c) != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		for c := pivCol + 1; c < cols; c++ {
			if h.At(r, c) == 0 {
				continue
			}
			x, y := h.At(r, pivCol), h.At(r, c)
			g, s, t := rational.ExtGCD(x, y)
			// Column op on (pivCol, c): [s -y/g; t x/g], det = 1.
			applyColOp(h, pivCol, c, s, t, -y/g, x/g)
			applyColOp(u, pivCol, c, s, t, -y/g, x/g)
		}
		// Make the pivot positive.
		if h.At(r, pivCol) < 0 {
			negateCol(h, pivCol)
			negateCol(u, pivCol)
		}
		// Reduce earlier columns modulo the pivot in this row.
		p := h.At(r, pivCol)
		if p != 0 {
			for c := 0; c < pivCol; c++ {
				q := floorDiv(h.At(r, c), p)
				if q != 0 {
					addColMultiple(h, c, pivCol, -q)
					addColMultiple(u, c, pivCol, -q)
				}
			}
		}
		pivCol++
	}
	return h, u
}

// applyColOp replaces (col a, col b) with (s*a + t*b, p*a + q*b).
func applyColOp(m *Int, a, b int, s, t, p, q int64) {
	for r := 0; r < m.Rows(); r++ {
		va, vb := m.At(r, a), m.At(r, b)
		m.Set(r, a, s*va+t*vb)
		m.Set(r, b, p*va+q*vb)
	}
}

func negateCol(m *Int, c int) {
	for r := 0; r < m.Rows(); r++ {
		m.Set(r, c, -m.At(r, c))
	}
}

// addColMultiple adds f * col(src) to col(dst).
func addColMultiple(m *Int, dst, src int, f int64) {
	for r := 0; r < m.Rows(); r++ {
		m.Set(r, dst, m.At(r, dst)+f*m.At(r, src))
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
