package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/rational"
)

func TestKernelBasisSimple(t *testing.T) {
	// Ker of [0 1] is spanned by (1, 0): the paper's row-major case.
	b := KernelBasis(FromRows([][]int64{{0, 1}}))
	if len(b) != 1 {
		t.Fatalf("basis size %d", len(b))
	}
	if b[0][0] != 1 || b[0][1] != 0 {
		t.Errorf("basis = %v, want [1 0]", b[0])
	}
	// Ker of [1 0] is spanned by (0, 1): column-major.
	b = KernelBasis(FromRows([][]int64{{1, 0}}))
	if len(b) != 1 || b[0][0] != 0 || b[0][1] != 1 {
		t.Errorf("basis = %v, want [0 1]", b)
	}
}

func TestKernelBasisDiagonal(t *testing.T) {
	// Ker of [1 1] is spanned by (1, -1): diagonal layout direction.
	b := KernelBasis(FromRows([][]int64{{1, 1}}))
	if len(b) != 1 {
		t.Fatalf("basis size %d", len(b))
	}
	if b[0][0]+b[0][1] != 0 || b[0][0] == 0 {
		t.Errorf("basis = %v, want multiple of [1 -1]", b[0])
	}
}

func TestKernelBasisFullRankEmpty(t *testing.T) {
	if b := KernelBasis(Identity(3)); len(b) != 0 {
		t.Errorf("identity has kernel %v", b)
	}
}

func TestKernelBasisZeroMatrix(t *testing.T) {
	b := KernelBasis(NewInt(2, 3))
	if len(b) != 3 {
		t.Fatalf("zero matrix kernel dim %d, want 3", len(b))
	}
}

func TestKernelBasisRational(t *testing.T) {
	// [2 4; 1 2] has kernel spanned by (2, -1) after primitivization.
	b := KernelBasis(FromRows([][]int64{{2, 4}, {1, 2}}))
	if len(b) != 1 {
		t.Fatalf("basis size %d", len(b))
	}
	v := b[0]
	if 2*v[0]+4*v[1] != 0 || rational.GCDAll(v...) != 1 {
		t.Errorf("basis = %v", v)
	}
}

func TestPrimitive(t *testing.T) {
	v := Primitive([]rational.Rat{rational.New(1, 2), rational.New(-1, 3)})
	// (1/2, -1/3) * 6 = (3, -2), gcd 1, first nonzero positive.
	if v[0] != 3 || v[1] != -2 {
		t.Errorf("Primitive = %v, want [3 -2]", v)
	}
	v = Primitive([]rational.Rat{rational.New(-2, 1), rational.New(4, 1)})
	if v[0] != 1 || v[1] != -2 {
		t.Errorf("Primitive = %v, want [1 -2]", v)
	}
}

func TestPrimitiveInt(t *testing.T) {
	v := PrimitiveInt([]int64{-6, 9, -3})
	if v[0] != 2 || v[1] != -3 || v[2] != 1 {
		t.Errorf("PrimitiveInt = %v, want [2 -3 1]", v)
	}
}

func TestDotAndIsZeroVec(t *testing.T) {
	if Dot([]int64{1, 2, 3}, []int64{4, 5, 6}) != 32 {
		t.Error("Dot failed")
	}
	if !IsZeroVec([]int64{0, 0}) || IsZeroVec([]int64{0, 1}) {
		t.Error("IsZeroVec failed")
	}
}

func TestPropertyKernelVectorsAnnihilate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(3), 2+rng.Intn(3)
		m := NewInt(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(rng.Intn(7)-3))
			}
		}
		for _, v := range KernelBasis(m) {
			if rational.GCDAll(v...) != 1 {
				return false
			}
			for _, x := range m.MulVec(v) {
				if x != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKernelDimension(t *testing.T) {
	// rank + nullity == cols; estimate rank by counting pivots via Det of
	// square submatrices is overkill — instead verify nullity matches
	// cols - rank computed from an independent RREF implementation over
	// rationals embedded here.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(3), 1+rng.Intn(4)
		m := NewInt(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(rng.Intn(5)-2))
			}
		}
		return len(KernelBasis(m)) == cols-rank(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// rank computes matrix rank by independent fraction-free elimination.
func rank(m *Int) int {
	w := m.ToRat().Clone()
	r := 0
	for col := 0; col < w.Cols() && r < w.Rows(); col++ {
		p := -1
		for i := r; i < w.Rows(); i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		w.swapRows(r, p)
		for i := r + 1; i < w.Rows(); i++ {
			if w.At(i, col).IsZero() {
				continue
			}
			f := w.At(i, col).Div(w.At(r, col)).Neg()
			w.addRow(i, r, f)
		}
		r++
	}
	return r
}
