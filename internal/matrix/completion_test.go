package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/rational"
)

func TestCompleteLastColumn(t *testing.T) {
	cases := [][]int64{
		{1, 0},
		{0, 1},
		{1, 1},
		{1, -1},
		{2, 3},
		{1, 0, 0},
		{0, 0, 1},
		{1, 2, 3},
		{3, -5, 7},
		{1, 1, 1, 1},
	}
	for _, v := range cases {
		q, ok := Complete(v)
		if !ok {
			t.Fatalf("Complete(%v) failed", v)
		}
		if !q.IsUnimodular() {
			t.Errorf("Complete(%v) not unimodular:\n%s", v, q)
		}
		last := q.Col(q.Cols() - 1)
		for i := range v {
			if last[i] != v[i] {
				t.Errorf("Complete(%v) last column = %v", v, last)
				break
			}
		}
	}
}

func TestCompleteRejectsBadInput(t *testing.T) {
	if _, ok := Complete([]int64{0, 0}); ok {
		t.Error("completed zero vector")
	}
	if _, ok := Complete([]int64{2, 4}); ok {
		t.Error("completed non-primitive vector")
	}
	if _, ok := Complete(nil); ok {
		t.Error("completed empty vector")
	}
}

func TestCompleteAny(t *testing.T) {
	q, ok := CompleteAny([]int64{-2, 4})
	if !ok {
		t.Fatal("CompleteAny failed")
	}
	if !q.IsUnimodular() {
		t.Error("not unimodular")
	}
	// Last column must be the primitive direction of (-2, 4) = (1, -2).
	last := q.Col(1)
	if last[0] != 1 || last[1] != -2 {
		t.Errorf("last column = %v, want [1 -2]", last)
	}
	if _, ok := CompleteAny([]int64{0, 0, 0}); ok {
		t.Error("CompleteAny accepted zero vector")
	}
}

func TestPropertyCompleteUnimodularWithLastColumn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		v := make([]int64, k)
		for IsZeroVec(v) {
			for i := range v {
				v[i] = int64(rng.Intn(11) - 5)
			}
		}
		v = PrimitiveInt(v)
		q, ok := Complete(v)
		if !ok || !q.IsUnimodular() {
			return false
		}
		last := q.Col(k - 1)
		for i := range v {
			if last[i] != v[i] {
				return false
			}
		}
		// Q must be invertible with rational inverse: sanity-check Q*Q⁻¹.
		inv, ok := q.Inverse()
		if !ok {
			return false
		}
		return q.ToRat().Mul(inv).Equal(RatIdentity(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHNFBasic(t *testing.T) {
	a := FromRows([][]int64{{4, 6}, {2, 4}})
	h, u := HNF(a)
	if !u.IsUnimodular() {
		t.Fatalf("u not unimodular:\n%s", u)
	}
	if !a.Mul(u).Equal(h) {
		t.Errorf("a*u != h:\na*u=\n%sh=\n%s", a.Mul(u), h)
	}
}

func TestHNFRectangularAndZero(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	h, u := HNF(a)
	if !u.IsUnimodular() || !a.Mul(u).Equal(h) {
		t.Error("rectangular HNF invariant broken")
	}
	z := NewInt(2, 2)
	h, u = HNF(z)
	if !u.IsUnimodular() || !z.Mul(u).Equal(h) {
		t.Error("zero-matrix HNF invariant broken")
	}
}

func TestPropertyHNFInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(3), 1+rng.Intn(3)
		a := NewInt(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, int64(rng.Intn(9)-4))
			}
		}
		h, u := HNF(a)
		if !u.IsUnimodular() {
			return false
		}
		if !a.Mul(u).Equal(h) {
			return false
		}
		// Square non-singular inputs keep |det| under HNF.
		if rows == cols {
			da, dh := a.Det(), h.Det()
			if abs(da) != abs(dh) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRatMatrixOps(t *testing.T) {
	a := NewRat(2, 2)
	a.Set(0, 0, rational.New(1, 2))
	a.Set(0, 1, rational.One)
	a.Set(1, 0, rational.Zero)
	a.Set(1, 1, rational.New(2, 1))
	inv, ok := a.Inverse()
	if !ok {
		t.Fatal("inverse failed")
	}
	if !a.Mul(inv).Equal(RatIdentity(2)) {
		t.Error("a*a⁻¹ != I")
	}
	if a.IsIntegral() {
		t.Error("fractional matrix reported integral")
	}
	b := RatIdentity(2)
	if m, ok := b.ToInt(); !ok || !m.Equal(Identity(2)) {
		t.Error("ToInt failed on identity")
	}
	if _, ok := a.ToInt(); ok {
		t.Error("ToInt succeeded on fractional matrix")
	}
	v := a.MulVec([]rational.Rat{rational.FromInt(2), rational.FromInt(1)})
	if !v[0].Equal(rational.FromInt(2)) || !v[1].Equal(rational.FromInt(2)) {
		t.Errorf("MulVec = %v", v)
	}
}

func TestRatInverseSingular(t *testing.T) {
	a := NewRat(2, 2)
	a.Set(0, 0, rational.One)
	a.Set(0, 1, rational.One)
	a.Set(1, 0, rational.One)
	a.Set(1, 1, rational.One)
	if _, ok := a.Inverse(); ok {
		t.Error("singular rational matrix inverted")
	}
}
