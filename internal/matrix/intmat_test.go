package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %d", m.At(1, 2))
	}
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 {
		t.Errorf("Set failed")
	}
	if got := m.Row(0); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Row(0) = %v", got)
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 5 {
		t.Errorf("Col(1) = %v", got)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	FromRows([][]int64{{1, 2}, {3}})
}

func TestIdentityAndEqual(t *testing.T) {
	i3 := Identity(3)
	if !i3.Equal(FromRows([][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})) {
		t.Error("Identity(3) wrong")
	}
	if i3.Equal(Identity(2)) {
		t.Error("shape mismatch reported equal")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]int64{{1, 2}, {3, 4}})
	b := FromRows([][]int64{{5, 6}, {7, 8}})
	want := FromRows([][]int64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("a*b =\n%s", got)
	}
	if got := a.Mul(Identity(2)); !got.Equal(a) {
		t.Error("a*I != a")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	if got := a.MulVec([]int64{1, 0, -1}); got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
	if got := a.VecMul([]int64{1, -1}); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("VecMul = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	want := FromRows([][]int64{{1, 4}, {2, 5}, {3, 6}})
	if !a.Transpose().Equal(want) {
		t.Error("transpose wrong")
	}
	if !a.Transpose().Transpose().Equal(a) {
		t.Error("double transpose not identity")
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Int
		want int64
	}{
		{Identity(3), 1},
		{FromRows([][]int64{{0, 1}, {1, 0}}), -1},
		{FromRows([][]int64{{2, 0}, {0, 3}}), 6},
		{FromRows([][]int64{{1, 2}, {2, 4}}), 0},
		{FromRows([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}), -3},
		{FromRows([][]int64{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}}), -1},
		{NewInt(0, 0), 1},
	}
	for i, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("case %d: det = %d, want %d", i, got, c.want)
		}
	}
}

func TestDetNeedsPivotSwap(t *testing.T) {
	// Leading zero forces the row-swap path.
	m := FromRows([][]int64{{0, 2, 1}, {3, 0, 0}, {1, 1, 1}})
	if got := m.Det(); got != -3 {
		t.Errorf("det = %d, want -3", got)
	}
}

func TestUnimodularAndNonSingular(t *testing.T) {
	if !Identity(4).IsUnimodular() {
		t.Error("I not unimodular")
	}
	if !FromRows([][]int64{{0, 1}, {1, 0}}).IsUnimodular() {
		t.Error("interchange not unimodular")
	}
	if FromRows([][]int64{{2, 0}, {0, 1}}).IsUnimodular() {
		t.Error("det-2 reported unimodular")
	}
	if !FromRows([][]int64{{2, 0}, {0, 1}}).IsNonSingular() {
		t.Error("det-2 reported singular")
	}
	if FromRows([][]int64{{1, 1}, {1, 1}}).IsNonSingular() {
		t.Error("singular reported non-singular")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]int64{{2, 1}, {1, 1}})
	inv, ok := a.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	prod := a.ToRat().Mul(inv)
	if !prod.Equal(RatIdentity(2)) {
		t.Errorf("a*a⁻¹ =\n%s", prod)
	}
	if _, ok := FromRows([][]int64{{1, 2}, {2, 4}}).Inverse(); ok {
		t.Error("singular matrix inverted")
	}
	if _, ok := FromRows([][]int64{{1, 2, 3}}).Inverse(); ok {
		t.Error("non-square matrix inverted")
	}
}

func randUnimodular(rng *rand.Rand, n int) *Int {
	// Product of random elementary matrices: guaranteed det ±1.
	m := Identity(n)
	for step := 0; step < 3*n; step++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		f := int64(rng.Intn(5) - 2)
		e := Identity(n)
		e.Set(i, j, f)
		m = m.Mul(e)
		if rng.Intn(4) == 0 {
			m.swapRows(rng.Intn(n), rng.Intn(n))
		}
	}
	return m
}

func TestPropertyUnimodularDet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		return randUnimodular(rng, n).IsUnimodular()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInverseRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := randUnimodular(rng, n)
		inv, ok := m.Inverse()
		if !ok {
			return false
		}
		return m.ToRat().Mul(inv).Equal(RatIdentity(n)) && inv.Mul(m.ToRat()).Equal(RatIdentity(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		a, b := NewInt(n, n), NewInt(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, int64(rng.Intn(7)-3))
				b.Set(i, j, int64(rng.Intn(7)-3))
			}
		}
		return a.Mul(b).Det() == a.Det()*b.Det()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		a := NewInt(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, int64(rng.Intn(9)-4))
			}
		}
		return a.Det() == a.Transpose().Det()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
