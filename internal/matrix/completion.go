package matrix

import "outcore/internal/rational"

// Complete extends a primitive integer vector v (gcd of entries 1) to a
// unimodular k x k matrix whose LAST column equals v. This is the
// completion step the paper borrows from Bik and Wijshoff: the
// optimizer derives only the last column of Q = T⁻¹ (the innermost-loop
// direction) and needs the remaining columns filled so that Q is
// non-singular.
//
// ok is false when v is zero or not primitive.
func Complete(v []int64) (q *Int, ok bool) {
	k := len(v)
	if k == 0 || IsZeroVec(v) {
		return nil, false
	}
	if g := rational.GCDAll(v...); g != 1 {
		return nil, false
	}
	// Reduce v to e_0 by unimodular row operations M (M*v = e_0) while
	// accumulating M⁻¹ as column operations; then M⁻¹ has v as its first
	// column. Finally rotate columns so v becomes the last column.
	w := make([]int64, k)
	copy(w, v)
	minv := Identity(k)
	for i := 1; i < k; i++ {
		if w[i] == 0 {
			continue
		}
		a, b := w[0], w[i]
		g, x, y := rational.ExtGCD(a, b)
		// Row op:  [x  y; -b/g  a/g] on rows (0, i), det = 1.
		// Inverse: [a/g  -y; b/g  x], applied to minv as a column op.
		for r := 0; r < k; r++ {
			c0, ci := minv.At(r, 0), minv.At(r, i)
			minv.Set(r, 0, (a/g)*c0+(b/g)*ci)
			minv.Set(r, i, -y*c0+x*ci)
		}
		w[0], w[i] = g, 0
	}
	if w[0] != 1 {
		// v was not primitive (should be unreachable given the guard).
		return nil, false
	}
	// Rotate column 0 to position k-1 with a cyclic permutation, which
	// has determinant (-1)^(k-1); either sign keeps |det| == 1.
	out := NewInt(k, k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			src := (c + 1) % k // column k-1 gets old column 0
			out.Set(r, c, minv.At(r, src))
		}
	}
	return out, true
}

// CompleteAny gcd-reduces v and then completes it; it accepts any
// nonzero integer vector. ok is false only for zero vectors.
func CompleteAny(v []int64) (*Int, bool) {
	if IsZeroVec(v) {
		return nil, false
	}
	return Complete(PrimitiveInt(v))
}
