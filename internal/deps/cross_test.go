package deps

import (
	"testing"

	"outcore/internal/ir"
	"outcore/internal/matrix"
)

func TestCrossNestBackwardSameIteration(t *testing.T) {
	// E writes B(i,j); L reads B(i,j): conflicts only at the same common
	// iteration -> never backward -> distribution legal.
	b := ir.NewArray("B", 8, 8)
	refE := ir.RefIdx(b, 2, 0, 1)
	refL := ir.RefIdx(b, 2, 0, 1)
	if CrossNestBackward(refL, refE, 1) {
		t.Error("same-iteration conflict flagged as backward")
	}
}

func TestCrossNestBackwardPreviousIteration(t *testing.T) {
	// E reads B(i-1,j); L writes B(i,j): L's write at common iteration c
	// conflicts with E's read at c+1 -> backward -> illegal.
	b := ir.NewArray("B", 8, 8)
	refE := ir.RefAffine(b, [][]int64{{1, 0}, {0, 1}}, []int64{-1, 0})
	refL := ir.RefIdx(b, 2, 0, 1)
	if !CrossNestBackward(refL, refE, 1) {
		t.Error("backward conflict missed")
	}
}

func TestCrossNestBackwardNextIteration(t *testing.T) {
	// E reads B(i+1,j); L writes B(i,j): the conflicting write happens
	// at a LATER common iteration; distribution keeps that order.
	b := ir.NewArray("B", 8, 8)
	refE := ir.RefAffine(b, [][]int64{{1, 0}, {0, 1}}, []int64{1, 0})
	refL := ir.RefIdx(b, 2, 0, 1)
	if CrossNestBackward(refL, refE, 1) {
		t.Error("forward-only conflict flagged as backward")
	}
}

func TestCrossNestBackwardNoConflict(t *testing.T) {
	// Parity-disjoint accesses: no solution -> no backward conflict.
	b := ir.NewArray("B", 16, 16)
	refE := ir.RefAffine(b, [][]int64{{2, 0}, {0, 1}}, []int64{0, 0})
	refL := ir.RefAffine(b, [][]int64{{2, 0}, {0, 1}}, []int64{1, 0})
	if CrossNestBackward(refL, refE, 1) {
		t.Error("infeasible system flagged as backward")
	}
}

func TestCrossNestBackwardTransposedConservative(t *testing.T) {
	// E writes X(i,j); L reads X(j,i): the common-level difference is
	// kernel-free in one variable -> star -> conservatively backward.
	x := ir.NewArray("X", 8, 8)
	refE := ir.RefIdx(x, 2, 0, 1)
	refL := ir.RefIdx(x, 2, 1, 0)
	if !CrossNestBackward(refL, refE, 1) {
		t.Error("transposed conflict not treated conservatively")
	}
}

func TestUnderdeterminedDirs(t *testing.T) {
	// L = [1 0] (rank 1 over 2 vars), rhs 0: level 0 pinned to 0, level
	// 1 free -> (=, *).
	l := matrix.FromRows([][]int64{{1, 0}})
	dirs, ok := underdeterminedDirs(l, []int64{0}, 2)
	if !ok {
		t.Fatal("solvable system rejected")
	}
	if dirs[0] != Zero || dirs[1] != Star {
		t.Errorf("dirs = %v", dirs)
	}
	// rhs 3: level 0 pinned to 3 -> (<, *).
	dirs, ok = underdeterminedDirs(l, []int64{3}, 2)
	if !ok || dirs[0] != Pos {
		t.Errorf("pinned positive level: %v ok=%v", dirs, ok)
	}
	// Fractional pinned level: 2*d0 = 3 has no integer solution.
	l2 := matrix.FromRows([][]int64{{2, 0}})
	if _, ok := underdeterminedDirs(l2, []int64{3}, 2); ok {
		t.Error("fractional pin accepted")
	}
	// All levels pinned to zero: loop-independent only.
	l3 := matrix.FromRows([][]int64{{1, 0}, {0, 1}, {1, 1}})
	if _, ok := underdeterminedDirs(l3, []int64{0, 0, 0}, 2); ok {
		t.Error("zero-only solution treated as dependence")
	}
}

func TestDependenceStringDirs(t *testing.T) {
	arr := ir.NewArray("A", 4, 4)
	d := Dependence{Array: arr, Kind: "output", Dirs: []Dir{Pos, Neg, Zero, Star}}
	if d.String() != "output A (<,>,=,*)" {
		t.Errorf("String = %q", d.String())
	}
}
