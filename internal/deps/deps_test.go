package deps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/ir"
	"outcore/internal/matrix"
)

// stencilNest builds A(i,j) = A(i-1,j) + A(i,j-1): flow deps (1,0), (0,1).
func stencilNest(n int64) (*ir.Nest, *ir.Array) {
	a := ir.NewArray("A", n+1, n+1)
	out := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 1})
	in1 := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{0, 1})
	in2 := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 0})
	nest := &ir.Nest{
		Loops: ir.Rect(n, n),
		Body:  []*ir.Stmt{ir.Assign(out, []ir.Ref{in1, in2}, "", ir.Sum())},
	}
	return nest, a
}

func TestAnalyzeStencilDistances(t *testing.T) {
	nest, _ := stencilNest(8)
	ds := Analyze(nest)
	want := map[string]bool{}
	for _, d := range ds {
		if !d.Uniform {
			t.Fatalf("non-uniform dependence for uniformly generated refs: %v", d)
		}
		want[d.String()] = true
	}
	// Both (1,0) and (0,1) flow/anti dependences must be present.
	found10, found01 := false, false
	for _, d := range ds {
		if d.Distance[0] == 1 && d.Distance[1] == 0 {
			found10 = true
		}
		if d.Distance[0] == 0 && d.Distance[1] == 1 {
			found01 = true
		}
	}
	if !found10 || !found01 {
		t.Errorf("missing stencil dependences: %v", ds)
	}
}

func TestAnalyzeTransposeNoDeps(t *testing.T) {
	// U(i,j) = V(j,i): different arrays, no dependence.
	u, v := ir.NewArray("U", 8, 8), ir.NewArray("V", 8, 8)
	nest := &ir.Nest{
		Loops: ir.Rect(8, 8),
		Body:  []*ir.Stmt{ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1))},
	}
	if ds := Analyze(nest); len(ds) != 0 {
		t.Errorf("unexpected dependences: %v", ds)
	}
}

func TestAnalyzeSelfTransposeConservative(t *testing.T) {
	// A(i,j) = A(j,i): differently generated same-array refs; the GCD
	// test cannot disprove, so a conservative dependence must appear.
	a := ir.NewArray("A", 8, 8)
	nest := &ir.Nest{
		Loops: ir.Rect(8, 8),
		Body:  []*ir.Stmt{ir.Assign(ir.RefIdx(a, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 1, 0)}, "", ir.AddConst(0))},
	}
	ds := Analyze(nest)
	if len(ds) == 0 {
		t.Fatal("self-transpose dependence missed")
	}
	for _, d := range ds {
		if d.Uniform {
			t.Errorf("expected conservative dependence, got %v", d)
		}
	}
}

func TestAnalyzeOutOfRangeDistanceDropped(t *testing.T) {
	// A(i+100) = A(i) in a trip-8 loop: distance 100 exceeds the
	// iteration space, no dependence.
	a := ir.NewArray("A", 200)
	out := ir.RefAffine(a, [][]int64{{1}}, []int64{100})
	in := ir.RefAffine(a, [][]int64{{1}}, []int64{0})
	nest := &ir.Nest{Loops: ir.Rect(8), Body: []*ir.Stmt{ir.Assign(out, []ir.Ref{in}, "", ir.AddConst(0))}}
	if ds := Analyze(nest); len(ds) != 0 {
		t.Errorf("unexpected dependences: %v", ds)
	}
}

func TestAnalyzeGCDDisproves(t *testing.T) {
	// A(2i) = A(2i+1): parities never meet.
	a := ir.NewArray("A", 64)
	out := ir.RefAffine(a, [][]int64{{2}}, []int64{0})
	in := ir.RefAffine(a, [][]int64{{2}}, []int64{1})
	nest := &ir.Nest{Loops: ir.Rect(16), Body: []*ir.Stmt{ir.Assign(out, []ir.Ref{in}, "", ir.AddConst(0))}}
	if ds := Analyze(nest); len(ds) != 0 {
		t.Errorf("GCD test failed to disprove: %v", ds)
	}
}

func TestLegalTransformInterchange(t *testing.T) {
	interchange := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	// Stencil with deps (1,0) and (0,1): interchange maps them to (0,1)
	// and (1,0): both still lexpos -> legal.
	nest, _ := stencilNest(8)
	ds := Analyze(nest)
	if !LegalTransform(interchange, ds) {
		t.Error("interchange should be legal for the 5-point stencil")
	}
	// Reversal of the outer loop is illegal.
	reversal := matrix.FromRows([][]int64{{-1, 0}, {0, 1}})
	if LegalTransform(reversal, ds) {
		t.Error("outer reversal accepted")
	}
}

func TestLegalTransformSkewing(t *testing.T) {
	// Dependence (1,-1): interchange alone is illegal; skewing
	// [[1,0],[1,1]] makes it (1,0): legal.
	a := ir.NewArray("A", 20, 20)
	out := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 0})
	in := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{0, 1})
	nest := &ir.Nest{Loops: ir.Rect(8, 8), Body: []*ir.Stmt{ir.Assign(out, []ir.Ref{in}, "", ir.AddConst(0))}}
	ds := Analyze(nest)
	if len(ds) == 0 {
		t.Fatal("missing dependence")
	}
	interchange := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	if LegalTransform(interchange, ds) {
		t.Error("interchange accepted for (1,-1) dependence")
	}
	skew := matrix.FromRows([][]int64{{1, 0}, {1, 1}})
	if !LegalTransform(skew, ds) {
		t.Error("skewing rejected for (1,-1) dependence")
	}
}

func TestLegalTransformIdentityAlwaysLegal(t *testing.T) {
	// Identity must be legal even for all-star conservative deps.
	ds := []Dependence{{Array: ir.NewArray("A", 4, 4), Kind: "flow", Dirs: []Dir{Star, Star}}}
	if !LegalTransform(matrix.Identity(2), ds) {
		t.Error("identity rejected under conservative dependences")
	}
	// Interchange is NOT provably legal under (*,*).
	if LegalTransform(matrix.FromRows([][]int64{{0, 1}, {1, 0}}), ds) {
		t.Error("interchange accepted under (*,*)")
	}
}

func TestLexposRefinements(t *testing.T) {
	refs := lexposRefinements([]Dir{Star, Star})
	// (+,*) x3 + (0,+) = 4 refinements.
	if len(refs) != 4 {
		t.Errorf("refinements = %v", refs)
	}
	for _, r := range refs {
		// First non-zero must be Pos.
		for _, d := range r {
			if d == Zero {
				continue
			}
			if d != Pos {
				t.Errorf("refinement %v not lexpos", r)
			}
			break
		}
	}
	// A leading Neg direction has no lexpos refinement.
	if got := lexposRefinements([]Dir{Neg, Pos}); len(got) != 0 {
		t.Errorf("leading-Neg refinements = %v", got)
	}
}

func TestFullyPermutable(t *testing.T) {
	arr := ir.NewArray("A", 4, 4)
	mk := func(dist ...int64) Dependence {
		return Dependence{Array: arr, Kind: "flow", Distance: dist, Uniform: true, Dirs: dirsOf(dist)}
	}
	// Non-negative everywhere: permutable.
	if !FullyPermutable([]Dependence{mk(1, 0), mk(0, 1), mk(1, 1)}, 0, 2) {
		t.Error("non-negative band rejected")
	}
	// (1,-1): not permutable as a whole band...
	if FullyPermutable([]Dependence{mk(1, -1)}, 0, 2) {
		t.Error("(1,-1) band accepted")
	}
	// ...but the inner loop alone is tilable once level 0 satisfies it.
	if !FullyPermutable([]Dependence{mk(1, -1)}, 1, 2) {
		t.Error("inner band after satisfaction rejected")
	}
	// A leading-zero star refines to (=,+) only: the band is permutable.
	star := Dependence{Array: arr, Kind: "flow", Dirs: []Dir{Zero, Star}}
	if !FullyPermutable([]Dependence{star}, 0, 2) {
		t.Error("(=,*) band rejected; its only lexpos refinement is (=,+)")
	}
	// A star after a positive component can be negative: not permutable.
	star2 := Dependence{Array: arr, Kind: "flow", Dirs: []Dir{Pos, Star}}
	if FullyPermutable([]Dependence{star2}, 0, 2) {
		t.Error("(<,*) band accepted")
	}
}

func TestSolveIntLinear(t *testing.T) {
	l := matrix.FromRows([][]int64{{1, 0}, {0, 1}})
	d, unique, consistent := solveIntLinear(l, []int64{3, -2})
	if !consistent || !unique || d[0] != 3 || d[1] != -2 {
		t.Errorf("solve = %v %v %v", d, unique, consistent)
	}
	// Singular consistent: under-determined.
	l2 := matrix.FromRows([][]int64{{1, 1}, {2, 2}})
	_, unique, consistent = solveIntLinear(l2, []int64{1, 2})
	if !consistent || unique {
		t.Error("under-determined case mishandled")
	}
	// Inconsistent.
	_, _, consistent = solveIntLinear(l2, []int64{1, 3})
	if consistent {
		t.Error("inconsistent case accepted")
	}
	// Rational-only solution: no integer dependence.
	l3 := matrix.FromRows([][]int64{{2, 0}, {0, 1}})
	_, _, consistent = solveIntLinear(l3, []int64{1, 0})
	if consistent {
		t.Error("fractional solution accepted")
	}
}

func TestPropertyUniformDistanceCorrect(t *testing.T) {
	// For A(I + c) = A(I) nests, the dependence distance must be
	// lex-normalized c.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c0, c1 := int64(rng.Intn(5)-2), int64(rng.Intn(5)-2)
		if c0 == 0 && c1 == 0 {
			return true
		}
		a := ir.NewArray("A", 32, 32)
		out := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{c0 + 8, c1 + 8})
		in := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{8, 8})
		nest := &ir.Nest{Loops: ir.Rect(10, 10), Body: []*ir.Stmt{ir.Assign(out, []ir.Ref{in}, "", ir.AddConst(0))}}
		ds := Analyze(nest)
		if len(ds) == 0 {
			return false
		}
		for _, d := range ds {
			if !d.Uniform {
				return false
			}
			want := lexNormalize([]int64{c0, c1})
			if d.Distance[0] != want[0] || d.Distance[1] != want[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLegalityConsistentWithExecution(t *testing.T) {
	// Sound legality: if LegalTransform accepts T for the stencil, then
	// T·d is lexpos for both distances; cross-check directly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm := matrix.NewInt(2, 2)
		for {
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					tm.Set(i, j, int64(rng.Intn(5)-2))
				}
			}
			if tm.IsNonSingular() {
				break
			}
		}
		nest, _ := stencilNest(6)
		ds := Analyze(nest)
		legal := LegalTransform(tm, ds)
		manual := lexPositive(tm.MulVec([]int64{1, 0})) && lexPositive(tm.MulVec([]int64{0, 1}))
		return legal == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDependenceString(t *testing.T) {
	arr := ir.NewArray("A", 4, 4)
	d := Dependence{Array: arr, Kind: "flow", Distance: []int64{1, 0}, Uniform: true, Dirs: dirsOf([]int64{1, 0})}
	if d.String() != "flow A (1,0)" {
		t.Errorf("String = %q", d.String())
	}
	d2 := Dependence{Array: arr, Kind: "anti", Dirs: []Dir{Star, Zero}}
	if d2.String() != "anti A (*,=)" {
		t.Errorf("String = %q", d2.String())
	}
}

func TestBanerjeeDisprovesDisjointRegions(t *testing.T) {
	// A(i) writes rows 0..7; A(j+8) reads rows 8..15: the GCD test
	// cannot separate them (gcd 1 divides everything) but the Banerjee
	// bounds can.
	a := ir.NewArray("A", 16)
	w := ir.RefAffine(a, [][]int64{{1, 0}}, []int64{0})
	r := ir.RefAffine(a, [][]int64{{0, 1}}, []int64{8})
	nest := &ir.Nest{Loops: ir.Rect(8, 8), Body: []*ir.Stmt{ir.Assign(w, []ir.Ref{r}, "", ir.AddConst(0))}}
	if ds := Analyze(nest); len(ds) != 0 {
		t.Errorf("disjoint regions reported dependent: %v", ds)
	}
}

func TestBanerjeeKeepsOverlap(t *testing.T) {
	// A(i) vs A(j+4) with i,j in 0..7: rows 4..7 overlap, so a
	// conservative dependence must remain.
	a := ir.NewArray("A", 16)
	w := ir.RefAffine(a, [][]int64{{1, 0}}, []int64{0})
	r := ir.RefAffine(a, [][]int64{{0, 1}}, []int64{4})
	nest := &ir.Nest{Loops: ir.Rect(8, 8), Body: []*ir.Stmt{ir.Assign(w, []ir.Ref{r}, "", ir.AddConst(0))}}
	if ds := Analyze(nest); len(ds) == 0 {
		t.Error("overlapping regions reported independent")
	}
}

func TestBanerjeeScaledCoefficients(t *testing.T) {
	// A(4i) hits rows {0,4,...}, A(4j+2) hits {2,6,...}: GCD disproves;
	// A(4i) vs A(2j+32): Banerjee disproves (ranges [0,28] vs [32,46]).
	a := ir.NewArray("A", 64)
	w := ir.RefAffine(a, [][]int64{{4, 0}}, []int64{0})
	r1 := ir.RefAffine(a, [][]int64{{0, 4}}, []int64{2})
	r2 := ir.RefAffine(a, [][]int64{{0, 2}}, []int64{32})
	nest1 := &ir.Nest{Loops: ir.Rect(8, 8), Body: []*ir.Stmt{ir.Assign(w, []ir.Ref{r1}, "", ir.AddConst(0))}}
	if ds := Analyze(nest1); len(ds) != 0 {
		t.Errorf("GCD-separable refs dependent: %v", ds)
	}
	nest2 := &ir.Nest{Loops: ir.Rect(8, 8), Body: []*ir.Stmt{ir.Assign(w, []ir.Ref{r2}, "", ir.AddConst(0))}}
	if ds := Analyze(nest2); len(ds) != 0 {
		t.Errorf("Banerjee-separable refs dependent: %v", ds)
	}
}

func TestTransformDirs(t *testing.T) {
	interchange := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	got := TransformDirs(interchange, []Dir{Zero, Pos})
	if got[0] != Pos || got[1] != Zero {
		t.Errorf("interchange of (=,<) = %v", got)
	}
	// Skew [[1,1],[0,1]] of (+,-): first component + + - = ambiguous.
	skew := matrix.FromRows([][]int64{{1, 1}, {0, 1}})
	got = TransformDirs(skew, []Dir{Pos, Neg})
	if got[0] != Star || got[1] != Neg {
		t.Errorf("skew of (<,>) = %v", got)
	}
	// Stars stay stars where touched, zeros where annihilated.
	got = TransformDirs(matrix.FromRows([][]int64{{1, 0}, {0, 0}}), []Dir{Star, Pos})
	if got[0] != Star || got[1] != Zero {
		t.Errorf("projection of (*,<) = %v", got)
	}
}
