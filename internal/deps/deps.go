// Package deps implements data-dependence analysis for affine loop
// nests and legality checking of linear loop transformations.
//
// The optimizer only ever applies a transformation T when T·d remains
// lexicographically positive for every dependence distance/direction
// vector d in the nest (the classical legality condition the paper
// inherits from Wolf & Lam). Distances are computed exactly for
// uniformly generated references; everything else degrades soundly to
// direction vectors with unknown (*) components.
package deps

import (
	"fmt"
	"strings"

	"outcore/internal/ir"
	"outcore/internal/matrix"
	"outcore/internal/rational"
)

// Dir is the sign of one dependence-vector component.
type Dir int8

// Direction constants: Pos means the component is >= 1, Neg <= -1.
const (
	Zero Dir = iota
	Pos
	Neg
	Star // unknown sign
)

func (d Dir) String() string {
	switch d {
	case Zero:
		return "="
	case Pos:
		return "<"
	case Neg:
		return ">"
	default:
		return "*"
	}
}

// Dependence records a (possibly conservative) dependence between two
// references to the same array within one nest.
type Dependence struct {
	Array    *ir.Array
	Kind     string  // "flow", "anti", "output", or "input" (input deps kept for reuse analysis)
	Distance []int64 // exact distance vector when Uniform
	Uniform  bool
	Dirs     []Dir // always populated; derived from Distance when Uniform
}

func (d Dependence) String() string {
	parts := make([]string, len(d.Dirs))
	if d.Uniform {
		for i, x := range d.Distance {
			parts[i] = fmt.Sprintf("%d", x)
		}
	} else {
		for i, x := range d.Dirs {
			parts[i] = x.String()
		}
	}
	return fmt.Sprintf("%s %s (%s)", d.Kind, d.Array.Name, strings.Join(parts, ","))
}

// Analyze returns the loop-carried dependences of a nest. Loop-
// independent dependences (zero distance) are dropped: they constrain
// statement order inside an iteration, which linear loop
// transformations preserve. Input (read-read) dependences are not
// reported.
func Analyze(n *ir.Nest) []Dependence {
	var out []Dependence
	type occ struct {
		ref   ir.Ref
		write bool
	}
	var occs []occ
	for _, s := range n.Body {
		occs = append(occs, occ{s.Out, true})
		for _, r := range s.In {
			occs = append(occs, occ{r, false})
		}
	}
	for a := range occs {
		for b := range occs {
			if a == b {
				continue
			}
			oa, ob := occs[a], occs[b]
			if oa.ref.Array != ob.ref.Array {
				continue
			}
			if !oa.write && !ob.write {
				continue
			}
			// Consider each unordered pair once (a < b); pairDependence
			// itself normalizes the distance to be lexicographically
			// positive.
			if a > b {
				continue
			}
			if d, ok := pairDependence(n, oa.ref, ob.ref, oa.write, ob.write); ok {
				out = append(out, d)
			}
		}
	}
	return dedup(out)
}

// pairDependence tests two same-array references for a loop-carried
// dependence.
func pairDependence(n *ir.Nest, r1, r2 ir.Ref, w1, w2 bool) (Dependence, bool) {
	kind := "flow"
	switch {
	case w1 && w2:
		kind = "output"
	case !w1 && w2:
		kind = "anti"
	}
	k := n.Depth()
	if sameMatrix(r1.L, r2.L) {
		// Uniformly generated: L·d == o1 - o2 with d = I2 - I1.
		rhs := make([]int64, r1.Array.Rank())
		for i := range rhs {
			rhs[i] = r1.Off[i] - r2.Off[i]
		}
		d, unique, consistent := solveIntLinear(r1.L, rhs)
		if !consistent {
			return Dependence{}, false
		}
		if unique {
			if matrix.IsZeroVec(d) {
				return Dependence{}, false // loop-independent
			}
			if !withinTripBounds(n, d) {
				return Dependence{}, false
			}
			d = lexNormalize(d)
			return Dependence{Array: r1.Array, Kind: kind, Distance: d, Uniform: true, Dirs: dirsOf(d)}, true
		}
		// Under-determined: the solution space is particular + kernel.
		// Components untouched by the kernel are pinned to the particular
		// solution; the rest are unknown. This keeps reduction-style
		// dependences like (=,=,*) instead of collapsing to all-stars.
		if dirs, ok := underdeterminedDirs(r1.L, rhs, k); ok {
			return Dependence{Array: r1.Array, Kind: kind, Dirs: dirs}, true
		}
		return Dependence{}, false
	}
	// Differently generated references: per-dimension GCD and Banerjee
	// tests can disprove; otherwise conservative all-star.
	for row := 0; row < r1.Array.Rank(); row++ {
		coefs := append(append([]int64{}, r1.L.Row(row)...), negate(r2.L.Row(row))...)
		g := rational.GCDAll(coefs...)
		diff := r2.Off[row] - r1.Off[row]
		if g == 0 {
			if diff != 0 {
				return Dependence{}, false
			}
			continue
		}
		if diff%g != 0 {
			return Dependence{}, false
		}
	}
	if banerjeeDisproves(n, r1, r2) {
		return Dependence{}, false
	}
	return Dependence{Array: r1.Array, Kind: kind, Dirs: allStar(k)}, true
}

// banerjeeDisproves applies the Banerjee bounds test: the equation
// r1.L·I1 + o1 = r2.L·I2 + o2 has a solution inside the rectangular
// iteration space only if, per array dimension, zero lies within the
// interval of (r1 row)·I1 - (r2 row)·I2 + (o1 - o2) over the bounds.
func banerjeeDisproves(n *ir.Nest, r1, r2 ir.Ref) bool {
	for row := 0; row < r1.Array.Rank(); row++ {
		lo := r1.Off[row] - r2.Off[row]
		hi := lo
		for j, loop := range n.Loops {
			addIntervalTerm(&lo, &hi, r1.L.At(row, j), loop.Lo, loop.Hi)
			addIntervalTerm(&lo, &hi, -r2.L.At(row, j), loop.Lo, loop.Hi)
		}
		if lo > 0 || hi < 0 {
			return true
		}
	}
	return false
}

// addIntervalTerm widens [lo, hi] by c·x with x in [xlo, xhi].
func addIntervalTerm(lo, hi *int64, c, xlo, xhi int64) {
	if c >= 0 {
		*lo += c * xlo
		*hi += c * xhi
	} else {
		*lo += c * xhi
		*hi += c * xlo
	}
}

// solveIntLinear solves L·d = rhs over the integers. It returns the
// solution when unique, unique=false when the system is consistent but
// under-determined, and consistent=false when no integer solution
// exists.
func solveIntLinear(l *matrix.Int, rhs []int64) (d []int64, unique, consistent bool) {
	rows, cols := l.Rows(), l.Cols()
	// Rational Gaussian elimination on the augmented matrix.
	aug := matrix.NewRat(rows, cols+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			aug.Set(i, j, rational.FromInt(l.At(i, j)))
		}
		aug.Set(i, cols, rational.FromInt(rhs[i]))
	}
	pivotCols := make([]int, 0, rows)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p := -1
		for i := r; i < rows; i++ {
			if !aug.At(i, c).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		swapRatRows(aug, r, p)
		scaleRatRow(aug, r, aug.At(r, c).Inv())
		for i := 0; i < rows; i++ {
			if i == r || aug.At(i, c).IsZero() {
				continue
			}
			addRatRow(aug, i, r, aug.At(i, c).Neg())
		}
		pivotCols = append(pivotCols, c)
		r++
	}
	// Inconsistency: zero row with nonzero rhs.
	for i := r; i < rows; i++ {
		if !aug.At(i, cols).IsZero() {
			return nil, false, false
		}
	}
	if len(pivotCols) < cols {
		return nil, false, true // under-determined
	}
	d = make([]int64, cols)
	for idx, c := range pivotCols {
		v := aug.At(idx, cols)
		if !v.IsInt() {
			return nil, false, false // rational-only solution: no integer dependence
		}
		d[c] = v.Int()
	}
	return d, true, true
}

func swapRatRows(m *matrix.Rat, i, j int) {
	if i == j {
		return
	}
	for k := 0; k < m.Cols(); k++ {
		vi, vj := m.At(i, k), m.At(j, k)
		m.Set(i, k, vj)
		m.Set(j, k, vi)
	}
}

func scaleRatRow(m *matrix.Rat, i int, f rational.Rat) {
	for k := 0; k < m.Cols(); k++ {
		m.Set(i, k, m.At(i, k).Mul(f))
	}
}

func addRatRow(m *matrix.Rat, dst, src int, f rational.Rat) {
	for k := 0; k < m.Cols(); k++ {
		m.Set(dst, k, m.At(dst, k).Add(f.Mul(m.At(src, k))))
	}
}

// underdeterminedDirs derives per-level direction info for L·d = rhs
// with multiple solutions: levels with kernel freedom are Star; pinned
// levels take the sign of the particular solution. ok is false when a
// pinned level is fractional (no integer solution) or every level is
// pinned to zero (loop-independent only).
func underdeterminedDirs(l *matrix.Int, rhs []int64, k int) ([]Dir, bool) {
	sol, ok := solveAffineSpace(l, rhs)
	if !ok {
		return nil, false
	}
	dirs := make([]Dir, k)
	anyNonzero := false
	for lvl := 0; lvl < k; lvl++ {
		free := false
		for _, kv := range sol.kernel {
			if kv[lvl] != 0 {
				free = true
				break
			}
		}
		if free {
			dirs[lvl] = Star
			anyNonzero = true
			continue
		}
		c := sol.particular[lvl]
		if !c.IsInt() {
			return nil, false // pinned to a fractional value: no integer solution
		}
		switch c.Sign() {
		case 1:
			dirs[lvl] = Pos
			anyNonzero = true
		case -1:
			dirs[lvl] = Neg
			anyNonzero = true
		default:
			dirs[lvl] = Zero
		}
	}
	if !anyNonzero {
		return nil, false // only the zero solution: loop-independent
	}
	return dirs, true
}

func sameMatrix(a, b *matrix.Int) bool { return a.Equal(b) }

func withinTripBounds(n *ir.Nest, d []int64) bool {
	for lvl, x := range d {
		t := n.Loops[lvl].Trip()
		if x > t-1 || x < -(t-1) {
			return false
		}
	}
	return true
}

// lexNormalize flips d so it is lexicographically positive (the
// dependence then runs from the earlier iteration to the later one).
func lexNormalize(d []int64) []int64 {
	for _, x := range d {
		if x > 0 {
			return d
		}
		if x < 0 {
			out := make([]int64, len(d))
			for i := range d {
				out[i] = -d[i]
			}
			return out
		}
	}
	return d
}

func dirsOf(d []int64) []Dir {
	out := make([]Dir, len(d))
	for i, x := range d {
		switch {
		case x > 0:
			out[i] = Pos
		case x < 0:
			out[i] = Neg
		default:
			out[i] = Zero
		}
	}
	return out
}

func allStar(k int) []Dir {
	out := make([]Dir, k)
	for i := range out {
		out[i] = Star
	}
	return out
}

func negate(v []int64) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

func dedup(ds []Dependence) []Dependence {
	seen := map[string]bool{}
	var out []Dependence
	for _, d := range ds {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}
