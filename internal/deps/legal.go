package deps

import "outcore/internal/matrix"

// signSet is the over-approximated set of achievable signs of a value.
type signSet struct{ neg, zero, pos bool }

func signOfDir(d Dir, coef int64) signSet {
	if coef == 0 {
		return signSet{zero: true}
	}
	switch d {
	case Zero:
		return signSet{zero: true}
	case Pos:
		if coef > 0 {
			return signSet{pos: true}
		}
		return signSet{neg: true}
	case Neg:
		if coef > 0 {
			return signSet{neg: true}
		}
		return signSet{pos: true}
	default: // Star
		return signSet{neg: true, zero: true, pos: true}
	}
}

// sumSigns over-approximates the achievable signs of a sum of terms of
// unbounded magnitudes.
func sumSigns(terms []signSet) signSet {
	var s signSet
	allExactlyZero := true
	everyCanZero := true
	for _, t := range terms {
		if t.pos {
			s.pos = true
		}
		if t.neg {
			s.neg = true
		}
		if !t.zero {
			everyCanZero = false
		}
		if t.pos || t.neg {
			allExactlyZero = false
		}
	}
	if allExactlyZero {
		return signSet{zero: true}
	}
	s.zero = everyCanZero || (s.pos && s.neg)
	return s
}

// LegalTransform reports whether applying the loop transformation T
// (new iteration vector = T * old) keeps every dependence
// lexicographically positive. The check is exact for uniform distances
// and conservatively sound for direction vectors: it never accepts an
// illegal transformation, but may reject a legal one.
func LegalTransform(t *matrix.Int, ds []Dependence) bool {
	for _, d := range ds {
		if d.Uniform {
			if !lexPositive(t.MulVec(d.Distance)) {
				return false
			}
			continue
		}
		// Direction vectors describe dependences of the ORIGINAL nest,
		// which are lexicographically positive by construction; expand
		// unknown components and prune lex-negative refinements before
		// checking.
		for _, ref := range lexposRefinements(d.Dirs) {
			if !legalDirs(t, ref) {
				return false
			}
		}
	}
	return true
}

// lexposRefinements expands Star components into {Pos, Zero, Neg} and
// keeps only refinements whose first non-Zero component is Pos (i.e.
// genuine, lexicographically positive dependences). The all-Zero
// refinement (loop-independent) is dropped.
func lexposRefinements(dirs []Dir) [][]Dir {
	var out [][]Dir
	cur := make([]Dir, len(dirs))
	var rec func(i int, decided bool)
	rec = func(i int, decided bool) {
		if i == len(dirs) {
			if decided {
				c := make([]Dir, len(cur))
				copy(c, cur)
				out = append(out, c)
			}
			return
		}
		choices := []Dir{dirs[i]}
		if dirs[i] == Star {
			if decided {
				choices = []Dir{Pos, Zero, Neg}
			} else {
				choices = []Dir{Pos, Zero} // leading Neg would be lex-negative
			}
		} else if !decided && dirs[i] == Neg {
			return // inconsistent with lex positivity
		}
		for _, c := range choices {
			cur[i] = c
			rec(i+1, decided || c == Pos || c == Neg)
		}
	}
	rec(0, false)
	return out
}

func lexPositive(v []int64) bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
		if x < 0 {
			return false
		}
	}
	return false // a transformed genuine dependence must not vanish
}

// legalDirs checks T·d ≻ 0 for every d consistent with a star-free
// direction vector, using sign-set reasoning row by row: a row whose
// sign is guaranteed positive proves the rest; a row that can be
// negative disproves; a row that may be zero defers to later rows.
func legalDirs(t *matrix.Int, dirs []Dir) bool {
	for row := 0; row < t.Rows(); row++ {
		terms := make([]signSet, len(dirs))
		for j, d := range dirs {
			terms[j] = signOfDir(d, t.At(row, j))
		}
		s := sumSigns(terms)
		if s.neg {
			return false
		}
		if s.pos && !s.zero {
			return true // strictly positive: decided for every consistent d
		}
		// s ⊆ {0}: defer entirely. s ⊆ {0,+}: the zero cases defer; the
		// positive cases are already satisfied, so deferring is sound.
	}
	return false
}

// FullyPermutable reports whether the loops in levels [lo, hi) form a
// fully permutable band: every dependence not already satisfied by an
// outer level has non-negative components at all levels of the band.
// Rectangular tiling of the band is legal exactly in that case.
// Direction vectors are expanded to their lexicographically positive
// refinements first, so a reduction dependence (=,=,*) counts as
// (=,=,+).
func FullyPermutable(ds []Dependence, lo, hi int) bool {
	for _, d := range ds {
		if d.Uniform {
			if !bandNonNegative(d.Dirs, lo, hi) {
				return false
			}
			continue
		}
		for _, ref := range lexposRefinements(d.Dirs) {
			if !bandNonNegative(ref, lo, hi) {
				return false
			}
		}
	}
	return true
}

// bandNonNegative checks one star-free direction vector: satisfied by a
// positive component before the band, or non-negative throughout it.
func bandNonNegative(dirs []Dir, lo, hi int) bool {
	for lvl := 0; lvl < lo && lvl < len(dirs); lvl++ {
		if dirs[lvl] == Pos {
			return true
		}
	}
	for lvl := lo; lvl < hi && lvl < len(dirs); lvl++ {
		if dirs[lvl] == Neg {
			return false
		}
	}
	return true
}

// TransformDirs conservatively maps a direction vector through the
// loop transformation T: each transformed component's sign is derived
// by sign-set arithmetic over the consistent original instances, with
// Star wherever the sign is ambiguous. Used to re-check band
// permutability after a transformation when exact distances are
// unknown.
func TransformDirs(t *matrix.Int, dirs []Dir) []Dir {
	out := make([]Dir, t.Rows())
	for row := 0; row < t.Rows(); row++ {
		terms := make([]signSet, len(dirs))
		for j, d := range dirs {
			terms[j] = signOfDir(d, t.At(row, j))
		}
		s := sumSigns(terms)
		switch {
		case s.pos && !s.neg && !s.zero:
			out[row] = Pos
		case s.neg && !s.pos && !s.zero:
			out[row] = Neg
		case s.zero && !s.pos && !s.neg:
			out[row] = Zero
		default:
			out[row] = Star
		}
	}
	return out
}
