package deps

import (
	"outcore/internal/ir"
	"outcore/internal/matrix"
	"outcore/internal/rational"
)

// CrossNestBackward decides whether loop distribution may reorder a
// conflict between two references that end up in different nests
// sharing their first `common` loops.
//
// Context: an imperfect loop executes, per common iteration c, first
// the "earlier" group (containing refE) then the "later" group
// (containing refL). Distribution runs ALL earlier-group iterations
// before any later-group ones. That is illegal exactly when some
// later-group instance at common iteration c1 conflicts with an
// earlier-group instance at a strictly later common iteration c2 ≻ c1
// (originally L(c1) ran before E(c2); after distribution the order
// flips).
//
// The analysis solves the joint affine system
//
//	refL.L · I_L + oL  ==  refE.L · I_E + oE
//
// over (I_L, I_E) and over-approximates the achievable signs of the
// common-prefix difference I_E − I_L. It returns true (conservatively:
// "a backward conflict may exist") unless it can prove the difference
// is never lexicographically positive. Callers must pass references to
// the SAME array, at least one of which is a write.
func CrossNestBackward(refL, refE ir.Ref, common int) bool {
	kL, kE := refL.Depth(), refE.Depth()
	rows := refL.Array.Rank()
	a := matrix.NewInt(rows, kL+kE)
	rhs := make([]int64, rows)
	for r := 0; r < rows; r++ {
		for j := 0; j < kL; j++ {
			a.Set(r, j, refL.L.At(r, j))
		}
		for j := 0; j < kE; j++ {
			a.Set(r, kL+j, -refE.L.At(r, j))
		}
		rhs[r] = refE.Off[r] - refL.Off[r]
	}
	// Integer feasibility per row (GCD test): a rational-only solution
	// is no conflict.
	for r := 0; r < rows; r++ {
		g := rational.GCDAll(a.Row(r)...)
		if g == 0 {
			if rhs[r] != 0 {
				return false
			}
			continue
		}
		if rhs[r]%g != 0 {
			return false
		}
	}
	sol, ok := solveAffineSpace(a, rhs)
	if !ok {
		return false // no conflict at all
	}
	// delta_lvl = I_E[lvl] - I_L[lvl] = x[kL+lvl] - x[lvl].
	signs := make([]signSet, common)
	for lvl := 0; lvl < common; lvl++ {
		free := false
		for _, kv := range sol.kernel {
			if kv[kL+lvl]-kv[lvl] != 0 {
				free = true
				break
			}
		}
		if free {
			signs[lvl] = signSet{neg: true, zero: true, pos: true}
			continue
		}
		c := sol.particular[kL+lvl].Sub(sol.particular[lvl])
		switch c.Sign() {
		case 1:
			signs[lvl] = signSet{pos: true}
		case -1:
			signs[lvl] = signSet{neg: true}
		default:
			signs[lvl] = signSet{zero: true}
		}
	}
	// Lexicographically positive achievable?
	canZeroSoFar := true
	for _, s := range signs {
		if canZeroSoFar && s.pos {
			return true
		}
		canZeroSoFar = canZeroSoFar && s.zero
		if !canZeroSoFar {
			return false
		}
	}
	return false
}

// affineSpace describes the solution set particular + span(kernel).
type affineSpace struct {
	particular []rational.Rat
	kernel     [][]int64
}

// solveAffineSpace solves a·x = rhs over the rationals, returning a
// particular solution and an integer kernel basis; ok is false when the
// system is inconsistent.
func solveAffineSpace(a *matrix.Int, rhs []int64) (affineSpace, bool) {
	rows, cols := a.Rows(), a.Cols()
	aug := matrix.NewRat(rows, cols+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			aug.Set(i, j, rational.FromInt(a.At(i, j)))
		}
		aug.Set(i, cols, rational.FromInt(rhs[i]))
	}
	pivotCols := make([]int, 0, rows)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p := -1
		for i := r; i < rows; i++ {
			if !aug.At(i, c).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		swapRatRows(aug, r, p)
		scaleRatRow(aug, r, aug.At(r, c).Inv())
		for i := 0; i < rows; i++ {
			if i == r || aug.At(i, c).IsZero() {
				continue
			}
			addRatRow(aug, i, r, aug.At(i, c).Neg())
		}
		pivotCols = append(pivotCols, c)
		r++
	}
	for i := r; i < rows; i++ {
		if !aug.At(i, cols).IsZero() {
			return affineSpace{}, false
		}
	}
	part := make([]rational.Rat, cols)
	for idx, c := range pivotCols {
		part[c] = aug.At(idx, cols)
	}
	return affineSpace{particular: part, kernel: matrix.KernelBasis(a)}, true
}
