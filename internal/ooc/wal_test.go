package ooc_test

// Behavioral tests for the write-ahead log: crash-replay recovery of
// exactly the acknowledged writes, a testing/quick property pinning
// WAL-recovered state to what a synchronous write-back plane keeps
// durable, group-commit fsync batching under -race, checkpoint
// truncation, and the oversized-record bypass path.

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

const (
	walTestEdge = 32
	walTestTile = 8
)

// walHarness is one WAL-backed plane over a fault injector, reopenable
// after a crash the way occd reopens after a power cut.
type walHarness struct {
	inj  *faultfs.Injector
	wrap func(string, ooc.Backend) ooc.Backend
	opts ooc.WALOptions
	disk *ooc.Disk
	arr  *ooc.Array
	eng  *ooc.Engine
}

func newWALHarness(t *testing.T, seed int64, opts ooc.WALOptions) *walHarness {
	t.Helper()
	h := &walHarness{inj: faultfs.New(seed, faultfs.Profile{}), opts: opts}
	h.wrap = h.inj.Wrap
	h.open(t)
	return h
}

// open builds (or rebuilds over the injector's surviving stores) disk,
// array and engine, replaying the WAL tail.
func (h *walHarness) open(t *testing.T) {
	t.Helper()
	h.disk = ooc.NewDisk(0).WrapBackend(h.wrap).EnableWAL(h.opts)
	arr, err := h.disk.CreateArray(ir.NewArray("A", walTestEdge, walTestEdge), layout.RowMajor(walTestEdge, walTestEdge))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	h.arr = arr
	h.eng = ooc.NewEngine(h.disk, ooc.EngineOptions{CacheTiles: 16})
	if _, err := h.disk.ReplayWAL(); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// crash power-cuts the plane and reopens it (with replay).
func (h *walHarness) crash(t *testing.T) {
	t.Helper()
	h.eng.Abandon()
	h.inj.Crash()
	h.open(t)
}

func walTile(tr, tc int64) layout.Box {
	return layout.NewBox(
		[]int64{tr * walTestTile, tc * walTestTile},
		[]int64{(tr + 1) * walTestTile, (tc + 1) * walTestTile},
	)
}

// writeTile writes v into every element of the tile through the engine
// and releases it dirty.
func writeTile(t *testing.T, eng ooc.TileEngine, ar *ooc.Array, box layout.Box, v float64) {
	t.Helper()
	hd, err := eng.Acquire(ar, box)
	if err != nil {
		t.Fatalf("acquire %v: %v", box, err)
	}
	data := hd.Tile().Data()
	for i := range data {
		data[i] = v
	}
	eng.Release(hd, true)
}

// readTile returns the tile's first element through the engine.
func readTile(t *testing.T, eng ooc.TileEngine, ar *ooc.Array, box layout.Box) float64 {
	t.Helper()
	hd, err := eng.Acquire(ar, box)
	if err != nil {
		t.Fatalf("acquire %v: %v", box, err)
	}
	v := hd.Tile().Data()[0]
	eng.Release(hd, false)
	return v
}

// TestWALReplayRecoversAckedWrites is the core durability contract: a
// power cut after an acknowledged flush loses nothing acknowledged and
// resurrects nothing that was not.
func TestWALReplayRecoversAckedWrites(t *testing.T) {
	h := newWALHarness(t, 1, ooc.WALOptions{Logs: 2, CapWords: 1 << 15})

	writeTile(t, h.eng, h.arr, walTile(0, 0), 1)
	writeTile(t, h.eng, h.arr, walTile(1, 1), 2)
	if err := h.eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	writeTile(t, h.eng, h.arr, walTile(2, 2), 3) // never flushed: not acked

	h.crash(t)

	st := h.disk.WALStats()
	if st.ReplayedRecords == 0 {
		t.Fatalf("replay applied no records: %+v", st)
	}
	if got := readTile(t, h.eng, h.arr, walTile(0, 0)); got != 1 {
		t.Fatalf("acked tile(0,0) = %v after replay, want 1", got)
	}
	if got := readTile(t, h.eng, h.arr, walTile(1, 1)); got != 2 {
		t.Fatalf("acked tile(1,1) = %v after replay, want 2", got)
	}
	if got := readTile(t, h.eng, h.arr, walTile(2, 2)); got != 0 {
		t.Fatalf("unacked tile(2,2) = %v after replay, want 0", got)
	}
}

// TestWALCrashReplayMatchesSynchronous is the quick property behind
// the WAL's claim of changing the cost of durability, not its meaning:
// for any seeded op stream, {log appends → power cut → replay over the
// stripes} recovers byte-identical state to a synchronous write-back
// plane that fsynced the same acknowledged flushes.
func TestWALCrashReplayMatchesSynchronous(t *testing.T) {
	prop := func(seed int64) bool {
		walH := newWALHarness(t, seed, ooc.WALOptions{Logs: 4, CapWords: 1 << 15})
		syncInj := faultfs.New(seed, faultfs.Profile{})
		syncDisk := ooc.NewDisk(0).WrapBackend(syncInj.Wrap)
		syncArr, err := syncDisk.CreateArray(ir.NewArray("A", walTestEdge, walTestEdge), layout.RowMajor(walTestEdge, walTestEdge))
		if err != nil {
			t.Fatalf("sync plane create: %v", err)
		}
		syncEng := ooc.NewEngine(syncDisk, ooc.EngineOptions{CacheTiles: 16})

		rng := rand.New(rand.NewSource(seed))
		tiles := int64(walTestEdge / walTestTile)
		val := float64(0)
		for op := 0; op < 60; op++ {
			switch u := rng.Float64(); {
			case u < 0.55:
				box := walTile(rng.Int63n(tiles), rng.Int63n(tiles))
				val++
				writeTile(t, walH.eng, walH.arr, box, val)
				writeTile(t, syncEng, syncArr, box, val)
			case u < 0.85:
				for _, e := range []ooc.TileEngine{walH.eng, syncEng} {
					if err := e.Flush(); err != nil {
						t.Fatalf("flush: %v", err)
					}
				}
			default:
				if walH.disk.Checkpoint() != nil {
					t.Fatalf("checkpoint failed")
				}
			}
		}

		// Power-cut both; the WAL plane reopens and replays, the
		// synchronous plane's durable truth is its stripes alone.
		walH.crash(t)
		syncEng.Abandon()
		syncInj.Crash()

		wantBuf := make([]float64, walTestEdge*walTestEdge)
		if err := syncInj.ReadDurable("A", wantBuf, 0); err != nil {
			t.Fatalf("sync ReadDurable: %v", err)
		}
		gotBuf := make([]float64, walTestEdge*walTestEdge)
		if err := walH.inj.ReadDurable("A", gotBuf, 0); err != nil {
			t.Fatalf("wal ReadDurable: %v", err)
		}
		for i := range wantBuf {
			if wantBuf[i] != gotBuf[i] {
				t.Logf("seed %d: recovered[%d]=%v, synchronous=%v", seed, i, gotBuf[i], wantBuf[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// countingBackend counts Sync calls on its inner backend.
type countingBackend struct {
	ooc.Backend
	n *atomic.Int64
}

func (c *countingBackend) Sync() error {
	c.n.Add(1)
	return c.Backend.Sync()
}

// TestWALGroupCommitBatching proves the group commit batches: N
// concurrent acked writers in one commit window share one (at the
// boundary, two) log fsync, and none of them is acknowledged before a
// covering fsync returned — their writes survive a power cut. CI runs
// the package under -race, which is the point: the leader/waiter
// protocol and the off-mutex fsync must be clean under contention.
func TestWALGroupCommitBatching(t *testing.T) {
	const writers = 16
	var fsyncs atomic.Int64
	h := &walHarness{
		inj: faultfs.New(42, faultfs.Profile{}),
		opts: ooc.WALOptions{
			Logs:         1, // one log: every commit round is one fsync
			CapWords:     1 << 15,
			CommitWindow: time.Millisecond,
		},
	}
	h.wrap = func(name string, b ooc.Backend) ooc.Backend {
		b = h.inj.Wrap(name, b)
		if strings.HasPrefix(name, "__wal") {
			b = &countingBackend{Backend: b, n: &fsyncs}
		}
		return b
	}
	h.open(t)

	// Phase 1: concurrent writers stage their tiles (write-back appends
	// to the log, no fsync yet — mirrors occd's PUT handler up to the
	// durability point).
	var stage sync.WaitGroup
	for i := 0; i < writers; i++ {
		stage.Add(1)
		go func(i int) {
			defer stage.Done()
			box := walTile(int64(i/4), int64(i%4))
			writeTile(t, h.eng, h.arr, box, float64(i+1))
			if err := h.eng.FlushOverlapping(h.arr, box); err != nil {
				t.Errorf("writer %d: flush overlapping: %v", i, err)
			}
		}(i)
	}
	stage.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n := fsyncs.Load(); n != 0 {
		t.Fatalf("staging alone fsynced the log %d times", n)
	}

	// Phase 2: every writer asks for durability at once. One leader's
	// snapshot covers all staged records, so the window collapses the
	// 16 acks into at most ceil(16/16)+1 = 2 log fsyncs.
	var ack sync.WaitGroup
	for i := 0; i < writers; i++ {
		ack.Add(1)
		go func(i int) {
			defer ack.Done()
			if err := h.arr.Sync(); err != nil {
				t.Errorf("writer %d: sync: %v", i, err)
			}
		}(i)
	}
	ack.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n := fsyncs.Load(); n < 1 || n > 2 {
		t.Fatalf("%d writers cost %d log fsyncs, want 1..2", writers, n)
	}

	// No early ack: all 16 must survive the power cut.
	h.crash(t)
	for i := 0; i < writers; i++ {
		box := walTile(int64(i/4), int64(i%4))
		if got := readTile(t, h.eng, h.arr, box); got != float64(i+1) {
			t.Fatalf("writer %d's acked tile = %v after crash+replay, want %d", i, got, i+1)
		}
	}
}

// TestWALCheckpointTruncates pins the compaction contract: a
// checkpoint makes applied records durable in the stripes and empties
// the logs, and a crash right after it replays nothing yet loses
// nothing.
func TestWALCheckpointTruncates(t *testing.T) {
	h := newWALHarness(t, 3, ooc.WALOptions{Logs: 2, CapWords: 1 << 15})
	writeTile(t, h.eng, h.arr, walTile(0, 1), 5)
	writeTile(t, h.eng, h.arr, walTile(3, 3), 6)
	if err := h.eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	st := h.disk.WALStats()
	if st.Appends == 0 || st.PendingWords == 0 || st.Commits == 0 || st.Fsyncs == 0 {
		t.Fatalf("pre-checkpoint scorecard empty: %+v", st)
	}
	if st.DurableSeq != st.LastSeq {
		t.Fatalf("flush left seq %d durable of %d", st.DurableSeq, st.LastSeq)
	}

	if err := h.disk.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st = h.disk.WALStats()
	if st.Checkpoints != 1 || st.PendingWords != 0 {
		t.Fatalf("post-checkpoint scorecard: %+v", st)
	}

	// The truncation (the bumped epoch header) becomes durable with the
	// next commit's fsync; this post-checkpoint write rides it. An 8x8
	// tile in a 32-wide row-major array writes back as 8 row runs, so
	// replay after the crash must see exactly those 8 records — the 16
	// pre-checkpoint records are gone.
	writeTile(t, h.eng, h.arr, walTile(2, 0), 7)
	if err := h.eng.Flush(); err != nil {
		t.Fatalf("post-checkpoint flush: %v", err)
	}

	h.crash(t)
	if st := h.disk.WALStats(); st.ReplayedRecords != 8 {
		t.Fatalf("replay applied %d records, want the 8 post-checkpoint runs", st.ReplayedRecords)
	}
	if got := readTile(t, h.eng, h.arr, walTile(0, 1)); got != 5 {
		t.Fatalf("checkpointed tile = %v, want 5", got)
	}
	if got := readTile(t, h.eng, h.arr, walTile(3, 3)); got != 6 {
		t.Fatalf("checkpointed tile = %v, want 6", got)
	}
	if got := readTile(t, h.eng, h.arr, walTile(2, 0)); got != 7 {
		t.Fatalf("post-checkpoint tile = %v, want 7", got)
	}
}

// TestWALReopenBeforeArraysKeepsEpochAndSeq pins the occd-without-
// kernel lifecycle: a reopened disk calls ReplayWAL before any client
// has recreated an array. The replay must still open the kept logs
// and report the surviving records as Skipped; and the life's own
// appends must adopt the on-disk epoch header and the skipped
// records' sequence numbers — an append stamped with a stale epoch,
// or re-using a surviving record's seq, is silently discarded by the
// NEXT replay's epoch/monotonicity cut (an acked write lost).
func TestWALReopenBeforeArraysKeepsEpochAndSeq(t *testing.T) {
	inj := faultfs.New(7, faultfs.Profile{})
	opts := ooc.WALOptions{Logs: 2, CapWords: 1 << 15}
	meta := ir.NewArray("A", walTestEdge, walTestEdge)
	lay := layout.RowMajor(walTestEdge, walTestEdge)

	// Life 1: write, ack, checkpoint (bumps the epoch headers), then one
	// more acked write so a log fsync makes the bumped headers durable.
	d1 := ooc.NewDisk(0).WrapBackend(inj.Wrap).EnableWAL(opts)
	ar, err := d1.CreateArray(meta, lay)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	eng := ooc.NewEngine(d1, ooc.EngineOptions{CacheTiles: 16})
	writeTile(t, eng, ar, walTile(0, 0), 1)
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := d1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	writeTile(t, eng, ar, walTile(1, 1), 2)
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	eng.Abandon()
	inj.Crash()

	// Life 2: replay BEFORE the array exists — the tile-2 records can
	// only be skipped — then recreate the array and ack a new write.
	d2 := ooc.NewDisk(0).WrapBackend(inj.Wrap).EnableWAL(opts)
	rep, err := d2.ReplayWAL()
	if err != nil {
		t.Fatalf("replay without arrays: %v", err)
	}
	if rep.Applied != 0 || rep.Skipped == 0 {
		t.Fatalf("replay without arrays: %+v, want only skipped records", rep)
	}
	if ar, err = d2.CreateArray(meta, lay); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	eng = ooc.NewEngine(d2, ooc.EngineOptions{CacheTiles: 16})
	writeTile(t, eng, ar, walTile(2, 2), 3)
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	eng.Abandon()
	inj.Crash()

	// Life 3: the normal order. Life 2's acked write must replay — it
	// dies here if life 2 stamped a reverted (stale) epoch or re-used
	// the skipped records' sequence numbers.
	d3 := ooc.NewDisk(0).WrapBackend(inj.Wrap).EnableWAL(opts)
	if ar, err = d3.CreateArray(meta, lay); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	eng = ooc.NewEngine(d3, ooc.EngineOptions{CacheTiles: 16})
	defer eng.Close()
	if _, err := d3.ReplayWAL(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := readTile(t, eng, ar, walTile(2, 2)); got != 3 {
		t.Fatalf("life-2 acked tile = %v after replay, want 3", got)
	}
	if got := readTile(t, eng, ar, walTile(0, 0)); got != 1 {
		t.Fatalf("checkpointed tile = %v, want 1", got)
	}
}

// TestWALFullLogCheckpointsInline pins the no-surprises behavior of a
// undersized log: appends that would overflow compact inline instead
// of failing, and every acknowledged write still survives the crash.
func TestWALFullLogCheckpointsInline(t *testing.T) {
	// Each whole-tile record is 5 + 1 + 64 = 70 words; a 256-word log
	// holds three before compacting.
	h := newWALHarness(t, 4, ooc.WALOptions{Logs: 1, CapWords: 256})
	tiles := int64(walTestEdge / walTestTile)
	val := float64(0)
	for tr := int64(0); tr < tiles; tr++ {
		for tc := int64(0); tc < tiles; tc++ {
			val++
			writeTile(t, h.eng, h.arr, walTile(tr, tc), val)
		}
	}
	if err := h.eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := h.disk.WALStats(); st.Checkpoints == 0 {
		t.Fatalf("16 tiles through a 3-tile log never checkpointed: %+v", st)
	}

	h.crash(t)
	val = 0
	for tr := int64(0); tr < tiles; tr++ {
		for tc := int64(0); tc < tiles; tc++ {
			val++
			if got := readTile(t, h.eng, h.arr, walTile(tr, tc)); got != val {
				t.Fatalf("tile(%d,%d) = %v after crash, want %v", tr, tc, got, val)
			}
		}
	}
}

// TestWALBypassEscalatesToCheckpoint pins the oversized-record path: a
// write too large for an empty log goes write-through unlogged, and
// the next durability request escalates to a checkpoint so the ack is
// still honest.
func TestWALBypassEscalatesToCheckpoint(t *testing.T) {
	// Minimum log capacity: a whole-array Fill (1024 words) can never
	// be framed.
	h := newWALHarness(t, 5, ooc.WALOptions{Logs: 1, CapWords: 16})
	h.arr.Fill(func(c []int64) float64 { return float64(c[0]*walTestEdge + c[1]) })

	st := h.disk.WALStats()
	if st.BypassWrites == 0 {
		t.Fatalf("whole-array fill was not bypassed: %+v", st)
	}
	if err := h.arr.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := h.disk.WALStats(); st.Checkpoints == 0 {
		t.Fatalf("sync over a bypassed write did not checkpoint: %+v", st)
	}

	h.eng.Abandon()
	h.inj.Crash()
	h.open(t)
	for _, c := range [][]int64{{0, 0}, {13, 21}, {walTestEdge - 1, walTestEdge - 1}} {
		if got, want := h.arr.At(c), float64(c[0]*walTestEdge+c[1]); got != want {
			t.Fatalf("At(%v) = %v after bypass+sync+crash, want %v", c, got, want)
		}
	}
}

// TestWALStatsMaintainer smoke-tests the background checkpointer: with
// a short interval, pending records are compacted without any explicit
// call.
func TestWALStatsMaintainer(t *testing.T) {
	h := newWALHarness(t, 6, ooc.WALOptions{Logs: 1, CapWords: 1 << 15, CheckpointEvery: 2 * time.Millisecond})
	writeTile(t, h.eng, h.arr, walTile(1, 2), 9)
	if err := h.eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := h.disk.WALStats(); st.Checkpoints > 0 && st.PendingWords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintainer never compacted: %+v", h.disk.WALStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.disk.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
