package ooc_test

// The differential conformance suite: seeded operation streams are
// replayed, in lockstep, against a single-engine plane and sharded
// planes (N = 2, 4, 8) over identical data, and every observable —
// tile bytes on reads, durable bytes after power cuts, final array
// contents, aggregate stats invariants — must agree byte for byte.
// This is the proof obligation behind ooc.ShardedEngine's claim of
// being observably identical to one ooc.Engine.
//
// The faultfs injector runs with a zero (fault-free) profile: no
// errors are injected, but its undo-log crash semantics still apply,
// so Crash() reverts exactly the writes not yet acknowledged by a
// backend Sync. Since syncs only happen at Flush (and Close), the
// durable state after every crash must equal the model's contents at
// the last acknowledged flush — for every plane identically.

import (
	"fmt"
	"math/rand"
	"testing"

	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

const (
	confEdge      = 64 // array is confEdge x confEdge
	confTile      = 8  // aligned tile edge
	confCache     = 8  // plane-wide cache budget (tiles)
	confOps       = 150
	confSeeds     = 20
	confElemCount = confEdge * confEdge
)

// confWALCapWords sizes WAL-plane logs so the whole op stream fits
// without an inline full-log checkpoint: an implicit mid-stream
// checkpoint would sync stripes carrying unacknowledged eviction
// write-throughs and break crash-equality with the non-WAL planes.
// Explicit checkpoints are instead injected right after acknowledged
// flushes, where stripe contents equal the acked model.
const confWALCapWords = int64(1) << 15

// confPlane is one plane under test plus its private injector/disk.
type confPlane struct {
	name   string
	shards int
	wal    bool
	comp   bool // WAL payload compression (disk compression would change the physical bytes readDurable checks)
	inj    *faultfs.Injector
	disk   *ooc.Disk
	arr    *ooc.Array
	eng    ooc.TileEngine

	acquires int64 // Acquire calls since the last (re)open
}

func newConfPlane(t *testing.T, seed int64, shards int, wal bool) *confPlane {
	return newConfPlaneComp(t, seed, shards, wal, false)
}

// newConfPlaneComp additionally turns on WAL payload compression: the
// plane's acked writes must survive power cuts through compressed log
// records, byte-for-byte equal to every uncompressed plane.
func newConfPlaneComp(t *testing.T, seed int64, shards int, wal, comp bool) *confPlane {
	t.Helper()
	name := fmt.Sprintf("shards=%d", shards)
	if wal {
		name += "+wal"
	}
	if comp {
		name += "+comp"
	}
	p := &confPlane{
		name:   name,
		shards: shards,
		wal:    wal,
		comp:   comp,
		inj:    faultfs.New(seed, faultfs.Profile{}),
	}
	p.open(t)
	return p
}

// open builds (or, after Crash, rebuilds over the surviving stores)
// the plane's disk, array and engine. A WAL plane replays its
// surviving log tail once the engine is up, so acknowledged writes
// reappear before the first post-reopen access.
func (p *confPlane) open(t *testing.T) {
	t.Helper()
	p.disk = ooc.NewDisk(0).WrapBackend(p.inj.Wrap)
	if p.wal {
		p.disk.EnableWAL(ooc.WALOptions{Logs: p.shards, CapWords: confWALCapWords, Compress: p.comp})
	}
	arr, err := p.disk.CreateArray(ir.NewArray("A", confEdge, confEdge), layout.RowMajor(confEdge, confEdge))
	if err != nil {
		t.Fatalf("%s: create: %v", p.name, err)
	}
	p.arr = arr
	eo := ooc.EngineOptions{Workers: 0, CacheTiles: confCache}
	if p.shards > 1 {
		p.eng = ooc.NewShardedEngine(p.disk, p.shards, eo)
	} else {
		p.eng = ooc.NewEngine(p.disk, eo)
	}
	if p.wal {
		if _, err := p.disk.ReplayWAL(); err != nil {
			t.Fatalf("%s: WAL replay: %v", p.name, err)
		}
	}
	p.acquires = 0
}

// confModel is the sequential reference: the array's expected current
// and last-acknowledged-flush contents.
type confModel struct {
	volatileA []float64
	acked     []float64
}

// want returns the model's contents of box in box-local row-major
// order.
func (m *confModel) want(box layout.Box) []float64 {
	out := make([]float64, 0, box.Size())
	for r := box.Lo[0]; r < box.Hi[0]; r++ {
		for c := box.Lo[1]; c < box.Hi[1]; c++ {
			out = append(out, m.volatileA[r*confEdge+c])
		}
	}
	return out
}

// fill records a whole-box write of v.
func (m *confModel) fill(box layout.Box, v float64) {
	for r := box.Lo[0]; r < box.Hi[0]; r++ {
		for c := box.Lo[1]; c < box.Hi[1]; c++ {
			m.volatileA[r*confEdge+c] = v
		}
	}
}

// alignedTile returns tile (tr, tc) of the aligned grid.
func alignedTile(tr, tc int64) layout.Box {
	return layout.NewBox(
		[]int64{tr * confTile, tc * confTile},
		[]int64{(tr + 1) * confTile, (tc + 1) * confTile},
	)
}

// readDurable reads the plane's full durable array image.
func (p *confPlane) readDurable(t *testing.T) []float64 {
	t.Helper()
	buf := make([]float64, confElemCount)
	if err := p.inj.ReadDurable("A", buf, 0); err != nil {
		t.Fatalf("%s: ReadDurable: %v", p.name, err)
	}
	return buf
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConformance replays identical seeded op streams against the
// single and sharded planes and asserts observable equivalence. CI
// runs it under -race.
func TestConformance(t *testing.T) {
	for seed := int64(1); seed <= confSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runConformanceSeed(t, seed, false)
		})
	}
}

// TestConformanceWAL replays the same streams with WAL-backed planes
// (every shard count) in lockstep with a plain single-engine
// reference: same byte-equal reads and final contents, and after
// every power cut the replayed WAL plane must recover exactly the
// acked model the synchronous reference kept durable.
func TestConformanceWAL(t *testing.T) {
	for seed := int64(1); seed <= confSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runConformanceSeed(t, seed, true)
		})
	}
}

func runConformanceSeed(t *testing.T, seed int64, wal bool) {
	var planes []*confPlane
	if wal {
		planes = []*confPlane{
			newConfPlane(t, seed, 1, false), // synchronous reference
			newConfPlane(t, seed, 1, true),
			newConfPlane(t, seed, 2, true),
			newConfPlane(t, seed, 4, true),
			newConfPlane(t, seed, 8, true),
			newConfPlaneComp(t, seed, 1, true, true),
			newConfPlaneComp(t, seed, 4, true, true),
		}
	} else {
		planes = []*confPlane{
			newConfPlane(t, seed, 1, false),
			newConfPlane(t, seed, 2, false),
			newConfPlane(t, seed, 4, false),
			newConfPlane(t, seed, 8, false),
		}
	}
	model := &confModel{
		volatileA: make([]float64, confElemCount),
		acked:     make([]float64, confElemCount),
	}
	rng := rand.New(rand.NewSource(seed))
	nextVal := float64(0)
	flushes := 0
	tilesPerEdge := int64(confEdge / confTile)

	get := func(box layout.Box) {
		want := model.want(box)
		for _, p := range planes {
			h, err := p.eng.Acquire(p.arr, box)
			if err != nil {
				t.Fatalf("%s: acquire %v: %v", p.name, box, err)
			}
			p.acquires++
			if got := h.Tile().Data(); !equalSlices(got, want) {
				t.Fatalf("%s: read %v diverged from the model", p.name, box)
			}
			p.eng.Release(h, false)
		}
	}

	for op := 0; op < confOps; op++ {
		switch u := rng.Float64(); {
		case u < 0.40: // aligned whole-tile write of a fresh value
			box := alignedTile(rng.Int63n(tilesPerEdge), rng.Int63n(tilesPerEdge))
			nextVal++
			for _, p := range planes {
				h, err := p.eng.Acquire(p.arr, box)
				if err != nil {
					t.Fatalf("%s: acquire %v: %v", p.name, box, err)
				}
				p.acquires++
				data := h.Tile().Data()
				for i := range data {
					data[i] = nextVal
				}
				p.eng.Release(h, true)
			}
			model.fill(box, nextVal)

		case u < 0.75: // aligned read
			get(alignedTile(rng.Int63n(tilesPerEdge), rng.Int63n(tilesPerEdge)))

		case u < 0.90: // unaligned read straddling tile (and shard) borders
			lo := []int64{rng.Int63n(confEdge), rng.Int63n(confEdge)}
			hi := []int64{lo[0] + 1 + rng.Int63n(12), lo[1] + 1 + rng.Int63n(12)}
			get(layout.NewBox(lo, hi).Clip([]int64{confEdge, confEdge}))

		case u < 0.97: // flush: fault-free, so it must acknowledge
			flushes++
			for _, p := range planes {
				if err := p.eng.Flush(); err != nil {
					t.Fatalf("%s: flush: %v", p.name, err)
				}
				// Compact the logs at a safe point: immediately after an
				// acknowledged flush the stripes hold exactly the acked
				// image, so syncing them for truncation keeps the durable
				// state equal to the synchronous planes'.
				if p.wal && flushes%3 == 0 {
					if err := p.disk.Checkpoint(); err != nil {
						t.Fatalf("%s: checkpoint: %v", p.name, err)
					}
				}
			}
			copy(model.acked, model.volatileA)

		default: // power cut: durable state must be the last acked flush
			var ref []float64
			for _, p := range planes {
				p.eng.Abandon()
				p.inj.Crash()
				if p.wal {
					// A WAL plane's stripes may lag behind the ack; its
					// durable contract is stripes + replayed log tail, so
					// reopen (which replays) before checking.
					p.open(t)
				}
				got := p.readDurable(t)
				if !equalSlices(got, model.acked) {
					t.Fatalf("%s: post-crash durable state diverged from the acked model", p.name)
				}
				if ref == nil {
					ref = got
				} else if !equalSlices(got, ref) {
					t.Fatalf("%s: post-crash durable state diverged across planes", p.name)
				}
				if !p.wal {
					p.open(t)
				}
			}
			copy(model.volatileA, model.acked)
		}
	}

	// Epilogue: flush everything, close cleanly, and require
	// byte-identical final array contents across all planes.
	for _, p := range planes {
		if err := p.eng.Flush(); err != nil {
			t.Fatalf("%s: epilogue flush: %v", p.name, err)
		}
	}
	copy(model.acked, model.volatileA)

	// Stats invariants before Close: every plane saw the same acquire
	// stream since its last reopen, hits+misses accounts for all of it,
	// evictions never exceed misses, and a sharded plane's aggregate is
	// exactly the sum of its per-shard scorecard.
	for _, p := range planes {
		st := p.eng.Stats()
		if st.Acquires() != p.acquires {
			t.Errorf("%s: stats acquires = %d, issued %d", p.name, st.Acquires(), p.acquires)
		}
		if st.Evictions > st.Misses {
			t.Errorf("%s: evictions %d > misses %d", p.name, st.Evictions, st.Misses)
		}
		if se, ok := p.eng.(*ooc.ShardedEngine); ok {
			var sum ooc.EngineStats
			for _, ss := range se.ShardStats() {
				sum.Hits += ss.Hits
				sum.Misses += ss.Misses
				sum.Evictions += ss.Evictions
				sum.Invalidations += ss.Invalidations
				sum.Writebacks += ss.Writebacks
				sum.WritebackErrors += ss.WritebackErrors
			}
			if sum != st {
				t.Errorf("%s: ShardStats sum %+v != Stats %+v", p.name, sum, st)
			}
		}
	}

	var ref []float64
	for _, p := range planes {
		if err := p.eng.Close(); err != nil {
			t.Fatalf("%s: close: %v", p.name, err)
		}
		got := p.readDurable(t)
		if !equalSlices(got, model.volatileA) {
			t.Fatalf("%s: final array contents diverged from the model", p.name)
		}
		if ref == nil {
			ref = got
		} else if !equalSlices(got, ref) {
			t.Fatalf("%s: final array contents diverged across planes", p.name)
		}
	}
}
