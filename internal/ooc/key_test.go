package ooc

import (
	"testing"

	"outcore/internal/layout"
)

func TestTileKeyDistinguishesHostileNames(t *testing.T) {
	// Without the length prefix these pairs would encode identically.
	b := layout.NewBox([]int64{0}, []int64{4})
	pairs := [][2]string{
		{"A[0;4)", "A"},
		{"A1", "A"},
		{"a,b", "a"},
		{"x:", "x"},
	}
	for _, p := range pairs {
		if tileKey(p[0], b) == tileKey(p[1], b) {
			t.Errorf("names %q and %q collide: %s", p[0], p[1], tileKey(p[0], b))
		}
	}
}

// FuzzTileKey checks key injectivity: two (name, box) pairs share a key
// iff name and box are equal — the property the whole cache hangs off.
func FuzzTileKey(f *testing.F) {
	f.Add("A", "A", int64(0), int64(0), int64(4), int64(4), int64(0), int64(0), int64(4), int64(4), uint8(2), uint8(2))
	f.Add("A", "A[0,0;4,4)", int64(0), int64(0), int64(4), int64(4), int64(0), int64(0), int64(4), int64(4), uint8(2), uint8(0))
	f.Add("A1", "A", int64(1), int64(0), int64(4), int64(4), int64(11), int64(0), int64(4), int64(4), uint8(1), uint8(1))
	f.Add("", "x", int64(-3), int64(7), int64(0), int64(0), int64(-3), int64(7), int64(0), int64(0), uint8(2), uint8(2))

	f.Fuzz(func(t *testing.T, n1, n2 string, a0, a1, a2, a3, b0, b1, b2, b3 int64, r1, r2 uint8) {
		mkBox := func(r uint8, v [4]int64) layout.Box {
			switch r % 3 {
			case 0:
				return layout.Box{}
			case 1:
				return layout.Box{Lo: []int64{v[0]}, Hi: []int64{v[2]}}
			default:
				return layout.Box{Lo: []int64{v[0], v[1]}, Hi: []int64{v[2], v[3]}}
			}
		}
		boxA := mkBox(r1, [4]int64{a0, a1, a2, a3})
		boxB := mkBox(r2, [4]int64{b0, b1, b2, b3})

		same := n1 == n2 && boxA.Rank() == boxB.Rank()
		if same {
			for d := range boxA.Lo {
				if boxA.Lo[d] != boxB.Lo[d] || boxA.Hi[d] != boxB.Hi[d] {
					same = false
					break
				}
			}
		}
		k1, k2 := tileKey(n1, boxA), tileKey(n2, boxB)
		if same && k1 != k2 {
			t.Errorf("equal inputs, different keys: %q vs %q", k1, k2)
		}
		if !same && k1 == k2 {
			t.Errorf("distinct inputs collide on key %q: name %q box %v vs name %q box %v",
				k1, n1, boxA, n2, boxB)
		}
	})
}
