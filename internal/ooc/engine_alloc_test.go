package ooc

import (
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

// TestAcquireHitAllocs pins the zero-allocation contract of the
// cached-GET path: once a tile is resident, Acquire+Release must not
// allocate — no key string, no handle, no box copy. The serving layer's
// allocs_per_get bench gate holds only if this does.
func TestAcquireHitAllocs(t *testing.T) {
	d := NewDisk(0)
	arr, err := d.CreateArray(ir.NewArray("a", 64, 64), layout.RowMajor(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d, EngineOptions{CacheTiles: 4})
	defer e.Close()
	box := layout.NewBox([]int64{0, 0}, []int64{8, 8})
	h, err := e.Acquire(arr, box) // warm the cache
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h, false)

	allocs := testing.AllocsPerRun(200, func() {
		h, err := e.Acquire(arr, box)
		if err != nil {
			t.Fatal(err)
		}
		e.Release(h, false)
	})
	if allocs != 0 {
		t.Fatalf("cached Acquire+Release allocates %.1f objects per op, want 0", allocs)
	}
}

// TestShardOfAllocs pins the same contract for shard routing: the
// sharded plane computes ShardOf before every request, so its key
// encoding must stay on the stack.
func TestShardOfAllocs(t *testing.T) {
	box := layout.NewBox([]int64{128, 256}, []int64{192, 320})
	allocs := testing.AllocsPerRun(200, func() {
		_ = ShardOf("somearray", box, 8)
	})
	if allocs != 0 {
		t.Fatalf("ShardOf allocates %.1f objects per op, want 0", allocs)
	}
}
