package ooc

import (
	"outcore/internal/keyhash"
	"outcore/internal/layout"
)

// TileKey canonically identifies a cached tile: the array name plus the
// clipped tile rectangle. Two (name, box) pairs map to the same key iff
// the name and every box bound are equal; the encoding (shared with the
// shard and cluster routers via internal/keyhash) length-prefixes the
// name so that names containing digits, commas or brackets cannot
// collide with the coordinate section.
type TileKey string

// tileKeyStackBytes sizes the stack buffers hot paths build key bytes
// in. See keyhash.StackBytes.
const tileKeyStackBytes = keyhash.StackBytes

// appendTileKey appends the canonical key bytes for (name, box) to
// dst. The encoding is shared by the cache map, ShardOf, walRoute and
// the cluster router's rendezvous placement — all via
// internal/keyhash, so router and engine provably agree; tileKey wraps
// it when a materialized TileKey is needed, while the hot paths
// (cache-hit Acquire, shard routing) build the bytes in a stack buffer
// and never allocate.
func appendTileKey(dst []byte, name string, box layout.Box) []byte {
	return keyhash.AppendKey(dst, name, box)
}

// tileKey encodes (name, box) into its canonical key.
func tileKey(name string, box layout.Box) TileKey {
	return TileKey(keyhash.AppendKey(make([]byte, 0, len(name)+16+8*len(box.Lo)), name, box))
}
