package ooc

import (
	"strconv"

	"outcore/internal/layout"
)

// TileKey canonically identifies a cached tile: the array name plus the
// clipped tile rectangle. Two (name, box) pairs map to the same key iff
// the name and every box bound are equal; the encoding length-prefixes
// the name so that names containing digits, commas or brackets cannot
// collide with the coordinate section.
type TileKey string

// tileKey encodes (name, box) into its canonical key.
func tileKey(name string, box layout.Box) TileKey {
	b := make([]byte, 0, len(name)+16+8*len(box.Lo))
	b = strconv.AppendInt(b, int64(len(name)), 10)
	b = append(b, ':')
	b = append(b, name...)
	b = append(b, '[')
	for d, lo := range box.Lo {
		if d > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, lo, 10)
	}
	b = append(b, ';')
	for d, hi := range box.Hi {
		if d > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, hi, 10)
	}
	b = append(b, ')')
	return TileKey(b)
}
