package ooc

import (
	"strconv"

	"outcore/internal/layout"
)

// TileKey canonically identifies a cached tile: the array name plus the
// clipped tile rectangle. Two (name, box) pairs map to the same key iff
// the name and every box bound are equal; the encoding length-prefixes
// the name so that names containing digits, commas or brackets cannot
// collide with the coordinate section.
type TileKey string

// tileKeyStackBytes sizes the stack buffers hot paths build key bytes
// in: enough for the longest realistic name plus a rank-3 box of full
// int64 coordinates. Longer keys still work — append spills to the
// heap — they just cost the allocation the fast path avoids.
const tileKeyStackBytes = 128

// appendTileKey appends the canonical key bytes for (name, box) to
// dst. The encoding is shared by the cache map, ShardOf and walRoute;
// tileKey wraps it when a materialized TileKey is needed, while the
// hot paths (cache-hit Acquire, shard routing) build the bytes in a
// stack buffer and never allocate.
func appendTileKey(dst []byte, name string, box layout.Box) []byte {
	dst = strconv.AppendInt(dst, int64(len(name)), 10)
	dst = append(dst, ':')
	dst = append(dst, name...)
	dst = append(dst, '[')
	for d, lo := range box.Lo {
		if d > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, lo, 10)
	}
	dst = append(dst, ';')
	for d, hi := range box.Hi {
		if d > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, hi, 10)
	}
	return append(dst, ')')
}

// tileKey encodes (name, box) into its canonical key.
func tileKey(name string, box layout.Box) TileKey {
	return TileKey(appendTileKey(make([]byte, 0, len(name)+16+8*len(box.Lo)), name, box))
}
