package ooc

import (
	"math"
	"math/rand"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

// TestCodecBackendRoundTrip drives the compressed backend through the
// access patterns tile traffic produces — full-chunk writes, partial
// RMW writes, straddling reads — and checks it is indistinguishable
// from an uncompressed backend while moving fewer bytes.
func TestCodecBackendRoundTrip(t *testing.T) {
	const logical = 3000 // 3 chunks: two full, one short tail
	st := &compState{}
	c := newCodecBackend(newMemBackend(codecPhysWords(logical)), logical, st)
	shadow := make([]float64, logical)

	check := func(what string) {
		t.Helper()
		got := make([]float64, logical)
		if err := c.ReadAt(got, 0); err != nil {
			t.Fatalf("%s: read all: %v", what, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(shadow[i]) {
				t.Fatalf("%s: drift at %d: %v != %v", what, i, got[i], shadow[i])
			}
		}
	}

	// Never-written chunks read as zeros.
	check("fresh")

	write := func(off int64, data []float64) {
		t.Helper()
		if err := c.WriteAt(data, off); err != nil {
			t.Fatalf("write [%d,%d): %v", off, off+int64(len(data)), err)
		}
		copy(shadow[off:], data)
	}

	smooth := make([]float64, codecChunkElems)
	for i := range smooth {
		smooth[i] = 20 + float64(i)*0.25
	}
	write(0, smooth)                      // full chunk
	write(100, []float64{math.NaN(), -0}) // partial RMW inside it
	write(1000, smooth[:100])             // straddles chunks 0 and 1
	write(2048, smooth[:952])             // the full short tail chunk
	write(2999, []float64{7})             // last element
	check("after writes")

	// Random single reads across chunk boundaries.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		off := rng.Int63n(logical - 10)
		got := make([]float64, 10)
		if err := c.ReadAt(got, off); err != nil {
			t.Fatalf("read [%d,%d): %v", off, off+10, err)
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(shadow[off+int64(j)]) {
				t.Fatalf("read drift at %d", off+int64(j))
			}
		}
	}

	// Bounds are enforced in logical space.
	if err := c.ReadAt(make([]float64, 2), logical-1); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := c.WriteAt(make([]float64, 2), logical-1); err == nil {
		t.Error("out-of-range write accepted")
	}

	// The smooth payload must have moved fewer encoded than raw bytes.
	if st.writeEnc.Load() >= st.writeRaw.Load() {
		t.Errorf("writes moved %d encoded bytes for %d raw — no win", st.writeEnc.Load(), st.writeRaw.Load())
	}
	if st.readEnc.Load() >= st.readRaw.Load() {
		t.Errorf("reads moved %d encoded bytes for %d raw — no win", st.readEnc.Load(), st.readRaw.Load())
	}
}

// TestCodecBackendIncompressible checks the raw fallback path end to
// end: random bit patterns round-trip and the overhead stays bounded
// by the frame header plus the pointer word per chunk.
func TestCodecBackendIncompressible(t *testing.T) {
	const logical = codecChunkElems
	st := &compState{}
	c := newCodecBackend(newMemBackend(codecPhysWords(logical)), logical, st)
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, logical)
	for i := range data {
		data[i] = math.Float64frombits(rng.Uint64())
	}
	if err := c.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, logical)
	if err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("drift at %d", i)
		}
	}
	raw := int64(logical * ElemSize)
	if enc := st.writeEnc.Load(); enc > raw+frameHeaderBytes+ElemSize {
		t.Errorf("incompressible write moved %d bytes for %d raw, over the header bound", enc, raw)
	}
}

// TestCodecDiskFileReopen proves the compressed physical layout is a
// real at-rest format: a file-backed compressed disk closes and
// reopens with its data intact, and the backing file on disk is
// smaller than the logical array.
func TestCodecDiskFileReopen(t *testing.T) {
	dir := t.TempDir()
	mk := func(keep bool) (*Disk, *Array) {
		d := NewDisk(0).Dir(dir).EnableCompression()
		if keep {
			d.KeepExisting()
		}
		arr, err := d.CreateArray(ir.NewArray("a", 64, 64), layout.RowMajor(64, 64))
		if err != nil {
			t.Fatal(err)
		}
		return d, arr
	}
	d, arr := mk(false)
	data := make([]float64, 64*64)
	for i := range data {
		data[i] = 100 + float64(i)*0.5
	}
	if err := arr.backend.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, arr2 := mk(true)
	got := make([]float64, len(data))
	if err := arr2.backend.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("reopen drift at %d: %v != %v", i, got[i], data[i])
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecDiskEngine runs tile traffic through an engine over a
// compressed disk — the full production read/write path — and checks
// the scorecard reports a disk-byte win for smooth data.
func TestCodecDiskEngine(t *testing.T) {
	d := NewDisk(0).EnableCompression()
	arr, err := d.CreateArray(ir.NewArray("a", 64, 64), layout.RowMajor(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d, EngineOptions{CacheTiles: 2})
	defer e.Close()

	box := layout.NewBox([]int64{0, 0}, []int64{32, 32})
	h, err := e.Acquire(arr, box)
	if err != nil {
		t.Fatal(err)
	}
	data := h.Tile().Data()
	for i := range data {
		data[i] = 20 + float64(i)*0.25
	}
	e.Release(h, true)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Evict by touring other tiles, then read the first back.
	for _, lo := range []int64{32, 0} {
		h, err := e.Acquire(arr, layout.NewBox([]int64{lo, 32}, []int64{lo + 32, 64}))
		if err != nil {
			t.Fatal(err)
		}
		e.Release(h, false)
	}
	h, err = e.Acquire(arr, box)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range h.Tile().Data() {
		if want := 20 + float64(i)*0.25; v != want {
			t.Fatalf("tile round trip drift at %d: %v != %v", i, v, want)
		}
	}
	e.Release(h, false)

	cs := d.CompressionStats()
	if cs == nil {
		t.Fatal("CompressionStats nil on a compressed disk")
	}
	if cs.DiskWriteBytes >= cs.DiskWriteRawBytes {
		t.Errorf("disk writes: %d encoded for %d raw — no win", cs.DiskWriteBytes, cs.DiskWriteRawBytes)
	}
}

// TestCompressionStatsNil pins the scorecard gate: a plain disk has no
// compression block.
func TestCompressionStatsNil(t *testing.T) {
	if cs := NewDisk(0).CompressionStats(); cs != nil {
		t.Fatalf("plain disk CompressionStats = %+v, want nil", cs)
	}
}
