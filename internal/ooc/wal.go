package ooc

// Per-disk write-ahead logging: the durability half of the paper's
// "restructure when bytes hit disk" argument, applied to acknowledged
// writes. Without a WAL, a durable PUT pays a synchronous write-back
// plus an fsync of the (striped) array file it happens to land in —
// a seek-heavy, per-writer cost. With the WAL enabled every array
// write is first appended as a checksummed redo record to one of N
// sequential logs and then written through to the array backend; an
// acknowledgement only needs the LOG to be durable, and concurrent
// writers landing within one commit window share a single log fsync
// (group commit).
//
// The array (stripe) backends are only forced durable by a
// checkpoint — the compaction step: it syncs every member backend
// (all applied records are write-through, so the stripes already
// hold their bytes — the OS page cache is the apply buffer, and the
// checkpoint loop is what forces it down and truncates), bumps each
// log's epoch and resets its head. A crash between checkpoints loses
// nothing acknowledged: ReplayWAL scans each log's surviving tail,
// discards torn or stale-epoch records (CRC + epoch + monotone
// sequence framing), merges the survivors across logs by global
// sequence number, and re-applies them over the stripe bytes —
// recovering exactly the state the write-through path had built.
//
// # Ordering
//
// One mutex (walSet.mu) makes {allocate seq, append record, write
// through} a single atomic step, so the global sequence order IS the
// order writes reached the array backends. Replay applies records in
// sequence order, which therefore reconstructs the same byte state
// regardless of how records were routed across the N logs.
//
// # Record framing
//
// Logs store 8-byte words carried as float64 bit patterns (the
// Backend element type); all packing goes through math.Float64bits /
// Float64frombits, so no floating-point operation ever touches a
// word and every bit pattern round-trips through memory and file
// backends exactly. Word 0 of a log is its header: the current
// epoch. Each record is:
//
//	w0  seq    — global sequence number, > 0 (a zeroed log scans empty)
//	w1  epoch  — must match the log header; stale epochs are pre-truncation garbage
//	w2  comp<<63 | nameLen<<48 | dataLen
//	w3  off    — element offset in the target array
//	w4  crc32c — over every other word's little-endian bytes
//	...        — ceil(nameLen/8) words of array name, then dataLen data words
//
// A record is accepted only when it fits the log, its CRC matches,
// its epoch is current, and its seq exceeds the previous record's —
// so any torn tail (faultfs writes strict element prefixes) decodes
// to a strict prefix of the appended records and the tear is
// discarded, never misread.
//
// With WALOptions.Compress the data words of a record may carry a
// codec frame (codec.go) instead of raw values, marked by the comp
// bit — the top bit of w2. The choice is per record: a frame is
// stored only when it is strictly smaller than the raw payload, so
// incompressible writes cost nothing. Decoding returns the LOGICAL
// payload either way; replay and the apply pipeline never see frames.
// A pre-compression decoder reading a compressed record sees a
// nameLen of 0x8000+ and rejects it — old code fails closed rather
// than misapplying frame bytes as array data.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"outcore/internal/obs"
)

const (
	// walHeaderWords is the per-log header (the epoch word).
	walHeaderWords = 1
	// walRecHeaderWords is the fixed per-record header size.
	walRecHeaderWords = 5
	// walMaxNameLen bounds array names in records (sanity check while
	// scanning arbitrary bytes).
	walMaxNameLen = 255
	// walLenMask extracts dataLen from the packed length word.
	walLenMask = (uint64(1) << 48) - 1
	// DefaultWALCapWords is the per-log capacity (1 Mi words = 8 MiB)
	// when WALOptions.CapWords is zero. Replay cost bounds the useful
	// size; an inline (stop-the-world) checkpoint when a log fills
	// bounds the ack-latency cost of setting it too small.
	DefaultWALCapWords = 1 << 20
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WALOptions configures Disk.EnableWAL.
type WALOptions struct {
	// Logs is the number of logs writes are routed across (the
	// per-shard flavor: one log per engine shard keeps appenders from
	// contending on a single tail). Clamped to [1, 64]; default 1.
	Logs int
	// CapWords is the per-log capacity in 8-byte words, header
	// included (default DefaultWALCapWords). An append that no longer
	// fits triggers an inline checkpoint; a record that could never
	// fit an empty log bypasses logging (write-through only) and
	// forces the next commit to checkpoint instead of fsyncing logs.
	CapWords int64
	// CommitWindow, when positive, makes the group-commit leader wait
	// this long before issuing the log fsync so more concurrent
	// writers share it. Zero still batches naturally: writers arriving
	// while a round's fsync is in flight are covered by the next
	// round. Keep zero for deterministic harness runs.
	CommitWindow time.Duration
	// CheckpointEvery, when positive, runs a background compaction
	// loop: every tick with appended-but-uncompacted records syncs the
	// member backends and truncates the logs, bounding replay time.
	// Keep zero for deterministic harness runs (the inline
	// full-log checkpoint still bounds the logs).
	CheckpointEvery time.Duration
	// Compress encodes record payloads as codec frames when that is
	// strictly smaller (see the record-framing package comment).
	// Smaller records mean fewer log bytes per acknowledged write and
	// a later inline-checkpoint point for the same CapWords.
	Compress bool
	// Obs registers the ooc_wal_* metric families.
	Obs *obs.Sink
}

func (o WALOptions) withDefaults() WALOptions {
	if o.Logs < 1 {
		o.Logs = 1
	}
	if o.Logs > 64 {
		o.Logs = 64
	}
	if o.CapWords <= 0 {
		o.CapWords = DefaultWALCapWords
	}
	if min := int64(walHeaderWords + walRecHeaderWords + 8); o.CapWords < min {
		o.CapWords = min
	}
	return o
}

// WALStats is the WAL scorecard (the /v1/stats "wal" block).
type WALStats struct {
	Logs             int     `json:"logs"`
	CapWords         int64   `json:"cap_words"`
	PendingWords     int64   `json:"pending_words"` // appended since the last checkpoint (replay depth)
	LastSeq          uint64  `json:"last_seq"`
	DurableSeq       uint64  `json:"durable_seq"`
	Appends          int64   `json:"appends"`
	AppendedWords    int64   `json:"appended_words"`
	Commits          int64   `json:"commits"`
	Fsyncs           int64   `json:"fsyncs"`
	FsyncBatch       float64 `json:"fsync_batch"` // commits amortized per log fsync
	Checkpoints      int64   `json:"checkpoints"`
	BypassWrites     int64   `json:"bypass_writes"`
	ReplayedRecords  int64   `json:"replayed_records"`
	DiscardedRecords int64   `json:"discarded_records"`
	SkippedRecords   int64   `json:"skipped_records"` // replayed records naming arrays not (re)created
}

// walMetrics are the registry series an observed WAL feeds.
type walMetrics struct {
	appends     *obs.Counter
	words       *obs.Counter
	commits     *obs.Counter
	fsyncs      *obs.Counter
	checkpoints *obs.Counter
	bypass      *obs.Counter
	replayed    *obs.Counter
	discarded   *obs.Counter
	pending     *obs.Gauge
	batch       *obs.Histogram

	// Registered only when WALOptions.Compress is set, so the metric
	// families of a compression-free configuration are unchanged.
	compRaw, compEnc *obs.Counter
}

// walLog is one sequential log.
type walLog struct {
	name     string
	back     Backend
	epoch    uint64
	head     int64 // next append offset, in words
	syncedTo int64 // head covered by the last successful log fsync
}

// walMember is one array backend under WAL protection: the backend
// walBackend writes through to and replay/checkpoint operate on.
type walMember struct {
	name  string
	inner Backend
}

// walSet is the per-disk WAL state: the logs, the protected members,
// the global sequence counter and the group-commit machinery.
type walSet struct {
	opts WALOptions

	mu       sync.Mutex // orders {seq alloc, append, write-through}; guards all fields below
	logs     []*walLog
	meta     Backend     // one-word checkpoint watermark (see checkpointLocked)
	members  []walMember // sorted by name (checkpoint sync order is deterministic)
	seq      uint64      // last allocated record sequence number
	bypassed bool        // an unlogged write-through happened; only a checkpoint can cover it
	c        walCounters

	durable atomic.Uint64 // highest seq known durable (log fsync or checkpoint)

	// Group commit: one leader runs a sync round at a time; waiters
	// re-check durability when the round ends.
	gcMu    sync.Mutex
	gcCond  *sync.Cond
	syncing bool

	met *walMetrics

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type walCounters struct {
	appends, appendedWords       int64
	commits, fsyncs, checkpoints int64
	bypass                       int64
	replayed, discarded, skipped int64
	compRawWords, compEncWords   int64 // logical vs stored payload words, Compress only
}

func newWALSet(o WALOptions) *walSet {
	ws := &walSet{opts: o.withDefaults()}
	ws.gcCond = sync.NewCond(&ws.gcMu)
	if o.Obs != nil {
		if reg := o.Obs.MetricsOf(); reg != nil {
			ws.met = &walMetrics{
				appends:     reg.Counter("ooc_wal_appends_total", "records appended to the write-ahead logs"),
				words:       reg.Counter("ooc_wal_appended_words_total", "8-byte words appended to the write-ahead logs"),
				commits:     reg.Counter("ooc_wal_commits_total", "group-commit rounds acknowledged"),
				fsyncs:      reg.Counter("ooc_wal_fsyncs_total", "log fsyncs issued by group commit"),
				checkpoints: reg.Counter("ooc_wal_checkpoints_total", "checkpoints: member backends synced and logs truncated"),
				bypass:      reg.Counter("ooc_wal_bypass_writes_total", "writes too large to log, applied write-through only"),
				replayed:    reg.Counter("ooc_wal_replayed_records_total", "records re-applied from surviving log tails"),
				discarded:   reg.Counter("ooc_wal_discarded_records_total", "torn or stale log tails discarded during replay"),
				pending:     reg.Gauge("ooc_wal_pending_words", "words appended since the last checkpoint (replay depth)"),
				batch: reg.Histogram("ooc_wal_commit_records",
					"records made durable per group-commit fsync round", obs.ExpBuckets(1, 2, 10)),
			}
			if ws.opts.Compress {
				ws.met.compRaw = reg.Counter("ooc_wal_comp_raw_bytes_total", "logical payload bytes offered to WAL record compression")
				ws.met.compEnc = reg.Counter("ooc_wal_comp_bytes_total", "payload bytes stored in WAL records after compression")
			}
		}
	}
	return ws
}

// ensureLogs opens the N log backends once, before the first array's
// backend, honoring the disk's dir/keep/wrap configuration. Logs are
// named "__wal<i>" (files "__wal<i>.log"): the leading underscores
// keep them out of any array namespace a client could create.
func (ws *walSet) ensureLogs(d *Disk) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if len(ws.logs) > 0 {
		return nil
	}
	for i := 0; i < ws.opts.Logs; i++ {
		name := fmt.Sprintf("__wal%d", i)
		var b Backend
		if d.dir != "" {
			fb, err := newFileBackend(filepath.Join(d.dir, name+".log"), ws.opts.CapWords, d.keepExisting)
			if err != nil {
				return fmt.Errorf("ooc: opening WAL log %s: %w", name, err)
			}
			b = fb
		} else {
			b = newMemBackend(ws.opts.CapWords)
		}
		if d.wrapBackend != nil {
			b = d.wrapBackend(name, b)
		}
		lg := &walLog{name: name, back: b, head: walHeaderWords, syncedTo: walHeaderWords}
		// A kept log carries an earlier life's epoch header and possibly
		// a surviving record tail. Adopt both NOW, not at replay: any
		// append stamped with a stale epoch would be discarded as
		// pre-truncation garbage by the next replay — an acked write
		// lost — and appends must land after the tail replay will apply,
		// not over it. A fresh log reads as zeros: epoch 0, empty tail.
		words := make([]float64, ws.opts.CapWords)
		if err := b.ReadAt(words, 0); err != nil {
			return fmt.Errorf("ooc: reading WAL log %s header: %w", name, err)
		}
		lg.epoch = math.Float64bits(words[0])
		_, end := walScan(words, lg.epoch)
		lg.head, lg.syncedTo = end, end
		ws.logs = append(ws.logs, lg)
	}
	// The checkpoint watermark: a single word (element-atomic under the
	// torn-write model), so a checkpoint can durably record how far the
	// stripes are authoritative before it truncates any log.
	var mb Backend
	if d.dir != "" {
		fb, err := newFileBackend(filepath.Join(d.dir, "__walmeta.log"), 1, d.keepExisting)
		if err != nil {
			return fmt.Errorf("ooc: opening WAL watermark: %w", err)
		}
		mb = fb
	} else {
		mb = newMemBackend(1)
	}
	if d.wrapBackend != nil {
		mb = d.wrapBackend("__walmeta", mb)
	}
	ws.meta = mb
	return nil
}

// attach puts an array backend under WAL protection and returns the
// logging wrapper the array should use.
func (ws *walSet) attach(name string, inner Backend) Backend {
	ws.mu.Lock()
	i := sort.Search(len(ws.members), func(i int) bool { return ws.members[i].name >= name })
	ws.members = append(ws.members, walMember{})
	copy(ws.members[i+1:], ws.members[i:])
	ws.members[i] = walMember{name: name, inner: inner}
	ws.mu.Unlock()
	return &walBackend{ws: ws, name: name, inner: inner}
}

// pendingWordsLocked is the replay depth: words appended and not yet
// compacted away.
func (ws *walSet) pendingWordsLocked() int64 {
	var n int64
	for _, lg := range ws.logs {
		n += lg.head - walHeaderWords
	}
	return n
}

// compBytes returns the logical vs stored payload bytes of logged
// writes (both zero unless Compress is on).
func (ws *walSet) compBytes() (raw, enc int64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.c.compRawWords * ElemSize, ws.c.compEncWords * ElemSize
}

// lastSeq returns the most recently allocated sequence number.
func (ws *walSet) lastSeq() uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.seq
}

// commit is the group-committed durability point: it returns once
// every record appended before the call is durable (log fsync or
// checkpoint). One leader runs a sync round at a time; every other
// caller waits for the round and re-checks — so N writers landing
// within one round (or one CommitWindow) share its fsyncs.
func (ws *walSet) commit() error {
	target := ws.lastSeq()
	// The durable sequence alone cannot satisfy a commit while an
	// unlogged (bypass) write-through is outstanding: its bytes are in
	// no log, so only a checkpoint's member syncs cover it. A bypass
	// write therefore disables the fast path until a round escalates.
	satisfied := func() bool {
		ws.mu.Lock()
		defer ws.mu.Unlock()
		return !ws.bypassed && ws.durable.Load() >= target
	}
	for {
		if satisfied() {
			return nil
		}
		ws.gcMu.Lock()
		if satisfied() {
			ws.gcMu.Unlock()
			return nil
		}
		if ws.syncing {
			ws.gcCond.Wait()
			ws.gcMu.Unlock()
			continue
		}
		ws.syncing = true
		ws.gcMu.Unlock()

		err := ws.leadRound()

		ws.gcMu.Lock()
		ws.syncing = false
		ws.gcCond.Broadcast()
		ws.gcMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// leadRound runs one group-commit round: optionally wait the commit
// window (letting more writers land), snapshot the frontier, fsync
// every log with uncovered words, and advance the durable sequence.
// A round that contains an unlogged (bypass) write-through cannot be
// covered by log fsyncs and escalates to a full checkpoint.
func (ws *walSet) leadRound() error {
	if w := ws.opts.CommitWindow; w > 0 {
		time.Sleep(w)
	}
	ws.mu.Lock()
	upTo := ws.seq
	before := ws.durable.Load()
	escalate := ws.bypassed
	type pend struct {
		lg    *walLog
		head  int64
		epoch uint64
	}
	var toSync []pend
	if !escalate {
		for _, lg := range ws.logs {
			if lg.head > lg.syncedTo {
				toSync = append(toSync, pend{lg, lg.head, lg.epoch})
			}
		}
	}
	ws.mu.Unlock()

	if escalate {
		return ws.checkpoint()
	}

	// The round's logs sync in a fixed order. Chunk routing keeps one
	// write burst on one log, so a round usually has exactly one log to
	// sync; the sequential order also keeps the backend-call schedule
	// deterministic for the fault-injection harness.
	var first error
	var fsyncs int64
	for _, p := range toSync {
		if err := p.lg.back.Sync(); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		fsyncs++
		ws.mu.Lock()
		// A checkpoint may have truncated this log while the fsync was
		// in flight; the snapshot head then describes the PREVIOUS
		// epoch's words and advancing syncedTo with it would let the
		// next commit skip the fsync the new epoch still needs.
		if p.lg.epoch == p.epoch && p.lg.syncedTo < p.head {
			p.lg.syncedTo = p.head
		}
		ws.mu.Unlock()
	}

	ws.mu.Lock()
	ws.c.fsyncs += fsyncs
	if first == nil {
		ws.c.commits++
		if upTo > ws.durable.Load() {
			ws.durable.Store(upTo)
		}
	}
	m := ws.met
	ws.mu.Unlock()
	if m != nil {
		m.fsyncs.Add(fsyncs)
		if first == nil {
			m.commits.Inc()
			if fsyncs > 0 && upTo > before {
				m.batch.Observe(float64(upTo - before))
			}
		}
	}
	return first
}

// checkpoint is the compaction step (see checkpointLocked).
func (ws *walSet) checkpoint() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.checkpointLocked()
}

// checkpointLocked makes every applied record durable in the member
// (stripe) backends, durably records the watermark, then truncates
// the logs by bumping each log's epoch header and resetting its head.
// Holding mu quiesces appenders, so the member syncs cover every
// appended record's write-through. A member sync or watermark error
// aborts before any truncation (the logs still cover everything).
//
// The watermark is the step that makes truncation crash-safe: the
// epoch-header writes below are NOT fsynced here (the next group
// commit covers them), so a power cut can revert them and leave the
// old records durable in the logs — records now OLDER than the
// stripe bytes the member syncs just persisted. Replaying those over
// the stripes would roll acknowledged writes back. The durable
// watermark (one element-atomic word) tells replay how far the
// stripes are authoritative, so it discards every surviving record at
// or below it.
func (ws *walSet) checkpointLocked() error {
	// Member syncs run sequentially in registration order: the fixed
	// backend-call schedule is what keeps fault-injection runs
	// replayable, and checkpoints are rare enough (cap-words pressure
	// or explicit compaction) that the summed fsyncs don't sit on the
	// ack path.
	for _, m := range ws.members {
		if err := m.inner.Sync(); err != nil {
			return fmt.Errorf("ooc: WAL checkpoint syncing %s: %w", m.name, err)
		}
	}
	upTo := ws.seq
	if ws.meta != nil {
		wm := [1]float64{math.Float64frombits(upTo)}
		if err := ws.meta.WriteAt(wm[:], 0); err != nil {
			return fmt.Errorf("ooc: WAL checkpoint watermark: %w", err)
		}
		if err := ws.meta.Sync(); err != nil {
			return fmt.Errorf("ooc: WAL checkpoint watermark sync: %w", err)
		}
	}
	var first error
	for _, lg := range ws.logs {
		next := lg.epoch + 1
		hdr := [walHeaderWords]float64{math.Float64frombits(next)}
		if err := lg.back.WriteAt(hdr[:], 0); err != nil {
			if first == nil {
				first = fmt.Errorf("ooc: WAL truncating %s: %w", lg.name, err)
			}
			continue
		}
		lg.epoch = next
		lg.head = walHeaderWords
		// Force the next commit round to fsync this log even without
		// new records, so the new epoch header becomes durable promptly.
		lg.syncedTo = 0
	}
	ws.bypassed = false
	if upTo > ws.durable.Load() {
		ws.durable.Store(upTo)
	}
	ws.c.checkpoints++
	if m := ws.met; m != nil {
		m.checkpoints.Inc()
		m.pending.Set(float64(ws.pendingWordsLocked()))
	}
	return first
}

// replay scans each log's surviving tail, merges the valid records
// across logs by sequence number, and re-applies them to the member
// backends — reconstructing exactly the write-through order.
func (ws *walSet) replay() (WALReplay, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var rep WALReplay
	var watermark uint64
	if ws.meta != nil {
		var wm [1]float64
		if err := ws.meta.ReadAt(wm[:], 0); err != nil {
			return rep, fmt.Errorf("ooc: WAL replay reading watermark: %w", err)
		}
		watermark = math.Float64bits(wm[0])
	}
	var all []walRecord
	for _, lg := range ws.logs {
		words := make([]float64, ws.opts.CapWords)
		if err := lg.back.ReadAt(words, 0); err != nil {
			return rep, fmt.Errorf("ooc: WAL replay reading %s: %w", lg.name, err)
		}
		lg.epoch = math.Float64bits(words[0])
		recs, end := walScan(words, lg.epoch)
		lg.head = end
		lg.syncedTo = end // the scanned bytes are, by definition, durable
		if end < int64(len(words)) && math.Float64bits(words[end]) != 0 {
			rep.Discarded++
		}
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	byName := map[string]Backend{}
	for _, m := range ws.members {
		byName[m.name] = m.inner
	}
	for _, r := range all {
		if r.seq <= watermark {
			// At or below the checkpoint watermark: the stripes already
			// hold this record durably (and possibly newer bytes at the
			// same offsets) — a stale tail from a truncation that never
			// reached the media. Applying it would roll the stripes back.
			rep.Discarded++
			continue
		}
		// Every surviving record retires its sequence number, applied or
		// not: a skipped record (array not recreated) stays in the log,
		// and a new append re-using its seq would trip the scan's
		// monotonicity cut and lose the newer record.
		if r.seq > ws.seq {
			ws.seq = r.seq
		}
		inner, ok := byName[r.name]
		if !ok {
			rep.Skipped++
			continue
		}
		if err := inner.WriteAt(r.data, r.off); err != nil {
			return rep, fmt.Errorf("ooc: WAL replay applying seq %d to %s [%d,%d): %w",
				r.seq, r.name, r.off, r.off+int64(len(r.data)), err)
		}
		rep.Applied++
	}
	// Never re-allocate a sequence number the watermark covers: replay
	// after a later crash would discard such a record as stale.
	if watermark > ws.seq {
		ws.seq = watermark
	}
	if ws.seq > ws.durable.Load() {
		ws.durable.Store(ws.seq)
	}
	ws.c.replayed += rep.Applied
	ws.c.discarded += rep.Discarded
	ws.c.skipped += rep.Skipped
	if m := ws.met; m != nil {
		m.replayed.Add(rep.Applied)
		m.discarded.Add(rep.Discarded)
		m.pending.Set(float64(ws.pendingWordsLocked()))
	}
	return rep, nil
}

// stats snapshots the scorecard.
func (ws *walSet) stats() *WALStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	s := &WALStats{
		Logs:             len(ws.logs),
		CapWords:         ws.opts.CapWords,
		PendingWords:     ws.pendingWordsLocked(),
		LastSeq:          ws.seq,
		DurableSeq:       ws.durable.Load(),
		Appends:          ws.c.appends,
		AppendedWords:    ws.c.appendedWords,
		Commits:          ws.c.commits,
		Fsyncs:           ws.c.fsyncs,
		Checkpoints:      ws.c.checkpoints,
		BypassWrites:     ws.c.bypass,
		ReplayedRecords:  ws.c.replayed,
		DiscardedRecords: ws.c.discarded,
		SkippedRecords:   ws.c.skipped,
	}
	if s.Fsyncs > 0 {
		s.FsyncBatch = float64(s.Commits) / float64(s.Fsyncs)
	}
	return s
}

func (ws *walSet) startMaintainer() {
	if ws.opts.CheckpointEvery <= 0 {
		return
	}
	ws.stopCh = make(chan struct{})
	ws.wg.Add(1)
	go func() {
		defer ws.wg.Done()
		t := time.NewTicker(ws.opts.CheckpointEvery)
		defer t.Stop()
		for {
			select {
			case <-ws.stopCh:
				return
			case <-t.C:
				ws.mu.Lock()
				pending := ws.pendingWordsLocked() > 0 || ws.bypassed
				ws.mu.Unlock()
				if pending {
					_ = ws.checkpoint() // best effort; the inline full-log path retries
				}
			}
		}
	}()
}

func (ws *walSet) stopMaintainer() {
	if ws.stopCh == nil {
		return
	}
	ws.stopOnce.Do(func() { close(ws.stopCh) })
	ws.wg.Wait()
}

func (ws *walSet) closeLogs() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var first error
	for _, lg := range ws.logs {
		if err := lg.back.Close(); err != nil && first == nil {
			first = err
		}
	}
	if ws.meta != nil {
		if err := ws.meta.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// walBackend is the write-through logging wrapper an attached array's
// backend becomes: reads pass straight down (the inner backend always
// holds the current bytes), writes append a record first, and Sync is
// the group-committed log fsync.
type walBackend struct {
	ws    *walSet
	name  string
	inner Backend
}

var _ Backend = (*walBackend)(nil)

func (wb *walBackend) ReadAt(buf []float64, off int64) error { return wb.inner.ReadAt(buf, off) }
func (wb *walBackend) Size() int64                           { return wb.inner.Size() }
func (wb *walBackend) Close() error                          { return wb.inner.Close() }

// WriteAt appends the redo record, then writes through, as one step
// under the set's mutex — so the global sequence order is the order
// bytes reach the inner backends. An append failure surfaces before
// the write-through (WAL-first): the head does not advance, and the
// retry overwrites whatever prefix the failed append tore.
func (wb *walBackend) WriteAt(buf []float64, off int64) error {
	ws := wb.ws
	// With compression, encode the payload to a codec frame off the
	// lock and log whichever form is smaller. The inner write-through
	// always applies the logical buf.
	data, compressed := buf, false
	var encWords []float64
	if ws.opts.Compress && len(buf) > frameHeaderBytes/ElemSize {
		fr := GetBuf(frameSizeBytes(len(buf) * ElemSize))[:0]
		fr = AppendFrame(fr, buf)
		if len(fr)/ElemSize < len(buf) {
			encWords = frameToWords(GetF64(len(fr) / ElemSize)[:0], fr)
			data, compressed = encWords, true
		}
		PutBuf(fr)
		defer func() {
			if encWords != nil {
				PutF64(encWords)
			}
		}()
	}
	need := walRecordWords(wb.name, int64(len(data)))
	ws.mu.Lock()
	if need > ws.opts.CapWords-walHeaderWords {
		// Could never fit even an empty log (whole-array setup fills):
		// apply write-through only. The record is unlogged, so the next
		// commit must escalate to a checkpoint before acknowledging.
		ws.bypassed = true
		ws.c.bypass++
		m := ws.met
		err := wb.inner.WriteAt(buf, off)
		ws.mu.Unlock()
		if m != nil {
			m.bypass.Inc()
		}
		return err
	}
	lg := ws.logs[walRoute(wb.name, off, len(ws.logs))]
	if lg.head+need > ws.opts.CapWords {
		// Log full: compact inline (deterministic), then append fresh.
		if err := ws.checkpointLocked(); err != nil {
			ws.mu.Unlock()
			return err
		}
	}
	rec := walEncodeRecordComp(ws.seq+1, lg.epoch, wb.name, off, data, compressed)
	if err := lg.back.WriteAt(rec, lg.head); err != nil {
		ws.mu.Unlock()
		return fmt.Errorf("ooc: WAL append for %s [%d,%d): %w", wb.name, off, off+int64(len(buf)), err)
	}
	lg.head += int64(len(rec))
	ws.seq++
	ws.c.appends++
	ws.c.appendedWords += int64(len(rec))
	if ws.opts.Compress {
		ws.c.compRawWords += int64(len(buf))
		ws.c.compEncWords += int64(len(data))
	}
	m := ws.met
	var pending float64
	if m != nil {
		pending = float64(ws.pendingWordsLocked())
	}
	err := wb.inner.WriteAt(buf, off)
	ws.mu.Unlock()
	if m != nil {
		m.appends.Inc()
		m.words.Add(int64(len(rec)))
		m.pending.Set(pending)
		if m.compRaw != nil {
			m.compRaw.Add(int64(len(buf)) * ElemSize)
			m.compEnc.Add(int64(len(data)) * ElemSize)
		}
	}
	return err
}

// Sync acknowledges: it returns once every record appended before the
// call is durable, sharing fsyncs with every concurrent caller.
func (wb *walBackend) Sync() error { return wb.ws.commit() }

// walRouteChunkWords is the routing granularity: offsets within the
// same chunk share a log. One logical write (a tile flush) lands as a
// burst of row-run records a few hundred words apart; routing them by
// raw offset would scatter the burst over every log and force its
// group commit to fsync all of them. Chunked routing keeps one
// writer's burst on one log (one fsync covers it) while different
// tiles and arrays still spread across logs.
const walRouteChunkWords = 1 << 12

// walRoute deterministically picks the log for (name, off): FNV-1a
// over the name and the offset's chunk with a 64-bit avalanche
// finalizer (the same construction as ShardOf, for the same
// structured-key reason). A pure function, so a write's log never
// depends on history.
func walRoute(name string, off int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	chunk := off / walRouteChunkWords
	for s := uint(0); s < 64; s += 8 {
		h ^= (uint64(chunk) >> s) & 0xff
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(n))
}

// walRecord is one decoded redo record.
type walRecord struct {
	seq   uint64
	epoch uint64
	name  string
	off   int64
	data  []float64
}

// walRecordWords is the encoded size of a record.
func walRecordWords(name string, dataLen int64) int64 {
	return walRecHeaderWords + int64((len(name)+7)/8) + dataLen
}

// walEncodeRecord frames one raw-payload record (see the package
// comment).
func walEncodeRecord(seq, epoch uint64, name string, off int64, data []float64) []float64 {
	return walEncodeRecordComp(seq, epoch, name, off, data, false)
}

// walEncodeRecordComp frames one record whose data words carry either
// raw values or a codec frame, per the compressed flag.
func walEncodeRecordComp(seq, epoch uint64, name string, off int64, data []float64, compressed bool) []float64 {
	nameWords := (len(name) + 7) / 8
	rec := make([]float64, walRecHeaderWords+nameWords+len(data))
	rec[0] = math.Float64frombits(seq)
	rec[1] = math.Float64frombits(epoch)
	meta := uint64(len(name))<<48 | uint64(len(data))&walLenMask
	if compressed {
		meta |= 1 << 63
	}
	rec[2] = math.Float64frombits(meta)
	rec[3] = math.Float64frombits(uint64(off))
	for w := 0; w < nameWords; w++ {
		var u uint64
		for k := 0; k < 8 && w*8+k < len(name); k++ {
			u |= uint64(name[w*8+k]) << (8 * uint(k))
		}
		rec[walRecHeaderWords+w] = math.Float64frombits(u)
	}
	copy(rec[walRecHeaderWords+nameWords:], data)
	rec[4] = math.Float64frombits(uint64(walRecordCRC(rec)))
	return rec
}

// walRecordCRC covers every word of the framed record except the CRC
// word itself, as little-endian bytes.
func walRecordCRC(rec []float64) uint32 {
	h := crc32.New(walCRCTable)
	var b [8]byte
	for i, w := range rec {
		if i == 4 {
			continue
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		h.Write(b[:])
	}
	return h.Sum32()
}

// walDecodeRecord tries to decode one record at words[pos:]. It never
// panics on arbitrary bytes: every length is bounds-checked before
// the CRC seals the verdict. Returns the record, its size in words,
// and whether it decoded.
func walDecodeRecord(words []float64, pos int64) (walRecord, int64, bool) {
	n := int64(len(words))
	if pos < walHeaderWords || pos+walRecHeaderWords > n {
		return walRecord{}, 0, false
	}
	seq := math.Float64bits(words[pos])
	if seq == 0 {
		return walRecord{}, 0, false
	}
	meta := math.Float64bits(words[pos+2])
	compressed := meta>>63 == 1
	nameLen := int64((meta >> 48) & 0x7FFF)
	dataLen := int64(meta & walLenMask)
	if nameLen == 0 || nameLen > walMaxNameLen {
		// The 15-bit field spans the spare meta bits too, so any garbage
		// there lands above walMaxNameLen and is rejected here.
		return walRecord{}, 0, false
	}
	offU := math.Float64bits(words[pos+3])
	if offU > uint64(1)<<62 {
		return walRecord{}, 0, false
	}
	crcU := math.Float64bits(words[pos+4])
	if crcU>>32 != 0 {
		return walRecord{}, 0, false
	}
	nameWords := (nameLen + 7) / 8
	total := walRecHeaderWords + nameWords + dataLen
	if total > n-pos {
		return walRecord{}, 0, false
	}
	if walRecordCRC(words[pos:pos+total]) != uint32(crcU) {
		return walRecord{}, 0, false
	}
	nameB := make([]byte, nameLen)
	for i := int64(0); i < nameLen; i++ {
		w := math.Float64bits(words[pos+walRecHeaderWords+i/8])
		nameB[i] = byte(w >> (8 * uint(i%8)))
	}
	stored := words[pos+walRecHeaderWords+nameWords : pos+total]
	var data []float64
	if compressed {
		// The data words carry a codec frame; unpack it so callers only
		// ever see the logical payload. A frame that fails to parse or
		// verify marks the whole record invalid — same torn-tail
		// semantics as a CRC mismatch.
		frame := wordsToFrame(make([]byte, 0, len(stored)*ElemSize), stored)
		elems, size, err := FrameElems(frame)
		if err != nil || size != len(frame) {
			return walRecord{}, 0, false
		}
		data = make([]float64, elems)
		if _, err := DecodeFrame(frame, data); err != nil {
			return walRecord{}, 0, false
		}
	} else {
		data = make([]float64, dataLen)
		copy(data, stored)
	}
	return walRecord{
		seq:   seq,
		epoch: math.Float64bits(words[pos+1]),
		name:  string(nameB),
		off:   int64(offU),
		data:  data,
	}, total, true
}

// walScan decodes the valid record run of a log image: records are
// accepted while they decode, carry the current epoch, and strictly
// increase in sequence; the scan stops at the first failure, so any
// torn tail yields a strict prefix of the appended records.
func walScan(words []float64, epoch uint64) ([]walRecord, int64) {
	var recs []walRecord
	pos := int64(walHeaderWords)
	last := uint64(0)
	for {
		r, sz, ok := walDecodeRecord(words, pos)
		if !ok || r.epoch != epoch || r.seq <= last {
			return recs, pos
		}
		recs = append(recs, r)
		last = r.seq
		pos += sz
	}
}

// WALReplay summarizes one ReplayWAL pass.
type WALReplay struct {
	Applied   int64 // records re-applied over the member backends
	Discarded int64 // logs whose tail held a torn or stale record
	Skipped   int64 // valid records naming arrays not (re)created
}

// EnableWAL turns on write-ahead logging for every subsequently
// created array: writes append checksummed redo records to the logs
// before reaching the array backends, a backend Sync becomes a
// group-committed log fsync, and Checkpoint/ReplayWAL provide the
// compaction and recovery halves. Like the other configuration
// chainers it must be called before arrays are created; it is ignored
// on measurement-only (NoBacking) disks.
func (d *Disk) EnableWAL(o WALOptions) *Disk {
	if d.noBacking {
		return d
	}
	d.wal = newWALSet(o)
	d.wal.startMaintainer()
	return d
}

// WALEnabled reports whether the disk logs writes.
func (d *Disk) WALEnabled() bool { return d.wal != nil }

// ReplayWAL recovers acknowledged writes after a reopen: it scans the
// surviving log tails and re-applies the valid records, in global
// sequence order, over the array backends. Call it after recreating
// the disk's arrays (records naming arrays that were not recreated
// are counted in Skipped and left for the next checkpoint to drop)
// and before tile I/O starts. On a freshly created disk the logs are
// empty and replay is a no-op.
func (d *Disk) ReplayWAL() (WALReplay, error) {
	if d.wal == nil {
		return WALReplay{}, nil
	}
	// Open the logs if no array creation has yet: a reopened disk with
	// no arrays recreated still reports its surviving records (as
	// Skipped) instead of silently scanning zero logs.
	if err := d.wal.ensureLogs(d); err != nil {
		return WALReplay{}, err
	}
	return d.wal.replay()
}

// Checkpoint runs the WAL compaction step now: member backends are
// synced (making every applied record durable in the stripes) and the
// logs are truncated. A no-op without a WAL.
func (d *Disk) Checkpoint() error {
	if d.wal == nil {
		return nil
	}
	return d.wal.checkpoint()
}

// WALStats snapshots the WAL scorecard, or nil when disabled.
func (d *Disk) WALStats() *WALStats {
	if d.wal == nil {
		return nil
	}
	return d.wal.stats()
}
