package ooc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

func box2(lo0, lo1, hi0, hi1 int64) layout.Box {
	return layout.NewBox([]int64{lo0, lo1}, []int64{hi0, hi1})
}

// engineArray builds a data-backed 2-D array filled with f(i,j) = 1000i+j.
func engineArray(t *testing.T, name string, n, m int64) (*Disk, *Array) {
	t.Helper()
	d := NewDisk(0)
	_, arr := mk2D(t, d, name, n, m, layout.RowMajor(n, m))
	arr.Fill(func(c []int64) float64 { return float64(1000*c[0] + c[1]) })
	d.ResetStats()
	return d, arr
}

func TestEngineHitMissCounters(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 4})
	defer e.Close()

	b := box2(0, 0, 4, 4)
	h1, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := h1.Tile().Get([]int64{2, 3}); got != 2003 {
		t.Errorf("tile content = %v, want 2003", got)
	}
	e.Release(h1, false)
	h2, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h2, false)

	s := e.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", s.HitRate())
	}
	if e.Resident() != 1 {
		t.Errorf("resident = %d, want 1", e.Resident())
	}
}

func TestEngineLRUEvictionOrder(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 2})
	defer e.Close()

	acq := func(b layout.Box) {
		t.Helper()
		h, err := e.Acquire(arr, b)
		if err != nil {
			t.Fatal(err)
		}
		e.Release(h, false)
	}
	bA, bB, bC := box2(0, 0, 2, 8), box2(2, 0, 4, 8), box2(4, 0, 6, 8)
	acq(bA)
	acq(bB)
	acq(bA) // A is now more recent than B
	acq(bC) // capacity 2: evicts B, keeps A+C

	acq(bA) // must still be cached
	s := e.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (B)", s.Evictions)
	}
	if s.Hits != 2 || s.Misses != 3 {
		t.Errorf("stats = %+v, want 2 hits (A,A) + 3 misses (A,B,C)", s)
	}
	acq(bB) // and B must be gone
	if s := e.Stats(); s.Misses != 4 {
		t.Errorf("re-acquiring evicted B: misses = %d, want 4", s.Misses)
	}
}

func TestEngineWritebackPersists(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 4})

	b := box2(0, 0, 2, 2)
	h, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{1, 1}, -7)
	e.Release(h, true)

	// Not flushed yet: the backend still holds the old value, the cache
	// the new one.
	if raw, _ := arr.ReadTile(b); raw.Get([]int64{1, 1}) != 1001 {
		t.Errorf("backend updated before flush: %v", raw.Get([]int64{1, 1}))
	}
	h2, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Tile().Get([]int64{1, 1}); got != -7 {
		t.Errorf("cached dirty tile reads %v, want -7", got)
	}
	e.Release(h2, false)

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if raw, _ := arr.ReadTile(b); raw.Get([]int64{1, 1}) != -7 {
		t.Errorf("backend after flush reads %v, want -7", raw.Get([]int64{1, 1}))
	}
	if s := e.Stats(); s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	// Flush leaves the tile resident and clean: a second flush is a no-op.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Writebacks != 1 {
		t.Errorf("clean flush wrote back again: %d", s.Writebacks)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEvictionWritesBack(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 1})
	defer e.Close()

	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{0, 0}, 42)
	e.Release(h, true)

	// Capacity 1: acquiring a different tile evicts the dirty one, which
	// must reach the backend on the way out.
	h2, err := e.Acquire(arr, box2(4, 4, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h2, false)
	if raw, _ := arr.ReadTile(box2(0, 0, 1, 1)); raw.Get([]int64{0, 0}) != 42 {
		t.Errorf("evicted dirty tile not written back: %v", raw.Get([]int64{0, 0}))
	}
	if s := e.Stats(); s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 writeback + 1 eviction", s)
	}
}

func TestEngineDirtyInvalidatesOverlap(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 8})
	defer e.Close()

	small := box2(1, 1, 3, 3)
	big := box2(0, 0, 4, 4)
	hs, err := e.Acquire(arr, small)
	if err != nil {
		t.Fatal(err)
	}
	e.Release(hs, false) // clean copy of the small box stays cached

	hb, err := e.Acquire(arr, big)
	if err != nil {
		t.Fatal(err)
	}
	hb.Tile().Set([]int64{2, 2}, 99)
	e.Release(hb, true) // dirtying big must invalidate the stale small copy

	if s := e.Stats(); s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Invalidations)
	}
	hs2, err := e.Acquire(arr, small)
	if err != nil {
		t.Fatal(err)
	}
	if got := hs2.Tile().Get([]int64{2, 2}); got != 99 {
		t.Errorf("overlapping acquire after dirty release reads %v, want 99", got)
	}
	e.Release(hs2, false)
}

func TestEngineMissFlushesOverlapDirty(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 8})
	defer e.Close()

	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{1, 1}, 5)
	e.Release(h, true)

	// A miss on a box overlapping the dirty tile must observe the write:
	// the engine flushes before reading the backend.
	h2, err := e.Acquire(arr, box2(1, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Tile().Get([]int64{1, 1}); got != 5 {
		t.Errorf("miss over dirty tile reads %v, want 5", got)
	}
	e.Release(h2, false)
}

func TestEnginePrefetch(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 8, Workers: 2})
	defer e.Close()

	b := box2(0, 0, 4, 4)
	e.Prefetch(arr, b)
	h, err := e.Acquire(arr, b) // waits for the in-flight read, counts as hit
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Tile().Get([]int64{3, 2}); got != 3002 {
		t.Errorf("prefetched tile reads %v, want 3002", got)
	}
	e.Release(h, false)
	s := e.Stats()
	if s.PrefetchIssued != 1 || s.PrefetchUseful != 1 {
		t.Errorf("prefetch stats = %+v, want 1 issued + 1 useful", s)
	}
	if s.Misses != 0 || s.Hits != 1 {
		t.Errorf("stats = %+v, want the prefetched acquire to be a hit", s)
	}

	// Prefetch overlapping a dirty tile is declined: the later acquire
	// must take the flush-then-read path instead.
	hd, err := e.Acquire(arr, box2(4, 4, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	hd.Tile().Set([]int64{4, 4}, 1)
	e.Release(hd, true)
	e.Prefetch(arr, box2(5, 5, 8, 8))
	if s := e.Stats(); s.PrefetchIssued != 1 {
		t.Errorf("prefetch over dirty tile was issued: %+v", s)
	}
	// Without workers Prefetch is a no-op by contract.
	e0 := NewEngine(d, EngineOptions{CacheTiles: 2})
	defer e0.Close()
	e0.Prefetch(arr, b)
	if s := e0.Stats(); s.PrefetchIssued != 0 || e0.Resident() != 0 {
		t.Errorf("workerless prefetch did something: %+v, resident %d", s, e0.Resident())
	}
}

func TestEngineSingleFlight(t *testing.T) {
	d, arr := engineArray(t, "A", 32, 32)
	e := NewEngine(d, EngineOptions{CacheTiles: 8, Workers: 4})
	defer e.Close()

	// Many goroutines race to acquire the same tile: exactly one backend
	// read may happen, everyone shares the entry.
	const G = 16
	b := box2(0, 0, 16, 16)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := e.Acquire(arr, b)
			if err != nil {
				t.Error(err)
				return
			}
			if got := h.Tile().Get([]int64{7, 7}); got != 7007 {
				t.Errorf("shared tile reads %v", got)
			}
			e.Release(h, false)
		}()
	}
	wg.Wait()
	s := e.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", s.Misses)
	}
	if s.Hits != G-1 {
		t.Errorf("hits = %d, want %d", s.Hits, G-1)
	}
}

func TestEngineCloseSemantics(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 2, Workers: 2})
	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{0, 1}, 3)
	e.Release(h, true)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if raw, _ := arr.ReadTile(box2(0, 0, 2, 2)); raw.Get([]int64{0, 1}) != 3 {
		t.Error("Close did not flush the dirty tile")
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := e.Acquire(arr, box2(0, 0, 2, 2)); err != ErrEngineClosed {
		t.Errorf("Acquire after Close: %v, want ErrEngineClosed", err)
	}
}

func TestEngineDoubleReleasePanics(t *testing.T) {
	d, arr := engineArray(t, "A", 8, 8)
	e := NewEngine(d, EngineOptions{CacheTiles: 2})
	defer e.Close()
	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h, false)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	e.Release(h, false)
}

func TestEngineTouchAccounting(t *testing.T) {
	d := NewDisk(0).NoBacking()
	_, arr := mk2D(t, d, "A", 8, 8, layout.RowMajor(8, 8))
	e := NewEngine(d, EngineOptions{CacheTiles: 4})

	b := box2(0, 0, 4, 8)
	e.Touch(arr, b, false) // miss: charges the read
	e.Touch(arr, b, false) // hit: free
	e.Touch(arr, b, true)  // hit, now dirty
	if s := e.Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Errorf("touch stats = %+v, want 1 miss + 2 hits", s)
	}
	if d.Stats.ReadCalls != 1 || d.Stats.WriteCalls != 0 {
		t.Errorf("disk charged %d reads / %d writes before flush, want 1 / 0",
			d.Stats.ReadCalls, d.Stats.WriteCalls)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.WriteCalls != 1 {
		t.Errorf("dirty touch entry flushed %d write calls, want 1", d.Stats.WriteCalls)
	}
}

// TestEngineConcurrentStress is the deterministic-seed stress test the
// race detector runs against: goroutines with disjoint write bands of W
// plus a shared read-only array R, through one engine small enough to
// keep evicting under load.
func TestEngineConcurrentStress(t *testing.T) {
	const (
		G     = 8  // goroutines
		steps = 60 // acquire/modify/release cycles each
		rows  = 4  // W rows per goroutine
		cols  = 16
	)
	d := NewDisk(0)
	_, w := mk2D(t, d, "W", G*rows, cols, layout.RowMajor(G*rows, cols))
	_, r := mk2D(t, d, "R", 64, 64, layout.RowMajor(64, 64))
	r.Fill(func(c []int64) float64 { return float64(1000*c[0] + c[1]) })
	e := NewEngine(d, EngineOptions{CacheTiles: 6, Workers: 4})

	expected := make([][]int64, G) // per-goroutine per-column increment counts
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		expected[g] = make([]int64, cols)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			lo := int64(g * rows)
			for k := 0; k < steps; k++ {
				// Shared read-only tile of R: contents must always match the
				// fill, however often it is evicted, re-read or prefetched.
				ri, rj := int64(rng.Intn(48)), int64(rng.Intn(48))
				rb := box2(ri, rj, ri+16, rj+16)
				if rng.Intn(3) == 0 {
					e.Prefetch(r, rb)
				}
				hr, err := e.Acquire(r, rb)
				if err != nil {
					t.Error(err)
					return
				}
				if got := hr.Tile().Get([]int64{ri, rj}); got != float64(1000*ri+rj) {
					t.Errorf("goroutine %d step %d: R(%d,%d) = %v", g, k, ri, rj, got)
				}

				// Disjoint write band of W: random column sub-range, +1 each.
				c0 := int64(rng.Intn(cols - 1))
				c1 := c0 + 1 + int64(rng.Intn(int(cols-c0-1))+1)
				wb := box2(lo, c0, lo+rows, c1)
				hw, err := e.Acquire(w, wb)
				if err != nil {
					t.Error(err)
					e.Release(hr, false)
					return
				}
				for i := lo; i < lo+rows; i++ {
					for j := c0; j < c1; j++ {
						hw.Tile().Set([]int64{i, j}, hw.Tile().Get([]int64{i, j})+1)
					}
				}
				e.Release(hw, true)
				e.Release(hr, false)
				for j := c0; j < c1; j++ {
					expected[g][j]++
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := w.ReadTile(box2(0, 0, G*rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < G; g++ {
		for i := int64(g * rows); i < int64((g+1)*rows); i++ {
			for j := int64(0); j < cols; j++ {
				if got, want := full.Get([]int64{i, j}), float64(expected[g][j]); got != want {
					t.Fatalf("W(%d,%d) = %v, want %v", i, j, got, want)
				}
			}
		}
	}
	s := e.Stats()
	if s.Evictions == 0 {
		t.Error("stress never evicted; cache too large to stress anything")
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("degenerate stress stats: %+v", s)
	}
}

// TestPropertyEngineMatchesSequential drives a random tile schedule
// through the sequential ReadTile/WriteTile runtime and through the
// cached engine, and requires bitwise-identical array contents with
// equal-or-fewer backend I/O calls.
func TestPropertyEngineMatchesSequential(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(8 + rng.Intn(17)) // 8..24
		m := int64(8 + rng.Intn(17))

		mkDisk := func() (*Disk, *Array) {
			d := NewDisk(0)
			meta := ir.NewArray("A", n, m)
			arr, err := d.CreateArray(meta, layout.RowMajor(n, m))
			if err != nil {
				t.Fatal(err)
			}
			arr.Fill(func(c []int64) float64 { return float64(c[0]*31 + c[1]) })
			d.ResetStats()
			return d, arr
		}
		dSeq, aSeq := mkDisk()
		dEng, aEng := mkDisk()
		e := NewEngine(dEng, EngineOptions{
			CacheTiles: 1 + rng.Intn(6),
			Workers:    rng.Intn(3), // 0 = synchronous, the rest pooled
		})

		type op struct {
			box   layout.Box
			delta float64
			write bool
		}
		ops := make([]op, 12+rng.Intn(30))
		for i := range ops {
			lo0, lo1 := int64(rng.Intn(int(n))), int64(rng.Intn(int(m)))
			h0 := lo0 + 1 + int64(rng.Intn(int(n-lo0)))
			h1 := lo1 + 1 + int64(rng.Intn(int(m-lo1)))
			ops[i] = op{box2(lo0, lo1, h0, h1), float64(1 + rng.Intn(9)), rng.Intn(2) == 0}
		}

		for _, o := range ops {
			// Sequential runtime: read, modify, write the whole tile.
			ts, err := aSeq.ReadTile(o.box)
			if err != nil {
				t.Fatal(err)
			}
			if o.write {
				for i := o.box.Lo[0]; i < o.box.Hi[0]; i++ {
					for j := o.box.Lo[1]; j < o.box.Hi[1]; j++ {
						ts.Set([]int64{i, j}, ts.Get([]int64{i, j})+o.delta)
					}
				}
				if err := ts.WriteTile(); err != nil {
					t.Fatal(err)
				}
			}
			// Engine: acquire, modify in place, release dirty.
			h, err := e.Acquire(aEng, o.box)
			if err != nil {
				t.Fatal(err)
			}
			if o.write {
				for i := o.box.Lo[0]; i < o.box.Hi[0]; i++ {
					for j := o.box.Lo[1]; j < o.box.Hi[1]; j++ {
						h.Tile().Set([]int64{i, j}, h.Tile().Get([]int64{i, j})+o.delta)
					}
				}
			}
			e.Release(h, o.write)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		seqStats, engStats := dSeq.Stats.Snapshot(), dEng.Stats.Snapshot()

		full := box2(0, 0, n, m)
		tSeq, err := aSeq.ReadTile(full)
		if err != nil {
			t.Fatal(err)
		}
		tEng, err := aEng.ReadTile(full)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < m; j++ {
				if tSeq.Get([]int64{i, j}) != tEng.Get([]int64{i, j}) {
					t.Logf("seed %d: (%d,%d) seq %v vs eng %v", seed, i, j,
						tSeq.Get([]int64{i, j}), tEng.Get([]int64{i, j}))
					return false
				}
			}
		}
		if engStats.Calls() > seqStats.Calls() {
			t.Logf("seed %d: engine made %d calls, sequential %d", seed,
				engStats.Calls(), seqStats.Calls())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
