package ooc

import "testing"

func TestPoolClass(t *testing.T) {
	for _, tc := range []struct {
		n, want int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 24, poolClasses - 1}, {1<<24 + 1, -1},
	} {
		if got := poolClass(tc.n); got != tc.want {
			t.Errorf("poolClass(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestPoolRecycles pins the arena contract: a returned buffer of an
// exact class size comes back on the next Get of that class, lengths
// are exactly as requested, and grown or oversize buffers are dropped
// rather than poisoning a class.
func TestPoolRecycles(t *testing.T) {
	b := GetBuf(100) // class 1: cap 128
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("GetBuf(100): len %d cap %d, want 100/128", len(b), cap(b))
	}
	PutBuf(b)
	b2 := GetBuf(120)
	if cap(b2) != 128 {
		t.Fatalf("recycled buffer has cap %d, want 128", cap(b2))
	}

	f := GetF64(100)
	if len(f) != 100 || cap(f) != 128 {
		t.Fatalf("GetF64(100): len %d cap %d, want 100/128", len(f), cap(f))
	}
	PutF64(f)

	// A non-class capacity (grown by append, sub-sliced, oversize) is
	// silently dropped — PutBuf must not panic or pool it.
	PutBuf(make([]byte, 100))
	PutF64(make([]float64, 0, 100))

	// Oversize requests allocate plainly and count as oversize.
	before := ReadPoolStats().Oversize
	huge := GetBuf(1<<24 + 1)
	if len(huge) != 1<<24+1 {
		t.Fatal("oversize GetBuf returned wrong length")
	}
	PutBuf(huge)
	if got := ReadPoolStats().Oversize; got != before+1 {
		t.Fatalf("oversize counter %d, want %d", got, before+1)
	}
}

func TestPoolStatsMove(t *testing.T) {
	before := ReadPoolStats()
	b := GetBuf(70) // class 1
	PutBuf(b)
	_ = GetBuf(70)
	after := ReadPoolStats()
	if after.Hits+after.Misses <= before.Hits+before.Misses {
		t.Fatalf("pool counters did not move: %+v -> %+v", before, after)
	}
}
