package ooc

import (
	"sync/atomic"
	"testing"
	"time"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

// blockingSyncBackend lets a test hold one Sync call open.
type blockingSyncBackend struct {
	Backend
	gate      chan struct{} // closed to release the blocked Sync
	inFlight  chan struct{} // signaled when Sync enters
	block     atomic.Bool
	syncCount atomic.Int64
}

func (b *blockingSyncBackend) Sync() error {
	b.syncCount.Add(1)
	if b.block.CompareAndSwap(true, false) {
		b.inFlight <- struct{}{}
		<-b.gate
	}
	return b.Backend.Sync()
}

func TestWALStaleSyncedToRepro(t *testing.T) {
	var logBack *blockingSyncBackend
	d := NewDisk(0).WrapBackend(func(name string, inner Backend) Backend {
		if name == "__wal0" {
			logBack = &blockingSyncBackend{
				Backend:  inner,
				gate:     make(chan struct{}),
				inFlight: make(chan struct{}, 1),
			}
			return logBack
		}
		return inner
	})
	d.EnableWAL(WALOptions{Logs: 1})
	arr, err := d.CreateArray(ir.NewArray("a", 64), layout.RowMajor(64))
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{1, 2, 3, 4}
	if err := arr.backend.WriteAt(buf, 0); err != nil { // append W1
		t.Fatal(err)
	}

	logBack.block.Store(true)
	done := make(chan error, 1)
	go func() { done <- arr.Sync() }() // leader: fsync blocks in flight
	<-logBack.inFlight

	if err := d.Checkpoint(); err != nil { // truncates log, syncedTo=0
		t.Fatal(err)
	}
	if err := arr.backend.WriteAt(buf, 8); err != nil { // append W2, new epoch
		t.Fatal(err)
	}
	seqW2 := d.wal.lastSeq()

	close(logBack.gate) // release leader fsync; stale syncedTo update lands
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	before := logBack.syncCount.Load()
	if err := arr.Sync(); err != nil { // commit for W2
		t.Fatal(err)
	}
	after := logBack.syncCount.Load()
	durable := d.wal.durable.Load()
	t.Logf("W2 seq=%d durable=%d log fsyncs during W2 commit=%d", seqW2, durable, after-before)
	if durable >= seqW2 && after == before {
		t.Fatalf("W2 (seq %d) reported durable with NO log fsync after checkpoint truncation: "+
			"stale syncedTo=%d head=%d", seqW2, d.wal.logs[0].syncedTo, d.wal.logs[0].head)
	}
	_ = time.Second
}
