package ooc

// Record-framing tests for the write-ahead log: encode/decode
// round-trips (including data words whose bit patterns are NaNs and
// infinities — the framing must be bit-exact, never value-based), the
// torn-tail contract (any prefix of a valid log decodes to a strict
// prefix of its records), and the scan's rejection rules (CRC, epoch,
// sequence monotonicity).

import (
	"math"
	"testing"
)

// walTestLog frames records into a log image: header word carrying
// epoch, then the records back to back.
func walTestLog(epoch uint64, recs ...[]float64) []float64 {
	words := []float64{math.Float64frombits(epoch)}
	for _, r := range recs {
		words = append(words, r...)
	}
	return words
}

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		off  int64
		data []float64
	}{
		{"A", 0, []float64{1, 2, 3}},
		{"some-longer-array-name", 12345, []float64{0}},
		{"x", 1 << 40, make([]float64, 100)},
		{"nan", 7, []float64{
			math.NaN(),
			math.Float64frombits(0x7ff8000000000001), // payload NaN
			math.Inf(1), math.Inf(-1),
			math.Copysign(0, -1),
		}},
		{"eight8ch", 9, []float64{4.25}}, // name exactly one word
	}
	for i, tc := range cases {
		seq, epoch := uint64(i+1), uint64(i*3+1)
		rec := walEncodeRecord(seq, epoch, tc.name, tc.off, tc.data)
		if got, want := int64(len(rec)), walRecordWords(tc.name, int64(len(tc.data))); got != want {
			t.Fatalf("%s: encoded %d words, walRecordWords says %d", tc.name, got, want)
		}
		words := walTestLog(epoch, rec)
		dec, sz, ok := walDecodeRecord(words, walHeaderWords)
		if !ok {
			t.Fatalf("%s: decode failed", tc.name)
		}
		if sz != int64(len(rec)) {
			t.Fatalf("%s: decode consumed %d words, encoded %d", tc.name, sz, len(rec))
		}
		if dec.seq != seq || dec.epoch != epoch || dec.name != tc.name || dec.off != tc.off {
			t.Fatalf("%s: decoded header %+v", tc.name, dec)
		}
		if len(dec.data) != len(tc.data) {
			t.Fatalf("%s: decoded %d data words, wrote %d", tc.name, len(dec.data), len(tc.data))
		}
		for j := range tc.data {
			// Bit-exact: NaN payloads and signed zeros must survive.
			if math.Float64bits(dec.data[j]) != math.Float64bits(tc.data[j]) {
				t.Fatalf("%s: data[%d] bits %x != %x", tc.name,
					j, math.Float64bits(dec.data[j]), math.Float64bits(tc.data[j]))
			}
		}
	}
}

func TestWALScanTornPrefix(t *testing.T) {
	const epoch = uint64(5)
	var recs [][]float64
	for i := 0; i < 6; i++ {
		data := make([]float64, i+1)
		for j := range data {
			data[j] = float64(i*10 + j)
		}
		recs = append(recs, walEncodeRecord(uint64(i+1), epoch, "arr", int64(i*8), data))
	}
	words := walTestLog(epoch, recs...)

	// Every possible torn length (a real log always keeps its header
	// word) must decode to a strict prefix of the record sequence,
	// never a corrupt or reordered record.
	for cut := walHeaderWords; cut <= len(words); cut++ {
		got, end := walScan(words[:cut], epoch)
		if end > int64(cut) {
			t.Fatalf("cut=%d: scan end %d past the torn tail", cut, end)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut=%d: scan invented %d records", cut, len(got))
		}
		for i, r := range got {
			if r.seq != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has seq %d, not a strict prefix", cut, i, r.seq)
			}
		}
		// A cut that keeps k whole records must recover exactly k.
		whole := 0
		pos := walHeaderWords
		for _, r := range recs {
			if pos+len(r) <= cut {
				whole++
				pos += len(r)
			}
		}
		if cut >= walHeaderWords && len(got) != whole {
			t.Fatalf("cut=%d: recovered %d records, %d survive whole", cut, len(got), whole)
		}
	}
}

func TestWALScanRejections(t *testing.T) {
	const epoch = uint64(2)
	r1 := walEncodeRecord(1, epoch, "A", 0, []float64{1, 2})
	r2 := walEncodeRecord(2, epoch, "A", 16, []float64{3})
	r3 := walEncodeRecord(3, epoch, "A", 32, []float64{4})

	t.Run("crc", func(t *testing.T) {
		words := walTestLog(epoch, r1, r2, r3)
		// Flip one bit in r2's data word: r1 survives, the scan stops.
		pos := walHeaderWords + len(r1) + len(r2) - 1
		words[pos] = math.Float64frombits(math.Float64bits(words[pos]) ^ 1)
		got, _ := walScan(words, epoch)
		if len(got) != 1 || got[0].seq != 1 {
			t.Fatalf("scan past a corrupt record: got %d records", len(got))
		}
	})

	t.Run("epoch", func(t *testing.T) {
		stale := walEncodeRecord(2, epoch-1, "A", 16, []float64{3})
		words := walTestLog(epoch, r1, stale, r3)
		got, _ := walScan(words, epoch)
		if len(got) != 1 {
			t.Fatalf("scan accepted a stale-epoch record: got %d records", len(got))
		}
	})

	t.Run("seq", func(t *testing.T) {
		replayed := walEncodeRecord(1, epoch, "A", 16, []float64{3})
		words := walTestLog(epoch, r1, replayed, r3)
		got, _ := walScan(words, epoch)
		if len(got) != 1 {
			t.Fatalf("scan accepted a non-monotone sequence: got %d records", len(got))
		}
	})

	t.Run("zeroed-tail", func(t *testing.T) {
		words := walTestLog(epoch, r1)
		words = append(words, make([]float64, 32)...) // unwritten log tail
		got, end := walScan(words, epoch)
		if len(got) != 1 {
			t.Fatalf("zero tail produced %d records", len(got))
		}
		if want := int64(walHeaderWords + len(r1)); end != want {
			t.Fatalf("scan end %d, want %d", end, want)
		}
	})
}

func TestWALRoute(t *testing.T) {
	if got := walRoute("anything", 99, 1); got != 0 {
		t.Fatalf("single-log route = %d", got)
	}
	seen := map[int]bool{}
	for i := int64(0); i < 256; i++ {
		off := i * walRouteChunkWords
		r := walRoute("A", off, 8)
		if r < 0 || r >= 8 {
			t.Fatalf("route %d out of range", r)
		}
		if r != walRoute("A", off, 8) {
			t.Fatalf("route not deterministic at off=%d", off)
		}
		seen[r] = true
	}
	// The avalanche must spread a single array's chunks over the logs
	// (FNV alone clusters sequential chunks).
	if len(seen) < 4 {
		t.Fatalf("256 chunks landed on only %d of 8 logs", len(seen))
	}
	// Within a chunk, every offset shares a log: one tile flush's burst
	// of row-run records is covered by a single log fsync.
	want := walRoute("B", 0, 8)
	for off := int64(0); off < walRouteChunkWords; off += 64 {
		if r := walRoute("B", off, 8); r != want {
			t.Fatalf("offset %d routed to log %d, chunk-mate 0 to %d", off, r, want)
		}
	}
}
