package ooc

// FuzzWALRecord drives the WAL record decoder with arbitrary bytes —
// the exact situation replay faces after a power cut tore the log at
// a random byte — and with valid logs it frames itself from the fuzz
// input. Properties: decoding never panics and never reads out of
// bounds; a log the encoder framed round-trips exactly; any torn
// prefix of a valid log decodes to a strict prefix of its records.
//
// Run with: go test ./internal/ooc/ -fuzz FuzzWALRecord

import (
	"encoding/binary"
	"math"
	"testing"
)

// walWordsOf reinterprets raw bytes as log words (little-endian,
// zero-padded tail) — the shape replay reads off a torn log file.
func walWordsOf(raw []byte) []float64 {
	words := make([]float64, (len(raw)+7)/8)
	for i := range words {
		var b [8]byte
		copy(b[:], raw[i*8:])
		words[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}
	return words
}

func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a log at all, just text that is long enough to scan"))
	// A well-formed single-record log (epoch 1).
	good := []float64{math.Float64frombits(1)}
	good = append(good, walEncodeRecord(1, 1, "A", 64, []float64{1, 2, 3})...)
	var goodB []byte
	for _, w := range good {
		goodB = binary.LittleEndian.AppendUint64(goodB, math.Float64bits(w))
	}
	f.Add(goodB)
	f.Add(goodB[:len(goodB)-5]) // torn mid-word
	f.Add(append(append([]byte{}, goodB...), goodB...))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// 1. Arbitrary bytes: scanning must be total — no panics, no
		// out-of-bounds end, records well-formed and strictly ordered.
		words := walWordsOf(raw)
		var epoch uint64
		if len(words) > 0 {
			epoch = math.Float64bits(words[0])
		}
		for _, ep := range []uint64{epoch, 1} {
			recs, end := walScan(words, ep)
			if end < walHeaderWords || (len(words) >= walHeaderWords && end > int64(len(words))) {
				t.Fatalf("scan end %d out of bounds for %d words", end, len(words))
			}
			last := uint64(0)
			for _, r := range recs {
				if r.seq <= last {
					t.Fatalf("scan returned non-increasing seq %d after %d", r.seq, last)
				}
				last = r.seq
				if r.epoch != ep {
					t.Fatalf("scan returned epoch %d, scanned for %d", r.epoch, ep)
				}
				if len(r.name) == 0 || len(r.name) > walMaxNameLen {
					t.Fatalf("scan returned name of %d bytes", len(r.name))
				}
			}
		}

		// 2. Frame a valid log from the fuzz input and round-trip it.
		const maxRecs = 8
		log := []float64{math.Float64frombits(7)}
		var want []walRecord
		for i, rest := 0, raw; i < maxRecs && len(rest) > 0; i++ {
			nameLen := int(rest[0])%16 + 1
			if nameLen > len(rest) {
				nameLen = len(rest)
			}
			nameB := make([]byte, nameLen)
			for j := range nameB {
				nameB[j] = 'a' + rest[j]%26
			}
			rest = rest[nameLen:]
			dataLen := (len(rest) % 5) + 1
			data := make([]float64, dataLen)
			for j := range data {
				var b [8]byte
				copy(b[:], rest)
				if len(rest) > 8 {
					rest = rest[8:]
				} else {
					rest = nil
				}
				data[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			}
			r := walRecord{seq: uint64(i + 1), epoch: 7, name: string(nameB), off: int64(i) * 17, data: data}
			log = append(log, walEncodeRecord(r.seq, r.epoch, r.name, r.off, r.data)...)
			want = append(want, r)
		}
		got, end := walScan(log, 7)
		if end != int64(len(log)) {
			t.Fatalf("round-trip scan stopped at %d of %d words", end, len(log))
		}
		if len(got) != len(want) {
			t.Fatalf("round-trip decoded %d of %d records", len(got), len(want))
		}
		for i := range want {
			if got[i].seq != want[i].seq || got[i].name != want[i].name || got[i].off != want[i].off {
				t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
			}
			for j := range want[i].data {
				if math.Float64bits(got[i].data[j]) != math.Float64bits(want[i].data[j]) {
					t.Fatalf("record %d data word %d not bit-exact", i, j)
				}
			}
		}

		// 3. Torn prefix of the valid log: a strict prefix of records.
		if len(log) > walHeaderWords {
			cut := walHeaderWords + len(raw)%(len(log)-walHeaderWords+1)
			torn, _ := walScan(log[:cut], 7)
			if len(torn) > len(want) {
				t.Fatalf("torn scan invented records: %d > %d", len(torn), len(want))
			}
			for i, r := range torn {
				if r.seq != want[i].seq {
					t.Fatalf("torn scan record %d has seq %d, not a strict prefix", i, r.seq)
				}
			}
		}
	})
}
