// Package ooc is the out-of-core runtime: the role the PASSION library
// plays in the paper. It stores arrays in (simulated) files under a
// chosen file layout, moves rectangular data tiles between "disk" and
// "memory", enforces a memory budget, and accounts every I/O call and
// byte.
//
// The central costing rule matches the paper's model: reading a tile
// issues one I/O request per maximal contiguous file run the tile
// occupies (layout.Runs), further split by the per-call element cap
// (the paper's "at most 8 elements per I/O call" in Figure 3, 64 KB
// stripe units on the real PFS).
//
// # Thread safety
//
// The runtime is safe for the concurrent tile Engine:
//
//   - Stats fields are updated atomically; Stats.Add may be called from
//     multiple goroutines. Reading individual fields is only safe once
//     the writers are quiescent (after Engine.Close / a WaitGroup
//     join); use Stats.Snapshot for a consistent copy while concurrent
//     updates may still be in flight.
//   - Disk accounting (global stats, per-file stats, the Record trace)
//     is safe under concurrent ReadTile/WriteTile/TouchRead/TouchWrite
//     from any number of goroutines. Trace entry ORDER is whatever the
//     goroutine interleaving produced; deterministic traces require a
//     single-threaded run (Engine with Workers = 0).
//   - Array data access is guarded by a per-array reader/writer lock:
//     any number of concurrent tile reads overlap, while a tile write
//     excludes both reads and other writes of the same array.
//   - Memory is mutex-guarded.
//   - CreateArray, ResetStats, Close and the setup helpers (Fill,
//     FromStore, SetAt) are NOT safe to run while tile I/O is in
//     flight; perform setup before handing the disk to an Engine.
package ooc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/obs"
)

// ElemSize is the byte size of one array element (double precision, as
// in the paper's experiments).
const ElemSize = 8

// Stats accumulates I/O accounting. Mutation (Add, Disk accounting) is
// atomic per field; see the package doc for the read-side contract.
type Stats struct {
	ReadCalls    int64
	WriteCalls   int64
	ElemsRead    int64
	ElemsWritten int64
}

// Calls returns total I/O calls.
func (s Stats) Calls() int64 { return s.ReadCalls + s.WriteCalls }

// Bytes returns total bytes moved.
func (s Stats) Bytes() int64 { return (s.ElemsRead + s.ElemsWritten) * ElemSize }

// Add accumulates other into s. Safe for concurrent adders.
func (s *Stats) Add(o Stats) {
	atomic.AddInt64(&s.ReadCalls, o.ReadCalls)
	atomic.AddInt64(&s.WriteCalls, o.WriteCalls)
	atomic.AddInt64(&s.ElemsRead, o.ElemsRead)
	atomic.AddInt64(&s.ElemsWritten, o.ElemsWritten)
}

// Snapshot returns an atomically-loaded copy, safe while concurrent
// updates are in flight.
func (s *Stats) Snapshot() Stats {
	return Stats{
		ReadCalls:    atomic.LoadInt64(&s.ReadCalls),
		WriteCalls:   atomic.LoadInt64(&s.WriteCalls),
		ElemsRead:    atomic.LoadInt64(&s.ElemsRead),
		ElemsWritten: atomic.LoadInt64(&s.ElemsWritten),
	}
}

// Request is one recorded I/O call (element granularity).
type Request struct {
	Array string
	Off   int64 // file offset, in elements
	Len   int64 // length, in elements
	Write bool
}

// Disk simulates the storage subsystem: a set of per-array files plus
// global accounting. MaxCallElems caps how many contiguous elements a
// single I/O call may move (0 = unlimited).
type Disk struct {
	MaxCallElems int64
	Record       bool // capture per-call Trace (costly; tests/PFS replay only)

	Stats   Stats
	PerFile map[string]*Stats
	Trace   []Request

	mu           sync.Mutex // guards PerFile map structure, Trace, and the arrays map
	arrays       map[string]*Array
	dir          string // non-empty: back arrays with real files here
	keepExisting bool   // file backing: open without truncating
	noBacking    bool   // measurement-only arrays (no data)
	stripeN      int    // > 1: stripe each array's backend this many ways
	stripeUnit   int64  // striping unit in elements (DefaultStripeUnit when 0)
	wrapBackend  func(name string, b Backend) Backend
	wal          *walSet    // non-nil once EnableWAL configured write-ahead logging
	comp         *compState // non-nil once EnableCompression configured codec backends

	met *diskMetrics // non-nil once Observe attached a registry
}

// diskMetrics are the registry series the disk feeds when observed:
// call/element counters plus the per-call request-size histogram the
// paper's I/O model is all about (small scattered calls vs few large
// ones).
type diskMetrics struct {
	reg                   *obs.Registry // retained so later-enabled features can add families
	readCalls, writeCalls *obs.Counter
	readElems, writeElems *obs.Counter
	reqElems              *obs.Histogram
}

// Observe registers the disk's accounting into the sink's metrics
// registry (shared "ooc_io_*" series; several disks may observe the
// same registry and accumulate). A nil sink or registry is a no-op.
// Like the other setup helpers, call it before tile I/O starts. It
// returns d for chaining.
func (d *Disk) Observe(sink *obs.Sink) *Disk {
	reg := sink.MetricsOf()
	if reg == nil {
		return d
	}
	d.met = &diskMetrics{
		reg:        reg,
		readCalls:  reg.Counter("ooc_io_read_calls_total", "backend read calls issued"),
		writeCalls: reg.Counter("ooc_io_write_calls_total", "backend write calls issued"),
		readElems:  reg.Counter("ooc_io_read_elems_total", "elements read from the backend"),
		writeElems: reg.Counter("ooc_io_write_elems_total", "elements written to the backend"),
		reqElems: reg.Histogram("ooc_request_elems",
			"elements moved per backend I/O call", obs.ExpBuckets(1, 4, 10)),
	}
	d.observeCompLocked()
	return d
}

// observeRuns feeds the request-size histogram with the per-call
// lengths the runs split into (mirroring callsFor's cap splitting).
func (d *Disk) observeRuns(runs []layout.Run) {
	m := d.met
	if m == nil {
		return
	}
	for _, r := range runs {
		if d.MaxCallElems <= 0 || r.Len <= d.MaxCallElems {
			m.reqElems.Observe(float64(r.Len))
			continue
		}
		for rem := r.Len; rem > 0; rem -= d.MaxCallElems {
			l := d.MaxCallElems
			if rem < l {
				l = rem
			}
			m.reqElems.Observe(float64(l))
		}
	}
}

// NewDisk returns an empty disk with the given per-call element cap.
func NewDisk(maxCallElems int64) *Disk {
	return &Disk{
		MaxCallElems: maxCallElems,
		PerFile:      map[string]*Stats{},
		arrays:       map[string]*Array{},
	}
}

// ResetStats clears accounting but keeps file contents. Not safe while
// tile I/O is in flight.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Stats = Stats{}
	d.PerFile = map[string]*Stats{}
	d.Trace = nil
}

// Array is an out-of-core array: file-resident data under a layout.
type Array struct {
	Meta    *ir.Array
	Layout  *layout.Layout
	disk    *Disk
	backend Backend
	bmu     sync.RWMutex // readers: ReadTile; writers: WriteTile
}

// ErrArrayExists is returned (wrapped) by CreateArray when an array of
// the same name is already on the disk; match it with errors.Is.
var ErrArrayExists = errors.New("ooc: array already exists")

// CreateArray allocates the file for an array under the given layout.
// Creating the same array twice is an error. Unlike the data setup
// helpers, creation is mutex-guarded, so a serving layer may create
// arrays while tile I/O on OTHER arrays is in flight; I/O on the array
// being created must still wait for CreateArray to return.
func (d *Disk) CreateArray(a *ir.Array, l *layout.Layout) (*Array, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.arrays[a.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrArrayExists, a.Name)
	}
	if l.Size() != a.Len() {
		return nil, fmt.Errorf("ooc: layout size %d != array size %d for %s", l.Size(), a.Len(), a.Name)
	}
	if d.wal != nil {
		// Logs open before the first array so reopen-after-crash adopts
		// them in a deterministic order.
		if err := d.wal.ensureLogs(d); err != nil {
			return nil, err
		}
	}
	backend, err := d.newBackend(a.Name, a.Len())
	if err != nil {
		return nil, fmt.Errorf("ooc: creating backing for %s: %w", a.Name, err)
	}
	if d.wal != nil {
		backend = d.wal.attach(a.Name, backend)
	}
	arr := &Array{Meta: a, Layout: l, disk: d, backend: backend}
	d.arrays[a.Name] = arr
	d.PerFile[a.Name] = &Stats{}
	return arr, nil
}

// ArrayOf returns the out-of-core array for a, or nil.
func (d *Disk) ArrayOf(a *ir.Array) *Array { return d.ArrayByName(a.Name) }

// ArrayByName returns the array named name, or nil.
func (d *Disk) ArrayByName(name string) *Array {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.arrays[name]
}

// Arrays returns every array on the disk, sorted by name (serving and
// telemetry; the order is stable for listings).
func (d *Disk) Arrays() []*Array {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sortedArraysLocked()
}

// callsFor splits contiguous runs by the per-call cap.
func (d *Disk) callsFor(runs []layout.Run) int64 {
	var calls int64
	for _, r := range runs {
		if d.MaxCallElems <= 0 {
			calls++
			continue
		}
		calls += (r.Len + d.MaxCallElems - 1) / d.MaxCallElems
	}
	return calls
}

// recordRuns appends per-call trace entries for the runs.
func (d *Disk) recordRuns(name string, runs []layout.Run, write bool) {
	if !d.Record {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range runs {
		if d.MaxCallElems <= 0 {
			d.Trace = append(d.Trace, Request{Array: name, Off: r.Off, Len: r.Len, Write: write})
			continue
		}
		for off := r.Off; off < r.Off+r.Len; off += d.MaxCallElems {
			l := d.MaxCallElems
			if off+l > r.Off+r.Len {
				l = r.Off + r.Len - off
			}
			d.Trace = append(d.Trace, Request{Array: name, Off: off, Len: l, Write: write})
		}
	}
}

// account updates global and per-file stats (atomically, so concurrent
// tile operations may account in parallel).
func (d *Disk) account(name string, calls, elems int64, write bool) {
	d.mu.Lock()
	fs := d.PerFile[name]
	if fs == nil {
		fs = &Stats{}
		d.PerFile[name] = fs
	}
	d.mu.Unlock()
	var delta Stats
	if write {
		delta.WriteCalls, delta.ElemsWritten = calls, elems
	} else {
		delta.ReadCalls, delta.ElemsRead = calls, elems
	}
	d.Stats.Add(delta)
	fs.Add(delta)
	if m := d.met; m != nil {
		if write {
			m.writeCalls.Add(calls)
			m.writeElems.Add(elems)
		} else {
			m.readCalls.Add(calls)
			m.readElems.Add(elems)
		}
	}
}

// setupChunk is the buffer size for whole-array setup helpers.
const setupChunk = 1 << 16

// Fill initializes the whole array in place from a coordinate function
// WITHOUT accounting I/O (test/benchmark setup, not workload I/O).
func (ar *Array) Fill(f func(c []int64) float64) {
	size := ar.Layout.Size()
	buf := make([]float64, minI64ooc(setupChunk, size))
	for base := int64(0); base < size; base += int64(len(buf)) {
		n := minI64ooc(int64(len(buf)), size-base)
		for i := int64(0); i < n; i++ {
			buf[i] = f(ar.Layout.Coord(base + i))
		}
		if err := ar.backend.WriteAt(buf[:n], base); err != nil {
			panic(err)
		}
	}
}

// At reads one element directly (no accounting; verification helper).
func (ar *Array) At(c []int64) float64 {
	var buf [1]float64
	if err := ar.backend.ReadAt(buf[:], ar.Layout.Offset(c)); err != nil {
		panic(err)
	}
	return buf[0]
}

// SetAt writes one element directly (no accounting; setup helper).
func (ar *Array) SetAt(c []int64, v float64) {
	buf := [1]float64{v}
	if err := ar.backend.WriteAt(buf[:], ar.Layout.Offset(c)); err != nil {
		panic(err)
	}
}

// ToStore copies the array contents into an in-core store for
// verification against a reference execution.
func (ar *Array) ToStore(s *ir.Store) {
	size := ar.Layout.Size()
	buf := make([]float64, minI64ooc(setupChunk, size))
	for base := int64(0); base < size; base += int64(len(buf)) {
		n := minI64ooc(int64(len(buf)), size-base)
		if err := ar.backend.ReadAt(buf[:n], base); err != nil {
			panic(err)
		}
		for i := int64(0); i < n; i++ {
			s.Set(ar.Meta, ar.Layout.Coord(base+i), buf[i])
		}
	}
}

// FromStore loads the array contents from an in-core store (no
// accounting; setup helper).
func (ar *Array) FromStore(s *ir.Store) {
	size := ar.Layout.Size()
	buf := make([]float64, minI64ooc(setupChunk, size))
	for base := int64(0); base < size; base += int64(len(buf)) {
		n := minI64ooc(int64(len(buf)), size-base)
		for i := int64(0); i < n; i++ {
			buf[i] = s.Get(ar.Meta, ar.Layout.Coord(base+i))
		}
		if err := ar.backend.WriteAt(buf[:n], base); err != nil {
			panic(err)
		}
	}
}

func minI64ooc(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Tile is an in-memory rectangular window of an out-of-core array.
type Tile struct {
	Arr  *Array
	Box  layout.Box
	data []float64 // box-local row-major
	dims []int64   // box extents
}

// ReadTile brings the (clipped) box into memory, charging one I/O call
// per contiguous run segment (split by the call cap).
func (ar *Array) ReadTile(box layout.Box) (*Tile, error) {
	box = box.Clip(ar.Meta.Dims)
	t := newTile(ar, box)
	runs := ar.Layout.Runs(box)
	ar.disk.account(ar.Meta.Name, ar.disk.callsFor(runs), box.Size(), false)
	ar.disk.recordRuns(ar.Meta.Name, runs, false)
	ar.disk.observeRuns(runs)
	// Move the data: read each run, then scatter into the tile buffer.
	// Concurrent reads overlap; a concurrent write excludes them.
	ar.bmu.RLock()
	defer ar.bmu.RUnlock()
	var buf []float64
	for _, r := range runs {
		if int64(cap(buf)) < r.Len {
			buf = make([]float64, r.Len)
		}
		buf = buf[:r.Len]
		if err := ar.backend.ReadAt(buf, r.Off); err != nil {
			return nil, fmt.Errorf("ooc: reading %s run [%d,%d): %w", ar.Meta.Name, r.Off, r.Off+r.Len, err)
		}
		for i := int64(0); i < r.Len; i++ {
			c := ar.Layout.Coord(r.Off + i)
			t.data[t.index(c)] = buf[i]
		}
	}
	return t, nil
}

// TouchRead accounts the I/O of reading the box without moving any
// data: the measurement path for dry-run schedule execution, where only
// call counts, bytes and the request trace matter.
func (ar *Array) TouchRead(box layout.Box) {
	box = box.Clip(ar.Meta.Dims)
	runs := ar.Layout.Runs(box)
	ar.disk.account(ar.Meta.Name, ar.disk.callsFor(runs), box.Size(), false)
	ar.disk.recordRuns(ar.Meta.Name, runs, false)
	ar.disk.observeRuns(runs)
}

// TouchWrite accounts the I/O of writing the box without moving data.
func (ar *Array) TouchWrite(box layout.Box) {
	box = box.Clip(ar.Meta.Dims)
	runs := ar.Layout.Runs(box)
	ar.disk.account(ar.Meta.Name, ar.disk.callsFor(runs), box.Size(), true)
	ar.disk.recordRuns(ar.Meta.Name, runs, true)
	ar.disk.observeRuns(runs)
}

// NewTileZero allocates an in-memory tile without reading (for pure
// output tiles that will be fully overwritten).
func (ar *Array) NewTileZero(box layout.Box) *Tile {
	return newTile(ar, box.Clip(ar.Meta.Dims))
}

// WriteTile flushes the tile back to disk, charging one I/O call per
// contiguous run segment (split by the call cap).
func (t *Tile) WriteTile() error {
	ar := t.Arr
	runs := ar.Layout.Runs(t.Box)
	ar.disk.account(ar.Meta.Name, ar.disk.callsFor(runs), t.Box.Size(), true)
	ar.disk.recordRuns(ar.Meta.Name, runs, true)
	ar.disk.observeRuns(runs)
	ar.bmu.Lock()
	defer ar.bmu.Unlock()
	var buf []float64
	for _, r := range runs {
		if int64(cap(buf)) < r.Len {
			buf = make([]float64, r.Len)
		}
		buf = buf[:r.Len]
		for i := int64(0); i < r.Len; i++ {
			c := ar.Layout.Coord(r.Off + i)
			buf[i] = t.data[t.index(c)]
		}
		if err := ar.backend.WriteAt(buf, r.Off); err != nil {
			return fmt.Errorf("ooc: writing %s run [%d,%d): %w", ar.Meta.Name, r.Off, r.Off+r.Len, err)
		}
	}
	return nil
}

func newTile(ar *Array, box layout.Box) *Tile {
	dims := make([]int64, box.Rank())
	for d := range dims {
		dims[d] = box.Hi[d] - box.Lo[d]
	}
	return &Tile{Arr: ar, Box: box, data: make([]float64, box.Size()), dims: dims}
}

// index maps global coordinates to the tile-local buffer.
func (t *Tile) index(c []int64) int64 {
	var idx int64
	for d := range c {
		x := c[d] - t.Box.Lo[d]
		if x < 0 || x >= t.dims[d] {
			panic(fmt.Sprintf("ooc: coordinate %v outside tile %v", c, t.Box))
		}
		idx = idx*t.dims[d] + x
	}
	return idx
}

// Get reads a tile element by GLOBAL array coordinates.
func (t *Tile) Get(c []int64) float64 { return t.data[t.index(c)] }

// Set writes a tile element by GLOBAL array coordinates.
func (t *Tile) Set(c []int64, v float64) { t.data[t.index(c)] = v }

// Size returns the tile's element count.
func (t *Tile) Size() int64 { return t.Box.Size() }

// Data returns the tile's backing slice in box-local row-major order
// (the serving layer's wire format). Mutating it mutates the tile;
// writers must release the tile dirty so the change is written back.
func (t *Tile) Data() []float64 { return t.data }

// Memory enforces the in-core memory budget the paper imposes (1/128th
// of the out-of-core data size in the experiments). Safe for concurrent
// use.
type Memory struct {
	Capacity int64 // elements
	mu       sync.Mutex
	used     int64
	peak     int64
}

// NewMemory returns a budget of the given element capacity (0 =
// unlimited).
func NewMemory(capacityElems int64) *Memory { return &Memory{Capacity: capacityElems} }

// Alloc reserves n elements, failing when the budget would overflow.
func (m *Memory) Alloc(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Capacity > 0 && m.used+n > m.Capacity {
		return fmt.Errorf("ooc: memory budget exceeded: %d + %d > %d elements", m.used, n, m.Capacity)
	}
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Release returns n elements to the budget.
func (m *Memory) Release(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used -= n
	if m.used < 0 {
		panic("ooc: memory release underflow")
	}
}

// Used returns the current allocation.
func (m *Memory) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark.
func (m *Memory) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}
