package ooc

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"outcore/internal/layout"
	"outcore/internal/obs"
)

// DefaultCacheTiles is the tile-cache capacity used when EngineOptions
// leaves CacheTiles unset.
const DefaultCacheTiles = 8

// ErrEngineClosed is returned by operations on a closed Engine.
var ErrEngineClosed = errors.New("ooc: engine closed")

// EngineOptions configures a concurrent tile engine.
type EngineOptions struct {
	// Workers sets the I/O worker-pool size. 0 disables the pool:
	// every miss is serviced synchronously on the calling goroutine and
	// Prefetch becomes a no-op (the deterministic mode golden-trace
	// tests rely on).
	Workers int
	// CacheTiles bounds the number of resident tiles (LRU eviction;
	// <= 0 means DefaultCacheTiles). Pinned tiles are never evicted, so
	// the cache may transiently exceed the bound while a tile set is in
	// use; it shrinks back at release.
	CacheTiles int
	// Obs attaches the observability sink: tile fetches, write-backs,
	// prefetch issue/completion and evictions are emitted as trace
	// events, fetch latency feeds the "ooc_tile_fetch_seconds"
	// histogram, and the cache counters are published into the registry
	// under "ooc_engine_*" names at Close. Nil disables all of it; the
	// counters behind EngineStats are plain atomics either way, so an
	// unobserved engine pays nothing but a nil check.
	Obs *obs.Sink
}

// EngineStats is a point-in-time view over the engine's obs counters
// (each field an atomic snapshot; see Engine.Stats).
type EngineStats struct {
	Hits            int64 // acquires/touches served from cache
	Misses          int64 // acquires/touches that went to the backend
	Evictions       int64 // entries removed by capacity pressure
	Invalidations   int64 // entries dropped because an overlapping tile was dirtied
	Writebacks      int64 // dirty tiles flushed to the backend
	WritebackErrors int64 // write-backs that failed (the tile stays dirty and is retried)
	PrefetchIssued  int64 // async tile reads dispatched ahead of use
	PrefetchUseful  int64 // acquires that found their tile prefetched
}

// Acquires returns the total tile requests seen by the cache.
func (s EngineStats) Acquires() int64 { return s.Hits + s.Misses }

// HitRate returns Hits / Acquires (0 when idle).
func (s EngineStats) HitRate() float64 {
	if a := s.Acquires(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// OverlapFactor returns the fraction of tile requests whose backend
// read was issued ahead of use (and therefore overlapped with compute):
// PrefetchUseful / Acquires.
func (s EngineStats) OverlapFactor() float64 {
	if a := s.Acquires(); a > 0 {
		return float64(s.PrefetchUseful) / float64(a)
	}
	return 0
}

// entry is one cached tile. An entry is in exactly one of three states:
// loading (ready != nil, loading true; a goroutine is reading it),
// resident (tile != nil, or touch true for data-less accounting
// entries), or gone (removed from the map; dropped marks removal that
// happened while loading so the loader discards its result).
type entry struct {
	key  TileKey
	arr  *Array
	box  layout.Box
	tile *Tile

	touch      bool // accounting-only entry (dry-run disks)
	dirty      bool
	pins       int
	loading    bool
	dropped    bool
	prefetched bool
	ready      chan struct{} // closed when loading finishes
	elem       *list.Element
}

// Engine is a concurrent tile engine: a size-bounded LRU tile cache
// with write-back dirty tracking in front of a Disk, plus an optional
// worker pool that overlaps independent tile fetches and services
// asynchronous prefetches.
//
// Consistency contract: concurrent pinned tiles whose boxes overlap may
// not include a tile that is released dirty (the codegen schedule
// guarantees this: a written array has a single access-pattern group).
// Under that contract the engine is linearizable with the sequential
// ReadTile/WriteTile runtime: acquiring a box always observes every
// previously released overlapping write, because dirty overlapping
// tiles are flushed before a miss reads the backend and overlapping
// cache entries (including in-flight prefetches) are invalidated when a
// tile is dirtied.
type Engine struct {
	disk     *Disk
	workers  int
	capTiles int

	// Observability. The counters are standalone atomics owned by this
	// engine (EngineStats is a view over them); trace/fetchHist/reg are
	// nil unless a sink was attached via EngineOptions.Obs.
	met       engineMetrics
	trace     *obs.Trace
	fetchHist *obs.Histogram
	reg       *obs.Registry
	published bool // registry publication happens once, at Close

	mu       sync.Mutex
	entries  map[TileKey]*entry
	lru      *list.List // front = most recently used
	closed   bool
	firstErr error // first asynchronous write-back failure

	// dirties counts resident dirty entries, maintained alongside
	// entry.dirty transitions. It is read lock-free by the sharded
	// plane, which skips the cross-shard overlap scan entirely when a
	// sibling shard has nothing dirty — the common case on read-heavy
	// traffic.
	dirties atomic.Int64

	jobs chan func()
	wg   sync.WaitGroup
}

// engineMetrics are the per-engine cache counters, updated atomically
// on the hot paths and read back by Stats.
type engineMetrics struct {
	hits            obs.Counter
	misses          obs.Counter
	evictions       obs.Counter
	invalidations   obs.Counter
	writebacks      obs.Counter
	writebackErrors obs.Counter
	prefetchIssued  obs.Counter
	prefetchUseful  obs.Counter
}

// NewEngine starts an engine over the disk.
func NewEngine(d *Disk, o EngineOptions) *Engine {
	if o.CacheTiles <= 0 {
		o.CacheTiles = DefaultCacheTiles
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	e := &Engine{
		disk:     d,
		workers:  o.Workers,
		capTiles: o.CacheTiles,
		entries:  map[TileKey]*entry{},
		lru:      list.New(),
	}
	if o.Obs != nil {
		e.trace = o.Obs.Trace
		if e.reg = o.Obs.Metrics; e.reg != nil {
			e.fetchHist = e.reg.Histogram("ooc_tile_fetch_seconds",
				"backend tile read latency in seconds", obs.ExpBuckets(1e-6, 4, 12))
		}
	}
	if e.workers > 0 {
		e.jobs = make(chan func(), 4*e.workers+16)
		for i := 0; i < e.workers; i++ {
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				for job := range e.jobs {
					job()
				}
			}()
		}
	}
	return e
}

// Handle is a pinned cached tile. The tile stays resident (and is never
// evicted) until Release, which recycles the Handle itself — using a
// handle (or its Tile) after releasing it is a bug, best-effort caught
// by the double-release panic.
type Handle struct {
	eng      *Engine
	ent      *entry
	released bool
}

// handlePool recycles Handles so the cached-GET path allocates
// nothing: Acquire is called once per tile request, and the handle is
// the only per-request object the hit path would otherwise heap-allocate.
var handlePool = sync.Pool{New: func() any { return new(Handle) }}

func newHandle(e *Engine, ent *entry) *Handle {
	h := handlePool.Get().(*Handle)
	*h = Handle{eng: e, ent: ent}
	return h
}

// Tile returns the pinned in-memory tile.
func (h *Handle) Tile() *Tile { return h.ent.tile }

// Acquire returns the tile for (array, box), pinned: from cache on a
// hit (including tiles still being prefetched, which it waits for), or
// read from the backend on a miss. Concurrent acquires of the same key
// share one backend read and one in-memory tile.
func (e *Engine) Acquire(ar *Array, box layout.Box) (*Handle, error) {
	box = box.Clip(ar.Meta.Dims)
	// The key bytes live on the stack; the hit path looks them up via
	// the compiler's byte-slice map-key optimization and never
	// materializes the string. Only a miss pays the conversion.
	var kb [tileKeyStackBytes]byte
	keyb := appendTileKey(kb[:0], ar.Meta.Name, box)
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, ErrEngineClosed
		}
		if ent, ok := e.entries[TileKey(keyb)]; ok {
			if ent.loading {
				ready := ent.ready
				e.mu.Unlock()
				<-ready
				continue // resident now, or dropped: re-resolve
			}
			ent.pins++
			e.met.hits.Inc()
			if ent.prefetched {
				e.met.prefetchUseful.Inc()
				ent.prefetched = false
			}
			e.lru.MoveToFront(ent.elem)
			e.mu.Unlock()
			return newHandle(e, ent), nil
		}
		// Miss: reserve the key, make the backend current for this box,
		// then read outside the lock so independent fetches overlap.
		e.met.misses.Inc()
		key := TileKey(keyb)
		ent := &entry{key: key, arr: ar, box: box, pins: 1, loading: true, ready: make(chan struct{})}
		e.entries[key] = ent
		ent.elem = e.lru.PushFront(ent)
		if ferr := e.flushOverlapDirtyLocked(ar, box, key); ferr != nil {
			// Reading the backend now would observe data older than a
			// released overlapping write; fail the acquire instead of
			// serving a stale tile. The dirty tile stays cached for a
			// retry against a healed backend.
			ent.loading = false
			close(ent.ready)
			e.removeLocked(ent)
			e.mu.Unlock()
			return nil, ferr
		}
		e.mu.Unlock()

		var t0 time.Time
		if e.timed() {
			t0 = time.Now()
		}
		t, err := ar.ReadTile(box)
		if !t0.IsZero() && err == nil {
			e.observeSpan(obs.KindTileFetch, ar.Meta.Name, t0, box.Size()*ElemSize)
		}

		e.mu.Lock()
		ent.loading = false
		close(ent.ready)
		if err != nil {
			e.removeLocked(ent)
			e.mu.Unlock()
			return nil, err
		}
		ent.tile = t
		e.evictLocked()
		e.mu.Unlock()
		return newHandle(e, ent), nil
	}
}

// TileReq names one tile to acquire.
type TileReq struct {
	Arr *Array
	Box layout.Box
}

// AcquireAll acquires every requested tile. With a worker-enabled
// engine the misses are fetched concurrently — the overlap that makes
// independent tile reads cheaper than their sum.
func (e *Engine) AcquireAll(reqs []TileReq) ([]*Handle, error) {
	hs := make([]*Handle, len(reqs))
	if e.workers == 0 || len(reqs) < 2 {
		for i, r := range reqs {
			h, err := e.Acquire(r.Arr, r.Box)
			if err != nil {
				e.releaseAll(hs)
				return nil, err
			}
			hs[i] = h
		}
		return hs, nil
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r TileReq) {
			defer wg.Done()
			hs[i], errs[i] = e.Acquire(r.Arr, r.Box)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			e.releaseAll(hs)
			return nil, err
		}
	}
	return hs, nil
}

func (e *Engine) releaseAll(hs []*Handle) {
	for _, h := range hs {
		if h != nil {
			e.Release(h, false)
		}
	}
}

// Release unpins the tile; dirty records that the caller modified it.
// A dirty tile stays cached (so later acquires of the same box reuse
// the updated copy) and is written back on eviction or Flush; marking
// it dirty invalidates every other cached or in-flight tile of the
// same array that overlaps it, since their contents are now stale.
func (e *Engine) Release(h *Handle, dirty bool) {
	if h.released {
		panic("ooc: tile handle released twice")
	}
	h.released = true
	ent := h.ent
	e.mu.Lock()
	if ent.pins <= 0 {
		e.mu.Unlock()
		panic("ooc: release of unpinned tile")
	}
	ent.pins--
	if dirty {
		e.markDirtyLocked(ent)
		e.invalidateOverlapLocked(ent)
	}
	e.lru.MoveToFront(ent.elem)
	e.evictLocked()
	e.mu.Unlock()
	h.ent = nil
	handlePool.Put(h)
}

// Prefetch asynchronously reads (array, box) into the cache so a later
// Acquire hits without waiting on the backend. It is a no-op without
// workers, when the tile is already cached or in flight, or when the
// box overlaps a dirty tile (the later Acquire will flush and read it
// consistently instead).
func (e *Engine) Prefetch(ar *Array, box layout.Box) {
	if e.workers == 0 {
		return
	}
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	key := tileKey(ar.Meta.Name, box)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if _, ok := e.entries[key]; ok {
		e.mu.Unlock()
		return
	}
	if e.overlapsDirtyLocked(ar, box) {
		e.mu.Unlock()
		return
	}
	ent := &entry{key: key, arr: ar, box: box, loading: true, prefetched: true, ready: make(chan struct{})}
	e.entries[key] = ent
	ent.elem = e.lru.PushFront(ent)
	e.met.prefetchIssued.Inc()
	e.mu.Unlock()
	if e.trace != nil {
		e.trace.Emit(obs.Event{Kind: obs.KindPrefetchIssue, Name: ar.Meta.Name,
			Start: e.trace.Now(), Bytes: box.Size() * ElemSize})
	}

	e.jobs <- func() {
		var t0 time.Time
		if e.timed() {
			t0 = time.Now()
		}
		t, err := ar.ReadTile(box)
		if !t0.IsZero() && err == nil {
			e.observeSpan(obs.KindPrefetchDone, ar.Meta.Name, t0, box.Size()*ElemSize)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		ent.loading = false
		defer close(ent.ready)
		if ent.dropped {
			return // invalidated while in flight; discard
		}
		if err != nil {
			e.removeLocked(ent) // next Acquire retries and surfaces the error
			return
		}
		ent.tile = t
		e.evictLocked()
	}
}

// Touch is the accounting-only counterpart of Acquire+Release for
// dry-run (data-less) disks: a miss charges TouchRead, a write marks
// the entry dirty (TouchWrite is charged once, at eviction or Flush),
// and a hit charges nothing — so cached dry-run schedules report the
// calls the cached engine would really issue.
func (e *Engine) Touch(ar *Array, box layout.Box, write bool) {
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	key := tileKey(ar.Meta.Name, box)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.entries[key]; ok && !ent.loading {
		e.met.hits.Inc()
		e.lru.MoveToFront(ent.elem)
		if write && !ent.dirty {
			e.markDirtyLocked(ent)
			e.invalidateOverlapLocked(ent)
		}
		return
	}
	e.met.misses.Inc()
	// Accounting-only disks have no data to lose: TouchWrite cannot
	// fail, so the flush error is structurally nil here.
	_ = e.flushOverlapDirtyLocked(ar, box, key)
	ar.TouchRead(box)
	ent := &entry{key: key, arr: ar, box: box, touch: true}
	e.entries[key] = ent
	ent.elem = e.lru.PushFront(ent)
	if write {
		e.markDirtyLocked(ent)
		e.invalidateOverlapLocked(ent)
	}
	e.evictLocked()
}

// Flush writes every unpinned dirty tile back to the backend, oldest
// first (LRU order keeps the write-back request stream deterministic —
// the bench regression gate diffs simulated request traces, so map
// iteration order must never leak into the I/O schedule), then syncs
// the backends so file-backed arrays are durable at the flush point.
// Cached tiles stay resident (clean).
// A failed Flush is NOT sticky: it reports this pass's first failure
// (failed tiles stay dirty and cached), and a later Flush against a
// healed backend can succeed — the durability acknowledgement point
// fault-tolerant callers retry against.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

// flushLocked writes back every unpinned dirty tile and syncs the
// backends, returning the first error of THIS pass (nil when
// everything, including the sync, succeeded).
func (e *Engine) flushLocked() error {
	var first error
	for el := e.lru.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*entry)
		if ent.dirty && ent.pins == 0 && !ent.loading {
			if err := e.writebackLocked(ent); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := e.disk.Sync(); err != nil {
		if first == nil {
			first = err
		}
		if e.firstErr == nil {
			e.firstErr = err
		}
	}
	return first
}

// Close drains the worker pool, flushes dirty tiles, syncs the backends
// and returns the first write-back error, if any. Further engine calls
// fail.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.firstErr
		e.mu.Unlock()
		return err
	}
	e.closed = true
	e.mu.Unlock()
	if e.jobs != nil {
		close(e.jobs)
		e.wg.Wait()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flushLocked()
	e.publishMetricsLocked()
	return e.firstErr
}

// Abandon stops the engine WITHOUT flushing dirty tiles: the crash
// path for fault-injection harnesses, where cached writes are memory
// and a power cut loses them. Workers stop, the cache is discarded,
// and further calls fail with ErrEngineClosed. Production shutdown
// wants Close (or Server.Drain); Abandon deliberately forfeits every
// write the backend has not yet acknowledged.
func (e *Engine) Abandon() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.jobs != nil {
		close(e.jobs)
		e.wg.Wait()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.entries = map[TileKey]*entry{}
	e.lru = list.New()
	e.dirties.Store(0)
	e.publishMetricsLocked()
}

// Stats returns a point-in-time view of the counters. Each field is
// an atomic load; for a quiescent snapshot call it after Close (or
// after all engine users joined).
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Hits:            e.met.hits.Value(),
		Misses:          e.met.misses.Value(),
		Evictions:       e.met.evictions.Value(),
		Invalidations:   e.met.invalidations.Value(),
		Writebacks:      e.met.writebacks.Value(),
		WritebackErrors: e.met.writebackErrors.Value(),
		PrefetchIssued:  e.met.prefetchIssued.Value(),
		PrefetchUseful:  e.met.prefetchUseful.Value(),
	}
}

// timed reports whether fetch spans need wall-clock timestamps.
func (e *Engine) timed() bool { return e.trace != nil || e.fetchHist != nil }

// observeSpan records a completed span that started at t0: latency
// into the fetch histogram (tile reads only) and a trace event.
func (e *Engine) observeSpan(kind obs.Kind, name string, t0 time.Time, bytes int64) {
	d := time.Since(t0)
	if e.fetchHist != nil && (kind == obs.KindTileFetch || kind == obs.KindPrefetchDone) {
		e.fetchHist.Observe(d.Seconds())
	}
	if e.trace != nil {
		e.trace.Emit(obs.Event{Kind: kind, Name: name, Start: e.trace.Stamp(t0),
			Dur: d.Nanoseconds(), Bytes: bytes})
	}
}

// publishMetricsLocked adds the engine's lifetime counters into the
// attached registry under shared "ooc_engine_*" names, once. Engines
// sharing one registry (e.g. one per simulated processor) therefore
// aggregate, which is what the exposition should show.
func (e *Engine) publishMetricsLocked() {
	if e.reg == nil || e.published {
		return
	}
	e.published = true
	s := e.Stats()
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"ooc_engine_hits_total", "tile requests served from the cache", s.Hits},
		{"ooc_engine_misses_total", "tile requests that went to the backend", s.Misses},
		{"ooc_engine_evictions_total", "cache entries removed by capacity pressure", s.Evictions},
		{"ooc_engine_invalidations_total", "cache entries dropped by overlapping dirty tiles", s.Invalidations},
		{"ooc_engine_writebacks_total", "dirty tiles flushed to the backend", s.Writebacks},
		{"ooc_engine_writeback_errors_total", "tile write-backs that failed (retried while dirty)", s.WritebackErrors},
		{"ooc_engine_prefetch_issued_total", "async tile reads dispatched ahead of use", s.PrefetchIssued},
		{"ooc_engine_prefetch_useful_total", "tile requests that found their tile prefetched", s.PrefetchUseful},
	} {
		e.reg.Counter(c.name, c.help).Add(c.v)
	}
}

// Capacity returns the configured cache bound in tiles. Callers use it
// to size prefetch batches: prefetching into a cache that cannot hold
// the working set plus the prefetched tiles evicts entries before they
// are used, turning the overlap into extra backend reads.
func (e *Engine) Capacity() int { return e.capTiles }

// Resident returns the number of cached entries (tests/telemetry).
func (e *Engine) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// writebackLocked flushes one dirty entry (data tiles via WriteTile,
// accounting entries via TouchWrite) and marks it clean. On failure
// the entry STAYS dirty — the data still exists only in memory, so
// clearing the flag would silently drop an acknowledged write; the
// next flush/eviction/close retries, and once the backend heals the
// write-back succeeds.
func (e *Engine) writebackLocked(ent *entry) error {
	if ent.touch {
		ent.arr.TouchWrite(ent.box)
	} else {
		var t0 time.Time
		if e.trace != nil {
			t0 = time.Now()
		}
		if err := ent.tile.WriteTile(); err != nil {
			err = fmt.Errorf("ooc: engine write-back of %s %v: %w", ent.arr.Meta.Name, ent.box, err)
			if e.firstErr == nil {
				e.firstErr = err
			}
			e.met.writebackErrors.Inc()
			return err
		}
		if !t0.IsZero() {
			e.observeSpan(obs.KindWriteback, ent.arr.Meta.Name, t0, ent.box.Size()*ElemSize)
		}
	}
	if ent.dirty {
		ent.dirty = false
		e.dirties.Add(-1)
	}
	e.met.writebacks.Inc()
	return nil
}

// markDirtyLocked flips an entry dirty, keeping the dirty count exact.
func (e *Engine) markDirtyLocked(ent *entry) {
	if !ent.dirty {
		ent.dirty = true
		e.dirties.Add(1)
	}
}

// flushOverlapDirtyLocked makes the backend current for box: every
// dirty resident tile of the same array overlapping box (other than
// key itself) is written back, so a subsequent backend read observes
// all released writes. A write-back failure is returned — reading
// the backend anyway would serve data older than a released write.
func (e *Engine) flushOverlapDirtyLocked(ar *Array, box layout.Box, key TileKey) error {
	var first error
	for el := e.lru.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*entry)
		if ent.key != key && ent.arr == ar && ent.dirty && !ent.loading && ent.box.Overlaps(box) {
			if err := e.writebackLocked(ent); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// DirtyTiles returns the number of resident dirty tiles. It is a
// single atomic load — the sharded plane's fast path for deciding
// whether a sibling shard could possibly hold an overlapping dirty
// tile before taking its lock.
func (e *Engine) DirtyTiles() int64 { return e.dirties.Load() }

// FlushOverlapping writes back every dirty resident tile of ar that
// overlaps box (without syncing the backends). It is the cross-shard
// barrier the sharded plane runs on its sibling shards before the
// owning shard reads the backend: after it returns nil, a backend read
// of box observes every released overlapping write those shards held.
func (e *Engine) FlushOverlapping(ar *Array, box layout.Box) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	// "" is never a real tile key (tileKey always length-prefixes the
	// name), so no entry is exempted from the flush.
	return e.flushOverlapDirtyLocked(ar, box, "")
}

// InvalidateOverlapping drops every unpinned cache entry of ar whose
// box overlaps box, writing dirty ones back first (exactly the
// stale-copy rule a dirty release applies inside one engine, exported
// so the sharded plane can apply it across shard boundaries after a
// sibling shard's tile was released dirty).
func (e *Engine) InvalidateOverlapping(ar *Array, box layout.Box) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.invalidateOverlapBoxLocked(ar, box, nil)
}

// OverlapsDirty reports whether box overlaps a dirty resident tile of
// ar — the sharded plane's prefetch gate.
func (e *Engine) OverlapsDirty(ar *Array, box layout.Box) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.overlapsDirtyLocked(ar, box)
}

// overlapsDirtyLocked reports whether box overlaps any dirty tile of ar.
func (e *Engine) overlapsDirtyLocked(ar *Array, box layout.Box) bool {
	for _, ent := range e.entries {
		if ent.arr == ar && ent.dirty && ent.box.Overlaps(box) {
			return true
		}
	}
	return false
}

// invalidateOverlapLocked drops every other cache entry of the same
// array whose box overlaps the newly dirtied entry: resident clean
// copies are stale, and in-flight prefetches may have read pre-write
// data (they are marked dropped; the loader discards the result).
// Pinned entries are skipped — overlapping them is outside the engine's
// consistency contract (see the Engine doc).
func (e *Engine) invalidateOverlapLocked(dirtied *entry) {
	e.invalidateOverlapBoxLocked(dirtied.arr, dirtied.box, dirtied)
}

// invalidateOverlapBoxLocked is invalidateOverlapLocked generalized to
// an (array, box) pair with an optional exempted entry — nil when the
// dirtying happened in another shard's cache.
func (e *Engine) invalidateOverlapBoxLocked(arr *Array, box layout.Box, except *entry) {
	var prev *list.Element
	for el := e.lru.Back(); el != nil; el = prev {
		prev = el.Prev() // removeLocked below unlinks el
		ent := el.Value.(*entry)
		if ent == except || ent.arr != arr || ent.pins > 0 || !ent.box.Overlaps(box) {
			continue
		}
		if ent.dirty && !ent.loading {
			// Two overlapping dirty tiles violate the contract; flushing
			// before dropping at least loses no released write entirely.
			// If even the flush fails, keep the entry — dropping it
			// would lose the write outright.
			if e.writebackLocked(ent) != nil {
				continue
			}
		}
		if ent.loading {
			ent.dropped = true
		}
		e.removeLocked(ent)
		e.met.invalidations.Inc()
	}
}

// evictLocked enforces the capacity bound: least-recently-used
// unpinned, non-loading entries are written back (when dirty) and
// dropped until the cache fits.
func (e *Engine) evictLocked() {
	for len(e.entries) > e.capTiles {
		evicted := false
		for el := e.lru.Back(); el != nil; el = el.Prev() {
			ent := el.Value.(*entry)
			if ent.pins > 0 || ent.loading {
				continue
			}
			if ent.dirty {
				if e.writebackLocked(ent) != nil {
					// Evicting a tile whose write-back failed would lose
					// the only copy of its data; keep it dirty and try
					// another victim. The cache may transiently exceed
					// its bound while the backend is unhealthy.
					continue
				}
			}
			e.removeLocked(ent)
			e.met.evictions.Inc()
			if e.trace != nil {
				e.trace.Emit(obs.Event{Kind: obs.KindEviction, Name: ent.arr.Meta.Name,
					Start: e.trace.Now(), Bytes: ent.box.Size() * ElemSize})
			}
			evicted = true
			break
		}
		if !evicted {
			return // everything pinned or loading; shrink at release
		}
	}
}

// removeLocked deletes the entry from the map and LRU list.
func (e *Engine) removeLocked(ent *entry) {
	if ent.dirty {
		ent.dirty = false
		e.dirties.Add(-1)
	}
	delete(e.entries, ent.key)
	if ent.elem != nil {
		e.lru.Remove(ent.elem)
		ent.elem = nil
	}
}
