package ooc

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"outcore/internal/layout"
)

// DefaultCacheTiles is the tile-cache capacity used when EngineOptions
// leaves CacheTiles unset.
const DefaultCacheTiles = 8

// ErrEngineClosed is returned by operations on a closed Engine.
var ErrEngineClosed = errors.New("ooc: engine closed")

// EngineOptions configures a concurrent tile engine.
type EngineOptions struct {
	// Workers sets the I/O worker-pool size. 0 disables the pool:
	// every miss is serviced synchronously on the calling goroutine and
	// Prefetch becomes a no-op (the deterministic mode golden-trace
	// tests rely on).
	Workers int
	// CacheTiles bounds the number of resident tiles (LRU eviction;
	// <= 0 means DefaultCacheTiles). Pinned tiles are never evicted, so
	// the cache may transiently exceed the bound while a tile set is in
	// use; it shrinks back at release.
	CacheTiles int
}

// EngineStats counts cache and prefetch activity.
type EngineStats struct {
	Hits           int64 // acquires/touches served from cache
	Misses         int64 // acquires/touches that went to the backend
	Evictions      int64 // entries removed by capacity pressure
	Invalidations  int64 // entries dropped because an overlapping tile was dirtied
	Writebacks     int64 // dirty tiles flushed to the backend
	PrefetchIssued int64 // async tile reads dispatched ahead of use
	PrefetchUseful int64 // acquires that found their tile prefetched
}

// Acquires returns the total tile requests seen by the cache.
func (s EngineStats) Acquires() int64 { return s.Hits + s.Misses }

// HitRate returns Hits / Acquires (0 when idle).
func (s EngineStats) HitRate() float64 {
	if a := s.Acquires(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// OverlapFactor returns the fraction of tile requests whose backend
// read was issued ahead of use (and therefore overlapped with compute):
// PrefetchUseful / Acquires.
func (s EngineStats) OverlapFactor() float64 {
	if a := s.Acquires(); a > 0 {
		return float64(s.PrefetchUseful) / float64(a)
	}
	return 0
}

// entry is one cached tile. An entry is in exactly one of three states:
// loading (ready != nil, loading true; a goroutine is reading it),
// resident (tile != nil, or touch true for data-less accounting
// entries), or gone (removed from the map; dropped marks removal that
// happened while loading so the loader discards its result).
type entry struct {
	key  TileKey
	arr  *Array
	box  layout.Box
	tile *Tile

	touch      bool // accounting-only entry (dry-run disks)
	dirty      bool
	pins       int
	loading    bool
	dropped    bool
	prefetched bool
	ready      chan struct{} // closed when loading finishes
	elem       *list.Element
}

// Engine is a concurrent tile engine: a size-bounded LRU tile cache
// with write-back dirty tracking in front of a Disk, plus an optional
// worker pool that overlaps independent tile fetches and services
// asynchronous prefetches.
//
// Consistency contract: concurrent pinned tiles whose boxes overlap may
// not include a tile that is released dirty (the codegen schedule
// guarantees this: a written array has a single access-pattern group).
// Under that contract the engine is linearizable with the sequential
// ReadTile/WriteTile runtime: acquiring a box always observes every
// previously released overlapping write, because dirty overlapping
// tiles are flushed before a miss reads the backend and overlapping
// cache entries (including in-flight prefetches) are invalidated when a
// tile is dirtied.
type Engine struct {
	disk     *Disk
	workers  int
	capTiles int

	mu       sync.Mutex
	entries  map[TileKey]*entry
	lru      *list.List // front = most recently used
	stats    EngineStats
	closed   bool
	firstErr error // first asynchronous write-back failure

	jobs chan func()
	wg   sync.WaitGroup
}

// NewEngine starts an engine over the disk.
func NewEngine(d *Disk, o EngineOptions) *Engine {
	if o.CacheTiles <= 0 {
		o.CacheTiles = DefaultCacheTiles
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	e := &Engine{
		disk:     d,
		workers:  o.Workers,
		capTiles: o.CacheTiles,
		entries:  map[TileKey]*entry{},
		lru:      list.New(),
	}
	if e.workers > 0 {
		e.jobs = make(chan func(), 4*e.workers+16)
		for i := 0; i < e.workers; i++ {
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				for job := range e.jobs {
					job()
				}
			}()
		}
	}
	return e
}

// Handle is a pinned cached tile. The tile stays resident (and is never
// evicted) until Release.
type Handle struct {
	eng      *Engine
	ent      *entry
	released bool
}

// Tile returns the pinned in-memory tile.
func (h *Handle) Tile() *Tile { return h.ent.tile }

// Acquire returns the tile for (array, box), pinned: from cache on a
// hit (including tiles still being prefetched, which it waits for), or
// read from the backend on a miss. Concurrent acquires of the same key
// share one backend read and one in-memory tile.
func (e *Engine) Acquire(ar *Array, box layout.Box) (*Handle, error) {
	box = box.Clip(ar.Meta.Dims)
	key := tileKey(ar.Meta.Name, box)
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, ErrEngineClosed
		}
		if ent, ok := e.entries[key]; ok {
			if ent.loading {
				ready := ent.ready
				e.mu.Unlock()
				<-ready
				continue // resident now, or dropped: re-resolve
			}
			ent.pins++
			e.stats.Hits++
			if ent.prefetched {
				e.stats.PrefetchUseful++
				ent.prefetched = false
			}
			e.lru.MoveToFront(ent.elem)
			e.mu.Unlock()
			return &Handle{eng: e, ent: ent}, nil
		}
		// Miss: reserve the key, make the backend current for this box,
		// then read outside the lock so independent fetches overlap.
		e.stats.Misses++
		ent := &entry{key: key, arr: ar, box: box, pins: 1, loading: true, ready: make(chan struct{})}
		e.entries[key] = ent
		ent.elem = e.lru.PushFront(ent)
		e.flushOverlapDirtyLocked(ar, box, key)
		e.mu.Unlock()

		t, err := ar.ReadTile(box)

		e.mu.Lock()
		ent.loading = false
		close(ent.ready)
		if err != nil {
			e.removeLocked(ent)
			e.mu.Unlock()
			return nil, err
		}
		ent.tile = t
		e.evictLocked()
		e.mu.Unlock()
		return &Handle{eng: e, ent: ent}, nil
	}
}

// TileReq names one tile to acquire.
type TileReq struct {
	Arr *Array
	Box layout.Box
}

// AcquireAll acquires every requested tile. With a worker-enabled
// engine the misses are fetched concurrently — the overlap that makes
// independent tile reads cheaper than their sum.
func (e *Engine) AcquireAll(reqs []TileReq) ([]*Handle, error) {
	hs := make([]*Handle, len(reqs))
	if e.workers == 0 || len(reqs) < 2 {
		for i, r := range reqs {
			h, err := e.Acquire(r.Arr, r.Box)
			if err != nil {
				e.releaseAll(hs)
				return nil, err
			}
			hs[i] = h
		}
		return hs, nil
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r TileReq) {
			defer wg.Done()
			hs[i], errs[i] = e.Acquire(r.Arr, r.Box)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			e.releaseAll(hs)
			return nil, err
		}
	}
	return hs, nil
}

func (e *Engine) releaseAll(hs []*Handle) {
	for _, h := range hs {
		if h != nil {
			e.Release(h, false)
		}
	}
}

// Release unpins the tile; dirty records that the caller modified it.
// A dirty tile stays cached (so later acquires of the same box reuse
// the updated copy) and is written back on eviction or Flush; marking
// it dirty invalidates every other cached or in-flight tile of the
// same array that overlaps it, since their contents are now stale.
func (e *Engine) Release(h *Handle, dirty bool) {
	if h.released {
		panic("ooc: tile handle released twice")
	}
	h.released = true
	e.mu.Lock()
	defer e.mu.Unlock()
	ent := h.ent
	if ent.pins <= 0 {
		panic("ooc: release of unpinned tile")
	}
	ent.pins--
	if dirty {
		ent.dirty = true
		e.invalidateOverlapLocked(ent)
	}
	e.lru.MoveToFront(ent.elem)
	e.evictLocked()
}

// Prefetch asynchronously reads (array, box) into the cache so a later
// Acquire hits without waiting on the backend. It is a no-op without
// workers, when the tile is already cached or in flight, or when the
// box overlaps a dirty tile (the later Acquire will flush and read it
// consistently instead).
func (e *Engine) Prefetch(ar *Array, box layout.Box) {
	if e.workers == 0 {
		return
	}
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	key := tileKey(ar.Meta.Name, box)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if _, ok := e.entries[key]; ok {
		e.mu.Unlock()
		return
	}
	if e.overlapsDirtyLocked(ar, box) {
		e.mu.Unlock()
		return
	}
	ent := &entry{key: key, arr: ar, box: box, loading: true, prefetched: true, ready: make(chan struct{})}
	e.entries[key] = ent
	ent.elem = e.lru.PushFront(ent)
	e.stats.PrefetchIssued++
	e.mu.Unlock()

	e.jobs <- func() {
		t, err := ar.ReadTile(box)
		e.mu.Lock()
		defer e.mu.Unlock()
		ent.loading = false
		defer close(ent.ready)
		if ent.dropped {
			return // invalidated while in flight; discard
		}
		if err != nil {
			e.removeLocked(ent) // next Acquire retries and surfaces the error
			return
		}
		ent.tile = t
		e.evictLocked()
	}
}

// Touch is the accounting-only counterpart of Acquire+Release for
// dry-run (data-less) disks: a miss charges TouchRead, a write marks
// the entry dirty (TouchWrite is charged once, at eviction or Flush),
// and a hit charges nothing — so cached dry-run schedules report the
// calls the cached engine would really issue.
func (e *Engine) Touch(ar *Array, box layout.Box, write bool) {
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	key := tileKey(ar.Meta.Name, box)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.entries[key]; ok && !ent.loading {
		e.stats.Hits++
		e.lru.MoveToFront(ent.elem)
		if write && !ent.dirty {
			ent.dirty = true
			e.invalidateOverlapLocked(ent)
		}
		return
	}
	e.stats.Misses++
	e.flushOverlapDirtyLocked(ar, box, key)
	ar.TouchRead(box)
	ent := &entry{key: key, arr: ar, box: box, touch: true}
	e.entries[key] = ent
	ent.elem = e.lru.PushFront(ent)
	if write {
		ent.dirty = true
		e.invalidateOverlapLocked(ent)
	}
	e.evictLocked()
}

// Flush writes every unpinned dirty tile back to the backend. Cached
// tiles stay resident (clean).
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range e.entries {
		if ent.dirty && ent.pins == 0 && !ent.loading {
			e.writebackLocked(ent)
		}
	}
	return e.firstErr
}

// Close drains the worker pool, flushes dirty tiles and returns the
// first write-back error, if any. Further engine calls fail.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.firstErr
		e.mu.Unlock()
		return err
	}
	e.closed = true
	e.mu.Unlock()
	if e.jobs != nil {
		close(e.jobs)
		e.wg.Wait()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range e.entries {
		if ent.dirty && ent.pins == 0 && !ent.loading {
			e.writebackLocked(ent)
		}
	}
	return e.firstErr
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Capacity returns the configured cache bound in tiles. Callers use it
// to size prefetch batches: prefetching into a cache that cannot hold
// the working set plus the prefetched tiles evicts entries before they
// are used, turning the overlap into extra backend reads.
func (e *Engine) Capacity() int { return e.capTiles }

// Resident returns the number of cached entries (tests/telemetry).
func (e *Engine) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// writebackLocked flushes one dirty entry (data tiles via WriteTile,
// accounting entries via TouchWrite) and marks it clean.
func (e *Engine) writebackLocked(ent *entry) {
	if ent.touch {
		ent.arr.TouchWrite(ent.box)
	} else if err := ent.tile.WriteTile(); err != nil && e.firstErr == nil {
		e.firstErr = fmt.Errorf("ooc: engine write-back of %s %v: %w", ent.arr.Meta.Name, ent.box, err)
	}
	ent.dirty = false
	e.stats.Writebacks++
}

// flushOverlapDirtyLocked makes the backend current for box: every
// dirty resident tile of the same array overlapping box (other than
// key itself) is written back, so a subsequent backend read observes
// all released writes.
func (e *Engine) flushOverlapDirtyLocked(ar *Array, box layout.Box, key TileKey) {
	for _, ent := range e.entries {
		if ent.key != key && ent.arr == ar && ent.dirty && !ent.loading && ent.box.Overlaps(box) {
			e.writebackLocked(ent)
		}
	}
}

// overlapsDirtyLocked reports whether box overlaps any dirty tile of ar.
func (e *Engine) overlapsDirtyLocked(ar *Array, box layout.Box) bool {
	for _, ent := range e.entries {
		if ent.arr == ar && ent.dirty && ent.box.Overlaps(box) {
			return true
		}
	}
	return false
}

// invalidateOverlapLocked drops every other cache entry of the same
// array whose box overlaps the newly dirtied entry: resident clean
// copies are stale, and in-flight prefetches may have read pre-write
// data (they are marked dropped; the loader discards the result).
// Pinned entries are skipped — overlapping them is outside the engine's
// consistency contract (see the Engine doc).
func (e *Engine) invalidateOverlapLocked(dirtied *entry) {
	for _, ent := range e.entries {
		if ent == dirtied || ent.arr != dirtied.arr || ent.pins > 0 || !ent.box.Overlaps(dirtied.box) {
			continue
		}
		if ent.dirty && !ent.loading {
			// Two overlapping dirty tiles violate the contract; flushing
			// before dropping at least loses no released write entirely.
			e.writebackLocked(ent)
		}
		if ent.loading {
			ent.dropped = true
		}
		e.removeLocked(ent)
		e.stats.Invalidations++
	}
}

// evictLocked enforces the capacity bound: least-recently-used
// unpinned, non-loading entries are written back (when dirty) and
// dropped until the cache fits.
func (e *Engine) evictLocked() {
	for len(e.entries) > e.capTiles {
		evicted := false
		for el := e.lru.Back(); el != nil; el = el.Prev() {
			ent := el.Value.(*entry)
			if ent.pins > 0 || ent.loading {
				continue
			}
			if ent.dirty {
				e.writebackLocked(ent)
			}
			e.removeLocked(ent)
			e.stats.Evictions++
			evicted = true
			break
		}
		if !evicted {
			return // everything pinned or loading; shrink at release
		}
	}
}

// removeLocked deletes the entry from the map and LRU list.
func (e *Engine) removeLocked(ent *entry) {
	delete(e.entries, ent.key)
	if ent.elem != nil {
		e.lru.Remove(ent.elem)
		ent.elem = nil
	}
}
