package ooc

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(0).Dir(dir)
	defer d.Close()
	meta := ir.NewArray("A", 8, 8)
	arr, err := d.CreateArray(meta, layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	arr.Fill(func(c []int64) float64 { return float64(c[0]*8 + c[1]) })
	// The backing file must exist with the right size.
	fi, err := os.Stat(filepath.Join(dir, "A.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 64*ElemSize {
		t.Errorf("file size = %d", fi.Size())
	}
	// Tile round trip through real file I/O.
	box := layout.NewBox([]int64{2, 1}, []int64{5, 7})
	tile, err := arr.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			if got := tile.Get([]int64{i, j}); got != float64(i*8+j) {
				t.Fatalf("tile(%d,%d) = %v", i, j, got)
			}
			tile.Set([]int64{i, j}, -1)
		}
	}
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}
	if arr.At([]int64{3, 3}) != -1 || arr.At([]int64{0, 0}) != 0 {
		t.Error("file-backed write-back wrong")
	}
}

func TestFileBackendMatchesMemory(t *testing.T) {
	meta := ir.NewArray("A", 12, 10)
	l := layout.Diagonal(12, 10)
	mem := NewDisk(16)
	file := NewDisk(16).Dir(t.TempDir())
	defer file.Close()
	am, _ := mem.CreateArray(meta, l)
	af, err := file.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, meta.Len())
	for i := range vals {
		vals[i] = rng.Float64()
	}
	fill := func(c []int64) float64 { return vals[c[0]*10+c[1]] }
	am.Fill(fill)
	af.Fill(fill)
	box := layout.NewBox([]int64{1, 1}, []int64{9, 9})
	tm, err := am.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := af.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			if tm.Get([]int64{i, j}) != tf.Get([]int64{i, j}) {
				t.Fatalf("mem/file mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Identical accounting regardless of backend.
	if mem.Stats != file.Stats {
		t.Errorf("stats diverge: mem %+v file %+v", mem.Stats, file.Stats)
	}
}

func TestNoBackingDisk(t *testing.T) {
	d := NewDisk(0).NoBacking()
	meta := ir.NewArray("A", 4, 4)
	arr, err := d.CreateArray(meta, layout.RowMajor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Accounting works...
	arr.TouchRead(layout.NewBox([]int64{0, 0}, []int64{2, 4}))
	arr.TouchWrite(layout.NewBox([]int64{0, 0}, []int64{2, 4}))
	if d.Stats.ReadCalls != 1 || d.Stats.WriteCalls != 1 {
		t.Errorf("stats = %+v", d.Stats)
	}
	// ...data access fails loudly.
	if _, err := arr.ReadTile(layout.NewBox([]int64{0, 0}, []int64{2, 2})); err == nil {
		t.Error("null-backed read succeeded")
	}
}

func TestMemBackendBounds(t *testing.T) {
	m := newMemBackend(4)
	buf := make([]float64, 2)
	if err := m.ReadAt(buf, 3); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.WriteAt(buf, -1); err == nil {
		t.Error("negative-offset write accepted")
	}
	if m.Size() != 4 {
		t.Error("size wrong")
	}
	if err := m.Close(); err != nil {
		t.Error(err)
	}
}
