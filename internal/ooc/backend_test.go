package ooc

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(0).Dir(dir)
	defer d.Close()
	meta := ir.NewArray("A", 8, 8)
	arr, err := d.CreateArray(meta, layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	arr.Fill(func(c []int64) float64 { return float64(c[0]*8 + c[1]) })
	// The backing file must exist with the right size.
	fi, err := os.Stat(filepath.Join(dir, "A.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 64*ElemSize {
		t.Errorf("file size = %d", fi.Size())
	}
	// Tile round trip through real file I/O.
	box := layout.NewBox([]int64{2, 1}, []int64{5, 7})
	tile, err := arr.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			if got := tile.Get([]int64{i, j}); got != float64(i*8+j) {
				t.Fatalf("tile(%d,%d) = %v", i, j, got)
			}
			tile.Set([]int64{i, j}, -1)
		}
	}
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}
	if arr.At([]int64{3, 3}) != -1 || arr.At([]int64{0, 0}) != 0 {
		t.Error("file-backed write-back wrong")
	}
}

func TestFileBackendMatchesMemory(t *testing.T) {
	meta := ir.NewArray("A", 12, 10)
	l := layout.Diagonal(12, 10)
	mem := NewDisk(16)
	file := NewDisk(16).Dir(t.TempDir())
	defer file.Close()
	am, _ := mem.CreateArray(meta, l)
	af, err := file.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, meta.Len())
	for i := range vals {
		vals[i] = rng.Float64()
	}
	fill := func(c []int64) float64 { return vals[c[0]*10+c[1]] }
	am.Fill(fill)
	af.Fill(fill)
	box := layout.NewBox([]int64{1, 1}, []int64{9, 9})
	tm, err := am.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := af.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			if tm.Get([]int64{i, j}) != tf.Get([]int64{i, j}) {
				t.Fatalf("mem/file mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Identical accounting regardless of backend.
	if mem.Stats != file.Stats {
		t.Errorf("stats diverge: mem %+v file %+v", mem.Stats, file.Stats)
	}
}

func TestNoBackingDisk(t *testing.T) {
	d := NewDisk(0).NoBacking()
	meta := ir.NewArray("A", 4, 4)
	arr, err := d.CreateArray(meta, layout.RowMajor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Accounting works...
	arr.TouchRead(layout.NewBox([]int64{0, 0}, []int64{2, 4}))
	arr.TouchWrite(layout.NewBox([]int64{0, 0}, []int64{2, 4}))
	if d.Stats.ReadCalls != 1 || d.Stats.WriteCalls != 1 {
		t.Errorf("stats = %+v", d.Stats)
	}
	// ...data access fails loudly.
	if _, err := arr.ReadTile(layout.NewBox([]int64{0, 0}, []int64{2, 2})); err == nil {
		t.Error("null-backed read succeeded")
	}
}

func TestMemBackendBounds(t *testing.T) {
	m := newMemBackend(4)
	buf := make([]float64, 2)
	if err := m.ReadAt(buf, 3); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.WriteAt(buf, -1); err == nil {
		t.Error("negative-offset write accepted")
	}
	if m.Size() != 4 {
		t.Error("size wrong")
	}
	if err := m.Close(); err != nil {
		t.Error(err)
	}
}

func TestFileBackendSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	meta := ir.NewArray("A", 4, 4)
	l := layout.RowMajor(4, 4)
	d1 := NewDisk(0).Dir(dir)
	if _, err := d1.CreateArray(meta, l); err != nil {
		t.Fatal(err)
	}
	// A second disk opening the same backing file must fail with a
	// clear error naming the lock, not truncate live data.
	d2 := NewDisk(0).Dir(dir)
	if _, err := d2.CreateArray(meta, l); err == nil {
		t.Fatal("second open of a locked backing file succeeded")
	} else if !strings.Contains(err.Error(), "single-writer") || !strings.Contains(err.Error(), "A.dat.lock") {
		t.Errorf("lock error unhelpful: %v", err)
	}
	// Close releases the lock; the file becomes reopenable.
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "A.dat.lock")); !os.IsNotExist(err) {
		t.Errorf("lock file survives Close: %v", err)
	}
	d3 := NewDisk(0).Dir(dir)
	if _, err := d3.CreateArray(meta, l); err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackendKeepExisting(t *testing.T) {
	dir := t.TempDir()
	meta := ir.NewArray("A", 4, 4)
	l := layout.RowMajor(4, 4)
	d1 := NewDisk(0).Dir(dir)
	arr, err := d1.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	arr.Fill(func(c []int64) float64 { return float64(c[0]*4 + c[1]) })
	if err := d1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	// Default reopen truncates (zero-filled)...
	d2 := NewDisk(0).Dir(dir)
	arr2, err := d2.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	if got := arr2.At([]int64{3, 3}); got != 0 {
		t.Errorf("truncating open kept data: %v", got)
	}
	arr2.Fill(func(c []int64) float64 { return float64(c[0]*4 + c[1]) })
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// ...KeepExisting preserves contents across the reopen.
	d3 := NewDisk(0).Dir(dir).KeepExisting()
	arr3, err := d3.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := arr3.At([]int64{3, 3}); got != 15 {
		t.Errorf("KeepExisting open lost data: got %v, want 15", got)
	}
}

// countingBackend counts backend calls; WrapBackend installs it.
type countingBackend struct {
	Backend
	reads, writes, syncs atomic.Int64
}

func (c *countingBackend) ReadAt(buf []float64, off int64) error {
	c.reads.Add(1)
	return c.Backend.ReadAt(buf, off)
}
func (c *countingBackend) WriteAt(buf []float64, off int64) error {
	c.writes.Add(1)
	return c.Backend.WriteAt(buf, off)
}
func (c *countingBackend) Sync() error {
	c.syncs.Add(1)
	return c.Backend.Sync()
}

func TestWrapBackendAndEngineSync(t *testing.T) {
	var cb *countingBackend
	d := NewDisk(0).WrapBackend(func(name string, b Backend) Backend {
		cb = &countingBackend{Backend: b}
		return cb
	})
	meta := ir.NewArray("A", 4, 4)
	arr, err := d.CreateArray(meta, layout.RowMajor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(d, EngineOptions{CacheTiles: 2})
	box := layout.NewBox([]int64{0, 0}, []int64{4, 4})
	h, err := eng.Acquire(arr, box)
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{1, 1}, 7)
	eng.Release(h, true)
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if cb.reads.Load() == 0 || cb.writes.Load() == 0 {
		t.Errorf("wrap hook not on the I/O path: reads=%d writes=%d", cb.reads.Load(), cb.writes.Load())
	}
	// Flush and Close each sync the backends (the durability point the
	// serving layer's drain relies on).
	if cb.syncs.Load() == 0 {
		t.Error("Engine.Flush did not sync the backend")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if arr.At([]int64{1, 1}) != 7 {
		t.Error("dirty tile lost")
	}
}
