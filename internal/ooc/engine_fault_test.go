package ooc

import (
	"errors"
	"testing"

	"outcore/internal/layout"
)

// flakyBackend fails writes and/or syncs while tripped; heal() makes
// it healthy again. It is the minimal stand-in for internal/faultfs
// (which lives above this package and cannot be imported here).
type flakyBackend struct {
	Backend
	failWrites bool
	failSyncs  bool
	writeErrs  int
	syncErrs   int
}

var errFlaky = errors.New("flaky backend: injected failure")

func (f *flakyBackend) WriteAt(buf []float64, off int64) error {
	if f.failWrites {
		f.writeErrs++
		return errFlaky
	}
	return f.Backend.WriteAt(buf, off)
}

func (f *flakyBackend) Sync() error {
	if f.failSyncs {
		f.syncErrs++
		return errFlaky
	}
	return f.Backend.Sync()
}

// flakyEngine builds an 8x8 array whose backend fails on demand.
func flakyEngine(t *testing.T, opts EngineOptions) (*Engine, *Array, *flakyBackend) {
	t.Helper()
	fb := &flakyBackend{}
	d := NewDisk(0).WrapBackend(func(name string, b Backend) Backend {
		fb.Backend = b
		return fb
	})
	_, arr := mk2D(t, d, "A", 8, 8, layout.RowMajor(8, 8))
	return NewEngine(d, opts), arr, fb
}

// TestFlushErrorKeepsTileDirtyAndRetries is the fix the dst harness
// leans on: a failed write-back must keep the tile dirty (its data
// exists nowhere else), and a later Flush against a healed backend
// must both succeed and land the data.
func TestFlushErrorKeepsTileDirtyAndRetries(t *testing.T) {
	e, arr, fb := flakyEngine(t, EngineOptions{CacheTiles: 4})
	defer e.Close()

	b := box2(0, 0, 2, 2)
	h, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{1, 1}, 42)
	e.Release(h, true)

	fb.failWrites = true
	if err := e.Flush(); err == nil {
		t.Fatal("Flush with a failing backend reported success")
	}
	if s := e.Stats(); s.WritebackErrors == 0 {
		t.Errorf("stats = %+v, want WritebackErrors > 0", s)
	}

	// Heal. Flush must no longer be poisoned by the earlier failure
	// (non-sticky) and must write the still-dirty tile back.
	fb.failWrites = false
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if got := arr.At([]int64{1, 1}); got != 42 {
		t.Fatalf("backend value = %v after healed flush, want 42", got)
	}
	if s := e.Stats(); s.Writebacks == 0 {
		t.Errorf("stats = %+v, want a successful write-back recorded", s)
	}
}

// TestEvictionNeverDropsFailedWriteback: under write failures the
// cache must hold on to dirty tiles even past its capacity bound
// rather than discard the only copy of released writes.
func TestEvictionNeverDropsFailedWriteback(t *testing.T) {
	e, arr, fb := flakyEngine(t, EngineOptions{CacheTiles: 1})
	defer e.Close()

	b := box2(0, 0, 2, 2)
	h, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{0, 0}, 7)
	fb.failWrites = true
	e.Release(h, true) // over capacity: eviction tries and fails to write back

	// Acquire a different tile: capacity pressure tries to evict the
	// dirty one, fails to write it back, and must pick the clean
	// victim instead (or none). The dirty tile stays resident with
	// its data intact.
	h2, err := e.Acquire(arr, box2(4, 4, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h2, false)
	hd, err := e.Acquire(arr, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := hd.Tile().Get([]int64{0, 0}); got != 7 {
		t.Fatalf("dirty tile value = %v while backend unhealthy, want 7", got)
	}
	e.Release(hd, true)

	fb.failWrites = false
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if got := arr.At([]int64{0, 0}); got != 7 {
		t.Fatalf("backend value = %v, want 7 (write survived the unhealthy window)", got)
	}
}

// TestAcquireFailsWhenOverlapFlushFails: a miss that cannot make the
// backend current (the overlapping dirty tile will not write back)
// must fail rather than return a tile missing a released write.
func TestAcquireFailsWhenOverlapFlushFails(t *testing.T) {
	e, arr, fb := flakyEngine(t, EngineOptions{CacheTiles: 8})
	defer e.Close()

	h, err := e.Acquire(arr, box2(0, 0, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{1, 1}, 5)
	e.Release(h, true)

	fb.failWrites = true
	if _, err := e.Acquire(arr, box2(1, 1, 3, 3)); err == nil {
		t.Fatal("overlapping acquire succeeded without flushing the dirty tile")
	}

	fb.failWrites = false
	h2, err := e.Acquire(arr, box2(1, 1, 3, 3))
	if err != nil {
		t.Fatalf("acquire after heal: %v", err)
	}
	if got := h2.Tile().Get([]int64{1, 1}); got != 5 {
		t.Fatalf("tile value = %v, want the released write 5", got)
	}
	e.Release(h2, false)
}

// TestFlushSyncErrorSurfaces: a sync failure is a flush failure (the
// writes are not durable), and a healed retry succeeds.
func TestFlushSyncErrorSurfaces(t *testing.T) {
	e, arr, fb := flakyEngine(t, EngineOptions{CacheTiles: 4})
	defer e.Close()

	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	e.Release(h, true)

	fb.failSyncs = true
	if err := e.Flush(); err == nil {
		t.Fatal("Flush with failing sync reported success")
	}
	fb.failSyncs = false
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush after sync heal: %v", err)
	}
}

// TestAbandonDropsCacheWithoutFlushing: the crash path writes nothing.
func TestAbandonDropsCacheWithoutFlushing(t *testing.T) {
	e, arr, fb := flakyEngine(t, EngineOptions{CacheTiles: 4, Workers: 2})

	h, err := e.Acquire(arr, box2(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Tile().Set([]int64{0, 0}, 9)
	e.Release(h, true)

	before := fb.writeErrs
	fb.failWrites = true // any write-back attempt would be visible
	e.Abandon()
	if fb.writeErrs != before {
		t.Fatal("Abandon attempted a write-back")
	}
	if got := arr.At([]int64{0, 0}); got != 0 {
		t.Fatalf("backend value = %v after abandon, want 0 (write lost, as a crash loses it)", got)
	}
	if _, err := e.Acquire(arr, box2(0, 0, 2, 2)); err != ErrEngineClosed {
		t.Fatalf("Acquire after Abandon = %v, want ErrEngineClosed", err)
	}
	e.Abandon() // idempotent
}
