package ooc

import (
	"fmt"
	"path/filepath"
)

// DefaultStripeUnit is the striping unit, in elements, used when
// Disk.Stripe is given a non-positive unit: 1024 elements = 8 KiB per
// stripe unit, in the spirit of the paper's PFS stripe sizes.
const DefaultStripeUnit = 1024

// Stripe configures the disk to stripe each subsequently created
// array's backend n ways: elements are distributed round-robin in
// units of unitElems (DefaultStripeUnit when <= 0) across n
// sub-backends — separate files under Dir ("<name>.s<i>.dat", each
// with its own single-writer lock), or separate memory segments
// otherwise. This is the PFS-style layout the paper's arrays live on:
// one logical file served by n I/O nodes. Striping sits below the
// Backend interface, so accounting, fault wrapping (WrapBackend
// applies to the composed backend) and tile semantics are unchanged.
// Like the other setup helpers it must be called before arrays are
// created; reopening striped files with KeepExisting requires the same
// (n, unitElems) the writer used.
func (d *Disk) Stripe(n int, unitElems int64) *Disk {
	d.stripeN = n
	if unitElems <= 0 {
		unitElems = DefaultStripeUnit
	}
	d.stripeUnit = unitElems
	return d
}

// stripedBackend composes n sub-backends into one element space:
// global element g lives in stripe (g/unit) mod n at local offset
// (g/unit)/n*unit + g mod unit. Each sub-backend is over-allocated to
// ceil(units/n) whole units, so every in-range global access maps to
// an in-range local one.
type stripedBackend struct {
	stripes []Backend
	unit    int64
	size    int64 // logical size in elements
}

// newStripedBackend builds the composed backend for size elements.
// make constructs one sub-backend of the given capacity; on failure,
// already-built stripes are closed.
func newStripedBackend(size, unit int64, n int, mk func(i int, elems int64) (Backend, error)) (Backend, error) {
	units := (size + unit - 1) / unit
	perUnits := (units + int64(n) - 1) / int64(n)
	if perUnits < 1 {
		perUnits = 1
	}
	sb := &stripedBackend{unit: unit, size: size}
	for i := 0; i < n; i++ {
		b, err := mk(i, perUnits*unit)
		if err != nil {
			for _, prev := range sb.stripes {
				prev.Close()
			}
			return nil, err
		}
		sb.stripes = append(sb.stripes, b)
	}
	return sb, nil
}

// each splits the access [off, off+len(buf)) into maximal per-stripe
// segments and applies op to every one.
func (sb *stripedBackend) each(buf []float64, off int64, op func(b Backend, seg []float64, local int64) error) error {
	if off < 0 || off+int64(len(buf)) > sb.size {
		return fmt.Errorf("ooc: striped access [%d,%d) out of range %d", off, off+int64(len(buf)), sb.size)
	}
	n := int64(len(sb.stripes))
	for done := int64(0); done < int64(len(buf)); {
		g := off + done
		u := g / sb.unit
		within := g % sb.unit
		run := sb.unit - within
		if rem := int64(len(buf)) - done; run > rem {
			run = rem
		}
		local := (u/n)*sb.unit + within
		if err := op(sb.stripes[u%n], buf[done:done+run], local); err != nil {
			return err
		}
		done += run
	}
	return nil
}

func (sb *stripedBackend) ReadAt(buf []float64, off int64) error {
	return sb.each(buf, off, func(b Backend, seg []float64, local int64) error {
		return b.ReadAt(seg, local)
	})
}

func (sb *stripedBackend) WriteAt(buf []float64, off int64) error {
	return sb.each(buf, off, func(b Backend, seg []float64, local int64) error {
		return b.WriteAt(seg, local)
	})
}

func (sb *stripedBackend) Size() int64 { return sb.size }

func (sb *stripedBackend) Sync() error {
	var first error
	for _, b := range sb.stripes {
		if err := b.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (sb *stripedBackend) Close() error {
	var first error
	for _, b := range sb.stripes {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newStripedDiskBackend builds the striped backend a configured disk
// gives a new array: file stripes under dir when set, memory stripes
// otherwise.
func (d *Disk) newStripedDiskBackend(name string, n int64) (Backend, error) {
	return newStripedBackend(n, d.stripeUnit, d.stripeN, func(i int, elems int64) (Backend, error) {
		if d.dir != "" {
			path := filepath.Join(d.dir, fmt.Sprintf("%s.s%d.dat", name, i))
			return newFileBackend(path, elems, d.keepExisting)
		}
		return newMemBackend(elems), nil
	})
}
