package ooc

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

// TestStripedBackendRoundTrip differential-tests the striped backend
// against a flat memory backend: random reads and writes at random
// offsets and lengths (crossing stripe-unit and stripe boundaries)
// must observe identical bytes.
func TestStripedBackendRoundTrip(t *testing.T) {
	const size, unit, n = 1000, 16, 3
	ref := newMemBackend(size)
	sb, err := newStripedBackend(size, unit, n, func(i int, elems int64) (Backend, error) {
		return newMemBackend(elems), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		off := rng.Int63n(size)
		length := 1 + rng.Int63n(size-off)
		if length > 64 {
			length = 64
		}
		if rng.Intn(2) == 0 {
			buf := make([]float64, length)
			for i := range buf {
				buf[i] = float64(iter*1000 + i)
			}
			if err := ref.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			if err := sb.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
		} else {
			want := make([]float64, length)
			got := make([]float64, length)
			if err := ref.ReadAt(want, off); err != nil {
				t.Fatal(err)
			}
			if err := sb.ReadAt(got, off); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d: striped[%d] = %v, flat %v", iter, off+int64(i), got[i], want[i])
				}
			}
		}
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedBackendBounds pins the range checks: out-of-range access
// fails instead of landing in a neighbouring stripe's over-allocation.
func TestStripedBackendBounds(t *testing.T) {
	sb, err := newStripedBackend(100, 16, 4, func(i int, elems int64) (Backend, error) {
		return newMemBackend(elems), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 8)
	if err := sb.ReadAt(buf, 96); err == nil {
		t.Error("read past the logical size succeeded")
	}
	if err := sb.WriteAt(buf, -1); err == nil {
		t.Error("negative-offset write succeeded")
	}
	if err := sb.ReadAt(buf, 92); err != nil {
		t.Errorf("in-range read at the tail failed: %v", err)
	}
}

// TestStripedFilesPersist exercises the PFS-style layout end to end:
// a striped file-backed disk writes through the engine, closes, and a
// second disk opened with KeepExisting and the same stripe geometry
// reads the data back — across stripe files, each with its own
// single-writer lock while open.
func TestStripedFilesPersist(t *testing.T) {
	dir := t.TempDir()
	const edge = 32

	d := NewDisk(0).Dir(dir).Stripe(4, 64)
	arr, err := d.CreateArray(ir.NewArray("A", edge, edge), layout.RowMajor(edge, edge))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := filepath.Join(dir, "A.s"+string(rune('0'+i))+".dat")
		if _, err := os.Stat(want); err != nil {
			t.Errorf("stripe file %s: %v", want, err)
		}
		if _, err := os.Stat(want + ".lock"); err != nil {
			t.Errorf("stripe lock %s.lock: %v", want, err)
		}
	}

	eng := NewEngine(d, EngineOptions{Workers: 0, CacheTiles: 4})
	box := layout.NewBox([]int64{0, 0}, []int64{edge, edge})
	h, err := eng.Acquire(arr, box)
	if err != nil {
		t.Fatal(err)
	}
	data := h.Tile().Data()
	for i := range data {
		data[i] = float64(i)
	}
	eng.Release(h, true)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Locks released on close.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.lock")); len(m) != 0 {
		t.Fatalf("lock files survive a clean close: %v", m)
	}

	// Reopen with the same geometry: the data must round-trip.
	d2 := NewDisk(0).Dir(dir).KeepExisting().Stripe(4, 64)
	arr2, err := d2.CreateArray(ir.NewArray("A", edge, edge), layout.RowMajor(edge, edge))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(d2, EngineOptions{Workers: 0, CacheTiles: 4})
	h2, err := eng2.Acquire(arr2, box)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range h2.Tile().Data() {
		if v != float64(i) {
			t.Fatalf("reopened element %d = %v, want %v", i, v, float64(i))
		}
	}
	eng2.Release(h2, false)
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedSingleWriter checks the single-writer contract holds per
// stripe: a second disk opening the same striped array fails on the
// stripe locks instead of corrupting it.
func TestStripedSingleWriter(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(0).Dir(dir).Stripe(2, 0)
	if _, err := d.CreateArray(ir.NewArray("A", 64), layout.RowMajor(64)); err != nil {
		t.Fatal(err)
	}
	d2 := NewDisk(0).Dir(dir).KeepExisting().Stripe(2, 0)
	if _, err := d2.CreateArray(ir.NewArray("A", 64), layout.RowMajor(64)); err == nil {
		t.Fatal("second writer opened a locked striped array")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedBackendSizeAndSync pins the composed backend's metadata
// surface: the logical size is the array's (not the padded sum of the
// stripes), and Sync fans out to every stripe.
func TestStripedBackendSizeAndSync(t *testing.T) {
	sb, err := newStripedBackend(100, 16, 4, func(i int, elems int64) (Backend, error) {
		return newMemBackend(elems), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.Size(); got != 100 {
		t.Errorf("Size() = %d, want the logical 100", got)
	}
	if err := sb.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
}
