package ooc

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/obs"
)

// The pinned-value, pure-function and zipf-balance tests for the tile
// hash itself live in internal/keyhash, where the hash moved; ShardOf
// here is a thin delegation, covered transitively by every sharded
// test below.

// shardedFixture builds an n-shard plane over a fresh in-memory array.
func shardedFixture(t *testing.T, n, cacheTiles int) (*ShardedEngine, *Array) {
	t.Helper()
	d := NewDisk(0)
	arr, err := d.CreateArray(ir.NewArray("A", 64, 64), layout.RowMajor(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	se := NewShardedEngine(d, n, EngineOptions{Workers: 0, CacheTiles: cacheTiles})
	return se, arr
}

func tile8(tr, tc int64) layout.Box {
	return layout.NewBox([]int64{tr * 8, tc * 8}, []int64{(tr + 1) * 8, (tc + 1) * 8})
}

// fillVia writes v into box through the plane and releases dirty.
func fillVia(t *testing.T, se *ShardedEngine, arr *Array, box layout.Box, v float64) {
	t.Helper()
	h, err := se.Acquire(arr, box)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := 0, h.Tile().Data(); i < len(data); i++ {
		data[i] = v
	}
	se.Release(h, true)
}

// TestShardedCrossShardReads proves the two halves of the cross-shard
// protocol on a concrete pair of tiles owned by different shards:
// a read overlapping a sibling shard's dirty tile observes the write
// (sibling write-back before the miss read), and a dirty release
// invalidates the overlapping entry a sibling kept resident (no stale
// re-read from cache).
func TestShardedCrossShardReads(t *testing.T) {
	se, arr := shardedFixture(t, 8, 16)
	aligned := tile8(0, 0)
	own := se.ShardFor("A", aligned)

	// An unaligned box overlapping tile (0,0) but owned elsewhere.
	var overlap layout.Box
	found := false
	for ext := int64(9); ext < 24 && !found; ext++ {
		b := layout.NewBox([]int64{0, 0}, []int64{ext, ext}).Clip(arr.Meta.Dims)
		if se.ShardFor("A", b) != own {
			overlap, found = b, true
		}
	}
	if !found {
		t.Fatal("no overlapping box hashed to a different shard (adjust the search)")
	}

	// 1. Dirty write via the owner shard, then read the overlapping box
	// via the other shard: the miss read must observe the write.
	fillVia(t, se, arr, aligned, 7)
	h, err := se.Acquire(arr, overlap)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Tile().Data()[0]; got != 7 {
		t.Fatalf("cross-shard read of element (0,0) = %v, want the dirty 7", got)
	}
	se.Release(h, false)

	// 2. The overlapping entry is now resident in the other shard.
	// Dirty the aligned tile again: the sibling's entry must be
	// invalidated, so a re-read misses and observes 9, not the stale 7.
	fillVia(t, se, arr, aligned, 9)
	h, err = se.Acquire(arr, overlap)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Tile().Data()[0]; got != 9 {
		t.Fatalf("post-invalidation read of element (0,0) = %v, want 9 (stale cache survived)", got)
	}
	se.Release(h, false)

	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCrashShard checks the partial-failure contract: killing
// one shard loses exactly its un-written-back dirty tiles, while other
// shards' caches and everything already flushed survive.
func TestShardedCrashShard(t *testing.T) {
	se, arr := shardedFixture(t, 4, 16)

	// Two tiles owned by different shards.
	boxA := tile8(0, 0)
	victim := se.ShardFor("A", boxA)
	var boxB layout.Box
	foundB := false
	for tr := int64(0); tr < 8 && !foundB; tr++ {
		for tc := int64(0); tc < 8 && !foundB; tc++ {
			if b := tile8(tr, tc); se.ShardFor("A", b) != victim {
				boxB, foundB = b, true
			}
		}
	}
	if !foundB {
		t.Fatal("all tiles hashed to one shard")
	}

	fillVia(t, se, arr, boxA, 5)
	if err := se.Flush(); err != nil { // 5 is durable
		t.Fatal(err)
	}
	fillVia(t, se, arr, boxA, 6) // dirty in the victim shard only
	fillVia(t, se, arr, boxB, 8) // dirty in a surviving shard

	se.CrashShard(victim)

	h, err := se.Acquire(arr, boxA)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Tile().Data()[0]; got != 5 {
		t.Fatalf("tile A after its shard crashed = %v, want the flushed 5 (dirty 6 must be lost)", got)
	}
	se.Release(h, false)

	h, err = se.Acquire(arr, boxB)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Tile().Data()[0]; got != 8 {
		t.Fatalf("tile B in a surviving shard = %v, want its cached dirty 8", got)
	}
	se.Release(h, false)

	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPlaneAccounting pins the plane-wide views: capacity is
// the per-shard allotment times the shard count, residency sums the
// shards, and Stats is the exact sum of ShardStats.
func TestShardedPlaneAccounting(t *testing.T) {
	se, arr := shardedFixture(t, 4, 8)
	if got := se.Capacity(); got != 8 {
		t.Errorf("Capacity() = %d, want 8 (4 shards x 2 tiles)", got)
	}
	for i := int64(0); i < 6; i++ {
		fillVia(t, se, arr, tile8(i, i), float64(i+1))
	}
	if got := se.Resident(); got == 0 || got > 8 {
		t.Errorf("Resident() = %d, want within (0, 8]", got)
	}
	var sum EngineStats
	for _, ss := range se.ShardStats() {
		sum.Hits += ss.Hits
		sum.Misses += ss.Misses
		sum.Evictions += ss.Evictions
		sum.Invalidations += ss.Invalidations
		sum.Writebacks += ss.Writebacks
		sum.WritebackErrors += ss.WritebackErrors
	}
	if st := se.Stats(); sum != st {
		t.Errorf("ShardStats sum %+v != Stats %+v", sum, st)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentStress hammers a sharded plane from many
// goroutines — disjoint-tile writers, overlapping readers and a
// periodic flusher — primarily for the race detector; it also spot-
// checks that every tile ends with a value some writer actually wrote.
func TestShardedConcurrentStress(t *testing.T) {
	se, arr := shardedFixture(t, 4, 8)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each writer owns a disjoint slice of the tile grid, so dirty
			// releases never race an overlapping pin (the engine contract
			// HTTP callers uphold with per-array locks).
			for iter := 0; iter < 50; iter++ {
				tr := int64(w)
				tc := rng.Int63n(8)
				box := tile8(tr, tc)
				h, err := se.Acquire(arr, box)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				data := h.Tile().Data()
				v := float64(w*1000 + iter)
				for i := range data {
					data[i] = v
				}
				se.Release(h, true)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := se.Flush(); err != nil {
				t.Errorf("flusher: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	for w := 0; w < writers; w++ {
		h, err := se.Acquire(arr, tile8(int64(w), 0))
		if err != nil {
			t.Fatal(err)
		}
		data := h.Tile().Data()
		for i := 1; i < len(data); i++ {
			if data[i] != data[0] {
				t.Fatalf("tile (%d,0) torn: elem %d = %v, elem 0 = %v", w, i, data[i], data[0])
			}
		}
		se.Release(h, false)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDivision pins the per-shard division rules: plane totals
// round up across shards, with at least one tile per shard.
func TestShardedDivision(t *testing.T) {
	d := NewDisk(0)
	se := NewShardedEngine(d, 3, EngineOptions{Workers: 0, CacheTiles: 8})
	if got := se.Capacity(); got != 9 {
		t.Errorf("3-shard capacity of an 8-tile budget = %d, want 9 (ceil division)", got)
	}
	if n := se.Shards(); n != 3 {
		t.Errorf("Shards() = %d, want 3", n)
	}
	se.Abandon()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedAcquireAll covers both batch paths — sequential with
// zero workers, goroutine-per-request with a pool — writing a batch
// of tiles spanning several shards and reading them back.
func TestShardedAcquireAll(t *testing.T) {
	for _, workers := range []int{0, 4} {
		d := NewDisk(0)
		arr, err := d.CreateArray(ir.NewArray("A", 64, 64), layout.RowMajor(64, 64))
		if err != nil {
			t.Fatal(err)
		}
		se := NewShardedEngine(d, 4, EngineOptions{Workers: workers, CacheTiles: 16})
		reqs := []TileReq{
			{arr, tile8(0, 0)},
			{arr, tile8(1, 1)},
			{arr, tile8(2, 2)},
			{arr, tile8(3, 3)},
		}
		hs, err := se.AcquireAll(reqs)
		if err != nil {
			t.Fatalf("workers=%d: AcquireAll: %v", workers, err)
		}
		for i, h := range hs {
			for j, data := 0, h.Tile().Data(); j < len(data); j++ {
				data[j] = float64(i + 1)
			}
			se.Release(h, true)
		}
		// The single-request batch takes the sequential path regardless
		// of the pool.
		one, err := se.AcquireAll(reqs[:1])
		if err != nil {
			t.Fatal(err)
		}
		if got := one[0].Tile().Data()[0]; got != 1 {
			t.Fatalf("workers=%d: batch write not visible: got %v", workers, got)
		}
		se.Release(one[0], false)
		if err := se.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
	}
}

// TestShardedPrefetch covers the plane-wide prefetch gate: a clean
// plane forwards the prefetch to the owning shard, and an overlapping
// dirty tile in ANY shard suppresses it (the later Acquire flushes and
// reads consistently instead).
func TestShardedPrefetch(t *testing.T) {
	d := NewDisk(0)
	arr, err := d.CreateArray(ir.NewArray("A", 64, 64), layout.RowMajor(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	se := NewShardedEngine(d, 8, EngineOptions{Workers: 2, CacheTiles: 16})

	se.Prefetch(arr, tile8(5, 5))
	h, err := se.Acquire(arr, tile8(5, 5)) // joins or follows the prefetch
	if err != nil {
		t.Fatal(err)
	}
	se.Release(h, false)
	if st := se.Stats(); st.PrefetchIssued == 0 {
		t.Error("clean-plane prefetch was not issued")
	}

	// Dirty a tile, then prefetch a box overlapping it whose owner is a
	// DIFFERENT shard: the sibling's dirty entry must suppress it.
	dirty := tile8(0, 0)
	fillVia(t, se, arr, dirty, 7)
	wide := layout.NewBox([]int64{0, 0}, []int64{16, 16})
	if se.ShardFor("A", wide) == se.ShardFor("A", dirty) {
		wide = layout.NewBox([]int64{0, 0}, []int64{8, 16})
	}
	if se.ShardFor("A", wide) == se.ShardFor("A", dirty) {
		t.Skip("no overlapping box with a distinct owner at this hash")
	}
	before := se.Stats().PrefetchIssued
	se.Prefetch(arr, wide)
	if got := se.Stats().PrefetchIssued; got != before {
		t.Errorf("prefetch over a sibling's dirty tile was issued (%d -> %d)", before, got)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero-worker planes never prefetch.
	se2, arr2 := shardedFixture(t, 4, 8)
	se2.Prefetch(arr2, tile8(0, 0))
	if st := se2.Stats(); st.PrefetchIssued != 0 {
		t.Error("zero-worker plane issued a prefetch")
	}
	se2.Abandon()
}

// TestShardedTouch routes the accounting-only path through the plane:
// a touched write marks the owner dirty (visible in DirtyTiles), a
// re-touch hits, and a touch overlapping the dirty tile from another
// owner forces the cross-shard write-back, exactly like Acquire.
func TestShardedTouch(t *testing.T) {
	se, arr := shardedFixture(t, 8, 16)
	box := tile8(2, 3)
	se.Touch(arr, box, true)
	st := se.Stats()
	if st.Misses != 1 {
		t.Fatalf("first touch: %d misses, want 1", st.Misses)
	}
	se.Touch(arr, box, false)
	if st = se.Stats(); st.Hits != 1 {
		t.Fatalf("re-touch: %d hits, want 1", st.Hits)
	}
	// A touch of an overlapping box from a different owner write-backs
	// the dirty entry first (Writebacks counts it).
	wide := layout.NewBox([]int64{16, 24}, []int64{32, 40})
	if se.ShardFor("A", wide) == se.ShardFor("A", box) {
		wide = layout.NewBox([]int64{16, 24}, []int64{24, 40})
	}
	if se.ShardFor("A", wide) != se.ShardFor("A", box) {
		se.Touch(arr, wide, false)
		if st = se.Stats(); st.Writebacks == 0 {
			t.Error("cross-shard touch did not write back the sibling's dirty tile")
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	se.Abandon()
}

// TestShardedMetricsPublished covers the labeled metrics path: the
// per-shard families register eagerly at construction, lifetime totals
// land exactly once at Close (a later Abandon must not double-count).
func TestShardedMetricsPublished(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	d := NewDisk(0)
	arr, err := d.CreateArray(ir.NewArray("A", 64, 64), layout.RowMajor(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	se := NewShardedEngine(d, 2, EngineOptions{Workers: 0, CacheTiles: 8, Obs: sink})

	var buf bytes.Buffer
	if err := sink.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`ooc_shard_hits_total{shard="0"} 0`, `ooc_shard_misses_total{shard="1"} 0`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("live plane missing eager series %q:\n%s", want, buf.String())
		}
	}

	fillVia(t, se, arr, tile8(0, 0), 1)
	fillVia(t, se, arr, tile8(1, 1), 2)
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	se.Abandon() // second publication attempt must be a no-op

	stats := se.ShardStats()
	buf.Reset()
	if err := sink.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		want := fmt.Sprintf("ooc_shard_misses_total{shard=%q} %d", fmt.Sprint(i), s.Misses)
		if !strings.Contains(buf.String(), want) {
			t.Errorf("closed plane missing %q:\n%s", want, buf.String())
		}
	}
}
