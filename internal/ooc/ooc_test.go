package ooc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/ir"
	"outcore/internal/layout"
)

func mk2D(t *testing.T, d *Disk, name string, n, m int64, l *layout.Layout) (*ir.Array, *Array) {
	t.Helper()
	meta := ir.NewArray(name, n, m)
	arr, err := d.CreateArray(meta, l)
	if err != nil {
		t.Fatal(err)
	}
	return meta, arr
}

func TestCreateArrayErrors(t *testing.T) {
	d := NewDisk(0)
	meta := ir.NewArray("A", 4, 4)
	if _, err := d.CreateArray(meta, layout.RowMajor(4, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateArray(meta, layout.RowMajor(4, 4)); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := d.CreateArray(ir.NewArray("B", 4, 4), layout.RowMajor(8, 8)); err == nil {
		t.Error("size-mismatched layout accepted")
	}
	if d.ArrayOf(meta) == nil {
		t.Error("ArrayOf lookup failed")
	}
}

func TestReadTileCallAccounting(t *testing.T) {
	d := NewDisk(8)
	_, arr := mk2D(t, d, "V", 8, 8, layout.ColMajor(8, 8))
	// Figure 3(a): a 4x4 tile of a column-major array = 4 runs of 4
	// elements = 4 calls under an 8-element cap.
	if _, err := arr.ReadTile(layout.NewBox([]int64{0, 0}, []int64{4, 4})); err != nil {
		t.Fatal(err)
	}
	if d.Stats.ReadCalls != 4 {
		t.Errorf("4x4 tile: %d calls, want 4", d.Stats.ReadCalls)
	}
	if d.Stats.ElemsRead != 16 {
		t.Errorf("elements read = %d", d.Stats.ElemsRead)
	}
	d.ResetStats()
	// Figure 3(b): an 8x2 tile (two full columns) = 1 run of 16 = 2
	// calls under the 8-element cap.
	if _, err := arr.ReadTile(layout.NewBox([]int64{0, 0}, []int64{8, 2})); err != nil {
		t.Fatal(err)
	}
	if d.Stats.ReadCalls != 2 {
		t.Errorf("8x2 tile: %d calls, want 2", d.Stats.ReadCalls)
	}
}

func TestWriteTileRoundTrip(t *testing.T) {
	d := NewDisk(0)
	meta, arr := mk2D(t, d, "U", 6, 6, layout.Diagonal(6, 6))
	arr.Fill(func(c []int64) float64 { return float64(c[0]*10 + c[1]) })
	box := layout.NewBox([]int64{1, 2}, []int64{4, 5})
	tile, err := arr.ReadTile(box)
	if err != nil {
		t.Fatal(err)
	}
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			if got := tile.Get([]int64{i, j}); got != float64(i*10+j) {
				t.Fatalf("tile(%d,%d) = %v", i, j, got)
			}
			tile.Set([]int64{i, j}, float64(-i-j))
		}
	}
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j < 6; j++ {
			want := float64(i*10 + j)
			if box.Contains([]int64{i, j}) {
				want = float64(-i - j)
			}
			if got := arr.At([]int64{i, j}); got != want {
				t.Errorf("A(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if d.Stats.WriteCalls == 0 || d.Stats.ElemsWritten != box.Size() {
		t.Errorf("write accounting: %+v", d.Stats)
	}
	_ = meta
}

func TestTileClipping(t *testing.T) {
	d := NewDisk(0)
	_, arr := mk2D(t, d, "A", 4, 4, layout.RowMajor(4, 4))
	tile, err := arr.ReadTile(layout.NewBox([]int64{2, 2}, []int64{8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if tile.Size() != 4 {
		t.Errorf("clipped tile size = %d", tile.Size())
	}
}

func TestPerFileStatsAndTrace(t *testing.T) {
	d := NewDisk(4)
	d.Record = true
	_, a := mk2D(t, d, "A", 4, 4, layout.RowMajor(4, 4))
	_, b := mk2D(t, d, "B", 4, 4, layout.RowMajor(4, 4))
	if _, err := a.ReadTile(layout.NewBox([]int64{0, 0}, []int64{1, 4})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadTile(layout.NewBox([]int64{0, 0}, []int64{4, 4})); err != nil {
		t.Fatal(err)
	}
	if d.PerFile["A"].ReadCalls != 1 {
		t.Errorf("A calls = %d", d.PerFile["A"].ReadCalls)
	}
	// B: full array = 1 run of 16, cap 4 -> 4 calls.
	if d.PerFile["B"].ReadCalls != 4 {
		t.Errorf("B calls = %d", d.PerFile["B"].ReadCalls)
	}
	if len(d.Trace) != 5 {
		t.Errorf("trace length = %d, want 5", len(d.Trace))
	}
	for _, r := range d.Trace {
		if r.Len > 4 {
			t.Errorf("trace call longer than cap: %+v", r)
		}
	}
	if d.Stats.Calls() != 5 || d.Stats.Bytes() != (4+16)*ElemSize {
		t.Errorf("stats: %+v", d.Stats)
	}
	d.ResetStats()
	if d.Stats.Calls() != 0 || len(d.Trace) != 0 {
		t.Error("reset failed")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	d := NewDisk(0)
	meta, arr := mk2D(t, d, "A", 5, 7, layout.AntiDiagonal(5, 7))
	s := ir.NewStore(meta)
	rng := rand.New(rand.NewSource(1))
	for i := range s.Data(meta) {
		s.Data(meta)[i] = rng.Float64()
	}
	arr.FromStore(s)
	back := ir.NewStore(meta)
	arr.ToStore(back)
	if diff := ir.MaxAbsDiff(s, back, meta); diff != 0 {
		t.Errorf("store roundtrip diff %g", diff)
	}
}

func TestNewTileZero(t *testing.T) {
	d := NewDisk(0)
	_, arr := mk2D(t, d, "A", 4, 4, layout.RowMajor(4, 4))
	tile := arr.NewTileZero(layout.NewBox([]int64{0, 0}, []int64{2, 2}))
	if d.Stats.ReadCalls != 0 {
		t.Error("zero tile issued reads")
	}
	tile.Set([]int64{1, 1}, 5)
	if err := tile.WriteTile(); err != nil {
		t.Fatal(err)
	}
	if arr.At([]int64{1, 1}) != 5 || arr.At([]int64{0, 0}) != 0 {
		t.Error("zero tile write wrong")
	}
}

func TestMemoryBudget(t *testing.T) {
	m := NewMemory(100)
	if err := m.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(50); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := m.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 100 || m.Peak() != 100 {
		t.Errorf("used %d peak %d", m.Used(), m.Peak())
	}
	m.Release(100)
	if m.Used() != 0 || m.Peak() != 100 {
		t.Error("release bookkeeping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	m.Release(1)
}

func TestMemoryUnlimited(t *testing.T) {
	m := NewMemory(0)
	if err := m.Alloc(1 << 40); err != nil {
		t.Error("unlimited budget refused allocation")
	}
}

func TestPropertyTileRoundTripAllLayouts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, mCols := int64(3+rng.Intn(6)), int64(3+rng.Intn(6))
		layouts := []*layout.Layout{
			layout.RowMajor(n, mCols),
			layout.ColMajor(n, mCols),
			layout.Diagonal(n, mCols),
			layout.AntiDiagonal(n, mCols),
			layout.Blocked(n, mCols, 2, 2),
			layout.General(n, mCols, []int64{3, 2}),
		}
		l := layouts[rng.Intn(len(layouts))]
		d := NewDisk(int64(rng.Intn(8))) // 0..7 cap
		meta := ir.NewArray("A", n, mCols)
		arr, err := d.CreateArray(meta, l)
		if err != nil {
			return false
		}
		arr.Fill(func(c []int64) float64 { return float64(c[0]*100 + c[1]) })
		lo := []int64{int64(rng.Intn(int(n))), int64(rng.Intn(int(mCols)))}
		hi := []int64{lo[0] + int64(1+rng.Intn(int(n))), lo[1] + int64(1+rng.Intn(int(mCols)))}
		box := layout.NewBox(lo, hi).Clip(meta.Dims)
		if box.Empty() {
			return true
		}
		tile, err := arr.ReadTile(box)
		if err != nil {
			return false
		}
		// Contents must match, and byte accounting must equal box size.
		for i := box.Lo[0]; i < box.Hi[0]; i++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				if tile.Get([]int64{i, j}) != float64(i*100+j) {
					return false
				}
			}
		}
		if d.Stats.ElemsRead != box.Size() {
			return false
		}
		// Calls >= runs >= 1; calls never exceed element count.
		if d.Stats.ReadCalls < 1 || d.Stats.ReadCalls > box.Size() {
			return false
		}
		if err := tile.WriteTile(); err != nil {
			return false
		}
		return d.Stats.ElemsWritten == box.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
