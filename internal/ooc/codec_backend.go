package ooc

// codecBackend stores an array's elements compressed: the disk
// boundary of the tile codec. The logical element space is split into
// fixed chunks; each chunk is encoded as one frame (codec.go) and kept
// in a two-slot ping-pong region, so a chunk rewrite lands in the
// inactive slot and becomes current with a single one-word pointer
// write — element-atomic under the torn-write fault model, exactly
// like the WAL's checkpoint watermark.
//
// Physical layout per chunk (all offsets in words):
//
//	word 0                      active-slot pointer (0 or 1)
//	words 1 .. 1+S              slot 0: frame words (header + payload)
//	words 1+S .. 1+2S           slot 1
//
// with S = codecSlotWords. A never-written chunk reads as all-zero
// words; a zero frame header is invalid by construction (codec IDs
// start at 1), so the reader decodes it as "all zeros" — matching the
// zero-filled semantics of every uncompressed backend.
//
// Reads fetch only the active slot's header plus exactly the payload
// words the header declares — never the whole slot — so the bytes
// moved through the inner backend shrink with the data, which is the
// paper's metric (I/O traffic), not just the footprint.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"outcore/internal/obs"
)

const (
	// codecChunkElems is the compression granularity. One tile flush
	// touches a handful of chunks; one chunk frame fits a pooled buffer.
	codecChunkElems = 1024
	// codecSlotWords is one slot: the 2-word frame header plus at most
	// codecChunkElems payload words (the raw fallback's worst case).
	codecSlotWords = 2 + codecChunkElems
	// codecStrideWords is one chunk's physical footprint.
	codecStrideWords = 1 + 2*codecSlotWords
)

// codecPhysWords returns the physical backend capacity for a logical
// element count.
func codecPhysWords(logical int64) int64 {
	chunks := (logical + codecChunkElems - 1) / codecChunkElems
	if chunks == 0 {
		chunks = 1
	}
	return chunks * codecStrideWords
}

// compState carries the disk-level compression byte counters, shared
// by every codec backend of one Disk. The obs mirrors are wired during
// setup (Observe/EnableCompression, before tile I/O starts).
type compState struct {
	readRaw, readEnc   atomic.Int64 // bytes served vs bytes moved, reads
	writeRaw, writeEnc atomic.Int64 // bytes stored vs bytes moved, writes

	mReadRaw, mReadEnc, mWriteRaw, mWriteEnc *obs.Counter
}

func (cs *compState) addRead(raw, enc int64) {
	cs.readRaw.Add(raw)
	cs.readEnc.Add(enc)
	if cs.mReadRaw != nil {
		cs.mReadRaw.Add(raw)
		cs.mReadEnc.Add(enc)
	}
}

func (cs *compState) addWrite(raw, enc int64) {
	cs.writeRaw.Add(raw)
	cs.writeEnc.Add(enc)
	if cs.mWriteRaw != nil {
		cs.mWriteRaw.Add(raw)
		cs.mWriteEnc.Add(enc)
	}
}

// CompressionStats is the /v1/stats compression scorecard: logical
// bytes the callers moved vs encoded bytes that actually crossed each
// boundary.
type CompressionStats struct {
	DiskReadRawBytes  int64 `json:"disk_read_raw_bytes"`
	DiskReadBytes     int64 `json:"disk_read_bytes"`
	DiskWriteRawBytes int64 `json:"disk_write_raw_bytes"`
	DiskWriteBytes    int64 `json:"disk_write_bytes"`
	WALRawBytes       int64 `json:"wal_raw_bytes"`
	WALBytes          int64 `json:"wal_bytes"`
}

// codecBackend implements Backend over an inner backend holding the
// chunked physical layout. One mutex serializes chunk RMW cycles (two
// concurrent partial writes to one chunk would otherwise lose one) and
// keeps the inner call sequence deterministic for instrumented
// backends.
type codecBackend struct {
	inner   Backend
	logical int64
	st      *compState

	mu  sync.Mutex
	ptr []int8 // cached active slot per chunk; -1 = not read yet
}

var _ Backend = (*codecBackend)(nil)

func newCodecBackend(inner Backend, logical int64, st *compState) *codecBackend {
	nchunks := (logical + codecChunkElems - 1) / codecChunkElems
	if nchunks == 0 {
		nchunks = 1
	}
	ptr := make([]int8, nchunks)
	for i := range ptr {
		ptr[i] = -1
	}
	return &codecBackend{inner: inner, logical: logical, st: st, ptr: ptr}
}

func (c *codecBackend) Size() int64  { return c.logical }
func (c *codecBackend) Sync() error  { return c.inner.Sync() }
func (c *codecBackend) Close() error { return c.inner.Close() }

// chunkElems returns the logical length of chunk (the tail chunk may
// be short).
func (c *codecBackend) chunkElems(chunk int64) int {
	n := c.logical - chunk*codecChunkElems
	if n > codecChunkElems {
		n = codecChunkElems
	}
	return int(n)
}

// ptrLocked returns the chunk's active slot, reading (and caching) the
// pointer word on first use. Anything but a clean 0/1 decodes as 0 —
// it can only be pre-write garbage, and slot 0 then reads as zeros.
func (c *codecBackend) ptrLocked(chunk int64) (int64, error) {
	if v := c.ptr[chunk]; v >= 0 {
		return int64(v), nil
	}
	var w [1]float64
	if err := c.inner.ReadAt(w[:], chunk*codecStrideWords); err != nil {
		return 0, err
	}
	c.st.addRead(0, ElemSize)
	slot := int8(0)
	if math.Float64bits(w[0]) == 1 {
		slot = 1
	}
	c.ptr[chunk] = slot
	return int64(slot), nil
}

// readChunkLocked decodes chunk into dst (len == chunkElems(chunk)).
func (c *codecBackend) readChunkLocked(chunk int64, dst []float64) error {
	slot, err := c.ptrLocked(chunk)
	if err != nil {
		return err
	}
	slotOff := chunk*codecStrideWords + 1 + slot*codecSlotWords
	var hdr [2]float64
	if err := c.inner.ReadAt(hdr[:], slotOff); err != nil {
		return err
	}
	if math.Float64bits(hdr[0]) == 0 && math.Float64bits(hdr[1]) == 0 {
		// Never written: the chunk is logically zero-filled.
		c.st.addRead(int64(len(dst))*ElemSize, 2*ElemSize)
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	var hb [frameHeaderBytes]byte
	fb := wordsToFrame(hb[:0], hdr[:])
	elems, size, err := frameHeader(fb)
	if err != nil {
		return fmt.Errorf("ooc: codec chunk %d slot %d: %w", chunk, slot, err)
	}
	if elems != len(dst) {
		return fmt.Errorf("ooc: codec chunk %d holds %d elements, want %d", chunk, elems, len(dst))
	}
	payloadWords := int64(size-frameHeaderBytes) / ElemSize
	pw := GetF64(int(payloadWords))
	defer PutF64(pw)
	if err := c.inner.ReadAt(pw, slotOff+2); err != nil {
		return err
	}
	frame := GetBuf(size)[:0]
	defer PutBuf(frame)
	frame = wordsToFrame(frame, hdr[:])
	frame = wordsToFrame(frame, pw)
	if _, err := DecodeFrame(frame, dst); err != nil {
		return fmt.Errorf("ooc: codec chunk %d slot %d: %w", chunk, slot, err)
	}
	c.st.addRead(int64(len(dst))*ElemSize, int64(size))
	return nil
}

// writeChunkLocked encodes src (the chunk's full logical contents)
// into the inactive slot and flips the pointer.
func (c *codecBackend) writeChunkLocked(chunk int64, src []float64) error {
	cur, err := c.ptrLocked(chunk)
	if err != nil {
		return err
	}
	next := 1 - cur
	frame := GetBuf(frameSizeBytes(len(src) * ElemSize))[:0]
	defer PutBuf(frame)
	frame = AppendFrame(frame, src)
	words := GetF64(len(frame) / ElemSize)[:0]
	defer PutF64(words)
	words = frameToWords(words, frame)
	slotOff := chunk*codecStrideWords + 1 + next*codecSlotWords
	if err := c.inner.WriteAt(words, slotOff); err != nil {
		return err
	}
	ptrWord := [1]float64{math.Float64frombits(uint64(next))}
	if err := c.inner.WriteAt(ptrWord[:], chunk*codecStrideWords); err != nil {
		return err
	}
	c.ptr[chunk] = int8(next)
	c.st.addWrite(int64(len(src))*ElemSize, int64(len(words)+1)*ElemSize)
	return nil
}

func (c *codecBackend) ReadAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > c.logical {
		return fmt.Errorf("ooc: codec read [%d,%d) out of range %d", off, off+int64(len(buf)), c.logical)
	}
	if len(buf) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	scratch := GetF64(codecChunkElems)
	defer PutF64(scratch)
	pos := off
	bi := 0
	for pos < off+int64(len(buf)) {
		chunk := pos / codecChunkElems
		lo := int(pos - chunk*codecChunkElems)
		cn := c.chunkElems(chunk)
		n := cn - lo
		if rem := len(buf) - bi; n > rem {
			n = rem
		}
		if lo == 0 && n == cn {
			if err := c.readChunkLocked(chunk, buf[bi:bi+n]); err != nil {
				return err
			}
		} else {
			if err := c.readChunkLocked(chunk, scratch[:cn]); err != nil {
				return err
			}
			copy(buf[bi:bi+n], scratch[lo:lo+n])
		}
		pos += int64(n)
		bi += n
	}
	return nil
}

func (c *codecBackend) WriteAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > c.logical {
		return fmt.Errorf("ooc: codec write [%d,%d) out of range %d", off, off+int64(len(buf)), c.logical)
	}
	if len(buf) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	scratch := GetF64(codecChunkElems)
	defer PutF64(scratch)
	pos := off
	bi := 0
	for pos < off+int64(len(buf)) {
		chunk := pos / codecChunkElems
		lo := int(pos - chunk*codecChunkElems)
		cn := c.chunkElems(chunk)
		n := cn - lo
		if rem := len(buf) - bi; n > rem {
			n = rem
		}
		src := buf[bi : bi+n]
		if lo != 0 || n != cn {
			// Partial chunk: read-modify-write the full chunk frame.
			if err := c.readChunkLocked(chunk, scratch[:cn]); err != nil {
				return err
			}
			copy(scratch[lo:lo+n], src)
			src = scratch[:cn]
		}
		if err := c.writeChunkLocked(chunk, src); err != nil {
			return err
		}
		pos += int64(n)
		bi += n
	}
	return nil
}

// EnableCompression stores every subsequently created array's backend
// compressed: writes encode chunk frames (Gorilla with raw fallback,
// codec.go) and reads move only the encoded bytes. Like the other
// configuration chainers it must be called before arrays are created;
// it is ignored on measurement-only (NoBacking) disks, whose arrays
// carry no data to compress. Compression composes below the WAL —
// records stay logical, replay re-encodes through the codec — and
// above WrapBackend instrumentation, which therefore observes encoded
// traffic.
//
// A directory previously written WITHOUT compression cannot be
// reopened with it (and vice versa): the physical layout differs, and
// the mismatch surfaces as frame-decode errors on first read.
func (d *Disk) EnableCompression() *Disk {
	if d.noBacking {
		return d
	}
	d.comp = &compState{}
	d.observeCompLocked()
	return d
}

// CompressionEnabled reports whether array backends compress.
func (d *Disk) CompressionEnabled() bool { return d.comp != nil }

// observeCompLocked wires the compression counters into the observed
// registry; called from whichever of Observe/EnableCompression runs
// second (both are setup-time).
func (d *Disk) observeCompLocked() {
	if d.comp == nil || d.met == nil || d.met.reg == nil || d.comp.mReadRaw != nil {
		return
	}
	reg := d.met.reg
	d.comp.mReadRaw = reg.Counter("ooc_comp_disk_read_raw_bytes_total", "logical bytes served by compressed backend reads")
	d.comp.mReadEnc = reg.Counter("ooc_comp_disk_read_bytes_total", "encoded bytes moved by compressed backend reads")
	d.comp.mWriteRaw = reg.Counter("ooc_comp_disk_write_raw_bytes_total", "logical bytes stored by compressed backend writes")
	d.comp.mWriteEnc = reg.Counter("ooc_comp_disk_write_bytes_total", "encoded bytes moved by compressed backend writes")
}

// CompressionStats snapshots the compression scorecard, or nil when
// neither backend compression nor WAL payload compression is enabled.
func (d *Disk) CompressionStats() *CompressionStats {
	walComp := d.wal != nil && d.wal.opts.Compress
	if d.comp == nil && !walComp {
		return nil
	}
	s := &CompressionStats{}
	if cs := d.comp; cs != nil {
		s.DiskReadRawBytes = cs.readRaw.Load()
		s.DiskReadBytes = cs.readEnc.Load()
		s.DiskWriteRawBytes = cs.writeRaw.Load()
		s.DiskWriteBytes = cs.writeEnc.Load()
	}
	if walComp {
		raw, enc := d.wal.compBytes()
		s.WALRawBytes = raw
		s.WALBytes = enc
	}
	return s
}
