package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Backend stores an array's file contents. Offsets and lengths are in
// elements. The in-memory backend is the default (simulation and
// tests); the file backend performs real operating-system I/O, one
// ReadAt/WriteAt per runtime request, for running genuinely
// disk-resident workloads.
type Backend interface {
	// ReadAt fills buf with the elements starting at element offset off.
	ReadAt(buf []float64, off int64) error
	// WriteAt stores buf at element offset off.
	WriteAt(buf []float64, off int64) error
	// Size returns the backend capacity in elements.
	Size() int64
	// Close releases resources.
	Close() error
}

// memBackend keeps the file contents in memory.
type memBackend struct {
	data []float64
}

func newMemBackend(n int64) *memBackend { return &memBackend{data: make([]float64, n)} }

func (m *memBackend) ReadAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("ooc: mem read [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(buf, m.data[off:])
	return nil
}

func (m *memBackend) WriteAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("ooc: mem write [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(m.data[off:], buf)
	return nil
}

func (m *memBackend) Size() int64 { return int64(len(m.data)) }
func (m *memBackend) Close() error {
	m.data = nil
	return nil
}

// fileBackend stores elements as little-endian float64 in a real file.
type fileBackend struct {
	f    *os.File
	size int64
}

// newFileBackend creates (truncating) a zero-filled backing file of n
// elements.
func newFileBackend(path string, n int64) (*fileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(n * ElemSize); err != nil {
		f.Close()
		return nil, err
	}
	return &fileBackend{f: f, size: n}, nil
}

func (fb *fileBackend) ReadAt(buf []float64, off int64) error {
	raw := make([]byte, len(buf)*ElemSize)
	if _, err := fb.f.ReadAt(raw, off*ElemSize); err != nil {
		return err
	}
	for i := range buf {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ElemSize:]))
	}
	return nil
}

func (fb *fileBackend) WriteAt(buf []float64, off int64) error {
	raw := make([]byte, len(buf)*ElemSize)
	for i, v := range buf {
		binary.LittleEndian.PutUint64(raw[i*ElemSize:], math.Float64bits(v))
	}
	_, err := fb.f.WriteAt(raw, off*ElemSize)
	return err
}

func (fb *fileBackend) Size() int64  { return fb.size }
func (fb *fileBackend) Close() error { return fb.f.Close() }

// nullBackend carries no data: it backs measurement-only (dry-run)
// disks, where only accounting matters. Data access is a programming
// error and fails loudly.
type nullBackend struct{ size int64 }

func (n nullBackend) ReadAt([]float64, int64) error {
	return fmt.Errorf("ooc: data access on a measurement-only (null-backed) array")
}
func (n nullBackend) WriteAt([]float64, int64) error {
	return fmt.Errorf("ooc: data access on a measurement-only (null-backed) array")
}
func (n nullBackend) Size() int64  { return n.size }
func (n nullBackend) Close() error { return nil }

// Dir configures a disk to back arrays with real files under dir.
// Call Close to release the file handles.
func (d *Disk) Dir(dir string) *Disk {
	d.dir = dir
	return d
}

// NoBacking configures a disk for measurement-only use: arrays carry no
// data, only accounting. ReadTile/WriteTile fail; TouchRead/TouchWrite
// work.
func (d *Disk) NoBacking() *Disk {
	d.noBacking = true
	return d
}

// Close releases every array's backend (file handles for file-backed
// disks; no-ops otherwise).
func (d *Disk) Close() error {
	var first error
	for _, arr := range d.arrays {
		if err := arr.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newBackend picks the backend for a new array per the disk's
// configuration.
func (d *Disk) newBackend(name string, n int64) (Backend, error) {
	switch {
	case d.noBacking:
		return nullBackend{size: n}, nil
	case d.dir != "":
		return newFileBackend(filepath.Join(d.dir, name+".dat"), n)
	default:
		return newMemBackend(n), nil
	}
}
