package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Backend stores an array's file contents. Offsets and lengths are in
// elements. The in-memory backend is the default (simulation and
// tests); the file backend performs real operating-system I/O, one
// ReadAt/WriteAt per runtime request, for running genuinely
// disk-resident workloads.
//
// # Single-writer contract
//
// A file-backed array has exactly one writer: the Disk that created it.
// Nothing in the runtime coordinates two processes (or two Disks in one
// process) mutating the same backing file — their tile caches would
// each believe their own copy is current and silently clobber the
// other's write-backs. The file backend therefore takes an exclusive
// lock (a sibling ".lock" file created O_EXCL) for the lifetime of the
// open and a second open of the same path fails with a clear error
// instead of truncating live data. The lock is released by Close; a
// crash can leave it behind, in which case the error names the stale
// lock file to remove.
type Backend interface {
	// ReadAt fills buf with the elements starting at element offset off.
	ReadAt(buf []float64, off int64) error
	// WriteAt stores buf at element offset off.
	WriteAt(buf []float64, off int64) error
	// Sync forces buffered writes down to stable storage (a no-op for
	// memory-resident backends). The engine calls it on Flush/Close so
	// a drained server loses nothing that was acknowledged.
	Sync() error
	// Size returns the backend capacity in elements.
	Size() int64
	// Close releases resources (syncing first, where that means
	// anything).
	Close() error
}

// memBackend keeps the file contents in memory.
type memBackend struct {
	data []float64
}

func newMemBackend(n int64) *memBackend { return &memBackend{data: make([]float64, n)} }

func (m *memBackend) ReadAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("ooc: mem read [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(buf, m.data[off:])
	return nil
}

func (m *memBackend) WriteAt(buf []float64, off int64) error {
	if off < 0 || off+int64(len(buf)) > int64(len(m.data)) {
		return fmt.Errorf("ooc: mem write [%d,%d) out of range %d", off, off+int64(len(buf)), len(m.data))
	}
	copy(m.data[off:], buf)
	return nil
}

func (m *memBackend) Size() int64 { return int64(len(m.data)) }
func (m *memBackend) Sync() error { return nil }
func (m *memBackend) Close() error {
	m.data = nil
	return nil
}

// fileBackend stores elements as little-endian float64 in a real file.
type fileBackend struct {
	f    *os.File
	lock string // sibling lock file; removed on Close
	size int64
}

// newFileBackend opens the backing file of n elements, locked for
// exclusive use (see the single-writer contract on Backend). With keep
// false the file is created zero-filled, truncating any previous
// contents; with keep true existing contents survive (the file is still
// resized to n elements, zero-extending when it grew).
func newFileBackend(path string, n int64, keep bool) (*fileBackend, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	lock := path + ".lock"
	lf, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("ooc: backing file %s is already open by another engine "+
				"(single-writer contract); if no other process is using it, remove the stale lock %s",
				path, lock)
		}
		return nil, err
	}
	fmt.Fprintf(lf, "%d\n", os.Getpid())
	if err := lf.Close(); err != nil {
		os.Remove(lock)
		return nil, err
	}
	flags := os.O_RDWR | os.O_CREATE
	if !keep {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		os.Remove(lock)
		return nil, err
	}
	if err := f.Truncate(n * ElemSize); err != nil {
		f.Close()
		os.Remove(lock)
		return nil, err
	}
	return &fileBackend{f: f, lock: lock, size: n}, nil
}

func (fb *fileBackend) ReadAt(buf []float64, off int64) error {
	raw := GetBuf(len(buf) * ElemSize)
	defer PutBuf(raw)
	if _, err := fb.f.ReadAt(raw, off*ElemSize); err != nil {
		return err
	}
	for i := range buf {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ElemSize:]))
	}
	return nil
}

func (fb *fileBackend) WriteAt(buf []float64, off int64) error {
	raw := GetBuf(len(buf) * ElemSize)
	defer PutBuf(raw)
	for i, v := range buf {
		binary.LittleEndian.PutUint64(raw[i*ElemSize:], math.Float64bits(v))
	}
	_, err := fb.f.WriteAt(raw, off*ElemSize)
	return err
}

func (fb *fileBackend) Size() int64 { return fb.size }
func (fb *fileBackend) Sync() error { return fb.f.Sync() }

func (fb *fileBackend) Close() error {
	err := fb.f.Sync()
	if cerr := fb.f.Close(); err == nil {
		err = cerr
	}
	if rerr := os.Remove(fb.lock); err == nil {
		err = rerr
	}
	return err
}

// nullBackend carries no data: it backs measurement-only (dry-run)
// disks, where only accounting matters. Data access is a programming
// error and fails loudly.
type nullBackend struct{ size int64 }

func (n nullBackend) ReadAt([]float64, int64) error {
	return fmt.Errorf("ooc: data access on a measurement-only (null-backed) array")
}
func (n nullBackend) WriteAt([]float64, int64) error {
	return fmt.Errorf("ooc: data access on a measurement-only (null-backed) array")
}
func (n nullBackend) Size() int64  { return n.size }
func (n nullBackend) Sync() error  { return nil }
func (n nullBackend) Close() error { return nil }

// Dir configures a disk to back arrays with real files under dir.
// Call Close to release the file handles (and the exclusive locks the
// single-writer contract takes per file).
func (d *Disk) Dir(dir string) *Disk {
	d.dir = dir
	return d
}

// KeepExisting configures a file-backed disk to open existing backing
// files without truncating them: reopening a directory a previous
// (cleanly closed) disk wrote sees its data. The default is to create
// arrays zero-filled.
func (d *Disk) KeepExisting() *Disk {
	d.keepExisting = true
	return d
}

// NoBacking configures a disk for measurement-only use: arrays carry no
// data, only accounting. ReadTile/WriteTile fail; TouchRead/TouchWrite
// work.
func (d *Disk) NoBacking() *Disk {
	d.noBacking = true
	return d
}

// WrapBackend installs a hook that wraps every subsequently created
// array's backend — instrumentation (call counting, injected latency,
// fault injection) for tests and the serving layer's coalescing proofs.
// Like the other setup helpers it must be called before arrays are
// created.
func (d *Disk) WrapBackend(wrap func(name string, b Backend) Backend) *Disk {
	d.wrapBackend = wrap
	return d
}

// sortedArraysLocked returns the arrays in name order. Close and Sync
// walk backends in this order so instrumented backends (fault
// injection, call recording) see a deterministic call sequence — map
// iteration order must never leak into a replayable fault schedule.
func (d *Disk) sortedArraysLocked() []*Array {
	out := make([]*Array, 0, len(d.arrays))
	for _, arr := range d.arrays {
		out = append(out, arr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.Name < out[j].Meta.Name })
	return out
}

// Close releases every array's backend (file handles and locks for
// file-backed disks; no-ops otherwise), in name order. A WAL-enabled
// disk checkpoints first — so the stripes are authoritative after a
// clean shutdown — and closes its logs last; if the checkpoint fails
// the logs keep their records and the next open replays them.
func (d *Disk) Close() error {
	var first error
	if d.wal != nil {
		d.wal.stopMaintainer()
		if err := d.wal.checkpoint(); err != nil {
			first = err
		}
	}
	d.mu.Lock()
	for _, arr := range d.sortedArraysLocked() {
		if err := arr.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.mu.Unlock()
	if d.wal != nil {
		if err := d.wal.closeLogs(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync forces every array's buffered writes to stable storage, in
// name order. The engine calls it after write-backs on Flush/Close;
// servers call it at drain so acknowledged writes survive the
// process.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, arr := range d.sortedArraysLocked() {
		if err := arr.backend.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync forces this one array's buffered writes to stable storage: the
// durability point for a single-array acknowledgement (the serving
// layer's durable PUTs). On a WAL-enabled disk this is the
// group-committed log fsync — every concurrent caller shares it.
func (ar *Array) Sync() error { return ar.backend.Sync() }

// newBackend picks the backend for a new array per the disk's
// configuration. With compression enabled the base backend is sized
// for the codec's chunked physical layout and the codec wraps
// OUTSIDE any WrapBackend instrumentation, so fault injectors and
// call recorders observe the encoded traffic that really moves.
func (d *Disk) newBackend(name string, n int64) (Backend, error) {
	phys := n
	if d.comp != nil && !d.noBacking {
		phys = codecPhysWords(n)
	}
	var (
		b   Backend
		err error
	)
	switch {
	case d.noBacking:
		b = nullBackend{size: n}
	case d.stripeN > 1:
		b, err = d.newStripedDiskBackend(name, phys)
	case d.dir != "":
		b, err = newFileBackend(filepath.Join(d.dir, name+".dat"), phys, d.keepExisting)
	default:
		b = newMemBackend(phys)
	}
	if err != nil {
		return nil, err
	}
	if d.wrapBackend != nil {
		b = d.wrapBackend(name, b)
	}
	if d.comp != nil && !d.noBacking {
		b = newCodecBackend(b, n, d.comp)
	}
	return b, nil
}
