package ooc

// Pooled tile buffers: a package-level size-class arena over sync.Pool
// shared by every encode/decode/serve path. A multi-GB tile cache
// already taxes the collector; transient codec frames, wire payloads
// and file-backend scratch buffers on top of it would make every GET a
// GC event. The arena recycles them instead, with hit/miss counters so
// the scorecard can show whether the steady state really stopped
// allocating.
//
// Classes are powers of two from 64 bytes to 16 MiB; a request beyond
// the largest class is served by a plain allocation (counted as
// oversize) and never pooled.

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"outcore/internal/obs"
)

const (
	poolMinShift = 6  // smallest class: 64 bytes
	poolMaxShift = 24 // largest class: 16 MiB
	poolClasses  = poolMaxShift - poolMinShift + 1
)

var (
	poolBufs [poolClasses]sync.Pool // *[]byte, cap = exactly the class size
	poolF64s [poolClasses]sync.Pool // *[]float64, cap = exactly the class size (in elements)

	poolHits     atomic.Int64
	poolMisses   atomic.Int64
	poolOversize atomic.Int64

	// Registry mirrors installed by ObservePool; nil until observed so
	// an unobserved pool pays one pointer load per operation.
	poolHitC  atomic.Pointer[obs.Counter]
	poolMissC atomic.Pointer[obs.Counter]
)

// PoolStats is the arena scorecard.
type PoolStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Oversize int64 `json:"oversize"`
}

// ReadPoolStats snapshots the arena counters (process-wide).
func ReadPoolStats() PoolStats {
	return PoolStats{
		Hits:     poolHits.Load(),
		Misses:   poolMisses.Load(),
		Oversize: poolOversize.Load(),
	}
}

// ObservePool mirrors the arena's hit/miss counters into the sink's
// metrics registry ("ooc_pool_*"). The mirrors count operations from
// the call on; the arena is process-wide, so observe one registry per
// process.
func ObservePool(sink *obs.Sink) {
	reg := sink.MetricsOf()
	if reg == nil {
		return
	}
	poolHitC.Store(reg.Counter("ooc_pool_hits_total", "buffer requests served from the tile-buffer arena"))
	poolMissC.Store(reg.Counter("ooc_pool_misses_total", "buffer requests the arena had to allocate"))
}

// poolClass returns the class index for a request of n units, or -1
// when n exceeds the largest class.
func poolClass(n int) int {
	if n <= 1<<poolMinShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - poolMinShift
	if c >= poolClasses {
		return -1
	}
	return c
}

func poolHit() {
	poolHits.Add(1)
	if c := poolHitC.Load(); c != nil {
		c.Inc()
	}
}

func poolMiss() {
	poolMisses.Add(1)
	if c := poolMissC.Load(); c != nil {
		c.Inc()
	}
}

// GetBuf returns a byte buffer of length n from the arena. Return it
// with PutBuf when done; the contents are arbitrary.
func GetBuf(n int) []byte {
	c := poolClass(n)
	if c < 0 {
		poolOversize.Add(1)
		return make([]byte, n)
	}
	if v := poolBufs[c].Get(); v != nil {
		poolHit()
		return (*v.(*[]byte))[:n]
	}
	poolMiss()
	return make([]byte, n, 1<<(c+poolMinShift))
}

// PutBuf recycles a buffer obtained from GetBuf. Buffers whose
// capacity is not an exact class size (grown by append, or oversize)
// are dropped.
func PutBuf(b []byte) {
	c := poolClass(cap(b))
	if c < 0 || cap(b) != 1<<(c+poolMinShift) {
		return
	}
	b = b[:0]
	poolBufs[c].Put(&b)
}

// GetF64 returns a float64 buffer of length n elements from the arena.
func GetF64(n int) []float64 {
	c := poolClass(n)
	if c < 0 {
		poolOversize.Add(1)
		return make([]float64, n)
	}
	if v := poolF64s[c].Get(); v != nil {
		poolHit()
		return (*v.(*[]float64))[:n]
	}
	poolMiss()
	return make([]float64, n, 1<<(c+poolMinShift))
}

// PutF64 recycles a buffer obtained from GetF64.
func PutF64(b []float64) {
	c := poolClass(cap(b))
	if c < 0 || cap(b) != 1<<(c+poolMinShift) {
		return
	}
	b = b[:0]
	poolF64s[c].Put(&b)
}
