package ooc

// Per-tile float64 compression: the paper's argument is that bytes
// moved through the I/O system, not CPU, bound out-of-core work — so
// the runtime squeezes the bytes at every boundary they cross. The
// codec is Gorilla-style XOR-of-previous delta encoding (Facebook's
// in-memory TSDB scheme, the same family VictoriaMetrics uses on
// disk): smooth scientific data XORs to mostly-zero words, and the
// control-bit framing stores only the meaningful window of each XOR.
// Incompressible payloads fall back to a raw pass-through so the
// encoded form is never meaningfully larger than the input.
//
// # Frame format
//
// Every encoded payload travels inside a self-describing frame shared
// by the disk, WAL and HTTP wire boundaries:
//
//	bytes  0..7   codecID<<56 | elemCount       (little-endian word)
//	bytes  8..15  encodedLen<<32 | CRC-32C      (little-endian word)
//	bytes 16..    payload, zero-padded to a multiple of 8 bytes
//
// codecID is CodecRaw (little-endian float64 bits) or CodecGorilla.
// encodedLen is the unpadded payload byte length; the CRC (Castagnoli,
// the WAL's polynomial) covers exactly those bytes. The 8-byte padding
// lets a frame be carried verbatim as backend words or WAL payload
// words via the same Float64bits packing the WAL already proves
// round-trips exactly.
//
// # Gorilla bit stream
//
// Value 0 is emitted as 64 raw bits. Each subsequent value XORs with
// its predecessor:
//
//	0            identical value
//	1 0 <m>      XOR fits the previous (leading, meaningful) window;
//	             m = the window's meaningful bits
//	1 1 L S <m>  new window: L = 6-bit leading-zero count, S = 6-bit
//	             (meaningful-bit count - 1), then the meaningful bits
//
// Decoding is exact for every bit pattern — NaN payloads, infinities,
// negative zero and denormals included — because no floating-point
// operation ever touches a value; only its bits do.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
)

// Codec identifiers carried in frame headers. Zero is deliberately
// invalid: an all-zero header (a never-written backend slot, a zeroed
// log) can never be mistaken for a frame.
const (
	CodecRaw     = 1
	CodecGorilla = 2
)

const (
	// frameHeaderBytes is the fixed frame header size (two words).
	frameHeaderBytes = 16
	// maxFrameElems bounds elemCount so encodedLen (<= 8*elems + slack)
	// always fits its 32-bit header field. Far above any tile the
	// runtime moves (the serving layer caps tiles at 2^22 elements).
	maxFrameElems = 1 << 28
)

var errCodecFrame = fmt.Errorf("ooc: corrupt codec frame")

// frameSizeBytes returns the full frame size for an unpadded payload
// length: header plus payload rounded up to whole words.
func frameSizeBytes(encLen int) int {
	return frameHeaderBytes + (encLen+7)/8*8
}

// AppendFrame appends the encoded frame for data to dst and returns
// the extended slice. Gorilla encoding is attempted first; when it
// does not beat the raw size the payload is stored raw, so the frame
// never exceeds frameSizeBytes(8*len(data)).
func AppendFrame(dst []byte, data []float64) []byte {
	n := len(data)
	if n > maxFrameElems {
		panic(fmt.Sprintf("ooc: frame of %d elements exceeds the codec bound %d", n, maxFrameElems))
	}
	start := len(dst)
	var hdr [frameHeaderBytes]byte
	dst = append(dst, hdr[:]...)
	codec := CodecRaw
	if n > 0 {
		dst = gorillaEncode(dst, data)
		codec = CodecGorilla
	}
	encLen := len(dst) - start - frameHeaderBytes
	if codec == CodecGorilla && encLen >= n*ElemSize {
		// Incompressible: rewind and store the raw bit patterns.
		dst = dst[:start+frameHeaderBytes]
		var b [8]byte
		for _, v := range data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
		encLen = n * ElemSize
		codec = CodecRaw
	}
	crc := crc32.Checksum(dst[start+frameHeaderBytes:], walCRCTable)
	binary.LittleEndian.PutUint64(dst[start:], uint64(codec)<<56|uint64(uint32(n)))
	binary.LittleEndian.PutUint64(dst[start+8:], uint64(uint32(encLen))<<32|uint64(crc))
	for pad := (8 - encLen%8) % 8; pad > 0; pad-- {
		dst = append(dst, 0)
	}
	return dst
}

// FrameElems parses and validates a frame header, returning the
// element count the frame decodes to and the total frame size in
// bytes. The slice must hold the whole frame (trailing bytes are
// fine); it does not verify the payload CRC (DecodeFrame does).
func FrameElems(frame []byte) (elems, size int, err error) {
	elems, size, err = frameHeader(frame)
	if err == nil && len(frame) < size {
		return 0, 0, errCodecFrame
	}
	return elems, size, err
}

// frameHeader is FrameElems for callers that only have the 16-byte
// header in hand — the codec disk backend reads the header first and
// then fetches exactly the payload words it declares.
func frameHeader(frame []byte) (elems, size int, err error) {
	if len(frame) < frameHeaderBytes {
		return 0, 0, errCodecFrame
	}
	w0 := binary.LittleEndian.Uint64(frame[0:8])
	w1 := binary.LittleEndian.Uint64(frame[8:16])
	codec := int(w0 >> 56)
	if w0&(uint64(0xFFFFFF)<<32) != 0 {
		return 0, 0, errCodecFrame
	}
	elems = int(uint32(w0))
	encLen := int(uint32(w1 >> 32))
	switch {
	case codec == CodecRaw:
		if encLen != elems*ElemSize {
			return 0, 0, errCodecFrame
		}
	case codec == CodecGorilla:
		// Gorilla is only ever emitted when it beats raw, and it needs
		// at least one full value. Anything else is not ours.
		if elems < 1 || encLen < 8 || encLen >= elems*ElemSize {
			return 0, 0, errCodecFrame
		}
	default:
		return 0, 0, errCodecFrame
	}
	if elems > maxFrameElems {
		return 0, 0, errCodecFrame
	}
	return elems, frameSizeBytes(encLen), nil
}

// DecodeFrame decodes one frame into dst, which must hold exactly the
// frame's element count (callers learn it from FrameElems). It returns
// the frame's total byte size. Any mismatch — truncated buffer, CRC
// failure, malformed bit stream, wrong element count — is an error and
// dst's contents are unspecified.
func DecodeFrame(frame []byte, dst []float64) (int, error) {
	elems, size, err := FrameElems(frame)
	if err != nil {
		return 0, err
	}
	if elems != len(dst) {
		return 0, fmt.Errorf("ooc: codec frame holds %d elements, want %d", elems, len(dst))
	}
	w0 := binary.LittleEndian.Uint64(frame[0:8])
	w1 := binary.LittleEndian.Uint64(frame[8:16])
	encLen := int(uint32(w1 >> 32))
	payload := frame[frameHeaderBytes : frameHeaderBytes+encLen]
	if crc32.Checksum(payload, walCRCTable) != uint32(w1) {
		return 0, errCodecFrame
	}
	switch int(w0 >> 56) {
	case CodecRaw:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*ElemSize:]))
		}
	case CodecGorilla:
		if err := gorillaDecode(payload, dst); err != nil {
			return 0, err
		}
	}
	return size, nil
}

// bitWriter appends an MSB-first bit stream to a byte slice.
type bitWriter struct {
	buf []byte
	cur byte
	n   uint8 // bits buffered in cur (0..7)
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.n = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, nb uint) {
	for i := int(nb) - 1; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

// finish pads the last partial byte with zero bits and returns the
// stream.
func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.n))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// bitReader consumes an MSB-first bit stream; overruns latch err.
type bitReader struct {
	buf []byte
	pos int
	n   uint8
	err bool
}

func (r *bitReader) readBit() uint64 {
	if r.pos >= len(r.buf) {
		r.err = true
		return 0
	}
	b := uint64(r.buf[r.pos]>>(7-r.n)) & 1
	r.n++
	if r.n == 8 {
		r.n = 0
		r.pos++
	}
	return b
}

func (r *bitReader) readBits(nb uint) uint64 {
	var v uint64
	for i := uint(0); i < nb; i++ {
		v = v<<1 | r.readBit()
	}
	return v
}

// gorillaEncode appends the XOR-of-previous bit stream for data (at
// least one element) to dst.
func gorillaEncode(dst []byte, data []float64) []byte {
	w := bitWriter{buf: dst}
	prev := math.Float64bits(data[0])
	w.writeBits(prev, 64)
	var winLead, winSig uint
	for _, f := range data[1:] {
		cur := math.Float64bits(f)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		trail := uint(bits.TrailingZeros64(xor))
		if winSig > 0 && lead >= winLead && trail >= 64-winLead-winSig {
			w.writeBit(0)
			w.writeBits(xor>>(64-winLead-winSig), winSig)
			continue
		}
		sig := 64 - lead - trail
		w.writeBit(1)
		w.writeBits(uint64(lead), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, sig)
		winLead, winSig = lead, sig
	}
	return w.finish()
}

// gorillaDecode reverses gorillaEncode into dst (the element count
// comes from the frame header). A malformed stream — window reuse
// before any window exists, a window wider than 64 bits, or a stream
// shorter than the element count needs — is an error.
func gorillaDecode(payload []byte, dst []float64) error {
	r := bitReader{buf: payload}
	prev := r.readBits(64)
	dst[0] = math.Float64frombits(prev)
	var winLead, winSig uint
	for i := 1; i < len(dst); i++ {
		if r.readBit() == 0 {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		if r.readBit() == 0 {
			if winSig == 0 {
				return errCodecFrame
			}
			prev ^= r.readBits(winSig) << (64 - winLead - winSig)
		} else {
			winLead = uint(r.readBits(6))
			winSig = uint(r.readBits(6)) + 1
			if winLead+winSig > 64 {
				return errCodecFrame
			}
			prev ^= r.readBits(winSig) << (64 - winLead - winSig)
		}
		dst[i] = math.Float64frombits(prev)
	}
	if r.err {
		return errCodecFrame
	}
	return nil
}

// frameToWords packs a padded frame (len divisible by 8) into backend
// words, appending to dst.
func frameToWords(dst []float64, frame []byte) []float64 {
	for i := 0; i+8 <= len(frame); i += 8 {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(frame[i:])))
	}
	return dst
}

// wordsToFrame unpacks backend words into frame bytes, appending to
// dst.
func wordsToFrame(dst []byte, words []float64) []byte {
	var b [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		dst = append(dst, b[:]...)
	}
	return dst
}
