package ooc

import (
	"fmt"
	"sync"

	"outcore/internal/keyhash"
	"outcore/internal/layout"
	"outcore/internal/obs"
)

// TileEngine is the tile-plane surface the serving layer, the codegen
// runtime and the DST harness consume: everything they call on an
// *Engine, satisfied by both the single engine and the sharded plane.
type TileEngine interface {
	Acquire(ar *Array, box layout.Box) (*Handle, error)
	AcquireAll(reqs []TileReq) ([]*Handle, error)
	Release(h *Handle, dirty bool)
	Prefetch(ar *Array, box layout.Box)
	Touch(ar *Array, box layout.Box, write bool)
	Flush() error
	// FlushOverlapping writes back just the dirty tiles overlapping
	// box — the targeted write-back a per-PUT durability path needs
	// (write back, then Array.Sync) without paying a full Flush.
	FlushOverlapping(ar *Array, box layout.Box) error
	Close() error
	Abandon()
	Stats() EngineStats
	Capacity() int
	Resident() int
}

var (
	_ TileEngine = (*Engine)(nil)
	_ TileEngine = (*ShardedEngine)(nil)
)

// ShardOf deterministically maps a tile to a shard: the pinned
// FNV-1a+fmix64 hash of the canonical tile key (array name + clipped
// box bounds) modulo the shard count — keyhash.ShardOf, the same
// function the multi-process cluster router derives its rendezvous
// placement from. The hash is a pure function of its inputs — stable
// across processes, runs and machines — so a tile's owning shard never
// moves while the shard count is fixed. Callers pass the box exactly
// as the engine caches it (clipped to the array's dims).
func ShardOf(name string, box layout.Box, shards int) int {
	return keyhash.ShardOf(name, box, shards)
}

// ShardedEngine partitions the tile plane across N independent Engine
// shards over one shared Disk — PFS-style striping of the cache layer:
// each tile key hashes to exactly one shard (ShardOf), which owns its
// LRU slot, pins and dirty state, so unrelated tiles never contend on
// one global cache lock. N is fixed at open.
//
// Consistency across shards follows the same rule the single engine
// applies inside its own cache, stretched over shard boundaries:
//
//   - before a shard reads the backend for a miss, every OTHER shard
//     writes back its dirty tiles overlapping the requested box
//     (FlushOverlapping) — sibling shards only ever pay this scan when
//     their dirty count is non-zero;
//   - when a tile is released dirty, every other shard drops its
//     overlapping entries (InvalidateOverlapping), so no shard keeps a
//     stale copy resident.
//
// Under the engine's consistency contract (no overlapping pinned tile
// while one is released dirty) the sharded plane is therefore
// observably identical to a single engine — the property the
// differential conformance suite (conformance_test.go) checks byte for
// byte across seeded op streams, crashes included.
type ShardedEngine struct {
	disk *Disk
	per  EngineOptions // per-shard options, after dividing the totals

	mu        sync.RWMutex
	shards    []*Engine // replaced wholesale by CrashShard
	published bool

	reg *obs.Registry
}

// NewShardedEngine starts an n-shard plane over the disk. The options
// carry plane-wide totals: CacheTiles and Workers are divided across
// the shards (rounding up, at least one tile each; zero Workers stays
// zero, keeping the plane as deterministic as an unsharded engine).
func NewShardedEngine(d *Disk, n int, o EngineOptions) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	if o.CacheTiles <= 0 {
		o.CacheTiles = DefaultCacheTiles
	}
	per := o
	per.CacheTiles = (o.CacheTiles + n - 1) / n
	if o.Workers > 0 {
		per.Workers = (o.Workers + n - 1) / n
	}
	se := &ShardedEngine{disk: d, per: per, shards: make([]*Engine, n)}
	for i := range se.shards {
		se.shards[i] = NewEngine(d, per)
	}
	if o.Obs != nil {
		se.reg = o.Obs.MetricsOf()
	}
	// Register the per-shard series up front so /metrics exposes the
	// families while the plane is live; the lifetime totals land at
	// Close/Abandon (same publication point as the aggregate
	// "ooc_engine_*" counters every shard already feeds).
	for i := range se.shards {
		for _, name := range shardMetricNames {
			se.shardCounter(name.metric, i, name.help)
		}
	}
	return se
}

// shardMetricNames are the per-shard labeled registry series.
var shardMetricNames = []struct{ metric, help string }{
	{"ooc_shard_hits_total", "tile requests served from this shard's cache"},
	{"ooc_shard_misses_total", "tile requests this shard sent to the backend"},
	{"ooc_shard_evictions_total", "cache entries this shard evicted under capacity pressure"},
	{"ooc_shard_writebacks_total", "dirty tiles this shard flushed to the backend"},
}

// shardCounter returns the labeled per-shard counter, nil without a
// registry.
func (se *ShardedEngine) shardCounter(name string, shard int, help string) *obs.Counter {
	if se.reg == nil {
		return nil
	}
	return se.reg.Counter(fmt.Sprintf("%s{shard=%q}", name, fmt.Sprint(shard)), help)
}

// snapshot returns the current shard slice. CrashShard replaces the
// whole slice, so a snapshot stays internally consistent for the
// duration of one operation.
func (se *ShardedEngine) snapshot() []*Engine {
	se.mu.RLock()
	defer se.mu.RUnlock()
	return se.shards
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.snapshot()) }

// ShardFor returns the shard index owning (name, box). The box must be
// the clipped box the engine would cache (tests and the DST harness
// use aligned in-range tiles, which are their own clip).
func (se *ShardedEngine) ShardFor(name string, box layout.Box) int {
	return ShardOf(name, box, se.Shards())
}

// flushSiblings is the cross-shard read barrier: every shard except
// own writes back its dirty tiles overlapping box, so the owning
// shard's backend read observes all released writes. Shards with a
// zero dirty count are skipped without taking their lock.
func flushSiblings(shards []*Engine, own int, ar *Array, box layout.Box) error {
	for i, sh := range shards {
		if i == own || sh.DirtyTiles() == 0 {
			continue
		}
		if err := sh.FlushOverlapping(ar, box); err != nil {
			return err
		}
	}
	return nil
}

// Acquire pins (array, box) via its owning shard, after the sibling
// shards have written back any overlapping dirty tiles — the same
// "backend is current before the miss read" rule Engine.Acquire
// applies within its own cache.
func (se *ShardedEngine) Acquire(ar *Array, box layout.Box) (*Handle, error) {
	box = box.Clip(ar.Meta.Dims)
	shards := se.snapshot()
	own := ShardOf(ar.Meta.Name, box, len(shards))
	if err := flushSiblings(shards, own, ar, box); err != nil {
		return nil, err
	}
	return shards[own].Acquire(ar, box)
}

// AcquireAll acquires every requested tile, concurrently when the
// shards run worker pools (each acquire touches at most one shard lock
// at a time, so concurrent acquires across shards cannot deadlock).
func (se *ShardedEngine) AcquireAll(reqs []TileReq) ([]*Handle, error) {
	hs := make([]*Handle, len(reqs))
	if se.per.Workers == 0 || len(reqs) < 2 {
		for i, r := range reqs {
			h, err := se.Acquire(r.Arr, r.Box)
			if err != nil {
				se.releaseAll(hs)
				return nil, err
			}
			hs[i] = h
		}
		return hs, nil
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r TileReq) {
			defer wg.Done()
			hs[i], errs[i] = se.Acquire(r.Arr, r.Box)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			se.releaseAll(hs)
			return nil, err
		}
	}
	return hs, nil
}

func (se *ShardedEngine) releaseAll(hs []*Handle) {
	for _, h := range hs {
		if h != nil {
			h.eng.Release(h, false)
		}
	}
}

// Release unpins the tile via its owning shard. A dirty release then
// invalidates overlapping entries in every OTHER shard, so no sibling
// keeps a stale copy resident — the cross-shard form of the
// invalidation a dirty release performs inside one engine.
func (se *ShardedEngine) Release(h *Handle, dirty bool) {
	own := h.eng
	ar, box := h.ent.arr, h.ent.box
	own.Release(h, dirty)
	if !dirty {
		return
	}
	for _, sh := range se.snapshot() {
		if sh != own {
			sh.InvalidateOverlapping(ar, box)
		}
	}
}

// Prefetch asynchronously warms the owning shard's cache, skipped when
// ANY shard holds an overlapping dirty tile (the later Acquire will
// flush and read consistently instead — Engine.Prefetch's dirty-
// overlap gate, applied plane-wide).
func (se *ShardedEngine) Prefetch(ar *Array, box layout.Box) {
	if se.per.Workers == 0 {
		return
	}
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	shards := se.snapshot()
	own := ShardOf(ar.Meta.Name, box, len(shards))
	for i, sh := range shards {
		if i != own && sh.DirtyTiles() > 0 && sh.OverlapsDirty(ar, box) {
			return
		}
	}
	shards[own].Prefetch(ar, box)
}

// Touch is the accounting-only Acquire+Release for dry-run disks,
// routed through the owning shard with the same cross-shard barrier
// and invalidation as the data path — so a sharded dry run reports the
// backend calls a sharded data run would issue.
func (se *ShardedEngine) Touch(ar *Array, box layout.Box, write bool) {
	box = box.Clip(ar.Meta.Dims)
	if box.Empty() {
		return
	}
	shards := se.snapshot()
	own := ShardOf(ar.Meta.Name, box, len(shards))
	// Accounting write-backs (TouchWrite) cannot fail.
	_ = flushSiblings(shards, own, ar, box)
	shards[own].Touch(ar, box, write)
	if !write {
		return
	}
	for i, sh := range shards {
		if i != own {
			sh.InvalidateOverlapping(ar, box)
		}
	}
}

// FlushOverlapping writes back every shard's dirty tiles overlapping
// box, in shard order. Only the owning shard can cache box itself,
// but partially overlapping tiles may live in any shard, so all are
// scanned (shards with a zero dirty count are skipped without taking
// their lock). The first error is reported; failed tiles stay dirty.
func (se *ShardedEngine) FlushOverlapping(ar *Array, box layout.Box) error {
	box = box.Clip(ar.Meta.Dims)
	var first error
	for _, sh := range se.snapshot() {
		if sh.DirtyTiles() == 0 {
			continue
		}
		if err := sh.FlushOverlapping(ar, box); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush writes back every shard's dirty tiles and syncs the backends,
// in shard order (deterministic like everything else here: with zero
// workers the whole plane's backend call stream is a pure function of
// the operation stream). It reports this pass's first error; failed
// tiles stay dirty in their shard for a later retry.
func (se *ShardedEngine) Flush() error {
	var first error
	for _, sh := range se.snapshot() {
		if err := sh.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every shard in order (each flushes its dirty tiles and
// syncs), publishes the per-shard metrics, and returns the first
// error.
func (se *ShardedEngine) Close() error {
	var first error
	for _, sh := range se.snapshot() {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	se.publishShardMetrics()
	return first
}

// Abandon is the plane-wide crash path: every shard drops its cache
// without flushing, exactly as a power cut would. See CrashShard for
// the partial-failure variant.
func (se *ShardedEngine) Abandon() {
	for _, sh := range se.snapshot() {
		sh.Abandon()
	}
	se.publishShardMetrics()
}

// CrashShard kills one shard — its cached (volatile) tiles are lost
// without write-back — and replaces it with a fresh empty shard over
// the same disk, while the other shards keep serving. It models the
// partial failure a striped file system survives: one I/O node
// rebooting while the rest of the array stays online. The DST harness
// drives it and checks that no acknowledged write is lost and later
// reads observe only durable-or-pending data.
func (se *ShardedEngine) CrashShard(i int) {
	se.mu.Lock()
	old := se.shards[i]
	next := make([]*Engine, len(se.shards))
	copy(next, se.shards)
	next[i] = NewEngine(se.disk, se.per)
	se.shards = next
	se.mu.Unlock()
	old.Abandon()
}

// Stats returns the plane-wide aggregate of the shard counters.
func (se *ShardedEngine) Stats() EngineStats {
	var total EngineStats
	for _, s := range se.ShardStats() {
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Evictions += s.Evictions
		total.Invalidations += s.Invalidations
		total.Writebacks += s.Writebacks
		total.WritebackErrors += s.WritebackErrors
		total.PrefetchIssued += s.PrefetchIssued
		total.PrefetchUseful += s.PrefetchUseful
	}
	return total
}

// ShardStats returns each shard's own counters, in shard order — the
// per-shard scorecard /v1/stats and the occload sweep report (cache
// balance across shards is the whole point of the hash).
func (se *ShardedEngine) ShardStats() []EngineStats {
	shards := se.snapshot()
	out := make([]EngineStats, len(shards))
	for i, sh := range shards {
		out[i] = sh.Stats()
	}
	return out
}

// Capacity returns the plane-wide tile capacity (sum of the shards').
func (se *ShardedEngine) Capacity() int {
	shards := se.snapshot()
	return len(shards) * se.per.CacheTiles
}

// Resident returns the plane-wide resident entry count.
func (se *ShardedEngine) Resident() int {
	n := 0
	for _, sh := range se.snapshot() {
		n += sh.Resident()
	}
	return n
}

// publishShardMetrics adds each shard's lifetime counters into the
// registry under labeled "ooc_shard_*" names, once.
func (se *ShardedEngine) publishShardMetrics() {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.reg == nil || se.published {
		return
	}
	se.published = true
	for i, sh := range se.shards {
		s := sh.Stats()
		for _, m := range []struct {
			name string
			v    int64
		}{
			{"ooc_shard_hits_total", s.Hits},
			{"ooc_shard_misses_total", s.Misses},
			{"ooc_shard_evictions_total", s.Evictions},
			{"ooc_shard_writebacks_total", s.Writebacks},
		} {
			se.shardCounter(m.name, i, "").Add(m.v)
		}
	}
}
