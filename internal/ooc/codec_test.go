package ooc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// codecCases is the shared table of payload shapes: the smooth kernels
// the codec is built for, the incompressible ones that must fall back
// to raw, and the IEEE edge patterns the bit-exact contract covers.
func codecCases() map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	random := make([]float64, 512)
	for i := range random {
		random[i] = math.Float64frombits(rng.Uint64())
	}
	constant := make([]float64, 1024)
	for i := range constant {
		constant[i] = 300.15
	}
	// Dyadic step: consecutive values XOR to a handful of mantissa
	// bits, the shape Gorilla is built for. A non-dyadic step (0.001)
	// smears the XOR across the mantissa and barely compresses — it
	// stays in the table as a round-trip case only.
	ramp := make([]float64, 1024)
	for i := range ramp {
		ramp[i] = 20.0 + float64(i)*0.25
	}
	rampOdd := make([]float64, 1024)
	for i := range rampOdd {
		rampOdd[i] = 20.0 + float64(i)*0.001
	}
	// A smooth field quantized to 1/4 steps — sensor-grid data.
	quantSine := make([]float64, 1024)
	for i := range quantSine {
		quantSine[i] = math.Round((20+math.Sin(float64(i)/100)*5)*4) / 4
	}
	return map[string][]float64{
		"empty":       {},
		"single":      {42.5},
		"single-nan":  {math.NaN()},
		"two-equal":   {1e300, 1e300},
		"constant":    constant,
		"ramp":        ramp,
		"ramp-odd":    rampOdd,
		"quant-sine":  quantSine,
		"random-bits": random,
		"ieee-edges": {
			0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
			math.NaN(), math.Float64frombits(0x7FF0000000000001), // signaling NaN
			math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
			math.MaxFloat64, -math.MaxFloat64, 1, -1,
		},
		"zeros-then-step": append(make([]float64, 500), 1, 1, 1, 2),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for name, data := range codecCases() {
		t.Run(name, func(t *testing.T) {
			frame := AppendFrame(nil, data)
			if len(frame)%8 != 0 {
				t.Fatalf("frame length %d not word-aligned", len(frame))
			}
			if max := frameSizeBytes(len(data) * ElemSize); len(frame) > max {
				t.Fatalf("frame is %d bytes, over the raw-fallback bound %d", len(frame), max)
			}
			elems, size, err := FrameElems(frame)
			if err != nil {
				t.Fatalf("FrameElems: %v", err)
			}
			if elems != len(data) || size != len(frame) {
				t.Fatalf("FrameElems = (%d, %d), want (%d, %d)", elems, size, len(data), len(frame))
			}
			got := make([]float64, len(data))
			n, err := DecodeFrame(frame, got)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if n != len(frame) {
				t.Fatalf("DecodeFrame consumed %d bytes, want %d", n, len(frame))
			}
			for i := range data {
				if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
					t.Fatalf("bit drift at %d: %016x != %016x",
						i, math.Float64bits(got[i]), math.Float64bits(data[i]))
				}
			}
		})
	}
}

// TestFrameCompressionWins pins the headline numbers: the smooth
// shapes the paper's kernels produce must shrink well past the 2x the
// CI bench gate asserts, and incompressible data must cost no more
// than raw plus the fixed header.
func TestFrameCompressionWins(t *testing.T) {
	cases := codecCases()
	for _, name := range []string{"constant", "ramp", "quant-sine"} {
		data := cases[name]
		frame := AppendFrame(nil, data)
		if raw := len(data) * ElemSize; len(frame)*2 > raw {
			t.Errorf("%s: frame %d bytes vs raw %d — less than the 2x target", name, len(frame), raw)
		}
	}
	random := cases["random-bits"]
	frame := AppendFrame(nil, random)
	if want := frameSizeBytes(len(random) * ElemSize); len(frame) != want {
		t.Errorf("random data should store raw: frame %d bytes, want %d", len(frame), want)
	}
}

// TestFrameAppendsInPlace checks AppendFrame really appends: framing
// into a prefixed buffer leaves the prefix alone, and the resulting
// sub-slice decodes.
func TestFrameAppendsInPlace(t *testing.T) {
	prefix := []byte("prefix")
	data := []float64{1, 2, 3, 4}
	out := AppendFrame(append([]byte(nil), prefix...), data)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendFrame clobbered the destination prefix")
	}
	got := make([]float64, len(data))
	if _, err := DecodeFrame(out[len(prefix):], got); err != nil {
		t.Fatalf("decode appended frame: %v", err)
	}
}

// TestFrameQuickIdentity drives decode∘encode over generated payloads:
// the codec must be the identity on bits for arbitrary float64 slices,
// including the NaN payloads quick generates.
func TestFrameQuickIdentity(t *testing.T) {
	id := func(data []float64) bool {
		frame := AppendFrame(nil, data)
		got := make([]float64, len(data))
		if _, err := DecodeFrame(frame, got); err != nil {
			return false
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(id, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameCorruptRejected walks the rejection surface: every way a
// frame can be damaged in storage or transit must surface as an error,
// never as silently wrong data.
func TestFrameCorruptRejected(t *testing.T) {
	data := codecCases()["ramp"]
	frame := AppendFrame(nil, data)
	dst := make([]float64, len(data))

	corrupt := func(name string, mutate func(f []byte) []byte) {
		t.Helper()
		f := mutate(append([]byte(nil), frame...))
		if _, err := DecodeFrame(f, dst); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
	corrupt("empty", func(f []byte) []byte { return nil })
	corrupt("truncated-header", func(f []byte) []byte { return f[:8] })
	corrupt("truncated-payload", func(f []byte) []byte { return f[:len(f)-8] })
	corrupt("codec-id-zero", func(f []byte) []byte { f[7] = 0; return f })
	corrupt("codec-id-unknown", func(f []byte) []byte { f[7] = 9; return f })
	corrupt("reserved-bits-set", func(f []byte) []byte { f[5] = 1; return f })
	corrupt("crc-flip", func(f []byte) []byte { f[8] ^= 1; return f })
	corrupt("payload-flip", func(f []byte) []byte { f[20] ^= 0x40; return f })
	corrupt("enc-len-zero", func(f []byte) []byte { f[12], f[13], f[14], f[15] = 0, 0, 0, 0; return f })

	// Wrong destination size is the caller's bug surface, same contract.
	if _, err := DecodeFrame(frame, make([]float64, len(data)-1)); err == nil {
		t.Error("DecodeFrame accepted a short destination")
	}

	// A gorilla frame claiming no compression win is not one AppendFrame
	// built; FrameElems must refuse it rather than trust encodedLen.
	single := AppendFrame(nil, []float64{1, 2})
	if single[7] == CodecGorilla {
		big := append([]byte(nil), single...)
		big[12] = 16 // encodedLen = 2*8: no longer beats raw
		if _, _, err := FrameElems(big); err == nil {
			t.Error("FrameElems accepted a gorilla frame with encodedLen >= raw")
		}
	}
}

// TestFrameZeroHeaderInvalid pins the property the disk backend's
// never-written detection rests on: an all-zero header is not a frame.
func TestFrameZeroHeaderInvalid(t *testing.T) {
	if _, _, err := FrameElems(make([]byte, 64)); err == nil {
		t.Fatal("all-zero bytes parsed as a frame")
	}
}

// FuzzTileCodec drives the frame decoder with arbitrary bytes (the
// torn-storage situation) and round-trips fuzz-derived payloads.
// Properties: decoding never panics; whatever AppendFrame built
// round-trips bit for bit; a frame the decoder accepts after mutation
// still yields exactly the declared element count.
//
// Run with: go test ./internal/ooc/ -fuzz FuzzTileCodec
func FuzzTileCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("definitely not a codec frame, just bytes"))
	f.Add(AppendFrame(nil, []float64{1, 2, 3}))
	f.Add(AppendFrame(nil, []float64{math.NaN(), math.Inf(1), math.SmallestNonzeroFloat64}))
	f.Add(AppendFrame(nil, make([]float64, 64)))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// 1. Arbitrary bytes: parsing and decoding must be total.
		if elems, size, err := FrameElems(raw); err == nil {
			if size < frameHeaderBytes || size > len(raw) || elems < 0 {
				t.Fatalf("FrameElems accepted elems=%d size=%d for %d bytes", elems, size, len(raw))
			}
			dst := make([]float64, elems)
			if n, err := DecodeFrame(raw, dst); err == nil && n != size {
				t.Fatalf("DecodeFrame size %d != FrameElems size %d", n, size)
			}
		} else {
			// Still must not panic with a plausible destination.
			_, _ = DecodeFrame(raw, make([]float64, len(raw)/ElemSize+1))
		}

		// 2. Reinterpret the input as float64s and round-trip them.
		data := make([]float64, len(raw)/ElemSize)
		for i := range data {
			var b [8]byte
			copy(b[:], raw[i*ElemSize:])
			data[i] = math.Float64frombits(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
				uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
		}
		frame := AppendFrame(nil, data)
		got := make([]float64, len(data))
		if _, err := DecodeFrame(frame, got); err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				t.Fatalf("round trip bit drift at %d", i)
			}
		}
	})
}
