package keyhash

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"outcore/internal/layout"
)

// TestShardOfPinned pins ShardOf against precomputed values: the hash
// is part of the on-disk/operational contract (a tile's owning shard
// must never move across runs, processes or releases while the shard
// count is fixed), so these anchors fail loudly if anyone touches the
// key encoding or the hash function. The values are the ones
// internal/ooc pinned when the hash lived there — extraction into this
// package must not have moved a single tile.
func TestShardOfPinned(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi []int64
		shards int
		want   int
	}{
		{"A", []int64{0, 0}, []int64{8, 8}, 2, 1},
		{"A", []int64{0, 0}, []int64{8, 8}, 4, 1},
		{"A", []int64{0, 0}, []int64{8, 8}, 8, 1},
		{"A", []int64{8, 0}, []int64{16, 8}, 8, 3},
		{"A", []int64{0, 8}, []int64{8, 16}, 8, 6},
		{"B", []int64{0, 0}, []int64{8, 8}, 8, 6},
		{"T", []int64{0}, []int64{16}, 4, 3},
		{"T", []int64{16}, []int64{32}, 4, 3},
		{"T", []int64{112}, []int64{128}, 4, 0},
	}
	for _, c := range cases {
		box := layout.NewBox(c.lo, c.hi)
		if got := ShardOf(c.name, box, c.shards); got != c.want {
			t.Errorf("ShardOf(%q, %v, %d) = %d, pinned %d", c.name, box, c.shards, got, c.want)
		}
	}
}

// TestShardOfProperties is the quick-check property suite: for
// arbitrary names, boxes and shard counts the hash is a pure function
// (same inputs, same shard — it has no hidden state to drift across
// calls) and always lands in [0, shards).
func TestShardOfProperties(t *testing.T) {
	f := func(name string, lo0, lo1, ext0, ext1 uint16, s uint8) bool {
		shards := int(s)%16 + 1
		lo := []int64{int64(lo0), int64(lo1)}
		hi := []int64{lo[0] + int64(ext0) + 1, lo[1] + int64(ext1) + 1}
		box := layout.NewBox(lo, hi)
		got := ShardOf(name, box, shards)
		return got >= 0 && got < shards && got == ShardOf(name, box, shards)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestShardOfZipfBalance checks placement balance under the load
// harness's skewed access pattern: the distinct tiles of a zipf-drawn
// stream over a 64x64 grid of 8x8 tiles must spread across 8 shards
// within 15% of the per-shard mean. (Balance is a property of the
// key hash over the key population — skew concentrates traffic, not
// placement.)
func TestShardOfZipfBalance(t *testing.T) {
	const (
		gridEdge = 64
		tileEdge = 8
		shards   = 8
	)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.1, 1, gridEdge*gridEdge-1)
	distinct := map[uint64]bool{}
	for draws := 0; draws < 1<<20 && len(distinct) < 3000; draws++ {
		distinct[zipf.Uint64()] = true
	}
	if len(distinct) < 3000 {
		t.Fatalf("zipf stream produced only %d distinct tiles", len(distinct))
	}
	counts := make([]int, shards)
	for k := range distinct {
		tr, tc := int64(k)/gridEdge, int64(k)%gridEdge
		box := layout.NewBox(
			[]int64{tr * tileEdge, tc * tileEdge},
			[]int64{(tr + 1) * tileEdge, (tc + 1) * tileEdge},
		)
		counts[ShardOf("A", box, shards)]++
	}
	mean := float64(len(distinct)) / shards
	for i, c := range counts {
		if dev := float64(c)/mean - 1; dev > 0.15 || dev < -0.15 {
			t.Errorf("shard %d holds %d of %d distinct tiles (%.1f%% off the mean %.0f)",
				i, c, len(distinct), 100*dev, mean)
		}
	}
}

// TestSumMatchesBytes pins Sum as exactly Bytes over AppendKey — the
// stack-buffer fast path must not diverge from the materialized form.
func TestSumMatchesBytes(t *testing.T) {
	f := func(name string, lo0, ext0 uint16) bool {
		box := layout.NewBox([]int64{int64(lo0)}, []int64{int64(lo0) + int64(ext0) + 1})
		return Sum(name, box) == Bytes(AppendKey(nil, name, box))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRendezvousStability is the property rendezvous hashing exists
// for: removing one member never moves a key between two surviving
// members — only keys owned by the removed member relocate. Modulo
// placement (ShardOf) reshuffles almost everything; the cluster
// router's membership math depends on this difference.
func TestRendezvousStability(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	sums := make([]uint64, len(members))
	for i, m := range members {
		sums[i] = String(m)
	}
	rank := func(keySum uint64, skip int) []int {
		type sc struct {
			i int
			s uint64
		}
		var scores []sc
		for i := range members {
			if i == skip {
				continue
			}
			scores = append(scores, sc{i, Rendezvous(keySum, sums[i])})
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].s > scores[b].s })
		out := make([]int, len(scores))
		for i, s := range scores {
			out[i] = s.i
		}
		return out
	}
	moved, total := 0, 0
	for tr := int64(0); tr < 32; tr++ {
		for tc := int64(0); tc < 32; tc++ {
			box := layout.NewBox([]int64{tr * 8, tc * 8}, []int64{(tr + 1) * 8, (tc + 1) * 8})
			ks := Sum("A", box)
			full := rank(ks, -1)
			for dead := range members {
				without := rank(ks, dead)
				if full[0] == dead {
					moved++ // this key's owner died; it must relocate
					continue
				}
				if without[0] != full[0] {
					t.Fatalf("tile (%d,%d): removing member %d moved the owner %d -> %d",
						tr, tc, dead, full[0], without[0])
				}
			}
			total++
		}
	}
	if moved == 0 || moved == total*len(members) {
		t.Fatalf("degenerate ownership distribution: %d of %d (key, removal) pairs relocated", moved, total*len(members))
	}
}

// TestRendezvousBalance checks that top-2 rendezvous placement (the
// cluster's R=2 replica sets) spreads a tile grid across 5 members
// within 20% of the per-member mean — same obligation as the shard
// balance test, for the cluster's placement function.
func TestRendezvousBalance(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	sums := make([]uint64, len(members))
	for i, m := range members {
		sums[i] = String(m)
	}
	counts := make([]int, len(members))
	tiles := 0
	for tr := int64(0); tr < 64; tr++ {
		for tc := int64(0); tc < 64; tc++ {
			box := layout.NewBox([]int64{tr * 8, tc * 8}, []int64{(tr + 1) * 8, (tc + 1) * 8})
			ks := Sum("A", box)
			best, second := -1, -1
			var bs, ss uint64
			for i := range members {
				s := Rendezvous(ks, sums[i])
				switch {
				case best < 0 || s > bs:
					second, ss = best, bs
					best, bs = i, s
				case second < 0 || s > ss:
					second, ss = i, s
				}
			}
			counts[best]++
			counts[second]++
			tiles++
		}
	}
	mean := float64(2*tiles) / float64(len(members))
	for i, c := range counts {
		if dev := float64(c)/mean - 1; dev > 0.20 || dev < -0.20 {
			t.Errorf("member %d holds %d replica slots (%.1f%% off the mean %.0f)", i, c, 100*dev, mean)
		}
	}
}
