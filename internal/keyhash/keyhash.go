// Package keyhash is the pinned tile-key hash the whole plane agrees
// on: the canonical (array, box) key encoding, an FNV-1a pass over the
// key bytes, and a murmur3-fmix64 avalanche finalizer. It is shared by
// the in-process cache map and shard router (internal/ooc) and the
// multi-process cluster router (internal/cluster), which is the point:
// placement is an operational contract, so every layer that maps a
// tile to an owner must provably use the same function.
//
// The hash is PINNED. Its outputs are part of the on-disk/operational
// contract — a tile's owning shard or storage node must never move
// across runs, processes, releases or machines while the member count
// is fixed — so any change to the key encoding, the FNV constants or
// the finalizer is a data-migration event, not a refactor. The pinned
// anchor tests in this package fail loudly on any drift.
package keyhash

import (
	"strconv"

	"outcore/internal/layout"
)

// StackBytes sizes the stack buffers hot paths build key bytes in:
// enough for the longest realistic name plus a rank-3 box of full
// int64 coordinates. Longer keys still work — append spills to the
// heap — they just cost the allocation the fast path avoids.
const StackBytes = 128

// AppendKey appends the canonical key bytes for (name, box) to dst.
// The encoding length-prefixes the name so that names containing
// digits, commas or brackets cannot collide with the coordinate
// section; two (name, box) pairs map to the same bytes iff the name
// and every box bound are equal. Hot paths pass a stack buffer
// (kb [StackBytes]byte; AppendKey(kb[:0], ...)) and never allocate.
func AppendKey(dst []byte, name string, box layout.Box) []byte {
	dst = strconv.AppendInt(dst, int64(len(name)), 10)
	dst = append(dst, ':')
	dst = append(dst, name...)
	dst = append(dst, '[')
	for d, lo := range box.Lo {
		if d > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, lo, 10)
	}
	dst = append(dst, ';')
	for d, hi := range box.Hi {
		if d > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, hi, 10)
	}
	return append(dst, ')')
}

// Bytes hashes arbitrary key bytes: FNV-1a, then Fmix64. FNV alone
// mixes its low bits poorly over the highly structured key family a
// tile grid produces (adjacent coordinates differ in one digit), and
// modulo reduction keeps only those bits; the avalanche finalizer
// spreads every input bit across the whole word first, which is what
// makes the placement balance the property tests pin actually hold.
func Bytes(key []byte) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211 // FNV-64 prime
	}
	return Fmix64(h)
}

// String hashes a string key with the same construction as Bytes.
func String(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return Fmix64(h)
}

// Fmix64 is the murmur3 64-bit avalanche finalizer: a bijective mix
// whose output bits each depend on every input bit.
func Fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Sum returns the pinned 64-bit hash of (name, box), building the key
// bytes in a stack buffer — routing runs on every tile request, ahead
// of the cache's zero-alloc hit path, and must not be the one
// allocation left on it.
func Sum(name string, box layout.Box) uint64 {
	var kb [StackBytes]byte
	return Bytes(AppendKey(kb[:0], name, box))
}

// ShardOf deterministically maps a tile to one of n members: Sum
// modulo the member count. Stable across processes, runs and machines
// — a tile's owner never moves while the member count is fixed.
// Callers pass the box exactly as the engine caches it (clipped to
// the array's dims).
func ShardOf(name string, box layout.Box, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(Sum(name, box) % uint64(shards))
}

// Rendezvous scores (keySum, memberSum) for highest-random-weight
// placement: each member's score for a key is a pure mix of the two
// hashes, so ranking members by score gives every key an ordered,
// stable preference list — and removing one member reshuffles only
// the keys it owned, unlike modulo placement. keySum is Sum(name,
// box); memberSum is String(memberID).
func Rendezvous(keySum, memberSum uint64) uint64 {
	// Multiply-xor before the finalizer: plain xor of two fmix64
	// outputs is bijective in either argument but correlates scores
	// across members sharing high bits; the odd-constant multiply
	// decorrelates them and Fmix64 avalanches the result.
	return Fmix64(keySum ^ (memberSum * 0x9e3779b97f4a7c15))
}
