package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleOneHot(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", 3)
	b := p.AddVar("b", 1)
	c := p.AddVar("c", 2)
	p.AddOneHot(a, b, c)
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("infeasible")
	}
	if sol.Value != 1 || !sol.X[b] || sol.X[a] || sol.X[c] {
		t.Errorf("solution = %+v", sol)
	}
}

func TestTwoGroupsWithCoupling(t *testing.T) {
	// Two groups; a constraint forbids the individually-cheapest combo.
	p := NewProblem()
	a1 := p.AddVar("a1", 1)
	a2 := p.AddVar("a2", 5)
	b1 := p.AddVar("b1", 1)
	b2 := p.AddVar("b2", 2)
	p.AddOneHot(a1, a2)
	p.AddOneHot(b1, b2)
	// a1 + b1 <= 1: cannot take both cheapest.
	if err := p.AddLE([]int{a1, b1}, []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("infeasible")
	}
	// Best: a1 + b2 = 3 (vs a2+b1 = 6).
	if sol.Value != 3 || !sol.X[a1] || !sol.X[b2] {
		t.Errorf("solution = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", 1)
	b := p.AddVar("b", 1)
	p.AddOneHot(a)
	p.AddOneHot(b)
	if err := p.AddLE([]int{a, b}, []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Solve(); ok {
		t.Error("infeasible problem solved")
	}
}

func TestImplies(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", -10) // attractive
	b := p.AddVar("b", 4)   // but forces b
	p.AddImplies(a, b)
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("infeasible")
	}
	// Taking both: -6; taking neither: 0. Best is -6.
	if sol.Value != -6 || !sol.X[a] || !sol.X[b] {
		t.Errorf("solution = %+v", sol)
	}
}

func TestNegativeCostsUngrouped(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", -2)
	b := p.AddVar("b", 3)
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("infeasible")
	}
	if sol.Value != -2 || !sol.X[a] || sol.X[b] {
		t.Errorf("solution = %+v", sol)
	}
}

func TestPairCosts(t *testing.T) {
	p := NewProblem()
	a1 := p.AddVar("a1", 1)
	a2 := p.AddVar("a2", 2)
	b1 := p.AddVar("b1", 1)
	b2 := p.AddVar("b2", 2)
	p.AddOneHot(a1, a2)
	p.AddOneHot(b1, b2)
	// The individually-cheapest combo (a1,b1) carries a heavy pair cost.
	if err := p.AddPairCost(a1, b1, 10); err != nil {
		t.Fatal(err)
	}
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("infeasible")
	}
	// Best: a1+b2 = 3 (or a2+b1 = 3), not a1+b1 = 12.
	if sol.Value != 3 {
		t.Errorf("value = %g", sol.Value)
	}
	if err := p.AddPairCost(a1, b1, -1); err == nil {
		t.Error("negative pair cost accepted")
	}
}

func TestAddLEValidation(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", 0)
	if err := p.AddLE([]int{a}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if p.Vars() != 1 || p.Name(a) != "a" {
		t.Error("accessors wrong")
	}
}

// bruteForce enumerates all assignments (for property tests).
func bruteForce(p *Problem) (float64, bool) {
	n := p.Vars()
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		state := make([]int8, n)
		cost := 0.0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				state[v] = vTrue
				cost += p.cost[v]
			} else {
				state[v] = vFalse
			}
		}
		if p.feasible(state) {
			for _, pc := range p.pairs {
				if state[pc.a] == vTrue && state[pc.b] == vTrue {
					cost += pc.cost
				}
			}
			if cost < best {
				best = cost
				found = true
			}
		}
	}
	return best, found
}

func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		n := 3 + rng.Intn(8)
		for v := 0; v < n; v++ {
			p.AddVar("v", float64(rng.Intn(11)-3))
		}
		// Random one-hot groups over disjoint chunks.
		v := 0
		for v < n {
			g := 1 + rng.Intn(3)
			if v+g > n {
				g = n - v
			}
			if rng.Intn(2) == 0 {
				vars := make([]int, g)
				for i := range vars {
					vars[i] = v + i
				}
				p.AddOneHot(vars...)
			}
			v += g
		}
		// A couple of random <= constraints.
		for c := 0; c < rng.Intn(3); c++ {
			var vars []int
			var coef []float64
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					vars = append(vars, v)
					coef = append(coef, float64(rng.Intn(5)-2))
				}
			}
			if len(vars) > 0 {
				_ = p.AddLE(vars, coef, float64(rng.Intn(4)-1))
			}
		}
		for pcN := 0; pcN < rng.Intn(3); pcN++ {
			_ = p.AddPairCost(rng.Intn(n), rng.Intn(n), float64(rng.Intn(5)))
		}
		got, gotOK := p.Solve()
		want, wantOK := bruteForce(p)
		if gotOK != wantOK {
			return false
		}
		if !gotOK {
			return true
		}
		return math.Abs(got.Value-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
