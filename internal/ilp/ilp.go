// Package ilp is a small exact 0/1 integer-linear-program solver
// (branch and bound over an LP-free combinatorial relaxation), sized
// for the compiler's layout-assignment problems.
//
// The paper closes with "we are also working on the problem of
// determining optimal file layouts using techniques from integer
// linear programming"; internal/core's Optimal assignment builds that
// formulation — one-hot layout choices per array and transformation
// choices per nest, with an objective counting the references left
// without locality — and solves it here.
//
// The solver handles:
//
//	minimize   c·x + sum p_ab·x_a·x_b   (non-negative pair costs)
//	subject to sum_{j in S} x_j == 1    (one-hot groups)
//	           a·x <= b                 (arbitrary <= constraints)
//	           x binary
//
// via depth-first branch and bound: cheaper value first (so the first
// complete solution is near-optimal), incremental consistency checks
// on the touched groups/constraints, and an optimistic bound summing
// each undecided group's cheapest member. Product terms are paid when
// the second variable of a pair turns on, so the layout-assignment
// problems need no auxiliary penalty variables. Exact, deterministic,
// and fast for the tens-of-variables problems the optimizer produces.
package ilp

import (
	"fmt"
	"math"
)

// Problem is a 0/1 minimization problem.
type Problem struct {
	names  []string
	cost   []float64
	groups [][]int      // one-hot groups: exactly one variable true
	cons   []constraint // general <= constraints
	pairs  []pairCost   // product-term costs: paid when both vars are 1
}

// pairCost is a non-negative cost incurred when x_a = x_b = 1 — the
// linearization of a quadratic objective term, handled natively so the
// layout-assignment problems need no auxiliary penalty variables.
type pairCost struct {
	a, b int
	cost float64
}

// constraint encodes sum coef_i·x_i <= rhs.
type constraint struct {
	vars []int
	coef []float64
	rhs  float64
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar introduces a binary variable with the given objective cost and
// returns its index.
func (p *Problem) AddVar(name string, cost float64) int {
	p.names = append(p.names, name)
	p.cost = append(p.cost, cost)
	return len(p.names) - 1
}

// Vars returns the number of variables.
func (p *Problem) Vars() int { return len(p.names) }

// Name returns a variable's name.
func (p *Problem) Name(v int) string { return p.names[v] }

// AddOneHot requires exactly one of the variables to be 1.
func (p *Problem) AddOneHot(vars ...int) {
	g := append([]int(nil), vars...)
	p.groups = append(p.groups, g)
}

// AddLE adds sum coef_i · x_{vars_i} <= rhs.
func (p *Problem) AddLE(vars []int, coef []float64, rhs float64) error {
	if len(vars) != len(coef) {
		return fmt.Errorf("ilp: vars/coef length mismatch")
	}
	p.cons = append(p.cons, constraint{
		vars: append([]int(nil), vars...),
		coef: append([]float64(nil), coef...),
		rhs:  rhs,
	})
	return nil
}

// AddImplies adds x_a = 1 => x_b = 1 (as x_a - x_b <= 0).
func (p *Problem) AddImplies(a, b int) {
	p.cons = append(p.cons, constraint{vars: []int{a, b}, coef: []float64{1, -1}, rhs: 0})
}

// AddPairCost charges cost (which must be non-negative) whenever both
// variables are 1.
func (p *Problem) AddPairCost(a, b int, cost float64) error {
	if cost < 0 {
		return fmt.Errorf("ilp: pair costs must be non-negative")
	}
	if a == b {
		// x·x = x for binaries: a plain linear cost.
		p.cost[a] += cost
		return nil
	}
	p.pairs = append(p.pairs, pairCost{a: a, b: b, cost: cost})
	return nil
}

// Solution is an optimal assignment.
type Solution struct {
	Value float64
	X     []bool
}

const (
	unset int8 = iota
	vTrue
	vFalse
)

// Solve finds a minimum-cost feasible assignment; ok is false when the
// problem is infeasible.
func (p *Problem) Solve() (Solution, bool) {
	n := len(p.names)
	state := make([]int8, n)
	best := Solution{Value: math.Inf(1)}
	found := false

	// Branch variable order: group members first (they drive the
	// one-hots), then the rest.
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	for _, g := range p.groups {
		for _, v := range g {
			if !inOrder[v] {
				inOrder[v] = true
				order = append(order, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !inOrder[v] {
			order = append(order, v)
		}
	}
	// Indexes for incremental work.
	consByVar := make([][]int, n)
	for ci, c := range p.cons {
		for _, v := range c.vars {
			consByVar[v] = append(consByVar[v], ci)
		}
	}
	pairsByVar := make([][]int, n)
	for pi, pc := range p.pairs {
		pairsByVar[pc.a] = append(pairsByVar[pc.a], pi)
		pairsByVar[pc.b] = append(pairsByVar[pc.b], pi)
	}
	inGroup := make([]bool, n)
	for _, g := range p.groups {
		for _, v := range g {
			inGroup[v] = true
		}
	}

	var rec func(idx int, acc float64)
	rec = func(idx int, acc float64) {
		if acc+p.optimisticRemainder(state, inGroup) >= best.Value {
			return // bound
		}
		if idx == len(order) {
			if !p.feasible(state) {
				return
			}
			x := make([]bool, n)
			for v := range x {
				x[v] = state[v] == vTrue
			}
			best = Solution{Value: acc, X: x}
			found = true
			return
		}
		v := order[idx]
		if state[v] != unset {
			rec(idx+1, acc)
			return
		}
		// Try the cheaper value first so the first complete solution is
		// near-optimal and the bound prunes siblings aggressively.
		vals := [2]int8{vFalse, vTrue}
		if p.cost[v] < 0 {
			vals = [2]int8{vTrue, vFalse}
		}
		for _, val := range vals {
			state[v] = val
			add := 0.0
			if val == vTrue {
				add = p.cost[v]
				// Pair costs with already-true partners come due now.
				for _, pi := range pairsByVar[v] {
					pc := p.pairs[pi]
					other := pc.a
					if other == v {
						other = pc.b
					}
					if state[other] == vTrue {
						add += pc.cost
					}
				}
			}
			if p.consistentAfter(state, v, consByVar) {
				rec(idx+1, acc+add)
			}
			state[v] = unset
		}
	}
	rec(0, 0)
	return best, found
}

// consistentAfter checks only the invariants the assignment to v can
// have affected: its one-hot groups and its constraints.
func (p *Problem) consistentAfter(state []int8, v int, consByVar [][]int) bool {
	for _, g := range p.groups {
		member := false
		for _, gv := range g {
			if gv == v {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		trues, unsetCount := 0, 0
		for _, gv := range g {
			switch state[gv] {
			case vTrue:
				trues++
			case unset:
				unsetCount++
			}
		}
		if trues > 1 || (trues == 0 && unsetCount == 0) {
			return false
		}
	}
	for _, ci := range consByVar[v] {
		c := p.cons[ci]
		lo := 0.0
		for i, cv := range c.vars {
			switch state[cv] {
			case vTrue:
				lo += c.coef[i]
			case unset:
				if c.coef[i] < 0 {
					lo += c.coef[i]
				}
			}
		}
		if lo > c.rhs+1e-9 {
			return false
		}
	}
	return true
}

// feasible checks a complete assignment exactly.
func (p *Problem) feasible(state []int8) bool {
	for _, g := range p.groups {
		trues := 0
		for _, v := range g {
			if state[v] == vTrue {
				trues++
			}
		}
		if trues != 1 {
			return false
		}
	}
	for _, c := range p.cons {
		lhs := 0.0
		for i, v := range c.vars {
			if state[v] == vTrue {
				lhs += c.coef[i]
			}
		}
		if lhs > c.rhs+1e-9 {
			return false
		}
	}
	return true
}

// optimisticRemainder lower-bounds the cost still to be paid: each
// undecided one-hot group contributes its cheapest undecided-or-true
// member; variables outside groups contribute 0 (they can stay false
// when costs are non-negative) or their (negative) cost.
func (p *Problem) optimisticRemainder(state []int8, inGroup []bool) float64 {
	total := 0.0
	for _, g := range p.groups {
		decided := false
		cheapest := math.Inf(1)
		for _, v := range g {
			if state[v] == vTrue {
				decided = true
			}
			if state[v] == unset && p.cost[v] < cheapest {
				cheapest = p.cost[v]
			}
		}
		// An undecided group must still pick one member: at least its
		// cheapest undecided candidate. (Pair costs are non-negative and
		// contribute 0 to the lower bound.)
		if !decided && !math.IsInf(cheapest, 1) {
			total += cheapest
		}
	}
	// Ungrouped unset variables can stay false unless their cost is
	// negative, in which case the optimum may take them.
	for v, c := range p.cost {
		if state[v] == unset && !inGroup[v] && c < 0 {
			total += c
		}
	}
	return total
}
