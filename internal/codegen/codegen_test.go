package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/tiling"
)

// motivating builds the paper's two-nest fragment.
func motivating(n int64) *ir.Program {
	u, v, w := ir.NewArray("U", n, n), ir.NewArray("V", n, n), ir.NewArray("W", n, n)
	return &ir.Program{
		Name:   "motivating",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "", ir.AddConst(2)),
			}},
		},
	}
}

func seedStore(p *ir.Program, seed int64) *ir.Store {
	s := ir.NewStore(p.Arrays...)
	rng := rand.New(rand.NewSource(seed))
	for _, a := range p.Arrays {
		data := s.Data(a)
		for i := range data {
			data[i] = rng.Float64()
		}
	}
	return s
}

// matmul builds C += A*B as a depth-3 nest.
func matmul(n int64) *ir.Program {
	a, b, c := ir.NewArray("A", n, n), ir.NewArray("B", n, n), ir.NewArray("C", n, n)
	return &ir.Program{
		Name:   "matmul",
		Arrays: []*ir.Array{a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(c, 3, 0, 1),
					[]ir.Ref{ir.RefIdx(c, 3, 0, 1), ir.RefIdx(a, 3, 0, 2), ir.RefIdx(b, 3, 2, 1)},
					"muladd", ir.MulAdd()),
			}},
		},
	}
}

func allPlans(p *ir.Program) map[string]*core.Plan {
	var o core.Optimizer
	return map[string]*core.Plan{
		"col":   core.FixedLayouts(p, func(d []int64) *layout.Layout { return layout.ColMajor(d...) }),
		"row":   core.FixedLayouts(p, func(d []int64) *layout.Layout { return layout.RowMajor(d...) }),
		"l-opt": o.OptimizeLoopOnly(p),
		"d-opt": o.OptimizeDataOnly(p),
		"c-opt": o.OptimizeCombined(p),
	}
}

func TestSemanticsAllPlansAllStrategies(t *testing.T) {
	for _, mk := range []struct {
		name string
		prog *ir.Program
	}{
		{"motivating", motivating(24)},
		{"matmul", matmul(12)},
	} {
		init := seedStore(mk.prog, 42)
		for name, plan := range allPlans(mk.prog) {
			for _, strat := range []tiling.Strategy{tiling.Traditional, tiling.OutOfCore} {
				memBudget := int64(0)
				for _, a := range mk.prog.Arrays {
					memBudget += a.Len()
				}
				memBudget /= 4
				diff, err := Verify(mk.prog, plan, Options{Strategy: strat, MemBudget: memBudget}, 64, init)
				if err != nil {
					t.Errorf("%s/%s/%s: %v", mk.prog.Name, name, strat, err)
					continue
				}
				if diff != 0 {
					t.Errorf("%s/%s/%s: result differs by %g", mk.prog.Name, name, strat, diff)
				}
				_ = mk
			}
		}
	}
}

// TestFigure3OOCBeatsTraditional verifies the paper's Figure 3 claim at
// system level: with the c-opt plan, out-of-core tiling issues fewer
// I/O calls than traditional tiling for the same memory budget.
func TestFigure3OOCBeatsTraditional(t *testing.T) {
	p := motivating(32)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := seedStore(p, 7)
	memBudget := int64(32 * 32) // enough for a band but not whole arrays

	calls := map[tiling.Strategy]int64{}
	for _, strat := range []tiling.Strategy{tiling.Traditional, tiling.OutOfCore} {
		d, err := SetupDisk(p, plan, 64, init)
		if err != nil {
			t.Fatal(err)
		}
		mem := ooc.NewMemory(memBudget)
		if _, err := RunProgram(p, plan, d, mem, Options{Strategy: strat, MemBudget: memBudget}); err != nil {
			t.Fatal(err)
		}
		calls[strat] = d.Stats.Calls()
	}
	if calls[tiling.OutOfCore] >= calls[tiling.Traditional] {
		t.Errorf("OOC tiling %d calls >= traditional %d", calls[tiling.OutOfCore], calls[tiling.Traditional])
	}
}

func TestMemoryBudgetRespected(t *testing.T) {
	p := motivating(32)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := seedStore(p, 9)
	budget := int64(256)
	d, err := SetupDisk(p, plan, 0, init)
	if err != nil {
		t.Fatal(err)
	}
	mem := ooc.NewMemory(budget)
	if _, err := RunProgram(p, plan, d, mem, Options{Strategy: tiling.OutOfCore, MemBudget: budget}); err != nil {
		t.Fatal(err)
	}
	if mem.Peak() > budget {
		t.Errorf("peak memory %d exceeds budget %d", mem.Peak(), budget)
	}
	if mem.Used() != 0 {
		t.Errorf("leaked memory: %d", mem.Used())
	}
}

func TestPartitionedExecutionMatchesSerial(t *testing.T) {
	p := motivating(24)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := seedStore(p, 11)

	// Serial reference.
	ref := init.Clone()
	p.Execute(ref)

	// 4-way partitioned: run each part against the SAME disk (the
	// partitions touch disjoint output regions, like the paper's
	// communication-free parallelization).
	d, err := SetupDisk(p, plan, 64, init)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 4
	for _, n := range p.Nests {
		sched, err := Build(n, plan.Nests[n], Options{Strategy: tiling.OutOfCore, MemBudget: 24 * 24})
		if err != nil {
			t.Fatal(err)
		}
		for part := 0; part < parts; part++ {
			mem := ooc.NewMemory(24 * 24)
			if _, err := sched.ExecuteSlice(d, mem, part, parts); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := DiskToStore(p, d)
	for _, a := range p.Arrays {
		if diff := ir.MaxAbsDiff(ref, got, a); diff != 0 {
			t.Errorf("array %s differs by %g after partitioned run", a.Name, diff)
		}
	}
}

func TestPartitionSlicesDisjointAndComplete(t *testing.T) {
	p := motivating(20)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	n := p.Nests[0]
	sched, err := Build(n, plan.Nests[n], Options{Strategy: tiling.OutOfCore, MemBudget: 20 * 20})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for part := 0; part < 3; part++ {
		d, _ := SetupDisk(p, plan, 0, nil)
		mem := ooc.NewMemory(0)
		st, err := sched.ExecuteSlice(d, mem, part, 3)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Iterations
	}
	if total != n.Iterations() {
		t.Errorf("slices cover %d iterations, nest has %d", total, n.Iterations())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	p := motivating(8)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	if _, err := Build(p.Nests[0], nil, Options{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Build(p.Nests[0], plan.Nests[p.Nests[1]], Options{}); err == nil {
		t.Error("mismatched plan accepted")
	}
	// Impossible memory budget for OOC tiling: without fallback it must
	// error; with fallback it degrades to traditional tiling.
	if _, err := Build(p.Nests[0], plan.Nests[p.Nests[0]], Options{Strategy: tiling.OutOfCore, MemBudget: 3, NoFallback: true}); err == nil {
		t.Error("infeasible budget accepted with NoFallback")
	}
	if sched, err := Build(p.Nests[0], plan.Nests[p.Nests[0]], Options{Strategy: tiling.OutOfCore, MemBudget: 3}); err != nil {
		t.Errorf("fallback failed: %v", err)
	} else if sched.Spec.Strategy != tiling.Traditional {
		t.Errorf("fallback strategy = %s", sched.Spec.Strategy)
	}
	// A budget below even traditional B=1 stays an error.
	if _, err := Build(p.Nests[0], plan.Nests[p.Nests[0]], Options{Strategy: tiling.OutOfCore, MemBudget: 1}); err == nil {
		t.Error("hopeless budget accepted")
	}
	sched, err := Build(p.Nests[0], plan.Nests[p.Nests[0]], Options{Strategy: tiling.OutOfCore, MemBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := SetupDisk(p, plan, 0, nil)
	if _, err := sched.ExecuteSlice(d, ooc.NewMemory(64), 5, 2); err == nil {
		t.Error("bad partition accepted")
	}
}

func TestTransformedNestWithGuards(t *testing.T) {
	// A guarded statement (from code sinking) must execute exactly once
	// per original guard-satisfying iteration even under transformation
	// and tiling.
	const n = 10
	a := ir.NewArray("A", n)
	b := ir.NewArray("B", n, n)
	nest := &ir.Nest{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		{
			Out:   ir.RefIdx(a, 2, 0),
			F:     func(_ []float64, iv []int64) float64 { return float64(iv[0]) },
			Guard: []ir.GuardEq{{Level: 1, Value: 0}},
		},
		ir.Assign(ir.RefIdx(b, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 0)}, "", ir.AddConst(5)),
	}}
	p := &ir.Program{Name: "guards", Arrays: []*ir.Array{a, b}, Nests: []*ir.Nest{nest}}
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := ir.NewStore(a, b)
	diff, err := Verify(p, plan, Options{Strategy: tiling.OutOfCore, MemBudget: 4 * n * n}, 16, init)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("guarded nest differs by %g", diff)
	}
}

func TestStencilDependenceTilingLegality(t *testing.T) {
	// Stencil A(i,j) = A(i-1,j) + A(i,j-1): forward deps; tiling legal.
	const n = 12
	a := ir.NewArray("A", n+1, n+1)
	out := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 1})
	in1 := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{0, 1})
	in2 := ir.RefAffine(a, [][]int64{{1, 0}, {0, 1}}, []int64{1, 0})
	nest := &ir.Nest{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(out, []ir.Ref{in1, in2}, "", ir.Sum()),
	}}
	p := &ir.Program{Name: "stencil", Arrays: []*ir.Array{a}, Nests: []*ir.Nest{nest}}
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := seedStore(p, 5)
	diff, err := Verify(p, plan, Options{Strategy: tiling.OutOfCore, MemBudget: (n + 1) * (n + 1)}, 8, init)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("stencil differs by %g", diff)
	}
}

func TestScheduleString(t *testing.T) {
	p := motivating(16)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	sched, err := Build(p.Nests[1], plan.Nests[p.Nests[1]], Options{Strategy: tiling.OutOfCore, MemBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	out := sched.String()
	for _, want := range []string{"loop transformation", "read data tiles", "write data tiles", "end do", "do IT ="} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule listing missing %q:\n%s", want, out)
		}
	}
	// The innermost element loop must be untiled (full range), per
	// Section 3.3.
	if !strings.Contains(out, "do J' = 0, 15") {
		t.Errorf("innermost loop not rendered full-range:\n%s", out)
	}
}

// TestDryRunAccountingMatchesRealExecution pins the measurement mode to
// the executable truth: identical I/O calls, bytes and iteration counts.
func TestDryRunAccountingMatchesRealExecution(t *testing.T) {
	for _, progMk := range []func() *ir.Program{
		func() *ir.Program { return motivating(20) },
		func() *ir.Program { return matmul(10) },
	} {
		p := progMk()
		var o core.Optimizer
		plan := o.OptimizeCombined(p)
		budget := int64(0)
		for _, a := range p.Arrays {
			budget += a.Len()
		}
		budget /= 8
		opts := Options{Strategy: tiling.OutOfCore, MemBudget: budget}

		dReal, err := SetupDisk(p, plan, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		sReal, err := RunProgram(p, plan, dReal, ooc.NewMemory(budget), opts)
		if err != nil {
			t.Fatal(err)
		}

		optsDry := opts
		optsDry.DryRun = true
		dDry, err := SetupDiskOn(ooc.NewDisk(64).NoBacking(), p, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		sDry, err := RunProgram(p, plan, dDry, ooc.NewMemory(budget), optsDry)
		if err != nil {
			t.Fatal(err)
		}

		if dReal.Stats != dDry.Stats {
			t.Errorf("%s: stats diverge: real %+v dry %+v", p.Name, dReal.Stats, dDry.Stats)
		}
		if sReal.Iterations != sDry.Iterations || sReal.Tiles != sDry.Tiles {
			t.Errorf("%s: exec stats diverge: real %+v dry %+v", p.Name, sReal, sDry)
		}
	}
}

// TestFileBackedVerification runs a whole program against real files.
func TestFileBackedVerification(t *testing.T) {
	p := motivating(16)
	var o core.Optimizer
	plan := o.OptimizeCombined(p)
	init := seedStore(p, 21)
	ref := init.Clone()
	p.Execute(ref)

	d, err := SetupDiskOn(ooc.NewDisk(64).Dir(t.TempDir()), p, plan, init)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	budget := int64(16 * 16)
	if _, err := RunProgram(p, plan, d, ooc.NewMemory(budget), Options{
		Strategy: tiling.OutOfCore, MemBudget: budget,
	}); err != nil {
		t.Fatal(err)
	}
	got := DiskToStore(p, d)
	for _, a := range p.Arrays {
		if diff := ir.MaxAbsDiff(ref, got, a); diff != 0 {
			t.Errorf("file-backed array %s differs by %g", a.Name, diff)
		}
	}
}
