package codegen

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/ooc"
)

// SetupDisk creates every array of the program on a fresh in-memory
// disk under the plan's layouts and, when init is non-nil, loads
// initial contents from it (without charging I/O).
func SetupDisk(prog *ir.Program, plan *core.Plan, maxCallElems int64, init *ir.Store) (*ooc.Disk, error) {
	return SetupDiskOn(ooc.NewDisk(maxCallElems), prog, plan, init)
}

// SetupDiskOn creates the program's arrays on a caller-configured disk
// (file-backed via Dir, measurement-only via NoBacking, ...).
func SetupDiskOn(d *ooc.Disk, prog *ir.Program, plan *core.Plan, init *ir.Store) (*ooc.Disk, error) {
	for _, a := range prog.Arrays {
		l := plan.LayoutOf(a, nil)
		if l == nil {
			return nil, fmt.Errorf("codegen: no layout for array %s", a.Name)
		}
		arr, err := d.CreateArray(a, l)
		if err != nil {
			return nil, err
		}
		if init != nil {
			arr.FromStore(init)
		}
	}
	return d, nil
}

// RunProgram executes every nest of the program in order against the
// disk, as one processor (part 0 of 1).
func RunProgram(prog *ir.Program, plan *core.Plan, d *ooc.Disk, mem *ooc.Memory, opts Options) (ExecStats, error) {
	return RunProgramSlice(prog, plan, d, mem, opts, 0, 1)
}

// RunProgramSlice executes processor `part`'s share of every nest.
func RunProgramSlice(prog *ir.Program, plan *core.Plan, d *ooc.Disk, mem *ooc.Memory, opts Options, part, parts int) (ExecStats, error) {
	var total ExecStats
	for _, n := range prog.Nests {
		np := plan.Nests[n]
		if np == nil {
			return total, fmt.Errorf("codegen: nest %d missing from plan", n.ID)
		}
		sched, err := Build(n, np, opts)
		if err != nil {
			return total, err
		}
		st, err := sched.ExecuteSlice(d, mem, part, parts)
		if err != nil {
			return total, err
		}
		total.Iterations += st.Iterations
		total.Tiles += st.Tiles
	}
	return total, nil
}

// DiskToStore copies every array of the program from disk into a fresh
// in-core store, for result comparison.
func DiskToStore(prog *ir.Program, d *ooc.Disk) *ir.Store {
	s := ir.NewStore(prog.Arrays...)
	for _, a := range prog.Arrays {
		if arr := d.ArrayOf(a); arr != nil {
			arr.ToStore(s)
		}
	}
	return s
}

// Verify executes the program both in-core (reference) and out-of-core
// under the plan, and returns the maximum elementwise difference over
// all arrays. init seeds both executions identically.
func Verify(prog *ir.Program, plan *core.Plan, opts Options, maxCallElems int64, init *ir.Store) (float64, error) {
	ref := init.Clone()
	prog.Execute(ref)

	d, err := SetupDisk(prog, plan, maxCallElems, init)
	if err != nil {
		return 0, err
	}
	mem := ooc.NewMemory(opts.MemBudget)
	if _, err := RunProgram(prog, plan, d, mem, opts); err != nil {
		return 0, err
	}
	got := DiskToStore(prog, d)
	var worst float64
	for _, a := range prog.Arrays {
		if diff := ir.MaxAbsDiff(ref, got, a); diff > worst {
			worst = diff
		}
	}
	return worst, nil
}
