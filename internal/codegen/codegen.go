// Package codegen turns an optimized nest (loop transformation + file
// layouts + tiling strategy) into an executable out-of-core schedule.
//
// A schedule enumerates data tiles over the TRANSFORMED iteration
// space, reads each referenced array's footprint box through the ooc
// runtime (paying the I/O calls the layouts imply), executes the
// original statement semantics on the in-memory tiles (iterating the
// transformed space via Fourier-Motzkin bounds and mapping back through
// Q), and writes modified tiles out. Executing a schedule is therefore
// both a correctness check (results must match the in-core reference)
// and the measurement instrument for every experiment in the paper.
//
// Tiles are held per (array, access matrix) group: references that
// move together share one in-memory tile whose box is exact, while
// differently-patterned reads of the same array (e.g. A(i,k) and
// A(j,k) in syr2k) get independent tiles. A written array must have a
// single access-matrix group — otherwise in-memory copies could
// diverge — which Build rejects up front.
package codegen

import (
	"fmt"
	"time"

	"outcore/internal/core"
	"outcore/internal/deps"
	"outcore/internal/fm"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/tiling"
)

// Options configures schedule construction.
type Options struct {
	Strategy  tiling.Strategy
	MemBudget int64 // elements; 0 = unlimited
	// NoFallback disables the automatic fall-back to traditional tiling
	// when the out-of-core strategy cannot fit the memory budget.
	NoFallback bool
	// DryRun executes the schedule's control structure and I/O
	// accounting (calls, bytes, trace, memory budget) without moving
	// data or evaluating statements — the measurement mode used by the
	// parallel-performance simulator, where only the I/O behaviour and
	// iteration counts matter.
	DryRun bool
	// Engine, when non-nil, routes tile I/O through the concurrent tile
	// engine: group tiles are acquired from its LRU cache (fetched in
	// parallel on a miss), released with write-back dirty tracking, and
	// the next tile's footprints are prefetched while the current tile
	// computes. The engine's tile-count capacity replaces the Memory
	// budget, which is not consulted on this path. The caller owns the
	// engine: Flush/Close it before reading results or I/O stats so
	// dirty cached tiles reach the backend.
	Engine ooc.TileEngine
	// Obs, when it carries a trace, emits one KindCompute span per
	// executed tile (the statement-iteration work between I/O bursts) —
	// the counterpart to the engine's fetch/prefetch spans that makes
	// the compute/I/O overlap visible in the exported timeline. Dry
	// runs execute no compute and emit nothing.
	Obs *obs.Sink
}

// Schedule is an executable tiled out-of-core loop nest.
type Schedule struct {
	Nest *ir.Nest
	Plan *core.NestPlan
	Spec tiling.Spec

	dryRun    bool
	engine    ooc.TileEngine
	trace     *obs.Trace
	traceName string
	bounds    *fm.Bounds
	stmts     []schedStmt
	groups    []*refGroup
	writes    map[*ir.Array]bool
}

// refGroup is one (array, access matrix) tile group.
type refGroup struct {
	arr  *ir.Array
	m    *matrix.Int // composite access L·Q
	offs [][]int64   // offsets of the member references
}

// schedStmt binds each statement reference to its group.
type schedStmt struct {
	st       *ir.Stmt
	outGroup int
	outOff   []int64
	inGroup  []int
	inOff    [][]int64
}

// Build constructs the schedule for one nest under a plan.
func Build(n *ir.Nest, np *core.NestPlan, opts Options) (*Schedule, error) {
	if np == nil || np.Nest != n {
		return nil, fmt.Errorf("codegen: plan does not match nest %d", n.ID)
	}
	k := n.Depth()
	lo := make([]int64, k)
	hi := make([]int64, k)
	for i, l := range n.Loops {
		lo[i], hi[i] = l.Lo, l.Hi
	}
	s := &Schedule{Nest: n, Plan: np, writes: map[*ir.Array]bool{}, dryRun: opts.DryRun, engine: opts.Engine}
	if s.trace = opts.Obs.TraceOf(); s.trace != nil {
		s.traceName = fmt.Sprintf("nest-%d", n.ID)
	}
	s.bounds = fm.TransformedBounds(np.Q, lo, hi).Eliminate()

	groupOf := func(r ir.Ref) int {
		m := r.L.Mul(np.Q)
		for gi, g := range s.groups {
			if g.arr == r.Array && g.m.Equal(m) {
				g.offs = append(g.offs, r.Off)
				return gi
			}
		}
		s.groups = append(s.groups, &refGroup{arr: r.Array, m: m, offs: [][]int64{r.Off}})
		return len(s.groups) - 1
	}
	for _, st := range n.Body {
		ss := schedStmt{st: st, outGroup: groupOf(st.Out), outOff: st.Out.Off}
		s.writes[st.Out.Array] = true
		for _, r := range st.In {
			ss.inGroup = append(ss.inGroup, groupOf(r))
			ss.inOff = append(ss.inOff, r.Off)
		}
		s.stmts = append(s.stmts, ss)
	}
	// A written array must have exactly one access-matrix group.
	for _, a := range s.writtenArrays() {
		count := 0
		for _, g := range s.groups {
			if g.arr == a {
				count++
			}
		}
		if count > 1 {
			return nil, fmt.Errorf("codegen: nest %d: array %s is written and accessed through %d access patterns; aliased multi-pattern updates are not supported", n.ID, a.Name, count)
		}
	}

	// Tiling legality: the tiled band must be fully permutable under the
	// TRANSFORMED dependences.
	tds := transformDeps(deps.Analyze(n), np.T)
	band := k - 1
	if opts.Strategy == tiling.Traditional {
		band = k
	}
	if !deps.FullyPermutable(tds, 0, band) {
		return nil, fmt.Errorf("codegen: nest %d: tiled band not fully permutable under transformed dependences", n.ID)
	}

	tlo, thi := tiling.TransformedBox(np.T, lo, hi)
	spec, err := tiling.Choose(s.groupAccesses(), tlo, thi, opts.MemBudget, opts.Strategy)
	if err != nil && opts.Strategy == tiling.OutOfCore && !opts.NoFallback {
		// A nest whose innermost loop sweeps too much data for the budget
		// (e.g. many small vectors) falls back to traditional tiling, as
		// a real out-of-core compiler must.
		spec, err = tiling.Choose(s.groupAccesses(), tlo, thi, opts.MemBudget, tiling.Traditional)
	}
	if err != nil {
		return nil, fmt.Errorf("codegen: nest %d: %w", n.ID, err)
	}
	s.Spec = spec
	return s, nil
}

// groupAccesses converts tile groups to the tiling package's per-group
// footprint inputs (one RefAccess per group per member offset; the
// estimator unions offsets within a group key).
func (s *Schedule) groupAccesses() []tiling.RefAccess {
	var out []tiling.RefAccess
	for gi, g := range s.groups {
		for _, off := range g.offs {
			out = append(out, tiling.RefAccess{Array: g.arr, M: g.m, Off: off, Group: gi})
		}
	}
	return out
}

func (s *Schedule) writtenArrays() []*ir.Array {
	var out []*ir.Array
	seen := map[*ir.Array]bool{}
	for _, st := range s.stmts {
		a := st.st.Out.Array
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// transformDeps maps dependence vectors through T.
func transformDeps(ds []deps.Dependence, t *matrix.Int) []deps.Dependence {
	out := make([]deps.Dependence, 0, len(ds))
	for _, d := range ds {
		if !d.Uniform {
			nd := d
			nd.Dirs = deps.TransformDirs(t, d.Dirs)
			out = append(out, nd)
			continue
		}
		nd := d
		nd.Distance = t.MulVec(d.Distance)
		nd.Dirs = make([]deps.Dir, len(nd.Distance))
		for i, x := range nd.Distance {
			switch {
			case x > 0:
				nd.Dirs[i] = deps.Pos
			case x < 0:
				nd.Dirs[i] = deps.Neg
			default:
				nd.Dirs[i] = deps.Zero
			}
		}
		out = append(out, nd)
	}
	return out
}

// ExecStats reports what one schedule execution did.
type ExecStats struct {
	Iterations int64 // statement-loop iterations executed
	Tiles      int64 // non-empty tiles processed
}

// Execute runs the whole schedule against the disk.
func (s *Schedule) Execute(d *ooc.Disk, mem *ooc.Memory) (ExecStats, error) {
	return s.ExecuteSlice(d, mem, 0, 1)
}

// ExecuteSlice runs the schedule's share for processor `part` of
// `parts`: the outermost tile loop is block-partitioned, the paper's
// communication-free parallelization.
func (s *Schedule) ExecuteSlice(d *ooc.Disk, mem *ooc.Memory, part, parts int) (ExecStats, error) {
	if parts < 1 || part < 0 || part >= parts {
		return ExecStats{}, fmt.Errorf("codegen: bad partition %d/%d", part, parts)
	}
	var stats ExecStats
	if !s.bounds.Feasible() {
		return stats, nil
	}
	k := s.Spec.Depth()
	// Tile counts along level 0 for block partitioning.
	nt0 := ceilDiv(s.Spec.Hi[0]-s.Spec.Lo[0]+1, s.Spec.Sizes[0])
	t0from, t0to := blockRange(nt0, int64(part), int64(parts))

	if s.engine != nil && !s.dryRun {
		err := s.executeSliceEngine(d, t0from, t0to, &stats)
		return stats, err
	}
	origin := make([]int64, k)
	var rec func(lvl int) error
	rec = func(lvl int) error {
		if lvl == k {
			return s.runTile(d, mem, origin, &stats)
		}
		from, to := s.Spec.Lo[lvl], s.Spec.Hi[lvl]
		step := s.Spec.Sizes[lvl]
		if lvl == 0 {
			from = s.Spec.Lo[0] + t0from*step
			to = s.Spec.Lo[0] + t0to*step - 1
			if to > s.Spec.Hi[0] {
				to = s.Spec.Hi[0]
			}
		}
		for o := from; o <= to; o += step {
			origin[lvl] = o
			if err := rec(lvl + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0)
	return stats, err
}

// executeSliceEngine runs the partition's tiles through the concurrent
// tile engine: the tile origins are materialized up front so that while
// tile i computes, tile i+1's read footprints are already being
// prefetched — the PASSION double-buffering pattern.
func (s *Schedule) executeSliceEngine(d *ooc.Disk, t0from, t0to int64, stats *ExecStats) error {
	k := s.Spec.Depth()
	var origins [][]int64
	origin := make([]int64, k)
	var rec func(lvl int)
	rec = func(lvl int) {
		if lvl == k {
			origins = append(origins, append([]int64(nil), origin...))
			return
		}
		from, to := s.Spec.Lo[lvl], s.Spec.Hi[lvl]
		step := s.Spec.Sizes[lvl]
		if lvl == 0 {
			from = s.Spec.Lo[0] + t0from*step
			to = s.Spec.Lo[0] + t0to*step - 1
			if to > s.Spec.Hi[0] {
				to = s.Spec.Hi[0]
			}
		}
		for o := from; o <= to; o += step {
			origin[lvl] = o
			rec(lvl + 1)
		}
	}
	rec(0)
	for i, org := range origins {
		var next []int64
		if i+1 < len(origins) {
			next = origins[i+1]
		}
		if err := s.runTileEngine(d, org, next, stats); err != nil {
			return err
		}
	}
	return nil
}

// tileBounds returns the inclusive iteration-space bounds of the tile
// at origin, clipped to the spec.
func (s *Schedule) tileBounds(origin []int64) (tLo, tHi []int64) {
	k := s.Spec.Depth()
	tLo = make([]int64, k)
	tHi = make([]int64, k)
	for lvl := 0; lvl < k; lvl++ {
		tLo[lvl] = origin[lvl]
		tHi[lvl] = origin[lvl] + s.Spec.Sizes[lvl] - 1
		if tHi[lvl] > s.Spec.Hi[lvl] {
			tHi[lvl] = s.Spec.Hi[lvl]
		}
	}
	return tLo, tHi
}

// runTile processes one tile: read group footprints, execute
// iterations, write back.
func (s *Schedule) runTile(d *ooc.Disk, mem *ooc.Memory, origin []int64, stats *ExecStats) error {
	k := s.Spec.Depth()
	tLo, tHi := s.tileBounds(origin)
	if s.dryRun {
		return s.dryRunTile(d, mem, tLo, tHi, stats)
	}
	tiles := make([]*ooc.Tile, len(s.groups))
	var allocated int64
	var tileErr error
	loaded := false
	ensureTiles := func() bool {
		if loaded || tileErr != nil {
			return tileErr == nil
		}
		loaded = true
		for gi, g := range s.groups {
			box := g.footprintBox(tLo, tHi)
			if box.Empty() {
				continue
			}
			if err := mem.Alloc(box.Size()); err != nil {
				tileErr = err
				return false
			}
			allocated += box.Size()
			arr := d.ArrayOf(g.arr)
			if arr == nil {
				tileErr = fmt.Errorf("codegen: array %s not on disk", g.arr.Name)
				return false
			}
			tile, err := arr.ReadTile(box)
			if err != nil {
				tileErr = err
				return false
			}
			tiles[gi] = tile
		}
		return true
	}

	iterated := false
	origIv := make([]int64, k)
	coord := make([]int64, 0, 8)
	t0 := s.computeStart()
	s.enumerateWithin(tLo, tHi, func(iv []int64) {
		if tileErr != nil {
			return
		}
		if !ensureTiles() {
			return
		}
		iterated = true
		stats.Iterations++
		// Original iteration vector for guards and statement functions.
		for r := 0; r < k; r++ {
			var acc int64
			for c := 0; c < k; c++ {
				acc += s.Plan.Q.At(r, c) * iv[c]
			}
			origIv[r] = acc
		}
		for _, ss := range s.stmts {
			if !ss.st.Guarded(origIv) {
				continue
			}
			in := make([]float64, len(ss.inGroup))
			for i, gi := range ss.inGroup {
				coord = elementCoord(coord[:0], s.groups[gi].m, ss.inOff[i], iv)
				in[i] = tiles[gi].Get(coord)
			}
			v := ss.st.F(in, origIv)
			coord = elementCoord(coord[:0], s.groups[ss.outGroup].m, ss.outOff, iv)
			tiles[ss.outGroup].Set(coord, v)
		}
	})
	s.computeEnd(t0)
	if tileErr != nil {
		return tileErr
	}
	if iterated {
		stats.Tiles++
		for gi, g := range s.groups {
			if s.writes[g.arr] && tiles[gi] != nil {
				if err := tiles[gi].WriteTile(); err != nil {
					return err
				}
			}
		}
	}
	mem.Release(allocated)
	return nil
}

// runTileEngine processes one tile through the concurrent engine:
// acquire the group footprints from the cache (parallel fetch on
// misses), kick off prefetches for the next tile's read-only
// footprints, execute the iterations, and release with dirty marking so
// write-back happens on eviction or flush.
func (s *Schedule) runTileEngine(d *ooc.Disk, origin, next []int64, stats *ExecStats) error {
	k := s.Spec.Depth()
	tLo, tHi := s.tileBounds(origin)
	if s.countWithin(tLo, tHi) == 0 {
		return nil
	}
	var reqs []ooc.TileReq
	var reqGroup []int
	tiles := make([]*ooc.Tile, len(s.groups))
	for gi, g := range s.groups {
		box := g.footprintBox(tLo, tHi)
		if box.Empty() {
			continue
		}
		arr := d.ArrayOf(g.arr)
		if arr == nil {
			return fmt.Errorf("codegen: array %s not on disk", g.arr.Name)
		}
		reqs = append(reqs, ooc.TileReq{Arr: arr, Box: box})
		reqGroup = append(reqGroup, gi)
	}
	handles, err := s.engine.AcquireAll(reqs)
	if err != nil {
		return err
	}
	for i, h := range handles {
		tiles[reqGroup[i]] = h.Tile()
	}
	// Double buffering: while this tile computes, the workers read the
	// next tile's footprints. Written arrays are excluded — their boxes
	// may be dirtied by this tile's release, which would force the
	// prefetched copy to be discarded and re-read (extra I/O the
	// sequential runtime never pays). The same economics gate the whole
	// batch on cache capacity: unless the cache can hold this tile's
	// pinned working set plus the prefetched tiles, prefetching evicts
	// tiles before they are used and inflates the call count instead of
	// hiding it.
	if next != nil {
		nLo, nHi := s.tileBounds(next)
		if s.countWithin(nLo, nHi) > 0 {
			var pre []ooc.TileReq
			for _, g := range s.groups {
				if s.writes[g.arr] {
					continue
				}
				box := g.footprintBox(nLo, nHi)
				if box.Empty() {
					continue
				}
				if arr := d.ArrayOf(g.arr); arr != nil {
					pre = append(pre, ooc.TileReq{Arr: arr, Box: box})
				}
			}
			if s.engine.Capacity() >= len(reqs)+len(pre) {
				for _, p := range pre {
					s.engine.Prefetch(p.Arr, p.Box)
				}
			}
		}
	}
	stats.Tiles++
	origIv := make([]int64, k)
	coord := make([]int64, 0, 8)
	t0 := s.computeStart()
	s.enumerateWithin(tLo, tHi, func(iv []int64) {
		stats.Iterations++
		for r := 0; r < k; r++ {
			var acc int64
			for c := 0; c < k; c++ {
				acc += s.Plan.Q.At(r, c) * iv[c]
			}
			origIv[r] = acc
		}
		for _, ss := range s.stmts {
			if !ss.st.Guarded(origIv) {
				continue
			}
			in := make([]float64, len(ss.inGroup))
			for i, gi := range ss.inGroup {
				coord = elementCoord(coord[:0], s.groups[gi].m, ss.inOff[i], iv)
				in[i] = tiles[gi].Get(coord)
			}
			v := ss.st.F(in, origIv)
			coord = elementCoord(coord[:0], s.groups[ss.outGroup].m, ss.outOff, iv)
			tiles[ss.outGroup].Set(coord, v)
		}
	})
	s.computeEnd(t0)
	for i, h := range handles {
		s.engine.Release(h, s.writes[s.groups[reqGroup[i]].arr])
	}
	return nil
}

// computeStart/computeEnd bracket one tile's statement execution as a
// KindCompute trace span; without an attached trace they cost a nil
// check and a zero time.Time.
func (s *Schedule) computeStart() time.Time {
	if s.trace == nil {
		return time.Time{}
	}
	return time.Now()
}

func (s *Schedule) computeEnd(t0 time.Time) {
	if s.trace == nil || t0.IsZero() {
		return
	}
	s.trace.Emit(obs.Event{Kind: obs.KindCompute, Name: s.traceName,
		Start: s.trace.Stamp(t0), Dur: time.Since(t0).Nanoseconds()})
}

// dryRunTile accounts one tile's I/O and iteration count without
// touching data.
func (s *Schedule) dryRunTile(d *ooc.Disk, mem *ooc.Memory, tLo, tHi []int64, stats *ExecStats) error {
	iters := s.countWithin(tLo, tHi)
	if iters == 0 {
		return nil
	}
	stats.Iterations += iters
	stats.Tiles++
	if s.engine != nil {
		// Cached dry run: the engine's tile cache decides which touches
		// reach the backend accounting; the memory budget is replaced by
		// the cache's tile-count capacity.
		for _, g := range s.groups {
			box := g.footprintBox(tLo, tHi)
			if box.Empty() {
				continue
			}
			arr := d.ArrayOf(g.arr)
			if arr == nil {
				return fmt.Errorf("codegen: array %s not on disk", g.arr.Name)
			}
			s.engine.Touch(arr, box, s.writes[g.arr])
		}
		return nil
	}
	var allocated int64
	for _, g := range s.groups {
		box := g.footprintBox(tLo, tHi)
		if box.Empty() {
			continue
		}
		if err := mem.Alloc(box.Size()); err != nil {
			return err
		}
		allocated += box.Size()
		arr := d.ArrayOf(g.arr)
		if arr == nil {
			return fmt.Errorf("codegen: array %s not on disk", g.arr.Name)
		}
		arr.TouchRead(box)
		if s.writes[g.arr] {
			arr.TouchWrite(box)
		}
	}
	mem.Release(allocated)
	return nil
}

// countWithin counts the integer points of the transformed space
// restricted to the tile box without visiting them individually: the
// innermost level contributes its range length directly, which makes
// dry runs cost O(points / innermost-extent).
func (s *Schedule) countWithin(tLo, tHi []int64) int64 {
	k := s.Spec.Depth()
	iv := make([]int64, k)
	var rec func(lvl int) int64
	rec = func(lvl int) int64 {
		lo, hi, empty := s.bounds.Range(lvl, iv[:lvl])
		if empty {
			return 0
		}
		if lo < tLo[lvl] {
			lo = tLo[lvl]
		}
		if hi > tHi[lvl] {
			hi = tHi[lvl]
		}
		if hi < lo {
			return 0
		}
		if lvl == k-1 {
			return hi - lo + 1
		}
		var n int64
		for v := lo; v <= hi; v++ {
			iv[lvl] = v
			n += rec(lvl + 1)
		}
		return n
	}
	return rec(0)
}

// enumerateWithin visits the integer points of the transformed space
// restricted to the tile box, in lexicographic order.
func (s *Schedule) enumerateWithin(tLo, tHi []int64, visit func(iv []int64)) {
	k := s.Spec.Depth()
	iv := make([]int64, k)
	var rec func(lvl int)
	rec = func(lvl int) {
		if lvl == k {
			visit(iv)
			return
		}
		lo, hi, empty := s.bounds.Range(lvl, iv[:lvl])
		if empty {
			return
		}
		if lo < tLo[lvl] {
			lo = tLo[lvl]
		}
		if hi > tHi[lvl] {
			hi = tHi[lvl]
		}
		for v := lo; v <= hi; v++ {
			iv[lvl] = v
			rec(lvl + 1)
		}
	}
	rec(0)
}

// footprintBox returns the clipped bounding box of the group's accesses
// over the tile iteration box [tLo, tHi] (inclusive). Exact for the
// group because all members share the access matrix.
func (g *refGroup) footprintBox(tLo, tHi []int64) layout.Box {
	rank := g.arr.Rank()
	lo := make([]int64, rank)
	hi := make([]int64, rank)
	for d := 0; d < rank; d++ {
		mn, mx := int64(0), int64(0)
		for j := 0; j < g.m.Cols(); j++ {
			c := g.m.At(d, j)
			if c > 0 {
				mn += c * tLo[j]
				mx += c * tHi[j]
			} else {
				mn += c * tHi[j]
				mx += c * tLo[j]
			}
		}
		offLo, offHi := g.offs[0][d], g.offs[0][d]
		for _, off := range g.offs[1:] {
			if off[d] < offLo {
				offLo = off[d]
			}
			if off[d] > offHi {
				offHi = off[d]
			}
		}
		lo[d] = mn + offLo
		hi[d] = mx + offHi + 1 // half-open
	}
	return layout.NewBox(lo, hi).Clip(g.arr.Dims)
}

func elementCoord(dst []int64, m *matrix.Int, off []int64, iv []int64) []int64 {
	for r := 0; r < m.Rows(); r++ {
		var acc int64
		for c := 0; c < m.Cols(); c++ {
			acc += m.At(r, c) * iv[c]
		}
		dst = append(dst, acc+off[r])
	}
	return dst
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// blockRange splits n items into `parts` blocks and returns the
// half-open item range of block `part`.
func blockRange(n, part, parts int64) (from, to int64) {
	base := n / parts
	rem := n % parts
	from = part*base + minI64(part, rem)
	to = from + base
	if part < rem {
		to++
	}
	return from, to
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
