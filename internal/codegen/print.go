package codegen

import (
	"fmt"
	"strings"

	"outcore/internal/ir"
)

// String renders the schedule as the paper's tiled pseudo-Fortran
// (Section 3.3 listings): tile loops over the transformed space, the
// tile read set, element loops, the statements, and the write-back
// set.
func (s *Schedule) String() string {
	var b strings.Builder
	k := s.Spec.Depth()
	fmt.Fprintf(&b, "! nest %d: %s\n", s.Nest.ID, s.Spec)
	if !s.Plan.Identity() {
		fmt.Fprintf(&b, "! loop transformation T =\n")
		for r := 0; r < k; r++ {
			fmt.Fprintf(&b, "!   %v\n", s.Plan.T.Row(r))
		}
	}
	indent := 0
	writeIndent := func() {
		for i := 0; i < indent; i++ {
			b.WriteString("  ")
		}
	}
	// Tile loops (levels whose size does not cover the whole extent).
	tiled := make([]bool, k)
	for lvl := 0; lvl < k; lvl++ {
		ext := s.Spec.Hi[lvl] - s.Spec.Lo[lvl] + 1
		tiled[lvl] = s.Spec.Sizes[lvl] < ext
		if tiled[lvl] {
			writeIndent()
			fmt.Fprintf(&b, "do %sT = %d, %d, %d\n", tileIndexName(lvl), s.Spec.Lo[lvl], s.Spec.Hi[lvl], s.Spec.Sizes[lvl])
			indent++
		}
	}
	// Tile I/O.
	writeIndent()
	var names []string
	for _, g := range s.groups {
		names = append(names, g.arr.Name)
	}
	fmt.Fprintf(&b, "< read data tiles for %s >\n", strings.Join(dedupStrings(names), ", "))
	// Element loops.
	for lvl := 0; lvl < k; lvl++ {
		writeIndent()
		name := tileIndexName(lvl)
		if tiled[lvl] {
			fmt.Fprintf(&b, "do %s' = %sT, min(%sT+%d-1, %d)\n", name, name, name, s.Spec.Sizes[lvl], s.Spec.Hi[lvl])
		} else {
			fmt.Fprintf(&b, "do %s' = %d, %d\n", name, s.Spec.Lo[lvl], s.Spec.Hi[lvl])
		}
		indent++
	}
	for _, st := range s.stmts {
		writeIndent()
		b.WriteString(st.st.String())
		b.WriteByte('\n')
	}
	for lvl := k - 1; lvl >= 0; lvl-- {
		indent--
		writeIndent()
		b.WriteString("end do\n")
	}
	// Write-back (deterministic order).
	var written []string
	for _, a := range s.writtenArrays() {
		written = append(written, a.Name)
	}
	writeIndent()
	fmt.Fprintf(&b, "< write data tiles for %s >\n", strings.Join(dedupStrings(written), ", "))
	for lvl := k - 1; lvl >= 0; lvl-- {
		if tiled[lvl] {
			indent--
			writeIndent()
			b.WriteString("end do\n")
		}
	}
	return b.String()
}

func tileIndexName(level int) string {
	return strings.ToUpper(ir.IndexName(level))
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
