package dst

// Tenant episodes: the deterministic-simulation discipline applied to
// the multi-tenant admission plane (PR 10). A seeded scheduler drives
// two tenants — a weighted interactive "point" tenant and a streaming
// "scan" tenant — through a {router + N nodes, R replicas}
// LocalCluster while killing, partitioning, and healing nodes
// underneath them, and checks the three properties the tenant plane
// must keep under faults:
//
//   - no DRR wedge: after EVERY round — mid-fault included — a point
//     request gets a verdict (2xx/429/503) within the client deadline.
//     A hang means a queue slot or deficit-round-robin grant was lost
//     to a crash and the plane stopped draining.
//
//   - clean verdicts only: every request the plane admits either
//     completes or fails with an explicit, expected status. Scans
//     abandoned mid-stream (the crash-severed connection) must release
//     their chunk slots rather than strand them.
//
//   - no queue-slot leaks: after the epilogue heal, the router's
//     admission pool is empty (inflight 0, queued 0, every per-tenant
//     queue 0), both tenants can still get work done, and a full scan
//     streams to its trailer.
//
// Data durability under these same faults is the cluster and operator
// episodes' job; tenant episodes only assert the admission plane.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"outcore/internal/cluster"
	"outcore/internal/layout"
	"outcore/internal/server"
)

const (
	pointTenant = "point"
	scanTenant  = "scan"
)

// TenantsOptions configures one tenant episode. The zero value gets
// sane defaults from RunTenants; Seed alone is enough.
type TenantsOptions struct {
	Seed int64

	Rounds    int   // scheduler steps (default 40)
	Nodes     int   // storage nodes (default 3)
	Replicas  int   // copies per tile (default 2)
	Tiles     int   // tile-grid length (default 8)
	TileElems int64 // elements per tile (default 16)

	// MaxInflight shrinks each plane's admission pool so contention
	// actually queues (default 2). QueueDepth bounds the queues so
	// overload answers 503 instead of growing (default 16).
	MaxInflight int
	QueueDepth  int

	HintDir    string // durable hint-log directory ("" = in-memory hints)
	MaxPending int    // epilogue probe rounds allowed to drain/recover (default 10)
}

func (o TenantsOptions) withDefaults() TenantsOptions {
	if o.Rounds <= 0 {
		o.Rounds = 40
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Tiles <= 0 {
		o.Tiles = 8
	}
	if o.TileElems <= 0 {
		o.TileElems = 16
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 10
	}
	return o
}

// TenantsResult is one tenant episode's verdict.
type TenantsResult struct {
	Seed int64

	Rounds       int
	PointReqs    int // point-tenant requests issued (bursts + wedge probes)
	PointOK      int // of those, 200s
	Scans        int // scan streams started
	ScanChunks   int // intact chunks consumed across all streams
	ScanAbandons int // streams abandoned mid-flight (slot-release path)
	Rejects      int // clean 429/503 verdicts (surfaced, not hidden)
	Kills        int // node crashes injected
	Partitions   int // router→node partitions injected
	Heals        int // scheduled whole-cluster heals

	Violations []string
	OpLog      string
}

// Failed reports whether any invariant was violated.
func (r *TenantsResult) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-line verdict.
func (r *TenantsResult) Summary() string {
	verdict := "ok"
	if r.Failed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("tenants seed=%d rounds=%d point=%d ok=%d scans=%d chunks=%d abandons=%d rejects=%d kills=%d parts=%d heals=%d %s",
		r.Seed, r.Rounds, r.PointReqs, r.PointOK, r.Scans, r.ScanChunks,
		r.ScanAbandons, r.Rejects, r.Kills, r.Partitions, r.Heals, verdict)
}

// tenantsEpisode is the running state of one seeded tenant episode.
type tenantsEpisode struct {
	o   TenantsOptions
	rng *rand.Rand
	lc  *cluster.LocalCluster
	res *TenantsResult
	log strings.Builder

	// httpc turns a wedged admission queue into a visible verdict: any
	// request that outlives the deadline is a violation, not a hang.
	httpc *http.Client
}

// wedgeDeadline bounds every tenant-episode request. It is generous —
// a healthy plane answers in milliseconds even mid-fault, because a
// down replica is a fast 503, not a slow success — so tripping it
// means the admission queue genuinely stopped draining.
const wedgeDeadline = 15 * time.Second

// RunTenants executes one seeded tenant episode. Violations are
// collected, never panicked, so a harness can sweep many seeds and
// report every failing one.
func RunTenants(o TenantsOptions) *TenantsResult {
	o = o.withDefaults()
	ep := &tenantsEpisode{
		o:     o,
		rng:   rand.New(rand.NewSource(o.Seed)),
		res:   &TenantsResult{Seed: o.Seed},
		httpc: &http.Client{Timeout: wedgeDeadline},
	}
	lc, err := cluster.NewLocal(cluster.LocalOptions{
		Nodes:       o.Nodes,
		Replicas:    o.Replicas,
		TileDim:     o.TileElems, // 1-D grid: one routing tile per model tile
		DurablePuts: true,
		HintDir:     o.HintDir,
		Seed:        o.Seed + 1,
		MaxInflight: o.MaxInflight,
		QueueDepth:  o.QueueDepth,
		Tenants: server.TenantConfig{
			Weights:         map[string]float64{pointTenant: 4, scanTenant: 1},
			MaxScanInflight: 2,
		},
	})
	if err != nil {
		ep.violate("building cluster: %v", err)
		return ep.res
	}
	ep.lc = lc
	defer lc.Close()
	if err := lc.CreateArray(arrayName, int64(o.Tiles)*o.TileElems); err != nil {
		ep.violate("creating %s: %v", arrayName, err)
		return ep.res
	}
	// Seed every tile so point reads and scans have real data to serve.
	cli := lc.Client().ForTenant(pointTenant)
	for t := 0; t < o.Tiles; t++ {
		data := make([]float64, o.TileElems)
		for i := range data {
			data[i] = float64(t + 1)
		}
		if _, _, err := cli.PutTile(arrayName, ep.tileBox(t), data, 0, true); err != nil {
			ep.violate("seeding tile %d: %v", t, err)
			return ep.res
		}
	}

	for round := 0; round < o.Rounds; round++ {
		ep.res.Rounds++
		switch u := ep.rng.Float64(); {
		case u < 0.35:
			ep.pointBurst()
		case u < 0.65:
			ep.scanStream()
		case u < 0.85:
			ep.fault()
		default:
			ep.heal("scheduled")
		}
		// The no-wedge invariant, checked after EVERY round: the plane
		// must hand the point tenant a verdict no matter what just died.
		ep.wedgeProbe(round)
	}
	ep.epilogue()
	ep.res.OpLog = ep.log.String()
	return ep.res
}

// tileBox returns model tile t's (routing-aligned) box.
func (ep *tenantsEpisode) tileBox(t int) layout.Box {
	lo := int64(t) * ep.o.TileElems
	return layout.NewBox([]int64{lo}, []int64{lo + ep.o.TileElems})
}

// pointGet issues one tenant-stamped tile GET through the router and
// classifies the verdict. It returns the status code (0 on transport
// error) and whether the verdict was clean.
func (ep *tenantsEpisode) pointGet(t int, where string) int {
	box := ep.tileBox(t)
	url := fmt.Sprintf("%s/v1/arrays/%s/tile?lo=%d&hi=%d",
		ep.lc.RouterURL, arrayName, box.Lo[0], box.Hi[0])
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		ep.violate("%s: building request: %v", where, err)
		return 0
	}
	req.Header.Set(server.TenantHeader, pointTenant)
	ep.res.PointReqs++
	resp, err := ep.httpc.Do(req)
	if err != nil {
		// The router itself never dies in this episode, so a transport
		// failure is the wedge the deadline exists to expose.
		ep.violate("%s: point GET tile %d got no verdict: %v", where, t, err)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		ep.res.PointOK++
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		ep.res.Rejects++
	default:
		ep.violate("%s: point GET tile %d: unexpected status %d", where, t, resp.StatusCode)
	}
	return resp.StatusCode
}

// pointBurst fires a short burst of point-tenant reads — the
// interactive traffic whose tail the plane exists to protect.
func (ep *tenantsEpisode) pointBurst() {
	n := 1 + ep.rng.Intn(4)
	ok := 0
	for i := 0; i < n; i++ {
		if ep.pointGet(ep.rng.Intn(ep.o.Tiles), "burst") == http.StatusOK {
			ok++
		}
	}
	ep.logf("point burst n=%d ok=%d", n, ok)
}

// scanStream streams a scan as the scan tenant, maybe abandoning the
// connection mid-stream (the crash-severed client) and maybe killing a
// node underneath it. Abandonment is the point: the chunk slots and
// admission state it held must come back to the plane, which the
// per-round wedge probe and the epilogue leak check verify.
func (ep *tenantsEpisode) scanStream() {
	ep.res.Scans++
	total := int64(ep.o.Tiles) * ep.o.TileElems
	lo := ep.rng.Int63n(total - 1)
	hi := lo + 1 + ep.rng.Int63n(total-lo)
	chunkElems := 1 + ep.rng.Int63n(ep.o.TileElems*2)
	url := fmt.Sprintf("%s/v1/arrays/%s/scan?lo=%d&hi=%d&chunk=%d",
		ep.lc.RouterURL, arrayName, lo, hi, chunkElems)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		ep.violate("scan: building request: %v", err)
		return
	}
	req.Header.Set(server.TenantHeader, scanTenant)
	resp, err := ep.httpc.Do(req)
	if err != nil {
		ep.violate("scan [%d,%d): got no verdict: %v", lo, hi, err)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		ep.res.Rejects++
		ep.logf("scan [%d,%d) -> rejected %d", lo, hi, resp.StatusCode)
		return
	default:
		io.Copy(io.Discard, resp.Body)
		ep.violate("scan [%d,%d): unexpected status %d", lo, hi, resp.StatusCode)
		return
	}

	abandonAfter := -1
	if ep.rng.Intn(2) == 0 {
		abandonAfter = 1 + ep.rng.Intn(4)
	}
	killAt := -1
	if ep.rng.Intn(4) == 0 {
		killAt = ep.rng.Intn(3)
	}
	sr := server.NewScanReader(resp.Body)
	got := 0
	for {
		if got == abandonAfter {
			ep.res.ScanAbandons++
			ep.logf("scan [%d,%d) -> abandoned after %d chunks", lo, hi, got)
			return
		}
		if got == killAt {
			i := ep.rng.Intn(ep.lc.Nodes())
			if !ep.lc.Killed(i) && !ep.lc.Partitioned(i) {
				ep.res.Kills++
				ep.lc.Kill(i)
				ep.logf("scan [%d,%d) -> kill n%d under the stream", lo, hi, i)
			}
			killAt = -1
		}
		ch, err := sr.Next()
		if err == io.EOF {
			ep.logf("scan [%d,%d) -> complete, %d chunks", lo, hi, got)
			return
		}
		if err != nil {
			// A severed stream (node died under it) is a clean failure:
			// the client saw exactly where it stopped and could resume.
			ep.res.Rejects++
			ep.logf("scan [%d,%d) -> stream cut after %d chunks: %v", lo, hi, got, err)
			return
		}
		_ = ch
		got++
		ep.res.ScanChunks++
	}
}

// fault crashes or partitions one random node.
func (ep *tenantsEpisode) fault() {
	i := ep.rng.Intn(ep.lc.Nodes())
	if ep.lc.Killed(i) || ep.lc.Partitioned(i) {
		ep.logf("fault n%d skipped (already down)", i)
		return
	}
	if ep.rng.Intn(2) == 0 {
		ep.res.Kills++
		ep.lc.Kill(i)
		ep.logf("kill n%d", i)
	} else {
		ep.res.Partitions++
		ep.lc.Partition(i)
		ep.logf("partition n%d", i)
	}
}

// heal restores the whole cluster and re-probes membership.
func (ep *tenantsEpisode) heal(why string) {
	ep.res.Heals++
	ep.lc.Heal()
	ep.logf("heal (%s)", why)
}

// wedgeProbe is the per-round liveness check: one point request that
// must get SOME verdict. With every replica of the probed tile down a
// 503 is the correct answer and still counts — the invariant is that
// the admission plane answers, not that the data is reachable.
func (ep *tenantsEpisode) wedgeProbe(round int) {
	if ep.pointGet(ep.rng.Intn(ep.o.Tiles), fmt.Sprintf("wedge probe round %d", round)) == 0 {
		ep.logf("wedge probe round %d FAILED", round)
	}
}

// routerAdmission decodes the admission fields of the router's
// /v1/stats scorecard.
func (ep *tenantsEpisode) routerAdmission() (inflight, queued int64, tenants map[string]struct {
	Queued   int
	Requests int64
}, err error) {
	resp, err := ep.httpc.Get(ep.lc.RouterURL + "/v1/stats")
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	var st struct {
		Inflight int64 `json:"inflight"`
		Queued   int64 `json:"queued"`
		Tenants  []struct {
			Tenant   string `json:"tenant"`
			Queued   int    `json:"queued"`
			Requests int64  `json:"requests"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, nil, err
	}
	tenants = make(map[string]struct {
		Queued   int
		Requests int64
	}, len(st.Tenants))
	for _, t := range st.Tenants {
		tenants[t.Tenant] = struct {
			Queued   int
			Requests int64
		}{t.Queued, t.Requests}
	}
	return st.Inflight, st.Queued, tenants, nil
}

// epilogue heals the world, drains owed hints, and requires the
// admission plane to come back whole: both tenants succeed, a full
// scan reaches its trailer, and no queue slot leaked.
func (ep *tenantsEpisode) epilogue() {
	ep.logf("epilogue heal")
	ep.lc.Heal()
	for round := 0; ep.lc.HintsPendingTotal() > 0; round++ {
		if round >= ep.o.MaxPending {
			ep.violate("epilogue: %d hints still queued after %d probe rounds",
				ep.lc.HintsPendingTotal(), round)
			break
		}
		ep.lc.Router.Probe()
	}

	// The point tenant must actually succeed now — bounded retries
	// cover replicas still warming up, but a plane that never again
	// answers 200 leaked its pool to the faults.
	recovered := false
	for attempt := 0; attempt < ep.o.MaxPending; attempt++ {
		if ep.pointGet(attempt%ep.o.Tiles, "epilogue") == http.StatusOK {
			recovered = true
			break
		}
		ep.lc.Router.Probe()
	}
	if !recovered {
		ep.violate("epilogue: no point request succeeded in %d attempts with all nodes up", ep.o.MaxPending)
	}

	// The scan tenant must stream a whole-array scan to its trailer —
	// its chunk slots survived every abandoned stream.
	total := int64(ep.o.Tiles) * ep.o.TileElems
	url := fmt.Sprintf("%s/v1/arrays/%s/scan?lo=0&hi=%d&chunk=%d",
		ep.lc.RouterURL, arrayName, total, ep.o.TileElems)
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(server.TenantHeader, scanTenant)
	if resp, err := ep.httpc.Do(req); err != nil {
		ep.violate("epilogue: full scan got no verdict: %v", err)
	} else {
		ep.res.Scans++
		sr := server.NewScanReader(resp.Body)
		for {
			_, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				ep.violate("epilogue: full scan cut with all nodes up: %v", err)
				break
			}
			ep.res.ScanChunks++
		}
		resp.Body.Close()
	}

	// No queue-slot leaks: with every stream above fully consumed or
	// answered, the router's pool must be empty and every per-tenant
	// queue drained.
	inflight, queued, tenants, err := ep.routerAdmission()
	if err != nil {
		ep.violate("epilogue: reading router stats: %v", err)
		return
	}
	if inflight != 0 {
		ep.violate("epilogue: %d admission slots still held after all traffic finished", inflight)
	}
	if queued != 0 {
		ep.violate("epilogue: %d waiters still parked in admission queues", queued)
	}
	for _, id := range []string{pointTenant, scanTenant} {
		ts, ok := tenants[id]
		if !ok {
			ep.violate("epilogue: tenant %q missing from the router scorecard", id)
			continue
		}
		if ts.Queued != 0 {
			ep.violate("epilogue: tenant %q still shows %d queued", id, ts.Queued)
		}
		if ts.Requests == 0 {
			ep.violate("epilogue: tenant %q billed zero requests — identity was dropped somewhere", id)
		}
	}
}

func (ep *tenantsEpisode) violate(format string, args ...any) {
	ep.res.Violations = append(ep.res.Violations, fmt.Sprintf(format, args...))
	ep.logf("VIOLATION: "+format, args...)
}

func (ep *tenantsEpisode) logf(format string, args ...any) {
	fmt.Fprintf(&ep.log, format, args...)
	ep.log.WriteByte('\n')
}
