package dst

import (
	"testing"

	"outcore/internal/faultfs"
)

// stormProfile is the standard adversary: the canonical storm every
// command arms, plus the chaos harness's simulated latency.
func stormProfile() faultfs.Profile {
	p := faultfs.StormProfile()
	p.LatencyTicks = faultfs.StormLatencyTicks
	return p
}

// TestEpisodeDeterministicReplay is the acceptance test for the
// determinism contract: the same seed produces byte-identical
// operation logs, fault schedules, and verdicts.
func TestEpisodeDeterministicReplay(t *testing.T) {
	opts := Options{Seed: 1234, Ops: 300, Profile: stormProfile()}
	a, b := Run(opts), Run(opts)
	if !a.Replayable || !b.Replayable {
		t.Fatal("Workers=0 episodes must report Replayable")
	}
	if a.OpLog != b.OpLog {
		t.Fatalf("op logs differ between identical runs:\n%s\n--- vs ---\n%s", a.OpLog, b.OpLog)
	}
	if a.FaultSchedule != b.FaultSchedule {
		t.Fatalf("fault schedules differ between identical runs:\n%s\n--- vs ---\n%s",
			a.FaultSchedule, b.FaultSchedule)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("verdicts differ: %q vs %q", a.Summary(), b.Summary())
	}
	c := Run(Options{Seed: 1235, Ops: 300, Profile: stormProfile()})
	if c.OpLog == a.OpLog {
		t.Fatal("different seeds produced identical op logs")
	}
}

// TestSeededEpisodesPass runs the storm over many seeds: with the
// engine's error wiring in place, no crash may lose or tear an
// acknowledged write and no read may observe stale data. This is the
// ">= 50 seeded episodes" gate CI runs under -race.
func TestSeededEpisodesPass(t *testing.T) {
	var gets, puts, acked, crashes, faults, opErrs int64
	for seed := int64(0); seed < 60; seed++ {
		res := Run(Options{Seed: seed, Ops: 250, Profile: stormProfile()})
		if res.Failed() {
			t.Errorf("seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
		gets += int64(res.Gets)
		puts += int64(res.Puts)
		acked += int64(res.AckedFlushes)
		crashes += int64(res.Crashes)
		faults += res.FaultsInjected
		opErrs += int64(res.GetErrors + res.PutErrors + res.FlushErrors)
	}
	// Guard against a harness that silently tests nothing: the storm
	// must actually inject faults, fail operations, ack flushes, and
	// crash.
	if faults == 0 || opErrs == 0 || acked == 0 || crashes == 0 || gets == 0 || puts == 0 {
		t.Fatalf("degenerate storm: gets=%d puts=%d acked=%d crashes=%d faults=%d opErrs=%d",
			gets, puts, acked, crashes, faults, opErrs)
	}
}

// TestFaultFreeEpisodesPass: with no adversary every operation
// succeeds and every flush acks.
func TestFaultFreeEpisodesPass(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := Run(Options{Seed: seed})
		if res.Failed() {
			t.Fatalf("fault-free seed %d failed: %s\n%s", seed, res.Summary(), res.OpLog)
		}
		if res.GetErrors+res.PutErrors+res.FlushErrors > 0 {
			t.Fatalf("fault-free episode reported op errors: %s", res.Summary())
		}
		if res.AckedFlushes != res.Flushes+1 { // +1: the epilogue flush
			t.Fatalf("fault-free episode: %d of %d flushes acked", res.AckedFlushes, res.Flushes+1)
		}
	}
}

// TestTornWriteEpisodesPass: the torn-write adversary at full tilt.
// Before the engine kept failed write-backs dirty (and refused to
// read through un-flushable dirty overlaps), these episodes lost
// acknowledged writes; with the fix wiring they must pass.
func TestTornWriteEpisodesPass(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(Options{
			Seed:    seed,
			Ops:     300,
			Profile: faultfs.Profile{TornWrite: 0.3, SyncErr: 0.15},
		})
		if res.Failed() {
			t.Errorf("torn-write seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestLyingSyncDetected proves the checker catches real corruption: a
// device whose fsync lies (reports success, persists nothing) MUST
// produce durability violations — acknowledged writes vanish at the
// crash. If this test fails, the checker is blind and every green
// episode above is meaningless.
func TestLyingSyncDetected(t *testing.T) {
	caught := 0
	for seed := int64(0); seed < 10; seed++ {
		res := Run(Options{
			Seed:       seed,
			Ops:        300,
			PutFrac:    0.7,
			FlushEvery: 10,
			CrashEvery: 25,
			Profile:    faultfs.Profile{SyncDrop: 1},
		})
		if res.Failed() {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("a lying fsync dropped every acknowledged write and the checker noticed nothing")
	}
}

// TestConcurrentEpisodes runs the storm with a real worker pool —
// not replayable, but the invariants must still hold; -race watches
// the interleavings.
func TestConcurrentEpisodes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := Run(Options{Seed: seed, Ops: 200, Workers: 4, Profile: stormProfile()})
		if res.Replayable {
			t.Fatal("episodes with workers must not claim replayability")
		}
		if res.Failed() {
			t.Errorf("concurrent seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestCrashDropsUnsyncedWrite pins the crash semantics with a
// hand-built scenario: a write that never flushes is gone after the
// crash, and the model (which allows that) still passes — while the
// durable state provably reverted.
func TestCrashDropsUnsyncedWrite(t *testing.T) {
	// No flushes, guaranteed crashes: every write is unacknowledged,
	// so after any crash the array must read zero (nothing ever
	// acked). The episode itself must pass — losing unacked writes is
	// legal — and its op log must show crashes adopting the zero
	// state.
	res := Run(Options{
		Seed:       7,
		Ops:        120,
		PutFrac:    1.0,
		FlushEvery: -1,
		CrashEvery: 10,
		// SyncErr guarantees even engine-internal eviction write-backs
		// never become durable (eviction does not sync anyway). Skip
		// the epilogue, which heals the device and would ack one flush.
		SkipFinalCheck: true,
		Profile:        faultfs.Profile{SyncErr: 1},
	})
	if res.Failed() {
		t.Fatalf("losing unacknowledged writes must be legal: %s\n%s", res.Summary(), res.OpLog)
	}
	if res.Crashes == 0 {
		t.Fatal("scenario produced no crashes")
	}
	if res.AckedFlushes != 0 {
		t.Fatalf("SyncErr=1 episode acked %d flushes", res.AckedFlushes)
	}
}

// TestShardedEpisodesPass runs the storm against sharded planes: the
// same crash-consistency invariants must hold when the tile plane is
// partitioned, with scheduled crashes mixing full power cuts and
// single-shard crashes.
func TestShardedEpisodesPass(t *testing.T) {
	var shardCrashes, powerCuts int64
	for _, shards := range []int{2, 4} {
		for seed := int64(0); seed < 25; seed++ {
			res := Run(Options{Seed: seed, Ops: 250, Shards: shards, Profile: stormProfile()})
			if res.Failed() {
				t.Errorf("shards=%d seed %d failed: %s", shards, seed, res.Summary())
				for _, v := range res.Violations {
					t.Errorf("  %s", v)
				}
			}
			shardCrashes += int64(res.ShardCrashes)
			powerCuts += int64(res.Crashes)
		}
	}
	if shardCrashes == 0 || powerCuts == 0 {
		t.Fatalf("degenerate sharded storm: %d shard crashes, %d power cuts", shardCrashes, powerCuts)
	}
}

// TestShardedEpisodeDeterministicReplay extends the determinism
// contract to sharded planes: with Workers=0 the whole plane's backend
// stream is still a pure function of the seed.
func TestShardedEpisodeDeterministicReplay(t *testing.T) {
	opts := Options{Seed: 4321, Ops: 300, Shards: 4, Profile: stormProfile()}
	a, b := Run(opts), Run(opts)
	if !a.Replayable {
		t.Fatal("Workers=0 sharded episodes must report Replayable")
	}
	if a.OpLog != b.OpLog || a.FaultSchedule != b.FaultSchedule || a.Summary() != b.Summary() {
		t.Fatalf("sharded replay diverged: %q vs %q", a.Summary(), b.Summary())
	}
}

// TestShardedMatchesSingleEngineSchedule pins the compatibility
// guarantee that made adding Shards a safe option: a single-engine
// episode's op log and fault schedule are byte-identical whether the
// Shards field exists or not (Shards<=1 draws no extra randomness).
func TestShardedMatchesSingleEngineSchedule(t *testing.T) {
	a := Run(Options{Seed: 99, Ops: 250, Profile: stormProfile()})
	b := Run(Options{Seed: 99, Ops: 250, Shards: 1, Profile: stormProfile()})
	if a.OpLog != b.OpLog || a.FaultSchedule != b.FaultSchedule {
		t.Fatal("Shards=1 changed the single-engine schedule")
	}
}

// TestShardedConcurrentEpisodes puts worker pools under the sharded
// plane for -race coverage of the cross-shard barrier and
// invalidation paths.
func TestShardedConcurrentEpisodes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		res := Run(Options{Seed: seed, Ops: 200, Workers: 4, Shards: 4, Profile: stormProfile()})
		if res.Failed() {
			t.Errorf("concurrent sharded seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

func BenchmarkEpisode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(Options{Seed: int64(i), Ops: 200, Profile: stormProfile()})
		if res.Failed() {
			b.Fatal(res.Summary())
		}
	}
}

// TestWALEpisodesPass runs the storm over WAL-backed planes, single
// and sharded: power cuts now land mid-commit-window, mid-apply and
// mid-compaction, the log tails tear, and still no acknowledged write
// may be lost and no torn trailing record may surface.
func TestWALEpisodesPass(t *testing.T) {
	var crashes, checkpoints, faults int64
	for _, shards := range []int{1, 4} {
		for seed := int64(0); seed < 25; seed++ {
			res := Run(Options{Seed: seed, Ops: 250, Shards: shards, WAL: true, Profile: stormProfile()})
			if res.Failed() {
				t.Errorf("wal shards=%d seed %d failed: %s", shards, seed, res.Summary())
				for _, v := range res.Violations {
					t.Errorf("  %s", v)
				}
			}
			crashes += int64(res.Crashes)
			checkpoints += int64(res.Checkpoints)
			faults += res.FaultsInjected
		}
	}
	// The storm must actually exercise the WAL paths: crashes (each a
	// log replay), scheduled compactions, and injected faults.
	if crashes == 0 || checkpoints == 0 || faults == 0 {
		t.Fatalf("degenerate WAL storm: crashes=%d checkpoints=%d faults=%d", crashes, checkpoints, faults)
	}
}

// TestWALEpisodeDeterministicReplay extends the determinism contract
// to WAL episodes: log routing, group commit and replay add no
// nondeterminism with Workers=0.
func TestWALEpisodeDeterministicReplay(t *testing.T) {
	opts := Options{Seed: 5678, Ops: 300, Shards: 4, WAL: true, Profile: stormProfile()}
	a, b := Run(opts), Run(opts)
	if !a.Replayable {
		t.Fatal("Workers=0 WAL episodes must report Replayable")
	}
	if a.OpLog != b.OpLog {
		t.Fatalf("WAL op logs differ between identical runs:\n%s\n--- vs ---\n%s", a.OpLog, b.OpLog)
	}
	if a.FaultSchedule != b.FaultSchedule || a.Summary() != b.Summary() {
		t.Fatalf("WAL replay diverged: %q vs %q", a.Summary(), b.Summary())
	}
}

// TestWALOffMatchesPlainSchedule pins the compatibility guarantee that
// made WAL a safe option: with WAL off, the WAL tuning knobs draw no
// randomness and the schedule is byte-identical to a plain episode.
func TestWALOffMatchesPlainSchedule(t *testing.T) {
	a := Run(Options{Seed: 99, Ops: 250, Profile: stormProfile()})
	b := Run(Options{Seed: 99, Ops: 250, WALCapWords: 1024, CheckpointOps: 30, Profile: stormProfile()})
	if a.OpLog != b.OpLog || a.FaultSchedule != b.FaultSchedule {
		t.Fatal("WAL=false knobs changed the plain schedule")
	}
}

// TestWALTornWriteEpisodesPass: the torn-write adversary against the
// log itself. Torn log appends must behave as torn tails — discarded
// on replay, never applied — and torn stripe write-throughs are
// covered by the records that survive.
func TestWALTornWriteEpisodesPass(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(Options{
			Seed:    seed,
			Ops:     300,
			WAL:     true,
			Profile: faultfs.Profile{TornWrite: 0.3, SyncErr: 0.15},
		})
		if res.Failed() {
			t.Errorf("wal torn-write seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestWALLyingSyncDetected keeps the checker honest under the WAL: a
// device that drops fsyncs silently makes group commits lie, replay
// misses acknowledged records, and the harness MUST notice.
func TestWALLyingSyncDetected(t *testing.T) {
	caught := 0
	for seed := int64(0); seed < 10; seed++ {
		res := Run(Options{
			Seed:       seed,
			Ops:        300,
			WAL:        true,
			PutFrac:    0.7,
			FlushEvery: 10,
			CrashEvery: 25,
			Profile:    faultfs.Profile{SyncDrop: 1},
		})
		if res.Failed() {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("a lying fsync under the WAL dropped acknowledged writes and the checker noticed nothing")
	}
}

// TestWALConcurrentEpisodes: worker pools over WAL-backed sharded
// planes for -race coverage of the append path (under the walSet
// mutex) against the off-mutex group-commit fsync.
func TestWALConcurrentEpisodes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		res := Run(Options{Seed: seed, Ops: 200, Workers: 4, Shards: 4, WAL: true, Profile: stormProfile()})
		if res.Failed() {
			t.Errorf("concurrent WAL seed %d failed: %s", seed, res.Summary())
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestWALCompressEpisodesPass runs the WAL storm with payload
// compression on: acked writes must survive crashes through the
// compressed log records (the injector checks physical durable bytes,
// so a frame that failed to round-trip would surface as lost data).
func TestWALCompressEpisodesPass(t *testing.T) {
	var crashes int64
	for _, shards := range []int{1, 4} {
		for seed := int64(0); seed < 15; seed++ {
			res := Run(Options{Seed: seed, Ops: 250, Shards: shards, WAL: true, Compress: true, Profile: stormProfile()})
			if res.Failed() {
				t.Errorf("wal-compress shards=%d seed %d failed: %s", shards, seed, res.Summary())
				for _, v := range res.Violations {
					t.Errorf("  %s", v)
				}
			}
			crashes += int64(res.Crashes)
		}
	}
	if crashes == 0 {
		t.Fatal("degenerate compress storm: no crashes, nothing replayed")
	}
}

// TestWALCompressDeterministicReplay extends the determinism contract
// to compressed episodes: per-record frame encoding adds no
// nondeterminism, so a failing compressed seed replays exactly.
func TestWALCompressDeterministicReplay(t *testing.T) {
	opts := Options{Seed: 321, Ops: 250, Shards: 4, WAL: true, Compress: true, Profile: stormProfile()}
	a, b := Run(opts), Run(opts)
	if a.OpLog != b.OpLog || a.FaultSchedule != b.FaultSchedule || a.Summary() != b.Summary() {
		t.Fatalf("compressed WAL replay diverged: %q vs %q", a.Summary(), b.Summary())
	}
}
