package dst

// Operator episodes: the deterministic-simulation discipline applied
// to the batched & streaming operators (PR 9). A seeded scheduler
// drives multi-tile batch PUTs and resumable streaming scans through a
// {router + N nodes, R replicas} LocalCluster while interrupting them
// with the two faults the operators were designed to survive:
//
//   - scan-interrupted-by-crash: a streaming scan is abandoned after a
//     random number of CRC-framed chunks (the connection a node crash
//     would sever), a node may be power-cut and healed underneath it,
//     and the client resumes from the last intact chunk's cursor. The
//     chunk sequence delivered across all resume legs must equal the
//     layout plan exactly — never a skipped box, never a chunk
//     delivered twice — and every chunk's bytes must be values that
//     were actually written (or the initial zero), never torn within
//     one tile's span and never fabricated.
//
//   - batch-PUT-power-cut: a multi-op batch PUT gets its per-box acks,
//     then the whole cluster loses power. After restart, every box the
//     batch response acked must still hold the acked value (or one
//     attempted after it) — a batch ack is the same durable promise a
//     single-tile PUT ack is.
//
// The epilogue heals the world, drains owed hints, and requires every
// tile to converge to its last acked write or a post-ack maybe, same
// contract as the cluster episodes.

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"

	"outcore/internal/cluster"
	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// OpsOptions configures one operator episode. The zero value gets sane
// defaults from RunOps; Seed alone is enough.
type OpsOptions struct {
	Seed int64

	Rounds    int   // scheduler steps (default 40)
	Nodes     int   // storage nodes (default 3)
	Replicas  int   // copies per tile (default 2)
	Tiles     int   // tile-grid length (default 8)
	TileElems int64 // elements per tile (default 16)

	HintDir    string // durable hint-log directory ("" = in-memory hints)
	MaxPending int    // epilogue probe rounds allowed to drain hints (default 10)
}

func (o OpsOptions) withDefaults() OpsOptions {
	if o.Rounds <= 0 {
		o.Rounds = 40
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Tiles <= 0 {
		o.Tiles = 8
	}
	if o.TileElems <= 0 {
		o.TileElems = 16
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 10
	}
	return o
}

// OpsResult is one operator episode's verdict.
type OpsResult struct {
	Seed int64

	Rounds       int
	BatchOps     int // individual ops inside batch requests
	BatchAcks    int // per-op 204s
	BatchRejects int // per-op quorum refusals (surfaced, not hidden)
	Scans        int // scan requests started
	ScanChunks   int // intact chunks delivered across all legs
	ScanResumes  int // cursor-resume legs
	PowerCuts    int // whole-cluster power cuts
	Kills        int // single-node kills under a live scan

	Violations []string
	OpLog      string
}

// Failed reports whether any invariant was violated.
func (r *OpsResult) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-line verdict.
func (r *OpsResult) Summary() string {
	verdict := "ok"
	if r.Failed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("ops seed=%d rounds=%d batch=%d acks=%d rejects=%d scans=%d chunks=%d resumes=%d cuts=%d kills=%d %s",
		r.Seed, r.Rounds, r.BatchOps, r.BatchAcks, r.BatchRejects, r.Scans, r.ScanChunks,
		r.ScanResumes, r.PowerCuts, r.Kills, verdict)
}

// opsEpisode is the running state of one seeded operator episode.
type opsEpisode struct {
	o   OpsOptions
	rng *rand.Rand
	lc  *cluster.LocalCluster
	res *OpsResult
	log strings.Builder

	written   [][]float64 // every value ever attempted on the tile
	lastAcked []float64   // value of the most recent acked write (0 = none)
	maybes    [][]float64 // values attempted after the last ack

	nextVal float64
}

// RunOps executes one seeded operator episode. Violations are
// collected, never panicked, so a harness can sweep many seeds and
// report every failing one.
func RunOps(o OpsOptions) *OpsResult {
	o = o.withDefaults()
	ep := &opsEpisode{
		o:   o,
		rng: rand.New(rand.NewSource(o.Seed)),
		res: &OpsResult{Seed: o.Seed},
	}
	lc, err := cluster.NewLocal(cluster.LocalOptions{
		Nodes:       o.Nodes,
		Replicas:    o.Replicas,
		TileDim:     o.TileElems, // 1-D grid: one routing tile per model tile
		DurablePuts: true,
		HintDir:     o.HintDir,
		Seed:        o.Seed + 1,
	})
	if err != nil {
		ep.violate("building cluster: %v", err)
		return ep.res
	}
	ep.lc = lc
	defer lc.Close()
	if err := lc.CreateArray(arrayName, int64(o.Tiles)*o.TileElems); err != nil {
		ep.violate("creating %s: %v", arrayName, err)
		return ep.res
	}
	ep.written = make([][]float64, o.Tiles)
	ep.maybes = make([][]float64, o.Tiles)
	ep.lastAcked = make([]float64, o.Tiles)

	for round := 0; round < o.Rounds; round++ {
		ep.res.Rounds++
		switch u := ep.rng.Float64(); {
		case u < 0.45:
			ep.batchPut()
		case u < 0.90:
			ep.interruptedScan()
		default:
			ep.powerCut("scheduled")
		}
	}
	ep.epilogue()
	ep.res.OpLog = ep.log.String()
	return ep.res
}

// tileBox returns model tile t's (routing-aligned) box.
func (ep *opsEpisode) tileBox(t int) layout.Box {
	lo := int64(t) * ep.o.TileElems
	return layout.NewBox([]int64{lo}, []int64{lo + ep.o.TileElems})
}

// batchPut issues one multi-op batch PUT through the router — several
// whole tiles, each filled with a fresh unique value — and applies the
// per-op acks to the model. With some probability the whole cluster
// then loses power and the batch's acks are checked immediately: this
// is the batch-PUT-power-cut episode.
func (ep *opsEpisode) batchPut() {
	n := 1 + ep.rng.Intn(4)
	type wire struct {
		Op   string  `json:"op"`
		Lo   []int64 `json:"lo"`
		Hi   []int64 `json:"hi"`
		Data string  `json:"data_b64"`
	}
	ops := make([]wire, 0, n)
	tiles := make([]int, 0, n)
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t := ep.rng.Intn(ep.o.Tiles)
		ep.nextVal++
		v := ep.nextVal
		box := ep.tileBox(t)
		raw := make([]byte, box.Size()*ooc.ElemSize)
		for j := int64(0); j < box.Size(); j++ {
			binary.LittleEndian.PutUint64(raw[j*ooc.ElemSize:], math.Float64bits(v))
		}
		ops = append(ops, wire{Op: "put", Lo: box.Lo, Hi: box.Hi,
			Data: base64.StdEncoding.EncodeToString(raw)})
		tiles = append(tiles, t)
		vals = append(vals, v)
		ep.written[t] = append(ep.written[t], v)
	}
	ep.res.BatchOps += n

	body, _ := json.Marshal(map[string]any{"ops": ops})
	resp, err := http.Post(ep.lc.RouterURL+"/v1/arrays/"+arrayName+"/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		// The request never got an answer: every op is a maybe.
		for i, t := range tiles {
			ep.maybes[t] = append(ep.maybes[t], vals[i])
		}
		ep.logf("batch n=%d -> transport error %v", n, err)
		return
	}
	var out struct {
		Results []struct {
			Status int    `json:"status"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if decodeErr != nil || len(out.Results) != n {
		ep.violate("batch: undecodable response (err %v, %d results for %d ops)", decodeErr, len(out.Results), n)
		return
	}
	acked := make([]bool, n)
	for i, res := range out.Results {
		t := tiles[i]
		if res.Status == http.StatusNoContent {
			ep.res.BatchAcks++
			acked[i] = true
			// Later ops in the same batch overwrite earlier ones on the
			// same tile, so apply acks in op order.
			ep.lastAcked[t] = vals[i]
			ep.maybes[t] = nil
		} else {
			ep.res.BatchRejects++
			ep.maybes[t] = append(ep.maybes[t], vals[i])
		}
	}
	ep.logf("batch n=%d acks=%d", n, ep.res.BatchAcks)

	if ep.rng.Float64() < 0.35 {
		ep.powerCut("post-batch")
		// The batch-PUT-power-cut check: every box this batch acked must
		// come back as the acked value or one attempted after it.
		for i, t := range tiles {
			if !acked[i] {
				continue
			}
			got, _, err := ep.lc.Client().GetTile(arrayName, ep.tileBox(t), true)
			if err != nil {
				ep.violate("batch-put-power-cut: tile %d unreadable after restart: %v", t, err)
				continue
			}
			if !ep.checkUniform(t, got, "batch-put-power-cut") {
				continue
			}
			if got[0] != ep.lastAcked[t] && !contains(ep.maybes[t], got[0]) {
				ep.violate("batch-put-power-cut: tile %d = %v after restart, batch acked %v", t, got[0], ep.lastAcked[t])
			}
		}
	}
}

// interruptedScan streams a scan through the router, abandons the
// connection after a random number of chunks (maybe power-cutting a
// node underneath it), then resumes from the last intact cursor until
// the trailer arrives. The chunk sequence across all legs must equal
// the layout plan exactly, and every chunk's bytes must be legitimate.
func (ep *opsEpisode) interruptedScan() {
	ep.res.Scans++
	total := int64(ep.o.Tiles) * ep.o.TileElems
	lo := ep.rng.Int63n(total - 1)
	hi := lo + 1 + ep.rng.Int63n(total-lo)
	box := layout.NewBox([]int64{lo}, []int64{hi})
	chunkElems := 1 + ep.rng.Int63n(ep.o.TileElems*3)
	plan := layout.PlanScan(layout.RowMajor(total), box, chunkElems)

	url := fmt.Sprintf("%s/v1/arrays/%s/scan?lo=%d&hi=%d&chunk=%d",
		ep.lc.RouterURL, arrayName, lo, hi, chunkElems)
	ep.logf("scan [%d,%d) chunk=%d plan=%d", lo, hi, chunkElems, len(plan))

	next := 0 // next plan index we expect
	legs := 0
	for {
		legs++
		if legs > len(plan)+4 {
			ep.violate("scan [%d,%d): no progress after %d legs (%d/%d chunks)", lo, hi, legs, next, len(plan))
			return
		}
		chunks, sawTrailer, cursor := ep.scanLeg(url, box, plan, next)
		next += chunks
		if sawTrailer {
			if next != len(plan) {
				ep.violate("scan [%d,%d): trailer after %d/%d chunks", lo, hi, next, len(plan))
			}
			return
		}
		if cursor == "" {
			// The leg died before its first chunk (a 503 while a node is
			// down, or a mid-frame truncation): retry the same leg.
			ep.lc.Heal()
			ep.lc.Router.Probe()
			if next == 0 {
				url = fmt.Sprintf("%s/v1/arrays/%s/scan?lo=%d&hi=%d&chunk=%d",
					ep.lc.RouterURL, arrayName, lo, hi, chunkElems)
				continue
			}
		}
		if cursor != "" {
			ep.res.ScanResumes++
			url = ep.lc.RouterURL + "/v1/arrays/" + arrayName + "/scan?cursor=" + cursor
		}
	}
}

// scanLeg runs one HTTP leg of a scan: it validates each intact chunk
// against the plan and the write model, may abandon the stream early
// (simulating the crash-severed connection) and may kill + heal a node
// mid-stream. It returns how many chunks were consumed, whether the
// trailer arrived, and the cursor to resume from ("" if no chunk
// arrived this leg).
func (ep *opsEpisode) scanLeg(url string, box layout.Box, plan []layout.Box, next int) (int, bool, string) {
	resp, err := http.Get(url)
	if err != nil {
		ep.logf("scan leg -> transport error %v", err)
		return 0, false, ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		ep.logf("scan leg -> status %d", resp.StatusCode)
		return 0, false, ""
	}
	sr := server.NewScanReader(resp.Body)

	// Decide this leg's interruption up front: after how many chunks we
	// abandon the stream, and whether a node dies underneath it first.
	abandonAfter := -1
	if remaining := len(plan) - next; remaining > 1 && ep.rng.Intn(2) == 0 {
		abandonAfter = 1 + ep.rng.Intn(remaining-1)
	}
	killAt := -1
	if abandonAfter > 0 && ep.rng.Intn(2) == 0 {
		killAt = ep.rng.Intn(abandonAfter)
	}

	got := 0
	cursor := ""
	for {
		if got == abandonAfter {
			ep.logf("scan leg -> abandoned after %d chunks", got)
			return got, false, cursor
		}
		if got == killAt {
			i := ep.rng.Intn(ep.lc.Nodes())
			if !ep.lc.Killed(i) && !ep.lc.Partitioned(i) {
				ep.res.Kills++
				ep.lc.Kill(i)
				ep.logf("scan leg -> kill n%d under the stream", i)
			}
			killAt = -1
		}
		ch, err := sr.Next()
		if err == io.EOF {
			return got, true, cursor
		}
		if err != nil {
			// A truncated or corrupt tail — everything before it was CRC
			// intact, so resuming from `cursor` is safe.
			ep.logf("scan leg -> stream error after %d chunks: %v", got, err)
			return got, false, cursor
		}
		idx := next + got
		if idx >= len(plan) {
			ep.violate("scan: chunk seq %d beyond the %d-chunk plan", ch.Seq, len(plan))
			return got, true, cursor
		}
		if ch.Seq != uint64(idx) || ch.Box.String() != plan[idx].String() {
			ep.violate("scan: got seq %d box %v, plan position %d is %v — skipped or re-delivered",
				ch.Seq, ch.Box, idx, plan[idx])
			return got, true, cursor
		}
		ep.checkChunk(ch)
		got++
		cursor = ch.Cursor
		ep.res.ScanChunks++
	}
}

// checkChunk verifies one intact chunk's bytes against the model: the
// span inside any one tile is uniform (never torn) and holds a value
// actually written to that tile (or the initial zero). Staleness is
// legal — a chunk may predate a concurrent write — fabrication is not.
func (ep *opsEpisode) checkChunk(ch *server.ScanChunk) {
	lo, hi := ch.Box.Lo[0], ch.Box.Hi[0]
	for t := int(lo / ep.o.TileElems); int64(t)*ep.o.TileElems < hi; t++ {
		s := max64(lo, int64(t)*ep.o.TileElems)
		e := min64(hi, (int64(t)+1)*ep.o.TileElems)
		v := ch.Data[s-lo]
		for i := s; i < e; i++ {
			if ch.Data[i-lo] != v {
				ep.violate("scan: chunk %v torn inside tile %d: elem %d = %v, elem %d = %v",
					ch.Box, t, i, ch.Data[i-lo], s, v)
				return
			}
		}
		if v != 0 && !contains(ep.written[t], v) {
			ep.violate("scan: chunk %v carries %v, never written to tile %d", ch.Box, v, t)
		}
	}
}

// checkUniform requires a whole-tile read to be a single value.
func (ep *opsEpisode) checkUniform(t int, got []float64, where string) bool {
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			ep.violate("%s: tile %d torn: elem %d = %v, elem 0 = %v", where, t, i, got[i], got[0])
			return false
		}
	}
	return true
}

// powerCut kills every node, heals the cluster, and probes so the
// router re-admits everyone.
func (ep *opsEpisode) powerCut(why string) {
	ep.res.PowerCuts++
	for i := 0; i < ep.lc.Nodes(); i++ {
		if !ep.lc.Killed(i) {
			ep.lc.Kill(i)
		}
	}
	ep.lc.Heal()
	ep.lc.Router.Probe()
	ep.logf("power cut (%s)", why)
}

// epilogue heals the world, drains owed hints, and requires every tile
// to converge to its last acked write or a post-ack maybe.
func (ep *opsEpisode) epilogue() {
	ep.logf("epilogue heal")
	ep.lc.Heal()
	ep.lc.Router.Probe()
	for round := 0; ep.lc.HintsPendingTotal() > 0; round++ {
		if round >= ep.o.MaxPending {
			ep.violate("epilogue: %d hints still queued after %d probe rounds",
				ep.lc.HintsPendingTotal(), round)
			break
		}
		ep.lc.Router.Probe()
	}
	cli := ep.lc.Client()
	for t := 0; t < ep.o.Tiles; t++ {
		got, _, err := cli.GetTile(arrayName, ep.tileBox(t), true)
		if err != nil {
			ep.violate("epilogue: reading tile %d with all nodes up: %v", t, err)
			continue
		}
		if !ep.checkUniform(t, got, "epilogue") {
			continue
		}
		v := got[0]
		if v != ep.lastAcked[t] && !(v == 0 && ep.lastAcked[t] == 0) && !contains(ep.maybes[t], v) {
			ep.violate("epilogue: tile %d converged to %v, want the acked %v or one of %d post-ack maybes",
				t, v, ep.lastAcked[t], len(ep.maybes[t]))
		}
	}
}

func (ep *opsEpisode) violate(format string, args ...any) {
	ep.res.Violations = append(ep.res.Violations, fmt.Sprintf(format, args...))
	ep.logf("VIOLATION: "+format, args...)
}

func (ep *opsEpisode) logf(format string, args ...any) {
	fmt.Fprintf(&ep.log, format, args...)
	ep.log.WriteByte('\n')
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
