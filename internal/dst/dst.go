// Package dst is the deterministic-simulation-test harness for the
// out-of-core stack: it drives the tile engine with a seeded virtual
// scheduler over logical clients, injects storage faults through
// internal/faultfs, "cuts power" at random points, and checks
// crash-consistency invariants against a sequential map-of-tiles
// model.
//
// One seed determines everything — the client interleaving, the
// operation mix, the fault schedule, the crash points — so a failing
// episode replays byte-for-byte from its seed alone (cmd/occhaos
// prints exactly that reproducer).
//
// # The model
//
// The harness serves one 1-D array split into an aligned,
// non-overlapping tile grid. Every PUT fills a whole tile with a
// fresh unique value, which makes the model exact:
//
//   - Liveness invariant (checked on every successful GET): the tile
//     read equals, element for element, the model's current contents —
//     the engine is linearizable with the sequential history.
//   - Durability invariant (checked after every crash): each element
//     equals its value at the last acknowledged flush, or one of the
//     values written since (an unacknowledged write may survive in
//     full, in part — a torn write — or not at all). When nothing was
//     written since the last acknowledged flush, the tile must equal
//     the acknowledged contents EXACTLY: an acknowledged write is
//     never lost and never torn.
//
// "Acknowledged" means Engine.Flush returned nil: write-backs and the
// backend sync all succeeded. A flush that returns an error
// acknowledges nothing — its writes stay in the may-or-may-not-be-
// durable set until a later flush succeeds.
//
// # Determinism
//
// Episodes run the engine with Workers = 0 (every backend call on the
// scheduler goroutine), so the fault schedule is a pure function of
// the seed; Result.Replayable reports it and the harness asserts
// byte-identical schedules in its own tests. Setting Options.Workers
// > 0 trades replayability for real concurrency (useful under -race);
// the invariant checks still hold, only the schedule bytes vary.
package dst

import (
	"fmt"
	"math/rand"
	"strings"

	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// Options configures one episode. The zero value gets sane defaults
// from Run; Seed alone is enough for a standard episode.
type Options struct {
	Seed int64

	Ops        int     // scheduler steps (default 200)
	Clients    int     // logical clients interleaved by the scheduler (default 4)
	Tiles      int     // tile-grid length (default 8)
	TileElems  int64   // elements per tile (default 16)
	PutFrac    float64 // fraction of client ops that are PUTs (default 0.4)
	FlushEvery int     // ~one flush per this many steps (default 20; <0 disables)
	CrashEvery int     // ~one crash per this many steps (default 50; <0 disables)

	Profile      faultfs.Profile // fault probabilities (zero = fault-free)
	Workers      int             // engine workers; 0 keeps the episode replayable
	CacheTiles   int             // engine cache bound (default 4: smaller than Tiles, forces eviction traffic)
	Shards       int             // >1 runs the episode against a sharded tile plane (scheduled crashes then alternate between full power cuts and single-shard crashes)
	MaxCallElems int64           // per-call element cap on the disk (default 0 = unlimited)

	// WAL runs the episode with write-ahead logging: writes append
	// checksummed records to per-shard logs (one per shard, min one),
	// flush acknowledgements ride group-committed log fsyncs, and
	// every reboot replays the surviving log tail before the
	// durability check — so the contract under test becomes "acked
	// writes are RECOVERED exactly", crash points landing mid-commit,
	// mid-apply and mid-compaction included. A single-engine
	// non-WAL episode's schedule is byte-identical whether or not
	// these fields exist: every extra scheduler draw is gated on WAL.
	WAL           bool
	WALCapWords   int64 // per-log capacity in words (default 1024: small, so full-log compaction triggers mid-episode)
	CheckpointOps int   // ~one explicit compaction per this many steps (default 30; <0 disables)

	// Compress runs the WAL with payload compression (codec frames in
	// the log records). The durability contract is unchanged — the
	// injector still measures physical bytes — so this proves acked
	// writes survive crashes THROUGH the compressed records. Episodes
	// stay deterministic per seed, but records shrink, so log-full
	// compactions land at different steps than an uncompressed run of
	// the same seed.
	Compress bool

	// SkipFinalCheck leaves out the episode epilogue (heal faults,
	// flush, final crash, exact durability check). The epilogue is
	// where "every acknowledged write survives" gets its strictest
	// test, so only skip it when an episode must end mid-fault.
	SkipFinalCheck bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Ops <= 0 {
		o.Ops = 200
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Tiles <= 0 {
		o.Tiles = 8
	}
	if o.TileElems <= 0 {
		o.TileElems = 16
	}
	if o.PutFrac <= 0 {
		o.PutFrac = 0.4
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 20
	}
	if o.CrashEvery == 0 {
		o.CrashEvery = 50
	}
	if o.CacheTiles <= 0 {
		o.CacheTiles = 4
	}
	if o.WAL {
		if o.WALCapWords <= 0 {
			o.WALCapWords = 1024
		}
		if o.CheckpointOps == 0 {
			o.CheckpointOps = 30
		}
	}
	return o
}

// Result is one episode's verdict and replay material.
type Result struct {
	Seed       int64
	Replayable bool // Workers == 0: the schedule is a pure function of the seed

	Ops, Gets, Puts, Flushes, Crashes int
	ShardCrashes                      int // single-shard crashes (sharded episodes only; cache lost, no power cut)
	Checkpoints                       int // scheduled WAL compactions (WAL episodes only)
	AckedFlushes                      int // flushes that returned nil (durability acknowledgements)
	GetErrors, PutErrors, FlushErrors int // operations failed by injected faults (surfaced, not hidden)
	FaultsInjected                    int64

	// Violations lists every invariant breach; empty means the episode
	// passed. Each entry names the invariant, the tile, and the values.
	Violations []string

	// OpLog is the harness's own deterministic operation trace;
	// FaultSchedule is the injector's decision trace. Together they
	// replay the episode byte-for-byte (same seed in, same bytes out).
	OpLog         string
	FaultSchedule string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-line verdict.
func (r *Result) Summary() string {
	verdict := "ok"
	if r.Failed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	shard := ""
	if r.ShardCrashes > 0 {
		shard = fmt.Sprintf("+%ds", r.ShardCrashes)
	}
	ck := ""
	if r.Checkpoints > 0 {
		ck = fmt.Sprintf(" ckpts=%d", r.Checkpoints)
	}
	return fmt.Sprintf("seed=%d ops=%d gets=%d puts=%d flushes=%d(%d acked) crashes=%d%s%s faults=%d errs=%d/%d/%d %s",
		r.Seed, r.Ops, r.Gets, r.Puts, r.Flushes, r.AckedFlushes, r.Crashes, shard, ck,
		r.FaultsInjected, r.GetErrors, r.PutErrors, r.FlushErrors, verdict)
}

// episode is the running state of one seeded simulation.
type episode struct {
	o   Options
	rng *rand.Rand // the virtual scheduler's choices
	cl  []*rand.Rand
	inj *faultfs.Injector
	res *Result
	log strings.Builder

	disk *ooc.Disk
	arr  *ooc.Array
	eng  ooc.TileEngine

	// The sequential map-of-tiles model, element-exact.
	volatileT [][]float64 // expected current contents per tile
	acked     [][]float64 // contents at the last acknowledged flush
	pending   [][]float64 // values written since (candidates for partial durability)

	nextVal float64
}

const arrayName = "T"

// Run executes one seeded episode and returns its verdict. It never
// panics on an invariant breach — violations are collected so a
// harness can run many episodes and report every failing seed.
func Run(o Options) *Result {
	o = o.withDefaults()
	ep := &episode{
		o:   o,
		rng: rand.New(rand.NewSource(o.Seed)),
		inj: faultfs.New(o.Seed+1, o.Profile),
		res: &Result{Seed: o.Seed, Replayable: o.Workers == 0},
	}
	for c := 0; c < o.Clients; c++ {
		ep.cl = append(ep.cl, rand.New(rand.NewSource(o.Seed+int64(c)*104729+7)))
	}
	ep.volatileT = make([][]float64, o.Tiles)
	ep.acked = make([][]float64, o.Tiles)
	ep.pending = make([][]float64, o.Tiles)
	for t := 0; t < o.Tiles; t++ {
		ep.volatileT[t] = make([]float64, o.TileElems)
		ep.acked[t] = make([]float64, o.TileElems)
	}
	ep.open()

	for step := 0; step < o.Ops; step++ {
		ep.res.Ops++
		switch {
		case o.CrashEvery > 0 && ep.rng.Float64() < 1/float64(o.CrashEvery):
			// The extra coin flip only exists in sharded episodes, so a
			// single-engine episode's schedule is byte-identical whether or
			// not this branch exists.
			if o.Shards > 1 && ep.rng.Intn(2) == 1 {
				ep.crashShard("scheduled")
			} else {
				ep.crash("scheduled")
			}
		case o.FlushEvery > 0 && ep.rng.Float64() < 1/float64(o.FlushEvery):
			ep.flush()
		// The compaction draw only exists in WAL episodes, so a non-WAL
		// schedule is byte-identical whether or not this branch exists.
		case o.WAL && o.CheckpointOps > 0 && ep.rng.Float64() < 1/float64(o.CheckpointOps):
			ep.checkpointOp()
		default:
			c := ep.rng.Intn(o.Clients)
			ep.clientOp(c)
		}
	}

	if !o.SkipFinalCheck {
		ep.inj.Heal()
		ep.logf("epilogue heal+flush")
		if err := ep.eng.Flush(); err != nil {
			ep.violate("epilogue: flush against a healed backend failed: %v", err)
		} else {
			ep.ack()
		}
		ep.crash("epilogue")
	}
	ep.eng.Abandon()
	ep.res.FaultsInjected = ep.inj.Injected()
	ep.res.OpLog = ep.log.String()
	ep.res.FaultSchedule = ep.inj.Schedule()
	return ep.res
}

// open builds (or rebuilds, after a crash) the disk/engine over the
// injector's surviving stores. A WAL episode replays the surviving
// log tail as part of every open — recovery is not allowed to fail,
// so the open runs healed (boot media errors are a different failure
// class than the crash-consistency contract under test) and re-arms
// once the stack is up.
func (ep *episode) open() {
	if ep.o.WAL {
		ep.inj.Heal()
		defer ep.inj.Arm()
	}
	ep.disk = ooc.NewDisk(ep.o.MaxCallElems).WrapBackend(ep.inj.Wrap)
	if ep.o.WAL {
		logs := ep.o.Shards
		if logs < 1 {
			logs = 1
		}
		ep.disk.EnableWAL(ooc.WALOptions{Logs: logs, CapWords: ep.o.WALCapWords, Compress: ep.o.Compress})
	}
	size := int64(ep.o.Tiles) * ep.o.TileElems
	arr, err := ep.disk.CreateArray(ir.NewArray(arrayName, size), layout.RowMajor(size))
	if err != nil {
		// Creation is in-memory bookkeeping plus a zeroed store; it
		// cannot fail absent a harness bug.
		panic(fmt.Sprintf("dst: creating %s: %v", arrayName, err))
	}
	ep.arr = arr
	eo := ooc.EngineOptions{Workers: ep.o.Workers, CacheTiles: ep.o.CacheTiles}
	if ep.o.Shards > 1 {
		ep.eng = ooc.NewShardedEngine(ep.disk, ep.o.Shards, eo)
	} else {
		ep.eng = ooc.NewEngine(ep.disk, eo)
	}
	if ep.o.WAL {
		if _, err := ep.disk.ReplayWAL(); err != nil {
			ep.violate("recovery: WAL replay failed: %v", err)
		}
	}
}

// tileBox returns tile t's box.
func (ep *episode) tileBox(t int) layout.Box {
	lo := int64(t) * ep.o.TileElems
	return layout.NewBox([]int64{lo}, []int64{lo + ep.o.TileElems})
}

// clientOp advances one logical client: a GET or PUT on a tile chosen
// from the client's own stream.
func (ep *episode) clientOp(c int) {
	rng := ep.cl[c]
	t := rng.Intn(ep.o.Tiles)
	if rng.Float64() < ep.o.PutFrac {
		ep.put(c, t)
	} else {
		ep.get(c, t)
	}
}

// get checks the liveness invariant: a successful read returns
// exactly the model's current tile contents.
func (ep *episode) get(c, t int) {
	ep.res.Gets++
	h, err := ep.eng.Acquire(ep.arr, ep.tileBox(t))
	if err != nil {
		ep.res.GetErrors++
		ep.logf("c%d get t%d -> err %v", c, t, err)
		return
	}
	data := h.Tile().Data()
	want := ep.volatileT[t]
	for i := range data {
		if data[i] != want[i] {
			ep.violate("liveness: get tile %d elem %d = %v, model says %v", t, i, data[i], want[i])
			break
		}
	}
	ep.eng.Release(h, false)
	ep.logf("c%d get t%d -> ok", c, t)
}

// put fills tile t with a fresh unique value.
func (ep *episode) put(c, t int) {
	ep.res.Puts++
	ep.nextVal++
	v := ep.nextVal
	h, err := ep.eng.Acquire(ep.arr, ep.tileBox(t))
	if err != nil {
		ep.res.PutErrors++
		ep.logf("c%d put t%d v=%v -> err %v", c, t, v, err)
		return
	}
	data := h.Tile().Data()
	for i := range data {
		data[i] = v
	}
	ep.eng.Release(h, true)
	for i := range ep.volatileT[t] {
		ep.volatileT[t][i] = v
	}
	ep.pending[t] = append(ep.pending[t], v)
	ep.logf("c%d put t%d v=%v -> ok", c, t, v)
}

// flush asks the engine for durability; nil is an acknowledgement.
func (ep *episode) flush() {
	ep.res.Flushes++
	if err := ep.eng.Flush(); err != nil {
		ep.res.FlushErrors++
		ep.logf("flush -> err %v", err)
		return
	}
	ep.ack()
	ep.logf("flush -> acked")
}

// ack moves the model's current state into the acknowledged state.
func (ep *episode) ack() {
	ep.res.AckedFlushes++
	for t := range ep.acked {
		copy(ep.acked[t], ep.volatileT[t])
		ep.pending[t] = nil
	}
}

// crash cuts power, checks the durability invariant over the
// surviving state, then reboots the stack and adopts the durable
// contents as the new model state.
//
// A WAL episode reboots FIRST: the durable log tail is replayed over
// the stripe bytes as part of open, and the durability contract
// applies to the RECOVERED state — acked writes must come back
// exactly even when the power cut landed mid-commit-window (log
// records appended but not fsynced), mid-apply (write-throughs not
// yet checkpointed) or mid-compaction (logs partially truncated),
// with torn log tails discarded by the record framing.
func (ep *episode) crash(why string) {
	ep.res.Crashes++
	ep.logf("crash (%s)", why)
	ep.eng.Abandon()
	ep.inj.Crash()
	if ep.o.WAL {
		ep.open()
	}

	buf := make([]float64, ep.o.TileElems)
	for t := 0; t < ep.o.Tiles; t++ {
		if err := ep.inj.ReadDurable(arrayName, buf, int64(t)*ep.o.TileElems); err != nil {
			ep.violate("durability: reading tile %d after crash: %v", t, err)
			continue
		}
		ack, pend := ep.acked[t], ep.pending[t]
		if len(pend) == 0 {
			// Nothing written since the acknowledgement: the tile must
			// survive exactly — not lost, not torn.
			for i := range buf {
				if buf[i] != ack[i] {
					ep.violate("durability: acked tile %d elem %d = %v after crash, want %v (pending: none)",
						t, i, buf[i], ack[i])
					break
				}
			}
		} else {
			// Unacknowledged writes may be durable in full, in part, or
			// not at all; every element must still come from the acked
			// contents or one of the pending writes.
			for i := range buf {
				if buf[i] != ack[i] && !contains(pend, buf[i]) {
					ep.violate("durability: tile %d elem %d = %v after crash, not the acked %v nor any of %d pending writes",
						t, i, buf[i], ack[i], len(pend))
					break
				}
			}
		}
		// Adopt the survivor as ground truth for the rebooted stack.
		copy(ep.acked[t], buf)
		copy(ep.volatileT[t], buf)
		ep.pending[t] = nil
	}
	if !ep.o.WAL {
		ep.open()
	}
}

// checkpointOp runs the WAL compaction step at a scheduler-chosen
// point: member syncs plus log truncation, under whatever faults are
// armed — so crashes land before, inside and after compactions. A
// failed checkpoint changes nothing the model tracks (the logs keep
// their records).
func (ep *episode) checkpointOp() {
	ep.res.Checkpoints++
	if err := ep.disk.Checkpoint(); err != nil {
		ep.logf("checkpoint -> err %v", err)
		return
	}
	ep.logf("checkpoint -> ok")
}

// crashShard kills one shard of a sharded plane: its cached (dirty)
// tiles are lost, but nothing else is — no power cut, so the store
// keeps volatile write-backs and the other shards keep their caches.
// The surviving store contents for the dead shard's tiles must still
// come from the model's acked-or-pending set, and become the model's
// current contents (what a fresh shard reads on the next miss).
func (ep *episode) crashShard(why string) {
	ep.res.ShardCrashes++
	se := ep.eng.(*ooc.ShardedEngine)
	i := ep.rng.Intn(ep.o.Shards)
	ep.logf("shard-crash %d (%s)", i, why)
	se.CrashShard(i)

	buf := make([]float64, ep.o.TileElems)
	for t := 0; t < ep.o.Tiles; t++ {
		if ooc.ShardOf(arrayName, ep.tileBox(t), ep.o.Shards) != i {
			continue
		}
		if err := ep.inj.ReadDurable(arrayName, buf, int64(t)*ep.o.TileElems); err != nil {
			ep.violate("shard-crash: reading tile %d: %v", t, err)
			continue
		}
		ack, pend := ep.acked[t], ep.pending[t]
		for k := range buf {
			if buf[k] != ack[k] && !contains(pend, buf[k]) {
				ep.violate("shard-crash: tile %d elem %d = %v, not the acked %v nor any of %d pending writes",
					t, k, buf[k], ack[k], len(pend))
				break
			}
		}
		// The dead shard's next miss reads the store: adopt it as the
		// tile's current contents. Durability bookkeeping is untouched —
		// power didn't fail.
		copy(ep.volatileT[t], buf)
	}
}

func contains(vals []float64, v float64) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

func (ep *episode) violate(format string, args ...any) {
	ep.res.Violations = append(ep.res.Violations, fmt.Sprintf(format, args...))
	ep.logf("VIOLATION: "+format, args...)
}

func (ep *episode) logf(format string, args ...any) {
	fmt.Fprintf(&ep.log, format, args...)
	ep.log.WriteByte('\n')
}
