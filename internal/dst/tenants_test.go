package dst

import (
	"fmt"
	"strings"
	"testing"
)

// TestTenantsEpisodes sweeps the tenant episodes — two-tenant traffic
// against a faulted cluster — across seeds; every round must get a
// clean verdict (no DRR wedge) and the epilogue must find no leaked
// queue slot. CI's nightly chaos job runs a wider sweep through
// cmd/occhaos -tenants.
func TestTenantsEpisodes(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := RunTenants(TenantsOptions{Seed: seed})
			if res.Failed() {
				t.Errorf("%s", res.Summary())
				for _, v := range res.Violations {
					t.Errorf("  violation: %s", v)
				}
				t.Logf("op log:\n%s", res.OpLog)
			}
		})
	}
}

// TestTenantsEpisodeStats sanity-checks that the sweep actually
// exercised the fault machinery and both tenants: kills, partitions,
// abandoned scans, and clean rejections all have to occur across the
// seeds, or the episodes prove nothing about the admission plane.
func TestTenantsEpisodeStats(t *testing.T) {
	var ok, chunks, abandons, rejects, kills, parts int
	for seed := int64(1); seed <= 10; seed++ {
		res := RunTenants(TenantsOptions{Seed: seed})
		if res.Failed() {
			t.Fatalf("%s\nviolations: %v\nop log:\n%s", res.Summary(), res.Violations, res.OpLog)
		}
		ok += res.PointOK
		chunks += res.ScanChunks
		abandons += res.ScanAbandons
		rejects += res.Rejects
		kills += res.Kills
		parts += res.Partitions
	}
	if ok == 0 || chunks == 0 || abandons == 0 || rejects == 0 || kills == 0 || parts == 0 {
		t.Fatalf("10 episodes exercised ok=%d chunks=%d abandons=%d rejects=%d kills=%d parts=%d; want all nonzero",
			ok, chunks, abandons, rejects, kills, parts)
	}
}

// TestTenantsEpisodeDurableHints replays a tenant episode with the
// durable hint log in the path, so the epilogue's hint drain crosses
// the framed on-disk queue.
func TestTenantsEpisodeDurableHints(t *testing.T) {
	res := RunTenants(TenantsOptions{Seed: 5, HintDir: t.TempDir()})
	if res.Failed() {
		t.Fatalf("%s\nviolations: %v\nop log:\n%s", res.Summary(), res.Violations, res.OpLog)
	}
}

// TestTenantsResultSummary pins the verdict line and the violation
// plumbing occhaos prints on a red episode.
func TestTenantsResultSummary(t *testing.T) {
	ok := TenantsResult{Seed: 7, Rounds: 40, PointOK: 3}
	if ok.Failed() || !strings.Contains(ok.Summary(), "seed=7") || !strings.Contains(ok.Summary(), " ok") {
		t.Errorf("clean summary wrong: %q", ok.Summary())
	}
	ep := &tenantsEpisode{res: &TenantsResult{}}
	ep.violate("tenant %s starved", "point")
	ep.res.Violations = append(ep.res.Violations, "second")
	if !ep.res.Failed() || !strings.Contains(ep.res.Summary(), "FAIL (2 violations)") {
		t.Errorf("failing summary wrong: %q", ep.res.Summary())
	}
	if ep.res.Violations[0] != "tenant point starved" {
		t.Errorf("violation not formatted: %q", ep.res.Violations[0])
	}
}
