package dst

// Cluster episodes: the deterministic-simulation discipline applied
// to the distributed plane. A seeded scheduler drives tile PUTs and
// GETs through a {router + N nodes, R replicas} LocalCluster while
// killing nodes (power cut: caches and unsynced bytes lost),
// partitioning them (reachability lost, state intact), and healing
// them back, then checks the replication contract:
//
//   - Episode liveness: every successful read is whole-tile uniform
//     (never torn) and its value was actually written to that tile at
//     some point (or is the initial zero). Staleness during failures
//     is allowed — with replicas down, a read may be served by a
//     survivor that missed recent writes — but fabricated or torn
//     values never are.
//   - Epilogue durability: after every node heals, the owed hints
//     drain to empty, and each tile's converged value must be the
//     last ACKED write or one attempted after it (a failed PUT may
//     still have landed on a replica or in a hint — a post-ack maybe;
//     anything older was superseded by the ack). Then, with each
//     single replica in turn marked down, the router must still serve
//     exactly the converged value — every acked write survives the
//     loss of any one replica — and finally the replicas themselves
//     must be byte-equal under direct per-node reads.
//
// The router's replica fan-out uses real goroutines, so the schedule
// is not byte-replayable the way single-engine episodes are; the
// invariants above are schedule-independent, and the op log still
// narrates the episode for debugging.

import (
	"fmt"
	"math/rand"
	"strings"

	"outcore/internal/cluster"
	"outcore/internal/layout"
)

// ClusterOptions configures one cluster episode. The zero value gets
// sane defaults from RunCluster; Seed alone is enough.
type ClusterOptions struct {
	Seed int64

	Ops       int   // scheduler steps (default 200)
	Nodes     int   // storage nodes (default 3)
	Replicas  int   // copies per tile (default 2)
	Tiles     int   // tile-grid length (default 8)
	TileElems int64 // elements per tile (default 16)

	PutFrac    float64 // fraction of client ops that are PUTs (default 0.4)
	KillEvery  int     // ~one node failure per this many steps (default 25; <0 disables)
	HealEvery  int     // ~one node heal per this many steps (default 15; <0 disables)
	HintDir    string  // durable hint-log directory ("" = in-memory hints)
	MaxPending int     // epilogue probe rounds allowed to drain hints (default 10)
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Ops <= 0 {
		o.Ops = 200
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Tiles <= 0 {
		o.Tiles = 8
	}
	if o.TileElems <= 0 {
		o.TileElems = 16
	}
	if o.PutFrac <= 0 {
		o.PutFrac = 0.4
	}
	if o.KillEvery == 0 {
		o.KillEvery = 25
	}
	if o.HealEvery == 0 {
		o.HealEvery = 15
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 10
	}
	return o
}

// ClusterResult is one cluster episode's verdict.
type ClusterResult struct {
	Seed int64

	Ops, Gets, Puts       int
	PutRejects, GetErrors int // quorum refusals during failures (surfaced, not hidden)
	Kills, Partitions     int
	Heals                 int
	HintsDrained          int // hints delivered during the epilogue drain

	Violations []string
	OpLog      string
}

// Failed reports whether any invariant was violated.
func (r *ClusterResult) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-line verdict.
func (r *ClusterResult) Summary() string {
	verdict := "ok"
	if r.Failed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("cluster seed=%d ops=%d gets=%d puts=%d rejects=%d/%d kills=%d partitions=%d heals=%d drained=%d %s",
		r.Seed, r.Ops, r.Gets, r.Puts, r.PutRejects, r.GetErrors, r.Kills, r.Partitions, r.Heals, r.HintsDrained, verdict)
}

// clusterEpisode is the running state of one seeded cluster episode.
type clusterEpisode struct {
	o   ClusterOptions
	rng *rand.Rand
	lc  *cluster.LocalCluster
	cli *cluster.NodeClient
	res *ClusterResult
	log strings.Builder

	// The per-tile model of what the cluster may legitimately serve.
	written   [][]float64 // every value ever attempted on the tile
	lastAcked []float64   // value of the most recent acked PUT (0 = none)
	maybes    [][]float64 // values attempted after the last ack (may have landed)

	nextVal float64
}

// RunCluster executes one seeded cluster episode. Violations are
// collected, never panicked, so a harness can sweep many seeds and
// report every failing one.
func RunCluster(o ClusterOptions) *ClusterResult {
	o = o.withDefaults()
	ep := &clusterEpisode{
		o:   o,
		rng: rand.New(rand.NewSource(o.Seed)),
		res: &ClusterResult{Seed: o.Seed},
	}
	lc, err := cluster.NewLocal(cluster.LocalOptions{
		Nodes:       o.Nodes,
		Replicas:    o.Replicas,
		TileDim:     o.TileElems, // 1-D grid: one routing tile per model tile
		DurablePuts: true,
		HintDir:     o.HintDir,
		Seed:        o.Seed + 1,
	})
	if err != nil {
		ep.violate("building cluster: %v", err)
		return ep.res
	}
	ep.lc = lc
	defer lc.Close()
	if err := lc.CreateArray(arrayName, int64(o.Tiles)*o.TileElems); err != nil {
		ep.violate("creating %s: %v", arrayName, err)
		return ep.res
	}
	ep.cli = lc.Client()
	ep.written = make([][]float64, o.Tiles)
	ep.maybes = make([][]float64, o.Tiles)
	ep.lastAcked = make([]float64, o.Tiles)

	for step := 0; step < o.Ops; step++ {
		ep.res.Ops++
		switch {
		case o.KillEvery > 0 && ep.rng.Float64() < 1/float64(o.KillEvery):
			ep.failNode()
		case o.HealEvery > 0 && ep.rng.Float64() < 1/float64(o.HealEvery):
			ep.healNode()
		default:
			t := ep.rng.Intn(o.Tiles)
			if ep.rng.Float64() < o.PutFrac {
				ep.put(t)
			} else {
				ep.get(t)
			}
		}
	}
	ep.epilogue()
	ep.res.OpLog = ep.log.String()
	return ep.res
}

// tileBox returns model tile t's (routing-aligned) box.
func (ep *clusterEpisode) tileBox(t int) layout.Box {
	lo := int64(t) * ep.o.TileElems
	return layout.NewBox([]int64{lo}, []int64{lo + ep.o.TileElems})
}

// failNode takes a healthy node out: a coin chooses a power cut
// (cache and unsynced bytes lost) or a partition (state intact,
// unreachable). With every node already out, the step is a no-op op.
func (ep *clusterEpisode) failNode() {
	i := ep.rng.Intn(ep.lc.Nodes())
	kill := ep.rng.Intn(2) == 0
	if ep.lc.Killed(i) || ep.lc.Partitioned(i) {
		ep.logf("fail n%d -> already out", i)
		return
	}
	if kill {
		ep.res.Kills++
		ep.lc.Kill(i)
		ep.logf("kill n%d", i)
	} else {
		ep.res.Partitions++
		ep.lc.Partition(i)
		ep.logf("partition n%d", i)
	}
}

// healNode brings one downed node back (restart or partition lift)
// and probes so the router re-admits it and drains owed hints.
func (ep *clusterEpisode) healNode() {
	for _, i := range ep.rng.Perm(ep.lc.Nodes()) {
		switch {
		case ep.lc.Killed(i):
			ep.res.Heals++
			ep.lc.Restart(i)
			ep.lc.Router.Probe()
			ep.logf("heal n%d (restart)", i)
			return
		case ep.lc.Partitioned(i):
			ep.res.Heals++
			ep.lc.Unpartition(i)
			ep.lc.Router.Probe()
			ep.logf("heal n%d (unpartition)", i)
			return
		}
	}
	ep.logf("heal -> nothing out")
}

// put fills tile t with a fresh unique value through the router. An
// ack means a sloppy quorum holds the write durably; a refusal leaves
// the value a "maybe" — some replica or hint may still carry it.
func (ep *clusterEpisode) put(t int) {
	ep.res.Puts++
	ep.nextVal++
	v := ep.nextVal
	box := ep.tileBox(t)
	data := make([]float64, box.Size())
	for i := range data {
		data[i] = v
	}
	ep.written[t] = append(ep.written[t], v)
	_, _, err := ep.cli.PutTile(arrayName, box, data, 0, true)
	if err != nil {
		ep.res.PutRejects++
		ep.maybes[t] = append(ep.maybes[t], v)
		ep.logf("put t%d v=%v -> rejected (%v)", t, v, err)
		return
	}
	// Under last-write-wins this ack supersedes every earlier attempt:
	// older maybes can no longer win a generation comparison.
	ep.lastAcked[t] = v
	ep.maybes[t] = nil
	ep.logf("put t%d v=%v -> acked", t, v)
}

// get checks episode liveness: a served read is never torn and never
// fabricated. Staleness is legal while replicas are down.
func (ep *clusterEpisode) get(t int) {
	ep.res.Gets++
	box := ep.tileBox(t)
	got, _, err := ep.cli.GetTile(arrayName, box, true)
	if err != nil {
		ep.res.GetErrors++
		ep.logf("get t%d -> err %v", t, err)
		return
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			ep.violate("liveness: tile %d torn: elem %d = %v, elem 0 = %v", t, i, got[i], got[0])
			ep.logf("get t%d -> TORN", t)
			return
		}
	}
	if got[0] != 0 && !contains(ep.written[t], got[0]) {
		ep.violate("liveness: tile %d = %v, never written there", t, got[0])
	}
	ep.logf("get t%d -> %v", t, got[0])
}

// epilogue heals the world and enforces the durability contract: owed
// hints drain to empty, each tile converges to the last acked write
// (or a post-ack maybe), the converged value survives the loss of any
// single replica, and the replicas byte-equal each other.
func (ep *clusterEpisode) epilogue() {
	ep.logf("epilogue heal")
	ep.lc.Heal()
	drainedFrom := ep.lc.HintsPendingTotal()
	for round := 0; ep.lc.HintsPendingTotal() > 0; round++ {
		if round >= ep.o.MaxPending {
			ep.violate("epilogue: %d hints still queued after %d probe rounds",
				ep.lc.HintsPendingTotal(), round)
			break
		}
		ep.lc.Router.Probe()
	}
	ep.res.HintsDrained = drainedFrom - ep.lc.HintsPendingTotal()

	for t := 0; t < ep.o.Tiles; t++ {
		box := ep.tileBox(t)

		// Converge: the first read after heal runs read-repair wherever
		// a returned replica lags.
		got, _, err := ep.cli.GetTile(arrayName, box, true)
		if err != nil {
			ep.violate("epilogue: reading tile %d with all nodes up: %v", t, err)
			continue
		}
		v := got[0]
		for i := 1; i < len(got); i++ {
			if got[i] != v {
				ep.violate("epilogue: tile %d torn: elem %d = %v, elem 0 = %v", t, i, got[i], v)
				break
			}
		}
		acked := ep.lastAcked[t]
		if v != acked && !contains(ep.maybes[t], v) {
			ep.violate("epilogue: tile %d converged to %v, want the acked %v or one of %d post-ack maybes",
				t, v, acked, len(ep.maybes[t]))
			continue
		}

		// Single-replica loss: each replica down in turn, the router
		// must still serve exactly the converged value from a survivor.
		reps := ep.lc.ReplicaNodes(arrayName, box)
		for _, i := range reps {
			ep.lc.SetNodeDown(i, true)
			lost, _, err := ep.cli.GetTile(arrayName, box, true)
			ep.lc.SetNodeDown(i, false)
			if err != nil {
				ep.violate("epilogue: tile %d unreadable with replica n%d down: %v", t, i, err)
				continue
			}
			for k := range lost {
				if lost[k] != v {
					ep.violate("epilogue: tile %d elem %d = %v with replica n%d down, converged value was %v",
						t, k, lost[k], i, v)
					break
				}
			}
		}

		// Byte-equal replicas under direct reads: handoff and repair
		// really did rebuild identical copies.
		for _, i := range reps {
			direct, _, err := ep.lc.NodeClientDirect(i).GetTile(arrayName, box, true)
			if err != nil {
				ep.violate("epilogue: direct read of tile %d on n%d: %v", t, i, err)
				continue
			}
			for k := range direct {
				if direct[k] != v {
					ep.violate("epilogue: replica n%d of tile %d diverged: elem %d = %v, want %v",
						i, t, k, direct[k], v)
					break
				}
			}
		}
	}
}

func (ep *clusterEpisode) violate(format string, args ...any) {
	ep.res.Violations = append(ep.res.Violations, fmt.Sprintf(format, args...))
	ep.logf("VIOLATION: "+format, args...)
}

func (ep *clusterEpisode) logf(format string, args ...any) {
	fmt.Fprintf(&ep.log, format, args...)
	ep.log.WriteByte('\n')
}
