package dst

import (
	"fmt"
	"strings"
	"testing"
)

// TestOpsEpisodes sweeps the operator episodes — scan-interrupted-by-
// crash and batch-PUT-power-cut — across seeds; every one must pass
// its resume-exactness and acked-durability invariants. CI's nightly
// chaos job runs a wider sweep through cmd/occhaos -operators.
func TestOpsEpisodes(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := RunOps(OpsOptions{Seed: seed})
			if res.Failed() {
				t.Errorf("%s", res.Summary())
				for _, v := range res.Violations {
					t.Errorf("  violation: %s", v)
				}
				t.Logf("op log:\n%s", res.OpLog)
			}
		})
	}
}

// TestOpsEpisodeStats sanity-checks that the sweep actually exercised
// both episodes' fault machinery — resumed scans, mid-stream kills,
// and post-batch power cuts all have to occur, or the episodes prove
// nothing.
func TestOpsEpisodeStats(t *testing.T) {
	var resumes, kills, cuts, acks, chunks int
	for seed := int64(1); seed <= 10; seed++ {
		res := RunOps(OpsOptions{Seed: seed})
		if res.Failed() {
			t.Fatalf("%s\nviolations: %v\nop log:\n%s", res.Summary(), res.Violations, res.OpLog)
		}
		resumes += res.ScanResumes
		kills += res.Kills
		cuts += res.PowerCuts
		acks += res.BatchAcks
		chunks += res.ScanChunks
	}
	if resumes == 0 || kills == 0 || cuts == 0 || acks == 0 || chunks == 0 {
		t.Fatalf("10 episodes exercised resumes=%d kills=%d cuts=%d acks=%d chunks=%d; want all nonzero",
			resumes, kills, cuts, acks, chunks)
	}
}

// TestOpsEpisodeDurableHints replays an operator episode with the
// durable hint log in the path.
func TestOpsEpisodeDurableHints(t *testing.T) {
	res := RunOps(OpsOptions{Seed: 3, HintDir: t.TempDir()})
	if res.Failed() {
		t.Fatalf("%s\nviolations: %v\nop log:\n%s", res.Summary(), res.Violations, res.OpLog)
	}
}

// TestOpsResultSummary pins the verdict line and the violation
// plumbing occhaos prints on a red episode.
func TestOpsResultSummary(t *testing.T) {
	ok := OpsResult{Seed: 7, Rounds: 40, BatchAcks: 3}
	if ok.Failed() || !strings.Contains(ok.Summary(), "seed=7") || !strings.Contains(ok.Summary(), " ok") {
		t.Errorf("clean summary wrong: %q", ok.Summary())
	}
	ep := &opsEpisode{res: &OpsResult{}}
	ep.violate("tile %d lost", 9)
	ep.res.Violations = append(ep.res.Violations, "second")
	if !ep.res.Failed() || !strings.Contains(ep.res.Summary(), "FAIL (2 violations)") {
		t.Errorf("failing summary wrong: %q", ep.res.Summary())
	}
	if ep.res.Violations[0] != "tile 9 lost" {
		t.Errorf("violation not formatted: %q", ep.res.Violations[0])
	}
}
