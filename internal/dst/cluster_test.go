package dst

import (
	"fmt"
	"testing"
)

// TestClusterEpisodes sweeps seeded cluster episodes across node and
// replica shapes; every one must pass its liveness and epilogue
// durability invariants. CI's nightly chaos job runs a wider sweep
// through cmd/occhaos -cluster.
func TestClusterEpisodes(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for _, shape := range []struct{ nodes, replicas int }{
		{2, 2},
		{3, 2},
		{5, 3},
	} {
		shape := shape
		t.Run(fmt.Sprintf("n%d-r%d", shape.nodes, shape.replicas), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= seeds; seed++ {
				res := RunCluster(ClusterOptions{
					Seed:     seed,
					Nodes:    shape.nodes,
					Replicas: shape.replicas,
				})
				if res.Failed() {
					t.Errorf("%s", res.Summary())
					for _, v := range res.Violations {
						t.Errorf("  violation: %s", v)
					}
					t.Logf("op log:\n%s", res.OpLog)
				}
			}
		})
	}
}

// TestClusterEpisodeDurableHints replays an episode with the durable
// hint log: the run must pass with hints framed through disk.
func TestClusterEpisodeDurableHints(t *testing.T) {
	res := RunCluster(ClusterOptions{
		Seed:    5,
		Nodes:   3,
		HintDir: t.TempDir(),
	})
	if res.Failed() {
		t.Fatalf("%s\nviolations: %v\nop log:\n%s", res.Summary(), res.Violations, res.OpLog)
	}
}

// TestClusterEpisodeStats sanity-checks that an episode actually
// exercised the failure machinery (a sweep that never kills a node
// proves nothing).
func TestClusterEpisodeStats(t *testing.T) {
	kills, partitions, heals := 0, 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		res := RunCluster(ClusterOptions{Seed: seed, Nodes: 3})
		if res.Failed() {
			t.Fatalf("%s", res.Summary())
		}
		kills += res.Kills
		partitions += res.Partitions
		heals += res.Heals
	}
	if kills == 0 || partitions == 0 || heals == 0 {
		t.Fatalf("8 episodes exercised kills=%d partitions=%d heals=%d; want all nonzero", kills, partitions, heals)
	}
}
