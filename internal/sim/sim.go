// Package sim measures the paper's experiments end to end: it executes
// a kernel version's out-of-core schedule (in dry-run accounting mode)
// for each simulated processor's partition, collects the per-processor
// I/O request traces, optionally applies the h-opt coalescing pass, and
// feeds everything to the PFS discrete-event simulator to obtain
// execution times — the quantities behind Table 2 (normalized times on
// 16 processors) and Table 3 (speedups on 16..128 processors).
package sim

import (
	"fmt"

	"outcore/internal/codegen"
	"outcore/internal/handopt"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/pfs"
	"outcore/internal/suite"
)

// Setup configures one measurement.
type Setup struct {
	Kernel  suite.Kernel
	Cfg     suite.Config
	Version suite.Version
	Procs   int

	// MemFrac divides the total out-of-core data size to obtain the
	// per-processor memory budget (128 in the paper).
	MemFrac int64
	// PFS is the simulated I/O subsystem.
	PFS pfs.Config
	// IterPerSec is the per-processor compute rate in statement
	// iterations per second.
	IterPerSec float64
	// HandOpt tunes the h-opt coalescing pass (zero value: defaults
	// derived from the stripe size).
	HandOpt handopt.Options

	// CacheTiles > 0 routes each processor's tile I/O through the
	// concurrent engine's LRU tile cache of that capacity: re-touched
	// tiles stop hitting the backend and writes are written back once,
	// so the PFS sees the cached request stream. Workers sizes the
	// engine's worker pool (only meaningful for data-backed runs; the
	// dry-run accounting path is unaffected by it).
	CacheTiles int
	Workers    int
	// Shards > 1 partitions each processor's tile plane across that
	// many engine shards (ooc.ShardedEngine) instead of one engine —
	// the sharded configurations of the bench suite run through here.
	Shards int

	// Obs observes the whole measurement: the dry-run disks feed the
	// "ooc_io_*" registry series, engines (when CacheTiles > 0) publish
	// "ooc_engine_*" counters at close, the PFS simulation emits
	// virtual-time request events and "pfs_*" series, and the final
	// Measurement values are mirrored into "sim_*" series — so the
	// Measurement struct is the per-run view of what the registry
	// accumulates across runs. Nil disables all of it.
	Obs *obs.Sink
}

// Defaults fills unset fields.
func (s *Setup) defaults() {
	if s.Procs <= 0 {
		s.Procs = 1
	}
	if s.MemFrac == 0 {
		s.MemFrac = 128
	}
	if s.PFS.IONodes == 0 {
		s.PFS = pfs.DefaultConfig()
	}
	if s.IterPerSec == 0 {
		s.IterPerSec = 5e6
	}
}

// handoptDefaults derives coalescing limits from the platform and the
// memory budget: a merged call can never exceed what fits in memory.
func (s *Setup) handoptDefaults(budget int64) handopt.Options {
	if s.HandOpt != (handopt.Options{}) {
		return s.HandOpt
	}
	o := handopt.DefaultOptions(s.PFS.StripeElems)
	// Sieve gaps are only worth reading when their transfer time is
	// cheaper than the saved per-request overhead.
	o.MaxGap = int64(s.PFS.NodeOverhead * s.PFS.NodeBandwidth)
	if budget > 0 && o.ChunkElems > budget/2 {
		o.ChunkElems = budget / 2
	}
	return o
}

// Measurement is the outcome of one simulated run: a per-run view of
// the quantities that, when Setup.Obs is attached, also accumulate in
// the metrics registry (see Setup.Obs).
type Measurement struct {
	Kernel     string
	Version    suite.Version
	Procs      int
	Seconds    float64 // simulated execution time (PFS makespan)
	Calls      int64   // I/O library calls issued (after h-opt coalescing)
	Elems      int64   // elements moved
	Iterations int64   // statement iterations across all processors
	Coalesce   handopt.Stats
	// Cache aggregates the tile-engine counters across processors when
	// Setup.CacheTiles > 0 (hit rate, evictions, write-backs, prefetch
	// overlap); zero otherwise.
	Cache ooc.EngineStats
}

// Run executes the measurement.
func Run(st Setup) (Measurement, error) {
	m, _, err := RunDetailed(st)
	return m, err
}

// RunDetailed also returns the PFS simulation result (per-processor
// completion times, per-node utilization) for visualization.
func RunDetailed(st Setup) (Measurement, pfs.Result, error) {
	st.defaults()
	st.PFS.Obs = st.Obs
	prog := st.Kernel.Build(st.Cfg)
	plan, err := suite.PlanFor(prog, st.Version)
	if err != nil {
		return Measurement{}, pfs.Result{}, err
	}
	budget := suite.MemBudget(prog, st.MemFrac)
	opts := codegen.Options{
		Strategy:  suite.StrategyFor(st.Version),
		MemBudget: budget,
		DryRun:    true,
	}
	m := Measurement{Kernel: st.Kernel.Name, Version: st.Version, Procs: st.Procs}
	procs := make([]pfs.ProcWorkload, st.Procs)
	var rawProcs []pfs.ProcWorkload // h-opt fallback: uncoalesced schedule
	if st.Version == suite.HOpt {
		rawProcs = make([]pfs.ProcWorkload, st.Procs)
	}
	for p := 0; p < st.Procs; p++ {
		// Measurement disks carry no data: dry-run execution only touches
		// accounting, so backing arrays would be pure allocation churn.
		d, err := codegen.SetupDiskOn(ooc.NewDisk(0).NoBacking().Observe(st.Obs), prog, plan, nil)
		if err != nil {
			return Measurement{}, pfs.Result{}, err
		}
		d.Record = true
		mem := ooc.NewMemory(budget)
		procOpts := opts
		var eng ooc.TileEngine
		if st.CacheTiles > 0 {
			eo := ooc.EngineOptions{Workers: st.Workers, CacheTiles: st.CacheTiles, Obs: st.Obs}
			if st.Shards > 1 {
				eng = ooc.NewShardedEngine(d, st.Shards, eo)
			} else {
				eng = ooc.NewEngine(d, eo)
			}
			procOpts.Engine = eng
		}
		var iters int64
		for it := 0; it < st.Kernel.Iter; it++ {
			es, err := codegen.RunProgramSlice(prog, plan, d, mem, procOpts, p, st.Procs)
			if err != nil {
				return Measurement{}, pfs.Result{}, fmt.Errorf("sim: %s/%s proc %d: %w", st.Kernel.Name, st.Version, p, err)
			}
			iters += es.Iterations
		}
		if eng != nil {
			// Flush dirty cached tiles so their write calls reach the trace
			// before it is converted to PFS operations.
			if err := eng.Close(); err != nil {
				return Measurement{}, pfs.Result{}, fmt.Errorf("sim: %s/%s proc %d: %w", st.Kernel.Name, st.Version, p, err)
			}
			cs := eng.Stats()
			m.Cache.Hits += cs.Hits
			m.Cache.Misses += cs.Misses
			m.Cache.Evictions += cs.Evictions
			m.Cache.Invalidations += cs.Invalidations
			m.Cache.Writebacks += cs.Writebacks
			m.Cache.PrefetchIssued += cs.PrefetchIssued
			m.Cache.PrefetchUseful += cs.PrefetchUseful
		}
		var ops []pfs.Op
		if st.Version == suite.HOpt {
			raw := make([]pfs.Op, len(d.Trace))
			for i, r := range d.Trace {
				raw[i] = pfs.Call(r.Array, r.Off, r.Len, r.Write)
			}
			rawProcs[p] = pfs.ProcWorkload{Ops: raw}
			calls, cs := handopt.Coalesce(d.Trace, st.handoptDefaults(budget))
			m.Coalesce.CallsBefore += cs.CallsBefore
			m.Coalesce.CallsAfter += cs.CallsAfter
			m.Coalesce.ElemsBefore += cs.ElemsBefore
			m.Coalesce.ElemsAfter += cs.ElemsAfter
			ops = make([]pfs.Op, len(calls))
			for i, c := range calls {
				op := pfs.Op{Write: c.Write}
				op.First = pfs.Extent{File: c.Extents[0].Array, Off: c.Extents[0].Off, Len: c.Extents[0].Len}
				m.Elems += c.Extents[0].Len
				for _, e := range c.Extents[1:] {
					op.More = append(op.More, pfs.Extent{File: e.Array, Off: e.Off, Len: e.Len})
					m.Elems += e.Len
				}
				ops[i] = op
			}
		} else {
			ops = make([]pfs.Op, len(d.Trace))
			for i, r := range d.Trace {
				ops[i] = pfs.Call(r.Array, r.Off, r.Len, r.Write)
				m.Elems += r.Len
			}
		}
		d.Trace = nil // the converted ops are the only copy we keep
		m.Calls += int64(len(ops))
		m.Iterations += iters
		procs[p] = pfs.ProcWorkload{Ops: ops, ComputeSeconds: float64(iters) / st.IterPerSec}
	}
	res, err := pfs.Simulate(st.PFS, procs)
	if err != nil {
		return Measurement{}, pfs.Result{}, err
	}
	m.Seconds = res.Makespan
	if st.Version == suite.HOpt {
		// A hand optimizer keeps chunking/interleaving only where it
		// helps; fall back to the plain c-opt schedule otherwise.
		for p := range rawProcs {
			rawProcs[p].ComputeSeconds = procs[p].ComputeSeconds
		}
		rawRes, err := pfs.Simulate(st.PFS, rawProcs)
		if err != nil {
			return Measurement{}, pfs.Result{}, err
		}
		if rawRes.Makespan < m.Seconds {
			m.Seconds = rawRes.Makespan
			res = rawRes
			var calls, elems int64
			for _, w := range rawProcs {
				calls += int64(len(w.Ops))
				for _, op := range w.Ops {
					elems += op.First.Len
				}
			}
			m.Calls, m.Elems = calls, elems
		}
	}
	if reg := st.Obs.MetricsOf(); reg != nil {
		reg.Counter("sim_io_calls_total", "I/O library calls across simulated runs").Add(m.Calls)
		reg.Counter("sim_elems_total", "elements moved across simulated runs").Add(m.Elems)
		reg.Counter("sim_iterations_total", "statement iterations across simulated runs").Add(m.Iterations)
		reg.Gauge("sim_makespan_seconds", "simulated makespan of the most recent run").Set(m.Seconds)
	}
	return m, res, nil
}

// Speedups runs the setup at one processor and at each requested count,
// returning time(1)/time(p) per count — the paper's Table-3 metric
// (speedup of each version relative to ITS OWN single-node run).
func Speedups(st Setup, procCounts []int) (map[int]float64, error) {
	st.defaults()
	base := st
	base.Procs = 1
	b, err := Run(base)
	if err != nil {
		return nil, err
	}
	out := map[int]float64{}
	for _, p := range procCounts {
		cur := st
		cur.Procs = p
		mp, err := Run(cur)
		if err != nil {
			return nil, err
		}
		out[p] = b.Seconds / mp.Seconds
	}
	return out, nil
}
