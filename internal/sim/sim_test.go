package sim

import (
	"testing"

	"outcore/internal/pfs"
	"outcore/internal/suite"
)

func testSetup(kernel string, v suite.Version, procs int) Setup {
	k, ok := suite.ByName(kernel)
	if !ok {
		panic("unknown kernel " + kernel)
	}
	return Setup{
		Kernel:  k,
		Cfg:     suite.SmallConfig(),
		Version: v,
		Procs:   procs,
		MemFrac: 16,
		PFS: pfs.Config{
			IONodes:       8,
			StripeElems:   64,
			NodeOverhead:  0.005,
			NodeBandwidth: 100_000,
		},
		IterPerSec: 1e7,
	}
}

func TestRunBasic(t *testing.T) {
	m, err := Run(testSetup("mat", suite.Col, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds <= 0 || m.Calls <= 0 || m.Elems <= 0 {
		t.Errorf("measurement = %+v", m)
	}
	// mat runs its body Iter=2 times over a 24x24 space.
	if m.Iterations != 2*24*24 {
		t.Errorf("iterations = %d", m.Iterations)
	}
}

func TestVersionsOrderingMat(t *testing.T) {
	// For mat (one transposed operand), the integrated version must not
	// be slower than the worst fixed layout, and h-opt must not be
	// slower than c-opt.
	times := map[suite.Version]float64{}
	for _, v := range suite.Versions {
		m, err := Run(testSetup("mat", v, 1))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		times[v] = m.Seconds
	}
	worstFixed := times[suite.Col]
	if times[suite.Row] > worstFixed {
		worstFixed = times[suite.Row]
	}
	if times[suite.COpt] > worstFixed {
		t.Errorf("c-opt %.3f slower than worst fixed %.3f", times[suite.COpt], worstFixed)
	}
	if times[suite.HOpt] > times[suite.COpt]*1.0001 {
		t.Errorf("h-opt %.3f slower than c-opt %.3f", times[suite.HOpt], times[suite.COpt])
	}
}

func TestHandoptCoalesces(t *testing.T) {
	m, err := Run(testSetup("trans", suite.HOpt, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Coalesce.CallsBefore == 0 || m.Coalesce.CallsAfter > m.Coalesce.CallsBefore {
		t.Errorf("coalesce stats = %+v", m.Coalesce)
	}
	if m.Calls != m.Coalesce.CallsAfter {
		t.Errorf("calls %d != coalesced %d", m.Calls, m.Coalesce.CallsAfter)
	}
}

func TestPartitionedIterationConservation(t *testing.T) {
	// Total iterations must be identical at any processor count.
	m1, err := Run(testSetup("gfunp", suite.COpt, 1))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Run(testSetup("gfunp", suite.COpt, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Iterations != m4.Iterations {
		t.Errorf("iterations differ: %d vs %d", m1.Iterations, m4.Iterations)
	}
}

func TestSpeedups(t *testing.T) {
	sp, err := Speedups(testSetup("trans", suite.COpt, 0), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp[2] <= 0 || sp[4] <= 0 {
		t.Errorf("speedups = %v", sp)
	}
	// More processors must not be slower in this embarrassingly
	// parallel, I/O-light configuration... allow mild degradation but
	// require some scaling signal.
	if sp[4] < sp[2]*0.8 {
		t.Errorf("speedup regressed: %v", sp)
	}
}

func TestDefaultsFilled(t *testing.T) {
	k, _ := suite.ByName("mat")
	st := Setup{Kernel: k, Cfg: suite.SmallConfig(), Version: suite.Col}
	st.defaults()
	if st.Procs != 1 || st.MemFrac != 128 || st.PFS.IONodes != 64 || st.IterPerSec == 0 {
		t.Errorf("defaults = %+v", st)
	}
	ho := st.handoptDefaults(100)
	if !ho.Interleave || ho.MaxMergeCalls != 4 {
		t.Errorf("handopt defaults = %+v", ho)
	}
	if ho.ChunkElems != 50 {
		t.Errorf("chunk cap not bounded by budget: %d", ho.ChunkElems)
	}
}

func TestAllKernelsRunAllVersions(t *testing.T) {
	for _, k := range suite.Kernels {
		for _, v := range suite.Versions {
			m, err := Run(testSetup(k.Name, v, 2))
			if err != nil {
				t.Errorf("%s/%s: %v", k.Name, v, err)
				continue
			}
			if m.Seconds <= 0 {
				t.Errorf("%s/%s: non-positive time", k.Name, v)
			}
		}
	}
}

func TestRunDetailedExposesPFSResult(t *testing.T) {
	m, res, err := RunDetailed(testSetup("mat", suite.COpt, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProc) != 4 {
		t.Fatalf("per-proc entries = %d", len(res.PerProc))
	}
	if res.Makespan != m.Seconds {
		t.Errorf("makespan %g != measurement %g", res.Makespan, m.Seconds)
	}
	var worst float64
	for _, tEnd := range res.PerProc {
		if tEnd > worst {
			worst = tEnd
		}
	}
	if worst != res.Makespan {
		t.Errorf("makespan %g != slowest processor %g", res.Makespan, worst)
	}
	if len(res.NodeBusy) == 0 || res.MaxNodeBusy() <= 0 {
		t.Error("node utilization missing")
	}
}

func TestHOptNeverSlowerThanCOpt(t *testing.T) {
	// With the keep-only-if-better rule, h-opt must never lose to c-opt
	// on the same setup.
	for _, kname := range []string{"mat", "trans", "gfunp", "vpenta", "adi"} {
		mc, err := Run(testSetup(kname, suite.COpt, 4))
		if err != nil {
			t.Fatal(err)
		}
		mh, err := Run(testSetup(kname, suite.HOpt, 4))
		if err != nil {
			t.Fatal(err)
		}
		if mh.Seconds > mc.Seconds*1.0000001 {
			t.Errorf("%s: h-opt %.3f > c-opt %.3f", kname, mh.Seconds, mc.Seconds)
		}
	}
}
