package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/ir"
	"outcore/internal/matrix"
)

func TestTransformedBoxIdentity(t *testing.T) {
	lo, hi := TransformedBox(matrix.Identity(2), []int64{0, 0}, []int64{7, 9})
	if lo[0] != 0 || lo[1] != 0 || hi[0] != 7 || hi[1] != 9 {
		t.Errorf("box [%v,%v]", lo, hi)
	}
}

func TestTransformedBoxSkew(t *testing.T) {
	// T = [[1,0],[1,1]]: second coordinate spans 0..hi0+hi1.
	tm := matrix.FromRows([][]int64{{1, 0}, {1, 1}})
	lo, hi := TransformedBox(tm, []int64{0, 0}, []int64{3, 4})
	if lo[1] != 0 || hi[1] != 7 {
		t.Errorf("skew box [%v,%v]", lo, hi)
	}
	// Negative coefficients.
	tm2 := matrix.FromRows([][]int64{{1, 0}, {-1, 1}})
	lo, hi = TransformedBox(tm2, []int64{0, 0}, []int64{3, 4})
	if lo[1] != -3 || hi[1] != 4 {
		t.Errorf("neg-skew box [%v,%v]", lo, hi)
	}
}

func TestFootprintSingleRef(t *testing.T) {
	a := ir.NewArray("A", 100, 100)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	if got := Footprint(refs, []int64{4, 8}); got != 32 {
		t.Errorf("footprint = %d", got)
	}
	// Clipped by array extents.
	if got := Footprint(refs, []int64{200, 4}); got != 400 {
		t.Errorf("clipped footprint = %d", got)
	}
}

func TestFootprintUnionAcrossRefs(t *testing.T) {
	a := ir.NewArray("A", 100, 100)
	refs := []RefAccess{
		{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}},
		{Array: a, M: matrix.Identity(2), Off: []int64{2, 0}}, // shifted by 2 rows
	}
	// Union box: rows 0..(3+2), cols 0..3 = 6x4 = 24.
	if got := Footprint(refs, []int64{4, 4}); got != 24 {
		t.Errorf("union footprint = %d", got)
	}
}

func TestFootprintMultipleArrays(t *testing.T) {
	a := ir.NewArray("A", 100, 100)
	b := ir.NewArray("B", 100, 100)
	transpose := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	refs := []RefAccess{
		{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}},
		{Array: b, M: transpose, Off: []int64{0, 0}},
	}
	if got := Footprint(refs, []int64{4, 8}); got != 32+32 {
		t.Errorf("two-array footprint = %d", got)
	}
}

func TestChooseOOCKeepsInnermostFull(t *testing.T) {
	a := ir.NewArray("A", 64, 64)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	spec, err := Choose(refs, []int64{0, 0}, []int64{63, 63}, 512, OutOfCore)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sizes[1] != 64 {
		t.Errorf("innermost size = %d, want full 64", spec.Sizes[1])
	}
	// 512 budget / 64 inner = 8 rows.
	if spec.B != 8 || spec.Sizes[0] != 8 {
		t.Errorf("B = %d sizes = %v", spec.B, spec.Sizes)
	}
	if Footprint(refs, spec.Sizes) > 512 {
		t.Error("footprint exceeds budget")
	}
}

func TestChooseTraditionalSquare(t *testing.T) {
	a := ir.NewArray("A", 64, 64)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	spec, err := Choose(refs, []int64{0, 0}, []int64{63, 63}, 256, Traditional)
	if err != nil {
		t.Fatal(err)
	}
	if spec.B != 16 || spec.Sizes[0] != 16 || spec.Sizes[1] != 16 {
		t.Errorf("B = %d sizes = %v", spec.B, spec.Sizes)
	}
}

func TestChooseUnlimitedBudget(t *testing.T) {
	a := ir.NewArray("A", 16, 16)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	spec, err := Choose(refs, []int64{0, 0}, []int64{15, 15}, 0, Traditional)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sizes[0] != 16 || spec.Sizes[1] != 16 {
		t.Errorf("unlimited sizes = %v", spec.Sizes)
	}
}

func TestChooseInfeasible(t *testing.T) {
	a := ir.NewArray("A", 64, 64)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	// OOC B=1 still needs a full 64-wide row.
	if _, err := Choose(refs, []int64{0, 0}, []int64{63, 63}, 8, OutOfCore); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Traditional.String() != "traditional" || OutOfCore.String() != "out-of-core" {
		t.Error("strategy names")
	}
	a := ir.NewArray("A", 8, 8)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	spec, _ := Choose(refs, []int64{0, 0}, []int64{7, 7}, 0, OutOfCore)
	if spec.String() == "" || spec.Depth() != 2 {
		t.Error("spec rendering")
	}
}

func TestPropertyChooseFitsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(8 << rng.Intn(4)) // 8..64
		a := ir.NewArray("A", n, n)
		b := ir.NewArray("B", n, n)
		ms := []*matrix.Int{
			matrix.Identity(2),
			matrix.FromRows([][]int64{{0, 1}, {1, 0}}),
			matrix.FromRows([][]int64{{1, 1}, {0, 1}}),
		}
		refs := []RefAccess{
			{Array: a, M: ms[rng.Intn(len(ms))], Off: []int64{0, 0}},
			{Array: b, M: ms[rng.Intn(len(ms))], Off: []int64{int64(rng.Intn(3)), 0}},
		}
		budget := int64(4+rng.Intn(64)) * n
		strat := Strategy(rng.Intn(2))
		spec, err := Choose(refs, []int64{0, 0}, []int64{n - 1, n - 1}, budget, strat)
		if err != nil {
			return true // infeasible is a legitimate outcome
		}
		if Footprint(refs, spec.Sizes) > budget {
			return false
		}
		// B+1 must not fit (maximality), unless B already covers the space.
		if spec.B < n {
			bigger := make([]int64, len(spec.Sizes))
			copy(bigger, spec.Sizes)
			for d := range bigger {
				if strat == OutOfCore && d == len(bigger)-1 {
					continue
				}
				if bigger[d] == spec.B {
					bigger[d] = spec.B + 1
				}
			}
			if Footprint(refs, bigger) <= budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
