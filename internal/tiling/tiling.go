// Package tiling chooses tile shapes for out-of-core execution
// (Section 3.3 of the paper).
//
// Two strategies are modeled:
//
//   - Traditional: every loop of the (transformed) nest is tiled with
//     the same tile size B, the classical cache-oriented scheme.
//   - OutOfCore: every loop EXCEPT the innermost is tiled; the
//     innermost loop — which carries the spatial locality after the
//     linear transformations — runs its full extent, so each file
//     request covers long contiguous stretches (Figure 3(b)).
//
// The tile size is the largest B whose total per-tile data footprint
// (sum over arrays of the union bounding box of their references) fits
// the memory budget, mirroring the paper's "memory divided evenly
// across the arrays" discipline.
package tiling

import (
	"fmt"

	"outcore/internal/ir"
	"outcore/internal/matrix"
)

// Strategy selects which loops are tiled.
type Strategy int

const (
	// Traditional tiles every loop (including the innermost).
	Traditional Strategy = iota
	// OutOfCore tiles all but the innermost loop.
	OutOfCore
)

func (s Strategy) String() string {
	if s == OutOfCore {
		return "out-of-core"
	}
	return "traditional"
}

// RefAccess is one array reference in TRANSFORMED iteration
// coordinates: element = M·I' + Off with M = L·Q. Group identifies the
// in-memory tile the reference shares: references with the same
// (Array, Group) are unioned into one footprint box; distinct groups
// get independent tiles (codegen assigns one group per access matrix).
type RefAccess struct {
	Array *ir.Array
	M     *matrix.Int
	Off   []int64
	Group int
}

// Spec is a concrete tiling decision over the transformed space.
type Spec struct {
	Strategy Strategy
	// Lo/Hi bound the transformed iteration space (bounding box).
	Lo, Hi []int64
	// Sizes is the tile extent per transformed level; a level whose size
	// covers its whole range is effectively untiled.
	Sizes []int64
	// B is the scalar tile parameter the sizes were derived from.
	B int64
}

// Depth returns the loop depth.
func (s Spec) Depth() int { return len(s.Sizes) }

func (s Spec) String() string {
	return fmt.Sprintf("%s tiling B=%d sizes=%v over [%v,%v]", s.Strategy, s.B, s.Sizes, s.Lo, s.Hi)
}

// TransformedBox returns the bounding box [lo', hi'] of T·I over the
// rectangular original space [lo, hi] (both inclusive).
func TransformedBox(t *matrix.Int, lo, hi []int64) (tlo, thi []int64) {
	k := t.Rows()
	tlo = make([]int64, k)
	thi = make([]int64, k)
	for r := 0; r < k; r++ {
		var mn, mx int64
		for j := 0; j < t.Cols(); j++ {
			c := t.At(r, j)
			if c > 0 {
				mn += c * lo[j]
				mx += c * hi[j]
			} else {
				mn += c * hi[j]
				mx += c * lo[j]
			}
		}
		tlo[r], thi[r] = mn, mx
	}
	return tlo, thi
}

// Footprint returns the total in-memory elements needed for one tile of
// the given sizes: per array, the union bounding box of all its
// references over a tile-shaped iteration box, clipped to the array
// extents.
func Footprint(refs []RefAccess, sizes []int64) int64 {
	type key struct {
		arr   *ir.Array
		group int
	}
	type rangeBox struct {
		lo, hi []int64
	}
	boxes := map[key]*rangeBox{}
	var order []key
	for _, r := range refs {
		rank := r.Array.Rank()
		k := key{r.Array, r.Group}
		b, ok := boxes[k]
		if !ok {
			b = &rangeBox{lo: make([]int64, rank), hi: make([]int64, rank)}
			for d := 0; d < rank; d++ {
				b.lo[d] = 1 << 62
				b.hi[d] = -(1 << 62)
			}
			boxes[k] = b
			order = append(order, k)
		}
		for d := 0; d < rank; d++ {
			// Range of M_d·x + off_d over 0 <= x_j < sizes_j (tile-local).
			lo, hi := r.Off[d], r.Off[d]
			for j := 0; j < r.M.Cols(); j++ {
				c := r.M.At(d, j)
				span := sizes[j] - 1
				if span < 0 {
					span = 0
				}
				if c > 0 {
					hi += c * span
				} else {
					lo += c * span
				}
			}
			if lo < b.lo[d] {
				b.lo[d] = lo
			}
			if hi > b.hi[d] {
				b.hi[d] = hi
			}
		}
	}
	var total int64
	for _, k := range order {
		b := boxes[k]
		size := int64(1)
		for d := 0; d < k.arr.Rank(); d++ {
			ext := b.hi[d] - b.lo[d] + 1
			if ext > k.arr.Dims[d] {
				ext = k.arr.Dims[d] // a tile never holds more than the array
			}
			if ext < 1 {
				ext = 1
			}
			size *= ext
		}
		total += size
	}
	return total
}

// Choose picks the largest scalar tile parameter B whose footprint fits
// the memory budget (0 = unlimited) under the strategy, over the
// transformed bounding box [tlo, thi].
func Choose(refs []RefAccess, tlo, thi []int64, memBudget int64, strat Strategy) (Spec, error) {
	k := len(tlo)
	extent := make([]int64, k)
	maxExt := int64(1)
	for d := 0; d < k; d++ {
		extent[d] = thi[d] - tlo[d] + 1
		if extent[d] > maxExt {
			maxExt = extent[d]
		}
	}
	sizesFor := func(b int64) []int64 {
		sizes := make([]int64, k)
		for d := 0; d < k; d++ {
			switch {
			case strat == OutOfCore && d == k-1:
				sizes[d] = extent[d] // innermost untiled
			case b > extent[d]:
				sizes[d] = extent[d]
			default:
				sizes[d] = b
			}
		}
		return sizes
	}
	if memBudget <= 0 {
		return Spec{Strategy: strat, Lo: tlo, Hi: thi, Sizes: sizesFor(maxExt), B: maxExt}, nil
	}
	// Binary search the largest feasible B.
	lo, hi := int64(1), maxExt
	if Footprint(refs, sizesFor(1)) > memBudget {
		return Spec{}, fmt.Errorf("tiling: even B=1 exceeds the memory budget (%d > %d elements)",
			Footprint(refs, sizesFor(1)), memBudget)
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Footprint(refs, sizesFor(mid)) <= memBudget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Spec{Strategy: strat, Lo: tlo, Hi: thi, Sizes: sizesFor(lo), B: lo}, nil
}
