package tiling

import (
	"reflect"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/matrix"
)

// TestChooseEdgeCases pins Choose's behaviour at the boundaries the
// main tests skip over: rank-1 nests, zero-trip iteration spaces, and
// budgets so large the tile parameter clears every extent.
func TestChooseEdgeCases(t *testing.T) {
	ref1 := func(n int64) []RefAccess {
		return []RefAccess{{Array: ir.NewArray("A", n), M: matrix.Identity(1), Off: []int64{0}}}
	}
	ref2 := func(r, c int64) []RefAccess {
		return []RefAccess{{Array: ir.NewArray("A", r, c), M: matrix.Identity(2), Off: []int64{0, 0}}}
	}

	cases := []struct {
		name      string
		refs      []RefAccess
		tlo, thi  []int64
		budget    int64
		strat     Strategy
		wantB     int64
		wantSizes []int64
		wantErr   bool
	}{
		{
			name: "1d traditional splits to the budget",
			refs: ref1(100), tlo: []int64{0}, thi: []int64{99},
			budget: 10, strat: Traditional,
			wantB: 10, wantSizes: []int64{10},
		},
		{
			name: "1d out-of-core cannot tile its only (innermost) dim",
			refs: ref1(100), tlo: []int64{0}, thi: []int64{99},
			budget: 10, strat: OutOfCore,
			wantErr: true,
		},
		{
			name: "1d out-of-core feasible when the row fits",
			refs: ref1(8), tlo: []int64{0}, thi: []int64{7},
			budget: 10, strat: OutOfCore,
			wantB: 8, wantSizes: []int64{8},
		},
		{
			name: "1d unlimited budget takes the whole extent",
			refs: ref1(100), tlo: []int64{0}, thi: []int64{99},
			budget: 0, strat: Traditional,
			wantB: 100, wantSizes: []int64{100},
		},
		{
			name: "zero-trip nest collapses to an empty tile",
			refs: ref1(8), tlo: []int64{0}, thi: []int64{-1}, // hi < lo: zero iterations
			budget: 4, strat: Traditional,
			wantB: 1, wantSizes: []int64{0},
		},
		{
			name: "zero-trip out-of-core keeps the empty innermost extent",
			refs: ref1(8), tlo: []int64{0}, thi: []int64{-1},
			budget: 4, strat: OutOfCore,
			wantB: 1, wantSizes: []int64{0},
		},
		{
			name: "zero-trip outer dim still tiles the inner one",
			refs: ref2(8, 64), tlo: []int64{0, 0}, thi: []int64{-1, 63},
			budget: 16, strat: Traditional,
			wantB: 16, wantSizes: []int64{0, 16},
		},
		{
			name: "tile parameter larger than a ragged extent clamps per-dim",
			refs: ref2(4, 64), tlo: []int64{0, 0}, thi: []int64{3, 63},
			budget: 256, strat: Traditional,
			wantB: 64, wantSizes: []int64{4, 64},
		},
		{
			name: "budget beyond the whole space stops at the extents",
			refs: ref2(8, 8), tlo: []int64{0, 0}, thi: []int64{7, 7},
			budget: 1 << 20, strat: Traditional,
			wantB: 8, wantSizes: []int64{8, 8},
		},
		{
			name: "single-iteration nest",
			refs: ref1(8), tlo: []int64{3}, thi: []int64{3},
			budget: 1, strat: Traditional,
			wantB: 1, wantSizes: []int64{1},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Choose(tc.refs, tc.tlo, tc.thi, tc.budget, tc.strat)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Choose = %+v, want error", spec)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if spec.B != tc.wantB {
				t.Errorf("B = %d, want %d", spec.B, tc.wantB)
			}
			if !reflect.DeepEqual(spec.Sizes, tc.wantSizes) {
				t.Errorf("Sizes = %v, want %v", spec.Sizes, tc.wantSizes)
			}
			if tc.budget > 0 {
				if fp := Footprint(tc.refs, spec.Sizes); fp > tc.budget {
					t.Errorf("footprint %d exceeds budget %d", fp, tc.budget)
				}
			}
		})
	}
}

// TestFootprintDegenerateSizes: zero and one-element tile sizes must
// not underflow the per-dimension extents (a zero-size dimension still
// touches the single point the offsets name).
func TestFootprintDegenerateSizes(t *testing.T) {
	a := ir.NewArray("A", 16, 16)
	refs := []RefAccess{{Array: a, M: matrix.Identity(2), Off: []int64{0, 0}}}
	if got := Footprint(refs, []int64{0, 0}); got != 1 {
		t.Errorf("zero-size footprint = %d, want 1", got)
	}
	if got := Footprint(refs, []int64{1, 1}); got != 1 {
		t.Errorf("unit footprint = %d, want 1", got)
	}
	if got := Footprint(refs, []int64{0, 16}); got != 16 {
		t.Errorf("mixed footprint = %d, want 16", got)
	}
}
