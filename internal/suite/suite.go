// Package suite defines the paper's ten benchmark kernels (Table 1) in
// the affine loop-nest IR, plus the six program versions of Section 4
// (col, row, l-opt, d-opt, c-opt, h-opt).
//
// The original Fortran sources are not part of the paper; each kernel
// here reproduces the Table-1 inventory (number and dimensionality of
// arrays, outer timing-loop count) and the access-pattern structure
// that drives the optimizations — transposed references, sweeps along
// conflicting dimensions, reductions — which is all the optimizer ever
// sees. DESIGN.md records this substitution.
package suite

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/tiling"
)

// Config sets array extents per rank. The paper sets every dimension to
// 4096 doubles; that is impractical to simulate in full, so extents are
// parameters and experiments report the same normalized quantities the
// paper does.
type Config struct {
	N2 int64 // extent of each 2-D dimension (1-D vectors follow the loop they feed)
	N3 int64 // extent of each 3-D dimension
	N4 int64 // extent of each 4-D dimension
}

// DefaultConfig is the benchmark-scale configuration.
func DefaultConfig() Config { return Config{N2: 256, N3: 32, N4: 10} }

// SmallConfig keeps unit tests fast.
func SmallConfig() Config { return Config{N2: 24, N3: 8, N4: 4} }

// Kernel is one benchmark program generator.
type Kernel struct {
	Name   string
	Source string // provenance per Table 1
	Iter   int    // outermost timing-loop count per Table 1
	Build  func(cfg Config) *ir.Program
}

// Kernels lists the Table-1 programs in the paper's order.
var Kernels = []Kernel{
	{Name: "mat", Source: "-", Iter: 2, Build: buildMat},
	{Name: "mxm", Source: "Spec92", Iter: 3, Build: buildMxm},
	{Name: "adi", Source: "Livermore", Iter: 5, Build: buildAdi},
	{Name: "vpenta", Source: "Spec92", Iter: 3, Build: buildVpenta},
	{Name: "btrix", Source: "Spec92", Iter: 2, Build: buildBtrix},
	{Name: "emit", Source: "Spec92", Iter: 2, Build: buildEmit},
	{Name: "syr2k", Source: "BLAS", Iter: 2, Build: buildSyr2k},
	{Name: "htribk", Source: "Eispack", Iter: 3, Build: buildHtribk},
	{Name: "gfunp", Source: "Hompack", Iter: 3, Build: buildGfunp},
	{Name: "trans", Source: "Nwchem", Iter: 3, Build: buildTrans},
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// KernelNames returns the kernel names in Table-1 order; command-line
// tools list them in -kernel validation errors.
func KernelNames() []string {
	names := make([]string, len(Kernels))
	for i, k := range Kernels {
		names[i] = k.Name
	}
	return names
}

// Version names one of the paper's six program versions.
type Version string

// The six versions of Section 4.
const (
	Col  Version = "col"   // fixed column-major layouts, no loop transforms
	Row  Version = "row"   // fixed row-major layouts, no loop transforms
	LOpt Version = "l-opt" // loop transformations only
	DOpt Version = "d-opt" // file layout transformations only
	COpt Version = "c-opt" // the paper's integrated algorithm
	HOpt Version = "h-opt" // c-opt plus hand chunking/interleaving
)

// Versions lists all six in the paper's column order.
var Versions = []Version{Col, Row, LOpt, DOpt, COpt, HOpt}

// VersionNames returns the six version names in the paper's order.
func VersionNames() []string {
	names := make([]string, len(Versions))
	for i, v := range Versions {
		names[i] = string(v)
	}
	return names
}

// ParseVersion maps a command-line value to a Version; ok is false for
// anything that is not one of the six.
func ParseVersion(s string) (Version, bool) {
	for _, v := range Versions {
		if string(v) == s {
			return v, true
		}
	}
	return "", false
}

// PlanFor derives the optimization plan for a version.
func PlanFor(p *ir.Program, v Version) (*core.Plan, error) {
	var o core.Optimizer
	switch v {
	case Col:
		return core.FixedLayouts(p, func(d []int64) *layout.Layout { return layout.ColMajor(d...) }), nil
	case Row:
		return core.FixedLayouts(p, func(d []int64) *layout.Layout { return layout.RowMajor(d...) }), nil
	case LOpt:
		return o.OptimizeLoopOnly(p), nil
	case DOpt:
		return o.OptimizeDataOnly(p), nil
	case COpt, HOpt:
		return o.OptimizeCombined(p), nil
	default:
		return nil, fmt.Errorf("suite: unknown version %q", v)
	}
}

// StrategyFor returns the tiling strategy used when measuring a
// version. All six versions use the Section-3.3 out-of-core strategy
// (tile all but the innermost loop): under a shared tiling discipline
// the versions differ exactly in how many references the innermost
// loop serves with spatial locality — the paper's own Section-3.1
// analysis of why layouts and loop transforms matter. The paper tiled
// its baselines with the traditional cache-style scheme; that contrast
// is reproduced separately by the Figure-3 experiment and the tiling
// ablation (see DESIGN.md's substitution table).
func StrategyFor(v Version) tiling.Strategy {
	return tiling.OutOfCore
}

// TotalElems sums the program's array sizes: the paper's memory budget
// is 1/128 of this.
func TotalElems(p *ir.Program) int64 {
	var total int64
	for _, a := range p.Arrays {
		total += a.Len()
	}
	return total
}

// MemBudget returns the paper's memory discipline: total data size
// divided by `frac` (128 in the experiments).
func MemBudget(p *ir.Program, frac int64) int64 {
	if frac <= 0 {
		return 0
	}
	return TotalElems(p) / frac
}
