package suite

import (
	"math/rand"
	"testing"

	"outcore/internal/codegen"
	"outcore/internal/ir"
)

// TestTable1Inventory checks every kernel against the paper's Table 1:
// number of arrays per dimensionality and the timing-loop count.
func TestTable1Inventory(t *testing.T) {
	want := map[string]map[int]int{ // name -> rank -> count
		"mat":    {2: 3},
		"mxm":    {2: 3},
		"adi":    {1: 3, 3: 3},
		"vpenta": {2: 7, 3: 2},
		"btrix":  {1: 25, 4: 4},
		"emit":   {1: 10, 3: 3},
		"syr2k":  {2: 3},
		"htribk": {2: 5},
		"gfunp":  {1: 1, 2: 5},
		"trans":  {2: 2},
	}
	wantIter := map[string]int{
		"mat": 2, "mxm": 3, "adi": 5, "vpenta": 3, "btrix": 2,
		"emit": 2, "syr2k": 2, "htribk": 3, "gfunp": 3, "trans": 3,
	}
	if len(Kernels) != 10 {
		t.Fatalf("%d kernels, want 10", len(Kernels))
	}
	for _, k := range Kernels {
		p := k.Build(SmallConfig())
		got := map[int]int{}
		for _, a := range p.Arrays {
			got[a.Rank()]++
		}
		for rank, count := range want[k.Name] {
			if got[rank] != count {
				t.Errorf("%s: %d arrays of rank %d, want %d", k.Name, got[rank], rank, count)
			}
		}
		for rank := range got {
			if want[k.Name][rank] == 0 {
				t.Errorf("%s: unexpected rank-%d arrays", k.Name, rank)
			}
		}
		if k.Iter != wantIter[k.Name] {
			t.Errorf("%s: iter %d, want %d", k.Name, k.Iter, wantIter[k.Name])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if k, ok := ByName("mxm"); !ok || k.Name != "mxm" {
		t.Error("ByName(mxm) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func seed(p *ir.Program, s int64) *ir.Store {
	st := ir.NewStore(p.Arrays...)
	rng := rand.New(rand.NewSource(s))
	for _, a := range p.Arrays {
		d := st.Data(a)
		for i := range d {
			d[i] = rng.Float64()
		}
	}
	return st
}

// TestAllKernelsAllVersionsPreserveSemantics is the suite's central
// correctness gate: every kernel, under every version's plan and
// tiling strategy, must produce bit-identical results to the in-core
// reference execution.
func TestAllKernelsAllVersionsPreserveSemantics(t *testing.T) {
	cfg := SmallConfig()
	for _, k := range Kernels {
		base := k.Build(cfg)
		init := seed(base, 1234)
		for _, v := range Versions {
			p := k.Build(cfg) // fresh program per version (plans key on pointers)
			plan, err := PlanFor(p, v)
			if err != nil {
				t.Fatal(err)
			}
			// Transfer the seed to the fresh program's arrays (same shapes,
			// deterministic order).
			initV := ir.NewStore(p.Arrays...)
			for i, a := range p.Arrays {
				copy(initV.Data(a), init.Data(base.Arrays[i]))
			}
			budget := MemBudget(p, 16) // generous for tiny test arrays
			diff, err := codegen.Verify(p, plan, codegen.Options{
				Strategy:  StrategyFor(v),
				MemBudget: budget,
			}, 64, initV)
			if err != nil {
				t.Errorf("%s/%s: %v", k.Name, v, err)
				continue
			}
			if diff != 0 {
				t.Errorf("%s/%s: differs from reference by %g", k.Name, v, diff)
			}
		}
	}
}

func TestMemBudget(t *testing.T) {
	p := buildMat(SmallConfig())
	if MemBudget(p, 128) != TotalElems(p)/128 {
		t.Error("MemBudget arithmetic")
	}
	if MemBudget(p, 0) != 0 {
		t.Error("MemBudget(0) should be unlimited marker")
	}
	if TotalElems(p) != 3*24*24 {
		t.Errorf("TotalElems = %d", TotalElems(p))
	}
}

func TestPlanForUnknownVersion(t *testing.T) {
	p := buildMat(SmallConfig())
	if _, err := PlanFor(p, Version("bogus")); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestStrategyFor(t *testing.T) {
	for _, v := range Versions {
		if s := StrategyFor(v); s.String() != "out-of-core" {
			t.Errorf("strategy for %s = %s; all versions share the OOC discipline", v, s)
		}
	}
}
