package suite

import (
	"fmt"

	"outcore/internal/ir"
)

// buildBtrix is the Spec92 block-tridiagonal solver kernel: twenty-five
// 1-D coefficient vectors and four 4-D arrays (Table 1; the 1-D arrays
// keep their small hard-coded extents, which the paper also left
// unmodified). The kept structure: a coefficient-setup pass over all
// the vectors, a forward elimination carrying a recurrence along the
// leading dimension, and combination passes, one with a fully reversed
// (transposed) access:
//
//	nest 0: d1(j) = d2(j)+d3(j); ... (coefficient setup, 25 vectors)
//	nest 1: Q(j,k,l,m) = S(j,k,l,m)*d1(j) + T(j,k,l,m)*d2(k)
//	nest 2: S(j,k,l,m) = S(j-1,k,l,m)*0.9 + R(j,k,l,m)   (j recurrence)
//	nest 3: R(j,k,l,m) = T(m,l,k,j)*0.5 + Q(j,k,l,m)
func buildBtrix(cfg Config) *ir.Program {
	n := cfg.N4
	ds := make([]*ir.Array, 25)
	for i := range ds {
		ds[i] = ir.NewArray(fmt.Sprintf("d%d", i+1), n)
	}
	q := ir.NewArray("Q", n, n, n, n)
	r := ir.NewArray("R", n, n, n, n)
	s := ir.NewArray("S", n, n, n, n)
	tt := ir.NewArray("T", n, n, n, n)

	vec := func(a *ir.Array, loop int) ir.Ref {
		row := make([]int64, 4)
		row[loop] = 1
		return ir.RefAffine(a, [][]int64{row}, []int64{0})
	}
	vec1 := func(a *ir.Array) ir.Ref {
		return ir.RefAffine(a, [][]int64{{1}}, []int64{0})
	}
	// Coefficient setup: eight ternary combinations covering d1..d25.
	var setup []*ir.Stmt
	for g := 0; g < 8; g++ {
		out := ds[g*3]
		in1, in2 := ds[g*3+1], ds[g*3+2]
		setup = append(setup, ir.Assign(vec1(out), []ir.Ref{vec1(in1), vec1(in2)}, "coef", ir.Sum()))
	}
	// d25 folds back into d1.
	setup = append(setup, ir.Assign(vec1(ds[0]), []ir.Ref{vec1(ds[24]), vec1(ds[0])}, "coef", ir.Sum()))

	n0 := &ir.Nest{ID: 0, Loops: ir.Rect(n), Body: setup}
	n1 := &ir.Nest{ID: 1, Loops: ir.Rect(n, n, n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(q, 4, 0, 1, 2, 3),
			[]ir.Ref{
				ir.RefIdx(s, 4, 0, 1, 2, 3), vec(ds[0], 0),
				ir.RefIdx(tt, 4, 0, 1, 2, 3), vec(ds[1], 1),
			},
			"blend",
			func(in []float64, _ []int64) float64 { return in[0]*in[1] + in[2]*in[3] }),
	}}
	n2 := &ir.Nest{ID: 2, Loops: []ir.Loop{
		{Index: "i", Lo: 1, Hi: n - 1}, {Index: "j", Lo: 0, Hi: n - 1},
		{Index: "k", Lo: 0, Hi: n - 1}, {Index: "l", Lo: 0, Hi: n - 1},
	}, Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(s, 4, 0, 1, 2, 3),
			[]ir.Ref{
				ir.RefAffine(s, [][]int64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}, []int64{-1, 0, 0, 0}),
				ir.RefIdx(r, 4, 0, 1, 2, 3),
			},
			"elim",
			func(in []float64, _ []int64) float64 { return in[0]*0.9 + in[1] }),
	}}
	n3 := &ir.Nest{ID: 3, Loops: ir.Rect(n, n, n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(r, 4, 0, 1, 2, 3),
			[]ir.Ref{ir.RefIdx(tt, 4, 3, 2, 1, 0), ir.RefIdx(q, 4, 0, 1, 2, 3)},
			"comb",
			func(in []float64, _ []int64) float64 { return in[0]*0.5 + in[1] }),
	}}

	arrays := append(append([]*ir.Array{}, ds...), q, r, s, tt)
	return &ir.Program{Name: "btrix", Arrays: arrays, Nests: []*ir.Nest{n0, n1, n2, n3}}
}

// buildEmit is the Spec92 electromagnetic particle-emission kernel: ten
// 1-D arrays and three 3-D field arrays. A scalar-table pass feeds a
// field update with one fully transposed operand and a scatter pass:
//
//	nest 0: e1(i) = e2(i)+e3(i); e4(i) = e5(i)+e6(i); e7(i) = e8(i)+e9(i)+e10(i)
//	nest 1: E(i,j,k) = F(i,j,k)*e1(i) + G(k,j,i)
//	nest 2: G(i,j,k) = E(i,j,k) + e4(k)
func buildEmit(cfg Config) *ir.Program {
	n := cfg.N3
	es := make([]*ir.Array, 10)
	for i := range es {
		es[i] = ir.NewArray(fmt.Sprintf("e%d", i+1), n)
	}
	e := ir.NewArray("E", n, n, n)
	f := ir.NewArray("F", n, n, n)
	g := ir.NewArray("G", n, n, n)

	v1 := func(a *ir.Array) ir.Ref { return ir.RefAffine(a, [][]int64{{1}}, []int64{0}) }
	n0 := &ir.Nest{ID: 0, Loops: ir.Rect(n), Body: []*ir.Stmt{
		ir.Assign(v1(es[0]), []ir.Ref{v1(es[1]), v1(es[2])}, "tab", ir.Sum()),
		ir.Assign(v1(es[3]), []ir.Ref{v1(es[4]), v1(es[5])}, "tab", ir.Sum()),
		ir.Assign(v1(es[6]), []ir.Ref{v1(es[7]), v1(es[8]), v1(es[9])}, "tab", ir.Sum()),
	}}
	n1 := &ir.Nest{ID: 1, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(e, 3, 0, 1, 2),
			[]ir.Ref{
				ir.RefIdx(f, 3, 0, 1, 2),
				ir.RefAffine(es[0], [][]int64{{1, 0, 0}}, []int64{0}),
				ir.RefIdx(g, 3, 2, 1, 0),
			},
			"field",
			func(in []float64, _ []int64) float64 { return in[0]*in[1] + in[2] }),
	}}
	n2 := &ir.Nest{ID: 2, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(g, 3, 0, 1, 2),
			[]ir.Ref{
				ir.RefIdx(e, 3, 0, 1, 2),
				ir.RefAffine(es[3], [][]int64{{0, 0, 1}}, []int64{0}),
			},
			"scatter", ir.Sum()),
	}}
	arrays := append(append([]*ir.Array{}, es...), e, f, g)
	return &ir.Program{Name: "emit", Arrays: arrays, Nests: []*ir.Nest{n0, n1, n2}}
}
