package suite

import (
	"testing"

	"outcore/internal/core"
)

// TestCOptPlanSnapshots pins the combined optimizer's decisions for the
// structurally interesting kernels, as regression nets: a change that
// silently flips a layout or drops a transformation should fail here,
// not in a benchmark shape three layers up.
func TestCOptPlanSnapshots(t *testing.T) {
	cfg := SmallConfig()

	t.Run("mat", func(t *testing.T) {
		k, _ := ByName("mat")
		prog := k.Build(cfg)
		plan, _ := PlanFor(prog, COpt)
		got := layoutsByName(plan)
		// C(i,j) = A(i,j) + B(j,i): A,C row-major, B column-major.
		want := map[string]string{"A": "row-major", "B": "col-major", "C": "row-major"}
		for name, l := range want {
			if got[name] != l {
				t.Errorf("%s layout = %s, want %s", name, got[name], l)
			}
		}
	})

	t.Run("trans", func(t *testing.T) {
		k, _ := ByName("trans")
		prog := k.Build(cfg)
		plan, _ := PlanFor(prog, COpt)
		got := layoutsByName(plan)
		// B(i,j) = A(j,i): B row-major, A column-major.
		if got["B"] != "row-major" || got["A"] != "col-major" {
			t.Errorf("layouts = %v", got)
		}
	})

	t.Run("mxm", func(t *testing.T) {
		k, _ := ByName("mxm")
		prog := k.Build(cfg)
		plan, _ := PlanFor(prog, COpt)
		got := layoutsByName(plan)
		// C += A(i,k)*B(k,j) with k innermost: A rows contiguous along k
		// (row-major), B columns contiguous along k (col-major).
		if got["A"] != "row-major" || got["B"] != "col-major" {
			t.Errorf("layouts = %v", got)
		}
		// C is temporal in k: any layout serves; the plan must still have one.
		if got["C"] == "" {
			t.Error("C has no layout")
		}
	})

	t.Run("gfunp-chain", func(t *testing.T) {
		k, _ := ByName("gfunp")
		prog := k.Build(cfg)
		plan, _ := PlanFor(prog, COpt)
		// Every reference optimized (9/9), confirmed optimal by the ILP
		// (see core's optimal tests); here we pin that the greedy run
		// still achieves it.
		bad := 0
		for _, rep := range plan.Report(prog, nil) {
			if rep.Locality == core.NoLocality {
				bad++
			}
		}
		if bad != 0 {
			t.Errorf("%d references without locality", bad)
		}
	})

	t.Run("htribk-sharedW", func(t *testing.T) {
		k, _ := ByName("htribk")
		prog := k.Build(cfg)
		plan, _ := PlanFor(prog, COpt)
		// W is read identically in both nests: exactly one layout, and
		// both nests' references to it must have locality.
		got := layoutsByName(plan)
		if got["W"] == "" {
			t.Fatal("W unplanned")
		}
		for _, rep := range plan.Report(prog, nil) {
			if rep.Ref.Array.Name == "W" && rep.Locality == core.NoLocality {
				t.Errorf("W reference without locality in nest %d", rep.Nest.ID)
			}
		}
	})
}

func layoutsByName(plan *core.Plan) map[string]string {
	out := map[string]string{}
	for a, l := range plan.Layouts {
		out[a.Name] = l.Name()
	}
	return out
}

// TestPlanNotesPresent pins that the optimizer explains itself.
func TestPlanNotesPresent(t *testing.T) {
	k, _ := ByName("gfunp")
	prog := k.Build(SmallConfig())
	plan, _ := PlanFor(prog, COpt)
	if len(plan.Notes) == 0 {
		t.Fatal("no derivation notes")
	}
}
