package suite

import "outcore/internal/ir"

// buildAdi is the Livermore ADI integration kernel: three 1-D scale
// vectors and three 3-D arrays (Table 1). Alternating sweeps update
// the 3-D field along different dimensions, which gives every fixed
// layout a bad nest:
//
//	nest 0 (x sweep):  X(i,j,k) = X(i-1,j,k)*0.5 + Y(i,j,k)*a(i)
//	nest 1 (y sweep):  Y(i,j,k) = X(j,i,k) + Z(i,j,k)*b(j)
//	nest 2 (scale):    Z(i,j,k) = Z(i,j,k)*0.25 + c(k)
func buildAdi(cfg Config) *ir.Program {
	n := cfg.N3
	x := ir.NewArray("X", n, n, n)
	y := ir.NewArray("Y", n, n, n)
	z := ir.NewArray("Z", n, n, n)
	a := ir.NewArray("a", n)
	b := ir.NewArray("b", n)
	c := ir.NewArray("c", n)

	sweepX := ir.Assign(
		ir.RefIdx(x, 3, 0, 1, 2),
		[]ir.Ref{
			ir.RefAffine(x, [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, []int64{-1, 0, 0}),
			ir.RefIdx(y, 3, 0, 1, 2),
			ir.RefAffine(a, [][]int64{{1, 0, 0}}, []int64{0}),
		},
		"sweepx",
		func(in []float64, _ []int64) float64 { return in[0]*0.5 + in[1]*in[2] },
	)
	sweepY := ir.Assign(
		ir.RefIdx(y, 3, 0, 1, 2),
		[]ir.Ref{
			ir.RefIdx(x, 3, 1, 0, 2),
			ir.RefIdx(z, 3, 0, 1, 2),
			ir.RefAffine(b, [][]int64{{0, 1, 0}}, []int64{0}),
		},
		"sweepy",
		func(in []float64, _ []int64) float64 { return in[0] + in[1]*in[2] },
	)
	scaleZ := ir.Assign(
		ir.RefIdx(z, 3, 0, 1, 2),
		[]ir.Ref{
			ir.RefIdx(z, 3, 0, 1, 2),
			ir.RefAffine(c, [][]int64{{0, 0, 1}}, []int64{0}),
		},
		"scalez",
		func(in []float64, _ []int64) float64 { return in[0]*0.25 + in[1] },
	)
	return &ir.Program{
		Name:   "adi",
		Arrays: []*ir.Array{x, y, z, a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: []ir.Loop{{Index: "i", Lo: 1, Hi: n - 1}, {Index: "j", Lo: 0, Hi: n - 1}, {Index: "k", Lo: 0, Hi: n - 1}}, Body: []*ir.Stmt{sweepX}},
			{ID: 1, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{sweepY}},
			{ID: 2, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{scaleZ}},
		},
	}
}

// buildVpenta is the Spec92/NAS pentadiagonal inversion kernel: seven
// 2-D arrays and two 3-D arrays. The structure kept here is the pair
// of elimination sweeps over the 2-D working arrays (one carrying a
// recurrence along the column loop) followed by the back-substitution
// that scatters into the 3-D right-hand sides with a transposed
// access:
//
//	nest 0: D(i,j) = A(i,j) + B(i,j)*C(i,j)
//	nest 1: E(i,j) = E(i,j-1)*B(i,j) + D(i,j)        (j recurrence)
//	nest 2: F(j,i) = E(i,j) + G(i,j)                 (transposed store)
//	nest 3: X(i,j,k) = Y(i,j,k)*0.5 + D(i,j)
func buildVpenta(cfg Config) *ir.Program {
	n := cfg.N2
	m := cfg.N3
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	c := ir.NewArray("C", n, n)
	d := ir.NewArray("D", n, n)
	e := ir.NewArray("E", n, n)
	f := ir.NewArray("F", n, n)
	g := ir.NewArray("G", n, n)
	x := ir.NewArray("X", n, n, m)
	y := ir.NewArray("Y", n, n, m)

	n0 := &ir.Nest{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(d, 2, 0, 1),
			[]ir.Ref{ir.RefIdx(a, 2, 0, 1), ir.RefIdx(b, 2, 0, 1), ir.RefIdx(c, 2, 0, 1)},
			"fma", ir.MulAdd()),
	}}
	n1 := &ir.Nest{ID: 1, Loops: []ir.Loop{{Index: "i", Lo: 0, Hi: n - 1}, {Index: "j", Lo: 1, Hi: n - 1}}, Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(e, 2, 0, 1),
			[]ir.Ref{
				ir.RefAffine(e, [][]int64{{1, 0}, {0, 1}}, []int64{0, -1}),
				ir.RefIdx(b, 2, 0, 1),
				ir.RefIdx(d, 2, 0, 1),
			},
			"elim",
			func(in []float64, _ []int64) float64 { return in[0]*0.5*in[1] + in[2] }),
	}}
	n2 := &ir.Nest{ID: 2, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(f, 2, 1, 0),
			[]ir.Ref{ir.RefIdx(e, 2, 0, 1), ir.RefIdx(g, 2, 0, 1)},
			"back", ir.Sum()),
	}}
	n3 := &ir.Nest{ID: 3, Loops: ir.Rect(n, n, m), Body: []*ir.Stmt{
		ir.Assign(ir.RefIdx(x, 3, 0, 1, 2),
			[]ir.Ref{
				ir.RefIdx(y, 3, 0, 1, 2),
				ir.RefAffine(d, [][]int64{{1, 0, 0}, {0, 1, 0}}, []int64{0, 0}),
			},
			"rhs",
			func(in []float64, _ []int64) float64 { return in[0]*0.5 + in[1] }),
	}}
	return &ir.Program{
		Name:   "vpenta",
		Arrays: []*ir.Array{a, b, c, d, e, f, g, x, y},
		Nests:  []*ir.Nest{n0, n1, n2, n3},
	}
}

// buildGfunp is the Hompack Jacobian-evaluation kernel: one 1-D vector
// and five 2-D arrays. A scaling pass, a transposed combination, and
// an update pass share arrays across nests:
//
//	nest 0: QR(i,j) = GM(i,j) * alpha(i)
//	nest 1: PP(i,j) = QR(j,i) + PK(i,j)
//	nest 2: GM(i,j) = PP(j,i) + PV(i,j)
//
// The transposed reads chain across the nests (QR into nest 1, PP into
// nest 2), so layouts fixed early constrain later nests: exactly the
// propagation situation where the combined algorithm beats layouts
// alone (it reaches 9/9 spatial references vs 7/9 for d-opt).
func buildGfunp(cfg Config) *ir.Program {
	n := cfg.N2
	alpha := ir.NewArray("alpha", n)
	gm := ir.NewArray("GM", n, n)
	qr := ir.NewArray("QR", n, n)
	pp := ir.NewArray("PP", n, n)
	pk := ir.NewArray("PK", n, n)
	pv := ir.NewArray("PV", n, n)
	return &ir.Program{
		Name:   "gfunp",
		Arrays: []*ir.Array{alpha, gm, qr, pp, pk, pv},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(qr, 2, 0, 1),
					[]ir.Ref{ir.RefIdx(gm, 2, 0, 1), ir.RefAffine(alpha, [][]int64{{1, 0}}, []int64{0})},
					"scale",
					func(in []float64, _ []int64) float64 { return in[0] * in[1] }),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(pp, 2, 0, 1),
					[]ir.Ref{ir.RefIdx(qr, 2, 1, 0), ir.RefIdx(pk, 2, 0, 1)},
					"combine", ir.Sum()),
			}},
			{ID: 2, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(gm, 2, 0, 1),
					[]ir.Ref{ir.RefIdx(pp, 2, 1, 0), ir.RefIdx(pv, 2, 0, 1)},
					"update", ir.Sum()),
			}},
		},
	}
}
