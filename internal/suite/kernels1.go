package suite

import "outcore/internal/ir"

// buildMat is the "mat" kernel: three 2-D arrays (Table 1). A plain
// matrix add with one transposed operand,
//
//	C(i,j) = A(i,j) + B(j,i)
//
// so no loop order serves both B and {A, C}: the combined algorithm
// must pick layouts per array.
func buildMat(cfg Config) *ir.Program {
	n := cfg.N2
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	c := ir.NewArray("C", n, n)
	return &ir.Program{
		Name:   "mat",
		Arrays: []*ir.Array{a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(c, 2, 0, 1),
					[]ir.Ref{ir.RefIdx(a, 2, 0, 1), ir.RefIdx(b, 2, 1, 0)},
					"add", ir.Sum()),
			}},
		},
	}
}

// buildMxm is the Spec92 "mxm" kernel: dense matrix multiply,
//
//	C(i,j) = C(i,j) + A(i,k) * B(k,j)
//
// with three 2-D arrays. The three references want three different
// fast directions; temporal locality on C competes with spatial
// locality on A and B.
func buildMxm(cfg Config) *ir.Program {
	n := cfg.N2
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	c := ir.NewArray("C", n, n)
	return &ir.Program{
		Name:   "mxm",
		Arrays: []*ir.Array{a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(c, 3, 0, 1),
					[]ir.Ref{ir.RefIdx(c, 3, 0, 1), ir.RefIdx(a, 3, 0, 2), ir.RefIdx(b, 3, 2, 1)},
					"muladd", ir.MulAdd()),
			}},
		},
	}
}

// buildSyr2k is the BLAS symmetric rank-2k update,
//
//	C(i,j) = C(i,j) + A(i,k)*B(j,k) + B(i,k)*A(j,k)
//
// with three 2-D arrays: A and B are each accessed both straight and
// transposed in the same nest, the worst case for loop-only
// optimization.
func buildSyr2k(cfg Config) *ir.Program {
	n := cfg.N2
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	c := ir.NewArray("C", n, n)
	f := func(in []float64, _ []int64) float64 {
		return in[0] + in[1]*in[2] + in[3]*in[4]
	}
	return &ir.Program{
		Name:   "syr2k",
		Arrays: []*ir.Array{a, b, c},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(c, 3, 0, 1),
					[]ir.Ref{
						ir.RefIdx(c, 3, 0, 1),
						ir.RefIdx(a, 3, 0, 2), ir.RefIdx(b, 3, 1, 2),
						ir.RefIdx(b, 3, 0, 2), ir.RefIdx(a, 3, 1, 2),
					},
					"syr2k", f),
			}},
		},
	}
}

// buildTrans is the Nwchem out-of-core transpose: two 2-D arrays,
//
//	B(i,j) = A(j,i)
//
// the canonical case where data transformations alone suffice (Table 2
// shows d-opt == c-opt == h-opt for trans).
func buildTrans(cfg Config) *ir.Program {
	n := cfg.N2
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	return &ir.Program{
		Name:   "trans",
		Arrays: []*ir.Array{a, b},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(b, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 1, 0)}, "copy", ir.AddConst(0)),
			}},
		},
	}
}

// buildHtribk is the Eispack back-transformation kernel: five 2-D
// arrays. Two accumulation nests share the multiplier array W, so the
// layout chosen for W in the costlier nest propagates to the second:
//
//	nest 0: ZR(i,j) = ZR(i,j) + AR(i,k) * W(k,j)
//	nest 1: ZI(i,j) = ZI(i,j) + AI(k,i) * W(k,j)
func buildHtribk(cfg Config) *ir.Program {
	n := cfg.N2
	ar := ir.NewArray("AR", n, n)
	ai := ir.NewArray("AI", n, n)
	zr := ir.NewArray("ZR", n, n)
	zi := ir.NewArray("ZI", n, n)
	w := ir.NewArray("W", n, n)
	return &ir.Program{
		Name:   "htribk",
		Arrays: []*ir.Array{ar, ai, zr, zi, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(zr, 3, 0, 1),
					[]ir.Ref{ir.RefIdx(zr, 3, 0, 1), ir.RefIdx(ar, 3, 0, 2), ir.RefIdx(w, 3, 2, 1)},
					"muladd", ir.MulAdd()),
			}},
			{ID: 1, Loops: ir.Rect(n, n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(zi, 3, 0, 1),
					[]ir.Ref{ir.RefIdx(zi, 3, 0, 1), ir.RefIdx(ai, 3, 2, 0), ir.RefIdx(w, 3, 2, 1)},
					"muladd", ir.MulAdd()),
			}},
		},
	}
}
