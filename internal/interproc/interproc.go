// Package interproc extends the optimization across procedure
// boundaries — the paper's first item of future work ("currently we
// are working on extending our approach across procedure boundaries").
//
// A file layout is a whole-program property: an array passed to a
// subroutine must have ONE layout that serves both the caller's and
// the callee's nests. The extension is therefore a unification pass:
// formal parameters are merged with the actuals bound to them at call
// sites (transitively, via union-find), every procedure's nests are
// re-expressed over the class representatives, and the paper's global
// algorithm runs once over the merged program. Each procedure then
// receives the plan restricted to its own arrays and nests.
package interproc

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
)

// Procedure is a named program; Params lists the arrays bound by
// callers (a subset of Prog.Arrays).
type Procedure struct {
	Name   string
	Prog   *ir.Program
	Params []*ir.Array
}

// Call binds a caller's actual arrays to a callee's formals.
type Call struct {
	Caller   string
	Callee   string
	Bindings map[*ir.Array]*ir.Array // formal -> actual
}

// Unit is a whole program: procedures plus its call multigraph.
type Unit struct {
	Procs []*Procedure
	Calls []Call
}

// Result carries the per-procedure plans plus the merged global plan.
type Result struct {
	// PerProc[name] is the plan restricted to that procedure: layouts
	// for its arrays (unified across call boundaries) and loop
	// transformations for its nests.
	PerProc map[string]*core.Plan
	// Merged is the plan over the unified program (class
	// representatives), useful for diagnostics.
	Merged *core.Plan
}

// Optimize unifies layouts across procedure boundaries and runs the
// combined algorithm globally.
func Optimize(u *Unit, opt *core.Optimizer) (*Result, error) {
	if opt == nil {
		opt = &core.Optimizer{}
	}
	byName := map[string]*Procedure{}
	for _, p := range u.Procs {
		if _, dup := byName[p.Name]; dup {
			return nil, fmt.Errorf("interproc: duplicate procedure %q", p.Name)
		}
		byName[p.Name] = p
	}

	// Union-find over arrays, seeded by call bindings.
	parent := map[*ir.Array]*ir.Array{}
	var find func(a *ir.Array) *ir.Array
	find = func(a *ir.Array) *ir.Array {
		if parent[a] == nil || parent[a] == a {
			return a
		}
		r := find(parent[a])
		parent[a] = r
		return r
	}
	union := func(a, b *ir.Array) error {
		ra, rb := find(a), find(b)
		if ra == rb {
			return nil
		}
		if ra.Rank() != rb.Rank() {
			return fmt.Errorf("interproc: binding rank mismatch: %s (%d-D) vs %s (%d-D)", a.Name, a.Rank(), b.Name, b.Rank())
		}
		for d := range ra.Dims {
			if ra.Dims[d] != rb.Dims[d] {
				return fmt.Errorf("interproc: binding extent mismatch: %s%v vs %s%v", a.Name, a.Dims, b.Name, b.Dims)
			}
		}
		parent[ra] = rb
		return nil
	}
	for _, c := range u.Calls {
		callee, ok := byName[c.Callee]
		if !ok {
			return nil, fmt.Errorf("interproc: call to unknown procedure %q", c.Callee)
		}
		if _, ok := byName[c.Caller]; !ok {
			return nil, fmt.Errorf("interproc: call from unknown procedure %q", c.Caller)
		}
		isParam := map[*ir.Array]bool{}
		for _, p := range callee.Params {
			isParam[p] = true
		}
		for formal, actual := range c.Bindings {
			if !isParam[formal] {
				return nil, fmt.Errorf("interproc: %s is not a parameter of %s", formal.Name, c.Callee)
			}
			if err := union(formal, actual); err != nil {
				return nil, err
			}
		}
	}

	// Merged program over class representatives: nests are rebuilt with
	// references retargeted to the representative arrays (shape-equal by
	// the union checks), so the optimizer sees each conceptual array
	// exactly once.
	merged := &ir.Program{Name: "interproc"}
	repSeen := map[*ir.Array]bool{}
	nestTwin := map[*ir.Nest]*ir.Nest{} // original -> remapped
	id := 0
	for _, p := range u.Procs {
		for _, a := range p.Prog.Arrays {
			r := find(a)
			if !repSeen[r] {
				repSeen[r] = true
				merged.Arrays = append(merged.Arrays, r)
			}
		}
		for _, n := range p.Prog.Nests {
			twin := remapNest(n, id, find)
			id++
			nestTwin[n] = twin
			merged.Nests = append(merged.Nests, twin)
		}
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("interproc: merged program invalid: %w", err)
	}
	mergedPlan := opt.OptimizeCombined(merged)

	// Split back per procedure.
	res := &Result{PerProc: map[string]*core.Plan{}, Merged: mergedPlan}
	for _, p := range u.Procs {
		plan := core.NewPlan()
		for _, a := range p.Prog.Arrays {
			plan.Layouts[a] = mergedPlan.Layouts[find(a)]
		}
		for _, n := range p.Prog.Nests {
			tw := mergedPlan.Nests[nestTwin[n]]
			plan.Nests[n] = &core.NestPlan{Nest: n, T: tw.T, Q: tw.Q, QLast: tw.QLast}
		}
		res.PerProc[p.Name] = plan
	}
	return res, nil
}

// remapNest rebuilds a nest with references retargeted through find.
func remapNest(n *ir.Nest, id int, find func(*ir.Array) *ir.Array) *ir.Nest {
	remapRef := func(r ir.Ref) ir.Ref {
		return ir.NewRef(find(r.Array), r.L, r.Off)
	}
	twin := &ir.Nest{ID: id, Loops: n.Loops}
	for _, s := range n.Body {
		ns := &ir.Stmt{Out: remapRef(s.Out), F: s.F, Name: s.Name, Guard: s.Guard}
		for _, in := range s.In {
			ns.In = append(ns.In, remapRef(in))
		}
		twin.Body = append(twin.Body, ns)
	}
	return twin
}
