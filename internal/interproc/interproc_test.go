package interproc

import (
	"math/rand"
	"testing"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/ooc"
	"outcore/internal/tiling"
)

func newMem(budget int64) *ooc.Memory { return ooc.NewMemory(budget) }

// buildUnit models the paper's motivating fragment split across a
// procedure boundary:
//
//	main:            U(i,j) = A(j,i) + 1        (A is main's array)
//	sub(V formal):   V(i,j) = W(j,i) + 2        (called with V := A)
//
// The layout of A must reconcile main's transposed read with sub's
// straight write — exactly the cross-nest propagation of Section 3.1,
// but across a call boundary.
func buildUnit(n int64) (*Unit, *Procedure, *Procedure, map[string]*ir.Array) {
	u := ir.NewArray("U", n, n)
	a := ir.NewArray("A", n, n)
	mainProg := &ir.Program{
		Name:   "main",
		Arrays: []*ir.Array{u, a},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(a, 2, 1, 0)}, "", ir.AddConst(1)),
			}},
		},
	}
	v := ir.NewArray("V", n, n) // formal
	w := ir.NewArray("W", n, n)
	subProg := &ir.Program{
		Name:   "sub",
		Arrays: []*ir.Array{v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "", ir.AddConst(2)),
			}},
		},
	}
	mainP := &Procedure{Name: "main", Prog: mainProg}
	subP := &Procedure{Name: "sub", Prog: subProg, Params: []*ir.Array{v}}
	unit := &Unit{
		Procs: []*Procedure{mainP, subP},
		Calls: []Call{{Caller: "main", Callee: "sub", Bindings: map[*ir.Array]*ir.Array{v: a}}},
	}
	arrays := map[string]*ir.Array{"U": u, "A": a, "V": v, "W": w}
	return unit, mainP, subP, arrays
}

func TestUnifiedLayoutAcrossCall(t *testing.T) {
	unit, mainP, subP, arrs := buildUnit(16)
	res, err := Optimize(unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The formal V and the actual A must end with the SAME layout.
	la := res.PerProc["main"].Layouts[arrs["A"]]
	lv := res.PerProc["sub"].Layouts[arrs["V"]]
	if la == nil || lv == nil || !la.Equal(lv) {
		t.Fatalf("A layout %v != V layout %v", la, lv)
	}
	// Every reference in both procedures must have locality: the merged
	// program is isomorphic to the Section-3.1 fragment, whose optimum
	// serves all references.
	for name, p := range map[string]*Procedure{"main": mainP, "sub": subP} {
		for _, rep := range res.PerProc[name].Report(p.Prog, nil) {
			if rep.Locality == core.NoLocality {
				t.Errorf("%s: ref %s without locality", name, rep.Ref)
			}
		}
	}
}

func TestInterprocSemanticsPreserved(t *testing.T) {
	// Execute main then sub (sharing A/V contents through the binding)
	// out-of-core under the unified plan; compare against the in-core
	// reference with the same sharing.
	const n = 12
	unit, mainP, subP, arrs := buildUnit(n)
	res, err := Optimize(unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, a, v, w := arrs["U"], arrs["A"], arrs["V"], arrs["W"]

	rng := rand.New(rand.NewSource(5))
	aInit := make([]float64, a.Len())
	wInit := make([]float64, w.Len())
	for i := range aInit {
		aInit[i] = rng.Float64()
	}
	for i := range wInit {
		wInit[i] = rng.Float64()
	}

	// In-core reference: sub reads/writes the same storage as A.
	ref := ir.NewStore(u, a, v, w)
	copy(ref.Data(a), aInit)
	copy(ref.Data(w), wInit)
	mainP.Prog.Execute(ref)
	copy(ref.Data(v), ref.Data(a)) // call: formal receives actual
	subP.Prog.Execute(ref)
	copy(ref.Data(a), ref.Data(v)) // return: actual receives updates

	// Out-of-core: run each procedure under its plan; share the
	// formal/actual contents explicitly at the call boundary.
	budget := int64(4 * n)
	initMain := ir.NewStore(u, a)
	copy(initMain.Data(a), aInit)
	dMain, err := codegen.SetupDisk(mainP.Prog, res.PerProc["main"], 64, initMain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.RunProgram(mainP.Prog, res.PerProc["main"], dMain,
		newMem(budget), codegen.Options{Strategy: tiling.OutOfCore, MemBudget: budget}); err != nil {
		t.Fatal(err)
	}
	afterMain := codegen.DiskToStore(mainP.Prog, dMain)

	initSub := ir.NewStore(v, w)
	copy(initSub.Data(v), afterMain.Data(a)) // binding: V := A
	copy(initSub.Data(w), wInit)
	dSub, err := codegen.SetupDisk(subP.Prog, res.PerProc["sub"], 64, initSub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.RunProgram(subP.Prog, res.PerProc["sub"], dSub,
		newMem(budget), codegen.Options{Strategy: tiling.OutOfCore, MemBudget: budget}); err != nil {
		t.Fatal(err)
	}
	afterSub := codegen.DiskToStore(subP.Prog, dSub)

	// Compare: U from main, V (=A) and W from sub.
	for i, want := range ref.Data(u) {
		if afterMain.Data(u)[i] != want {
			t.Fatalf("U[%d] = %v, want %v", i, afterMain.Data(u)[i], want)
		}
	}
	for i, want := range ref.Data(v) {
		if afterSub.Data(v)[i] != want {
			t.Fatalf("V[%d] = %v, want %v", i, afterSub.Data(v)[i], want)
		}
	}
}

func TestBindingValidation(t *testing.T) {
	n := int64(8)
	unit, _, subP, arrs := buildUnit(n)
	// Rank mismatch.
	bad := ir.NewArray("bad", n)
	unit.Calls[0].Bindings = map[*ir.Array]*ir.Array{arrs["V"]: bad}
	if _, err := Optimize(unit, nil); err == nil {
		t.Error("rank mismatch accepted")
	}
	// Non-parameter formal.
	unit.Calls[0].Bindings = map[*ir.Array]*ir.Array{arrs["W"]: arrs["A"]}
	if _, err := Optimize(unit, nil); err == nil {
		t.Error("non-parameter binding accepted")
	}
	// Unknown callee.
	unit.Calls[0] = Call{Caller: "main", Callee: "nope"}
	if _, err := Optimize(unit, nil); err == nil {
		t.Error("unknown callee accepted")
	}
	// Unknown caller.
	unit.Calls[0] = Call{Caller: "nope", Callee: "sub", Bindings: map[*ir.Array]*ir.Array{subP.Params[0]: arrs["A"]}}
	if _, err := Optimize(unit, nil); err == nil {
		t.Error("unknown caller accepted")
	}
	// Duplicate procedure names.
	unit2, _, _, _ := buildUnit(n)
	unit2.Procs = append(unit2.Procs, unit2.Procs[0])
	if _, err := Optimize(unit2, nil); err == nil {
		t.Error("duplicate procedure accepted")
	}
	// Extent mismatch.
	unit3, _, _, arrs3 := buildUnit(n)
	wrong := ir.NewArray("wrong", n, n+1)
	unit3.Calls[0].Bindings = map[*ir.Array]*ir.Array{arrs3["V"]: wrong}
	unit3.Procs[0].Prog.Arrays = append(unit3.Procs[0].Prog.Arrays, wrong)
	if _, err := Optimize(unit3, nil); err == nil {
		t.Error("extent mismatch accepted")
	}
}

func TestTransitiveUnification(t *testing.T) {
	// main -> mid -> leaf: the leaf's formal unifies with main's actual
	// through the chain.
	const n = 8
	a := ir.NewArray("A", n, n)
	mainProg := &ir.Program{Name: "m", Arrays: []*ir.Array{a}, Nests: []*ir.Nest{
		{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			ir.Assign(ir.RefIdx(a, 2, 0, 1), nil, "", ir.AddConst(0)),
		}},
	}}
	f1 := ir.NewArray("F1", n, n)
	midProg := &ir.Program{Name: "mid", Arrays: []*ir.Array{f1}, Nests: []*ir.Nest{
		{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			ir.Assign(ir.RefIdx(f1, 2, 0, 1), nil, "", ir.AddConst(1)),
		}},
	}}
	f2 := ir.NewArray("F2", n, n)
	leafProg := &ir.Program{Name: "leaf", Arrays: []*ir.Array{f2}, Nests: []*ir.Nest{
		{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			// Transposed write: wants the orthogonal layout.
			ir.Assign(ir.RefIdx(f2, 2, 1, 0), nil, "", ir.AddConst(2)),
		}},
	}}
	unit := &Unit{
		Procs: []*Procedure{
			{Name: "m", Prog: mainProg},
			{Name: "mid", Prog: midProg, Params: []*ir.Array{f1}},
			{Name: "leaf", Prog: leafProg, Params: []*ir.Array{f2}},
		},
		Calls: []Call{
			{Caller: "m", Callee: "mid", Bindings: map[*ir.Array]*ir.Array{f1: a}},
			{Caller: "mid", Callee: "leaf", Bindings: map[*ir.Array]*ir.Array{f2: f1}},
		},
	}
	res, err := Optimize(unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	la := res.PerProc["m"].Layouts[a]
	l1 := res.PerProc["mid"].Layouts[f1]
	l2 := res.PerProc["leaf"].Layouts[f2]
	if !la.Equal(l1) || !la.Equal(l2) {
		t.Errorf("layouts not unified: %v %v %v", la, l1, l2)
	}
}
