package handopt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/ooc"
)

func req(arr string, off, length int64, write bool) ooc.Request {
	return ooc.Request{Array: arr, Off: off, Len: length, Write: write}
}

func TestChunkingAdjacent(t *testing.T) {
	reqs := []ooc.Request{req("A", 0, 8, false), req("A", 8, 8, false), req("A", 16, 8, false)}
	out, st := Coalesce(reqs, Options{})
	if len(out) != 1 || len(out[0].Extents) != 1 || out[0].Elems() != 24 {
		t.Errorf("out = %v", out)
	}
	if st.CallsBefore != 3 || st.CallsAfter != 1 || st.ElemsBefore != 24 || st.ElemsAfter != 24 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChunkingGapSieve(t *testing.T) {
	reqs := []ooc.Request{req("A", 0, 8, false), req("A", 12, 8, false)}
	// Gap 4: merged under MaxGap 4, gap bytes charged.
	out, st := Coalesce(reqs, Options{MaxGap: 4})
	if len(out) != 1 || out[0].Elems() != 20 {
		t.Errorf("out = %v", out)
	}
	if st.ElemsAfter != 20 || st.ElemsBefore != 16 {
		t.Errorf("stats = %+v", st)
	}
	// Without gap tolerance: no merge.
	out, _ = Coalesce(reqs, Options{})
	if len(out) != 2 {
		t.Errorf("gap merged without tolerance: %v", out)
	}
}

func TestBackwardAdjacency(t *testing.T) {
	reqs := []ooc.Request{req("A", 8, 8, false), req("A", 0, 8, false)}
	out, _ := Coalesce(reqs, Options{})
	if len(out) != 1 || out[0].Extents[0].Off != 0 || out[0].Elems() != 16 {
		t.Errorf("backward merge failed: %v", out)
	}
}

func TestNoMergeAcrossWriteBoundary(t *testing.T) {
	reqs := []ooc.Request{req("A", 0, 8, false), req("A", 8, 8, true)}
	out, _ := Coalesce(reqs, Options{Interleave: true})
	if len(out) != 2 {
		t.Errorf("read/write merged: %v", out)
	}
}

func TestChunkCap(t *testing.T) {
	reqs := []ooc.Request{req("A", 0, 8, false), req("A", 8, 8, false), req("A", 16, 8, false)}
	out, _ := Coalesce(reqs, Options{ChunkElems: 16})
	if len(out) != 2 {
		t.Errorf("cap ignored: %v", out)
	}
}

func TestInterleaving(t *testing.T) {
	reqs := []ooc.Request{req("A", 0, 8, false), req("B", 100, 8, false)}
	out, st := Coalesce(reqs, Options{Interleave: true})
	if len(out) != 1 || len(out[0].Extents) != 2 || out[0].Elems() != 16 {
		t.Errorf("interleave failed: %v", out)
	}
	if st.CallsAfter != 1 {
		t.Errorf("stats = %+v", st)
	}
	out, _ = Coalesce(reqs, Options{})
	if len(out) != 2 {
		t.Errorf("interleaved without flag: %v", out)
	}
}

func TestEmptyTrace(t *testing.T) {
	out, st := Coalesce(nil, DefaultOptions(8))
	if out != nil || st.CallsBefore != 0 || st.CallsAfter != 0 {
		t.Error("empty trace mishandled")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions(8192)
	if o.MaxGap != 8192 || o.ChunkElems != 16*8192 || !o.Interleave {
		t.Errorf("defaults = %+v", o)
	}
}

func TestPropertyNeverMoreCallsNeverLessData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var reqs []ooc.Request
		n := rng.Intn(30)
		files := []string{"A", "B", "C"}
		for i := 0; i < n; i++ {
			reqs = append(reqs, ooc.Request{
				Array: files[rng.Intn(3)],
				Off:   int64(rng.Intn(100)),
				Len:   int64(1 + rng.Intn(20)),
				Write: rng.Intn(2) == 0,
			})
		}
		o := Options{
			MaxGap:     int64(rng.Intn(8)),
			ChunkElems: int64(rng.Intn(64)),
			Interleave: rng.Intn(2) == 0,
		}
		out, st := Coalesce(reqs, o)
		if int64(len(out)) != st.CallsAfter || st.CallsAfter > st.CallsBefore {
			return false
		}
		if st.ElemsAfter < st.ElemsBefore {
			return false // coalescing may add sieve bytes, never drop data
		}
		// Per-file payload conservation: total coverage only grows.
		var lenOut int64
		for _, c := range out {
			lenOut += c.Elems()
		}
		return lenOut == st.ElemsAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
