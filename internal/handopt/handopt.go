// Package handopt models the paper's hand-optimized version (h-opt):
// on top of the c-opt schedule, the programmer applies *chunking*
// (merging adjacent file requests into larger ones, tolerating small
// sieve gaps) and *interleaving* (laying arrays used together in one
// file so one call fetches several arrays' tiles). The paper reports
// h-opt buys a further ~8% over c-opt by shrinking the call count.
//
// We model both mechanisms as a post-pass over the recorded I/O trace:
// the data moved is unchanged (plus any sieve gap bytes), only the
// number of calls drops. The transformed trace feeds the PFS simulator
// exactly like any other version's.
package handopt

import "outcore/internal/ooc"

// Options tunes the coalescing model.
type Options struct {
	// MaxGap allows merging same-file requests separated by at most
	// this many elements; the gap is read and sieved out (its bytes are
	// charged).
	MaxGap int64
	// ChunkElems caps the merged call size (0 = unlimited).
	ChunkElems int64
	// Interleave merges consecutive requests to DIFFERENT files into
	// one call, modeling arrays interleaved in a single file.
	Interleave bool
	// MaxMergeCalls caps how many original calls may fold into one
	// merged call (0 = unlimited). Real chunking is bounded by the
	// staging buffer the programmer sets aside.
	MaxMergeCalls int
}

// DefaultOptions mirrors a practical hand optimization: merge through
// one-stripe gaps, cap calls at 16 stripes and at 4-way merges,
// interleave arrays.
func DefaultOptions(stripeElems int64) Options {
	return Options{MaxGap: stripeElems, ChunkElems: 16 * stripeElems, Interleave: true, MaxMergeCalls: 4}
}

// Stats reports the effect of a coalescing pass.
type Stats struct {
	CallsBefore, CallsAfter int64
	ElemsBefore, ElemsAfter int64 // ElemsAfter includes sieve gaps
}

// Call is one merged I/O call: a set of contiguous extents dispatched
// together. Chunked (same-array, adjacent or gap-bridged) requests fuse
// into a single longer extent; interleaved requests to different arrays
// stay separate extents of the same call.
type Call struct {
	Extents []ooc.Request
	Write   bool
}

// Elems returns the call's total payload, including sieve gaps.
func (c Call) Elems() int64 {
	var n int64
	for _, e := range c.Extents {
		n += e.Len
	}
	return n
}

// Coalesce merges a request trace in issue order and returns the new
// call sequence plus before/after statistics.
func Coalesce(reqs []ooc.Request, o Options) ([]Call, Stats) {
	st := Stats{CallsBefore: int64(len(reqs))}
	for _, r := range reqs {
		st.ElemsBefore += r.Len
	}
	if len(reqs) == 0 {
		return nil, st
	}
	out := make([]Call, 0, len(reqs))
	cur := Call{Extents: []ooc.Request{reqs[0]}, Write: reqs[0].Write}
	curCount := 1
	flush := func() {
		out = append(out, cur)
		st.CallsAfter++
		st.ElemsAfter += cur.Elems()
	}
	for _, r := range reqs[1:] {
		if o.MaxMergeCalls == 0 || curCount < o.MaxMergeCalls {
			if tryMerge(&cur, r, o) {
				curCount++
				continue
			}
		}
		flush()
		cur = Call{Extents: []ooc.Request{r}, Write: r.Write}
		curCount = 1
	}
	flush()
	return out, st
}

// tryMerge attempts to add request r to the current call.
func tryMerge(cur *Call, r ooc.Request, o Options) bool {
	if cur.Write != r.Write {
		return false
	}
	if o.ChunkElems > 0 && cur.Elems()+r.Len > o.ChunkElems {
		return false
	}
	// Chunking: extend the last extent when same-array and adjacent (or
	// within the sieve-gap tolerance).
	last := &cur.Extents[len(cur.Extents)-1]
	if last.Array == r.Array {
		if gap := r.Off - (last.Off + last.Len); gap >= 0 && gap <= o.MaxGap {
			last.Len += gap + r.Len
			return true
		}
		if gap := last.Off - (r.Off + r.Len); gap >= 0 && gap <= o.MaxGap {
			last.Off = r.Off
			last.Len += gap + r.Len
			return true
		}
		return false
	}
	if !o.Interleave {
		return false
	}
	// Interleaving: a new extent in the same call.
	cur.Extents = append(cur.Extents, r)
	return true
}
