package exp

import (
	"fmt"
	"strings"

	"outcore/internal/codegen"
	"outcore/internal/ooc"
	"outcore/internal/suite"
)

// SizeHistogram buckets I/O request sizes by powers of two — the
// distribution view behind the call counts: unoptimized versions issue
// many tiny requests, optimized ones few long runs.
type SizeHistogram struct {
	// Buckets[i] counts requests with size in [2^i, 2^(i+1)).
	Buckets []int64
	Total   int64
	Elems   int64
}

// Add records one request of the given size (in elements).
func (h *SizeHistogram) Add(size int64) {
	if size <= 0 {
		return
	}
	b := 0
	for s := size; s > 1; s >>= 1 {
		b++
	}
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
	h.Total++
	h.Elems += size
}

// Mean returns the average request size in elements.
func (h *SizeHistogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Elems) / float64(h.Total)
}

// Render draws the histogram as ASCII bars.
func (h *SizeHistogram) Render() string {
	var b strings.Builder
	var max int64
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		width := 0
		if max > 0 {
			width = int(c * 40 / max)
		}
		fmt.Fprintf(&b, "  %6d..%-6d %s %d\n", int64(1)<<i, int64(1)<<(i+1)-1,
			strings.Repeat("#", width), c)
	}
	fmt.Fprintf(&b, "  %d requests, mean %.1f elements\n", h.Total, h.Mean())
	return b.String()
}

// TraceHistogram runs one kernel version (dry-run) and returns the
// request-size distribution of its I/O trace.
func TraceHistogram(o Options, kernel string, v suite.Version) (*SizeHistogram, error) {
	o.defaults()
	k, ok := suite.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("exp: unknown kernel %q", kernel)
	}
	prog := k.Build(o.Cfg)
	plan, err := suite.PlanFor(prog, v)
	if err != nil {
		return nil, err
	}
	budget := suite.MemBudget(prog, o.MemFrac)
	d, err := codegen.SetupDiskOn(ooc.NewDisk(0).NoBacking(), prog, plan, nil)
	if err != nil {
		return nil, err
	}
	d.Record = true
	mem := ooc.NewMemory(budget)
	if _, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
		Strategy:  suite.StrategyFor(v),
		MemBudget: budget,
		DryRun:    true,
	}); err != nil {
		return nil, err
	}
	h := &SizeHistogram{}
	for _, r := range d.Trace {
		h.Add(r.Len)
	}
	return h, nil
}
