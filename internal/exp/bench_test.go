package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/suite"
)

// benchOptions is a small, fast suite configuration shared by the
// bench tests.
func benchOptions() Options {
	return Options{
		Cfg:     suite.Config{N2: 16, N3: 4, N4: 2},
		PFS:     ScaledPFS(16, 4),
		MemFrac: 32,
		Procs:   2,
	}
}

// TestBenchSuiteSchema locks the BENCH JSON wire format: the CI
// regression gate and external tooling parse these files across
// revisions, so key renames are breaking changes that must show up
// here first.
func TestBenchSuiteSchema(t *testing.T) {
	o := benchOptions()
	o.Kernels = []string{"mat"}
	rep := BenchSuite(o)
	if len(rep.Failures) != 0 {
		t.Fatalf("suite failures: %+v", rep.Failures)
	}
	if got, want := len(rep.Results), len(BenchConfigs); got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != BenchSchema {
		t.Errorf("schema = %v, want %q", raw["schema"], BenchSchema)
	}
	topKeys := sortedKeys(raw)
	if want := []string{"results", "schema", "setup"}; !reflect.DeepEqual(topKeys, want) {
		t.Errorf("top-level keys = %v, want %v", topKeys, want)
	}
	entry := raw["results"].([]any)[0].(map[string]any)
	entryKeys := sortedKeys(entry)
	want := []string{"config", "hit_rate", "io_bytes", "io_calls", "kernel",
		"overlap_factor", "prefetch_useful", "sim_makespan_seconds", "wall_seconds"}
	if !reflect.DeepEqual(entryKeys, want) {
		t.Errorf("entry keys = %v, want %v", entryKeys, want)
	}

	// Round-trip through the loader.
	got, err := LoadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Setup != rep.Setup || len(got.Results) != len(rep.Results) {
		t.Errorf("round-trip mismatch: %+v vs %+v", got.Setup, rep.Setup)
	}

	// A foreign schema is rejected.
	if _, err := LoadBenchReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("LoadBenchReport accepted a foreign schema")
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestBenchSuiteDeterministicMetrics runs the suite twice and demands
// identical gated metrics — the property the CI regression gate is
// built on.
func TestBenchSuiteDeterministicMetrics(t *testing.T) {
	o := benchOptions()
	o.Kernels = []string{"mxm"}
	a, b := BenchSuite(o), BenchSuite(o)
	if len(a.Failures)+len(b.Failures) != 0 {
		t.Fatalf("suite failures: %+v %+v", a.Failures, b.Failures)
	}
	for i := range a.Results {
		x, y := a.Results[i], b.Results[i]
		if x.IOCalls != y.IOCalls || x.IOBytes != y.IOBytes || x.SimMakespanSeconds != y.SimMakespanSeconds {
			t.Errorf("%s/%s: gated metrics differ across runs: %+v vs %+v", x.Kernel, x.Config, x, y)
		}
	}
}

// TestCompareBenchInjectedRegression injects a >10% io_calls increase
// and a >10% makespan increase and checks the gate trips — the
// demonstration the CI bench job's failure mode hangs on. Sub-tolerance
// drift must pass.
func TestCompareBenchInjectedRegression(t *testing.T) {
	base := BenchReport{
		Schema: BenchSchema,
		Results: []BenchEntry{
			{Kernel: "mxm", Config: "engine", IOCalls: 1000, SimMakespanSeconds: 50},
			{Kernel: "mat", Config: "sequential", IOCalls: 200, SimMakespanSeconds: 10},
		},
	}

	cur := base
	cur.Results = append([]BenchEntry(nil), base.Results...)
	cur.Results[0].IOCalls = 1111 // +11.1%
	cur.Results[1].SimMakespanSeconds = 11.5
	regs, err := CompareBench(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Kernel != "mat" || regs[0].Metric != "sim_makespan_seconds" {
		t.Errorf("regs[0] = %+v", regs[0])
	}
	if regs[1].Kernel != "mxm" || regs[1].Metric != "io_calls" {
		t.Errorf("regs[1] = %+v", regs[1])
	}

	// Drift inside the tolerance passes.
	ok := base
	ok.Results = append([]BenchEntry(nil), base.Results...)
	ok.Results[0].IOCalls = 1090 // +9%
	ok.Results[1].SimMakespanSeconds = 10.9
	regs, err = CompareBench(base, ok, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("sub-tolerance drift flagged: %v", regs)
	}

	// A vanished entry is a regression, not a silent pass.
	missing := base
	missing.Results = base.Results[:1]
	regs, err = CompareBench(base, missing, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Errorf("missing entry: got %v", regs)
	}

	// Reports from different setups are not comparable.
	other := base
	other.Setup.N2 = 999
	if _, err := CompareBench(base, other, 0.10); err == nil {
		t.Error("CompareBench accepted mismatched setups")
	}
}

// TestBenchSuiteFailurePropagation: a broken kernel is recorded (once
// per configuration) and the rest of the suite still produces results —
// occbench turns non-empty Failures into a non-zero exit.
func TestBenchSuiteFailurePropagation(t *testing.T) {
	o := benchOptions()
	o.Kernels = []string{"nosuchkernel", "mat"}
	rep := BenchSuite(o)
	if got, want := len(rep.Failures), len(BenchConfigs); got != want {
		t.Fatalf("got %d failures, want %d: %+v", got, want, rep.Failures)
	}
	for _, f := range rep.Failures {
		if f.Kernel != "nosuchkernel" || f.Error == "" {
			t.Errorf("failure = %+v", f)
		}
	}
	if got, want := len(rep.Results), len(BenchConfigs); got != want {
		t.Errorf("healthy kernel produced %d results, want %d", got, want)
	}
}

// TestObserverEffect: attaching a full observability sink (trace +
// metrics) must not change the engine's backend request stream — the
// instrumented engine does the same I/O in the same order as the bare
// one. Synchronous configuration, so traces are exactly comparable.
func TestObserverEffect(t *testing.T) {
	o := benchOptions()
	o.CacheTiles = 4
	o.Workers = 0

	bare, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	o.Obs = &obs.Sink{Trace: obs.NewTrace(1 << 12), Metrics: obs.NewRegistry()}
	observed, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare.EngTrace, observed.EngTrace) {
		t.Errorf("observer effect: engine backend trace changed under the sink\nbare: %d calls, observed: %d calls",
			len(bare.EngTrace), len(observed.EngTrace))
	}
	if bare.Cache != observed.Cache {
		t.Errorf("observer effect: cache stats changed: %+v vs %+v", bare.Cache, observed.Cache)
	}
	if o.Obs.Trace.Total() == 0 {
		t.Error("sink recorded no events — instrumentation is dead")
	}
}

// TestObserverEffectConcurrent repeats the check with workers under the
// race detector; with asynchronous prefetch the call ORDER may differ,
// so compare the multiset of requests and the totals.
func TestObserverEffectConcurrent(t *testing.T) {
	o := benchOptions()
	o.CacheTiles = 8
	o.Workers = 4

	bare, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	o.Obs = &obs.Sink{Trace: obs.NewTrace(1 << 12), Metrics: obs.NewRegistry()}
	observed, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}

	if bare.MaxDiff != 0 || observed.MaxDiff != 0 {
		t.Errorf("engine diverged from sequential results: %g / %g", bare.MaxDiff, observed.MaxDiff)
	}
	a := append([]ooc.Request(nil), bare.EngTrace...)
	b := append([]ooc.Request(nil), observed.EngTrace...)
	less := func(rs []ooc.Request) func(i, j int) bool {
		return func(i, j int) bool {
			if rs[i].Array != rs[j].Array {
				return rs[i].Array < rs[j].Array
			}
			if rs[i].Off != rs[j].Off {
				return rs[i].Off < rs[j].Off
			}
			if rs[i].Len != rs[j].Len {
				return rs[i].Len < rs[j].Len
			}
			return !rs[i].Write && rs[j].Write
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observer effect: backend request multiset changed under the sink (%d vs %d calls)",
			len(bare.EngTrace), len(observed.EngTrace))
	}
}

// TestBenchCompressRow pins the engine-compress cell: its gated
// metrics match the plain engine config (compression sits below the
// I/O-call accounting), its bytes_disk shows a real byte reduction
// against the logical volume, and the cached-GET path measured zero
// allocations.
func TestBenchCompressRow(t *testing.T) {
	o := benchOptions()
	o.Kernels = []string{"mat"}
	rep := BenchSuite(o)
	if len(rep.Failures) != 0 {
		t.Fatalf("suite failures: %+v", rep.Failures)
	}
	byConfig := map[string]BenchEntry{}
	for _, e := range rep.Results {
		byConfig[e.Config] = e
	}
	comp, ok := byConfig["engine-compress"]
	if !ok {
		t.Fatal("no engine-compress row in the suite report")
	}
	plain := byConfig["engine"]
	if comp.IOCalls != plain.IOCalls || comp.IOBytes != plain.IOBytes {
		t.Errorf("compress changed the logical I/O accounting: %+v vs %+v", comp, plain)
	}
	if comp.BytesDisk <= 0 || comp.BytesDiskRaw <= 0 {
		t.Fatalf("engine-compress row has no disk byte measurements: %+v", comp)
	}
	if comp.BytesDisk*2 > comp.BytesDiskRaw {
		t.Errorf("bytes_disk %d vs raw %d: less than the 2x reduction target", comp.BytesDisk, comp.BytesDiskRaw)
	}
	if plain.BytesDisk != 0 {
		t.Errorf("plain engine row carries bytes_disk %d, want 0", plain.BytesDisk)
	}
	for _, name := range []string{"engine", "engine-compress"} {
		e := byConfig[name]
		if e.AllocsPerGet == nil {
			t.Errorf("%s row has no allocs_per_get measurement", name)
		} else if *e.AllocsPerGet != 0 {
			t.Errorf("%s: allocs_per_get = %v, want 0", name, *e.AllocsPerGet)
		}
	}
	if seq := byConfig["sequential"]; seq.AllocsPerGet != nil {
		t.Error("sequential row should not carry allocs_per_get")
	}
}

// TestCompareBenchAllocsGate checks the absolute zero-allocation gate:
// a current report whose cached-GET path allocates trips the
// comparison even when every ratio metric is level.
func TestCompareBenchAllocsGate(t *testing.T) {
	one := 1.0
	zero := 0.0
	base := BenchReport{Schema: BenchSchema, Results: []BenchEntry{
		{Kernel: "mat", Config: "engine", IOCalls: 100, SimMakespanSeconds: 1, AllocsPerGet: &zero},
	}}
	cur := BenchReport{Schema: BenchSchema, Results: []BenchEntry{
		{Kernel: "mat", Config: "engine", IOCalls: 100, SimMakespanSeconds: 1, AllocsPerGet: &one},
	}}
	regs, err := CompareBench(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs_per_get" {
		t.Fatalf("regressions = %+v, want one allocs_per_get", regs)
	}
	// And a zero-alloc current report passes.
	regs, err = CompareBench(base, base, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("level report tripped the gate: %+v", regs)
	}
}
