package exp

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// BlockedRow compares tile-read costs under a blocked file layout
// against row- and column-major for square tiles of the given size.
type BlockedRow struct {
	Tile     int64
	RowCalls int64
	ColCalls int64
	// BlockedCalls uses blocks matched to the tile size: an aligned tile
	// is exactly one contiguous run.
	BlockedCalls int64
}

// BlockedAblation quantifies Figure 2's last layout family: blocked
// layouts make aligned square tiles file-contiguous, which neither
// canonical layout can. The paper's method "as it is can be used for
// determining optimal storage of blocks in file with respect to each
// other"; this experiment shows what the blocks themselves buy.
func BlockedAblation(n int64, tiles []int64) ([]BlockedRow, error) {
	if len(tiles) == 0 {
		tiles = []int64{8, 16, 32}
	}
	meta := ir.NewArray("A", n, n)
	var rows []BlockedRow
	for _, b := range tiles {
		if n%b != 0 {
			return nil, fmt.Errorf("exp: tile %d does not divide array extent %d", b, n)
		}
		row := BlockedRow{Tile: b}
		for _, tc := range []struct {
			l     *layout.Layout
			calls *int64
		}{
			{layout.RowMajor(n, n), &row.RowCalls},
			{layout.ColMajor(n, n), &row.ColCalls},
			{layout.Blocked(n, n, b, b), &row.BlockedCalls},
		} {
			d := ooc.NewDisk(0).NoBacking()
			arr, err := d.CreateArray(meta, tc.l)
			if err != nil {
				return nil, err
			}
			// Sweep all aligned b x b tiles.
			for i := int64(0); i < n; i += b {
				for j := int64(0); j < n; j += b {
					arr.TouchRead(layout.NewBox([]int64{i, j}, []int64{i + b, j + b}))
				}
			}
			*tc.calls = d.Stats.ReadCalls
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BlockedPlanDemo shows the one place the optimizer interacts with
// blocked layouts today: a plan may FIX a blocked layout (e.g. imposed
// by an external producer) and the loop optimizer must then treat the
// array's references as unconstrained by any hyperplane — exactly the
// paper's remark that blocked layouts sit outside the linear framework.
func BlockedPlanDemo(n int64) (string, error) {
	a := ir.NewArray("A", n, n)
	b := ir.NewArray("B", n, n)
	prog := &ir.Program{
		Name:   "blocked-demo",
		Arrays: []*ir.Array{a, b},
		Nests: []*ir.Nest{{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
			ir.Assign(ir.RefIdx(a, 2, 0, 1), []ir.Ref{ir.RefIdx(b, 2, 1, 0)}, "", ir.AddConst(1)),
		}}},
	}
	var o core.Optimizer
	plan := o.OptimizeCombined(prog)
	// Override A with a blocked layout, as an external constraint.
	plan.Layouts[a] = layout.Blocked(n, n, 8, 8)
	var out string
	for _, rep := range plan.Report(prog, nil) {
		out += fmt.Sprintf("%s: %s locality under %s\n", rep.Ref, rep.Locality, plan.Layouts[rep.Ref.Array])
	}
	return out, nil
}
