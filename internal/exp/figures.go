package exp

import (
	"fmt"
	"strings"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/igraph"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
	"outcore/internal/ooc"
	"outcore/internal/restructure"
	"outcore/internal/sim"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

// Figure1 reproduces the paper's Figure 1: an imperfect two-tree input
// is normalized (fusion + distribution) and the interference graph
// splits into two connected components.
func Figure1() (string, error) {
	const n = 8
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	x := ir.NewArray("X", n, n)
	y := ir.NewArray("Y", n, n)

	s1 := ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 0, 1)}, "", ir.AddConst(1))
	s2 := ir.Assign(ir.RefIdx(w, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 0, 1)}, "", ir.AddConst(2))
	tree1 := restructure.NewLoop("i", 0, n-1,
		restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s1, 2)),
		restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s2, 2)),
	)
	s3 := ir.Assign(ir.RefIdx(x, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[1]) })
	s4 := ir.Assign(ir.RefIdx(y, 2, 0, 1), []ir.Ref{ir.RefAffine(x, [][]int64{{1, 0}, {0, 0}}, []int64{0, 0})}, "", ir.AddConst(1))
	tree2 := restructure.NewLoop("i", 0, n-1,
		restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s3, 2)),
		restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s4, 2)),
	)
	nests, err := restructure.Normalize([]*restructure.Node{tree1, tree2})
	if err != nil {
		return "", err
	}
	p := &ir.Program{Name: "figure1", Nests: nests}
	for _, nst := range nests {
		p.Arrays = append(p.Arrays, nst.Arrays()...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: %d imperfect trees -> %d perfect nests\n\n", 2, len(nests))
	for _, nst := range nests {
		fmt.Fprintf(&b, "nest %d:\n%s\n", nst.ID, nst)
	}
	comps := igraph.Build(p).Components()
	fmt.Fprintf(&b, "interference graph: %d connected components\n", len(comps))
	for ci, c := range comps {
		names := make([]string, len(c.Arrays))
		for i, a := range c.Arrays {
			names[i] = a.Name
		}
		nids := make([]string, len(c.Nests))
		for i, nst := range c.Nests {
			nids[i] = fmt.Sprintf("%d", nst.ID)
		}
		fmt.Fprintf(&b, "  component %d: nests {%s}  arrays {%s}\n", ci, strings.Join(nids, ","), strings.Join(names, ","))
	}
	return b.String(), nil
}

// Figure2 renders the paper's Figure 2: canonical file layouts with
// their hyperplane vectors and the file-offset map of a small array.
func Figure2() string {
	const n = 4
	var b strings.Builder
	b.WriteString("Figure 2: file layouts and their hyperplane vectors (4x4 offsets)\n")
	entries := []struct {
		l *layout.Layout
	}{
		{layout.ColMajor(n, n)},
		{layout.RowMajor(n, n)},
		{layout.Diagonal(n, n)},
		{layout.AntiDiagonal(n, n)},
		{layout.Blocked(n, n, 2, 2)},
	}
	for _, e := range entries {
		g := e.l.Hyperplane()
		if g != nil {
			fmt.Fprintf(&b, "\n%s  g = (%d,%d)\n", e.l.Name(), g[0], g[1])
		} else {
			fmt.Fprintf(&b, "\n%s  (blocked: ordered block by block)\n", e.l.Name())
		}
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				fmt.Fprintf(&b, "%4d", e.l.Offset([]int64{i, j}))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure3Result reports the I/O calls per data tile under the two
// tiling strategies for the paper's 8x8 / 32-element / 8-element-call
// illustration, plus whole-program counts on the motivating fragment.
type Figure3Result struct {
	TraditionalTileCalls int64 // 4 in the paper
	OOCTileCalls         int64 // 2 in the paper
	ProgramTraditional   int64
	ProgramOOC           int64
}

// Figure3 reproduces the Figure-3 arithmetic and then demonstrates the
// same effect at whole-program scale on the Section-3.1 fragment.
func Figure3() (Figure3Result, error) {
	var res Figure3Result
	// The paper's illustration: column-major V, 8-element calls.
	colV := layout.ColMajor(8, 8)
	calls := func(l *layout.Layout, box layout.Box, cap int64) int64 {
		var c int64
		for _, r := range l.Runs(box) {
			c += (r.Len + cap - 1) / cap
		}
		return c
	}
	res.TraditionalTileCalls = calls(colV, layout.NewBox([]int64{0, 0}, []int64{4, 4}), 8)
	res.OOCTileCalls = calls(colV, layout.NewBox([]int64{0, 0}, []int64{8, 2}), 8)

	// Whole-program: the motivating fragment under the c-opt plan.
	const n = 64
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	prog := &ir.Program{
		Name:   "figure3",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "", ir.AddConst(2)),
			}},
		},
	}
	var o core.Optimizer
	plan := o.OptimizeCombined(prog)
	budget := suite.TotalElems(prog) / 32
	for _, strat := range []tiling.Strategy{tiling.Traditional, tiling.OutOfCore} {
		d, err := codegen.SetupDisk(prog, plan, 64, nil)
		if err != nil {
			return res, err
		}
		mem := ooc.NewMemory(budget)
		if _, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
			Strategy: strat, MemBudget: budget, DryRun: true, NoFallback: true,
		}); err != nil {
			return res, err
		}
		if strat == tiling.Traditional {
			res.ProgramTraditional = d.Stats.Calls()
		} else {
			res.ProgramOOC = d.Stats.Calls()
		}
	}
	return res, nil
}

// Render formats the Figure-3 result.
func (r Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: I/O calls per 16-element tile of column-major V (8-elt calls)\n")
	fmt.Fprintf(&b, "  (a) traditional 4x4 tile : %d calls\n", r.TraditionalTileCalls)
	fmt.Fprintf(&b, "  (b) out-of-core 8x2 tile : %d calls\n", r.OOCTileCalls)
	b.WriteString("whole-program (Section 3.1 fragment, c-opt layouts):\n")
	fmt.Fprintf(&b, "  traditional tiling : %d calls\n", r.ProgramTraditional)
	fmt.Fprintf(&b, "  out-of-core tiling : %d calls\n", r.ProgramOOC)
	return b.String()
}

// TilingAblationRow compares strategies per kernel under the c-opt plan.
type TilingAblationRow struct {
	Kernel      string
	Traditional int64
	OutOfCore   int64
}

// TilingAblation measures I/O calls for the c-opt plan when the tiling
// strategy is flipped: the design choice Section 3.3 motivates.
func TilingAblation(o Options) ([]TilingAblationRow, error) {
	o.defaults()
	kernels, err := o.kernels()
	if err != nil {
		return nil, err
	}
	var rows []TilingAblationRow
	for _, k := range kernels {
		row := TilingAblationRow{Kernel: k.Name}
		prog := k.Build(o.Cfg)
		plan, err := suite.PlanFor(prog, suite.COpt)
		if err != nil {
			return nil, err
		}
		budget := suite.MemBudget(prog, o.MemFrac)
		for _, strat := range []tiling.Strategy{tiling.Traditional, tiling.OutOfCore} {
			d, err := codegen.SetupDisk(prog, plan, 0, nil)
			if err != nil {
				return nil, err
			}
			mem := ooc.NewMemory(budget)
			if _, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
				Strategy: strat, MemBudget: budget, DryRun: true,
			}); err != nil {
				return nil, err
			}
			if strat == tiling.Traditional {
				row.Traditional = d.Stats.Calls()
			} else {
				row.OutOfCore = d.Stats.Calls()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MemorySweepRow is one memory-fraction measurement.
type MemorySweepRow struct {
	Frac    int64
	Seconds float64
	Calls   int64
}

// MemorySweep measures a kernel's c-opt time as the memory budget
// shrinks (1/32 ... 1/512 of the data), an ablation over the paper's
// fixed 1/128 discipline.
func MemorySweep(o Options, kernel string, fracs []int64) ([]MemorySweepRow, error) {
	o.defaults()
	k, ok := suite.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("exp: unknown kernel %q", kernel)
	}
	if len(fracs) == 0 {
		fracs = []int64{32, 64, 128, 256, 512}
	}
	var rows []MemorySweepRow
	for _, f := range fracs {
		st := o.setup(k, suite.COpt, o.Procs)
		st.MemFrac = f
		m, err := sim.Run(st)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MemorySweepRow{Frac: f, Seconds: m.Seconds, Calls: m.Calls})
	}
	return rows, nil
}

// OrderAblationResult compares the paper's cost-ordered layout
// propagation against the reversed order.
type OrderAblationResult struct {
	Kernel            string
	CostOrderCalls    int64
	ReverseOrderCalls int64
}

// OrderAblation flips the nest cost order (via a synthetic profile) and
// measures the effect on total I/O calls under the combined algorithm:
// Step 3.a's "optimize the costliest nest first" is the knob.
func OrderAblation(o Options, kernel string) (OrderAblationResult, error) {
	o.defaults()
	k, ok := suite.ByName(kernel)
	if !ok {
		return OrderAblationResult{}, fmt.Errorf("exp: unknown kernel %q", kernel)
	}
	res := OrderAblationResult{Kernel: kernel}
	for _, reversed := range []bool{false, true} {
		prog := k.Build(o.Cfg)
		var opt core.Optimizer
		if reversed {
			opt.Profile = map[int]int64{}
			for _, n := range prog.Nests {
				opt.Profile[n.ID] = -core.Cost(n) // invert the order
			}
		}
		plan := opt.OptimizeCombined(prog)
		budget := suite.MemBudget(prog, o.MemFrac)
		d, err := codegen.SetupDisk(prog, plan, 0, nil)
		if err != nil {
			return res, err
		}
		mem := ooc.NewMemory(budget)
		if _, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
			Strategy: tiling.OutOfCore, MemBudget: budget, DryRun: true,
		}); err != nil {
			return res, err
		}
		if reversed {
			res.ReverseOrderCalls = d.Stats.Calls()
		} else {
			res.CostOrderCalls = d.Stats.Calls()
		}
	}
	return res, nil
}

// StorageDemo renders the Section-3.4 storage-reduction example.
func StorageDemo() string {
	var b strings.Builder
	b.WriteString("Section 3.4: storage reduction for skewed accesses\n")
	cases := []*matrix.Int{
		matrix.FromRows([][]int64{{3, 2}, {2, 0}}),
		matrix.FromRows([][]int64{{2, 1}, {1, 0}}),
		matrix.FromRows([][]int64{{1, 0}, {0, 1}}),
	}
	extents := []int64{1024, 1024}
	for _, m := range cases {
		d, before, after := core.ReduceStorage(m, extents)
		fmt.Fprintf(&b, "access rows %v: box %d -> %d elements", rowsOf(m), before, after)
		if d != nil {
			fmt.Fprintf(&b, "  (shear %v)", rowsOf(d))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func rowsOf(m *matrix.Int) [][]int64 {
	out := make([][]int64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}
