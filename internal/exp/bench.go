package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"outcore/internal/codegen"
	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/sim"
	"outcore/internal/suite"
)

// BenchSchema identifies the BENCH JSON layout. Bump only on breaking
// changes — the CI regression gate and the perf-trajectory tooling
// parse these files across revisions.
const BenchSchema = "outcore-bench/v1"

// BenchKernels are the paper kernels the reproducible suite runs —
// the four whose Table-2/3 behaviour spans the interesting regimes
// (dense matmul, transpose-dominated I/O, symmetric update, the small
// baseline).
var BenchKernels = []string{"mat", "mxm", "trans", "syr2k"}

// BenchRunConfig is one engine configuration of the suite matrix.
type BenchRunConfig struct {
	Name       string `json:"name"`
	CacheTiles int    `json:"cache_tiles"`        // 0 = plain sequential runtime
	Workers    int    `json:"workers"`            // >0 enables async prefetch
	Shards     int    `json:"shards,omitempty"`   // >1 shards the tile plane (additive field)
	Compress   bool   `json:"compress,omitempty"` // store array backends compressed (additive field)
}

// BenchConfigs is the suite's configuration axis: the plain sequential
// runtime, the LRU-cached engine, the cached engine with an I/O worker
// pool overlapping prefetches with compute, and the sharded tile plane
// at 2/4/8 shards (same plane-wide cache budget, split per shard) —
// the partitioned-cache request streams the conformance suite proves
// equivalent and the load harness scales with.
var BenchConfigs = []BenchRunConfig{
	{Name: "sequential", CacheTiles: 0, Workers: 0},
	{Name: "engine", CacheTiles: 8, Workers: 0},
	{Name: "engine+prefetch", CacheTiles: 8, Workers: 4},
	{Name: "engine-sharded-2", CacheTiles: 8, Workers: 0, Shards: 2},
	{Name: "engine-sharded-4", CacheTiles: 8, Workers: 0, Shards: 4},
	{Name: "engine-sharded-8", CacheTiles: 8, Workers: 0, Shards: 8},
	{Name: "engine-compress", CacheTiles: 8, Workers: 0, Compress: true},
}

// BenchEntry is one (kernel, configuration) measurement. IOCalls,
// IOBytes and SimMakespanSeconds come from the deterministic dry-run +
// PFS simulation (the values the regression gate compares); HitRate,
// PrefetchUseful, OverlapFactor and WallSeconds come from a data-backed
// single-process execution (WallSeconds is machine-dependent and
// informational only).
//
// The trailing omitempty fields are the serving-layer additions the
// load harness (cmd/occload) fills in: they are ADDITIVE, so the
// outcore-bench/v1 schema stays backward-compatible — old readers
// ignore them, old reports simply lack them, and CompareBench never
// gates on them.
type BenchEntry struct {
	Kernel             string  `json:"kernel"`
	Config             string  `json:"config"`
	IOCalls            int64   `json:"io_calls"`
	IOBytes            int64   `json:"io_bytes"`
	HitRate            float64 `json:"hit_rate"`
	PrefetchUseful     int64   `json:"prefetch_useful"`
	OverlapFactor      float64 `json:"overlap_factor"`
	SimMakespanSeconds float64 `json:"sim_makespan_seconds"`
	WallSeconds        float64 `json:"wall_seconds"`

	// Compression and allocation metrics. BytesDiskRaw and BytesDisk
	// are the logical vs encoded byte volumes that crossed the disk
	// boundary during the wall run (compress configs only; their ratio
	// is the on-disk byte reduction). AllocsPerGet is the measured per-operation
	// allocation count of a cached tile acquire — a pointer so the
	// legitimate value 0 survives serialization — and the CI gate
	// holds it at zero. BytesWireRaw and BytesWire are the same pair
	// for a load-harness run's HTTP tile traffic.
	BytesDiskRaw int64    `json:"bytes_disk_raw,omitempty"`
	BytesDisk    int64    `json:"bytes_disk,omitempty"`
	BytesWireRaw int64    `json:"bytes_wire_raw,omitempty"`
	BytesWire    int64    `json:"bytes_wire,omitempty"`
	AllocsPerGet *float64 `json:"allocs_per_get,omitempty"`

	// Serving-layer metrics (load-harness rows only).
	Requests          int64   `json:"requests,omitempty"`
	ThroughputRPS     float64 `json:"throughput_rps,omitempty"`
	LatencyP50Seconds float64 `json:"latency_p50_seconds,omitempty"`
	LatencyP99Seconds float64 `json:"latency_p99_seconds,omitempty"`
	PutP50Seconds     float64 `json:"latency_put_p50_seconds,omitempty"`
	PutP99Seconds     float64 `json:"latency_put_p99_seconds,omitempty"`
	CoalescedFetches  int64   `json:"coalesced_fetches,omitempty"`
	Rejected          int64   `json:"rejected,omitempty"`

	// Cluster-serving metrics (occload cluster rows only, additive as
	// above): the replication factor and the run's handoff/read-repair
	// activity through the router.
	Replicas     int   `json:"replicas,omitempty"`
	HandoffHints int64 `json:"handoff_hints,omitempty"`
	ReadRepairs  int64 `json:"read_repairs,omitempty"`

	// Batched/streaming-operator metrics (occload scenario rows only,
	// additive as above). RoundTrips is the HTTP requests the workload
	// actually issued; PointRoundTrips is what moving the same tile
	// volume would have cost as single-tile requests — their ratio is
	// the operators' round-trip reduction at equal bytes, and CI gates
	// serve-scan rows at 5x.
	RoundTrips      int64 `json:"round_trips,omitempty"`
	PointRoundTrips int64 `json:"point_round_trips,omitempty"`
	ScanRequests    int64 `json:"scan_requests,omitempty"`
	ScanChunks      int64 `json:"scan_chunks,omitempty"`
	BatchRequests   int64 `json:"batch_requests,omitempty"`
	BatchOps        int64 `json:"batch_ops,omitempty"`

	// Multi-tenant fairness metrics (occload -scenario multi-tenant
	// serve-mt-* rows only, additive as above). Tenant names the
	// population the row measures; the solo/contended p99 pair is the
	// isolation evidence CI gates — the point tenant's contended p99
	// must stay within 2x its solo p99 while a scan tenant saturates
	// the same plane.
	Tenant         string  `json:"tenant,omitempty"`
	P99SoloMs      float64 `json:"p99_solo_ms,omitempty"`
	P99ContendedMs float64 `json:"p99_contended_ms,omitempty"`
}

// BenchFailure records one (kernel, configuration) run that errored;
// the suite keeps going so one broken kernel doesn't hide the rest,
// but any failure must make occbench exit non-zero.
type BenchFailure struct {
	Kernel string `json:"kernel"`
	Config string `json:"config"`
	Error  string `json:"error"`
}

// BenchSetup records the knobs a report was produced under, so a
// comparison against a baseline generated at different scale can be
// rejected instead of reporting nonsense regressions.
type BenchSetup struct {
	N2      int64 `json:"n2"`
	N3      int64 `json:"n3"`
	N4      int64 `json:"n4"`
	Procs   int   `json:"procs"`
	IONodes int   `json:"ionodes"`
	MemFrac int64 `json:"memfrac"`
}

// BenchReport is the machine-readable artifact `occbench -suite -json`
// emits (BENCH_<rev>.json) and the CI regression gate consumes.
type BenchReport struct {
	Schema   string         `json:"schema"`
	Setup    BenchSetup     `json:"setup"`
	Results  []BenchEntry   `json:"results"`
	Failures []BenchFailure `json:"failures,omitempty"`
}

// WriteJSON writes the report, indented for diffability.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadBenchReport parses and schema-checks a BENCH JSON.
func LoadBenchReport(rd io.Reader) (BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return rep, fmt.Errorf("exp: parsing bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return rep, fmt.Errorf("exp: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	return rep, nil
}

// BenchSuite runs the reproducible benchmark suite: every kernel in
// o.Kernels (BenchKernels when unset) under every BenchConfigs entry,
// all as the c-opt version. Per entry it runs (a) the dry-run
// multi-processor simulation for the deterministic I/O-call count,
// byte volume and PFS makespan, and (b) a data-backed single-process
// execution for wall time, cache hit rate and prefetch overlap.
// Kernel failures are recorded in the report, not returned as an
// error, so the rest of the suite still produces data.
func BenchSuite(o Options) BenchReport {
	o.defaults()
	names := o.Kernels
	if len(names) == 0 {
		names = BenchKernels
	}
	configs := o.Configs
	if len(configs) == 0 {
		configs = BenchConfigs
	}
	rep := BenchReport{
		Schema: BenchSchema,
		Setup: BenchSetup{
			N2: o.Cfg.N2, N3: o.Cfg.N3, N4: o.Cfg.N4,
			Procs: o.Procs, IONodes: o.PFS.IONodes, MemFrac: o.MemFrac,
		},
	}
	for _, name := range names {
		k, ok := suite.ByName(name)
		if !ok {
			for _, bc := range configs {
				rep.Failures = append(rep.Failures, BenchFailure{Kernel: name, Config: bc.Name,
					Error: fmt.Sprintf("unknown kernel %q", name)})
			}
			continue
		}
		for _, bc := range configs {
			entry, err := benchOne(o, k, bc)
			if err != nil {
				rep.Failures = append(rep.Failures, BenchFailure{Kernel: k.Name, Config: bc.Name, Error: err.Error()})
				continue
			}
			rep.Results = append(rep.Results, entry)
		}
	}
	return rep
}

// benchOne measures one (kernel, configuration) cell.
func benchOne(o Options, k suite.Kernel, bc BenchRunConfig) (BenchEntry, error) {
	entry := BenchEntry{Kernel: k.Name, Config: bc.Name}

	// (a) Deterministic quantities: dry-run schedule + PFS simulation.
	st := o.setup(k, suite.COpt, o.Procs)
	st.CacheTiles, st.Workers, st.Shards = bc.CacheTiles, bc.Workers, bc.Shards
	m, err := sim.Run(st)
	if err != nil {
		return entry, err
	}
	entry.IOCalls = m.Calls
	entry.IOBytes = m.Elems * ooc.ElemSize
	entry.SimMakespanSeconds = m.Seconds

	// (b) Wall-clock + cache behaviour: one data-backed execution.
	wall, cache, extra, err := benchWall(o, k, bc)
	if err != nil {
		return entry, err
	}
	entry.WallSeconds = wall
	entry.HitRate = cache.HitRate()
	entry.PrefetchUseful = cache.PrefetchUseful
	entry.OverlapFactor = cache.OverlapFactor()
	entry.BytesDiskRaw = extra.bytesDiskRaw
	entry.BytesDisk = extra.bytesDisk
	entry.AllocsPerGet = extra.allocsPerGet
	return entry, nil
}

// benchExtras carries the wall run's compression and allocation
// measurements into the report row.
type benchExtras struct {
	bytesDiskRaw int64
	bytesDisk    int64
	allocsPerGet *float64
}

// benchWall executes the kernel for real (in-memory files, zeroed
// data) under the configuration and reports the wall time and the
// engine's cache counters (zero for the sequential configuration).
func benchWall(o Options, k suite.Kernel, bc BenchRunConfig) (float64, ooc.EngineStats, benchExtras, error) {
	var extra benchExtras
	prog := k.Build(o.Cfg)
	plan, err := suite.PlanFor(prog, suite.COpt)
	if err != nil {
		return 0, ooc.EngineStats{}, extra, err
	}
	budget := suite.MemBudget(prog, o.MemFrac)
	base := ooc.NewDisk(o.PFS.StripeElems)
	if bc.Compress {
		base.EnableCompression()
	}
	d, err := codegen.SetupDiskOn(base, prog, plan, nil)
	if err != nil {
		return 0, ooc.EngineStats{}, extra, err
	}
	d.Observe(o.Obs)
	opts := codegen.Options{Strategy: suite.StrategyFor(suite.COpt), MemBudget: budget, Obs: o.Obs}
	var eng ooc.TileEngine
	if bc.CacheTiles > 0 {
		eo := ooc.EngineOptions{Workers: bc.Workers, CacheTiles: bc.CacheTiles, Obs: o.Obs}
		if bc.Shards > 1 {
			eng = ooc.NewShardedEngine(d, bc.Shards, eo)
		} else {
			eng = ooc.NewEngine(d, eo)
		}
		opts.Engine = eng
	}
	mem := ooc.NewMemory(budget)
	start := time.Now()
	for it := 0; it < k.Iter; it++ {
		if _, err := codegen.RunProgram(prog, plan, d, mem, opts); err != nil {
			return 0, ooc.EngineStats{}, extra, err
		}
	}
	wall := time.Since(start).Seconds()
	if eng != nil {
		extra.allocsPerGet = measureAllocsPerGet(d, eng)
	}
	var cache ooc.EngineStats
	if eng != nil {
		if err := eng.Close(); err != nil {
			return 0, ooc.EngineStats{}, extra, err
		}
		cache = eng.Stats()
	}
	if cs := d.CompressionStats(); cs != nil {
		extra.bytesDiskRaw = cs.DiskReadRawBytes + cs.DiskWriteRawBytes
		extra.bytesDisk = cs.DiskReadBytes + cs.DiskWriteBytes
	}
	return wall, cache, extra, nil
}

// measureAllocsPerGet measures the per-operation heap allocation count
// of a cached tile acquire against the run's own engine and disk — the
// number the serving layer's zero-copy GET discipline rests on. Returns
// nil when no array offers a tile to measure.
func measureAllocsPerGet(d *ooc.Disk, eng ooc.TileEngine) *float64 {
	arrays := d.Arrays()
	if len(arrays) == 0 {
		return nil
	}
	ar := arrays[0]
	lo := make([]int64, len(ar.Meta.Dims))
	hi := make([]int64, len(ar.Meta.Dims))
	for i, n := range ar.Meta.Dims {
		hi[i] = n
		if hi[i] > 8 {
			hi[i] = 8
		}
	}
	box := layout.NewBox(lo, hi)
	warm := func() bool {
		h, err := eng.Acquire(ar, box)
		if err != nil {
			return false
		}
		eng.Release(h, false)
		return true
	}
	if !warm() || !warm() {
		return nil
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const rounds = 100
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if !warm() {
			return nil
		}
	}
	runtime.ReadMemStats(&after)
	// Integer division, as testing.AllocsPerRun does: stray background
	// allocations below one-per-op truncate to zero, while a real
	// per-op allocation always survives.
	v := float64((after.Mallocs - before.Mallocs) / rounds)
	return &v
}

// BenchRegression is one gated metric that got worse than the
// tolerance allows (or an entry that disappeared).
type BenchRegression struct {
	Kernel string
	Config string
	Metric string // "io_calls", "sim_makespan_seconds", "missing"
	Base   float64
	Cur    float64
}

// Ratio returns cur/base (0 when base is 0).
func (r BenchRegression) Ratio() float64 {
	if r.Base == 0 {
		return 0
	}
	return r.Cur / r.Base
}

func (r BenchRegression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s/%s: entry missing from current report", r.Kernel, r.Config)
	}
	return fmt.Sprintf("%s/%s: %s regressed %.1f%% (%.6g -> %.6g)",
		r.Kernel, r.Config, r.Metric, 100*(r.Ratio()-1), r.Base, r.Cur)
}

// CompareBench gates cur against base: any entry whose I/O-call count
// or simulated makespan exceeds the baseline by more than tol
// (fractional, e.g. 0.10) is a regression, as is any baseline entry
// missing from cur. Wall time, hit rate and overlap are informational
// and never gate. An error is returned when the reports are not
// comparable (different setup scale).
func CompareBench(base, cur BenchReport, tol float64) ([]BenchRegression, error) {
	if base.Setup != cur.Setup {
		return nil, fmt.Errorf("exp: bench setups differ (baseline %+v vs current %+v); regenerate the baseline",
			base.Setup, cur.Setup)
	}
	curBy := map[string]BenchEntry{}
	for _, e := range cur.Results {
		curBy[e.Kernel+"/"+e.Config] = e
	}
	var regs []BenchRegression
	for _, b := range base.Results {
		if b.Requests > 0 {
			// Serving-layer rows (the occload harness, including its
			// shard sweep) are machine-dependent throughput snapshots: a
			// baseline may carry them for the record, but they never gate
			// and their absence from an occbench suite report is not a
			// regression.
			continue
		}
		c, ok := curBy[b.Kernel+"/"+b.Config]
		if !ok {
			regs = append(regs, BenchRegression{Kernel: b.Kernel, Config: b.Config, Metric: "missing"})
			continue
		}
		if float64(c.IOCalls) > float64(b.IOCalls)*(1+tol) {
			regs = append(regs, BenchRegression{Kernel: b.Kernel, Config: b.Config, Metric: "io_calls",
				Base: float64(b.IOCalls), Cur: float64(c.IOCalls)})
		}
		if c.SimMakespanSeconds > b.SimMakespanSeconds*(1+tol) {
			regs = append(regs, BenchRegression{Kernel: b.Kernel, Config: b.Config, Metric: "sim_makespan_seconds",
				Base: b.SimMakespanSeconds, Cur: c.SimMakespanSeconds})
		}
		// The zero-allocation cached-GET contract is absolute, not a
		// ratio: any measured allocation on the hot path is a
		// regression regardless of the baseline.
		if c.AllocsPerGet != nil && *c.AllocsPerGet > 0 {
			regs = append(regs, BenchRegression{Kernel: b.Kernel, Config: b.Config, Metric: "allocs_per_get",
				Base: 0, Cur: *c.AllocsPerGet})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Kernel != regs[j].Kernel {
			return regs[i].Kernel < regs[j].Kernel
		}
		if regs[i].Config != regs[j].Config {
			return regs[i].Config < regs[j].Config
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// Render formats the report as the human-readable table occbench
// prints alongside the JSON artifact.
func (r BenchReport) Render() string {
	out := fmt.Sprintf("Benchmark suite (c-opt, %d procs, N2=%d)\n\n", r.Setup.Procs, r.Setup.N2)
	out += fmt.Sprintf("%-8s %-16s %10s %12s %8s %8s %14s %10s\n",
		"kernel", "config", "io-calls", "io-bytes", "hit%", "ovlp%", "sim-seconds", "wall-s")
	for _, e := range r.Results {
		out += fmt.Sprintf("%-8s %-16s %10d %12d %8.1f %8.1f %14.4f %10.3f\n",
			e.Kernel, e.Config, e.IOCalls, e.IOBytes, 100*e.HitRate, 100*e.OverlapFactor,
			e.SimMakespanSeconds, e.WallSeconds)
	}
	for _, f := range r.Failures {
		out += fmt.Sprintf("FAILED  %s/%s: %s\n", f.Kernel, f.Config, f.Error)
	}
	return out
}
