package exp

import (
	"strings"
	"testing"

	"outcore/internal/pfs"
	"outcore/internal/suite"
)

// testOptions keeps harness tests fast: tiny arrays, small PFS.
func testOptions(kernels ...string) Options {
	return Options{
		Cfg:     suite.SmallConfig(),
		Kernels: kernels,
		MemFrac: 16,
		Procs:   4,
		PFS: pfs.Config{
			IONodes:       8,
			StripeElems:   64,
			NodeOverhead:  0.005,
			NodeBandwidth: 100_000,
		},
		IterPerSec: 1e7,
	}
}

func TestTable2SubsetShape(t *testing.T) {
	res, err := Table2(testOptions("mat", "trans"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ColSeconds <= 0 {
			t.Errorf("%s: col seconds %g", row.Kernel, row.ColSeconds)
		}
		if row.Percent[suite.Col] < 99.999 || row.Percent[suite.Col] > 100.001 {
			t.Errorf("%s: col percent %g", row.Kernel, row.Percent[suite.Col])
		}
		// c-opt must not lose to the col baseline.
		if row.Percent[suite.COpt] > 100.0001 {
			t.Errorf("%s: c-opt at %.1f%% of col", row.Kernel, row.Percent[suite.COpt])
		}
		// h-opt must not lose to c-opt.
		if row.Percent[suite.HOpt] > row.Percent[suite.COpt]+0.01 {
			t.Errorf("%s: h-opt %.1f%% > c-opt %.1f%%", row.Kernel, row.Percent[suite.HOpt], row.Percent[suite.COpt])
		}
	}
	out := res.Render()
	for _, want := range []string{"program", "mat", "trans", "average:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable3SubsetShape(t *testing.T) {
	res, err := Table3(testOptions("trans"), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(suite.Versions) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, p := range []int{2, 4} {
			if row.Speedup[p] <= 0 {
				t.Errorf("%s/%s speedup(%d) = %g", row.Kernel, row.Version, p, row.Speedup[p])
			}
		}
	}
	if !strings.Contains(res.Render(), "version") {
		t.Error("render header missing")
	}
}

func TestFigure1(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 connected components", "U", "X"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2(t *testing.T) {
	out := Figure2()
	for _, want := range []string{"col-major  g = (0,1)", "row-major  g = (1,0)", "diagonal", "blocked"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3MatchesPaper(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's exact illustration numbers.
	if res.TraditionalTileCalls != 4 {
		t.Errorf("traditional tile calls = %d, want 4", res.TraditionalTileCalls)
	}
	if res.OOCTileCalls != 2 {
		t.Errorf("OOC tile calls = %d, want 2", res.OOCTileCalls)
	}
	if res.ProgramOOC >= res.ProgramTraditional {
		t.Errorf("program-level OOC %d >= traditional %d", res.ProgramOOC, res.ProgramTraditional)
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing header")
	}
}

func TestTilingAblation(t *testing.T) {
	rows, err := TilingAblation(testOptions("mat", "trans"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OutOfCore > r.Traditional {
			t.Errorf("%s: OOC %d calls > traditional %d", r.Kernel, r.OutOfCore, r.Traditional)
		}
	}
}

func TestMemorySweep(t *testing.T) {
	rows, err := MemorySweep(testOptions(), "mat", []int64{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Less memory -> never fewer calls.
	for i := 1; i < len(rows); i++ {
		if rows[i].Calls < rows[i-1].Calls {
			t.Errorf("calls decreased with smaller memory: %v", rows)
		}
	}
}

func TestOrderAblation(t *testing.T) {
	res, err := OrderAblation(testOptions(), "gfunp")
	if err != nil {
		t.Fatal(err)
	}
	if res.CostOrderCalls <= 0 || res.ReverseOrderCalls <= 0 {
		t.Errorf("ablation = %+v", res)
	}
}

func TestStorageDemo(t *testing.T) {
	out := StorageDemo()
	if !strings.Contains(out, "shear") {
		t.Errorf("storage demo missing shear:\n%s", out)
	}
}

func TestUnknownKernelRejected(t *testing.T) {
	if _, err := Table2(testOptions("nope")); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := MemorySweep(testOptions(), "nope", nil); err == nil {
		t.Error("unknown kernel accepted in sweep")
	}
	if _, err := OrderAblation(testOptions(), "nope"); err == nil {
		t.Error("unknown kernel accepted in order ablation")
	}
}

func TestOptimalAblation(t *testing.T) {
	rows, err := OptimalAblation(testOptions("mat", "trans", "gfunp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OptimalGood < r.CombinedGood {
			t.Errorf("%s: ILP optimum (%d) worse than greedy (%d)", r.Kernel, r.OptimalGood, r.CombinedGood)
		}
		if r.OptimalScore+1e-9 < r.CombinedScore {
			t.Errorf("%s: ILP score %.3f < greedy %.3f", r.Kernel, r.OptimalScore, r.CombinedScore)
		}
		if r.TotalRefs <= 0 {
			t.Errorf("%s: no references", r.Kernel)
		}
	}
}

func TestSizeHistogram(t *testing.T) {
	h := &SizeHistogram{}
	for _, s := range []int64{1, 1, 2, 3, 4, 8, 1024, 0, -5} {
		h.Add(s)
	}
	if h.Total != 7 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Buckets[0] != 2 { // sizes 1
		t.Errorf("bucket[0] = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // sizes 2..3
		t.Errorf("bucket[1] = %d", h.Buckets[1])
	}
	if h.Buckets[10] != 1 { // 1024
		t.Errorf("bucket[10] = %d", h.Buckets[10])
	}
	if h.Mean() < 148 || h.Mean() > 149 {
		t.Errorf("mean = %g", h.Mean())
	}
	if !strings.Contains(h.Render(), "requests") {
		t.Error("render missing summary")
	}
	empty := &SizeHistogram{}
	if empty.Mean() != 0 {
		t.Error("empty mean")
	}
}

func TestTraceHistogramOrdering(t *testing.T) {
	// The optimized version's mean request size must exceed col's:
	// Figure 3's effect expressed as a distribution.
	o := testOptions()
	hc, err := TraceHistogram(o, "trans", suite.Col)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := TraceHistogram(o, "trans", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	if ho.Mean() <= hc.Mean() {
		t.Errorf("c-opt mean %.1f <= col mean %.1f", ho.Mean(), hc.Mean())
	}
	if _, err := TraceHistogram(o, "nope", suite.Col); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestBlockedAblation(t *testing.T) {
	rows, err := BlockedAblation(64, []int64{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// An aligned b x b tile of a blocked(b) layout is one run; the
		// canonical layouts need b runs each.
		wantBlocked := (64 / r.Tile) * (64 / r.Tile)
		if r.BlockedCalls != wantBlocked {
			t.Errorf("tile %d: blocked calls = %d, want %d", r.Tile, r.BlockedCalls, wantBlocked)
		}
		if r.RowCalls != wantBlocked*r.Tile || r.ColCalls != wantBlocked*r.Tile {
			t.Errorf("tile %d: row/col calls = %d/%d, want %d", r.Tile, r.RowCalls, r.ColCalls, wantBlocked*r.Tile)
		}
	}
	if _, err := BlockedAblation(64, []int64{7}); err == nil {
		t.Error("non-dividing tile accepted")
	}
}

func TestBlockedPlanDemo(t *testing.T) {
	out, err := BlockedPlanDemo(16)
	if err != nil {
		t.Fatal(err)
	}
	// A is forced blocked -> its reference loses hyperplane locality; B
	// keeps its optimized layout.
	if !strings.Contains(out, "none locality under blocked") {
		t.Errorf("demo output:\n%s", out)
	}
	if !strings.Contains(out, "spatial") {
		t.Errorf("B lost its locality:\n%s", out)
	}
}
