package exp

import (
	"fmt"

	"outcore/internal/core"
	"outcore/internal/ir"
)

// OptimalRow compares the greedy combined algorithm against the
// ILP-optimal assignment on one kernel: the number of references (out
// of the total) each serves with locality, cost-weighted as in the ILP
// objective.
type OptimalRow struct {
	Kernel        string
	TotalRefs     int
	CombinedGood  int
	OptimalGood   int
	CombinedScore float64 // cost-weighted locality score (higher is better)
	OptimalScore  float64
}

// OptimalAblation measures the gap between the paper's greedy layout
// propagation (Step 3) and the globally optimal ILP assignment the
// conclusion proposes as future work. Kernels whose optimal search
// space is too large are skipped by passing a subset in o.Kernels.
func OptimalAblation(o Options) ([]OptimalRow, error) {
	o.defaults()
	kernels, err := o.kernels()
	if err != nil {
		return nil, err
	}
	var rows []OptimalRow
	for _, k := range kernels {
		row := OptimalRow{Kernel: k.Name}

		progC := k.Build(o.Cfg)
		var oc core.Optimizer
		combined := oc.OptimizeCombined(progC)
		row.TotalRefs, row.CombinedGood, row.CombinedScore = scorePlan(combined, progC)

		progO := k.Build(o.Cfg)
		var oo core.Optimizer
		optimal, err := oo.OptimizeOptimal(progO)
		if err != nil {
			return nil, fmt.Errorf("optimal ablation: %s: %w", k.Name, err)
		}
		_, row.OptimalGood, row.OptimalScore = scorePlan(optimal, progO)
		rows = append(rows, row)
	}
	return rows, nil
}

// scorePlan counts locality-served references and the cost-weighted
// score matching the ILP objective's complement (weight = nest cost,
// normalized by the costliest nest).
func scorePlan(plan *core.Plan, prog *ir.Program) (total, good int, score float64) {
	maxCost := int64(1)
	for _, n := range prog.Nests {
		if c := core.Cost(n); c > maxCost {
			maxCost = c
		}
	}
	for _, rep := range plan.Report(prog, nil) {
		total++
		if rep.Locality != core.NoLocality {
			good++
			score += float64(core.Cost(rep.Nest)) / float64(maxCost)
		}
	}
	return total, good, score
}
