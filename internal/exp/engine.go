package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"outcore/internal/codegen"
	"outcore/internal/ir"
	"outcore/internal/ooc"
	"outcore/internal/suite"
)

// EngineResult compares one kernel's data-backed execution under the
// sequential out-of-core runtime against the concurrent tile engine.
type EngineResult struct {
	Kernel  string
	Version suite.Version

	SeqCalls int64 // backend I/O calls, sequential runtime
	EngCalls int64 // backend I/O calls, cached engine
	SeqElems int64 // elements moved, sequential runtime
	EngElems int64 // elements moved, cached engine

	SeqMaxDiff float64 // sequential result vs in-core reference
	EngMaxDiff float64 // engine result vs in-core reference
	MaxDiff    float64 // engine result vs sequential result (bitwise goal: 0)

	Cache ooc.EngineStats

	SeqTrace []ooc.Request // per-call trace, sequential runtime
	EngTrace []ooc.Request // per-call trace, cached engine
}

// EngineDemo executes the kernel for real (data-backed, in-memory
// files) twice — once through the plain sequential runtime and once
// through the concurrent tile engine configured by o.Workers and
// o.CacheTiles — and reports I/O calls, cache behaviour and result
// fidelity. The kernel's outer timing loop runs Iter times, exactly as
// the simulator's measurements do, so cross-iteration tile reuse shows
// up as cache hits.
func EngineDemo(o Options, kernel string, version suite.Version) (EngineResult, error) {
	o.defaults()
	k, ok := suite.ByName(kernel)
	if !ok {
		return EngineResult{}, fmt.Errorf("exp: unknown kernel %q", kernel)
	}
	res := EngineResult{Kernel: k.Name, Version: version}

	prog := k.Build(o.Cfg)
	plan, err := suite.PlanFor(prog, version)
	if err != nil {
		return EngineResult{}, err
	}
	budget := suite.MemBudget(prog, o.MemFrac)
	opts := codegen.Options{Strategy: suite.StrategyFor(version), MemBudget: budget}

	// Deterministic initial contents, shared by all three executions.
	init := ir.NewStore(prog.Arrays...)
	rng := rand.New(rand.NewSource(1999))
	for _, a := range prog.Arrays {
		d := init.Data(a)
		for i := range d {
			d[i] = rng.Float64()
		}
	}
	ref := init.Clone()
	for it := 0; it < k.Iter; it++ {
		prog.Execute(ref)
	}

	run := func(eng bool) (*ir.Store, ooc.Stats, []ooc.Request, error) {
		d, err := codegen.SetupDisk(prog, plan, o.PFS.StripeElems, init)
		if err != nil {
			return nil, ooc.Stats{}, nil, err
		}
		d.Observe(o.Obs)
		d.Record = true
		procOpts := opts
		procOpts.Obs = o.Obs
		var engine *ooc.Engine
		if eng {
			engine = ooc.NewEngine(d, ooc.EngineOptions{Workers: o.Workers, CacheTiles: o.CacheTiles, Obs: o.Obs})
			procOpts.Engine = engine
		}
		mem := ooc.NewMemory(budget)
		for it := 0; it < k.Iter; it++ {
			if _, err := codegen.RunProgram(prog, plan, d, mem, procOpts); err != nil {
				return nil, ooc.Stats{}, nil, err
			}
		}
		if engine != nil {
			if err := engine.Close(); err != nil {
				return nil, ooc.Stats{}, nil, err
			}
			res.Cache = engine.Stats()
		}
		return codegen.DiskToStore(prog, d), d.Stats.Snapshot(), d.Trace, nil
	}

	seq, seqStats, seqTrace, err := run(false)
	if err != nil {
		return EngineResult{}, fmt.Errorf("exp: sequential run of %s/%s: %w", k.Name, version, err)
	}
	got, engStats, engTrace, err := run(true)
	if err != nil {
		return EngineResult{}, fmt.Errorf("exp: engine run of %s/%s: %w", k.Name, version, err)
	}

	res.SeqCalls, res.SeqElems = seqStats.Calls(), seqStats.ElemsRead+seqStats.ElemsWritten
	res.EngCalls, res.EngElems = engStats.Calls(), engStats.ElemsRead+engStats.ElemsWritten
	res.SeqTrace, res.EngTrace = seqTrace, engTrace
	for _, a := range prog.Arrays {
		if d := ir.MaxAbsDiff(ref, seq, a); d > res.SeqMaxDiff {
			res.SeqMaxDiff = d
		}
		if d := ir.MaxAbsDiff(ref, got, a); d > res.EngMaxDiff {
			res.EngMaxDiff = d
		}
		if d := ir.MaxAbsDiff(seq, got, a); d > res.MaxDiff {
			res.MaxDiff = d
		}
	}
	return res, nil
}

// Render formats the comparison for occbench.
func (r EngineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overlapped I/O: %s (%s) sequential runtime vs concurrent tile engine\n\n", r.Kernel, r.Version)
	fmt.Fprintf(&b, "%-28s %14s %14s\n", "", "sequential", "engine")
	fmt.Fprintf(&b, "%-28s %14d %14d\n", "backend I/O calls", r.SeqCalls, r.EngCalls)
	fmt.Fprintf(&b, "%-28s %14d %14d\n", "elements moved", r.SeqElems, r.EngElems)
	fmt.Fprintf(&b, "%-28s %14.3g %14.3g\n", "max |diff| vs reference", r.SeqMaxDiff, r.EngMaxDiff)
	fmt.Fprintf(&b, "\ncache: %d hits / %d misses (hit rate %.1f%%), %d evictions, %d write-backs\n",
		r.Cache.Hits, r.Cache.Misses, 100*r.Cache.HitRate(), r.Cache.Evictions, r.Cache.Writebacks)
	fmt.Fprintf(&b, "prefetch: %d issued, %d useful (overlap factor %.1f%%)\n",
		r.Cache.PrefetchIssued, r.Cache.PrefetchUseful, 100*r.Cache.OverlapFactor())
	return b.String()
}
