package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"outcore/internal/server"
)

func TestLoadBenchEntryFields(t *testing.T) {
	e := LoadBenchEntry("trans", "serve-c-opt-c8-z1.2", server.LoadResult{
		Requests: 600, OK: 597, Rejected: 3,
		Seconds: 2, Throughput: 298.5,
		P50: 0.001, P99: 0.004,
		PutP50: 0.002, PutP99: 0.006,
		Hits: 590, Misses: 10, HitRate: 590.0 / 600,
		Coalesced:  7,
		RoundTrips: 600, PointRoundTrips: 3600,
		ScanRequests: 400, ScanChunks: 3200,
		BatchRequests: 100, BatchOpsMoved: 800,
	})
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "throughput_rps", "latency_p50_seconds",
		"latency_p99_seconds", "latency_put_p50_seconds",
		"latency_put_p99_seconds", "coalesced_fetches", "rejected",
		"round_trips", "point_round_trips", "scan_requests",
		"scan_chunks", "batch_requests", "batch_ops",
	} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("load entry missing %q: %s", key, raw)
		}
	}
	if e.HitRate != 590.0/600 || e.WallSeconds != 2 {
		t.Errorf("shared fields not carried: %+v", e)
	}
}

// TestServeFieldsAreAdditive pins the backward-compatibility contract:
// pre-serving reports still parse under the same schema string, and
// suite rows do not sprout the serving fields.
func TestServeFieldsAreAdditive(t *testing.T) {
	old := `{"schema":"outcore-bench/v1","setup":{"n2":64,"n3":12,"n4":4,"procs":4,"ionodes":16,"memfrac":128},` +
		`"results":[{"kernel":"mat","config":"engine","io_calls":6656,"io_bytes":262144,` +
		`"hit_rate":0,"overlap_factor":0,"sim_makespan_seconds":38.4,"wall_seconds":0.004}]}`
	rep, err := LoadBenchReport(strings.NewReader(old))
	if err != nil {
		t.Fatalf("pre-serving report no longer parses: %v", err)
	}
	if rep.Results[0].Requests != 0 || rep.Results[0].ThroughputRPS != 0 {
		t.Errorf("old report grew serving values: %+v", rep.Results[0])
	}

	raw, err := json.Marshal(BenchEntry{Kernel: "mat", Config: "engine", IOCalls: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "throughput_rps") || strings.Contains(string(raw), "requests") ||
		strings.Contains(string(raw), "round_trips") {
		t.Errorf("suite row carries serving fields: %s", raw)
	}
}
