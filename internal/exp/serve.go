package exp

import "outcore/internal/server"

// LoadBenchEntry renders one load-harness run as an outcore-bench/v1
// row. The serving-layer fields (requests, throughput, latency
// percentiles, coalesced fetches) are the additive tail of BenchEntry;
// the shared fields it can meaningfully fill (hit_rate, wall_seconds)
// carry the engine-cache delta and wall time of the run. IOCalls and
// SimMakespanSeconds stay zero — load rows are informational and the
// regression gate never compares them.
func LoadBenchEntry(kernel, config string, r server.LoadResult) BenchEntry {
	return BenchEntry{
		Kernel:            kernel,
		Config:            config,
		HitRate:           r.HitRate,
		WallSeconds:       r.Seconds,
		Requests:          int64(r.Requests),
		ThroughputRPS:     r.Throughput,
		LatencyP50Seconds: r.P50,
		LatencyP99Seconds: r.P99,
		PutP50Seconds:     r.PutP50,
		PutP99Seconds:     r.PutP99,
		CoalescedFetches:  r.Coalesced,
		Rejected:          int64(r.Rejected),
		BytesWireRaw:      r.WireRawBytes,
		BytesWire:         r.WireBytes,
		Replicas:          r.Replicas,
		HandoffHints:      r.HandoffHints,
		ReadRepairs:       r.ReadRepairs,
		RoundTrips:        r.RoundTrips,
		PointRoundTrips:   r.PointRoundTrips,
		ScanRequests:      r.ScanRequests,
		ScanChunks:        r.ScanChunks,
		BatchRequests:     r.BatchRequests,
		BatchOps:          r.BatchOpsMoved,
	}
}
