package exp

import (
	"strings"
	"testing"

	"outcore/internal/sim"
	"outcore/internal/suite"
)

// TestEngineEquivalence is the acceptance property for the concurrent
// tile engine: on real data-backed runs, the cached engine must produce
// bitwise-identical arrays to the sequential runtime, with equal or
// fewer backend I/O calls, and a live cache.
func TestEngineEquivalence(t *testing.T) {
	for _, kernel := range []string{"mat", "mxm", "trans", "syr2k"} {
		t.Run(kernel, func(t *testing.T) {
			o := testOptions()
			o.Workers = 4
			o.CacheTiles = 6
			res, err := EngineDemo(o, kernel, suite.COpt)
			if err != nil {
				t.Fatal(err)
			}
			if res.SeqMaxDiff != 0 {
				t.Errorf("sequential runtime diverged from reference by %g", res.SeqMaxDiff)
			}
			if res.EngMaxDiff != 0 {
				t.Errorf("engine diverged from reference by %g", res.EngMaxDiff)
			}
			if res.MaxDiff != 0 {
				t.Errorf("engine diverged from sequential runtime by %g", res.MaxDiff)
			}
			if res.EngCalls > res.SeqCalls {
				t.Errorf("engine issued %d backend calls, sequential %d", res.EngCalls, res.SeqCalls)
			}
			if res.EngElems > res.SeqElems {
				t.Errorf("engine moved %d elements, sequential %d", res.EngElems, res.SeqElems)
			}
			if res.Cache.Hits == 0 {
				t.Errorf("cache saw no hits: %+v", res.Cache)
			}
			if res.Cache.Acquires() != res.Cache.Hits+res.Cache.Misses {
				t.Errorf("inconsistent counters: %+v", res.Cache)
			}
		})
	}
}

// TestEngineGoldenTrace pins the degenerate configuration to the
// sequential runtime exactly: with a one-tile cache and no workers,
// the engine's backend request trace must be identical, call for call,
// to the uncached runtime's — same files, offsets, lengths, directions,
// in the same order.
func TestEngineGoldenTrace(t *testing.T) {
	o := testOptions()
	o.Workers = 0
	o.CacheTiles = 1
	res, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDiff != 0 {
		t.Fatalf("results diverged by %g", res.MaxDiff)
	}
	if len(res.EngTrace) != len(res.SeqTrace) {
		t.Fatalf("trace lengths differ: engine %d vs sequential %d", len(res.EngTrace), len(res.SeqTrace))
	}
	for i := range res.SeqTrace {
		if res.EngTrace[i] != res.SeqTrace[i] {
			t.Fatalf("trace diverges at call %d: engine %+v vs sequential %+v",
				i, res.EngTrace[i], res.SeqTrace[i])
		}
	}
}

// TestEngineTinyCachePrefetchDeclined is the regression test for the
// capacity gate: with a cache too small to hold the working set plus
// the prefetched tiles, prefetching evicts tiles before use and
// inflates the call count past the sequential runtime. The engine must
// decline to prefetch instead and stay at exactly the sequential call
// count, workers or not.
func TestEngineTinyCachePrefetchDeclined(t *testing.T) {
	o := testOptions()
	o.Workers = 4
	o.CacheTiles = 1
	res, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDiff != 0 {
		t.Errorf("results diverged by %g", res.MaxDiff)
	}
	if res.Cache.PrefetchIssued != 0 {
		t.Errorf("prefetched %d tiles into a 1-tile cache", res.Cache.PrefetchIssued)
	}
	if res.EngCalls != res.SeqCalls {
		t.Errorf("1-tile cache issued %d calls, sequential %d", res.EngCalls, res.SeqCalls)
	}
}

// TestEngineDemoRender checks the occbench-facing summary carries the
// numbers the acceptance criteria ask to see.
func TestEngineDemoRender(t *testing.T) {
	o := testOptions()
	o.Workers = 2
	o.CacheTiles = 8
	res, err := EngineDemo(o, "mxm", suite.COpt)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"backend I/O calls", "hit rate", "overlap factor", "mxm"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if res.Cache.HitRate() <= 0 {
		t.Errorf("hit rate %v, want > 0 on mxm", res.Cache.HitRate())
	}
}

// TestSimCachedMeasurement routes a simulator measurement through the
// tile cache and checks the cached request stream is what the PFS sees:
// fewer (or equal) calls, a populated Cache block, and a makespan that
// does not lose to the uncached run.
func TestSimCachedMeasurement(t *testing.T) {
	o := testOptions()
	k, _ := suite.ByName("mxm")
	base := sim.Setup{
		Kernel: k, Cfg: o.Cfg, Version: suite.COpt, Procs: 2,
		MemFrac: o.MemFrac, PFS: o.PFS, IterPerSec: o.IterPerSec,
	}
	plain, err := sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.CacheTiles = 8
	got, err := sim.Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache.Hits == 0 {
		t.Errorf("cached measurement saw no hits: %+v", got.Cache)
	}
	if plain.Cache.Acquires() != 0 {
		t.Errorf("uncached measurement has cache stats: %+v", plain.Cache)
	}
	if got.Calls > plain.Calls {
		t.Errorf("cached run issued %d calls, uncached %d", got.Calls, plain.Calls)
	}
	if got.Seconds > plain.Seconds*1.0001 {
		t.Errorf("cached run slower: %.6fs vs %.6fs", got.Seconds, plain.Seconds)
	}
}
