// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 4) from the simulated
// platform, in the paper's own report format.
//
//	Table 1  — kernel inventory (from internal/suite)
//	Table 2  — execution time on 16 processors: col in seconds, the
//	           other five versions as a percentage of col, plus the
//	           column averages
//	Table 3  — speedups at 16/32/64/128 processors relative to each
//	           version's own single-node run
//	Figure 1 — normalization + interference-graph components
//	Figure 2 — file layouts and their hyperplane vectors
//	Figure 3 — I/O calls per tile under traditional vs out-of-core
//	           tiling
//
// Absolute seconds depend on the simulator's constants; the claims
// under test are the relative shapes (orderings, ratios, crossover
// points), which EXPERIMENTS.md compares against the paper.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"outcore/internal/obs"
	"outcore/internal/pfs"
	"outcore/internal/sim"
	"outcore/internal/suite"
)

// Options configures a harness run.
type Options struct {
	Cfg        suite.Config
	PFS        pfs.Config
	MemFrac    int64
	IterPerSec float64
	Kernels    []string // subset of kernel names; nil = all ten
	Procs      int      // Table-2 processor count (paper: 16)
	// CacheTiles > 0 runs every measurement through the concurrent tile
	// engine's LRU cache of that capacity (occbench -cache-tiles);
	// Workers sizes its I/O worker pool (occbench -workers).
	CacheTiles int
	Workers    int
	// Obs observes every measurement the harness runs: trace events
	// from the engine/PFS and metrics registry series (occbench's
	// -trace-out / -metrics-out flags hang off it).
	Obs *obs.Sink
	// Configs overrides the suite's configuration axis (nil = the full
	// BenchConfigs matrix). occbench -suite -compress uses it to run
	// just the engine / engine-compress pair whose byte counters the
	// CI compression gate reads.
	Configs []BenchRunConfig
}

// Defaults fills unset fields with paper-scale values.
func (o *Options) defaults() {
	if o.Cfg == (suite.Config{}) {
		o.Cfg = suite.DefaultConfig()
	}
	if o.PFS.IONodes == 0 {
		o.PFS = ScaledPFS(o.Cfg.N2, 64)
	}
	if o.MemFrac == 0 {
		o.MemFrac = 128
	}
	if o.IterPerSec == 0 {
		o.IterPerSec = 5e6
	}
	if o.Procs == 0 {
		o.Procs = 16
	}
}

// ScaledPFS returns a PFS configuration whose geometry scales with the
// array extent so the call-size economics stay balanced at reduced
// problem sizes: the stripe is kept at 2x the array dimension (64 KB
// vs 4096 doubles on the Paragon), and the per-element transfer time
// is fixed at a quarter of the per-request overhead. The balance keeps
// the execution-time ratios between versions in the paper's range:
// call-count reductions matter (the paper's thesis) without letting a
// 100x call-count gap translate into a 100x time gap, because every
// version still has to move roughly the same bytes through the same
// I/O nodes.
func ScaledPFS(n2 int64, ioNodes int) pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.IONodes = ioNodes
	cfg.NodeBandwidth = 500 // elements/s/node: 2 ms per element, 8 ms per request
	if n2 > 0 {
		cfg.StripeElems = 2 * n2
	}
	return cfg
}

func (o *Options) kernels() ([]suite.Kernel, error) {
	if len(o.Kernels) == 0 {
		return suite.Kernels, nil
	}
	var out []suite.Kernel
	for _, name := range o.Kernels {
		k, ok := suite.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown kernel %q", name)
		}
		out = append(out, k)
	}
	return out, nil
}

func (o Options) setup(k suite.Kernel, v suite.Version, procs int) sim.Setup {
	return sim.Setup{
		Kernel:     k,
		Cfg:        o.Cfg,
		Version:    v,
		Procs:      procs,
		MemFrac:    o.MemFrac,
		PFS:        o.PFS,
		IterPerSec: o.IterPerSec,
		CacheTiles: o.CacheTiles,
		Workers:    o.Workers,
		Obs:        o.Obs,
	}
}

// Table2Row is one kernel's Table-2 entry.
type Table2Row struct {
	Kernel     string
	ColSeconds float64
	// Percent holds each version's execution time as a percentage of
	// col (col itself is 100).
	Percent map[suite.Version]float64
	Calls   map[suite.Version]int64
}

// Table2Result is the full table plus the paper's average row.
type Table2Result struct {
	Rows    []Table2Row
	Average map[suite.Version]float64
}

// Table2 measures all versions of the selected kernels on o.Procs
// processors.
func Table2(o Options) (Table2Result, error) {
	o.defaults()
	kernels, err := o.kernels()
	if err != nil {
		return Table2Result{}, err
	}
	var res Table2Result
	sums := map[suite.Version]float64{}
	for _, k := range kernels {
		row := Table2Row{
			Kernel:  k.Name,
			Percent: map[suite.Version]float64{},
			Calls:   map[suite.Version]int64{},
		}
		times := map[suite.Version]float64{}
		for _, v := range suite.Versions {
			m, err := sim.Run(o.setup(k, v, o.Procs))
			if err != nil {
				return Table2Result{}, fmt.Errorf("table 2: %s/%s: %w", k.Name, v, err)
			}
			times[v] = m.Seconds
			row.Calls[v] = m.Calls
		}
		row.ColSeconds = times[suite.Col]
		for _, v := range suite.Versions {
			row.Percent[v] = 100 * times[v] / times[suite.Col]
			sums[v] += row.Percent[v]
		}
		res.Rows = append(res.Rows, row)
	}
	res.Average = map[suite.Version]float64{}
	for _, v := range suite.Versions {
		res.Average[v] = sums[v] / float64(len(res.Rows))
	}
	return res, nil
}

// Render formats the table like the paper's Table 2 (col in seconds,
// the rest as percentages).
func (r Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s", "program", "col(s)")
	for _, v := range suite.Versions[1:] {
		fmt.Fprintf(&b, " %8s", v)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.2f", row.Kernel, row.ColSeconds)
		for _, v := range suite.Versions[1:] {
			fmt.Fprintf(&b, " %8.1f", row.Percent[v])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s %10s", "average:", "")
	for _, v := range suite.Versions[1:] {
		fmt.Fprintf(&b, " %8.1f", r.Average[v])
	}
	b.WriteByte('\n')
	return b.String()
}

// Table3Row is one kernel+version speedup series.
type Table3Row struct {
	Kernel  string
	Version suite.Version
	Speedup map[int]float64 // procs -> speedup vs own 1-proc run
}

// Table3Result is the speedup table.
type Table3Result struct {
	Procs []int
	Rows  []Table3Row
}

// Table3 measures speedups for the selected kernels at the given
// processor counts (paper: 16, 32, 64, 128 with 64 I/O nodes).
func Table3(o Options, procs []int) (Table3Result, error) {
	o.defaults()
	if len(procs) == 0 {
		procs = []int{16, 32, 64, 128}
	}
	kernels, err := o.kernels()
	if err != nil {
		return Table3Result{}, err
	}
	res := Table3Result{Procs: procs}
	for _, k := range kernels {
		for _, v := range suite.Versions {
			sp, err := sim.Speedups(o.setup(k, v, 1), procs)
			if err != nil {
				return Table3Result{}, fmt.Errorf("table 3: %s/%s: %w", k.Name, v, err)
			}
			res.Rows = append(res.Rows, Table3Row{Kernel: k.Name, Version: v, Speedup: sp})
		}
	}
	return res, nil
}

// Render formats the speedup table like the paper's Table 3.
func (r Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s", "program", "version")
	procs := append([]int(nil), r.Procs...)
	sort.Ints(procs)
	for _, p := range procs {
		fmt.Fprintf(&b, " %8d", p)
	}
	b.WriteByte('\n')
	prev := ""
	for _, row := range r.Rows {
		name := ""
		if row.Kernel != prev {
			name = row.Kernel
			prev = row.Kernel
		}
		fmt.Fprintf(&b, "%-10s %-8s", name, row.Version)
		for _, p := range procs {
			fmt.Fprintf(&b, " %8.1f", row.Speedup[p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
