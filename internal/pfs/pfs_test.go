package pfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func cfgSmall() Config {
	return Config{IONodes: 4, StripeElems: 8, NodeOverhead: 0.01, NodeBandwidth: 1000}
}

func TestSingleOpTiming(t *testing.T) {
	cfg := cfgSmall()
	res, err := Simulate(cfg, []ProcWorkload{{Ops: []Op{Call("A", 0, 8, false)}}})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ProcOverhead + cfg.NodeOverhead + 8/cfg.NodeBandwidth
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}
	if res.TotalOps != 1 || res.TotalSubops != 1 {
		t.Errorf("ops %d subops %d", res.TotalOps, res.TotalSubops)
	}
}

func TestOpSplitAcrossStripes(t *testing.T) {
	cfg := cfgSmall()
	// 20 elements from offset 4: chunks 4, 8, 8 over three stripes.
	res, err := Simulate(cfg, []ProcWorkload{{Ops: []Op{Call("A", 4, 20, false)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSubops != 3 {
		t.Errorf("subops = %d, want 3", res.TotalSubops)
	}
	// Different stripes hit different nodes, so subrequests overlap: the
	// makespan is the slowest chunk, all issued together after the call
	// overhead.
	want := cfg.ProcOverhead + cfg.NodeOverhead + 8/cfg.NodeBandwidth
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}
}

func TestFIFOContentionSameNode(t *testing.T) {
	cfg := cfgSmall()
	// Two processors hitting the SAME stripe serialize.
	op := Call("A", 0, 8, false)
	res, err := Simulate(cfg, []ProcWorkload{{Ops: []Op{op}}, {Ops: []Op{op}}})
	if err != nil {
		t.Fatal(err)
	}
	// Both procs issue at the same instant; the node serializes the two
	// subrequests, so the slower proc finishes one node-service later.
	one := cfg.ProcOverhead + cfg.NodeOverhead + 8/cfg.NodeBandwidth
	want := one + cfg.NodeOverhead + 8/cfg.NodeBandwidth
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("contended makespan = %g, want %g", res.Makespan, want)
	}
	// Disjoint stripes of the same file run in parallel.
	res2, _ := Simulate(cfg, []ProcWorkload{
		{Ops: []Op{Call("A", 0, 8, false)}},
		{Ops: []Op{Call("A", 8, 8, false)}},
	})
	if math.Abs(res2.Makespan-one) > 1e-12 {
		t.Errorf("parallel makespan = %g, want %g", res2.Makespan, one)
	}
}

func TestComputeInterleaving(t *testing.T) {
	cfg := cfgSmall()
	// One op, 1 second of compute: half before, half after.
	res, err := Simulate(cfg, []ProcWorkload{{
		Ops:            []Op{Call("A", 0, 8, false)},
		ComputeSeconds: 1.0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + cfg.ProcOverhead + cfg.NodeOverhead + 8/cfg.NodeBandwidth
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}
}

func TestComputeOnlyProcessor(t *testing.T) {
	res, err := Simulate(cfgSmall(), []ProcWorkload{{ComputeSeconds: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2.5) > 1e-12 {
		t.Errorf("compute-only makespan = %g", res.Makespan)
	}
}

func TestFewerCallsFaster(t *testing.T) {
	// The paper's core effect: the same data volume in fewer, larger
	// calls finishes sooner (per-call overhead dominates).
	cfg := DefaultConfig()
	var many, few []Op
	for i := int64(0); i < 64; i++ {
		many = append(many, Call("A", i*128, 128, false))
	}
	for i := int64(0); i < 2; i++ {
		few = append(few, Call("A", i*4096, 4096, false))
	}
	rm, _ := Simulate(cfg, []ProcWorkload{{Ops: many}})
	rf, _ := Simulate(cfg, []ProcWorkload{{Ops: few}})
	if rf.Makespan >= rm.Makespan {
		t.Errorf("few-calls %g >= many-calls %g", rf.Makespan, rm.Makespan)
	}
}

func TestScalingSaturatesAtIONodes(t *testing.T) {
	// With more processors than I/O nodes all doing I/O, speedup stalls.
	cfg := Config{IONodes: 4, StripeElems: 8, NodeOverhead: 0.01, NodeBandwidth: 1000}
	mkProcs := func(p int) []ProcWorkload {
		procs := make([]ProcWorkload, p)
		for i := range procs {
			// Each processor reads its own region (distinct stripes).
			procs[i] = ProcWorkload{Ops: []Op{Call("A", int64(i)*8, 8, false)}}
		}
		return procs
	}
	r4, _ := Simulate(cfg, mkProcs(4))
	r16, _ := Simulate(cfg, mkProcs(16))
	// 16 procs over 4 nodes: each node serves 4 requests -> ~4x the
	// 4-proc makespan.
	if r16.Makespan < 3.5*r4.Makespan {
		t.Errorf("contention too weak: %g vs %g", r16.Makespan, r4.Makespan)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Simulate(Config{}, nil); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPerProcAndNodeBusyAccounting(t *testing.T) {
	cfg := cfgSmall()
	res, err := Simulate(cfg, []ProcWorkload{
		{Ops: []Op{Call("A", 0, 8, false)}},
		{Ops: []Op{Call("A", 8, 8, false)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProc) != 2 || len(res.NodeBusy) != cfg.IONodes {
		t.Fatal("result shapes wrong")
	}
	var busy float64
	for _, b := range res.NodeBusy {
		busy += b
	}
	want := 2 * (cfg.NodeOverhead + 8/cfg.NodeBandwidth) // node busy excludes proc overhead
	if math.Abs(busy-want) > 1e-12 {
		t.Errorf("total busy = %g, want %g", busy, want)
	}
	if res.MaxNodeBusy() <= 0 {
		t.Error("MaxNodeBusy zero")
	}
}

func TestPropertyConservation(t *testing.T) {
	// Makespan is at least the per-processor serial I/O lower bound
	// divided by available parallelism, and at least any single
	// processor's own work.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			IONodes:       1 + rng.Intn(8),
			StripeElems:   int64(4 << rng.Intn(4)),
			NodeOverhead:  0.001 + rng.Float64()*0.01,
			NodeBandwidth: 100 + rng.Float64()*10000,
		}
		np := 1 + rng.Intn(6)
		procs := make([]ProcWorkload, np)
		for p := range procs {
			ops := rng.Intn(5)
			for o := 0; o < ops; o++ {
				procs[p].Ops = append(procs[p].Ops, Call("F", int64(rng.Intn(100)), int64(1+rng.Intn(40)), false))
			}
			procs[p].ComputeSeconds = rng.Float64()
		}
		res, err := Simulate(cfg, procs)
		if err != nil {
			return false
		}
		// Lower bound: each processor's own compute + service time of its
		// ops run back-to-back with no contention.
		for p, w := range procs {
			min := w.ComputeSeconds
			for range w.Ops {
				// An op's stripe chunks may run in parallel across nodes, but
				// the processor always waits for at least one full service
				// overhead before issuing its next op.
				min += cfg.NodeOverhead
			}
			if res.PerProc[p] < min-1e-9 {
				return false
			}
		}
		// Makespan >= max node busy (a node cannot finish before serving
		// its queue).
		return res.Makespan >= res.MaxNodeBusy()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
