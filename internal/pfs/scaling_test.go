package pfs

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomWorkload builds a reproducible multi-processor workload mixing
// several files, offsets, lengths, read/write direction and compute
// phases — the same shape the sim package feeds Simulate.
func randomWorkload(rng *rand.Rand) []ProcWorkload {
	files := []string{"A", "B", "C", "D"}
	nprocs := 1 + rng.Intn(8)
	procs := make([]ProcWorkload, nprocs)
	for p := range procs {
		nops := 1 + rng.Intn(40)
		ops := make([]Op, nops)
		for i := range ops {
			ops[i] = Call(
				files[rng.Intn(len(files))],
				int64(rng.Intn(4096)),
				1+int64(rng.Intn(512)),
				rng.Intn(2) == 0,
			)
		}
		procs[p] = ProcWorkload{Ops: ops, ComputeSeconds: rng.Float64() * 0.01}
	}
	return procs
}

// TestPropertyMakespanScalesWithIONodes checks that adding I/O nodes
// does not make the simulated makespan meaningfully worse.
//
// Strict monotonicity is FALSE for this simulator — and for any FIFO
// discrete-event model of this kind: with more nodes the stripe mapping
// (off/stripeElems + fileBase) % nodes reshuffles which requests share
// a queue, and Graham-type scheduling anomalies can lengthen the
// critical path slightly even though aggregate capacity grew. Probing
// 3000 random workloads over doubling node counts put the worst
// observed regression at ratio 1.0544, so the pairwise assertion allows
// 1.10 (2x headroom over the worst anomaly): a real scheduler bug —
// lost parallelism, double-counted service time, a queue that stops
// draining — blows well past it. The end-to-end check is strict:
// massive parallelism must never lose to a single node.
func TestPropertyMakespanScalesWithIONodes(t *testing.T) {
	nodeCounts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	const tolerance = 1.10

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		procs := randomWorkload(rng)
		spans := make([]float64, len(nodeCounts))
		for i, n := range nodeCounts {
			cfg := DefaultConfig()
			cfg.IONodes = n
			cfg.StripeElems = 64
			res, err := Simulate(cfg, procs)
			if err != nil {
				t.Fatalf("trial %d, %d nodes: %v", trial, n, err)
			}
			if res.Makespan <= 0 {
				t.Fatalf("trial %d, %d nodes: non-positive makespan %v", trial, n, res.Makespan)
			}
			spans[i] = res.Makespan
		}
		for i := 1; i < len(spans); i++ {
			if spans[i] > spans[i-1]*tolerance {
				t.Errorf("trial %d: makespan rose %d->%d nodes: %.6f -> %.6f (ratio %.4f > %.2f)",
					trial, nodeCounts[i-1], nodeCounts[i], spans[i-1], spans[i],
					spans[i]/spans[i-1], tolerance)
			}
		}
		if last, first := spans[len(spans)-1], spans[0]; last > first {
			t.Errorf("trial %d: %d nodes slower than 1 node: %.6f > %.6f",
				trial, nodeCounts[len(nodeCounts)-1], last, first)
		}
	}
}

// TestPropertyMakespanSaturates checks the other end of the scaling
// curve: once the node count passes the total number of distinct
// (file, stripe) queues a workload can occupy, adding more nodes
// changes only the stripe mapping, and a single processor's serial
// chain bounds the makespan from below by its own service demand.
func TestPropertyMakespanSaturates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StripeElems = 64
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		procs := randomWorkload(rng)
		// Serial lower bound: every proc must at least perform its own
		// compute plus per-request overhead on an infinitely wide PFS.
		var lower float64
		for _, p := range procs {
			demand := p.ComputeSeconds + float64(len(p.Ops))*cfg.NodeOverhead
			for _, op := range p.Ops {
				demand += float64(op.First.Len) / cfg.NodeBandwidth
			}
			if demand > lower {
				lower = demand
			}
		}
		cfg.IONodes = 1024
		res, err := Simulate(cfg, procs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < lower*0.999 {
			t.Errorf("trial %d: makespan %.6f beat the serial lower bound %.6f",
				trial, res.Makespan, lower)
		}
	}
}

// TestMakespanScalingExample pins one concrete scaling curve so a
// simulator change that flattens scaling (not just reorders queues)
// fails loudly with the actual numbers.
func TestMakespanScalingExample(t *testing.T) {
	procs := make([]ProcWorkload, 8)
	for p := range procs {
		var ops []Op
		for i := 0; i < 16; i++ {
			ops = append(ops, Call(fmt.Sprintf("f%d", i%4), int64(i*64), 64, i%2 == 0))
		}
		procs[p] = ProcWorkload{Ops: ops}
	}
	cfg := DefaultConfig()
	cfg.StripeElems = 64
	cfg.IONodes = 1
	one, err := Simulate(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IONodes = 16
	sixteen, err := Simulate(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := one.Makespan / sixteen.Makespan; speedup < 4 {
		t.Errorf("16 I/O nodes gave only %.2fx over 1 node (want >= 4x): %.6f vs %.6f",
			speedup, one.Makespan, sixteen.Makespan)
	}
}
