// Package pfs is a discrete-event simulator of a striped parallel file
// system in the style of the Intel Paragon's PFS, which the paper's
// experiments ran on: files are striped over a fixed set of I/O nodes
// in fixed-size stripe units (64 KB on the Paragon), each I/O node
// serves its queue FIFO, and every request pays a per-call overhead
// plus a bandwidth term.
//
// Processors issue their I/O operations synchronously (the next
// operation starts only when the previous one and the interleaved
// compute finished), which is how the PASSION-generated codes behave.
// Contention emerges naturally: more processors than I/O nodes queue up
// on the same stripes, so versions that issue fewer, larger calls
// scale further — the effect behind the paper's Table 3.
package pfs

import (
	"container/heap"
	"fmt"

	"outcore/internal/obs"
)

// elemBytes is the byte size of one element (float64), mirrored from
// the ooc runtime (pfs deliberately has no dependency on it).
const elemBytes = 8

// Config describes the simulated I/O subsystem.
type Config struct {
	IONodes       int     // number of I/O nodes (64 in the paper)
	StripeElems   int64   // stripe unit, in elements (64 KB / 8 B = 8192)
	ProcOverhead  float64 // seconds of software path per I/O CALL at the processor
	NodeOverhead  float64 // seconds of fixed cost per subrequest at a node (seek)
	NodeBandwidth float64 // elements per second per I/O node

	// Obs, when non-nil, observes the simulation: every stripe-level
	// subrequest is emitted as a KindPFSRequest trace event in VIRTUAL
	// time (Track = I/O node index), and the registry accumulates
	// "pfs_*" counters plus the subrequest-size histogram and the
	// makespan gauge.
	Obs *obs.Sink
}

// DefaultConfig mirrors the paper's platform: 64 I/O nodes, 64 KB
// stripes, mid-1990s RAID service times. A singleton call costs
// ProcOverhead + NodeOverhead = 8 ms before transfer.
func DefaultConfig() Config {
	return Config{
		IONodes:       64,
		StripeElems:   8192,    // 64 KB of float64
		ProcOverhead:  0.002,   // 2 ms software I/O-call path
		NodeOverhead:  0.006,   // 6 ms seek per subrequest
		NodeBandwidth: 400_000, // ~3.2 MB/s per I/O node
	}
}

func (c Config) validate() error {
	if c.IONodes <= 0 || c.StripeElems <= 0 || c.NodeBandwidth <= 0 || c.NodeOverhead < 0 || c.ProcOverhead < 0 {
		return fmt.Errorf("pfs: invalid config IONodes=%d StripeElems=%d ProcOverhead=%g NodeOverhead=%g NodeBandwidth=%g",
			c.IONodes, c.StripeElems, c.ProcOverhead, c.NodeOverhead, c.NodeBandwidth)
	}
	return nil
}

// simMetrics are the registry series one Simulate call feeds.
type simMetrics struct {
	ops, subops *obs.Counter
	subopElems  *obs.Histogram
	makespan    *obs.Gauge
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	return &simMetrics{
		ops:    reg.Counter("pfs_ops_total", "I/O operations issued to the simulated PFS"),
		subops: reg.Counter("pfs_subops_total", "stripe-level subrequests after splitting"),
		subopElems: reg.Histogram("pfs_subop_elems",
			"elements served per stripe-level subrequest", obs.ExpBuckets(1, 4, 10)),
		makespan: reg.Gauge("pfs_makespan_seconds", "makespan of the most recent simulation"),
	}
}

// Extent is one contiguous file range, in elements.
type Extent struct {
	File string
	Off  int64
	Len  int64
}

// Op is one I/O call issued by a processor. A plain call has a single
// extent (stored inline to keep multi-million-op workloads compact);
// hand-optimized (chunked/interleaved) calls carry additional extents
// that are dispatched together: the call pays the processor overhead
// once, while each extent still reaches its own stripes.
type Op struct {
	First Extent
	More  []Extent // nil for plain single-extent calls
	Write bool
}

// Call builds a single-extent operation.
func Call(file string, off, length int64, write bool) Op {
	return Op{First: Extent{File: file, Off: off, Len: length}, Write: write}
}

// forEachExtent visits the op's extents in order.
func (o *Op) forEachExtent(f func(Extent)) {
	f(o.First)
	for _, e := range o.More {
		f(e)
	}
}

// ProcWorkload is one processor's activity: its ordered I/O operations
// and the total compute time, which the simulator spreads evenly
// between consecutive operations (the tiled codes alternate I/O and
// compute at tile granularity).
type ProcWorkload struct {
	Ops            []Op
	ComputeSeconds float64
}

// Result summarizes a simulation.
type Result struct {
	Makespan    float64   // completion time of the slowest processor
	PerProc     []float64 // completion time per processor
	NodeBusy    []float64 // total busy seconds per I/O node
	TotalOps    int64     // ops issued
	TotalSubops int64     // stripe-level subrequests after splitting
}

// MaxNodeBusy returns the busiest I/O node's total service time.
func (r Result) MaxNodeBusy() float64 {
	var m float64
	for _, b := range r.NodeBusy {
		if b > m {
			m = b
		}
	}
	return m
}

// procEvent orders processors by the time they become ready to issue
// their next operation.
type procEvent struct {
	ready float64
	proc  int
	seq   int64 // tie-break: deterministic FIFO
}

type eventHeap []procEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(procEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// fileBase spreads different files' stripe 0 across the I/O nodes
// (FNV-1a of the name), as a real PFS does with round-robin start
// nodes.
func fileBase(name string, nodes int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(nodes))
}

// Simulate runs the discrete-event simulation and returns per-processor
// completion times and node utilization.
func Simulate(cfg Config, procs []ProcWorkload) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	res := Result{
		PerProc:  make([]float64, len(procs)),
		NodeBusy: make([]float64, cfg.IONodes),
	}
	trace := cfg.Obs.TraceOf()
	met := newSimMetrics(cfg.Obs.MetricsOf())
	nodeFree := make([]float64, cfg.IONodes)
	next := make([]int, len(procs))    // next op index per proc
	gap := make([]float64, len(procs)) // compute delay between ops
	var h eventHeap
	var seq int64
	for p, w := range procs {
		slots := len(w.Ops) + 1
		gap[p] = w.ComputeSeconds / float64(slots)
		// First compute slice happens before the first op.
		heap.Push(&h, procEvent{ready: gap[p], proc: p, seq: seq})
		seq++
		res.TotalOps += int64(len(w.Ops))
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(procEvent)
		p := ev.proc
		if next[p] >= len(procs[p].Ops) {
			res.PerProc[p] = ev.ready
			continue
		}
		op := procs[p].Ops[next[p]]
		next[p]++
		// The processor pays the software call path once per op, then
		// every extent is split over stripes; each chunk is a subrequest
		// served FIFO by its node. The op completes when all chunks do.
		issue := ev.ready + cfg.ProcOverhead
		done := issue
		op.forEachExtent(func(ext Extent) {
			off := ext.Off
			remaining := ext.Len
			base := fileBase(ext.File, cfg.IONodes)
			for remaining > 0 {
				stripe := off / cfg.StripeElems
				node := int((stripe + int64(base)) % int64(cfg.IONodes))
				chunk := cfg.StripeElems - off%cfg.StripeElems
				if chunk > remaining {
					chunk = remaining
				}
				start := issue
				if nodeFree[node] > start {
					start = nodeFree[node]
				}
				service := cfg.NodeOverhead + float64(chunk)/cfg.NodeBandwidth
				finish := start + service
				nodeFree[node] = finish
				res.NodeBusy[node] += service
				if finish > done {
					done = finish
				}
				if trace != nil {
					trace.Emit(obs.Event{Kind: obs.KindPFSRequest, Track: int32(node), Name: ext.File,
						Start: int64(start * 1e9), Dur: int64(service * 1e9), Bytes: chunk * elemBytes})
				}
				if met != nil {
					met.subopElems.Observe(float64(chunk))
				}
				off += chunk
				remaining -= chunk
				res.TotalSubops++
			}
		})
		heap.Push(&h, procEvent{ready: done + gap[p], proc: p, seq: seq})
		seq++
	}
	for _, t := range res.PerProc {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	if met != nil {
		met.ops.Add(res.TotalOps)
		met.subops.Add(res.TotalSubops)
		met.makespan.Set(res.Makespan)
	}
	return res, nil
}
