package cluster

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/server"
)

var update = flag.Bool("update", false, "rewrite the golden schema files from the live responses")

// goldenCluster builds an observed two-node cluster and runs one write
// and one read through the router, so the /v1/stats scorecard and every
// occrouter_*/ooc_cluster_* metric family is registered and live.
func goldenCluster(t *testing.T) *LocalCluster {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	lc, err := NewLocal(LocalOptions{
		Nodes:       2,
		Replicas:    2,
		TileDim:     4,
		DurablePuts: true,
		Seed:        99,
		Obs:         sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.CreateArray("A", 8, 8); err != nil {
		t.Fatal(err)
	}
	cli := lc.Client()
	box := layout.Box{Lo: []int64{0, 0}, Hi: []int64{4, 4}}
	if _, _, err := cli.PutTile("A", box, make([]float64, 16), 0, true); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if _, _, err := cli.GetTile("A", box, true); err != nil {
		t.Fatalf("seed get: %v", err)
	}
	return lc
}

// keyPaths flattens a decoded JSON object into sorted dotted key paths,
// mirroring the server package's golden idiom; array elements collapse
// to "[]" — the schema is about field names, not traffic.
func keyPaths(prefix string, v any, out *[]string) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			keyPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			keyPaths(prefix+"[]", child, out)
			break // one element shows the shape
		}
	default:
		*out = append(*out, prefix)
	}
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	sort.Strings(got)
	text := strings.Join(got, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/cluster/ -run Golden -update` after an intentional schema change)", err)
	}
	if string(want) != text {
		t.Errorf("%s drifted from the golden schema.\n got:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with -update (and update TUTORIAL.md's cluster examples).",
			name, text, want)
	}
}

func goldenGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s\n%s", url, resp.Status, body)
	}
	return body
}

// TestStatsGoldenClusterSchema pins the occrouter /v1/stats shape: the
// occd-mirroring top-level keys (engine, hit_rate, requests, ...) that
// let occload's scorecard work unchanged, plus the cluster block and
// per-node status array. Adding, renaming, or dropping a key is an API
// change and must update the golden deliberately.
func TestStatsGoldenClusterSchema(t *testing.T) {
	lc := goldenCluster(t)
	out := goldenGet(t, lc.RouterURL+"/v1/stats")
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	cl, ok := decoded["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("router /v1/stats has no cluster block:\n%s", out)
	}
	if n, _ := cl["nodes"].(float64); n != 2 {
		t.Errorf("cluster.nodes = %v, want 2", cl["nodes"])
	}
	if nodes, ok := decoded["nodes"].([]any); !ok || len(nodes) != 2 {
		t.Errorf("router /v1/stats nodes array: got %v, want one entry per node", decoded["nodes"])
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_cluster.golden", keys)
}

// goldenTenantCluster is goldenCluster with the tenant plane pushed to
// the router and both nodes, and the seed traffic billed to a tenant —
// so the router's tenants scorecard and occrouter_tenant_* families
// are registered and live.
func goldenTenantCluster(t *testing.T) *LocalCluster {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	lc, err := NewLocal(LocalOptions{
		Nodes:       2,
		Replicas:    2,
		TileDim:     4,
		DurablePuts: true,
		Seed:        99,
		Tenants: server.TenantConfig{
			Weights:         map[string]float64{"batch": 1, "interactive": 4},
			MaxScanInflight: 2,
		},
		Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.CreateArray("A", 8, 8); err != nil {
		t.Fatal(err)
	}
	cli := lc.Client().ForTenant("interactive")
	box := layout.Box{Lo: []int64{0, 0}, Hi: []int64{4, 4}}
	if _, _, err := cli.PutTile("A", box, make([]float64, 16), 0, true); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if _, _, err := cli.GetTile("A", box, true); err != nil {
		t.Fatalf("seed get: %v", err)
	}
	return lc
}

// TestStatsGoldenTenantClusterSchema pins the router's tenanted
// /v1/stats shape: the tenants array rides next to the cluster block
// with the same keys occd exposes, so the occload scorecard reads
// either plane identically.
func TestStatsGoldenTenantClusterSchema(t *testing.T) {
	lc := goldenTenantCluster(t)
	out := goldenGet(t, lc.RouterURL+"/v1/stats")
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	tenants, ok := decoded["tenants"].([]any)
	if !ok {
		t.Fatalf("tenant-configured router's /v1/stats has no tenants array:\n%s", out)
	}
	if len(tenants) != 2 {
		t.Errorf("tenants array has %d entries, want 2 (batch + interactive)", len(tenants))
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_tenant_cluster.golden", keys)
}

// TestMetricsGoldenTenantClusterSchema pins the occrouter_tenant_*
// families a tenant-configured router adds to /metrics, including the
// eagerly registered series of the idle weighted tenant.
func TestMetricsGoldenTenantClusterSchema(t *testing.T) {
	lc := goldenTenantCluster(t)
	out := string(goldenGet(t, lc.RouterURL+"/metrics"))
	var families []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	checkGolden(t, "metrics_families_tenant_cluster.golden", families)

	for _, want := range []string{
		`occrouter_tenant_requests_total{tenant="interactive"}`,
		`occrouter_tenant_bytes_total{tenant="interactive"}`,
		`occrouter_tenant_requests_total{tenant="batch"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router /metrics missing series %s", want)
		}
	}
	if strings.Contains(out, `tenant="default"`) {
		t.Error("default tenant leaked into router /metrics")
	}
}

// TestMetricsGoldenClusterSchema pins the occrouter_* and ooc_cluster_*
// families the router's /metrics exposes — the names the nightly chaos
// job and cluster dashboards key off.
func TestMetricsGoldenClusterSchema(t *testing.T) {
	lc := goldenCluster(t)
	out := string(goldenGet(t, lc.RouterURL+"/metrics"))
	var families []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	if len(families) == 0 {
		t.Fatalf("no # TYPE lines in router /metrics output:\n%s", out)
	}
	checkGolden(t, "metrics_families_cluster.golden", families)

	for _, want := range []string{
		"occrouter_requests_total", "occrouter_tile_gets_total",
		"ooc_cluster_nodes_up", "ooc_cluster_handoff_hints_total",
		"ooc_cluster_read_repairs_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router /metrics missing family %s", want)
		}
	}
}
