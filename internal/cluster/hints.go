package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"outcore/internal/layout"
)

// hint is one write a down replica owes: replay PutTile(name, box,
// data, gen) when the node returns. The generation makes replay safe
// in any order against any interleaving of live writes — the node
// applies a hint only if nothing newer landed on the box since.
type hint struct {
	seq  uint64
	name string
	box  layout.Box
	gen  uint64
	data []float64
}

// hintStore keeps one FIFO hint queue per storage node, durably when a
// directory is configured. Durability uses the WAL record discipline:
// each enqueued hint is appended as a CRC-32C (Castagnoli) framed,
// sequence-numbered record and fsynced before it counts toward a write
// quorum; reload scans the log sequentially and cuts the tail at the
// first short, corrupt, or sequence-regressing record — a torn append
// loses only the hint that was never acknowledged.
type hintStore struct {
	dir string // "" = in-memory only

	mu sync.Mutex
	q  map[string]*hintQueue
}

// hintQueue is one node's pending hints plus its durable log.
type hintQueue struct {
	hints    []hint
	seq      uint64 // next record sequence
	f        *os.File
	draining bool // a Drain snapshot is being delivered off-lock
}

var hintCRC = crc32.MakeTable(crc32.Castagnoli)

func newHintStore(dir string) (*hintStore, error) {
	hs := &hintStore{dir: dir, q: map[string]*hintQueue{}}
	if dir == "" {
		return hs, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hint dir: %w", err)
	}
	// Reload every surviving queue so hints owed from before a router
	// restart still drain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "hints-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		node := strings.TrimSuffix(strings.TrimPrefix(name, "hints-"), ".log")
		if node == "" {
			continue
		}
		q, err := hs.openQueue(node)
		if err != nil {
			return nil, err
		}
		hs.q[node] = q
	}
	return hs, nil
}

// path names node's hint log.
func (hs *hintStore) path(node string) string {
	return filepath.Join(hs.dir, "hints-"+node+".log")
}

// openQueue opens (creating if needed) node's durable queue and
// replays its surviving records.
func (hs *hintStore) openQueue(node string) (*hintQueue, error) {
	f, err := os.OpenFile(hs.path(node), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hint log %s: %w", node, err)
	}
	raw, err := os.ReadFile(hs.path(node))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("hint log %s: %w", node, err)
	}
	q := &hintQueue{f: f}
	off := 0
	for {
		h, n, ok := decodeHint(raw[off:])
		if !ok {
			break // torn or corrupt tail: everything after is discarded
		}
		if len(q.hints) > 0 && h.seq <= q.hints[len(q.hints)-1].seq {
			break // sequence regressed: stale bytes past a truncation point
		}
		q.hints = append(q.hints, h)
		q.seq = h.seq + 1
		off += n
	}
	// Drop the torn tail so later appends extend a clean log.
	if off < len(raw) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, fmt.Errorf("hint log %s: truncating torn tail: %w", node, err)
		}
		if _, err := f.Seek(int64(off), 0); err != nil {
			f.Close()
			return nil, err
		}
	} else if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return q, nil
}

// encodeHint frames one record:
//
//	u32 crc (castagnoli, over everything after this field)
//	u32 len (bytes after this field)
//	u64 seq, u64 gen
//	u16 nameLen, name
//	u16 rank, rank×u64 lo, rank×u64 hi
//	u32 elems, elems×u64 payload
func encodeHint(h hint) []byte {
	rank := len(h.box.Lo)
	n := 8 + 8 + 2 + len(h.name) + 2 + 16*rank + 4 + 8*len(h.data)
	buf := make([]byte, 8+n)
	le := binary.LittleEndian
	le.PutUint32(buf[4:], uint32(n))
	p := 8
	le.PutUint64(buf[p:], h.seq)
	p += 8
	le.PutUint64(buf[p:], h.gen)
	p += 8
	le.PutUint16(buf[p:], uint16(len(h.name)))
	p += 2
	p += copy(buf[p:], h.name)
	le.PutUint16(buf[p:], uint16(rank))
	p += 2
	for _, v := range h.box.Lo {
		le.PutUint64(buf[p:], uint64(v))
		p += 8
	}
	for _, v := range h.box.Hi {
		le.PutUint64(buf[p:], uint64(v))
		p += 8
	}
	le.PutUint32(buf[p:], uint32(len(h.data)))
	p += 4
	for _, v := range h.data {
		le.PutUint64(buf[p:], math.Float64bits(v))
		p += 8
	}
	le.PutUint32(buf, crc32.Checksum(buf[4:], hintCRC))
	return buf
}

// decodeHint reads one record from the head of raw, reporting the
// bytes consumed; ok=false means a short, corrupt, or malformed record
// (a torn tail, from the reload loop's point of view).
func decodeHint(raw []byte) (h hint, n int, ok bool) {
	le := binary.LittleEndian
	if len(raw) < 8 {
		return h, 0, false
	}
	crc := le.Uint32(raw)
	bodyLen := int(le.Uint32(raw[4:]))
	if bodyLen < 24 || len(raw) < 8+bodyLen {
		return h, 0, false
	}
	if crc32.Checksum(raw[4:8+bodyLen], hintCRC) != crc {
		return h, 0, false
	}
	p := 8
	h.seq = le.Uint64(raw[p:])
	p += 8
	h.gen = le.Uint64(raw[p:])
	p += 8
	nameLen := int(le.Uint16(raw[p:]))
	p += 2
	if p+nameLen+2 > 8+bodyLen {
		return h, 0, false
	}
	h.name = string(raw[p : p+nameLen])
	p += nameLen
	rank := int(le.Uint16(raw[p:]))
	p += 2
	if rank < 1 || p+16*rank+4 > 8+bodyLen {
		return h, 0, false
	}
	lo := make([]int64, rank)
	hi := make([]int64, rank)
	for d := 0; d < rank; d++ {
		lo[d] = int64(le.Uint64(raw[p:]))
		p += 8
	}
	for d := 0; d < rank; d++ {
		hi[d] = int64(le.Uint64(raw[p:]))
		p += 8
	}
	h.box = layout.NewBox(lo, hi)
	elems := int(le.Uint32(raw[p:]))
	p += 4
	if p+8*elems != 8+bodyLen {
		return h, 0, false
	}
	h.data = make([]float64, elems)
	for i := range h.data {
		h.data[i] = math.Float64frombits(le.Uint64(raw[p:]))
		p += 8
	}
	return h, 8 + bodyLen, true
}

// Enqueue durably queues one write for node. The hint counts toward a
// write quorum only after this returns nil — with a directory, that
// means framed, appended, and fsynced.
func (hs *hintStore) Enqueue(node, name string, box layout.Box, gen uint64, data []float64) error {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	q := hs.q[node]
	if q == nil {
		if hs.dir == "" {
			q = &hintQueue{}
		} else {
			var err error
			if q, err = hs.openQueue(node); err != nil {
				return err
			}
		}
		hs.q[node] = q
	}
	h := hint{seq: q.seq, name: name, box: box, gen: gen, data: append([]float64(nil), data...)}
	if q.f != nil {
		if _, err := q.f.Write(encodeHint(h)); err != nil {
			return fmt.Errorf("hint append %s: %w", node, err)
		}
		if err := q.f.Sync(); err != nil {
			return fmt.Errorf("hint fsync %s: %w", node, err)
		}
	}
	q.seq++
	q.hints = append(q.hints, h)
	return nil
}

// Pending reports how many hints node is owed.
func (hs *hintStore) Pending(node string) int {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if q := hs.q[node]; q != nil {
		return len(q.hints)
	}
	return 0
}

// PendingTotal sums pending hints across nodes.
func (hs *hintStore) PendingTotal() int {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	n := 0
	for _, q := range hs.q {
		n += len(q.hints)
	}
	return n
}

// errDrainBusy reports a Drain that found another drain of the same
// node still delivering; the caller retries on its next probe tick.
var errDrainBusy = errors.New("cluster: hint drain already in flight")

// Drain replays node's hints in FIFO order through deliver, stopping
// at the first failure (the node went away again; the remainder stays
// queued). It returns how many hints were delivered.
//
// Delivery is synchronous network replay — seconds, possibly — so the
// store lock is NOT held across it: the queue is snapshotted under the
// lock, delivered unlocked (writers keep enqueueing hints for other
// nodes AND for this one; piecePut hints inline on the request path
// and must never stall behind a drain), then the delivered prefix is
// dropped under the lock again. FIFO order makes the reconciliation
// exact: hints enqueued mid-drain append after the snapshot, so the
// snapshot is always still the queue's prefix. The per-queue draining
// flag keeps a second concurrent Drain of the same node from
// re-delivering the same snapshot.
func (hs *hintStore) Drain(node string, deliver func(hint) error) (int, error) {
	hs.mu.Lock()
	q := hs.q[node]
	if q == nil || len(q.hints) == 0 {
		hs.mu.Unlock()
		return 0, nil
	}
	if q.draining {
		hs.mu.Unlock()
		return 0, errDrainBusy
	}
	q.draining = true
	snap := append([]hint(nil), q.hints...)
	hs.mu.Unlock()

	delivered := 0
	var derr error
	for _, h := range snap {
		if derr = deliver(h); derr != nil {
			break
		}
		delivered++
	}

	hs.mu.Lock()
	defer hs.mu.Unlock()
	q.draining = false
	q.hints = q.hints[delivered:]
	if q.f != nil {
		if err := hs.rewriteLocked(node, q); err != nil && derr == nil {
			derr = err
		}
	}
	return delivered, derr
}

// rewriteLocked persists q's remaining hints as the new log contents.
// Called with the store lock held, after a drain consumed a prefix.
func (hs *hintStore) rewriteLocked(node string, q *hintQueue) error {
	if err := q.f.Truncate(0); err != nil {
		return fmt.Errorf("hint log %s: %w", node, err)
	}
	if _, err := q.f.Seek(0, 0); err != nil {
		return err
	}
	for _, h := range q.hints {
		if _, err := q.f.Write(encodeHint(h)); err != nil {
			return fmt.Errorf("hint log %s: %w", node, err)
		}
	}
	return q.f.Sync()
}

// Close fsyncs and closes every durable queue.
func (hs *hintStore) Close() error {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	var first error
	for node, q := range hs.q {
		if q.f == nil {
			continue
		}
		if err := q.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("hint log %s: %w", node, err)
		}
		if err := q.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("hint log %s: %w", node, err)
		}
		q.f = nil
	}
	return first
}
