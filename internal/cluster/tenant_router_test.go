package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"outcore/internal/server"
)

// TestRouterTenantQuota429 pins the router's quota verdict: an
// over-budget tenant gets 429 with a whole-seconds Retry-After, and a
// different tenant's bucket is untouched by the hog's spending.
func TestRouterTenantQuota429(t *testing.T) {
	lc, err := NewLocal(LocalOptions{
		Nodes:    2,
		Replicas: 1,
		TileDim:  4,
		Tenants:  server.TenantConfig{QuotaRPS: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.CreateArray("A", 8, 8); err != nil {
		t.Fatal(err)
	}

	get := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodGet,
			lc.RouterURL+"/v1/arrays/A/tile?lo=0,0&hi=4,4", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(server.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	var limited *http.Response
	for i := 0; i < 10; i++ {
		if resp := get("hog"); resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
	}
	if limited == nil {
		t.Fatal("10 rapid requests never tripped the 2 rps quota")
	}
	secs, err := strconv.Atoi(limited.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("429 Retry-After = %q, want whole seconds >= 1",
			limited.Header.Get("Retry-After"))
	}
	if resp := get("calm"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh tenant got %d after another tenant's 429; quotas must be per tenant",
			resp.StatusCode)
	}
}

// TestRouterScanReleasesAdmissionEarly pins the streaming-scan slot
// discipline: with a chunk cap configured, the router's scan handler
// hands its admission slot back BEFORE the chunk loop, so a pool-of-1
// router shows zero held slots while a scan stream is still open —
// the stream pays per chunk, and point tenants never queue behind a
// resource DRR cannot see.
func TestRouterScanReleasesAdmissionEarly(t *testing.T) {
	lc, err := NewLocal(LocalOptions{
		Nodes:    2,
		Replicas: 1,
		TileDim:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.CreateArray("A", 16, 16); err != nil {
		t.Fatal(err)
	}

	// A second router over the same nodes, with a one-slot pool and the
	// chunk cap on; it recovers the array catalog from the nodes at
	// construction.
	r, err := NewRouter(Options{
		Nodes:       lc.clients,
		Replicas:    1,
		TileDim:     4,
		MaxInflight: 1,
		Tenants: server.TenantConfig{
			Weights:         map[string]float64{"point": 4, "scan": 1},
			MaxScanInflight: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Drain()
	hts := httptest.NewServer(r.Handler())
	defer hts.Close()

	req, err := http.NewRequest(http.MethodGet,
		hts.URL+"/v1/arrays/A/scan?lo=0,0&hi=16,16&chunk=16", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.TenantHeader, "scan")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: status %d", resp.StatusCode)
	}
	sr := server.NewScanReader(resp.Body)
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	// The first chunk is only written after the handler released its
	// admission slot, so observing the chunk means the one-slot pool
	// must already be empty — stream still open.
	if n := r.tenants.InflightLen(); n != 0 {
		t.Errorf("scan stream holds %d admission slots mid-stream; the chunk cap should pay per chunk instead", n)
	}
	chunks := 1
	for {
		if _, err := sr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("chunk %d: %v", chunks, err)
		}
		chunks++
	}
	if chunks < 2 {
		t.Fatalf("scan delivered %d chunks; want a multi-chunk stream", chunks)
	}
}

// TestRouterHealthzAndCatalog covers the router's liveness and
// catalog listing endpoints.
func TestRouterHealthzAndCatalog(t *testing.T) {
	lc, err := NewLocal(LocalOptions{Nodes: 2, Replicas: 1, TileDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.CreateArray("A", 8, 8); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(lc.RouterURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(lc.RouterURL + "/v1/arrays")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("array list: %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("array list: empty body")
	}
}
