package cluster

import (
	"errors"
	"os"
	"testing"

	"outcore/internal/layout"
)

func hintBox() layout.Box {
	return layout.NewBox([]int64{0, 8}, []int64{8, 16})
}

// TestHintStoreDurableReload enqueues hints, reopens the store from
// disk, and requires the queue back in FIFO order with payloads
// intact.
func TestHintStoreDurableReload(t *testing.T) {
	dir := t.TempDir()
	hs, err := newHintStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		data := []float64{float64(i), float64(i) + 0.5}
		if err := hs.Enqueue("n1", "A", hintBox(), uint64(i+1), data); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}

	hs2, err := newHintStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer hs2.Close()
	if n := hs2.Pending("n1"); n != 3 {
		t.Fatalf("reloaded %d hints, want 3", n)
	}
	var got []hint
	if _, err := hs2.Drain("n1", func(h hint) error {
		got = append(got, h)
		return nil
	}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, h := range got {
		if h.gen != uint64(i+1) || h.name != "A" || h.data[0] != float64(i) {
			t.Fatalf("hint %d reloaded as %+v", i, h)
		}
	}
}

// TestHintStoreTornTail appends garbage after valid records and cuts
// a final record short: reload must keep the intact prefix and
// truncate the rest, and later appends must extend a clean log.
func TestHintStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	hs, err := newHintStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := hs.Enqueue("n2", "A", hintBox(), uint64(i+1), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: drop the last 5 bytes (a torn final record), then
	// append garbage that cannot checksum.
	path := hs.path("n2")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(raw[:len(raw)-5], 0xde, 0xad, 0xbe, 0xef)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	hs2, err := newHintStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := hs2.Pending("n2"); n != 2 {
		t.Fatalf("survived %d hints after torn tail, want 2", n)
	}
	// The log must be clean again: a fresh hint appends and reloads.
	if err := hs2.Enqueue("n2", "A", hintBox(), 9, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := hs2.Close(); err != nil {
		t.Fatal(err)
	}
	hs3, err := newHintStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer hs3.Close()
	if n := hs3.Pending("n2"); n != 3 {
		t.Fatalf("after torn-tail recovery and append, reloaded %d hints, want 3", n)
	}
}

// TestHintStoreDrainStopsAtFailure keeps undelivered hints queued
// when the node goes away mid-drain.
func TestHintStoreDrainStopsAtFailure(t *testing.T) {
	hs, err := newHintStore("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := hs.Enqueue("n3", "A", hintBox(), uint64(i+1), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("gone again")
	calls := 0
	delivered, err := hs.Drain("n3", func(hint) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || delivered != 1 {
		t.Fatalf("drain = (%d, %v), want (1, gone again)", delivered, err)
	}
	if n := hs.Pending("n3"); n != 2 {
		t.Fatalf("pending after failed drain = %d, want 2", n)
	}
}

// TestHintStoreDrainDoesNotBlockEnqueue proves the store lock is not
// held across delivery: while one node's drain is parked mid-replay
// (simulating a slow network PUT), Enqueue, Pending, and PendingTotal
// for other nodes — the inline piecePut hint path — must complete, a
// hint enqueued for the DRAINING node mid-drain must survive the
// reconciliation, and a second Drain of the same node must refuse
// instead of re-delivering the snapshot.
func TestHintStoreDrainDoesNotBlockEnqueue(t *testing.T) {
	hs, err := newHintStore("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := hs.Enqueue("n4", "A", hintBox(), uint64(i+1), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		first := true
		if _, err := hs.Drain("n4", func(hint) error {
			if first {
				first = false
				close(entered)
				<-release
			}
			return nil
		}); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	<-entered
	// Mid-drain: the store must answer without waiting for delivery.
	if err := hs.Enqueue("n5", "A", hintBox(), 7, []float64{2}); err != nil {
		t.Fatalf("enqueue during drain: %v", err)
	}
	if err := hs.Enqueue("n4", "A", hintBox(), 8, []float64{3}); err != nil {
		t.Fatalf("enqueue for draining node: %v", err)
	}
	if n := hs.PendingTotal(); n < 2 {
		t.Fatalf("pending total mid-drain = %d, want >= 2", n)
	}
	if _, err := hs.Drain("n4", func(hint) error { return nil }); !errors.Is(err, errDrainBusy) {
		t.Fatalf("concurrent drain of the same node: err = %v, want errDrainBusy", err)
	}
	close(release)
	<-done
	// The snapshot (2 hints) drained; the mid-drain enqueue survived.
	if n := hs.Pending("n4"); n != 1 {
		t.Fatalf("pending after drain = %d, want the mid-drain hint (1)", n)
	}
	if n := hs.Pending("n5"); n != 1 {
		t.Fatalf("pending for n5 = %d, want 1", n)
	}
}
