package cluster

// Error-path coverage for the replication protocol: replica failover
// on GETs, quorum-failure 503s with Retry-After, the sloppy-quorum
// partial-PUT contract (live ack + durable hint), hint drain after
// heal, and a -race hammer driving concurrent GETs and PUTs through
// the router checking that no read ever observes a torn tile.

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"outcore/internal/layout"
)

// hammerEdge sizes the hammer array; tiles are tileEdge-aligned.
const (
	testEdge = 32
	testTile = 8
)

func newTestCluster(t *testing.T, nodes, replicas int, opts ...func(*LocalOptions)) *LocalCluster {
	t.Helper()
	o := LocalOptions{
		Nodes:       nodes,
		Replicas:    replicas,
		TileDim:     testTile,
		DurablePuts: true,
		Seed:        77,
	}
	for _, f := range opts {
		f(&o)
	}
	lc, err := NewLocal(o)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.CreateArray("A", testEdge, testEdge); err != nil {
		t.Fatalf("create: %v", err)
	}
	return lc
}

func fillTile(v float64, box layout.Box) []float64 {
	data := make([]float64, box.Size())
	for i := range data {
		data[i] = v
	}
	return data
}

// TestGetFailsOverToNextReplica kills a tile's first replica and
// requires the router to serve the read from the survivor.
func TestGetFailsOverToNextReplica(t *testing.T) {
	lc := newTestCluster(t, 3, 2)
	cli := lc.Client()
	box := layout.NewBox([]int64{0, 0}, []int64{testTile, testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(7, box), 0, true); err != nil {
		t.Fatalf("put: %v", err)
	}
	reps := lc.ReplicaNodes("A", box)
	if len(reps) != 2 {
		t.Fatalf("replicas = %v, want 2", reps)
	}
	lc.Kill(reps[0])

	got, _, err := cli.GetTile("A", box, true)
	if err != nil {
		t.Fatalf("get after primary kill: %v", err)
	}
	for i, v := range got {
		if v != 7 {
			t.Fatalf("elem %d = %v after failover, want 7", i, v)
		}
	}
	// The failed hop must have marked the dead node down.
	var stats struct {
		Cluster struct {
			NodesUp int `json:"nodes_up"`
		} `json:"cluster"`
	}
	if err := cli.Stats(&stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Cluster.NodesUp != 2 {
		t.Fatalf("nodes_up = %d after kill, want 2", stats.Cluster.NodesUp)
	}
}

// TestQuorumFailure503 kills every replica and requires the router to
// answer 503 with a Retry-After hint, for GET and PUT both.
func TestQuorumFailure503(t *testing.T) {
	lc := newTestCluster(t, 2, 2)
	cli := lc.Client()
	box := layout.NewBox([]int64{0, 0}, []int64{testTile, testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(1, box), 0, true); err != nil {
		t.Fatalf("put: %v", err)
	}
	lc.Kill(0)
	lc.Kill(1)

	url := fmt.Sprintf("%s/v1/arrays/A/tile?lo=0,0&hi=%d,%d", lc.RouterURL, testTile, testTile)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET status = %d with all replicas dead, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("GET 503 carries no Retry-After")
	}

	// A PUT can durably hint, but a sloppy quorum still needs one live
	// ack — with zero reachable replicas it must refuse.
	_, _, err = cli.PutTile("A", box, fillTile(2, box), 0, true)
	if err == nil {
		t.Fatal("PUT succeeded with all replicas dead")
	}
}

// TestRouterRestartRecoversCatalog replaces the router after data has
// been written and requires the replacement to serve the existing
// array without any re-creation: the catalog, like the generation
// table, is an in-memory cache of state the nodes durably hold, so a
// fresh router must rebuild it from the nodes' listings instead of
// 404ing every pre-restart array.
func TestRouterRestartRecoversCatalog(t *testing.T) {
	lc := newTestCluster(t, 3, 2)
	cli := lc.Client()
	box := layout.NewBox([]int64{0, 0}, []int64{testTile, testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(9, box), 0, true); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := lc.RestartRouter(); err != nil {
		t.Fatalf("router restart: %v", err)
	}
	cli = lc.Client()
	resp, err := http.Get(lc.RouterURL + "/v1/arrays/A")
	if err != nil {
		t.Fatalf("array get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/arrays/A = %d after router restart, want 200", resp.StatusCode)
	}
	got, _, err := cli.GetTile("A", box, true)
	if err != nil {
		t.Fatalf("tile get after router restart: %v", err)
	}
	for i, v := range got {
		if v != 9 {
			t.Fatalf("elem %d = %v after router restart, want 9", i, v)
		}
	}
}

// TestPartialPutHintedHandoff writes through a one-replica-down
// window: the write acks on a sloppy quorum (one live ack + one
// durable hint), and after the node heals the drained hint leaves the
// replicas byte-equal at the new value.
func TestPartialPutHintedHandoff(t *testing.T) {
	lc := newTestCluster(t, 3, 2, func(o *LocalOptions) { o.HintDir = t.TempDir() })
	cli := lc.Client()
	box := layout.NewBox([]int64{0, 0}, []int64{testTile, testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(1, box), 0, true); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	reps := lc.ReplicaNodes("A", box)
	down := reps[1]
	lc.Kill(down)

	// v2 lands while a replica is dead: one live ack + one queued hint.
	if _, _, err := cli.PutTile("A", box, fillTile(2, box), 0, true); err != nil {
		t.Fatalf("put v2 with a replica down: %v", err)
	}
	if n := lc.HintsPending(down); n != 1 {
		t.Fatalf("hints pending for node %d = %d, want 1", down, n)
	}

	lc.Heal()
	if n := lc.HintsPending(down); n != 0 {
		t.Fatalf("hints pending after heal = %d, want 0", n)
	}
	for _, i := range reps {
		got, _, err := lc.NodeClientDirect(i).GetTile("A", box, true)
		if err != nil {
			t.Fatalf("node %d: direct get: %v", i, err)
		}
		for j, v := range got {
			if v != 2 {
				t.Fatalf("node %d elem %d = %v after drain, want 2", i, j, v)
			}
		}
	}

	var stats struct {
		Cluster struct {
			HandoffHints uint64 `json:"handoff_hints"`
			HintsDrained uint64 `json:"hints_drained"`
		} `json:"cluster"`
	}
	if err := cli.Stats(&stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Cluster.HandoffHints == 0 || stats.Cluster.HintsDrained == 0 {
		t.Fatalf("scorecard = %+v, want both handoff counters advanced", stats.Cluster)
	}
}

// TestHealConvergesReplicas crashes a replica, writes past it, heals,
// and requires the replicas to converge to the newest acked value —
// via whichever mechanism (hint drain on probe, or read-repair on the
// first read) catches the returned replica up.
func TestHealConvergesReplicas(t *testing.T) {
	lc := newTestCluster(t, 3, 2)
	cli := lc.Client()
	box := layout.NewBox([]int64{testTile, 0}, []int64{2 * testTile, testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(1, box), 0, true); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	reps := lc.ReplicaNodes("A", box)
	down := reps[1]
	lc.Kill(down)
	// v2 acks on the survivor; the dead replica is owed a hint.
	if _, _, err := cli.PutTile("A", box, fillTile(2, box), 0, true); err != nil {
		t.Fatalf("put v2: %v", err)
	}
	lc.Heal()
	got, _, err := cli.GetTile("A", box, true)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	for i, v := range got {
		if v != 2 {
			t.Fatalf("router read elem %d = %v, want 2", i, v)
		}
	}
	for _, i := range reps {
		direct, _, err := lc.NodeClientDirect(i).GetTile("A", box, true)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		for j, v := range direct {
			if v != 2 {
				t.Fatalf("node %d elem %d = %v, want 2", i, j, v)
			}
		}
	}
}

// TestReadRepairProper forces the pure read-repair path: a replica is
// partitioned (not killed) during a write so it holds a genuinely
// older generation, then the partition lifts and a router read must
// synchronously rewrite it to the winner.
func TestReadRepairProper(t *testing.T) {
	lc := newTestCluster(t, 3, 2)
	cli := lc.Client()
	box := layout.NewBox([]int64{0, testTile}, []int64{testTile, 2 * testTile})
	if _, _, err := cli.PutTile("A", box, fillTile(1, box), 0, true); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	reps := lc.ReplicaNodes("A", box)
	lagging := reps[1]
	lc.Partition(lagging)
	if _, _, err := cli.PutTile("A", box, fillTile(2, box), 0, true); err != nil {
		t.Fatalf("put v2 with a replica partitioned: %v", err)
	}
	// Lift the partition and mark the node up WITHOUT probing, so its
	// owed hint stays queued and only read-repair can fix the lag.
	lc.Unpartition(lagging)
	lc.SetNodeDown(lagging, false)

	// Before repair, the lagging replica still serves v1 directly.
	stale, gen, err := lc.NodeClientDirect(lagging).GetTile("A", box, true)
	if err != nil {
		t.Fatalf("node %d: %v", lagging, err)
	}
	if stale[0] != 1 {
		t.Fatalf("lagging replica already at %v before any read", stale[0])
	}
	_ = gen

	got, _, err := cli.GetTile("A", box, true)
	if err != nil {
		t.Fatalf("router get: %v", err)
	}
	if got[0] != 2 {
		t.Fatalf("router read = %v, want the winner 2", got[0])
	}
	repaired, _, err := lc.NodeClientDirect(lagging).GetTile("A", box, true)
	if err != nil {
		t.Fatalf("node %d after repair: %v", lagging, err)
	}
	for j, v := range repaired {
		if v != 2 {
			t.Fatalf("lagging replica elem %d = %v after read-repair, want 2", j, v)
		}
	}
	var stats struct {
		Cluster struct {
			ReadRepairs uint64 `json:"read_repairs"`
		} `json:"cluster"`
	}
	if err := cli.Stats(&stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Cluster.ReadRepairs == 0 {
		t.Fatal("read_repairs counter never advanced")
	}
}

// TestRouterHammer races writers and readers through the router under
// -race: every read must come back whole-tile uniform (never torn),
// since node-side tile application is atomic under the tile lock and
// a read is served from exactly one replica.
func TestRouterHammer(t *testing.T) {
	lc := newTestCluster(t, 3, 2)
	tiles := []layout.Box{
		layout.NewBox([]int64{0, 0}, []int64{8, 8}),
		layout.NewBox([]int64{8, 8}, []int64{16, 16}),
		layout.NewBox([]int64{16, 24}, []int64{24, 32}),
	}
	const (
		writers = 4
		readers = 4
		ops     = 60
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := lc.Client()
			for i := 0; i < ops; i++ {
				box := tiles[(w+i)%len(tiles)]
				v := float64(w*ops + i + 1)
				if _, _, err := cli.PutTile("A", box, fillTile(v, box), 0, true); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cli := lc.Client()
			for i := 0; i < ops; i++ {
				box := tiles[(r+i)%len(tiles)]
				got, _, err := cli.GetTile("A", box, true)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				for j := 1; j < len(got); j++ {
					if got[j] != got[0] {
						errc <- fmt.Errorf("reader %d: torn tile %v: elem %d = %v, elem 0 = %v", r, box, j, got[j], got[0])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
