// Router-side batched and streaming operators. The router exposes the
// same batch/scan/reduce API a single occd node does, but decomposes
// every box along the routing grid, fans the pieces out to their
// replica sets (pieceGet/piecePut — the same consistency machinery the
// tile plane uses), and stitches or merges the results: batch ops keep
// per-op status, scan chunks are re-framed with router-minted cursors,
// and reductions combine per-piece partials into one scalar so an
// aggregate over the whole cluster still costs the client a single
// round-trip.
package cluster

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"outcore/internal/keyhash"
	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// layoutOf rebuilds the layout an array's tiles are stored under from
// the catalog row (the create API accepts "row" and "col").
func layoutOf(am arrayMeta) *layout.Layout {
	if am.Layout == "col" {
		return layout.ColMajor(am.Dims...)
	}
	return layout.RowMajor(am.Dims...)
}

// batchWire mirrors the node's batch request/result wire shapes (the
// router speaks the same JSON contract; decoding into local structs
// keeps the wire, not the server's internals, as the coupling).
type batchWireOp struct {
	Op   string  `json:"op"`
	Lo   []int64 `json:"lo"`
	Hi   []int64 `json:"hi"`
	Data string  `json:"data_b64,omitempty"`
}

type batchWireResult struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	Elems  int64  `json:"elems,omitempty"`
	Data   string `json:"data_b64,omitempty"`
	Gen    uint64 `json:"gen,omitempty"`
}

// resolveOpBox validates one op's box against the catalog row.
func resolveOpBox(am arrayMeta, lo, hi []int64) (layout.Box, int, string) {
	if len(lo) != len(am.Dims) || len(hi) != len(am.Dims) {
		return layout.Box{}, http.StatusBadRequest,
			fmt.Sprintf("box rank %d/%d, array rank %d", len(lo), len(hi), len(am.Dims))
	}
	for d := range lo {
		if lo[d] < 0 {
			return layout.Box{}, http.StatusBadRequest, fmt.Sprintf("negative coordinate %d", lo[d])
		}
		if hi[d] < lo[d] {
			return layout.Box{}, http.StatusBadRequest,
				fmt.Sprintf("hi[%d]=%d below lo[%d]=%d", d, hi[d], d, lo[d])
		}
	}
	box := layout.NewBox(lo, hi).Clip(am.Dims)
	if box.Empty() {
		return layout.Box{}, http.StatusBadRequest,
			fmt.Sprintf("box %v is empty after clipping to %v", layout.NewBox(lo, hi), am.Dims)
	}
	if box.Size() > server.DefaultMaxTileElems {
		return layout.Box{}, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("box %v holds %d elements, over the per-op limit of %d", box, box.Size(), server.DefaultMaxTileElems)
	}
	return box, 0, ""
}

// boxGet reads one request box through the replicated plane: grid
// decomposition, freshest-replica reads, stitching — the tile GET's
// data path as a reusable call.
func (r *Router) boxGet(tenant, name string, box layout.Box) ([]float64, uint64, error) {
	pieces := gridTiles(box, r.opts.TileDim)
	if len(pieces) == 1 {
		return r.pieceGet(tenant, name, pieces[0])
	}
	out := make([]float64, box.Size())
	var maxGen uint64
	for _, piece := range pieces {
		data, gen, err := r.pieceGet(tenant, name, piece)
		if err != nil {
			return nil, 0, err
		}
		if gen > maxGen {
			maxGen = gen
		}
		copyRegion(out, box, data, piece, piece)
	}
	return out, maxGen, nil
}

// boxPut writes one request box through the replicated plane,
// returning the highest generation assigned. false means some piece
// missed its write quorum.
func (r *Router) boxPut(tenant, name string, box layout.Box, data []float64) (uint64, bool) {
	pieces := gridTiles(box, r.opts.TileDim)
	var maxGen uint64
	for _, piece := range pieces {
		pdata := data
		if len(pieces) > 1 {
			pdata = make([]float64, piece.Size())
			copyRegion(pdata, piece, data, box, piece)
		}
		gen, ok := r.piecePut(tenant, name, piece, pdata)
		if !ok {
			return 0, false
		}
		if gen > maxGen {
			maxGen = gen
		}
	}
	return maxGen, true
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	r.catalog.mu.Lock()
	am, ok := r.catalog.m[name]
	r.catalog.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no array %q", name), http.StatusNotFound)
		return
	}
	var body struct {
		Ops []batchWireOp `json:"ops"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<28)).Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad batch body: %v", err), http.StatusBadRequest)
		return
	}
	if len(body.Ops) == 0 {
		http.Error(w, "batch needs at least one op", http.StatusBadRequest)
		return
	}
	if len(body.Ops) > 4096 {
		http.Error(w, fmt.Sprintf("batch of %d ops over the limit of 4096", len(body.Ops)), http.StatusBadRequest)
		return
	}
	r.met.batches.Inc()
	tenant := server.TenantOf(req)
	results := make([]batchWireResult, len(body.Ops))
	failed := 0
	for i, op := range body.Ops {
		// The per-tenant chunk cap paces batch trains the same way it
		// paces scan chunks: one slot per op, released between ops.
		chunkDone, ok := r.tenants.AcquireChunk(req.Context(), tenant)
		if !ok {
			results[i] = batchWireResult{Status: http.StatusServiceUnavailable, Error: "request canceled"}
		} else {
			results[i] = r.batchOne(am, op, tenant)
			chunkDone()
		}
		r.met.batchOps.Inc()
		if results[i].Status >= 400 {
			r.met.batchOpErrors.Inc()
			failed++
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []batchWireResult `json:"results"`
		Failed  int               `json:"failed"`
	}{results, failed})
}

func (r *Router) batchOne(am arrayMeta, op batchWireOp, tenant string) batchWireResult {
	box, status, msg := resolveOpBox(am, op.Lo, op.Hi)
	if status != 0 {
		return batchWireResult{Status: status, Error: msg}
	}
	switch op.Op {
	case "get":
		data, gen, err := r.boxGet(tenant, am.Name, box)
		if err != nil {
			return r.batchOpError(err)
		}
		r.tenants.DebitBytes(tenant, box.Size()*ooc.ElemSize)
		payload := make([]byte, len(data)*ooc.ElemSize)
		for i, v := range data {
			binary.LittleEndian.PutUint64(payload[i*ooc.ElemSize:], math.Float64bits(v))
		}
		return batchWireResult{
			Status: http.StatusOK,
			Elems:  box.Size(),
			Data:   base64.StdEncoding.EncodeToString(payload),
			Gen:    gen,
		}
	case "put":
		raw, err := base64.StdEncoding.DecodeString(op.Data)
		if err != nil {
			return batchWireResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("bad data_b64: %v", err)}
		}
		if int64(len(raw)) != box.Size()*ooc.ElemSize {
			return batchWireResult{Status: http.StatusBadRequest,
				Error: fmt.Sprintf("payload of %d bytes, want %d for %v", len(raw), box.Size()*ooc.ElemSize, box)}
		}
		data := make([]float64, box.Size())
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ooc.ElemSize:]))
		}
		gen, ok := r.boxPut(tenant, am.Name, box, data)
		if !ok {
			r.met.quorumFailures.Inc()
			return batchWireResult{Status: http.StatusServiceUnavailable, Error: "write quorum unavailable"}
		}
		r.tenants.DebitBytes(tenant, box.Size()*ooc.ElemSize)
		return batchWireResult{Status: http.StatusNoContent, Elems: box.Size(), Gen: gen}
	default:
		return batchWireResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown op %q (get, put)", op.Op)}
	}
}

// batchOpError maps a replication failure onto a per-op status.
func (r *Router) batchOpError(err error) batchWireResult {
	if errors.Is(err, ErrUnavailable) {
		r.met.quorumFailures.Inc()
		return batchWireResult{Status: http.StatusServiceUnavailable, Error: "no reachable replica"}
	}
	r.met.errors.Inc()
	return batchWireResult{Status: http.StatusBadGateway, Error: err.Error()}
}

func (r *Router) handleScan(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var (
		am         arrayMeta
		box        layout.Box
		chunkElems int64
		startSeq   uint64
	)
	if tok := q.Get("cursor"); tok != "" {
		cur, err := server.ParseScanCursor(tok)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		r.catalog.mu.Lock()
		var ok bool
		am, ok = r.catalog.m[cur.Name]
		r.catalog.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("no array %q", cur.Name), http.StatusNotFound)
			return
		}
		if got := layoutOf(am).Name(); got != cur.Layout {
			http.Error(w, fmt.Sprintf("cursor layout %q does not match array layout %q", cur.Layout, got), http.StatusBadRequest)
			return
		}
		clipped := cur.Box.Clip(am.Dims)
		if clipped.Empty() || clipped.String() != cur.Box.String() {
			http.Error(w, fmt.Sprintf("cursor box %v does not fit array dims %v", cur.Box, am.Dims), http.StatusBadRequest)
			return
		}
		box, chunkElems, startSeq = cur.Box, cur.ChunkElems, cur.Seq
		r.met.scanResumes.Inc()
	} else {
		var ok bool
		am, box, ok = r.target(w, req)
		if !ok {
			return
		}
		chunkElems = server.DefaultScanChunkElems
		if v := q.Get("chunk"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad chunk size %q", v), http.StatusBadRequest)
				return
			}
			chunkElems = n
		}
	}
	if chunkElems > server.DefaultMaxTileElems {
		chunkElems = server.DefaultMaxTileElems
	}
	l := layoutOf(am)
	plan := layout.PlanScan(l, box, chunkElems)
	if startSeq > uint64(len(plan)) {
		http.Error(w, fmt.Sprintf("cursor seq %d past the %d-chunk plan", startSeq, len(plan)), http.StatusBadRequest)
		return
	}
	r.met.scans.Inc()
	tenant := server.TenantOf(req)
	compress := acceptsWire(req.Header.Get("Accept-Encoding"))
	w.Header().Set("Content-Type", server.ScanContentType)
	w.Header().Set("X-Scan-Chunks", strconv.Itoa(len(plan)))
	w.Header().Set("X-Scan-Chunk-Elems", strconv.FormatInt(chunkElems, 10))
	flusher, _ := w.(http.Flusher)

	// With a chunk cap configured, the stream's cost is paid per chunk
	// from here on — hand the admission slot back so a multi-second
	// scan cannot pin it while point requests queue behind a resource
	// DRR never sees. (The router has no engine to drain, so nothing
	// downstream depends on the slot outliving the stream.)
	r.tenants.ReleaseAdmissionEarly(req)

	var frame []byte
	for seq := startSeq; seq < uint64(len(plan)); seq++ {
		ch := plan[seq]
		// One chunk slot per fan-out: the tenant's scan train shares
		// the node pool fairly instead of monopolizing it.
		chunkDone, ok := r.tenants.AcquireChunk(req.Context(), tenant)
		if !ok {
			// Client gone mid-stream; it resumes from its cursor.
			return
		}
		data, _, err := r.boxGet(tenant, am.Name, ch)
		chunkDone()
		if err != nil {
			if seq == startSeq {
				r.met.errors.Inc()
				if errors.Is(err, ErrUnavailable) {
					r.met.quorumFailures.Inc()
					w.Header().Set("Retry-After", r.retryAfter())
					http.Error(w, "no reachable replica", http.StatusServiceUnavailable)
				} else {
					http.Error(w, err.Error(), http.StatusBadGateway)
				}
			}
			// Mid-stream the connection ends short of the trailer; the
			// client resumes from its last intact frame's cursor.
			return
		}
		cursor := server.EncodeScanCursor(am.Name, box, chunkElems, l.Name(), seq+1)
		frame = server.AppendScanFrame(frame[:0], seq, ch, cursor, data, compress)
		if _, err := w.Write(frame); err != nil {
			return
		}
		r.tenants.DebitBytes(tenant, ch.Size()*ooc.ElemSize)
		r.met.scanChunks.Inc()
		if flusher != nil {
			flusher.Flush()
		}
	}
	frame = server.AppendScanTrailer(frame[:0], uint64(len(plan)))
	w.Write(frame)
}

// handleReduce pushes the fold down twice: the client sends one
// request, the router sends one reduce per grid piece to a live
// replica, and only scalars travel back up. Partials combine in
// row-major piece order; a cluster sum's grouping therefore differs
// from a single node's element-order fold by float associativity
// (min/max/count are exact), which is the documented contract.
func (r *Router) handleReduce(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	r.catalog.mu.Lock()
	am, ok := r.catalog.m[name]
	r.catalog.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no array %q", name), http.StatusNotFound)
		return
	}
	var body struct {
		Op string  `json:"op"`
		Lo []int64 `json:"lo"`
		Hi []int64 `json:"hi"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad reduce body: %v", err), http.StatusBadRequest)
		return
	}
	switch body.Op {
	case "sum", "min", "max", "count":
	default:
		http.Error(w, fmt.Sprintf("unknown reduce op %q (sum, min, max, count)", body.Op), http.StatusBadRequest)
		return
	}
	if len(body.Lo) != len(am.Dims) || len(body.Hi) != len(am.Dims) {
		http.Error(w, fmt.Sprintf("box rank %d/%d, array rank %d", len(body.Lo), len(body.Hi), len(am.Dims)), http.StatusBadRequest)
		return
	}
	for d := range body.Lo {
		if body.Lo[d] < 0 || body.Hi[d] < body.Lo[d] {
			http.Error(w, fmt.Sprintf("bad box dimension %d: [%d,%d)", d, body.Lo[d], body.Hi[d]), http.StatusBadRequest)
			return
		}
	}
	box := layout.NewBox(body.Lo, body.Hi).Clip(am.Dims)
	if box.Empty() {
		http.Error(w, fmt.Sprintf("box %v is empty after clipping to %v", layout.NewBox(body.Lo, body.Hi), am.Dims), http.StatusBadRequest)
		return
	}
	r.met.reduces.Inc()
	tenant := server.TenantOf(req)
	var (
		sum   float64
		minV  = math.Inf(1)
		maxV  = math.Inf(-1)
		count int64
	)
	for _, piece := range gridTiles(box, r.opts.TileDim) {
		chunkDone, ok := r.tenants.AcquireChunk(req.Context(), tenant)
		if !ok {
			return
		}
		value, n, err := r.pieceReduce(tenant, am.Name, piece, body.Op)
		chunkDone()
		if err != nil {
			r.met.errors.Inc()
			if errors.Is(err, ErrUnavailable) {
				r.met.quorumFailures.Inc()
				w.Header().Set("Retry-After", r.retryAfter())
				http.Error(w, "no reachable replica", http.StatusServiceUnavailable)
			} else {
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		switch body.Op {
		case "sum":
			sum += value
		case "min":
			if value < minV {
				minV = value
			}
		case "max":
			if value > maxV {
				maxV = value
			}
		}
		count += n
	}
	var value float64
	switch body.Op {
	case "sum":
		value = sum
	case "min":
		value = minV
	case "max":
		value = maxV
	case "count":
		value = float64(count)
	}
	r.met.reduceElems.Add(count)
	resp := struct {
		Op    string   `json:"op"`
		Lo    []int64  `json:"lo"`
		Hi    []int64  `json:"hi"`
		Count int64    `json:"count"`
		Value *float64 `json:"value,omitempty"`
		Bits  uint64   `json:"value_bits"`
	}{Op: body.Op, Lo: box.Lo, Hi: box.Hi, Count: count, Bits: math.Float64bits(value)}
	if !math.IsNaN(value) && !math.IsInf(value, 0) {
		resp.Value = &value
	}
	writeJSON(w, http.StatusOK, resp)
}

// pieceReduce folds one grid piece on a replica: replicas are tried in
// rendezvous rank order and the first live answer wins (read-one — the
// same availability stance as pieceGet, without its freshness
// comparison; a reduce against a diverged replica set is eventually
// consistent, converging once hints drain and read-repair runs).
func (r *Router) pieceReduce(tenant, name string, piece layout.Box, op string) (float64, int64, error) {
	key := tileKeyOf(name, routingTile(piece, r.opts.TileDim))
	var hardErr error
	for _, m := range r.replicasFor(keyhash.Bytes([]byte(key))) {
		if m.down.Load() {
			continue
		}
		value, count, err := m.client.ForTenant(tenant).Reduce(name, piece, op)
		if err != nil {
			if errors.Is(err, ErrUnavailable) {
				r.markDown(m)
				continue
			}
			hardErr = err
			continue
		}
		return value, count, nil
	}
	if hardErr != nil {
		return 0, 0, hardErr
	}
	return 0, 0, ErrUnavailable
}
