package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"outcore/internal/keyhash"
	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// MaxReplicas bounds the replication factor: past the node count (or
// a handful) extra copies only multiply write fan-out.
const MaxReplicas = 8

// Options configures a Router. Nodes and Replicas are required; the
// rest default sanely.
type Options struct {
	// Nodes is the static membership: one client per storage node,
	// gossip-free, in a fixed order. Placement depends only on node IDs
	// (rendezvous hashing), not on this order.
	Nodes []*NodeClient
	// Replicas is R, the copies kept of every tile (default 2, capped
	// at the node count).
	Replicas int
	// TileDim is the routing grid's tile edge per dimension (default
	// 8). A request box spanning several grid tiles is decomposed;
	// every box inside one grid tile routes to that tile's replica
	// set, which is what keeps unaligned reads coherent with the
	// aligned writes they overlap.
	TileDim int64
	// HintDir durably queues hinted-handoff writes under this
	// directory (one log per node, fsynced per hint). Empty keeps
	// hints in memory — handoff still works, but hints die with the
	// router process.
	HintDir string
	// Wire negotiates the x-ooc-gorilla tile coding on router↔node
	// hops (on by default through NewRouter's option struct literal
	// being explicit; set NoWire to disable).
	NoWire bool
	// RetryAfter is the hint returned with 503 responses (default 1s).
	RetryAfter time.Duration
	// MaxInflight caps concurrently admitted data-plane requests
	// (default 4x GOMAXPROCS — fan-out requests spend most of their
	// time waiting on node I/O, so the router runs wider than a node).
	MaxInflight int
	// QueueDepth bounds waiters across all tenant admission queues
	// (default 256).
	QueueDepth int
	// Tenants configures the router's tenant plane: DRR weights,
	// request/byte quotas, and the per-tenant chunk cap. The zero value
	// is the pre-tenant behavior.
	Tenants server.TenantConfig
	// Obs supplies the metrics registry behind the router's /metrics.
	Obs *obs.Sink
}

// member is one storage node plus its routing and liveness state.
type member struct {
	client *NodeClient
	keySum uint64 // pinned hash of the node ID, for rendezvous scoring
	down   atomic.Bool
}

// arrayMeta is the router's catalog row for one array.
type arrayMeta struct {
	Name   string  `json:"name"`
	Dims   []int64 `json:"dims"`
	Elems  int64   `json:"elems"`
	Layout string  `json:"layout,omitempty"`
}

// genTable assigns monotonically increasing write generations per
// routing tile. The router is otherwise stateless: the table is an
// in-memory cache of "the next generation to write", opportunistically
// raised whenever a node reports a newer stored generation — so a
// restarted router (counter reset to 0) catches up on first contact
// instead of writing forever-stale generations.
type genTable struct {
	mu sync.Mutex
	m  map[string]*atomic.Uint64
}

func (g *genTable) counter(key string) *atomic.Uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = map[string]*atomic.Uint64{}
	}
	c := g.m[key]
	if c == nil {
		c = &atomic.Uint64{}
		g.m[key] = c
	}
	return c
}

// next returns a fresh generation for key (1, 2, ...).
func (g *genTable) next(key string) uint64 { return g.counter(key).Add(1) }

// raise lifts key's counter to at least seen.
func (g *genTable) raise(key string, seen uint64) {
	c := g.counter(key)
	for {
		cur := c.Load()
		if cur >= seen || c.CompareAndSwap(cur, seen) {
			return
		}
	}
}

// routerMetrics are the occrouter_* and ooc_cluster_* registry series.
type routerMetrics struct {
	requests       *obs.Counter
	errors         *obs.Counter
	gets           *obs.Counter
	puts           *obs.Counter
	batches        *obs.Counter
	batchOps       *obs.Counter
	batchOpErrors  *obs.Counter
	scans          *obs.Counter
	scanChunks     *obs.Counter
	scanResumes    *obs.Counter
	reduces        *obs.Counter
	reduceElems    *obs.Counter
	latency        *obs.Histogram
	readRepairs    *obs.Counter
	handoffHints   *obs.Counter
	hintsDrained   *obs.Counter
	quorumFailures *obs.Counter
	staleWrites    *obs.Counter
	nodesUp        *obs.Gauge
	hintsQueued    *obs.Gauge
	nodes          *obs.Gauge
	replicas       *obs.Gauge
}

// Router fans tile requests across the cluster. Create with NewRouter,
// mount Handler, call Drain on shutdown, and run Probe periodically
// (the occrouter daemon does; tests call it at chosen points).
type Router struct {
	opts    Options
	members []*member
	gens    genTable
	hints   *hintStore
	catalog struct {
		mu sync.Mutex
		m  map[string]arrayMeta
	}
	mux      *http.ServeMux
	reg      *obs.Registry
	met      routerMetrics
	sem      chan struct{}
	tenants  *server.TenantPlane
	draining atomic.Bool
}

// NewRouter validates the membership and builds the router.
func NewRouter(o Options) (*Router, error) {
	if len(o.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > len(o.Nodes) {
		o.Replicas = len(o.Nodes)
	}
	if o.Replicas > MaxReplicas {
		return nil, fmt.Errorf("cluster: %d replicas out of range (valid: 1..%d)", o.Replicas, MaxReplicas)
	}
	if o.TileDim == 0 {
		o.TileDim = 8
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	seen := map[string]bool{}
	r := &Router{opts: o}
	for _, nc := range o.Nodes {
		if nc.ID == "" {
			return nil, errors.New("cluster: node with empty ID")
		}
		if seen[nc.ID] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", nc.ID)
		}
		seen[nc.ID] = true
		r.members = append(r.members, &member{client: nc, keySum: keyhash.String(nc.ID)})
	}
	hints, err := newHintStore(o.HintDir)
	if err != nil {
		return nil, err
	}
	r.hints = hints
	r.catalog.m = map[string]arrayMeta{}
	// The catalog, like the generation table, is an in-memory cache of
	// state the nodes durably hold: rebuild it from their listings so a
	// restarted router keeps serving every existing array instead of
	// 404ing until re-creation. Union across nodes — a node that was
	// down during a create is missing arrays its peers have. Nodes that
	// don't answer are skipped here; the probe loop and the data plane
	// discover unreachable nodes the normal way.
	r.recoverCatalog()

	reg := o.Obs.MetricsOf()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r.reg = reg
	r.met = routerMetrics{
		requests: reg.Counter("occrouter_requests_total", "data-plane requests handled by the router"),
		errors:   reg.Counter("occrouter_errors_total", "router requests that failed (5xx)"),
		gets:     reg.Counter("occrouter_tile_gets_total", "tile reads routed"),
		puts:     reg.Counter("occrouter_tile_puts_total", "tile writes routed"),
		batches:  reg.Counter("occd_batch_requests_total", "batch requests routed"),
		batchOps: reg.Counter("occd_batch_ops_total", "individual ops carried by routed batches"),
		batchOpErrors: reg.Counter("occd_batch_op_errors_total",
			"routed batch ops that answered a per-op 4xx/5xx"),
		scans:       reg.Counter("occd_scan_requests_total", "streaming range scans routed"),
		scanChunks:  reg.Counter("occd_scan_chunks_total", "scan chunks stitched and sent by the router"),
		scanResumes: reg.Counter("occd_scan_resumes_total", "scans resumed from a cursor token"),
		reduces:     reg.Counter("occd_reduce_requests_total", "pushed-down reductions routed"),
		reduceElems: reg.Counter("occd_reduce_elems_total", "elements folded by routed reductions"),
		latency: reg.Histogram("occrouter_request_seconds",
			"routed request latency in seconds", obs.ExpBuckets(1e-5, 4, 10)),
		readRepairs:    reg.Counter("ooc_cluster_read_repairs_total", "stale replicas rewritten after a divergent fan-out read"),
		handoffHints:   reg.Counter("ooc_cluster_handoff_hints_total", "writes queued as hints for unreachable replicas"),
		hintsDrained:   reg.Counter("ooc_cluster_hints_drained_total", "hinted writes replayed to a returned replica"),
		quorumFailures: reg.Counter("ooc_cluster_quorum_failures_total", "requests failed for lack of a replica quorum"),
		staleWrites:    reg.Counter("ooc_cluster_stale_writes_total", "writes a node skipped for holding a newer generation"),
		nodesUp:        reg.Gauge("ooc_cluster_nodes_up", "storage nodes currently considered reachable"),
		hintsQueued:    reg.Gauge("ooc_cluster_hints_queued", "hinted writes currently queued for down replicas"),
		nodes:          reg.Gauge("ooc_cluster_nodes", "storage nodes in the static membership"),
		replicas:       reg.Gauge("ooc_cluster_replicas", "copies kept of every tile (R)"),
	}
	r.met.nodes.Set(float64(len(r.members)))
	r.met.replicas.Set(float64(o.Replicas))
	r.met.nodesUp.Set(float64(len(r.members)))

	r.sem = make(chan struct{}, o.MaxInflight)
	r.tenants = server.NewTenantPlane(server.TenantPlaneOpts{
		Config:       o.Tenants,
		MetricPrefix: "occrouter",
		Reg:          reg,
		Pool:         r.sem,
		QueueDepth:   o.QueueDepth,
	})

	r.mux = http.NewServeMux()
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /v1/stats", r.handleStats)
	r.mux.HandleFunc("GET /v1/arrays", r.handleArrayList)
	r.mux.HandleFunc("POST /v1/arrays", r.handleArrayCreate)
	r.mux.HandleFunc("GET /v1/arrays/{name}", r.handleArrayGet)
	r.mux.HandleFunc("GET /v1/arrays/{name}/tile", r.timed(r.handleTileGet))
	r.mux.HandleFunc("PUT /v1/arrays/{name}/tile", r.timed(r.handleTilePut))
	r.mux.HandleFunc("POST /v1/arrays/{name}/batch", r.timed(r.handleBatch))
	r.mux.HandleFunc("GET /v1/arrays/{name}/scan", r.timed(r.handleScan))
	r.mux.HandleFunc("POST /v1/arrays/{name}/reduce", r.timed(r.handleReduce))
	return r, nil
}

// Handler returns the HTTP handler to mount: the route table behind
// the tenant layer, so every request carries a resolved identity (and
// /t/<id>/-prefixed paths route like their bare forms).
func (r *Router) Handler() http.Handler { return server.TenantHandler(r.mux) }

// Replicas returns R.
func (r *Router) Replicas() int { return r.opts.Replicas }

// Drain stops admitting work, fails every queued admission with 503,
// and closes the hint logs. Node lifecycles are not the router's to
// manage.
func (r *Router) Drain() error {
	r.draining.Store(true)
	r.tenants.FailWaiters()
	return r.hints.Close()
}

// timed wraps a data-plane handler with admission — tenant quotas
// (429 + Retry-After), then a DRR-scheduled slot from the shared pool
// (503 when the queue is full) — and latency accounting.
func (r *Router) timed(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.draining.Load() {
			w.Header().Set("Retry-After", r.retryAfter())
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		r.met.requests.Inc()
		tenant := server.TenantOf(req)
		if ok, wait := r.tenants.Allow(tenant); !ok {
			w.Header().Set("Retry-After", retrySecs(wait))
			http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
			return
		}
		release, ok := r.tenants.Acquire(req, tenant)
		if !ok {
			w.Header().Set("Retry-After", r.retryAfter())
			http.Error(w, "admission queue full", http.StatusServiceUnavailable)
			return
		}
		defer release()
		req = server.WithAdmissionRelease(req, release)
		t0 := time.Now()
		next(w, req)
		r.met.latency.Observe(time.Since(t0).Seconds())
	}
}

// retrySecs renders a Retry-After duration as whole seconds (min 1).
func retrySecs(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (r *Router) retryAfter() string {
	secs := int64(math.Ceil(r.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// replicasFor ranks the membership by rendezvous score for key and
// returns the top R members — the tile's replica set, stable for a
// fixed membership, minimally disturbed when it changes.
func (r *Router) replicasFor(keySum uint64) []*member {
	type scored struct {
		m *member
		s uint64
	}
	sc := make([]scored, len(r.members))
	for i, m := range r.members {
		sc[i] = scored{m, keyhash.Rendezvous(keySum, m.keySum)}
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].s > sc[b].s })
	out := make([]*member, r.opts.Replicas)
	for i := range out {
		out[i] = sc[i].m
	}
	return out
}

// tileKeyOf renders the canonical routing key for (name, grid tile).
func tileKeyOf(name string, tile layout.Box) string {
	return string(keyhash.AppendKey(nil, name, tile))
}

// markDown transitions a member to down (idempotent), updating the
// liveness gauge.
func (r *Router) markDown(m *member) {
	if !m.down.Swap(true) {
		r.updateNodesUp()
	}
}

func (r *Router) updateNodesUp() {
	up := 0
	for _, m := range r.members {
		if !m.down.Load() {
			up++
		}
	}
	r.met.nodesUp.Set(float64(up))
}

// Probe is the router's recovery tick: down nodes that answer their
// health check get their catalog synced and their hint queue drained,
// then rejoin the live set; up nodes with residual hints drain too.
// The occrouter daemon calls it on a timer; tests and the local
// harness call it at exact points, which keeps episodes deterministic.
func (r *Router) Probe() {
	for _, m := range r.members {
		if m.down.Load() {
			if !m.client.Healthz() {
				continue
			}
			// A node that lost its disk between kill and return may be
			// missing arrays; replaying the catalog makes hint replay
			// (and future traffic) land on existing arrays.
			if !r.syncCatalog(m) {
				continue
			}
			if r.drainHints(m) {
				m.down.Store(false)
				r.updateNodesUp()
			}
		} else if r.hints.Pending(m.client.ID) > 0 {
			r.drainHints(m)
		}
	}
	r.met.hintsQueued.Set(float64(r.hints.PendingTotal()))
}

// recoverCatalog seeds the catalog with the union of the reachable
// nodes' array listings. Best-effort: an unreachable node contributes
// nothing (its arrays exist on replicas too, replication permitting),
// and listing failures never fail router construction.
func (r *Router) recoverCatalog() {
	for _, m := range r.members {
		arrays, err := m.client.ListArrays()
		if err != nil {
			continue
		}
		r.catalog.mu.Lock()
		for _, am := range arrays {
			if _, ok := r.catalog.m[am.Name]; !ok {
				r.catalog.m[am.Name] = am
			}
		}
		r.catalog.mu.Unlock()
	}
}

// syncCatalog replays every known array creation to a returning node.
func (r *Router) syncCatalog(m *member) bool {
	r.catalog.mu.Lock()
	arrays := make([]arrayMeta, 0, len(r.catalog.m))
	for _, am := range r.catalog.m {
		arrays = append(arrays, am)
	}
	r.catalog.mu.Unlock()
	for _, am := range arrays {
		if err := m.client.CreateArray(am.Name, am.Dims, am.Layout); err != nil {
			return false
		}
	}
	return true
}

// drainHints replays the member's hint queue; true means it emptied.
func (r *Router) drainHints(m *member) bool {
	n, err := r.hints.Drain(m.client.ID, func(h hint) error {
		stored, stale, err := m.client.PutTile(h.name, h.box, h.data, h.gen, !r.opts.NoWire)
		if err != nil {
			return err
		}
		if stale {
			// Something newer already landed — the hint is obsolete,
			// which is delivery, not failure.
			r.gens.raise(tileKeyOf(h.name, routingTile(h.box, r.opts.TileDim)), stored)
		}
		return nil
	})
	r.met.hintsDrained.Add(int64(n))
	r.met.hintsQueued.Set(float64(r.hints.PendingTotal()))
	return err == nil
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		r.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.reg.WritePrometheus(w)
}

// nodeStatsLite mirrors the slice of a node's /v1/stats the router
// aggregates (decoding into a local struct keeps the wire contract,
// not the server's internal type, as the coupling).
type nodeStatsLite struct {
	Engine    ooc.EngineStats `json:"engine"`
	Requests  int64           `json:"requests"`
	Coalesced int64           `json:"coalesced"`
}

// clusterStats is the /v1/stats cluster scorecard.
type clusterStats struct {
	Nodes          int   `json:"nodes"`
	NodesUp        int   `json:"nodes_up"`
	Replicas       int   `json:"replicas"`
	ReadRepairs    int64 `json:"read_repairs"`
	HandoffHints   int64 `json:"handoff_hints"`
	HintsDrained   int64 `json:"hints_drained"`
	HintsQueued    int64 `json:"hints_queued"`
	QuorumFailures int64 `json:"quorum_failures"`
	StaleWrites    int64 `json:"stale_writes"`
}

// nodeStat is one node's row in the scorecard.
type nodeStat struct {
	ID          string           `json:"id"`
	URL         string           `json:"url"`
	Up          bool             `json:"up"`
	HintsQueued int              `json:"hints_queued"`
	Engine      *ooc.EngineStats `json:"engine,omitempty"`
}

// routerStatsPayload is the router's /v1/stats JSON. The top-level
// keys mirror a single occd's payload — engine counters summed over
// reachable nodes — so tooling that reads occd stats (the load
// harness's delta reporting included) works unchanged against a
// router; cluster and nodes carry the distributed story.
type routerStatsPayload struct {
	Engine            ooc.EngineStats     `json:"engine"`
	HitRate           float64             `json:"hit_rate"`
	Requests          int64               `json:"requests"`
	Coalesced         int64               `json:"coalesced"`
	RejectedRateLimit int64               `json:"rejected_ratelimit"`
	RejectedQueue     int64               `json:"rejected_queue"`
	Inflight          int64               `json:"inflight"`
	Queued            int64               `json:"queued"`
	Draining          bool                `json:"draining"`
	Ops               routerOpsStats      `json:"ops"`
	Cluster           clusterStats        `json:"cluster"`
	Nodes             []nodeStat          `json:"nodes"`
	Tenants           []server.TenantStat `json:"tenants,omitempty"`
}

// routerOpsStats mirrors occd's batch/scan/reduce scorecard keys, with
// router-side counts (ops the router decomposed and fanned out).
type routerOpsStats struct {
	BatchRequests  int64 `json:"batch_requests"`
	BatchOps       int64 `json:"batch_ops"`
	BatchOpErrors  int64 `json:"batch_op_errors"`
	ScanRequests   int64 `json:"scan_requests"`
	ScanChunks     int64 `json:"scan_chunks"`
	ScanResumes    int64 `json:"scan_resumes"`
	ReduceRequests int64 `json:"reduce_requests"`
	ReduceElems    int64 `json:"reduce_elems"`
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	rejQuota, rejQueue := r.tenants.Totals()
	p := routerStatsPayload{
		Requests:          r.met.requests.Value(),
		RejectedRateLimit: rejQuota,
		RejectedQueue:     rejQueue,
		Inflight:          int64(r.tenants.InflightLen()),
		Queued:            r.tenants.Queued(),
		Draining:          r.draining.Load(),
		Tenants:           r.tenants.Stats(),
		Ops: routerOpsStats{
			BatchRequests:  r.met.batches.Value(),
			BatchOps:       r.met.batchOps.Value(),
			BatchOpErrors:  r.met.batchOpErrors.Value(),
			ScanRequests:   r.met.scans.Value(),
			ScanChunks:     r.met.scanChunks.Value(),
			ScanResumes:    r.met.scanResumes.Value(),
			ReduceRequests: r.met.reduces.Value(),
			ReduceElems:    r.met.reduceElems.Value(),
		},
		Cluster: clusterStats{
			Nodes:          len(r.members),
			Replicas:       r.opts.Replicas,
			ReadRepairs:    r.met.readRepairs.Value(),
			HandoffHints:   r.met.handoffHints.Value(),
			HintsDrained:   r.met.hintsDrained.Value(),
			HintsQueued:    int64(r.hints.PendingTotal()),
			QuorumFailures: r.met.quorumFailures.Value(),
			StaleWrites:    r.met.staleWrites.Value(),
		},
	}
	for _, m := range r.members {
		ns := nodeStat{
			ID:          m.client.ID,
			URL:         m.client.BaseURL,
			Up:          !m.down.Load(),
			HintsQueued: r.hints.Pending(m.client.ID),
		}
		if ns.Up {
			var lite nodeStatsLite
			if err := m.client.Stats(&lite); err == nil {
				es := lite.Engine
				ns.Engine = &es
				p.Engine.Hits += es.Hits
				p.Engine.Misses += es.Misses
				p.Engine.Evictions += es.Evictions
				p.Engine.Invalidations += es.Invalidations
				p.Engine.Writebacks += es.Writebacks
				p.Engine.WritebackErrors += es.WritebackErrors
				p.Engine.PrefetchIssued += es.PrefetchIssued
				p.Engine.PrefetchUseful += es.PrefetchUseful
				p.Coalesced += lite.Coalesced
			}
		}
		if ns.Up {
			p.Cluster.NodesUp++
		}
		p.Nodes = append(p.Nodes, ns)
	}
	p.HitRate = p.Engine.HitRate()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}

func (r *Router) handleArrayList(w http.ResponseWriter, req *http.Request) {
	r.catalog.mu.Lock()
	out := make([]arrayMeta, 0, len(r.catalog.m))
	for _, am := range r.catalog.m {
		out = append(out, am)
	}
	r.catalog.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleArrayGet(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	r.catalog.mu.Lock()
	am, ok := r.catalog.m[name]
	r.catalog.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no array %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, am)
}

// handleArrayCreate fans the creation out to every node: placement can
// land a tile anywhere, so the array must exist everywhere. Nodes that
// are down catch up via catalog sync when they return; the create
// succeeds as long as every REACHABLE node accepted it and at least
// one did.
func (r *Router) handleArrayCreate(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Name   string  `json:"name"`
		Dims   []int64 `json:"dims"`
		Layout string  `json:"layout"`
	}
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad create body: %v", err), http.StatusBadRequest)
		return
	}
	if body.Name == "" || len(body.Dims) == 0 {
		http.Error(w, "create needs a name and dims", http.StatusBadRequest)
		return
	}
	elems := int64(1)
	for _, d := range body.Dims {
		if d <= 0 {
			http.Error(w, fmt.Sprintf("non-positive extent %d", d), http.StatusBadRequest)
			return
		}
		elems *= d
	}
	acks := 0
	var hardErr error
	for _, m := range r.members {
		if m.down.Load() {
			continue
		}
		if err := m.client.CreateArray(body.Name, body.Dims, body.Layout); err != nil {
			if errors.Is(err, ErrUnavailable) {
				r.markDown(m)
				continue
			}
			hardErr = err
			break
		}
		acks++
	}
	if hardErr != nil {
		r.met.errors.Inc()
		http.Error(w, hardErr.Error(), http.StatusBadRequest)
		return
	}
	if acks == 0 {
		r.met.errors.Inc()
		w.Header().Set("Retry-After", r.retryAfter())
		http.Error(w, "no reachable node accepted the create", http.StatusServiceUnavailable)
		return
	}
	am := arrayMeta{Name: body.Name, Dims: body.Dims, Elems: elems, Layout: body.Layout}
	r.catalog.mu.Lock()
	r.catalog.m[body.Name] = am
	r.catalog.mu.Unlock()
	writeJSON(w, http.StatusCreated, am)
}

// target resolves {name} + lo/hi into a clipped box against the
// catalog, writing the 4xx itself on failure.
func (r *Router) target(w http.ResponseWriter, req *http.Request) (arrayMeta, layout.Box, bool) {
	name := req.PathValue("name")
	r.catalog.mu.Lock()
	am, ok := r.catalog.m[name]
	r.catalog.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no array %q", name), http.StatusNotFound)
		return am, layout.Box{}, false
	}
	lo, err := parseCoords(req.URL.Query().Get("lo"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad lo: %v", err), http.StatusBadRequest)
		return am, layout.Box{}, false
	}
	hi, err := parseCoords(req.URL.Query().Get("hi"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad hi: %v", err), http.StatusBadRequest)
		return am, layout.Box{}, false
	}
	if len(lo) != len(am.Dims) || len(hi) != len(am.Dims) {
		http.Error(w, fmt.Sprintf("tile rank %d/%d, array rank %d", len(lo), len(hi), len(am.Dims)), http.StatusBadRequest)
		return am, layout.Box{}, false
	}
	for d := range lo {
		if hi[d] < lo[d] {
			http.Error(w, fmt.Sprintf("hi[%d]=%d below lo[%d]=%d", d, hi[d], d, lo[d]), http.StatusBadRequest)
			return am, layout.Box{}, false
		}
	}
	box := layout.NewBox(lo, hi).Clip(am.Dims)
	if box.Empty() {
		http.Error(w, fmt.Sprintf("tile %v is empty after clipping to %v", layout.NewBox(lo, hi), am.Dims), http.StatusBadRequest)
		return am, layout.Box{}, false
	}
	return am, box, true
}

// pieceGet reads one grid-tile piece: fan out to the whole replica
// set, resolve with the freshest of WHOEVER ANSWERS (read-one /
// latest-wins — a single reply suffices, so reads stay available
// while any replica lives, at the price of possible staleness when
// the only survivor's copy is still a queued hint), and synchronously
// read-repair stale responders. See the package comment for the full
// consistency contract. The fan-out rides under tenant's identity so
// node-side admission schedules it in the right lane; read-repair
// stays untenanted (system traffic, not the tenant's bytes).
func (r *Router) pieceGet(tenant, name string, piece layout.Box) ([]float64, uint64, error) {
	key := tileKeyOf(name, routingTile(piece, r.opts.TileDim))
	reps := r.replicasFor(keyhash.Bytes([]byte(key)))

	type reply struct {
		data []float64
		gen  uint64
		err  error
	}
	replies := make([]reply, len(reps))
	var wg sync.WaitGroup
	for i, m := range reps {
		if m.down.Load() {
			replies[i].err = ErrUnavailable
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			data, gen, err := m.client.ForTenant(tenant).GetTile(name, piece, !r.opts.NoWire)
			if err != nil && errors.Is(err, ErrUnavailable) {
				r.markDown(m)
			}
			replies[i] = reply{data, gen, err}
		}(i, m)
	}
	wg.Wait()

	// Freshest replica wins; lowest replica rank breaks ties so the
	// resolution is deterministic, not completion-order dependent.
	win := -1
	var hardErr error
	for i := range replies {
		if replies[i].err != nil {
			if !errors.Is(replies[i].err, ErrUnavailable) && hardErr == nil {
				hardErr = replies[i].err
			}
			continue
		}
		if win < 0 || replies[i].gen > replies[win].gen {
			win = i
		}
	}
	if win < 0 {
		if hardErr != nil {
			return nil, 0, hardErr
		}
		return nil, 0, ErrUnavailable
	}
	// Read-repair: rewrite every reachable replica that answered with
	// an older generation, under the winner's generation, so the next
	// read agrees. Synchronous — the repair is part of this read's
	// consistency story, and deterministic tests can observe it.
	for i := range replies {
		if i == win || replies[i].err != nil || replies[i].gen >= replies[win].gen {
			continue
		}
		if _, _, err := reps[i].client.PutTile(name, piece, replies[win].data, replies[win].gen, !r.opts.NoWire); err != nil {
			if errors.Is(err, ErrUnavailable) {
				r.markDown(reps[i])
			}
			continue
		}
		r.met.readRepairs.Inc()
	}
	r.gens.raise(key, replies[win].gen)
	return replies[win].data, replies[win].gen, nil
}

// piecePut writes one grid-tile piece to its replica set under a fresh
// generation: live replicas synchronously, down or failing replicas as
// durable hints. ok requires a sloppy quorum — at least one live ack,
// and live acks plus durably queued hints reaching majority. The live
// fan-out carries tenant's identity; hint replay stays untenanted.
func (r *Router) piecePut(tenant, name string, piece layout.Box, data []float64) (uint64, bool) {
	key := tileKeyOf(name, routingTile(piece, r.opts.TileDim))
	reps := r.replicasFor(keyhash.Bytes([]byte(key)))

	// Up to one retry round: a node reporting a newer stored generation
	// (a router restart zeroed the counter) raises it, and the write
	// re-runs with a generation that wins.
	for attempt := 0; attempt < 2; attempt++ {
		gen := r.gens.next(key)
		type reply struct {
			acked  bool
			stale  bool
			stored uint64
			hinted bool
		}
		replies := make([]reply, len(reps))
		var wg sync.WaitGroup
		for i, m := range reps {
			if m.down.Load() {
				if r.hints.Enqueue(m.client.ID, name, piece, gen, data) == nil {
					replies[i].hinted = true
					r.met.handoffHints.Inc()
				}
				continue
			}
			wg.Add(1)
			go func(i int, m *member) {
				defer wg.Done()
				stored, stale, err := m.client.ForTenant(tenant).PutTile(name, piece, data, gen, !r.opts.NoWire)
				if err != nil {
					if errors.Is(err, ErrUnavailable) {
						r.markDown(m)
						if r.hints.Enqueue(m.client.ID, name, piece, gen, data) == nil {
							replies[i].hinted = true
							r.met.handoffHints.Inc()
						}
					}
					return
				}
				replies[i] = reply{acked: true, stale: stale, stored: stored}
			}(i, m)
		}
		wg.Wait()
		r.met.hintsQueued.Set(float64(r.hints.PendingTotal()))

		acks, hinted, staleSeen := 0, 0, uint64(0)
		for _, rep := range replies {
			if rep.acked {
				// A stale 204 still counts toward the quorum: the replica
				// is live and durably holds a NEWER write, so ours is
				// superseded, not lost — under last-write-wins it reads as
				// applied immediately before the write that beat it.
				acks++
				if rep.stale && rep.stored > staleSeen {
					staleSeen = rep.stored
				}
			}
			if rep.hinted {
				hinted++
			}
		}
		if staleSeen > gen && attempt == 0 {
			// The cluster has newer generations than our counter knew —
			// either a router restart zeroed it, or a concurrent writer
			// outran us. Catch the counter up and rewrite once so this
			// PUT gets a chance to really be the latest; if the retry is
			// outrun again, the superseding write wins and the stale acks
			// above settle the quorum.
			r.met.staleWrites.Inc()
			r.gens.raise(key, staleSeen)
			continue
		}
		quorum := r.opts.Replicas/2 + 1
		if acks >= 1 && acks+hinted >= quorum {
			return gen, true
		}
		return gen, false
	}
	return 0, false
}

func (r *Router) handleTileGet(w http.ResponseWriter, req *http.Request) {
	am, box, ok := r.target(w, req)
	if !ok {
		return
	}
	r.met.gets.Inc()
	tenant := server.TenantOf(req)
	pieces := gridTiles(box, r.opts.TileDim)
	out := make([]float64, box.Size())
	var maxGen uint64
	for _, piece := range pieces {
		data, gen, err := r.pieceGet(tenant, am.Name, piece)
		if err != nil {
			r.met.errors.Inc()
			if errors.Is(err, ErrUnavailable) {
				r.met.quorumFailures.Inc()
				w.Header().Set("Retry-After", r.retryAfter())
				http.Error(w, "no reachable replica", http.StatusServiceUnavailable)
			} else {
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		if gen > maxGen {
			maxGen = gen
		}
		if len(pieces) == 1 {
			out = data
			break
		}
		copyRegion(out, box, data, piece, piece)
	}
	var payload []byte
	compress := acceptsWire(req.Header.Get("Accept-Encoding"))
	if compress {
		payload = ooc.AppendFrame(nil, out)
		w.Header().Set("Content-Encoding", server.WireEncoding)
	} else {
		payload = make([]byte, len(out)*ooc.ElemSize)
		for i, v := range out {
			binary.LittleEndian.PutUint64(payload[i*ooc.ElemSize:], math.Float64bits(v))
		}
	}
	r.tenants.DebitBytes(tenant, box.Size()*ooc.ElemSize)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(server.TileGenHeader, strconv.FormatUint(maxGen, 10))
	w.Header().Set("X-Tile-Elems", strconv.FormatInt(box.Size(), 10))
	w.Write(payload)
}

func (r *Router) handleTilePut(w http.ResponseWriter, req *http.Request) {
	am, box, ok := r.target(w, req)
	if !ok {
		return
	}
	r.met.puts.Inc()
	want := box.Size() * ooc.ElemSize
	raw, err := io.ReadAll(io.LimitReader(req.Body, want+64))
	if err != nil {
		http.Error(w, fmt.Sprintf("tile payload: %v", err), http.StatusBadRequest)
		return
	}
	data := make([]float64, box.Size())
	switch enc := req.Header.Get("Content-Encoding"); enc {
	case "":
		if int64(len(raw)) != want {
			http.Error(w, fmt.Sprintf("tile payload: %d bytes, want %d for %v", len(raw), want, box), http.StatusBadRequest)
			return
		}
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ooc.ElemSize:]))
		}
	case server.WireEncoding:
		n, err := ooc.DecodeFrame(raw, data)
		if err == nil && n != len(raw) {
			err = fmt.Errorf("%d trailing bytes after the frame", len(raw)-n)
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("tile frame: %v", err), http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, fmt.Sprintf("unsupported Content-Encoding %q (only %s)", enc, server.WireEncoding), http.StatusUnsupportedMediaType)
		return
	}

	tenant := server.TenantOf(req)
	pieces := gridTiles(box, r.opts.TileDim)
	var maxGen uint64
	for _, piece := range pieces {
		var pdata []float64
		if len(pieces) == 1 {
			pdata = data
		} else {
			pdata = make([]float64, piece.Size())
			copyRegion(pdata, piece, data, box, piece)
		}
		gen, ok := r.piecePut(tenant, am.Name, piece, pdata)
		if !ok {
			r.met.errors.Inc()
			r.met.quorumFailures.Inc()
			w.Header().Set("Retry-After", r.retryAfter())
			http.Error(w, "write quorum unavailable", http.StatusServiceUnavailable)
			return
		}
		if gen > maxGen {
			maxGen = gen
		}
	}
	r.tenants.DebitBytes(tenant, box.Size()*ooc.ElemSize)
	w.Header().Set(server.TileGenHeader, strconv.FormatUint(maxGen, 10))
	w.Header().Set("X-Tile-Elems", strconv.FormatInt(box.Size(), 10))
	w.WriteHeader(http.StatusNoContent)
}

// acceptsWire mirrors the node-side Accept-Encoding check.
func acceptsWire(header string) bool {
	for _, part := range strings.Split(header, ",") {
		c, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(c) == server.WireEncoding {
			return true
		}
	}
	return false
}

// parseCoords parses "1,2,3" into coordinates.
func parseCoords(s string) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing coordinates")
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative coordinate %d", v)
		}
		out[i] = v
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
