package cluster

// Error-path coverage for the router's operator endpoints: every
// rejection must be a clean 4xx/5xx with the offending op named, and
// losing the whole node set must surface as 503 (quorum/replica
// unavailable), never a hang or a fabricated answer.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"outcore/internal/layout"
	"outcore/internal/server"
)

func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func TestRouterBatchRejections(t *testing.T) {
	lc := opsConfCluster(t, 900)
	batchURL := lc.RouterURL + "/v1/arrays/A/batch"

	if code, _ := postRaw(t, lc.RouterURL+"/v1/arrays/nope/batch", `{"ops":[{"op":"get","lo":[0,0],"hi":[4,4]}]}`); code != http.StatusNotFound {
		t.Errorf("unknown array: %d, want 404", code)
	}
	for _, bad := range []string{`{"ops": [`, `{"ops": []}`, `nonsense`} {
		if code, _ := postRaw(t, batchURL, bad); code != http.StatusBadRequest {
			t.Errorf("body %q: %d, want 400", bad, code)
		}
	}

	// Per-op failures ride inside an overall 200.
	var resp struct {
		Results []struct {
			Status int    `json:"status"`
			Error  string `json:"error"`
		} `json:"results"`
		Failed int `json:"failed"`
	}
	code, raw := postJSON(t, batchURL, map[string]any{"ops": []map[string]any{
		{"op": "frobnicate", "lo": []int64{0, 0}, "hi": []int64{4, 4}},
		{"op": "get", "lo": []int64{0}, "hi": []int64{4}},
		{"op": "get", "lo": []int64{-1, 0}, "hi": []int64{4, 4}},
		{"op": "get", "lo": []int64{4, 4}, "hi": []int64{0, 0}},
		{"op": "get", "lo": []int64{70, 70}, "hi": []int64{80, 80}},
		{"op": "put", "lo": []int64{0, 0}, "hi": []int64{4, 4}, "data_b64": "!!!not-base64!!!"},
		{"op": "put", "lo": []int64{0, 0}, "hi": []int64{4, 4}, "data_b64": "AAAA"},
		{"op": "get", "lo": []int64{0, 0}, "hi": []int64{4, 4}},
	}})
	if code != http.StatusOK {
		t.Fatalf("mixed batch: %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if resp.Failed != 7 || len(resp.Results) != 8 {
		t.Fatalf("failed=%d results=%d, want 7/8: %s", resp.Failed, len(resp.Results), raw)
	}
	for i, r := range resp.Results[:7] {
		if r.Status != http.StatusBadRequest || r.Error == "" {
			t.Errorf("op %d: status=%d error=%q, want a described 400", i, r.Status, r.Error)
		}
	}
	if resp.Results[7].Status != http.StatusOK {
		t.Errorf("trailing good op: %d, want 200 despite earlier failures", resp.Results[7].Status)
	}
}

func TestRouterOperatorsUnavailable(t *testing.T) {
	lc := opsConfCluster(t, 901)
	for i := 0; i < 3; i++ {
		lc.Kill(i)
	}

	var resp struct {
		Results []struct {
			Status int `json:"status"`
		} `json:"results"`
		Failed int `json:"failed"`
	}
	code, raw := postJSON(t, lc.RouterURL+"/v1/arrays/A/batch", map[string]any{"ops": []map[string]any{
		{"op": "get", "lo": []int64{0, 0}, "hi": []int64{4, 4}},
		{"op": "put", "lo": []int64{0, 0}, "hi": []int64{4, 4},
			"data_b64": base64.StdEncoding.EncodeToString(leBytes(make([]float64, 16)))},
	}})
	if code != http.StatusOK {
		t.Fatalf("batch with cluster down: %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if resp.Failed != 2 {
		t.Fatalf("failed=%d, want both ops down: %s", resp.Failed, raw)
	}
	for i, r := range resp.Results {
		if r.Status != http.StatusServiceUnavailable {
			t.Errorf("op %d with no nodes: %d, want 503", i, r.Status)
		}
	}

	hr, err := http.Get(lc.RouterURL + "/v1/arrays/A/scan?lo=0,0&hi=8,8")
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("scan with no nodes: %d, want 503", hr.StatusCode)
	}

	if code, _ := postRaw(t, lc.RouterURL+"/v1/arrays/A/reduce", `{"op":"sum","lo":[0,0],"hi":[8,8]}`); code != http.StatusServiceUnavailable {
		t.Errorf("reduce with no nodes: %d, want 503", code)
	}
}

func TestRouterScanRejections(t *testing.T) {
	lc := opsConfCluster(t, 902)
	get := func(path string) int {
		resp, err := http.Get(lc.RouterURL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		path, why string
		want      int
	}{
		{"/v1/arrays/nope/scan?lo=0,0&hi=8,8", "unknown array", http.StatusNotFound},
		{"/v1/arrays/A/scan?lo=zero,0&hi=8,8", "bad lo", http.StatusBadRequest},
		{"/v1/arrays/A/scan?lo=0,0&hi=8,8&chunk=-3", "bad chunk", http.StatusBadRequest},
		{"/v1/arrays/A/scan?cursor=garbage", "garbage cursor", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := get(c.path); code != c.want {
			t.Errorf("%s: %d, want %d", c.why, code, c.want)
		}
	}

	// A cursor minted for one array must not resume against a
	// different layout, a shrunken geometry, or past the plan's end.
	box := layout.NewBox([]int64{0, 0}, []int64{16, 16})
	wrongLayout := server.EncodeScanCursor("A", box, 64, "col-major", 1)
	if code := get("/v1/arrays/A/scan?cursor=" + wrongLayout); code != http.StatusBadRequest {
		t.Errorf("wrong-layout cursor: %d, want 400", code)
	}
	unknown := server.EncodeScanCursor("nope", box, 64, "row-major", 1)
	if code := get("/v1/arrays/A/scan?cursor=" + unknown); code != http.StatusNotFound {
		t.Errorf("unknown-array cursor: %d, want 404", code)
	}
	oob := server.EncodeScanCursor("A", layout.NewBox([]int64{0, 0}, []int64{999, 999}), 64, "row-major", 1)
	if code := get("/v1/arrays/A/scan?cursor=" + oob); code != http.StatusBadRequest {
		t.Errorf("out-of-bounds cursor: %d, want 400", code)
	}
	past := server.EncodeScanCursor("A", box, 64, "row-major", 9999)
	if code := get("/v1/arrays/A/scan?cursor=" + past); code != http.StatusBadRequest {
		t.Errorf("past-the-plan cursor: %d, want 400", code)
	}
}

func TestRouterReduceRejections(t *testing.T) {
	lc := opsConfCluster(t, 903)
	url := lc.RouterURL + "/v1/arrays/A/reduce"
	cases := []struct {
		url, body, why string
		want           int
	}{
		{lc.RouterURL + "/v1/arrays/nope/reduce", `{"op":"sum","lo":[0,0],"hi":[8,8]}`, "unknown array", http.StatusNotFound},
		{url, `{"op":"sum","lo":[`, "truncated body", http.StatusBadRequest},
		{url, `{"op":"median","lo":[0,0],"hi":[8,8]}`, "unknown op", http.StatusBadRequest},
		{url, `{"op":"sum","lo":[0],"hi":[8]}`, "rank mismatch", http.StatusBadRequest},
		{url, `{"op":"sum","lo":[8,8],"hi":[0,0]}`, "inverted box", http.StatusBadRequest},
		{url, `{"op":"sum","lo":[64,64],"hi":[70,70]}`, "empty after clip", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := postRaw(t, c.url, c.body); code != c.want {
			t.Errorf("%s: %d, want %d (%s)", c.why, code, c.want, body)
		}
	}
}

// TestRouterColMajorScan covers the catalog's column-major layout
// reconstruction: the router's scan over a col array must plan column
// runs, exactly as the single-node plane does.
func TestRouterColMajorScan(t *testing.T) {
	lc := opsConfCluster(t, 904)
	if err := lc.Client().CreateArray("C", []int64{confEdge, confEdge}, "col"); err != nil {
		t.Fatalf("create col array: %v", err)
	}
	dims := []int64{confEdge, confEdge}
	box := layout.NewBox([]int64{0, 0}, []int64{24, 24})
	chunks := routerScan(t, fmt.Sprintf("%s/v1/arrays/C/scan?lo=0,0&hi=24,24&chunk=%d", lc.RouterURL, confTile*confTile))
	plan := layout.PlanScan(layout.ColMajor(dims...), box, confTile*confTile)
	if len(chunks) != len(plan) {
		t.Fatalf("col scan: %d chunks, plan %d", len(chunks), len(plan))
	}
	for i, ch := range chunks {
		if ch.Box.String() != plan[i].String() {
			t.Fatalf("col scan chunk %d: %v, plan %v — not column order", i, ch.Box, plan[i])
		}
	}
}
