package cluster

import (
	"math/rand"
	"testing"

	"outcore/internal/layout"
)

// TestGridTilesPartition decomposes random boxes and checks the
// pieces exactly partition the box: disjoint, covering, each inside
// one aligned grid tile, in row-major tile order.
func TestGridTilesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const tdim = int64(8)
	for trial := 0; trial < 200; trial++ {
		rank := 1 + rng.Intn(3)
		lo := make([]int64, rank)
		hi := make([]int64, rank)
		for d := range lo {
			lo[d] = rng.Int63n(40)
			hi[d] = lo[d] + 1 + rng.Int63n(20)
		}
		box := layout.NewBox(lo, hi)
		pieces := gridTiles(box, tdim)

		var total int64
		for _, p := range pieces {
			total += p.Size()
			rt := routingTile(p, tdim)
			for d := range p.Lo {
				if p.Lo[d] < rt.Lo[d] || p.Hi[d] > rt.Hi[d] {
					t.Fatalf("piece %v of %v escapes its grid tile %v", p, box, rt)
				}
				if p.Lo[d] < box.Lo[d] || p.Hi[d] > box.Hi[d] {
					t.Fatalf("piece %v escapes its box %v", p, box)
				}
			}
		}
		if total != box.Size() {
			t.Fatalf("pieces of %v cover %d elements, box has %d", box, total, box.Size())
		}
		// Disjointness: with sizes summing to the box and each piece
		// contained, any overlap would force total > box.Size() only if
		// pieces repeat — check pairwise lows are distinct.
		seen := map[string]bool{}
		for _, p := range pieces {
			k := p.String()
			if seen[k] {
				t.Fatalf("piece %v repeats in decomposition of %v", p, box)
			}
			seen[k] = true
		}
	}
}

// TestGridTilesAlignedIsIdentity keeps the common case allocation-
// shaped: an aligned whole tile decomposes to itself.
func TestGridTilesAlignedIsIdentity(t *testing.T) {
	box := layout.NewBox([]int64{16, 8}, []int64{24, 16})
	pieces := gridTiles(box, 8)
	if len(pieces) != 1 || pieces[0].String() != box.String() {
		t.Fatalf("aligned tile decomposed to %v", pieces)
	}
}

// TestCopyRegionRoundTrip splits a box into grid pieces, scatters a
// box-local payload out to per-piece buffers, stitches it back, and
// requires identity.
func TestCopyRegionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rank := 1 + rng.Intn(3)
		lo := make([]int64, rank)
		hi := make([]int64, rank)
		for d := range lo {
			lo[d] = rng.Int63n(20)
			hi[d] = lo[d] + 1 + rng.Int63n(18)
		}
		box := layout.NewBox(lo, hi)
		src := make([]float64, box.Size())
		for i := range src {
			src[i] = rng.Float64()
		}
		dst := make([]float64, box.Size())
		for _, piece := range gridTiles(box, 8) {
			buf := make([]float64, piece.Size())
			copyRegion(buf, piece, src, box, piece)
			copyRegion(dst, box, buf, piece, piece)
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("round trip of %v diverged at element %d", box, i)
			}
		}
	}
}
