package cluster

// The operator half of the cluster conformance suite: the batched &
// streaming operators (PR 9) replayed against the router+N-node plane.
// A subject cluster is driven exclusively through /batch while a
// reference cluster — same seed, same topology — receives the
// identical boxes as sequential single-tile PUTs; every readback path
// (single-tile GET, batch GET, scan chunk, reduce) must then agree
// byte-for-byte across both planes and with the sequential model.
//
// Reduce note: min/max/count are order-free and compared bit-exactly.
// The conformance data is integer-valued so that sum is exact under
// any association and the cluster's per-piece partial combination is
// also bit-identical to the client-side fold; associativity of
// general float sums across pieces is a documented non-goal.

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

func opsConfCluster(t *testing.T, seed int64) *LocalCluster {
	t.Helper()
	lc, err := NewLocal(LocalOptions{
		Nodes:       3,
		Replicas:    2,
		TileDim:     confTile,
		CacheTiles:  confCache,
		DurablePuts: true,
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.CreateArray("A", confEdge, confEdge); err != nil {
		t.Fatalf("cluster: create: %v", err)
	}
	return lc
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func leBytes(data []float64) []byte {
	out := make([]byte, len(data)*ooc.ElemSize)
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[i*ooc.ElemSize:], math.Float64bits(v))
	}
	return out
}

// TestClusterOperatorConformance is the router+3-node plane of the
// PR-9 differential suite; CI runs it under -race next to
// TestClusterConformance.
func TestClusterOperatorConformance(t *testing.T) {
	for seed := int64(1); seed <= confSeeds(t); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runClusterOperatorSeed(t, seed)
		})
	}
}

func runClusterOperatorSeed(t *testing.T, seed int64) {
	subject := opsConfCluster(t, seed)
	ref := opsConfCluster(t, seed+1000)
	refCli := ref.Client()
	subjCli := subject.Client()

	model := &confModel{a: make([]float64, confEdge*confEdge)}
	rng := rand.New(rand.NewSource(seed * 31))
	dims := []int64{confEdge, confEdge}

	// Write phase: random boxes land on the subject in batches and on
	// the reference one tile at a time. Integer values keep every
	// reduction order-free.
	for round := 0; round < 8; round++ {
		n := 1 + rng.Intn(5)
		ops := make([]batchWireOp, 0, n)
		type w struct {
			box  layout.Box
			data []float64
		}
		var ws []w
		for i := 0; i < n; i++ {
			lo := []int64{rng.Int63n(confEdge), rng.Int63n(confEdge)}
			hi := []int64{lo[0] + 1 + rng.Int63n(confTile*2), lo[1] + 1 + rng.Int63n(confTile*2)}
			box := layout.NewBox(lo, hi).Clip(dims)
			data := make([]float64, box.Size())
			for j := range data {
				data[j] = float64(rng.Int63n(2000) - 1000)
			}
			ops = append(ops, batchWireOp{Op: "put", Lo: box.Lo, Hi: box.Hi,
				Data: base64.StdEncoding.EncodeToString(leBytes(data))})
			ws = append(ws, w{box, data})
		}
		status, body := postJSON(t, subject.RouterURL+"/v1/arrays/A/batch", map[string]any{"ops": ops})
		if status != http.StatusOK {
			t.Fatalf("router batch: status %d %s", status, body)
		}
		var out struct {
			Results []batchWireResult `json:"results"`
			Failed  int               `json:"failed"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Failed != 0 {
			t.Fatalf("router batch: %d ops failed: %+v", out.Failed, out.Results)
		}
		for _, w := range ws {
			if _, _, err := refCli.PutTile("A", w.box, w.data, 0, true); err != nil {
				t.Fatalf("ref put %v: %v", w.box, err)
			}
			// The model applies writes in op order — last write wins on
			// overlap, matching both planes' sequential apply.
			for i, r := 0, w.box.Lo[0]; r < w.box.Hi[0]; r++ {
				for c := w.box.Lo[1]; c < w.box.Hi[1]; c++ {
					model.a[r*confEdge+c] = w.data[i]
					i++
				}
			}
		}
	}

	// Every grid tile agrees across subject, reference, and model.
	for tr := int64(0); tr < confEdge/confTile; tr++ {
		for tc := int64(0); tc < confEdge/confTile; tc++ {
			box := alignedTile(tr, tc)
			want := model.want(box)
			got, _, err := subjCli.GetTile("A", box, true)
			if err != nil {
				t.Fatalf("subject get %v: %v", box, err)
			}
			if !equalSlices(got, want) {
				t.Fatalf("subject tile %v diverged from the model after batch writes", box)
			}
			refGot, _, err := refCli.GetTile("A", box, true)
			if err != nil {
				t.Fatalf("ref get %v: %v", box, err)
			}
			if !equalSlices(refGot, want) {
				t.Fatalf("reference tile %v diverged from the model", box)
			}
		}
	}

	// Batch GET through the router ≡ individual router GETs.
	var gets []batchWireOp
	var getBoxes []layout.Box
	for i := 0; i < 4; i++ {
		lo := []int64{rng.Int63n(confEdge), rng.Int63n(confEdge)}
		hi := []int64{lo[0] + 1 + rng.Int63n(20), lo[1] + 1 + rng.Int63n(20)}
		box := layout.NewBox(lo, hi).Clip(dims)
		gets = append(gets, batchWireOp{Op: "get", Lo: box.Lo, Hi: box.Hi})
		getBoxes = append(getBoxes, box)
	}
	status, body := postJSON(t, subject.RouterURL+"/v1/arrays/A/batch", map[string]any{"ops": gets})
	if status != http.StatusOK {
		t.Fatalf("router batch get: status %d", status)
	}
	var gout struct {
		Results []batchWireResult `json:"results"`
	}
	if err := json.Unmarshal(body, &gout); err != nil {
		t.Fatal(err)
	}
	for i, res := range gout.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("batch get %v: status %d (%s)", getBoxes[i], res.Status, res.Error)
		}
		raw, _ := base64.StdEncoding.DecodeString(res.Data)
		single, _, err := subjCli.GetTile("A", getBoxes[i], false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, leBytes(single)) {
			t.Fatalf("batch get %v differs from a single router GET", getBoxes[i])
		}
	}

	// Scan through the router ≡ concatenated router tile GETs in the
	// plan order layout.PlanScan derives, and resuming from any chunk's
	// cursor neither skips nor re-delivers.
	lo := []int64{rng.Int63n(confEdge / 2), rng.Int63n(confEdge / 2)}
	hi := []int64{lo[0] + confEdge/2, lo[1] + confEdge/2}
	scanBox := layout.NewBox(lo, hi)
	chunkElems := int64(64 + rng.Intn(400))
	scanURL := fmt.Sprintf("%s/v1/arrays/A/scan?lo=%d,%d&hi=%d,%d&chunk=%d",
		subject.RouterURL, lo[0], lo[1], hi[0], hi[1], chunkElems)
	chunks := routerScan(t, scanURL)
	plan := layout.PlanScan(layout.RowMajor(dims...), scanBox, chunkElems)
	if len(chunks) != len(plan) {
		t.Fatalf("router scan delivered %d chunks, plan has %d", len(chunks), len(plan))
	}
	for i, ch := range chunks {
		if ch.Box.String() != plan[i].String() {
			t.Fatalf("chunk %d box %v, plan %v", i, ch.Box, plan[i])
		}
		single, _, err := subjCli.GetTile("A", ch.Box, true)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlices(ch.Data, single) {
			t.Fatalf("scan chunk %d over %v differs from a router tile GET", i, ch.Box)
		}
		if !equalSlices(ch.Data, model.want(ch.Box)) {
			t.Fatalf("scan chunk %d over %v diverged from the model", i, ch.Box)
		}
	}
	if len(chunks) > 1 {
		k := rng.Intn(len(chunks) - 1)
		resumed := routerScan(t, subject.RouterURL+"/v1/arrays/A/scan?cursor="+chunks[k].Cursor)
		if len(resumed) != len(chunks)-k-1 {
			t.Fatalf("resume at %d delivered %d chunks, want %d", k, len(resumed), len(chunks)-k-1)
		}
		for i, ch := range resumed {
			want := chunks[k+1+i]
			if ch.Seq != want.Seq || !equalSlices(ch.Data, want.Data) {
				t.Fatalf("resume at %d: chunk %d diverged (seq %d vs %d)", k, i, ch.Seq, want.Seq)
			}
		}
	}

	// Pushed-down reduce through the router ≡ the client-side fold over
	// the model (== a plain GET, already proven equal above).
	redLo := []int64{rng.Int63n(confEdge / 2), rng.Int63n(confEdge / 2)}
	redHi := []int64{redLo[0] + 1 + rng.Int63n(confEdge/2), redLo[1] + 1 + rng.Int63n(confEdge/2)}
	redBox := layout.NewBox(redLo, redHi)
	refData := model.want(redBox)
	var sum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range refData {
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	want := map[string]float64{"sum": sum, "min": minV, "max": maxV, "count": float64(redBox.Size())}
	for op, wv := range want {
		got, count, err := subjCli.Reduce("A", redBox, op)
		if err != nil {
			t.Fatalf("router reduce %s: %v", op, err)
		}
		if count != redBox.Size() {
			t.Fatalf("router reduce %s: count %d, want %d", op, count, redBox.Size())
		}
		if math.Float64bits(got) != math.Float64bits(wv) {
			t.Fatalf("router reduce %s over %v: %v, client fold %v", op, redBox, got, wv)
		}
	}
}

// routerScan decodes one scan response from the router.
func routerScan(t *testing.T, url string) []*server.ScanChunk {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("router scan: status %d %s", resp.StatusCode, body)
	}
	sr := server.NewScanReader(resp.Body)
	var chunks []*server.ScanChunk
	for {
		ch, err := sr.Next()
		if err == io.EOF {
			return chunks
		}
		if err != nil {
			t.Fatalf("router scan frame %d: %v", len(chunks), err)
		}
		chunks = append(chunks, ch)
	}
}
