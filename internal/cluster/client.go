package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"outcore/internal/layout"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// ErrUnavailable classifies a node failure the replication protocol
// handles — connection refused, timeout, or a 5xx/429 answer. The
// router reacts by failing over to another replica (GET) or queueing a
// durable hint (PUT); any other error is a hard protocol error and
// propagates to the client.
var ErrUnavailable = errors.New("node unavailable")

// NodeClient speaks the occd tile API to one storage node: the same
// binary endpoints single-node clients use, plus the replication
// headers (X-Tile-Gen et al) and x-ooc-gorilla wire negotiation.
type NodeClient struct {
	ID      string
	BaseURL string
	// HTTP is the transport (default http.DefaultClient with a 10s
	// timeout). The local harness injects one whose transport can
	// simulate a network partition.
	HTTP *http.Client
	// Tenant, when set, rides every data-plane request as the X-Tenant
	// header, so node-side admission schedules the fan-out under the
	// same tenant the router admitted. Empty = the default lane
	// (router-internal traffic: hint drains, read repairs, probes).
	Tenant string
}

// NewNodeClient builds a client for one node.
func NewNodeClient(id, baseURL string) *NodeClient {
	return &NodeClient{
		ID:      id,
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 10 * time.Second},
	}
}

// ForTenant returns a client whose requests carry tenant identity —
// a shallow copy sharing the transport, so per-request tenant
// stamping costs one struct copy and no new connections. The default
// tenant travels unstamped (it is the absence of a header).
func (c *NodeClient) ForTenant(tenant string) *NodeClient {
	if tenant == "" || tenant == server.DefaultTenant || tenant == c.Tenant {
		return c
	}
	cc := *c
	cc.Tenant = tenant
	return &cc
}

// stampTenant adds the X-Tenant header when the client carries one.
func (c *NodeClient) stampTenant(req *http.Request) {
	if c.Tenant != "" {
		req.Header.Set(server.TenantHeader, c.Tenant)
	}
}

// unavailable wraps err as a replica failure.
func unavailable(err error) error {
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// statusError classifies a non-2xx response: statuses a healthy node
// never emits for a well-formed request mean the node (or the path to
// it) is unavailable; the rest are hard errors.
func (c *NodeClient) statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(body))
	switch resp.StatusCode {
	case http.StatusServiceUnavailable, http.StatusBadGateway,
		http.StatusGatewayTimeout, http.StatusTooManyRequests:
		return unavailable(fmt.Errorf("%s: %s", resp.Status, msg))
	}
	return fmt.Errorf("node %s: %s: %s", c.ID, resp.Status, msg)
}

// tileURL renders the tile endpoint for (name, box).
func (c *NodeClient) tileURL(name string, box layout.Box) string {
	var lo, hi strings.Builder
	for d := range box.Lo {
		if d > 0 {
			lo.WriteByte(',')
			hi.WriteByte(',')
		}
		lo.WriteString(strconv.FormatInt(box.Lo[d], 10))
		hi.WriteString(strconv.FormatInt(box.Hi[d], 10))
	}
	return fmt.Sprintf("%s/v1/arrays/%s/tile?lo=%s&hi=%s", c.BaseURL, name, lo.String(), hi.String())
}

// Healthz reports whether the node answers its liveness probe.
func (c *NodeClient) Healthz() bool {
	resp, err := c.HTTP.Get(c.BaseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// CreateArray creates (or confirms) an array on the node. An array
// that already exists is success — catalog sync replays creates.
func (c *NodeClient) CreateArray(name string, dims []int64, layoutName string) error {
	body, _ := json.Marshal(map[string]any{"name": name, "dims": dims, "layout": layoutName})
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/arrays", "application/json", bytes.NewReader(body))
	if err != nil {
		return unavailable(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusCreated, http.StatusConflict:
		return nil
	case http.StatusServiceUnavailable, http.StatusBadGateway,
		http.StatusGatewayTimeout, http.StatusTooManyRequests:
		return unavailable(fmt.Errorf("create %s: %s", name, resp.Status))
	}
	return fmt.Errorf("create %s on node %s: %s", name, c.ID, resp.Status)
}

// GetTile reads a tile, returning its elements and the node's recorded
// write generation for the box. wire negotiates the compressed tile
// coding on the hop.
func (c *NodeClient) GetTile(name string, box layout.Box, wire bool) ([]float64, uint64, error) {
	req, err := http.NewRequest(http.MethodGet, c.tileURL(name, box), nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(server.TileWantGenHeader, "1")
	c.stampTenant(req)
	if wire {
		req.Header.Set("Accept-Encoding", server.WireEncoding)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, 0, unavailable(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, c.statusError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, unavailable(err)
	}
	gen, _ := strconv.ParseUint(resp.Header.Get(server.TileGenHeader), 10, 64)
	data := make([]float64, box.Size())
	if resp.Header.Get("Content-Encoding") == server.WireEncoding {
		n, err := ooc.DecodeFrame(body, data)
		if err == nil && n != len(body) {
			err = fmt.Errorf("%d trailing bytes after the frame", len(body)-n)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("node %s tile frame: %w", c.ID, err)
		}
	} else {
		if int64(len(body)) != box.Size()*ooc.ElemSize {
			return nil, 0, fmt.Errorf("node %s tile body: %d bytes for %d elements", c.ID, len(body), box.Size())
		}
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*ooc.ElemSize:]))
		}
	}
	return data, gen, nil
}

// PutTile writes a tile under write generation gen. stale reports that
// the node skipped the write because it already holds storedGen > gen
// (the router raises its counter and retries with a fresh generation).
func (c *NodeClient) PutTile(name string, box layout.Box, data []float64, gen uint64, wire bool) (storedGen uint64, stale bool, err error) {
	var body []byte
	if wire {
		body = ooc.AppendFrame(nil, data)
	} else {
		body = make([]byte, len(data)*ooc.ElemSize)
		for i, v := range data {
			binary.LittleEndian.PutUint64(body[i*ooc.ElemSize:], math.Float64bits(v))
		}
	}
	req, err := http.NewRequest(http.MethodPut, c.tileURL(name, box), bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set(server.TileGenHeader, strconv.FormatUint(gen, 10))
	c.stampTenant(req)
	if wire {
		req.Header.Set("Content-Encoding", server.WireEncoding)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, false, unavailable(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return 0, false, c.statusError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	storedGen, _ = strconv.ParseUint(resp.Header.Get(server.TileGenHeader), 10, 64)
	stale = resp.Header.Get(server.TileStaleHeader) != ""
	return storedGen, stale, nil
}

// Reduce pushes one fold down to the node (POST /v1/arrays/{name}/reduce)
// and returns the scalar — decoded from the bit-exact value_bits field,
// so NaN/Inf results survive the JSON hop — plus the element count.
func (c *NodeClient) Reduce(name string, box layout.Box, op string) (float64, int64, error) {
	reqBody, _ := json.Marshal(map[string]any{"op": op, "lo": box.Lo, "hi": box.Hi})
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/arrays/"+name+"/reduce", bytes.NewReader(reqBody))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.stampTenant(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, 0, unavailable(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, c.statusError(resp)
	}
	var out struct {
		Count int64  `json:"count"`
		Bits  uint64 `json:"value_bits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, fmt.Errorf("node %s reduce: %w", c.ID, err)
	}
	return math.Float64frombits(out.Bits), out.Count, nil
}

// ListArrays fetches the node's array catalog (GET /v1/arrays) into
// the router's row type — the wire fields match occd's listing.
func (c *NodeClient) ListArrays() ([]arrayMeta, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/arrays")
	if err != nil {
		return nil, unavailable(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError(resp)
	}
	var out []arrayMeta
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("node %s array list: %w", c.ID, err)
	}
	return out, nil
}

// Stats decodes the node's /v1/stats payload into v.
func (c *NodeClient) Stats(v any) error {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return unavailable(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
