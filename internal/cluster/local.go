package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"

	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/keyhash"
	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// LocalOptions configures an in-process cluster.
type LocalOptions struct {
	Nodes      int   // storage nodes (default 3)
	Replicas   int   // copies per tile (default 2)
	TileDim    int64 // routing grid edge (default 8)
	CacheTiles int   // per-node engine cache bound (default 8)
	Shards     int   // per-node engine shards (default 1)
	Workers    int   // per-node engine workers (default 0: deterministic)
	// WAL runs each node's disk with write-ahead logging, so a killed
	// node recovers its acknowledged writes on restart.
	WAL bool
	// DurablePuts makes each node flush+sync before its PUT 204 — the
	// replication durability model: a replica's ack means durable.
	DurablePuts bool
	// HintDir durably queues the router's handoff hints ("" = memory).
	HintDir string
	// NoWire disables x-ooc-gorilla on router↔node hops.
	NoWire bool
	// Seed derives each node's fault injector seed.
	Seed int64
	// Tenants configures both the router's and every node's tenant
	// plane (weights, quotas, chunk caps) — one policy, applied at both
	// hops, the way a fleet-wide config push would.
	Tenants server.TenantConfig
	// MaxInflight caps each node's concurrently admitted requests
	// (0 = server default). The fairness suite shrinks it to force
	// queueing.
	MaxInflight int
	// QueueDepth bounds each plane's admission queues (0 = default).
	QueueDepth int
	// Obs observes the ROUTER (nodes get plain registries).
	Obs *obs.Sink
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.TileDim == 0 {
		o.TileDim = 8
	}
	if o.CacheTiles <= 0 {
		o.CacheTiles = 8
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// LocalNode is one in-process storage node: a real occd serving core
// over a fault-injected disk, behind a real (loopback) HTTP server.
// The HTTP listener outlives kills and restarts — the handler behind
// it is swapped — so the node's address is stable like a production
// host's, and a killed node answers 503 (engine closed) exactly like
// a daemon whose storage died.
type LocalNode struct {
	ID  string
	URL string

	inj     *faultfs.Injector
	disk    *ooc.Disk
	eng     ooc.TileEngine
	srv     *server.Server
	handler atomic.Pointer[http.Handler]
	hsrv    *httptest.Server
	gate    *partitionGate
	killed  bool
}

// partitionGate simulates a network partition between the router and
// one node: while blocked, every round-trip fails at the transport.
type partitionGate struct {
	blocked atomic.Bool
	inner   http.RoundTripper
}

var errPartitioned = errors.New("cluster: simulated network partition")

func (g *partitionGate) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.blocked.Load() {
		return nil, errPartitioned
	}
	return g.inner.RoundTrip(req)
}

// LocalCluster runs a router plus N storage nodes in one process:
// real HTTP on loopback, real serving cores, fault-injected storage —
// the harness behind cluster conformance, chaos episodes, and
// occload's cluster mode.
type LocalCluster struct {
	Router    *Router
	RouterURL string

	opts      LocalOptions
	routerSrv *httptest.Server
	nodes     []*LocalNode
	clients   []*NodeClient
	arrays    []arrayMeta // creations to replay on node restart
}

// NewLocal builds and starts the cluster.
func NewLocal(o LocalOptions) (*LocalCluster, error) {
	o = o.withDefaults()
	lc := &LocalCluster{opts: o}
	clients := make([]*NodeClient, o.Nodes)
	for i := 0; i < o.Nodes; i++ {
		n := &LocalNode{ID: fmt.Sprintf("n%d", i)}
		n.inj = faultfs.New(o.Seed+int64(i)*104729+31, faultfs.Profile{})
		n.boot(o, lc)
		n.hsrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*n.handler.Load()).ServeHTTP(w, r)
		}))
		n.URL = n.hsrv.URL
		n.gate = &partitionGate{inner: http.DefaultTransport}
		c := NewNodeClient(n.ID, n.URL)
		c.HTTP = &http.Client{Transport: n.gate}
		clients[i] = c
		lc.nodes = append(lc.nodes, n)
	}
	r, err := NewRouter(Options{
		Nodes:      clients,
		Replicas:   o.Replicas,
		TileDim:    o.TileDim,
		HintDir:    o.HintDir,
		NoWire:     o.NoWire,
		QueueDepth: o.QueueDepth,
		Tenants:    o.Tenants,
		Obs:        o.Obs,
	})
	if err != nil {
		lc.closeNodes()
		return nil, err
	}
	lc.Router = r
	lc.clients = clients
	lc.routerSrv = httptest.NewServer(r.Handler())
	lc.RouterURL = lc.routerSrv.URL
	return lc, nil
}

// RestartRouter simulates replacing a crashed router: the old
// instance's listener disappears without a drain (a crash doesn't get
// one — only its hint-log handles are released, as process exit
// would), and a fresh router is built over the same membership and
// hint dir. Every piece of in-memory router state — array catalog,
// generation table, liveness — starts empty in the replacement and
// must be recovered from the nodes' listings, raise-on-contact, and
// the durable hint logs.
func (lc *LocalCluster) RestartRouter() error {
	lc.routerSrv.Close()
	lc.Router.hints.Close()
	r, err := NewRouter(Options{
		Nodes:      lc.clients,
		Replicas:   lc.opts.Replicas,
		TileDim:    lc.opts.TileDim,
		HintDir:    lc.opts.HintDir,
		NoWire:     lc.opts.NoWire,
		QueueDepth: lc.opts.QueueDepth,
		Tenants:    lc.opts.Tenants,
	})
	if err != nil {
		return err
	}
	lc.Router = r
	lc.routerSrv = httptest.NewServer(r.Handler())
	lc.RouterURL = lc.routerSrv.URL
	return nil
}

// boot builds the node's disk/engine/server over the injector's
// surviving bytes (all-zero on first boot) and swaps the handler in.
func (n *LocalNode) boot(o LocalOptions, lc *LocalCluster) {
	n.disk = ooc.NewDisk(0).WrapBackend(n.inj.Wrap)
	if o.WAL {
		logs := o.Shards
		if logs < 1 {
			logs = 1
		}
		n.disk.EnableWAL(ooc.WALOptions{Logs: logs})
	}
	for _, am := range lc.arrays {
		if err := lc.createOn(n.disk, am); err != nil {
			panic(fmt.Sprintf("cluster: recreating %s on %s: %v", am.Name, n.ID, err))
		}
	}
	n.eng = server.BuildEngine(n.disk, o.Shards, ooc.EngineOptions{Workers: o.Workers, CacheTiles: o.CacheTiles})
	if o.WAL {
		if _, err := n.disk.ReplayWAL(); err != nil {
			panic(fmt.Sprintf("cluster: WAL replay on %s: %v", n.ID, err))
		}
	}
	n.srv = server.New(n.disk, n.eng, server.Config{
		NodeID:      n.ID,
		DurablePuts: o.DurablePuts,
		MaxInflight: o.MaxInflight,
		QueueDepth:  o.QueueDepth,
		Tenants:     o.Tenants,
		Obs:         &obs.Sink{Metrics: obs.NewRegistry()},
	})
	h := n.srv.Handler()
	n.handler.Store(&h)
	n.killed = false
}

// createOn replays one catalog row onto a disk.
func (lc *LocalCluster) createOn(d *ooc.Disk, am arrayMeta) error {
	var l *layout.Layout
	if am.Layout == "col" {
		l = layout.ColMajor(am.Dims...)
	} else {
		l = layout.RowMajor(am.Dims...)
	}
	_, err := d.CreateArray(ir.NewArray(am.Name, am.Dims...), l)
	if errors.Is(err, ooc.ErrArrayExists) {
		err = nil
	}
	return err
}

// Nodes returns the node count.
func (lc *LocalCluster) Nodes() int { return len(lc.nodes) }

// NodeID returns node i's ID.
func (lc *LocalCluster) NodeID(i int) string { return lc.nodes[i].ID }

// CreateArray creates an array through the router and records it for
// node-restart replay.
func (lc *LocalCluster) CreateArray(name string, dims ...int64) error {
	c := NewNodeClient("router", lc.RouterURL)
	if err := c.CreateArray(name, dims, ""); err != nil {
		return err
	}
	elems := int64(1)
	for _, d := range dims {
		elems *= d
	}
	lc.arrays = append(lc.arrays, arrayMeta{Name: name, Dims: dims, Elems: elems})
	return nil
}

// Client returns a tile client pointed at the router.
func (lc *LocalCluster) Client() *NodeClient {
	return NewNodeClient("router", lc.RouterURL)
}

// NodeClientDirect returns a client pointed straight at node i,
// bypassing the router — for replica-level assertions.
func (lc *LocalCluster) NodeClientDirect(i int) *NodeClient {
	return NewNodeClient(lc.nodes[i].ID, lc.nodes[i].URL)
}

// Kill crashes node i: the engine is abandoned (cached dirty tiles
// lost), the injector cuts power (unsynced store bytes lost), and the
// serving core starts answering 503. The listener stays up — exactly
// a daemon whose storage stack died.
func (lc *LocalCluster) Kill(i int) {
	n := lc.nodes[i]
	if n.killed {
		return
	}
	n.eng.Abandon()
	n.inj.Crash()
	n.killed = true
}

// Restart reboots a killed node over its surviving bytes: a fresh
// disk (WAL replayed when enabled), a fresh engine, a fresh serving
// core with an EMPTY generation table — the restarted replica
// deliberately forgets freshness and loses every comparison until
// read-repair or hinted handoff catches it up. The router still
// considers the node down until its next Probe.
func (lc *LocalCluster) Restart(i int) {
	n := lc.nodes[i]
	if !n.killed {
		return
	}
	n.boot(lc.opts, lc)
}

// Partition blocks router→node i traffic at the transport.
func (lc *LocalCluster) Partition(i int) { lc.nodes[i].gate.blocked.Store(true) }

// Unpartition heals node i's partition. The router notices on its
// next Probe.
func (lc *LocalCluster) Unpartition(i int) { lc.nodes[i].gate.blocked.Store(false) }

// Killed reports whether node i is currently crashed.
func (lc *LocalCluster) Killed(i int) bool { return lc.nodes[i].killed }

// Partitioned reports whether node i is currently unreachable.
func (lc *LocalCluster) Partitioned(i int) bool { return lc.nodes[i].gate.blocked.Load() }

// Heal restores the whole cluster: partitions lifted, killed nodes
// restarted, then one router Probe so returned replicas sync their
// catalogs, drain their hints, and rejoin the live set.
func (lc *LocalCluster) Heal() {
	for i, n := range lc.nodes {
		n.gate.blocked.Store(false)
		if n.killed {
			lc.Restart(i)
		}
	}
	lc.Router.Probe()
}

// ReplicaNodes returns the indices of the nodes holding box's routing
// tile, in preference order.
func (lc *LocalCluster) ReplicaNodes(name string, box layout.Box) []int {
	key := tileKeyOf(name, routingTile(box, lc.opts.TileDim))
	reps := lc.Router.replicasFor(keyhash.Bytes([]byte(key)))
	out := make([]int, 0, len(reps))
	for _, m := range reps {
		for i, n := range lc.nodes {
			if n.ID == m.client.ID {
				out = append(out, i)
			}
		}
	}
	return out
}

// SetNodeDown force-marks node i down in the router (for single-
// replica-loss assertions without real damage).
func (lc *LocalCluster) SetNodeDown(i int, down bool) {
	for _, m := range lc.Router.members {
		if m.client.ID == lc.nodes[i].ID {
			m.down.Store(down)
		}
	}
	lc.Router.updateNodesUp()
}

// HintsPending reports hints queued for node i.
func (lc *LocalCluster) HintsPending(i int) int {
	return lc.Router.hints.Pending(lc.nodes[i].ID)
}

// HintsPendingTotal reports hints queued across all nodes.
func (lc *LocalCluster) HintsPendingTotal() int {
	return lc.Router.hints.PendingTotal()
}

// Close drains the router and every live node (flushing their disks);
// killed nodes are left dead.
func (lc *LocalCluster) Close() error {
	err := lc.Router.Drain()
	lc.routerSrv.Close()
	if nerr := lc.closeNodes(); err == nil {
		err = nerr
	}
	return err
}

func (lc *LocalCluster) closeNodes() error {
	var first error
	for _, n := range lc.nodes {
		if n.hsrv != nil {
			n.hsrv.Close()
		}
		if n.srv != nil && !n.killed {
			if err := n.srv.Drain(); err != nil && first == nil {
				first = fmt.Errorf("node %s: %w", n.ID, err)
			}
		}
	}
	return first
}
