// Package cluster is the distributed serving plane: a stateless
// router that rendezvous-hashes tile keys across N occd storage nodes
// with R-way replication, sloppy-quorum writes, hinted handoff for
// replicas that are down, and generation-resolved read-repair when
// replicas disagree. Placement reuses the pinned key hash every other
// layer routes by (internal/keyhash), so the router and the engines
// provably agree on who owns a tile.
//
// The consistency contract is availability-first, not linearizable.
// Writes ack on a sloppy quorum: at least one live replica plus
// durably queued hints reaching R/2+1. Reads fan out to the whole
// replica set but resolve with whoever answers — freshest generation
// wins, stale responders are synchronously read-repaired — so a read
// is served even when only one replica is reachable, and that replica
// may be stale if its copy of the write is still queued as a hint
// (eventual consistency; the hint drain and the next read's repair
// converge it). Callers that need a read to reflect every acked write
// must wait for hints to drain — the chaos epilogue's discipline.
//
// The routing unit is the aligned grid tile (Options.TileDim per
// dimension), not the raw request box: a write to a tile and a later
// unaligned read overlapping it must land on the same replica set, or
// the read could consult nodes that never saw the write. Requests
// spanning several grid tiles are decomposed, each piece served by its
// own tile's replicas, and stitched back into the caller's box-local
// row-major payload.
package cluster

import (
	"outcore/internal/layout"
)

// gridTiles splits box along the aligned grid of edge-t tiles,
// returning the per-tile intersections in row-major tile order. A box
// contained in one grid tile comes back as itself, allocation aside —
// the common case for tile-aligned traffic.
func gridTiles(box layout.Box, t int64) []layout.Box {
	if t <= 0 {
		return []layout.Box{box}
	}
	// Per-dim grid cut points covering [lo, hi).
	cuts := make([][]int64, len(box.Lo))
	total := 1
	for d := range box.Lo {
		lo, hi := box.Lo[d], box.Hi[d]
		var c []int64
		for p := lo - lo%t; p < hi; p += t {
			s, e := p, p+t
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			c = append(c, s, e)
		}
		cuts[d] = c
		total *= len(c) / 2
	}
	out := make([]layout.Box, 0, total)
	idx := make([]int, len(box.Lo))
	for {
		lo := make([]int64, len(box.Lo))
		hi := make([]int64, len(box.Lo))
		for d := range idx {
			lo[d] = cuts[d][2*idx[d]]
			hi[d] = cuts[d][2*idx[d]+1]
		}
		out = append(out, layout.NewBox(lo, hi))
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(cuts[d])/2 {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// routingTile returns the aligned grid tile containing box.Lo — the
// key a single-tile box is placed under. Callers decompose multi-tile
// boxes first (gridTiles), so every piece's routingTile is the grid
// tile that fully contains it.
func routingTile(box layout.Box, t int64) layout.Box {
	if t <= 0 {
		return box
	}
	lo := make([]int64, len(box.Lo))
	hi := make([]int64, len(box.Lo))
	for d := range box.Lo {
		lo[d] = box.Lo[d] - box.Lo[d]%t
		hi[d] = lo[d] + t
	}
	return layout.NewBox(lo, hi)
}

// strides returns box's row-major element strides.
func strides(box layout.Box) []int64 {
	s := make([]int64, len(box.Lo))
	acc := int64(1)
	for d := len(box.Lo) - 1; d >= 0; d-- {
		s[d] = acc
		acc *= box.Hi[d] - box.Lo[d]
	}
	return s
}

// copyRegion copies the elements of region (which must be contained in
// both boxes) from src (srcBox-local row-major) into dst (dstBox-local
// row-major). The innermost dimension is contiguous in both buffers,
// so the copy moves whole rows.
func copyRegion(dst []float64, dstBox layout.Box, src []float64, srcBox layout.Box, region layout.Box) {
	rank := len(region.Lo)
	ds, ss := strides(dstBox), strides(srcBox)
	rowLen := region.Hi[rank-1] - region.Lo[rank-1]

	// Odometer over every region coordinate except the innermost dim.
	cur := make([]int64, rank)
	copy(cur, region.Lo)
	for {
		var doff, soff int64
		for d := 0; d < rank; d++ {
			doff += (cur[d] - dstBox.Lo[d]) * ds[d]
			soff += (cur[d] - srcBox.Lo[d]) * ss[d]
		}
		copy(dst[doff:doff+rowLen], src[soff:soff+rowLen])
		d := rank - 2
		for d >= 0 {
			cur[d]++
			if cur[d] < region.Hi[d] {
				break
			}
			cur[d] = region.Lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}
