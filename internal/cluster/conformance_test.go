package cluster

// The cluster conformance suite: the PR-5 differential op streams —
// same seeds, same dispatch mix, same rng consumption — are replayed
// in lockstep against a single ooc.Engine reference and a {router +
// N nodes, R=2} cluster, and every read must come back byte-identical
// to both the sequential model and the reference. The cluster runs
// its real stack: loopback HTTP, x-ooc-gorilla on every hop, durable
// PUTs, generation headers, read-repair.
//
// The op stream's "flush" is a no-op for the cluster (a replica's PUT
// ack already means durable), so the reference plane flushes after
// every write to match: both planes then agree that a power cut —
// which here kills EVERY node, erasing all volatile engine state and
// every in-memory generation table — loses nothing that was acked.
// The epilogue reads every grid tile once through the router (running
// read-repair wherever a restart left a replica behind) and then
// asserts the replicas byte-equal each other via direct node reads.

import (
	"fmt"
	"math/rand"
	"testing"

	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

const (
	confEdge  = 64 // array is confEdge x confEdge
	confTile  = 8  // aligned tile edge (= routing grid edge)
	confCache = 8  // cache budget (tiles) per plane / node
	confOps   = 150
)

// confSeeds honors -short with the reduced set CI's tier-1 cluster
// job replays; the full 20 match the single-node suite.
func confSeeds(t *testing.T) int64 {
	if testing.Short() {
		return 6
	}
	return 20
}

// confRef is the single-engine reference plane.
type confRef struct {
	inj  *faultfs.Injector
	disk *ooc.Disk
	arr  *ooc.Array
	eng  ooc.TileEngine
}

func newConfRef(t *testing.T, seed int64) *confRef {
	t.Helper()
	p := &confRef{inj: faultfs.New(seed, faultfs.Profile{})}
	p.open(t)
	return p
}

func (p *confRef) open(t *testing.T) {
	t.Helper()
	p.disk = ooc.NewDisk(0).WrapBackend(p.inj.Wrap)
	arr, err := p.disk.CreateArray(ir.NewArray("A", confEdge, confEdge), layout.RowMajor(confEdge, confEdge))
	if err != nil {
		t.Fatalf("ref: create: %v", err)
	}
	p.arr = arr
	p.eng = ooc.NewEngine(p.disk, ooc.EngineOptions{Workers: 0, CacheTiles: confCache})
}

// confModel is the sequential model of the array's contents.
type confModel struct{ a []float64 }

func (m *confModel) want(box layout.Box) []float64 {
	out := make([]float64, 0, box.Size())
	for r := box.Lo[0]; r < box.Hi[0]; r++ {
		for c := box.Lo[1]; c < box.Hi[1]; c++ {
			out = append(out, m.a[r*confEdge+c])
		}
	}
	return out
}

func (m *confModel) fill(box layout.Box, v float64) {
	for r := box.Lo[0]; r < box.Hi[0]; r++ {
		for c := box.Lo[1]; c < box.Hi[1]; c++ {
			m.a[r*confEdge+c] = v
		}
	}
}

func alignedTile(tr, tc int64) layout.Box {
	return layout.NewBox(
		[]int64{tr * confTile, tc * confTile},
		[]int64{(tr + 1) * confTile, (tc + 1) * confTile},
	)
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterConformance is the proof obligation behind the router's
// claim of being observably identical to one ooc.Engine. CI runs it
// under -race.
func TestClusterConformance(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		for seed := int64(1); seed <= confSeeds(t); seed++ {
			nodes, seed := nodes, seed
			t.Run(fmt.Sprintf("n%d/seed=%d", nodes, seed), func(t *testing.T) {
				t.Parallel()
				runClusterConformanceSeed(t, seed, nodes)
			})
		}
	}
}

func runClusterConformanceSeed(t *testing.T, seed int64, nodes int) {
	lc, err := NewLocal(LocalOptions{
		Nodes:       nodes,
		Replicas:    2,
		TileDim:     confTile,
		CacheTiles:  confCache,
		DurablePuts: true, // a replica's ack means durable — the conformance crash contract
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer lc.Close()
	if err := lc.CreateArray("A", confEdge, confEdge); err != nil {
		t.Fatalf("cluster: create: %v", err)
	}
	cli := lc.Client()
	ref := newConfRef(t, seed)

	model := &confModel{a: make([]float64, confEdge*confEdge)}
	rng := rand.New(rand.NewSource(seed))
	nextVal := float64(0)
	tilesPerEdge := int64(confEdge / confTile)

	get := func(box layout.Box) {
		want := model.want(box)
		got, _, err := cli.GetTile("A", box, true)
		if err != nil {
			t.Fatalf("cluster: get %v: %v", box, err)
		}
		if !equalSlices(got, want) {
			t.Fatalf("cluster: read %v diverged from the model", box)
		}
		h, err := ref.eng.Acquire(ref.arr, box)
		if err != nil {
			t.Fatalf("ref: acquire %v: %v", box, err)
		}
		if !equalSlices(h.Tile().Data(), want) {
			t.Fatalf("ref: read %v diverged from the model", box)
		}
		ref.eng.Release(h, false)
	}

	put := func(box layout.Box, v float64) {
		data := make([]float64, box.Size())
		for i := range data {
			data[i] = v
		}
		// The router assigns generations itself; the client-side gen
		// argument is only meaningful on direct node hops.
		if _, _, err := cli.PutTile("A", box, data, 0, true); err != nil {
			t.Fatalf("cluster: put %v: %v", box, err)
		}
		h, err := ref.eng.Acquire(ref.arr, box)
		if err != nil {
			t.Fatalf("ref: acquire %v: %v", box, err)
		}
		copy(h.Tile().Data(), data)
		ref.eng.Release(h, true)
		// The cluster's ack is durable; flush so the reference's is too.
		if err := ref.eng.Flush(); err != nil {
			t.Fatalf("ref: flush: %v", err)
		}
		model.fill(box, v)
	}

	for op := 0; op < confOps; op++ {
		switch u := rng.Float64(); {
		case u < 0.40: // aligned whole-tile write of a fresh value
			box := alignedTile(rng.Int63n(tilesPerEdge), rng.Int63n(tilesPerEdge))
			nextVal++
			put(box, nextVal)

		case u < 0.75: // aligned read
			get(alignedTile(rng.Int63n(tilesPerEdge), rng.Int63n(tilesPerEdge)))

		case u < 0.90: // unaligned read straddling tile (and node) borders
			lo := []int64{rng.Int63n(confEdge), rng.Int63n(confEdge)}
			hi := []int64{lo[0] + 1 + rng.Int63n(12), lo[1] + 1 + rng.Int63n(12)}
			get(layout.NewBox(lo, hi).Clip([]int64{confEdge, confEdge}))

		case u < 0.97: // flush: acked durability is already per-write on both planes
			if err := ref.eng.Flush(); err != nil {
				t.Fatalf("ref: flush: %v", err)
			}

		default: // power cut: every node dies; acked writes must all survive
			for i := 0; i < lc.Nodes(); i++ {
				lc.Kill(i)
			}
			lc.Heal()
			ref.eng.Abandon()
			ref.inj.Crash()
			ref.open(t)
		}
	}

	// Epilogue: sweep every grid tile through the router (read-repair
	// catches up any replica a restart left behind), checking against
	// the model, then require the replicas to byte-equal each other.
	for tr := int64(0); tr < tilesPerEdge; tr++ {
		for tc := int64(0); tc < tilesPerEdge; tc++ {
			get(alignedTile(tr, tc))
		}
	}
	for tr := int64(0); tr < tilesPerEdge; tr++ {
		for tc := int64(0); tc < tilesPerEdge; tc++ {
			box := alignedTile(tr, tc)
			want := model.want(box)
			for _, i := range lc.ReplicaNodes("A", box) {
				got, _, err := lc.NodeClientDirect(i).GetTile("A", box, true)
				if err != nil {
					t.Fatalf("node %d: direct get %v: %v", i, box, err)
				}
				if !equalSlices(got, want) {
					t.Fatalf("node %d: replica of %v diverged after repair", i, box)
				}
			}
		}
	}

	if err := ref.eng.Close(); err != nil {
		t.Fatalf("ref: close: %v", err)
	}
}
