package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outcore/internal/matrix"
)

func TestRectangularIdentity(t *testing.T) {
	b := TransformedBounds(matrix.Identity(2), []int64{0, 0}, []int64{3, 4}).Eliminate()
	if !b.Feasible() {
		t.Fatal("infeasible")
	}
	if got := b.Count(); got != 4*5 {
		t.Errorf("count = %d", got)
	}
	lo, hi, empty := b.Range(0, nil)
	if empty || lo != 0 || hi != 3 {
		t.Errorf("level 0 range [%d,%d]", lo, hi)
	}
	lo, hi, empty = b.Range(1, []int64{2})
	if empty || lo != 0 || hi != 4 {
		t.Errorf("level 1 range [%d,%d]", lo, hi)
	}
}

func TestInterchangeBounds(t *testing.T) {
	// I = Q·I' with Q = interchange: the transformed space of a 4x6
	// rectangle is the 6x4 rectangle.
	q := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	b := TransformedBounds(q, []int64{0, 0}, []int64{3, 5}).Eliminate()
	lo, hi, _ := b.Range(0, nil)
	if lo != 0 || hi != 5 {
		t.Errorf("outer range [%d,%d], want [0,5]", lo, hi)
	}
	lo, hi, _ = b.Range(1, []int64{5})
	if lo != 0 || hi != 3 {
		t.Errorf("inner range [%d,%d], want [0,3]", lo, hi)
	}
	if b.Count() != 24 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestSkewedBounds(t *testing.T) {
	// T = [[1,0],[1,1]] (skew), Q = T⁻¹ = [[1,0],[-1,1]].
	// Original 0<=i,j<=2: transformed points (i, i+j): inner range shifts
	// with the outer value.
	q := matrix.FromRows([][]int64{{1, 0}, {-1, 1}})
	b := TransformedBounds(q, []int64{0, 0}, []int64{2, 2}).Eliminate()
	if b.Count() != 9 {
		t.Errorf("count = %d, want 9", b.Count())
	}
	lo, hi, _ := b.Range(1, []int64{0})
	if lo != 0 || hi != 2 {
		t.Errorf("inner range at outer=0: [%d,%d]", lo, hi)
	}
	lo, hi, _ = b.Range(1, []int64{2})
	if lo != 2 || hi != 4 {
		t.Errorf("inner range at outer=2: [%d,%d]", lo, hi)
	}
}

func TestEnumerateLexOrderAndBijection(t *testing.T) {
	q := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	b := TransformedBounds(q, []int64{0, 0}, []int64{2, 3}).Eliminate()
	seen := map[[2]int64]bool{}
	var prev *[2]int64
	b.Enumerate(func(iv []int64) {
		cur := [2]int64{iv[0], iv[1]}
		if prev != nil {
			if !(prev[0] < cur[0] || (prev[0] == cur[0] && prev[1] < cur[1])) {
				t.Fatalf("not lexicographic: %v then %v", *prev, cur)
			}
		}
		p := cur
		prev = &p
		// Mapped-back original point must be in range.
		orig := q.MulVec(iv)
		if orig[0] < 0 || orig[0] > 2 || orig[1] < 0 || orig[1] > 3 {
			t.Fatalf("point %v maps outside: %v", iv, orig)
		}
		if seen[cur] {
			t.Fatalf("duplicate point %v", cur)
		}
		seen[cur] = true
	})
	if len(seen) != 12 {
		t.Errorf("enumerated %d points, want 12", len(seen))
	}
}

func TestInfeasibleSystem(t *testing.T) {
	s := NewSystem(1)
	s.AddLE([]int64{1}, 0) // x <= 0
	s.AddGE([]int64{1}, 5) // x >= 5
	b := s.Eliminate()
	if b.Feasible() {
		t.Error("infeasible system reported feasible")
	}
	if b.Count() != 0 {
		t.Error("infeasible system has points")
	}
}

func TestEmptyInnerRange(t *testing.T) {
	// x0 in [0,4]; x1 in [x0, 4-x0]: empty when x0 > 2.
	s := NewSystem(2)
	s.AddGE([]int64{1, 0}, 0)
	s.AddLE([]int64{1, 0}, 4)
	s.AddGE([]int64{-1, 1}, 0) // x1 >= x0
	s.AddLE([]int64{1, 1}, 4)  // x0 + x1 <= 4
	b := s.Eliminate()
	if _, _, empty := b.Range(1, []int64{3}); !empty {
		t.Error("expected empty inner range at x0=3")
	}
	// Triangle count: x0=0:5, 1:3+... x1 from x0 to 4-x0: sizes 5,3,1 -> 9.
	if got := b.Count(); got != 9 {
		t.Errorf("count = %d, want 9", got)
	}
}

func TestPropertyUnimodularTransformPreservesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		// Random unimodular Q from elementary ops.
		q := matrix.Identity(k)
		for step := 0; step < 4; step++ {
			i, j := rng.Intn(k), rng.Intn(k)
			if i == j {
				continue
			}
			e := matrix.Identity(k)
			e.Set(i, j, int64(rng.Intn(3)-1))
			q = q.Mul(e)
		}
		lo := make([]int64, k)
		hi := make([]int64, k)
		want := int64(1)
		for d := 0; d < k; d++ {
			lo[d] = int64(rng.Intn(3))
			hi[d] = lo[d] + int64(rng.Intn(4))
			want *= hi[d] - lo[d] + 1
		}
		b := TransformedBounds(q, lo, hi).Eliminate()
		return b.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnumeratedPointsSatisfyOriginalBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := matrix.FromRows([][]int64{
			{1, int64(rng.Intn(3) - 1)},
			{0, 1},
		})
		lo := []int64{0, 0}
		hi := []int64{int64(1 + rng.Intn(4)), int64(1 + rng.Intn(4))}
		b := TransformedBounds(q, lo, hi).Eliminate()
		ok := true
		b.Enumerate(func(iv []int64) {
			orig := q.MulVec(iv)
			for d := range orig {
				if orig[d] < lo[d] || orig[d] > hi[d] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddLEValidation(t *testing.T) {
	s := NewSystem(2)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	s.AddLE([]int64{1}, 0)
}
