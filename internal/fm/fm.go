// Package fm implements Fourier-Motzkin elimination over exact
// rationals, used to generate loop bounds for linearly transformed
// iteration spaces: given the original rectangular bounds Lo <= I <= Hi
// and I = Q·I', the constraints on I' are 2k affine inequalities, and
// eliminating inner variables yields, level by level, the bounds each
// transformed loop must scan.
package fm

import (
	"fmt"

	"outcore/internal/matrix"
	"outcore/internal/rational"
)

// constraint encodes sum coefs[j]·x_j <= rhs.
type constraint struct {
	coefs []rational.Rat
	rhs   rational.Rat
}

// System is a conjunction of affine inequalities over k variables.
type System struct {
	k    int
	cons []constraint
}

// NewSystem returns an empty system over k variables.
func NewSystem(k int) *System { return &System{k: k} }

// AddLE adds sum coefs[j]·x_j <= rhs.
func (s *System) AddLE(coefs []int64, rhs int64) {
	if len(coefs) != s.k {
		panic("fm: coefficient length mismatch")
	}
	c := constraint{coefs: make([]rational.Rat, s.k), rhs: rational.FromInt(rhs)}
	for j, x := range coefs {
		c.coefs[j] = rational.FromInt(x)
	}
	s.cons = append(s.cons, c)
}

// AddGE adds sum coefs[j]·x_j >= rhs.
func (s *System) AddGE(coefs []int64, rhs int64) {
	neg := make([]int64, len(coefs))
	for j, x := range coefs {
		neg[j] = -x
	}
	s.AddLE(neg, -rhs)
}

// TransformedBounds builds the constraint system for I' where the
// original rectangular space Lo_j <= I_j <= Hi_j is mapped by I = Q·I'
// (Q integer, typically unimodular).
func TransformedBounds(q *matrix.Int, lo, hi []int64) *System {
	k := q.Cols()
	s := NewSystem(k)
	for row := 0; row < q.Rows(); row++ {
		r := q.Row(row)
		s.AddLE(r, hi[row])
		s.AddGE(r, lo[row])
	}
	return s
}

// Bounds is the result of the elimination: for each level l, the
// constraints mentioning x_l with all deeper variables eliminated, so
// the loop bounds at level l are computable from x_0..x_{l-1}.
type Bounds struct {
	k      int
	levels [][]constraint // levels[l]: constraints over x_0..x_l with coefs[l] != 0
	outer  []constraint   // constraints with no variables (feasibility checks)
}

// Eliminate runs Fourier-Motzkin from the innermost variable outward
// and returns per-level bound constraints.
func (s *System) Eliminate() *Bounds {
	b := &Bounds{k: s.k, levels: make([][]constraint, s.k)}
	cur := append([]constraint(nil), s.cons...)
	for lvl := s.k - 1; lvl >= 0; lvl-- {
		var with, without []constraint
		for _, c := range cur {
			if !c.coefs[lvl].IsZero() {
				with = append(with, c)
			} else {
				without = append(without, c)
			}
		}
		b.levels[lvl] = with
		// Combine each lower bound with each upper bound on x_lvl.
		var lows, ups []constraint
		for _, c := range with {
			if c.coefs[lvl].Sign() > 0 {
				ups = append(ups, c)
			} else {
				lows = append(lows, c)
			}
		}
		cur = without
		for _, lc := range lows {
			for _, uc := range ups {
				// lc: a·x + c_l·x_lvl <= b1 with c_l < 0  => x_lvl >= (...)
				// uc: a'·x + c_u·x_lvl <= b2 with c_u > 0 => x_lvl <= (...)
				// Eliminate: c_u·lc + (-c_l)·uc.
				cu := uc.coefs[lvl]
				cl := lc.coefs[lvl].Neg()
				nc := constraint{coefs: make([]rational.Rat, s.k)}
				for j := 0; j < s.k; j++ {
					nc.coefs[j] = cu.Mul(lc.coefs[j]).Add(cl.Mul(uc.coefs[j]))
				}
				nc.rhs = cu.Mul(lc.rhs).Add(cl.Mul(uc.rhs))
				if !nc.coefs[lvl].IsZero() {
					panic("fm: elimination failed to cancel")
				}
				cur = append(cur, nc)
			}
		}
	}
	b.outer = nil
	for _, c := range cur {
		allZero := true
		for _, x := range c.coefs {
			if !x.IsZero() {
				allZero = false
				break
			}
		}
		if allZero {
			b.outer = append(b.outer, c)
		}
	}
	return b
}

// Feasible reports whether the variable-free residual constraints hold
// (an infeasible system has empty iteration space).
func (b *Bounds) Feasible() bool {
	for _, c := range b.outer {
		if rational.Zero.Cmp(c.rhs) > 0 {
			return false
		}
	}
	return true
}

// Range returns the integer bounds [lo, hi] of variable lvl given the
// values of x_0..x_{lvl-1}. empty is true when no integer value
// satisfies the constraints.
func (b *Bounds) Range(lvl int, outer []int64) (lo, hi int64, empty bool) {
	if lvl >= b.k || len(outer) < lvl {
		panic(fmt.Sprintf("fm: Range(%d) with %d outer values", lvl, len(outer)))
	}
	haveLo, haveHi := false, false
	var bestLo, bestHi rational.Rat
	for _, c := range b.levels[lvl] {
		// sum_{j<lvl} coefs_j·outer_j + coefs_lvl·x <= rhs
		acc := c.rhs
		for j := 0; j < lvl; j++ {
			acc = acc.Sub(c.coefs[j].Mul(rational.FromInt(outer[j])))
		}
		cl := c.coefs[lvl]
		bound := acc.Div(cl)
		if cl.Sign() > 0 { // x <= bound
			if !haveHi || bound.Cmp(bestHi) < 0 {
				bestHi, haveHi = bound, true
			}
		} else { // x >= bound
			if !haveLo || bound.Cmp(bestLo) > 0 {
				bestLo, haveLo = bound, true
			}
		}
	}
	if !haveLo || !haveHi {
		panic("fm: unbounded variable (original space must be bounded)")
	}
	l, h := bestLo.Ceil(), bestHi.Floor()
	return l, h, l > h
}

// Enumerate visits every integer point of the system in lexicographic
// order, passing a reused iteration-vector slice.
func (b *Bounds) Enumerate(visit func(iv []int64)) {
	if !b.Feasible() {
		return
	}
	iv := make([]int64, b.k)
	b.enum(iv, 0, visit)
}

func (b *Bounds) enum(iv []int64, lvl int, visit func(iv []int64)) {
	if lvl == b.k {
		visit(iv)
		return
	}
	lo, hi, empty := b.Range(lvl, iv[:lvl])
	if empty {
		return
	}
	for v := lo; v <= hi; v++ {
		iv[lvl] = v
		b.enum(iv, lvl+1, visit)
	}
}

// Count returns the number of integer points (for tests).
func (b *Bounds) Count() int64 {
	var n int64
	b.Enumerate(func([]int64) { n++ })
	return n
}
