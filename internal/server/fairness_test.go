// Fairness conformance: the tenant plane's three promises — a point
// tenant's tail latency survives an aggressive scanner, DRR service
// shares follow the configured weights, and byte accounting is exact —
// checked over real HTTP on every serving topology the repo ships:
// a single-shard occd, a 4-shard occd, and an occrouter fronting three
// nodes. Lives in package server_test so it can stand the cluster up
// without an import cycle.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"outcore/internal/cluster"
	"outcore/internal/ooc"
	"outcore/internal/server"
)

// fairnessConfig is the policy every plane in the suite runs: the
// point tenant is weighted 4:1 over the scanner, and the scanner's
// chunk trains are capped at 2 in flight.
func fairnessConfig() server.TenantConfig {
	return server.TenantConfig{
		Weights:         map[string]float64{"point": 4, "scan": 1},
		MaxScanInflight: 2,
	}
}

// slowBackend pads every read so admission — not storage speed — is
// the bottleneck the share tests measure.
type slowBackend struct {
	ooc.Backend
	delay time.Duration
}

func (b slowBackend) ReadAt(buf []float64, off int64) error {
	time.Sleep(b.delay)
	return b.Backend.ReadAt(buf, off)
}

// createArrayHTTP provisions an array through the public API — the
// suite drives every plane exactly as an external client would.
func createArrayHTTP(t *testing.T, base, name string, dims ...int64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"name": name, "dims": dims})
	resp, err := http.Post(base+"/v1/arrays", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d", name, resp.StatusCode)
	}
}

// startSingle stands up one occd-shaped server (shards-way engine) with
// a deliberately small admission pool so the two tenant populations
// actually contend in the DRR queues.
func startSingle(t *testing.T, shards int, cfg server.TenantConfig) string {
	t.Helper()
	d := ooc.NewDisk(0)
	eng := server.BuildEngine(d, shards, ooc.EngineOptions{Workers: 2, CacheTiles: 32})
	srv := server.New(d, eng, server.Config{MaxInflight: 4, QueueDepth: 256, Tenants: cfg})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	createArrayHTTP(t, hs.URL, "A", 64, 64)
	return hs.URL
}

// startCluster stands up the router+3-node plane with the same tenant
// policy pushed to the router and every node — identity propagates on
// the fan-out, so node-side admission sees the router's tenant.
func startCluster(t *testing.T, cfg server.TenantConfig) string {
	t.Helper()
	// Node admission (2 slots) is deliberately no wider than the
	// engine worker pool: contention must queue in the DRR plane,
	// where the weights govern, not in the engine's FIFO behind it.
	lc, err := cluster.NewLocal(cluster.LocalOptions{
		Nodes: 3, Replicas: 2, TileDim: 8, CacheTiles: 32, Workers: 2,
		MaxInflight: 2, QueueDepth: 256, Tenants: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.CreateArray("A", 64, 64); err != nil {
		t.Fatal(err)
	}
	return lc.RouterURL
}

// fairnessPlanes enumerates the serving topologies under conformance.
func fairnessPlanes() []struct {
	name  string
	start func(t *testing.T, cfg server.TenantConfig) string
} {
	return []struct {
		name  string
		start func(t *testing.T, cfg server.TenantConfig) string
	}{
		{"1-shard", func(t *testing.T, cfg server.TenantConfig) string { return startSingle(t, 1, cfg) }},
		{"4-shard", func(t *testing.T, cfg server.TenantConfig) string { return startSingle(t, 4, cfg) }},
		{"router+3-node", startCluster},
	}
}

func pointSpec(base string) server.LoadSpec {
	return server.LoadSpec{
		BaseURL: base, Array: "A", Dims: []int64{64, 64}, TileEdge: 8,
		Clients: 4, Requests: 400, ZipfS: 1.1, ReadFrac: 1,
		Seed: 42, Tenant: "point",
	}
}

// TestFairnessIsolation replays the seeded two-tenant mix — an
// aggressive streaming scanner against an interactive point-GET
// tenant — on each plane and holds the headline bound: the point
// tenant's contended p99 stays within 2x its solo p99. One retry
// absorbs scheduler noise (sub-millisecond solo tails are jitter-
// dominated, especially under -race); a real fairness regression —
// scan chunk trains monopolizing the admission pool — fails both
// attempts by an order of magnitude, not a factor of two.
func TestFairnessIsolation(t *testing.T) {
	for _, plane := range fairnessPlanes() {
		t.Run(plane.name, func(t *testing.T) {
			base := plane.start(t, fairnessConfig())
			var lastErr string
			for attempt := 0; attempt < 2; attempt++ {
				solo, err := server.RunLoad(pointSpec(base))
				if err != nil {
					t.Fatal(err)
				}
				if solo.OK != solo.Requests {
					t.Fatalf("solo pass: %d/%d OK (%d rejected, %d errors)",
						solo.OK, solo.Requests, solo.Rejected, solo.Errors)
				}

				scanSpec := pointSpec(base)
				scanSpec.Tenant = "scan"
				scanSpec.Scenario = "scan-heavy"
				scanSpec.ReadFrac = 0.5
				scanSpec.Requests = 200
				scanSpec.Seed = 7331
				var contended, scanRes server.LoadResult
				var scanErr error
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					scanRes, scanErr = server.RunLoad(scanSpec)
				}()
				contended, err = server.RunLoad(pointSpec(base))
				wg.Wait()
				if err != nil || scanErr != nil {
					t.Fatalf("contended pass: point %v, scan %v", err, scanErr)
				}
				if contended.OK == 0 || scanRes.OK == 0 {
					t.Fatalf("contended pass starved a tenant: point OK %d, scan OK %d",
						contended.OK, scanRes.OK)
				}
				if scanRes.ScanChunks == 0 {
					t.Fatalf("scan tenant streamed no chunks; the mix is not exercising scans")
				}

				// The conformance bound, with an absolute floor: below
				// ~25ms a p99 is measuring the Go scheduler, not the
				// admission policy.
				limit := 2 * solo.P99
				if floor := 0.025; limit < floor {
					limit = floor
				}
				if contended.P99 <= limit {
					lastErr = ""
					break
				}
				lastErr = fmt.Sprintf("point p99 %.2fms contended vs %.2fms solo (bound %.2fms)",
					contended.P99*1e3, solo.P99*1e3, limit*1e3)
			}
			if lastErr != "" {
				t.Errorf("%s: scan tenant degraded the point tenant past the 2x bound: %s",
					plane.name, lastErr)
			}
		})
	}
}

// TestDRRSharesConverge pins the weighted shares end to end: two point
// populations with weights 3:1 hammer a single admission slot, and the
// moment the weighted tenant finishes its fixed demand, the lighter
// tenant must have been granted roughly a third as many admissions —
// the DRR ring alternating gold,gold,gold,bronze while both queues
// stay occupied. (The per-grant schedule itself is pinned exactly by
// TestDRRGrantShares; this checks the whole HTTP stack converges to
// the same shares.)
func TestDRRSharesConverge(t *testing.T) {
	// Reads cost ~1ms against a tiny cache: service is slow enough
	// that both tenants keep waiters parked for the whole run, which
	// is the regime where DRR shares are defined.
	d := ooc.NewDisk(0)
	d.WrapBackend(func(name string, b ooc.Backend) ooc.Backend {
		return slowBackend{Backend: b, delay: time.Millisecond}
	})
	eng := server.BuildEngine(d, 1, ooc.EngineOptions{Workers: 2, CacheTiles: 2})
	srv := server.New(d, eng, server.Config{
		MaxInflight: 1, QueueDepth: 256,
		Tenants: server.TenantConfig{Weights: map[string]float64{"gold": 3, "bronze": 1}},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	createArrayHTTP(t, hs.URL, "A", 64, 64)

	spec := func(tenant string) server.LoadSpec {
		return server.LoadSpec{
			BaseURL: hs.URL, Array: "A", Dims: []int64{64, 64}, TileEdge: 8,
			Clients: 6, Requests: 400, ReadFrac: 1, // uniform tile choice: mostly cache misses
			Seed: 1, Tenant: tenant,
		}
	}
	var bronzeAtGoldFinish int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := server.RunLoad(spec("bronze")); err != nil {
			t.Error(err)
		}
	}()
	if _, err := server.RunLoad(spec("gold")); err != nil {
		t.Fatal(err)
	}
	// Gold just drained its demand: snapshot bronze's grant count now
	// (/v1/stats bypasses admission, so the read is immediate).
	for _, st := range tenantStats(t, hs.URL) {
		if st.Tenant == "bronze" {
			bronzeAtGoldFinish = st.Requests
		}
	}
	wg.Wait()

	// Expected share while both queues are saturated: bronze gets 1
	// grant per 3 of gold's, so ~133 of gold's 400. Wide tolerance —
	// closed-loop clients leave sub-millisecond queue gaps — but well
	// inside "unweighted" (400) and "starved" (0).
	if bronzeAtGoldFinish < 50 || bronzeAtGoldFinish > 270 {
		t.Errorf("bronze had %d grants when gold finished its 400, want ~133 for weights 3:1",
			bronzeAtGoldFinish)
	}
}

// tenantStats reads the per-tenant scorecard from /v1/stats.
func tenantStats(t *testing.T, base string) []server.TenantStat {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Tenants []server.TenantStat `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Tenants
}

// TestByteAccountingExact holds the quota meter to exactness over HTTP
// on all three planes: every admitted point op moves one full 8x8 tile
// (512 bytes), so the tenant's metered bytes must equal OK*512 — no
// rounding, no double counting on the router's fan-out, no leakage
// from failed requests.
func TestByteAccountingExact(t *testing.T) {
	for _, plane := range fairnessPlanes() {
		t.Run(plane.name, func(t *testing.T) {
			base := plane.start(t, server.TenantConfig{})
			spec := server.LoadSpec{
				BaseURL: base, Array: "A", Dims: []int64{64, 64}, TileEdge: 8,
				Clients: 4, Requests: 300, ZipfS: 1.1, ReadFrac: 0.5,
				Seed: 9, Tenant: "meter",
			}
			res, err := server.RunLoad(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.OK != res.Requests {
				t.Fatalf("%d/%d OK (%d rejected, %d errors); exactness needs a clean run",
					res.OK, res.Requests, res.Rejected, res.Errors)
			}
			want := int64(res.OK) * 8 * 8 * 8 // elems per tile x bytes per elem
			var got int64 = -1
			for _, st := range tenantStats(t, base) {
				if st.Tenant == "meter" {
					got = st.Bytes
				}
			}
			if got != want {
				t.Errorf("tenant bytes metered = %d, admitted = %d (%d OK x 512B): accounting drifted",
					got, want, res.OK)
			}
		})
	}
}

// TestByteAccountingProperty property-tests the meter itself: for any
// interleaving of debits across any tenants, the per-tenant byte
// counters must equal the exact sums fed in — the counter and the
// quota bucket move under one lock, so concurrency cannot skew them.
func TestByteAccountingProperty(t *testing.T) {
	prop := func(ops []struct {
		T uint8
		N uint16
	}) bool {
		p := server.NewTenantPlane(server.TenantPlaneOpts{
			Config: server.TenantConfig{QuotaBytesPerSec: 1e12},
		})
		want := map[string]int64{}
		for _, op := range ops {
			want[fmt.Sprintf("q%d", op.T%8)] += int64(op.N)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(ops); i += 4 {
					p.DebitBytes(fmt.Sprintf("q%d", ops[i].T%8), int64(ops[i].N))
				}
			}(g)
		}
		wg.Wait()
		got := map[string]int64{}
		for _, st := range p.Stats() {
			got[st.Tenant] = st.Bytes
		}
		for id, n := range want {
			if got[id] != n {
				t.Logf("tenant %s: metered %d, debited %d", id, got[id], n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuotaRetryAfterHTTP closes the loop on the 429 surface: a tenant
// over its request quota gets 429 with a Retry-After it can actually
// honor, on the single server and through the router alike.
func TestQuotaRetryAfterHTTP(t *testing.T) {
	// 5 rps leaves headroom for the (untenanted) array-create traffic
	// — on the cluster plane the router fans creation out to every
	// node under the same policy — while the greedy loop below burns
	// through the burst in well under a second.
	cfg := server.TenantConfig{QuotaRPS: 5}
	for _, plane := range fairnessPlanes() {
		t.Run(plane.name, func(t *testing.T) {
			base := plane.start(t, cfg)
			var rejected int
			var retryAfter string
			deadline := time.Now().Add(5 * time.Second)
			for rejected == 0 && time.Now().Before(deadline) {
				req, _ := http.NewRequest(http.MethodGet, base+"/v1/arrays/A/tile?lo=0,0&hi=8,8", nil)
				req.Header.Set(server.TenantHeader, "greedy")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					rejected++
					retryAfter = resp.Header.Get("Retry-After")
				}
				resp.Body.Close()
			}
			if rejected == 0 {
				t.Fatal("quota of 1 rps never produced a 429")
			}
			if retryAfter == "" {
				t.Error("429 carried no Retry-After header")
			}
		})
	}
}
